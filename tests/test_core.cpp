// Tests for the GLOVA core pieces: Table I configuration, the Eq. 4/5
// reward, the mu-sigma evaluation (Eq. 7), reordering scores (Eqs. 8-10),
// and the counting simulation service.
#include <gtest/gtest.h>

#include "circuits/registry.hpp"
#include "core/config.hpp"
#include "core/mu_sigma.hpp"
#include "core/reordering.hpp"
#include "core/reward.hpp"
#include "core/simulation.hpp"

namespace glova::core {
namespace {

using circuits::MetricSpec;
using circuits::PerformanceSpec;
using circuits::Sense;

PerformanceSpec two_metric_spec() {
  PerformanceSpec spec;
  spec.metrics = {MetricSpec{"a", "u", 1.0, 10.0, Sense::MinimizeBelow},
                  MetricSpec{"b", "u", 1.0, 5.0, Sense::MaximizeAbove}};
  return spec;
}

TEST(Config, TableOneRows) {
  const auto c = OperationalConfig::for_method(VerifMethod::C);
  EXPECT_TRUE(c.predefined_process);
  EXPECT_FALSE(c.global_mismatch);
  EXPECT_FALSE(c.local_mismatch);
  EXPECT_EQ(c.n_opt, 1u);
  EXPECT_EQ(c.corner_count(), 30u);
  EXPECT_EQ(c.full_verification_sims(), 30u);

  const auto mcl = OperationalConfig::for_method(VerifMethod::C_MCL);
  EXPECT_TRUE(mcl.predefined_process);
  EXPECT_FALSE(mcl.global_mismatch);
  EXPECT_TRUE(mcl.local_mismatch);
  EXPECT_EQ(mcl.n_opt, 3u);
  EXPECT_EQ(mcl.full_verification_sims(), 3000u);  // 30 x 100

  const auto mcgl = OperationalConfig::for_method(VerifMethod::C_MCGL);
  EXPECT_FALSE(mcgl.predefined_process);
  EXPECT_TRUE(mcgl.global_mismatch);
  EXPECT_TRUE(mcgl.local_mismatch);
  EXPECT_EQ(mcgl.corner_count(), 6u);
  EXPECT_EQ(mcgl.full_verification_sims(), 6000u);  // 6 x 1000
}

TEST(Config, SamplingModes) {
  EXPECT_EQ(OperationalConfig::for_method(VerifMethod::C).sampling_mode(), pdk::GlobalMode::Zero);
  EXPECT_EQ(OperationalConfig::for_method(VerifMethod::C_MCL).sampling_mode(),
            pdk::GlobalMode::Zero);
  EXPECT_EQ(OperationalConfig::for_method(VerifMethod::C_MCGL).verification_sampling_mode(),
            pdk::GlobalMode::PerSample);
}

TEST(Reward, AllMetricsPassGivesSuccessReward) {
  const auto spec = two_metric_spec();
  // a = 5 (below 10: pass), b = 8 (above 5: pass).
  EXPECT_DOUBLE_EQ(reward_from_metrics(spec, std::vector<double>{5.0, 8.0}), kSuccessReward);
  EXPECT_TRUE(all_constraints_met(spec, std::vector<double>{5.0, 8.0}));
}

TEST(Reward, OnlyViolationsContribute) {
  const auto spec = two_metric_spec();
  // a fails (15 > 10), b passes: reward = f_a < 0 only.
  const auto f = margins(spec, std::vector<double>{15.0, 8.0});
  EXPECT_LT(f[0], 0.0);
  EXPECT_GT(f[1], 0.0);
  EXPECT_DOUBLE_EQ(reward_from_metrics(spec, std::vector<double>{15.0, 8.0}), f[0]);
}

TEST(Reward, MultipleViolationsSum) {
  const auto spec = two_metric_spec();
  const auto f = margins(spec, std::vector<double>{20.0, 2.0});
  EXPECT_DOUBLE_EQ(reward_from_metrics(spec, std::vector<double>{20.0, 2.0}), f[0] + f[1]);
}

TEST(MuSigma, PassesWhenDistributionClearsBound) {
  const auto spec = two_metric_spec();
  // Tight cluster well inside the constraints.
  const std::vector<std::vector<double>> samples = {{5.0, 8.0}, {5.1, 8.1}, {4.9, 7.9}};
  const auto r = mu_sigma_evaluate(spec, samples, 4.0);
  EXPECT_TRUE(r.pass);
  for (const double e : r.e) EXPECT_LE(e, 0.0);
}

TEST(MuSigma, HighVarianceFailsEvenWhenMeanPasses) {
  const auto spec = two_metric_spec();
  // Mean of metric a is ~7 (passes) but the spread reaches the bound.
  const std::vector<std::vector<double>> samples = {{3.0, 8.0}, {7.0, 8.0}, {11.5, 8.0}};
  const auto strict = mu_sigma_evaluate(spec, samples, 4.0);
  EXPECT_FALSE(strict.pass);
  // A small beta2 tolerates it: the reliability factor is the knob.
  const auto loose = mu_sigma_evaluate(spec, samples, 0.1);
  EXPECT_TRUE(loose.pass);
}

TEST(MuSigma, SingleSampleReducesToHardCheck) {
  const auto spec = two_metric_spec();
  EXPECT_TRUE(mu_sigma_evaluate(spec, {{5.0, 8.0}}, 4.0).pass);
  EXPECT_FALSE(mu_sigma_evaluate(spec, {{15.0, 8.0}}, 4.0).pass);
}

TEST(MuSigma, TScoreSumsPerMetricBounds) {
  const auto spec = two_metric_spec();
  const auto r = mu_sigma_evaluate(spec, {{5.0, 8.0}, {6.0, 7.5}}, 4.0);
  EXPECT_NEAR(r.t_score, r.e[0] + r.e[1], 1e-12);
  EXPECT_THROW((void)mu_sigma_evaluate(spec, {}, 4.0), std::invalid_argument);
}

TEST(Reordering, WorseCornersGetHigherTScore) {
  const auto spec = two_metric_spec();
  const auto good = mu_sigma_evaluate(spec, {{4.0, 9.0}, {4.2, 9.1}}, 4.0);
  const auto bad = mu_sigma_evaluate(spec, {{9.0, 5.5}, {9.2, 5.6}}, 4.0);
  EXPECT_GT(bad.t_score, good.t_score);
}

TEST(Reordering, HScoreAndOrdering) {
  const std::vector<double> rho = {1.0, -0.5};
  EXPECT_DOUBLE_EQ(h_score(std::vector<double>{2.0, 2.0}, rho), 1.0);
  EXPECT_DOUBLE_EQ(h_score(std::vector<double>{0.0, 2.0}, rho), -1.0);
  const std::vector<double> scores = {0.3, -0.1, 0.9, 0.3};
  const auto order = order_descending(scores);
  EXPECT_EQ(order[0], 2u);
  EXPECT_EQ(order[1], 0u);  // stable: first 0.3 before second
  EXPECT_EQ(order[2], 3u);
  EXPECT_EQ(order[3], 1u);
}

TEST(Reordering, CorrelationIdentifiesHarmfulAxis) {
  const auto spec = two_metric_spec();
  // Samples where coordinate 0 of h drives metric a upward (bad).
  std::vector<std::vector<double>> hs;
  std::vector<double> g;
  Rng rng(12);
  for (int i = 0; i < 100; ++i) {
    const double h0 = rng.normal();
    const double h1 = rng.normal();
    hs.push_back({h0, h1});
    const double metric_a = 8.0 + 2.0 * h0;
    g.push_back(total_degradation(spec, std::vector<double>{metric_a, 8.0}));
  }
  const auto rho = correlation_vector(hs, g);
  EXPECT_GT(rho[0], 0.8);
  EXPECT_NEAR(rho[1], 0.0, 0.25);
}

TEST(SimulationService, CountsEverySimulation) {
  SimulationService service(circuits::make_testbench(circuits::Testcase::Sal));
  const auto& sz = service.testbench().sizing();
  std::vector<double> x01(sz.dimension(), 0.5);
  const auto x = sz.denormalize(x01);
  EXPECT_EQ(service.simulation_count(), 0u);
  (void)service.evaluate_one(x, pdk::typical_corner(), {});
  EXPECT_EQ(service.simulation_count(), 1u);
  const std::vector<std::vector<double>> hs(5);
  (void)service.evaluate_batch(x, pdk::typical_corner(), hs);
  EXPECT_EQ(service.simulation_count(), 6u);
  service.reset_count();
  EXPECT_EQ(service.simulation_count(), 0u);
}

TEST(SimulationService, BatchMatchesSequentialEvaluation) {
  SimulationService service(circuits::make_testbench(circuits::Testcase::DramOcsa));
  const auto& tb = service.testbench();
  std::vector<double> x01(tb.sizing().dimension(), 0.6);
  const auto x = tb.sizing().denormalize(x01);
  const auto layout = tb.mismatch_layout(x, true);
  Rng rng(13);
  const auto hs = pdk::sample_mismatch_set(layout, 40, rng, pdk::GlobalMode::PerSample);
  const auto batch = service.evaluate_batch(x, pdk::typical_corner(), hs);
  for (std::size_t i = 0; i < hs.size(); ++i) {
    EXPECT_EQ(batch[i], tb.evaluate(x, pdk::typical_corner(), hs[i]));
  }
}

}  // namespace
}  // namespace glova::core
