// Workspace-reuse tests for the SPICE engine: sharing a SimulatorWorkspace
// across solves, timesteps, and circuits of different sizes must be
// bit-identical to running with fresh buffers, and the Newton loop must stay
// allocation-free once the workspace is warm (O(1) heap traffic per solve
// instead of O(iterations)).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "circuits/spice_backend.hpp"
#include "pdk/mos_params.hpp"
#include "spice/circuit.hpp"
#include "spice/simulator.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter.  Replacing operator new/delete in this test
// binary lets the allocation-free claim be checked directly rather than
// inferred from timings.
namespace {
std::atomic<std::size_t> g_alloc_count{0};
std::atomic<bool> g_alloc_counting{false};
}  // namespace

void* operator new(std::size_t size) {
  if (g_alloc_counting.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace glova::spice {
namespace {

/// StrongARM latch netlist at a mid-range sizing (the bench_micro point).
Circuit sal_netlist() {
  static const circuits::StrongArmLatchSpice sal;
  const std::vector<double> x01 = {0.2, 0.3, 0.2, 0.2, 0.2, 0.1, 0.2,
                                   0.0, 0.0, 0.0, 0.0, 0.0, 0.05, 0.01};
  const auto x = sal.sizing().denormalize(x01);
  return sal.build_netlist(x, pdk::typical_corner(), {});
}

/// DRAM OCSA-style netlist: a latch-type open-bitline sense amp — cross
/// coupled inverter pair on the bitline nodes with precharge devices and
/// bitline capacitance.  Smaller than the SAL system, so running it between
/// SAL solves exercises workspace resizing in both directions.
Circuit ocsa_netlist() {
  const auto nmos = pdk::mos_params(false, pdk::typical_corner(), 60e-9);
  const auto pmos = pdk::mos_params(true, pdk::typical_corner(), 60e-9);
  Circuit ckt;
  const auto vdd = ckt.node("vdd");
  const auto pre = ckt.node("pre");
  const auto bl = ckt.node("bl");
  const auto blb = ckt.node("blb");
  const auto gnd = Circuit::ground();
  ckt.add_vsource("VDD", vdd, gnd, Waveform::dc(0.9));
  // Precharge gate held high: both precharge PMOS off, latch free to resolve.
  ckt.add_vsource("VPRE", pre, gnd, Waveform::dc(0.9));
  ckt.add_mosfet("MNa", bl, blb, gnd, nmos, 2e-6, 60e-9);
  ckt.add_mosfet("MNb", blb, bl, gnd, nmos, 2e-6, 60e-9);
  ckt.add_mosfet("MPa", bl, blb, vdd, pmos, 4e-6, 60e-9);
  ckt.add_mosfet("MPb", blb, bl, vdd, pmos, 4e-6, 60e-9);
  ckt.add_mosfet("MPpre_a", bl, pre, vdd, pmos, 2e-6, 60e-9);
  ckt.add_mosfet("MPpre_b", blb, pre, vdd, pmos, 2e-6, 60e-9);
  ckt.add_capacitor("Cbl", bl, gnd, 40e-15);
  ckt.add_capacitor("Cblb", blb, gnd, 40e-15);
  return ckt;
}

TransientSpec sal_tran_spec() {
  TransientSpec spec;
  spec.t_stop = 2e-9;
  spec.dt = 2e-12;
  spec.record = {"out_a", "out_b"};
  return spec;
}

TransientSpec ocsa_tran_spec() {
  TransientSpec spec;
  spec.t_stop = 1e-9;
  spec.dt = 2e-12;
  spec.use_ic = true;
  // Sense operation: a small differential on the bitlines regenerates.
  spec.initial_conditions["bl"] = 0.50;
  spec.initial_conditions["blb"] = 0.40;
  spec.record = {"bl", "blb"};
  return spec;
}

bool traces_identical(const TransientResult& a, const TransientResult& b) {
  if (a.times != b.times) return false;
  if (a.traces.size() != b.traces.size()) return false;
  for (std::size_t i = 0; i < a.traces.size(); ++i) {
    if (a.traces[i].name != b.traces[i].name) return false;
    if (a.traces[i].values != b.traces[i].values) return false;  // bit-exact
  }
  return true;
}

TEST(SimulatorWorkspace, OperatingPointBitIdenticalAcrossReuse) {
  const Circuit sal = sal_netlist();
  const Circuit ocsa = ocsa_netlist();

  SimulatorWorkspace fresh;
  const OpResult reference = Simulator(sal, {}, &fresh).operating_point();
  ASSERT_TRUE(reference.converged);

  // One workspace shared by circuits of different sizes, repeatedly.
  SimulatorWorkspace shared;
  const OpResult ocsa_ref = Simulator(ocsa, {}, &shared).operating_point();
  ASSERT_TRUE(ocsa_ref.converged);
  for (int round = 0; round < 3; ++round) {
    const OpResult sal_again = Simulator(sal, {}, &shared).operating_point();
    ASSERT_TRUE(sal_again.converged);
    EXPECT_EQ(sal_again.node_voltages, reference.node_voltages);
    EXPECT_EQ(sal_again.vsource_currents, reference.vsource_currents);
    const OpResult ocsa_again = Simulator(ocsa, {}, &shared).operating_point();
    EXPECT_EQ(ocsa_again.node_voltages, ocsa_ref.node_voltages);
  }
}

TEST(SimulatorWorkspace, TransientBitIdenticalAcrossReuse) {
  const Circuit sal = sal_netlist();
  const Circuit ocsa = ocsa_netlist();

  SimulatorWorkspace fresh_a;
  SimulatorWorkspace fresh_b;
  const TransientResult sal_ref = Simulator(sal, {}, &fresh_a).transient(sal_tran_spec());
  const TransientResult ocsa_ref = Simulator(ocsa, {}, &fresh_b).transient(ocsa_tran_spec());
  ASSERT_TRUE(sal_ref.ok) << sal_ref.error;
  ASSERT_TRUE(ocsa_ref.ok) << ocsa_ref.error;

  // Interleave both circuits through one workspace: results must not depend
  // on what the buffers held before.
  SimulatorWorkspace shared;
  const TransientResult sal_shared = Simulator(sal, {}, &shared).transient(sal_tran_spec());
  const TransientResult ocsa_shared = Simulator(ocsa, {}, &shared).transient(ocsa_tran_spec());
  const TransientResult sal_again = Simulator(sal, {}, &shared).transient(sal_tran_spec());
  EXPECT_TRUE(traces_identical(sal_ref, sal_shared));
  EXPECT_TRUE(traces_identical(ocsa_ref, ocsa_shared));
  EXPECT_TRUE(traces_identical(sal_ref, sal_again));

  // The OCSA really regenerated (sanity that the netlist is meaningful).
  EXPECT_GT(ocsa_ref.trace("bl").back(), 0.8);
  EXPECT_LT(ocsa_ref.trace("blb").back(), 0.1);
}

TEST(SimulatorWorkspace, NewtonLoopIsAllocationFreeOnceWarm) {
  const Circuit sal = sal_netlist();
  SimulatorWorkspace ws;
  Simulator sim(sal, {}, &ws);
  const OpResult warmup = sim.operating_point();
  ASSERT_TRUE(warmup.converged);

  g_alloc_count.store(0);
  g_alloc_counting.store(true);
  const OpResult counted = sim.operating_point();
  g_alloc_counting.store(false);
  ASSERT_TRUE(counted.converged);

  // The solve itself is allocation-free: only the returned OpResult vectors
  // and the initial iterate may allocate.  Before the workspace refactor the
  // Newton loop allocated the matrix, RHS, factorization copy, permutation,
  // and solution vector on every iteration (5+ allocations x ~10+ iters).
  // The lower bound proves the replaced operator new is actually counting.
  EXPECT_GE(g_alloc_count.load(), 1u);
  EXPECT_LE(g_alloc_count.load(), 8u);
}

TEST(SimulatorWorkspace, TransientHeapTrafficIsResultOnlyOnceWarm) {
  const Circuit sal = sal_netlist();
  const TransientSpec spec = sal_tran_spec();  // 1000 timesteps
  SimulatorWorkspace ws;
  Simulator sim(sal, {}, &ws);
  const TransientResult warmup = sim.transient(spec);
  ASSERT_TRUE(warmup.ok);

  g_alloc_count.store(0);
  g_alloc_counting.store(true);
  const TransientResult counted = sim.transient(spec);
  g_alloc_counting.store(false);
  ASSERT_TRUE(counted.ok);

  // ~1000 steps x several Newton iterations each ran with zero per-iteration
  // allocations; what remains is building the returned waveforms (amortized
  // vector growth) and per-call state.  The pre-refactor loop allocated well
  // over five entries per Newton iteration (tens of thousands total).
  EXPECT_GE(g_alloc_count.load(), 1u);
  EXPECT_LE(g_alloc_count.load(), 500u);
}

TEST(SimulatorWorkspace, ThreadLocalWorkspaceIsStablePerThread) {
  SimulatorWorkspace* first = &thread_local_workspace();
  SimulatorWorkspace* second = &thread_local_workspace();
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace glova::spice
