#include "rl/replay_buffer.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace glova::rl {

WorstCaseReplayBuffer::WorstCaseReplayBuffer(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ == 0) throw std::invalid_argument("WorstCaseReplayBuffer: zero capacity");
  entries_.reserve(std::min<std::size_t>(capacity_, 1024));
}

void WorstCaseReplayBuffer::add(std::vector<double> x01, double reward) {
  if (!best_ || reward > best_->reward) best_ = Experience{x01, reward};
  if (entries_.size() < capacity_) {
    entries_.push_back(Experience{std::move(x01), reward});
  } else {
    entries_[next_] = Experience{std::move(x01), reward};
    next_ = (next_ + 1) % capacity_;
  }
}

std::vector<Experience> WorstCaseReplayBuffer::sample(std::size_t n, Rng& rng) const {
  if (entries_.empty()) throw std::logic_error("WorstCaseReplayBuffer::sample: empty");
  std::vector<Experience> batch;
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) batch.push_back(entries_[rng.index(entries_.size())]);
  return batch;
}

std::optional<Experience> WorstCaseReplayBuffer::best() const { return best_; }

LastWorstBuffer::LastWorstBuffer(std::size_t corner_count) : rewards_(corner_count, -1.0) {
  if (corner_count == 0) throw std::invalid_argument("LastWorstBuffer: zero corners");
}

void LastWorstBuffer::update(std::size_t corner, double worst_reward) {
  if (corner >= rewards_.size()) throw std::out_of_range("LastWorstBuffer::update");
  rewards_[corner] = worst_reward;
}

std::size_t LastWorstBuffer::worst_corner() const {
  return static_cast<std::size_t>(
      std::min_element(rewards_.begin(), rewards_.end()) - rewards_.begin());
}

std::vector<std::size_t> LastWorstBuffer::corners_worst_first() const {
  std::vector<std::size_t> order(rewards_.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return rewards_[a] < rewards_[b]; });
  return order;
}

}  // namespace glova::rl
