#include "spice/counters.hpp"

#include <atomic>

namespace glova::spice {

namespace {
std::atomic<std::uint64_t> g_batch_groups{0};
std::atomic<std::uint64_t> g_batch_lanes{0};
std::atomic<std::uint64_t> g_bypass_solves{0};
std::atomic<std::uint64_t> g_bypass_refactors{0};
std::atomic<std::uint64_t> g_steps_accepted{0};
std::atomic<std::uint64_t> g_steps_rejected{0};
std::atomic<std::uint64_t> g_recovered_dc{0};
std::atomic<std::uint64_t> g_recovered_transient{0};
std::atomic<std::uint64_t> g_deadline_aborts{0};
}  // namespace

SpiceCounters spice_counters() {
  SpiceCounters c;
  c.batch_groups = g_batch_groups.load(std::memory_order_relaxed);
  c.batch_lanes = g_batch_lanes.load(std::memory_order_relaxed);
  c.bypass_solves = g_bypass_solves.load(std::memory_order_relaxed);
  c.bypass_refactors = g_bypass_refactors.load(std::memory_order_relaxed);
  c.steps_accepted = g_steps_accepted.load(std::memory_order_relaxed);
  c.steps_rejected = g_steps_rejected.load(std::memory_order_relaxed);
  c.recovered_dc = g_recovered_dc.load(std::memory_order_relaxed);
  c.recovered_transient = g_recovered_transient.load(std::memory_order_relaxed);
  c.deadline_aborts = g_deadline_aborts.load(std::memory_order_relaxed);
  return c;
}

void reset_spice_counters() {
  g_batch_groups.store(0, std::memory_order_relaxed);
  g_batch_lanes.store(0, std::memory_order_relaxed);
  g_bypass_solves.store(0, std::memory_order_relaxed);
  g_bypass_refactors.store(0, std::memory_order_relaxed);
  g_steps_accepted.store(0, std::memory_order_relaxed);
  g_steps_rejected.store(0, std::memory_order_relaxed);
  g_recovered_dc.store(0, std::memory_order_relaxed);
  g_recovered_transient.store(0, std::memory_order_relaxed);
  g_deadline_aborts.store(0, std::memory_order_relaxed);
}

void note_batch_group(std::uint64_t lanes) {
  g_batch_groups.fetch_add(1, std::memory_order_relaxed);
  g_batch_lanes.fetch_add(lanes, std::memory_order_relaxed);
}

void note_bypass_solves(std::uint64_t solves, std::uint64_t refactors) {
  if (solves != 0) g_bypass_solves.fetch_add(solves, std::memory_order_relaxed);
  if (refactors != 0) g_bypass_refactors.fetch_add(refactors, std::memory_order_relaxed);
}

void note_lte_steps(std::uint64_t accepted, std::uint64_t rejected) {
  if (accepted != 0) g_steps_accepted.fetch_add(accepted, std::memory_order_relaxed);
  if (rejected != 0) g_steps_rejected.fetch_add(rejected, std::memory_order_relaxed);
}

void note_recovered_dc() { g_recovered_dc.fetch_add(1, std::memory_order_relaxed); }

void note_recovered_transient() {
  g_recovered_transient.fetch_add(1, std::memory_order_relaxed);
}

void note_deadline_abort() { g_deadline_aborts.fetch_add(1, std::memory_order_relaxed); }

}  // namespace glova::spice
