// Minimal fully-connected network with reverse-mode gradients.
//
// The paper's actor and critic are both "4-layer neural networks"
// (Sec. IV-A).  This implementation keeps all parameters in one flat vector
// so optimizers (nn::Adam) and parameter copies (ensemble base models) are
// trivial, and exposes backward() variants that return input gradients so the
// actor can be trained through the frozen critic (Algorithm 1's L_A).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace glova::nn {

enum class Activation { Identity, Tanh, ReLU, Sigmoid };

/// Value of the activation function.
[[nodiscard]] double activate(Activation act, double x);
/// Derivative of the activation expressed via pre-activation x.
[[nodiscard]] double activate_grad(Activation act, double x);

/// Fully-connected feed-forward network.
class Mlp {
 public:
  /// `sizes` lists layer widths including input and output,
  /// e.g. {14, 64, 64, 64, 1} is a 4-layer network on a 14-dim input.
  /// Hidden layers use `hidden`, the final layer uses `output`.
  Mlp(std::vector<std::size_t> sizes, Activation hidden, Activation output, Rng& rng);

  [[nodiscard]] std::size_t input_dim() const { return sizes_.front(); }
  [[nodiscard]] std::size_t output_dim() const { return sizes_.back(); }
  [[nodiscard]] std::size_t layer_count() const { return sizes_.size() - 1; }
  [[nodiscard]] std::size_t parameter_count() const { return params_.size(); }

  [[nodiscard]] std::span<double> parameters() { return params_; }
  [[nodiscard]] std::span<const double> parameters() const { return params_; }

  /// Inference-only forward pass.
  [[nodiscard]] std::vector<double> forward(std::span<const double> x) const;

  /// Activations cached by the training forward pass.
  struct Workspace {
    std::vector<std::vector<double>> pre;   ///< pre-activation per layer
    std::vector<std::vector<double>> post;  ///< post-activation per layer; post[0] is the input
  };

  /// Forward pass that records activations for backward().
  std::vector<double> forward(std::span<const double> x, Workspace& ws) const;

  /// Backpropagate `dLdy` (gradient of the loss w.r.t. the network output)
  /// through the cached workspace.  Parameter gradients are *accumulated*
  /// into `grad` (must have parameter_count() entries).  Returns dL/dx.
  std::vector<double> backward(const Workspace& ws, std::span<const double> dLdy,
                               std::span<double> grad) const;

  /// Gradient of the output w.r.t. the input only (no parameter gradients);
  /// used when the critic is frozen during the actor update.
  [[nodiscard]] std::vector<double> input_gradient(const Workspace& ws,
                                                   std::span<const double> dLdy) const;

  /// Text-serialize the flat parameter vector (architecture comes from the
  /// constructor).  `load` throws when the stored count does not match this
  /// network's parameter_count().
  void save(std::ostream& os) const;
  void load(std::istream& is);

 private:
  struct LayerView {
    std::size_t w_offset;  ///< offset of the (out x in) weight block in params_
    std::size_t b_offset;  ///< offset of the bias vector in params_
    std::size_t in;
    std::size_t out;
    Activation act;
  };

  std::vector<double> backprop(const Workspace& ws, std::span<const double> dLdy,
                               std::span<double>* grad) const;

  std::vector<std::size_t> sizes_;
  std::vector<LayerView> layers_;
  std::vector<double> params_;
};

}  // namespace glova::nn
