// SimulationService: the only gate through which optimizers reach the
// testbench.  It counts simulations (the paper's "# Simulation" column),
// tracks a modeled runtime (each SPICE run is far more expensive than the
// optimizer bookkeeping around it), and runs batches in parallel — the paper
// uses a parallel sample size of 3 during optimization and "maximum
// available resources" during verification.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "circuits/testbench.hpp"
#include "common/thread_pool.hpp"
#include "pdk/corner.hpp"

namespace glova::core {

struct SimulationCost {
  /// Modeled cost of one SPICE simulation in arbitrary time units; the
  /// per-iteration optimizer overhead is a fraction of this.  Only ratios
  /// matter: Table II reports *normalized* runtime.
  double per_simulation = 1.0;
  double per_rl_iteration = 2.0;
};

class SimulationService {
 public:
  SimulationService(circuits::TestbenchPtr testbench, std::size_t parallelism = 0);

  /// Evaluate one design under one corner and many mismatch conditions.
  /// `hs` may contain empty vectors (nominal mismatch).  Results preserve
  /// order.  Thread-safe.
  [[nodiscard]] std::vector<std::vector<double>> evaluate_batch(
      std::span<const double> x_phys, const pdk::PvtCorner& corner,
      const std::vector<std::vector<double>>& hs);

  /// Single evaluation (counted).
  [[nodiscard]] std::vector<double> evaluate_one(std::span<const double> x_phys,
                                                 const pdk::PvtCorner& corner,
                                                 std::span<const double> h);

  [[nodiscard]] const circuits::Testbench& testbench() const { return *testbench_; }
  [[nodiscard]] circuits::TestbenchPtr testbench_ptr() const { return testbench_; }

  [[nodiscard]] std::uint64_t simulation_count() const { return count_.load(); }
  void reset_count() { count_.store(0); }

 private:
  circuits::TestbenchPtr testbench_;
  std::size_t parallelism_;
  std::atomic<std::uint64_t> count_{0};
};

}  // namespace glova::core
