#include "serve/scheduler.hpp"

#include <algorithm>

namespace glova::serve {

std::deque<std::string>& FairScheduler::queue_for(const std::string& tenant) {
  for (auto& [name, queue] : tenants_) {
    if (name == tenant) return queue;
  }
  tenants_.emplace_back(tenant, std::deque<std::string>{});
  return tenants_.back().second;
}

std::optional<std::string> FairScheduler::admit(const std::string& tenant,
                                                const std::string& id) {
  if (max_live_ > 0 && live_ >= max_live_) {
    return "queue full: " + std::to_string(live_) + " live jobs (max " +
           std::to_string(max_live_) + "), retry later";
  }
  ++live_;
  queue_for(tenant).push_back(id);
  return std::nullopt;
}

void FairScheduler::adopt(const std::string& tenant, const std::string& id) {
  ++live_;
  queue_for(tenant).push_back(id);
}

void FairScheduler::requeue(const std::string& tenant, const std::string& id) {
  queue_for(tenant).push_back(id);
}

std::optional<std::string> FairScheduler::next() {
  if (tenants_.empty()) return std::nullopt;
  for (std::size_t probe = 0; probe < tenants_.size(); ++probe) {
    auto& [name, queue] = tenants_[cursor_ % tenants_.size()];
    cursor_ = (cursor_ + 1) % tenants_.size();
    if (!queue.empty()) {
      std::string id = std::move(queue.front());
      queue.pop_front();
      return id;
    }
  }
  return std::nullopt;
}

bool FairScheduler::remove(const std::string& id) {
  for (auto& [name, queue] : tenants_) {
    const auto it = std::find(queue.begin(), queue.end(), id);
    if (it != queue.end()) {
      queue.erase(it);
      return true;
    }
  }
  return false;
}

void FairScheduler::release() {
  if (live_ > 0) --live_;
}

std::size_t FairScheduler::queued() const {
  std::size_t n = 0;
  for (const auto& [name, queue] : tenants_) n += queue.size();
  return n;
}

}  // namespace glova::serve
