// Fig. 4 reproduction: the three analog/mixed-signal testcase circuits.
//
// The figure is a schematic; its quantitative content is the circuit
// inventory.  We print each testbench's sizing space, metric targets, and
// mismatch dimensionality, and run one transistor-level SPICE transient of
// the StrongARM latch through the in-repo MNA engine to show the actual
// regenerative waveform behind the schematic.
#include <cstdio>

#include "circuits/registry.hpp"
#include "circuits/spice_backend.hpp"
#include "spice/simulator.hpp"

using namespace glova;

int main() {
  printf("Fig. 4 — testcase circuit inventory\n\n");
  for (const auto tc : circuits::all_testcases()) {
    const auto tb = circuits::make_testbench(tc);
    const auto& sz = tb->sizing();
    const auto& perf = tb->performance();
    std::vector<double> x01(sz.dimension(), 0.5);
    const auto x = sz.denormalize(x01);
    const auto layout = tb->mismatch_layout(x, true);
    printf("%s\n", tb->name().c_str());
    printf("  sizing parameters : %zu (design space ~10^%.0f)\n", sz.dimension(),
           sz.log10_space_size());
    printf("  mismatch space    : %zu coordinates\n", layout.dimension());
    printf("  metrics           :");
    for (const auto& m : perf.metrics) {
      printf(" %s %s %.4g %s;", m.name.c_str(),
             m.sense == circuits::Sense::MinimizeBelow ? "<=" : ">=", m.bound / m.unit_scale,
             m.unit.c_str());
    }
    printf("\n\n");
  }

  // Transistor-level SAL evaluation through the MNA engine.
  circuits::StrongArmLatchSpice sal_spice;
  const auto& sz = sal_spice.sizing();
  std::vector<double> x01 = {0.2, 0.3, 0.2, 0.2, 0.2, 0.1, 0.2, 0.0, 0.0, 0.0, 0.0, 0.0, 0.05, 0.01};
  const auto x = sz.denormalize(x01);
  const auto ckt = sal_spice.build_netlist(x, pdk::typical_corner(), {});
  printf("StrongARM latch SPICE netlist: %zu nodes, %zu MOSFETs, %zu capacitors, %zu sources\n",
         ckt.node_count(), ckt.mosfets().size(), ckt.capacitors().size(), ckt.vsources().size());
  const auto metrics = sal_spice.evaluate(x, pdk::typical_corner(), {});
  printf("SPICE-extracted metrics: power=%.3g uW, set delay=%.3g ns, reset delay=%.3g ns, "
         "noise=%.3g uV\n",
         metrics[0] * 1e6, metrics[1] * 1e9, metrics[2] * 1e9, metrics[3] * 1e6);
  return 0;
}
