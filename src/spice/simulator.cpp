#include "spice/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace glova::spice {

namespace {

/// Linearized MOSFET: drain-to-source current and its partial derivatives
/// with respect to the gate, drain and source node voltages.
struct MosLinearization {
  double i_ds = 0.0;
  double d_vg = 0.0;
  double d_vd = 0.0;
  double d_vs = 0.0;
};

/// Square-law evaluation for an NMOS-oriented channel (vds >= 0 assumed by
/// the caller): returns current and (gm, gds).
struct NmosEval {
  double id = 0.0;
  double gm = 0.0;
  double gds = 0.0;
};

NmosEval nmos_square_law(const pdk::MosParams& p, double w_over_l, double vgs, double vds) {
  NmosEval e;
  const double vov = vgs - p.vth;
  if (vov <= 0.0 || vds <= 0.0) return e;  // cutoff
  const double k = p.kp * w_over_l;
  if (vds < vov) {
    // Triode region.
    const double clm = 1.0 + p.lambda * vds;
    e.id = k * (vov - 0.5 * vds) * vds * clm;
    e.gm = k * vds * clm;
    e.gds = k * ((vov - vds) * clm + (vov - 0.5 * vds) * vds * p.lambda);
  } else {
    // Saturation.
    const double clm = 1.0 + p.lambda * vds;
    e.id = 0.5 * k * vov * vov * clm;
    e.gm = k * vov * clm;
    e.gds = 0.5 * k * vov * vov * p.lambda;
  }
  return e;
}

/// NMOS including source/drain swap for vds < 0 (the channel is symmetric).
MosLinearization nmos_linearize(const pdk::MosParams& p, double w_over_l, double vg, double vd,
                                double vs) {
  MosLinearization lin;
  if (vd >= vs) {
    const NmosEval e = nmos_square_law(p, w_over_l, vg - vs, vd - vs);
    lin.i_ds = e.id;
    lin.d_vg = e.gm;
    lin.d_vd = e.gds;
    lin.d_vs = -(e.gm + e.gds);
  } else {
    // Swapped: physical source terminal acts as the channel drain.
    const NmosEval e = nmos_square_law(p, w_over_l, vg - vd, vs - vd);
    lin.i_ds = -e.id;
    lin.d_vg = -e.gm;
    lin.d_vs = -e.gds;
    lin.d_vd = e.gm + e.gds;
  }
  return lin;
}

/// Full linearization covering both polarities.  PMOS devices are evaluated
/// as NMOS on mirrored voltages; the mirror flips the current sign while the
/// chain rule cancels the sign on the derivatives.
MosLinearization mos_linearize(const Mosfet& m, double vg, double vd, double vs) {
  if (!m.params.is_pmos) {
    return nmos_linearize(m.params, m.w_over_l(), vg, vd, vs);
  }
  const MosLinearization mirrored = nmos_linearize(m.params, m.w_over_l(), -vg, -vd, -vs);
  MosLinearization lin;
  lin.i_ds = -mirrored.i_ds;
  lin.d_vg = mirrored.d_vg;
  lin.d_vd = mirrored.d_vd;
  lin.d_vs = mirrored.d_vs;
  return lin;
}

}  // namespace

const std::vector<double>& TransientResult::trace(const std::string& name) const {
  for (const Trace& t : traces) {
    if (t.name == name) return t.values;
  }
  throw std::out_of_range("TransientResult::trace: no trace named " + name);
}

bool TransientResult::has_trace(const std::string& name) const {
  for (const Trace& t : traces) {
    if (t.name == name) return true;
  }
  return false;
}

void SimulatorWorkspace::prepare(std::size_t n) {
  g.resize_zero(n);
  rhs.assign(n, 0.0);
  x_new.resize(n);
}

SimulatorWorkspace& thread_local_workspace() {
  thread_local SimulatorWorkspace workspace;
  return workspace;
}

Simulator::Simulator(const Circuit& circuit, SimulatorOptions options,
                     SimulatorWorkspace* workspace)
    : circuit_(circuit),
      options_(options),
      workspace_(workspace != nullptr ? workspace : &thread_local_workspace()),
      n_nodes_(circuit.node_count()),
      n_vsrc_(circuit.vsources().size()),
      n_vcvs_(circuit.vcvs().size()) {}

std::size_t Simulator::unknown_count() const { return (n_nodes_ - 1) + n_vsrc_ + n_vcvs_; }

std::size_t Simulator::node_unknown(NodeId node) const { return node - 1; }

double Simulator::voltage_of(const std::vector<double>& x, NodeId node) const {
  return node == Circuit::ground() ? 0.0 : x[node_unknown(node)];
}

void Simulator::assemble(const AssemblyInputs& in, DenseMatrix& g, std::vector<double>& rhs) const {
  const std::size_t n = unknown_count();
  g.set_zero();
  std::fill(rhs.begin(), rhs.end(), 0.0);
  if (rhs.size() != n) throw std::logic_error("assemble: rhs size");

  const auto stamp_conductance = [&](NodeId a, NodeId b, double cond) {
    if (a != Circuit::ground()) {
      g.at(node_unknown(a), node_unknown(a)) += cond;
      if (b != Circuit::ground()) g.at(node_unknown(a), node_unknown(b)) -= cond;
    }
    if (b != Circuit::ground()) {
      g.at(node_unknown(b), node_unknown(b)) += cond;
      if (a != Circuit::ground()) g.at(node_unknown(b), node_unknown(a)) -= cond;
    }
  };
  const auto stamp_current_into = [&](NodeId node, double current) {
    if (node != Circuit::ground()) rhs[node_unknown(node)] += current;
  };

  // gmin to ground keeps cutoff regions non-singular.
  for (NodeId nd = 1; nd < n_nodes_; ++nd) g.at(node_unknown(nd), node_unknown(nd)) += options_.gmin;

  for (const Resistor& r : circuit_.resistors()) stamp_conductance(r.a, r.b, 1.0 / r.ohms);

  if (in.mode == Mode::Transient) {
    const std::vector<Capacitor>& caps = circuit_.capacitors();
    for (std::size_t ci = 0; ci < caps.size(); ++ci) {
      const Capacitor& c = caps[ci];
      const double v_prev =
          (in.x_prev != nullptr)
              ? voltage_of(*in.x_prev, c.a) - voltage_of(*in.x_prev, c.b)
              : 0.0;
      if (in.trapezoidal) {
        // i_{n+1} = (2C/dt)(v_{n+1} - v_n) - i_n
        const double geq = 2.0 * c.farads / in.dt;
        const double i_prev = (in.cap_current_prev != nullptr) ? (*in.cap_current_prev)[ci] : 0.0;
        stamp_conductance(c.a, c.b, geq);
        stamp_current_into(c.a, geq * v_prev + i_prev);
        stamp_current_into(c.b, -(geq * v_prev + i_prev));
      } else {
        // Backward Euler: i_{n+1} = (C/dt)(v_{n+1} - v_n)
        const double geq = c.farads / in.dt;
        stamp_conductance(c.a, c.b, geq);
        stamp_current_into(c.a, geq * v_prev);
        stamp_current_into(c.b, -geq * v_prev);
      }
    }
  }
  // In OP mode capacitors are open circuits: no stamp.

  const std::vector<VoltageSource>& vsrcs = circuit_.vsources();
  for (std::size_t si = 0; si < vsrcs.size(); ++si) {
    const VoltageSource& v = vsrcs[si];
    const std::size_t branch = (n_nodes_ - 1) + si;
    const double value = v.waveform.value(in.time) * in.source_scale;
    if (v.pos != Circuit::ground()) {
      g.at(node_unknown(v.pos), branch) += 1.0;
      g.at(branch, node_unknown(v.pos)) += 1.0;
    }
    if (v.neg != Circuit::ground()) {
      g.at(node_unknown(v.neg), branch) -= 1.0;
      g.at(branch, node_unknown(v.neg)) -= 1.0;
    }
    rhs[branch] += value;
  }

  for (const CurrentSource& i : circuit_.isources()) {
    const double value = i.waveform.value(in.time) * in.source_scale;
    stamp_current_into(i.pos, -value);
    stamp_current_into(i.neg, value);
  }

  const std::vector<Vcvs>& vcvs = circuit_.vcvs();
  for (std::size_t ei = 0; ei < vcvs.size(); ++ei) {
    const Vcvs& e = vcvs[ei];
    const std::size_t branch = (n_nodes_ - 1) + n_vsrc_ + ei;
    if (e.pos != Circuit::ground()) {
      g.at(node_unknown(e.pos), branch) += 1.0;
      g.at(branch, node_unknown(e.pos)) += 1.0;
    }
    if (e.neg != Circuit::ground()) {
      g.at(node_unknown(e.neg), branch) -= 1.0;
      g.at(branch, node_unknown(e.neg)) -= 1.0;
    }
    if (e.ctrl_pos != Circuit::ground()) g.at(branch, node_unknown(e.ctrl_pos)) -= e.gain;
    if (e.ctrl_neg != Circuit::ground()) g.at(branch, node_unknown(e.ctrl_neg)) += e.gain;
  }

  for (const Vccs& gm : circuit_.vccs()) {
    const auto stamp = [&](NodeId row, NodeId col, double val) {
      if (row != Circuit::ground() && col != Circuit::ground()) {
        g.at(node_unknown(row), node_unknown(col)) += val;
      }
    };
    stamp(gm.pos, gm.ctrl_pos, gm.transconductance);
    stamp(gm.pos, gm.ctrl_neg, -gm.transconductance);
    stamp(gm.neg, gm.ctrl_pos, -gm.transconductance);
    stamp(gm.neg, gm.ctrl_neg, gm.transconductance);
  }

  // MOSFETs: companion model around the current Newton iterate.
  const std::vector<double>& x_guess = *in.x_guess;
  for (const Mosfet& m : circuit_.mosfets()) {
    const double vg = voltage_of(x_guess, m.gate);
    const double vd = voltage_of(x_guess, m.drain);
    const double vs = voltage_of(x_guess, m.source);
    const MosLinearization lin = mos_linearize(m, vg, vd, vs);
    // i(vg, vd, vs) ~ i0 + d_vg*(Vg - vg) + d_vd*(Vd - vd) + d_vs*(Vs - vs)
    const double i_eq = lin.i_ds - lin.d_vg * vg - lin.d_vd * vd - lin.d_vs * vs;
    const auto stamp_row = [&](NodeId row, double sign) {
      if (row == Circuit::ground()) return;
      const std::size_t r = node_unknown(row);
      if (m.gate != Circuit::ground()) g.at(r, node_unknown(m.gate)) += sign * lin.d_vg;
      if (m.drain != Circuit::ground()) g.at(r, node_unknown(m.drain)) += sign * lin.d_vd;
      if (m.source != Circuit::ground()) g.at(r, node_unknown(m.source)) += sign * lin.d_vs;
      rhs[r] -= sign * i_eq;
    };
    stamp_row(m.drain, 1.0);   // current i_ds leaves the drain node
    stamp_row(m.source, -1.0); // and enters the source node
  }
}

bool Simulator::newton_solve(const AssemblyInputs& in, std::vector<double>& x,
                             int* iterations_out) const {
  const std::size_t n = unknown_count();
  SimulatorWorkspace& ws = *workspace_;
  ws.prepare(n);
  AssemblyInputs iter_in = in;
  for (int it = 0; it < options_.max_newton_iterations; ++it) {
    iter_in.x_guess = &x;
    assemble(iter_in, ws.g, ws.rhs);
    if (!ws.solver.factor(ws.g)) return false;
    ws.solver.solve_into(ws.rhs, ws.x_new);
    const std::vector<double>& x_new = ws.x_new;
    // Damped update: clamp the voltage change per iteration.
    double max_delta = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double delta = x_new[i] - x[i];
      if (i < n_nodes_ - 1) {
        delta = std::clamp(delta, -options_.max_step_voltage, options_.max_step_voltage);
        max_delta = std::max(max_delta, std::abs(delta));
      }
      x[i] += delta;
    }
    if (max_delta < options_.vtol) {
      if (iterations_out != nullptr) *iterations_out = it + 1;
      return true;
    }
  }
  return false;
}

OpResult Simulator::operating_point() {
  OpResult result;
  std::vector<double> x(unknown_count(), 0.0);

  AssemblyInputs in;
  in.mode = Mode::Op;
  in.time = 0.0;

  int iterations = 0;
  bool ok = newton_solve(in, x, &iterations);
  if (!ok) {
    // Source stepping: ramp all independent sources from 0 to full value.
    std::fill(x.begin(), x.end(), 0.0);
    ok = true;
    for (int step = 1; step <= options_.source_steps; ++step) {
      in.source_scale = static_cast<double>(step) / options_.source_steps;
      if (!newton_solve(in, x, &iterations)) {
        ok = false;
        break;
      }
    }
    in.source_scale = 1.0;
  }

  result.converged = ok;
  result.iterations = iterations;
  if (ok) {
    result.node_voltages.assign(n_nodes_, 0.0);
    for (NodeId nd = 1; nd < n_nodes_; ++nd) result.node_voltages[nd] = x[node_unknown(nd)];
    result.vsource_currents.assign(n_vsrc_, 0.0);
    for (std::size_t si = 0; si < n_vsrc_; ++si) result.vsource_currents[si] = x[(n_nodes_ - 1) + si];
  }
  return result;
}

TransientResult Simulator::transient(const TransientSpec& spec) {
  TransientResult result;
  if (spec.dt <= 0.0 || spec.t_stop <= 0.0) {
    result.error = "transient: dt and t_stop must be positive";
    return result;
  }

  // --- initial state ---
  std::vector<double> x(unknown_count(), 0.0);
  if (spec.use_ic) {
    for (const auto& [name, value] : spec.initial_conditions) {
      const NodeId node = circuit_.find_node(name);
      if (node != Circuit::ground()) x[node_unknown(node)] = value;
    }
    // Also honor capacitor initial voltages for caps to ground.
    for (const Capacitor& c : circuit_.capacitors()) {
      if (c.initial_voltage && c.b == Circuit::ground() && c.a != Circuit::ground()) {
        x[node_unknown(c.a)] = *c.initial_voltage;
      }
    }
  } else {
    OpResult op = operating_point();
    if (!op.converged) {
      result.error = "transient: DC operating point failed to converge";
      return result;
    }
    for (NodeId nd = 1; nd < n_nodes_; ++nd) x[node_unknown(nd)] = op.node_voltages[nd];
    for (std::size_t si = 0; si < n_vsrc_; ++si) x[(n_nodes_ - 1) + si] = op.vsource_currents[si];
  }

  // --- set up recording ---
  std::vector<NodeId> record_nodes;
  if (spec.record.empty()) {
    for (NodeId nd = 1; nd < n_nodes_; ++nd) record_nodes.push_back(nd);
  } else {
    for (const std::string& name : spec.record) record_nodes.push_back(circuit_.find_node(name));
  }
  result.traces.reserve(record_nodes.size() + n_vsrc_);
  for (const NodeId nd : record_nodes) result.traces.push_back(Trace{circuit_.node_name(nd), {}});
  for (const VoltageSource& v : circuit_.vsources()) {
    result.traces.push_back(Trace{"I(" + v.name + ")", {}});
  }

  const auto record_point = [&](double time, const std::vector<double>& solution) {
    result.times.push_back(time);
    std::size_t ti = 0;
    for (const NodeId nd : record_nodes) result.traces[ti++].values.push_back(voltage_of(solution, nd));
    for (std::size_t si = 0; si < n_vsrc_; ++si) {
      result.traces[ti++].values.push_back(solution[(n_nodes_ - 1) + si]);
    }
  };

  record_point(0.0, x);

  // --- time stepping ---
  const std::size_t n_caps = circuit_.capacitors().size();
  std::vector<double> cap_current(n_caps, 0.0);
  std::vector<double> x_prev = x;
  const auto n_steps = static_cast<std::size_t>(std::ceil(spec.t_stop / spec.dt));

  for (std::size_t step = 1; step <= n_steps; ++step) {
    const double t = std::min(spec.t_stop, static_cast<double>(step) * spec.dt);
    const double dt = t - static_cast<double>(step - 1) * spec.dt > 0.0
                          ? t - result.times.back()
                          : spec.dt;
    AssemblyInputs in;
    in.mode = Mode::Transient;
    in.time = t;
    in.dt = dt;
    // Backward-Euler startup damps the artificial transient from imperfect
    // initial conditions; trapezoidal afterwards for accuracy.
    in.trapezoidal = step > 2;
    in.x_prev = &x_prev;
    in.cap_current_prev = &cap_current;

    if (!newton_solve(in, x, nullptr)) {
      result.error = "transient: Newton failed at t = " + std::to_string(t);
      return result;
    }

    // Update per-capacitor branch currents for the trapezoidal companion.
    const std::vector<Capacitor>& caps = circuit_.capacitors();
    for (std::size_t ci = 0; ci < n_caps; ++ci) {
      const Capacitor& c = caps[ci];
      const double v_now = voltage_of(x, c.a) - voltage_of(x, c.b);
      const double v_was = voltage_of(x_prev, c.a) - voltage_of(x_prev, c.b);
      if (in.trapezoidal) {
        cap_current[ci] = 2.0 * c.farads / dt * (v_now - v_was) - cap_current[ci];
      } else {
        cap_current[ci] = c.farads / dt * (v_now - v_was);
      }
    }

    record_point(t, x);
    x_prev = x;
  }

  result.ok = true;
  return result;
}

}  // namespace glova::spice
