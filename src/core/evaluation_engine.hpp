// EvaluationEngine: the only gate through which optimizers reach the
// testbench.  Every caller — GlovaOptimizer, the Verifier, TuRBO init, the
// PVTSizing/RobustAnalog baselines, and the benches — submits evaluations
// here instead of touching the Testbench directly.  The engine provides:
//
//   * batched submission over the shared thread pool, honoring a real
//     parallelism setting (the paper runs N' = 3 samples concurrently during
//     optimization and "maximum available resources" during verification),
//   * a bounded, thread-safe memoization cache keyed by (quantized design
//     vector, corner, mismatch draw), so repeated evaluations of the same
//     condition are answered without re-simulating.  Counters distinguish
//     *requested* simulations (the paper's "# Simulation" column, returned
//     by simulation_count()) from *actually run* ones,
//   * a modeled runtime (each SPICE run is far more expensive than the
//     optimizer bookkeeping around it); only ratios matter — Table II
//     reports *normalized* runtime.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <iosfwd>
#include <list>
#include <memory>
#include <mutex>
#include <semaphore>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "circuits/testbench.hpp"
#include "common/thread_pool.hpp"
#include "pdk/corner.hpp"

namespace glova::core {

class SurrogateModel;

struct SimulationCost {
  /// Modeled cost of one SPICE simulation in arbitrary time units; the
  /// per-iteration optimizer overhead is a fraction of this.  Only ratios
  /// matter: Table II reports *normalized* runtime.
  double per_simulation = 1.0;
  double per_rl_iteration = 2.0;

  friend bool operator==(const SimulationCost&, const SimulationCost&) = default;
};

struct EngineConfig {
  /// Maximum simulations in flight for one batch.  0 = use every thread-pool
  /// worker; 1 = strictly sequential.
  std::size_t parallelism = 0;
  /// Batches smaller than this run inline: behavioral evaluations are
  /// microseconds each, so fan-out only pays off from a few tasks up.
  std::size_t min_parallel_batch = 8;
  /// Memoization cache capacity in entries (LRU eviction).  0 disables
  /// caching entirely.
  std::size_t cache_capacity = 4096;
  /// Quantization step applied to design/mismatch coordinates when forming
  /// cache keys.  Coarse enough to absorb round-trip noise, fine enough that
  /// distinct mismatch draws never alias.
  double cache_quantum = 1e-15;
  /// Enable the SPICE-level DC warm-start cache (converged operating points
  /// reused as Newton seeds across mismatch draws of one design).  Applied
  /// to the process-wide spice::set_dc_warm_start_enabled switch at engine
  /// construction; behavioral testbenches are unaffected.
  bool dc_warm_start = true;
  /// Route same-(x, corner) mismatch-draw groups through the testbench's
  /// batched evaluator (spice::BatchSimulator lockstep marching) when it
  /// supports one.  Cache misses of one evaluate_batch() call become one
  /// batched group; memoization and DC warm starts compose as usual.  Off by
  /// default: with adaptive stepping and bypass off the batched metrics are
  /// bit-identical, but the sequential path stays the reference.
  bool batched_draws = false;
  /// LTE-adaptive timestep control in the SPICE transient (process-wide
  /// spice::set_adaptive_timestep_default, like dc_warm_start).  Changes
  /// metric values within the controller's truncation-error tolerance.
  bool adaptive_timestep = false;
  /// Newton LU-bypass (chord iterations on retained factors, process-wide
  /// spice::set_newton_bypass_default).  Changes metrics within Newton vtol.
  bool newton_bypass = false;
  /// Convergence-recovery ladder in the SPICE engine (process-wide
  /// spice::set_recovery_default): gmin stepping for hard DC points, substep
  /// cutting and restart-from-DC for transient Newton failures.  Off by
  /// default — with every recovery knob off, solves are bit-identical to
  /// previous releases.
  bool recovery = false;
  /// Re-run a failed evaluation up to this many times with the recovery
  /// ladder escalated each attempt (spice::set_recovery_escalation) before
  /// giving up.  0 = no retries: a failed evaluation keeps the backend's
  /// legacy penalty metrics.
  int max_eval_retries = 0;
  /// Cooperative per-evaluation deadline in Newton iterations (process-wide
  /// spice::set_deadline_default; per lane in the batched evaluator).  A run
  /// that exhausts it aborts deterministically with FailureStage::Deadline.
  /// 0 = no deadline.
  std::uint64_t eval_deadline_steps = 0;
  /// Graceful degradation: when an evaluation still fails after every retry,
  /// quarantine it to the testbench's degraded_fallback() (the behavioral
  /// sibling for SPICE backends) instead of accepting the penalty sentinel.
  /// Off by default — opt-in because the fallback's metrics are modeled, not
  /// simulated.
  bool degrade_to_behavioral = false;
  /// MOSFET channel model for every SPICE simulation this engine drives
  /// (process-wide spice::set_mos_model_default, like dc_warm_start).
  /// "level1" (default): the historical square law with hard sub-Vth cutoff
  /// — bit-identical to previous releases.  "ekv": the continuous
  /// weak/strong-inversion model (docs/architecture.md#mos-models), which
  /// keeps channels conductive at cold low-voltage corners the Level-1
  /// model cuts off at.  Any other value is rejected at construction.
  std::string mos_model = "level1";
  /// Replace the analytic noise budget of SPICE testbenches with the
  /// simulated small-signal AC/noise pass on the converged DC operating
  /// point (process-wide spice::set_noise_analysis_default; see
  /// docs/architecture.md#ac-noise).  Off by default — behavioral
  /// testbenches and every pinned baseline are unaffected.
  bool spice_noise = false;
  /// Path of the persistent cross-session memo-cache file (see
  /// core/persistent_cache.hpp).  Non-empty: the engine loads matching
  /// entries into its LRU at construction and merges the LRU back to disk on
  /// destruction (or flush_persistent_cache()), so repeated points across
  /// sessions, campaigns, and glova-serve restarts are answered without
  /// re-simulating.  The file is tagged with the testbench name and every
  /// numerics-affecting knob; a foreign tag is rejected at construction.
  /// Must not contain whitespace (the RunSpec grammar is space-separated).
  /// Empty (default) = no persistence.
  std::string cache_path;
  /// Surrogate pre-ranking (speculative evaluation): train a small MLP on
  /// every executed observation and, once warmed up, confirm only the
  /// predicted-extreme `surrogate_keep` fraction of each candidate batch by
  /// real simulation — the benign middle is answered from the model (counted
  /// as surrogate_prunes, never cached, never counted executed).  Strictly
  /// opt-in: off (default), every result is bit-identical to previous
  /// releases.  See docs/architecture.md#speculative-evaluation.
  bool surrogate = false;
  /// Fraction of each pre-ranked batch SPICE confirms; in (0, 1].
  double surrogate_keep = 0.5;
  /// Executed observations the surrogate trains on before it may prune.
  std::size_t surrogate_warmup = 64;

  friend bool operator==(const EngineConfig&, const EngineConfig&) = default;
};

/// Counter snapshot.  requested == cache_hits + executed + surrogate_prunes
/// at any quiescent point (the last term is zero unless the opt-in surrogate
/// mode is on); requested is what simulation_count() reports.  The dc_warm_*
/// counters report SPICE warm-start activity (summed over every worker
/// thread's cache) since this engine was constructed or reset_count() was
/// last called, so the whole evaluation funnel reads from one snapshot;
/// concurrent activity from *other* engines in the same process is still
/// included, matching the one-engine-per-run usage everywhere here.
struct EngineStats {
  std::uint64_t requested = 0;
  std::uint64_t executed = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t dc_warm_hits = 0;
  std::uint64_t dc_warm_misses = 0;
  std::uint64_t dc_warm_stores = 0;
  /// Simulator-level activity (same delta-vs-snapshot convention as the
  /// dc_warm_* counters): batched draw groups and their total lanes, chord
  /// solves vs refactors under Newton bypass, and the adaptive timestep
  /// controller's accepted/rejected step totals.
  std::uint64_t batch_groups = 0;
  std::uint64_t batch_lanes = 0;
  std::uint64_t bypass_solves = 0;
  std::uint64_t bypass_refactors = 0;
  std::uint64_t steps_accepted = 0;
  std::uint64_t steps_rejected = 0;
  /// Convergence-recovery funnel: DC points and transient steps the
  /// simulator's recovery ladder rescued, and runs its cooperative deadline
  /// aborted (same delta-vs-snapshot convention as above).
  std::uint64_t recovered_dc = 0;
  std::uint64_t recovered_transient = 0;
  std::uint64_t deadline_aborts = 0;
  /// Engine-level recovery: failed evaluations re-run with an escalated
  /// recovery ladder, and evaluations quarantined to the degraded
  /// (behavioral) fallback after exhausting their retries.
  std::uint64_t retries = 0;
  std::uint64_t degraded_evals = 0;
  /// Speculative-evaluation funnel (all zero unless EngineConfig::surrogate):
  /// batch candidates answered from the surrogate instead of simulation,
  /// surrogate-ranked survivors confirmed by real simulation, and training
  /// steps the model has taken over its lifetime (the model — and this count —
  /// persists with the memo-cache file across sessions).
  std::uint64_t surrogate_prunes = 0;
  std::uint64_t surrogate_confirms = 0;
  std::uint64_t surrogate_train_steps = 0;
};

class EvaluationEngine {
 public:
  explicit EvaluationEngine(circuits::TestbenchPtr testbench, EngineConfig config = {});
  /// Compatibility constructor: engine defaults with an explicit parallelism.
  EvaluationEngine(circuits::TestbenchPtr testbench, std::size_t parallelism);
  /// Blocks until every submit()-queued evaluation has finished: a queued
  /// task touches the engine's counters and cache, so they must not outlive
  /// the engine.
  ~EvaluationEngine();

  /// Evaluate one design under one corner and many mismatch conditions.
  /// `hs` may contain empty vectors (nominal mismatch).  Results preserve
  /// order.  Thread-safe.
  [[nodiscard]] std::vector<std::vector<double>> evaluate_batch(
      std::span<const double> x_phys, const pdk::PvtCorner& corner,
      const std::vector<std::vector<double>>& hs);

  /// Single evaluation (counted, cached).
  [[nodiscard]] std::vector<double> evaluate_one(std::span<const double> x_phys,
                                                 const pdk::PvtCorner& corner,
                                                 std::span<const double> h);

  /// Asynchronous single evaluation: a cache hit resolves immediately, a
  /// miss is queued on the shared thread pool.  Counted like evaluate_one.
  /// Individually submitted evaluations honor EngineConfig::parallelism:
  /// every execution path (submit, evaluate_one, evaluate_batch) acquires a
  /// slot from one shared counting semaphore, so the combined in-flight
  /// simulation count of this engine never exceeds the cap.
  [[nodiscard]] std::future<std::vector<double>> submit(std::span<const double> x_phys,
                                                        const pdk::PvtCorner& corner,
                                                        std::span<const double> h);

  /// The circuit under evaluation (stateless-const; shared across engines).
  [[nodiscard]] const circuits::Testbench& testbench() const { return *testbench_; }
  /// Shared ownership of the testbench (e.g. to build a sibling engine).
  [[nodiscard]] circuits::TestbenchPtr testbench_ptr() const { return testbench_; }
  /// The knobs this engine was constructed with.
  [[nodiscard]] const EngineConfig& config() const { return config_; }

  /// Requested simulations — the paper's "# Simulation" semantics.  Cache
  /// hits count: the caller asked for that simulation whether or not the
  /// engine had to run it.
  [[nodiscard]] std::uint64_t simulation_count() const { return requested_.load(); }
  /// Full counter snapshot (requested/executed/cache-hit + dc_warm_*).
  [[nodiscard]] EngineStats stats() const;
  /// Zero every counter and re-baseline the process-wide warm-start deltas.
  void reset_count();

  /// Current number of memoized evaluations (<= EngineConfig::cache_capacity).
  [[nodiscard]] std::size_t cache_size() const;
  /// Drop every memoized evaluation (counters are unaffected).
  void clear_cache();

  /// The (testcase, backend, numerics-config) tag this engine stamps on (and
  /// requires of) its persistent cache file; see core/persistent_cache.hpp.
  [[nodiscard]] std::string persistent_cache_tag() const;
  /// Merge the live LRU (and, in surrogate mode, the trained model) into the
  /// EngineConfig::cache_path file through the atomic-rename path.  No-op
  /// when no cache_path is configured.  Also runs in the destructor (where a
  /// failure is logged, not thrown).
  void flush_persistent_cache();

  /// Text-serialize the engine's counters and memoization cache (LRU order
  /// preserved) so a restored engine answers the same requests with the same
  /// hit/miss pattern.  The process-wide SPICE counter deltas accrued so far
  /// are folded into a carried snapshot, so stats() of a restored engine in a
  /// fresh process continues from the saved totals.  Configuration is NOT
  /// serialized — `load_state` expects an engine constructed with the same
  /// EngineConfig and testbench.  With the surrogate off the frame is the
  /// byte-identical v1 of previous releases; surrogate mode writes v2, which
  /// adds the speculative-evaluation counters and model.  load_state reads
  /// both.
  void save_state(std::ostream& os) const;
  void load_state(std::istream& is);

 private:
  /// Flat integer cache key: corner fields, then quantized x, a separator,
  /// then quantized h.  Vector equality is exact key equality.
  using CacheKey = std::vector<std::int64_t>;

  struct CacheKeyHash {
    std::size_t operator()(const CacheKey& key) const noexcept;
  };

  [[nodiscard]] CacheKey make_key(std::span<const double> x_phys, const pdk::PvtCorner& corner,
                                  std::span<const double> h) const;
  [[nodiscard]] bool cache_lookup(const CacheKey& key, std::vector<double>& out);
  void cache_insert(CacheKey key, const std::vector<double>& metrics);
  [[nodiscard]] std::size_t effective_parallelism() const;
  /// Run one evaluation while holding a parallelism slot (no-op when the
  /// engine is uncapped).  Never held across anything that could block on
  /// another slot, so slot-holders always make progress.
  [[nodiscard]] std::vector<double> evaluate_with_slot(std::span<const double> x_phys,
                                                       const pdk::PvtCorner& corner,
                                                       std::span<const double> h);
  /// testbench().evaluate with the failure funnel applied: an
  /// EvaluationError is retried with the recovery ladder escalated, then
  /// degraded to the behavioral fallback, then resolved to the backend's
  /// penalty metrics — so callers above the funnel never see the exception.
  [[nodiscard]] std::vector<double> evaluate_guarded(std::span<const double> x_phys,
                                                     const pdk::PvtCorner& corner,
                                                     std::span<const double> h);
  /// The retry / degrade tail of the funnel, shared by the sequential and
  /// batched paths.  `penalty` is returned when everything fails.
  [[nodiscard]] std::vector<double> recover_or_degrade(std::span<const double> x_phys,
                                                       const pdk::PvtCorner& corner,
                                                       std::span<const double> h,
                                                       const std::vector<double>& penalty);
  /// Load EngineConfig::cache_path into the LRU (and the persisted surrogate
  /// model, when surrogate mode is on) at construction.
  void load_persistent_cache();
  /// Surrogate feature vector: corner features + x + h zero-padded to the
  /// full mismatch dimension (fixed lazily from the testbench layout).
  /// Returns empty when the sample cannot fit the model's geometry.  Caller
  /// holds surrogate_mutex_.
  [[nodiscard]] std::vector<double> surrogate_input(std::span<const double> x_phys,
                                                    const pdk::PvtCorner& corner,
                                                    std::span<const double> h);
  /// Train the model on one executed observation (no-op unless surrogate
  /// mode is on; builds the model lazily).  Caller holds surrogate_mutex_.
  void observe_surrogate(std::span<const double> x_phys, const pdk::PvtCorner& corner,
                         std::span<const double> h, const std::vector<double>& metrics);
  /// Train on every executed index of a finished batch, in index order (so
  /// training order — and therefore the model — is deterministic).
  void train_surrogate(std::span<const double> x_phys, const pdk::PvtCorner& corner,
                       const std::vector<std::vector<double>>& hs,
                       const std::vector<std::size_t>& executed_indices,
                       const std::vector<std::vector<double>>& results);
  /// Speculative pre-ranking: answer the predicted-benign middle of the miss
  /// set from the model and shrink miss_indices/miss_keys to the
  /// predicted-extreme survivors SPICE confirms.  Predictions are never
  /// inserted into the memo cache.
  void prune_with_surrogate(std::span<const double> x_phys, const pdk::PvtCorner& corner,
                            const std::vector<std::vector<double>>& hs,
                            std::vector<std::size_t>& miss_indices,
                            std::vector<CacheKey>& miss_keys,
                            std::vector<std::vector<double>>& results);

  circuits::TestbenchPtr testbench_;
  EngineConfig config_;
  /// Shared in-flight cap for every execution path; null when
  /// config_.parallelism == 0 (uncapped: the pool size is the only bound).
  std::unique_ptr<std::counting_semaphore<>> slots_;

  std::atomic<std::uint64_t> requested_{0};
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> degraded_evals_{0};
  std::atomic<std::uint64_t> surrogate_prunes_{0};
  std::atomic<std::uint64_t> surrogate_confirms_{0};
  /// Process-wide spice warm-start counters at construction / last reset;
  /// stats() reports deltas against these.
  std::uint64_t warm_base_hits_ = 0;
  std::uint64_t warm_base_misses_ = 0;
  std::uint64_t warm_base_stores_ = 0;
  /// Process-wide simulator counters (batch/bypass/adaptive/recovery) at the
  /// same baseline instant.
  std::uint64_t spice_base_[9] = {0, 0, 0, 0, 0, 0, 0, 0, 0};
  void snapshot_warm_baseline();
  /// Counter totals carried over from a previous process via load_state();
  /// stats() adds these to the live deltas.  All-zero outside resumes.
  EngineStats carried_;

  mutable std::mutex cache_mutex_;
  /// LRU: most recent at the front.  The map points into the list.
  std::list<std::pair<CacheKey, std::vector<double>>> lru_;
  std::unordered_map<CacheKey, decltype(lru_)::iterator, CacheKeyHash> index_;

  /// Surrogate state (model, normalization, padded mismatch dimension), all
  /// guarded by surrogate_mutex_.  Training happens after a batch completes,
  /// on the submitting thread in index order, so the model evolves
  /// deterministically for the step-driven single-submitter usage every
  /// optimizer follows.
  mutable std::mutex surrogate_mutex_;
  std::unique_ptr<SurrogateModel> surrogate_;
  std::size_t surrogate_h_dim_ = 0;
  bool surrogate_h_dim_set_ = false;

  /// submit()-queued work still in flight; drained by the destructor.
  std::mutex pending_mutex_;
  std::vector<std::future<void>> pending_;
};

}  // namespace glova::core
