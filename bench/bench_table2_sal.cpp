// Table II reproduction, StrongARM latch block.
//
// Paper values (Kim et al., DAC 2025, Table II, SAL columns).  Our substrate
// is a behavioral simulator rather than HSPICE on a 28 nm PDK, so absolute
// numbers differ; the comparison of interest is the *shape*: Ours needs the
// fewest iterations/simulations, PVTSizing sits in between, RobustAnalog is
// the most expensive, and only Ours holds 100 % success everywhere.
#include "bench_common.hpp"

using namespace glova;
using bench::PaperCell;

int main() {
  bench::BenchOptions options = bench::options_from_env();
  // paper[method][verif]: {RL iterations, # simulations, norm. runtime, success}
  const std::vector<std::vector<PaperCell>> paper = {
      {{6, 83, 1.00, 1.00}, {8, 3103, 1.00, 1.00}, {12, 8809, 1.00, 1.00}},        // Ours
      {{19, 186, 2.77, 1.00}, {24, 10748, 3.45, 1.00}, {27, 31221, 3.81, 1.00}},   // PVTSizing
      {{104, 442, 11.17, 1.00}, {124, 12683, 4.43, 1.00}, {297, 75920, 9.63, 1.00}},  // RobustAnalog
  };
  bench::print_table2_block(circuits::Testcase::Sal, paper, options);
  return 0;
}
