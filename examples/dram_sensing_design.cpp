// DRAM sensing path design — the paper's hardest testcase.
//
// Sizes the offset-cancellation sense amplifier + subhole drivers under
// corner + global-local Monte Carlo verification (1K samples x 6 VT
// corners), then stress-tests the verified design with a fresh 6,000-sample
// sweep and reports the observed worst-case sensing margins.
#include <algorithm>
#include <cstdio>

#include "circuits/registry.hpp"
#include "core/reward.hpp"
#include "core/run_spec.hpp"
#include "pdk/variation.hpp"

int main() {
  using namespace glova;
  const auto bench = circuits::make_testbench(circuits::Testcase::DramOcsa);

  core::RunSpec spec;
  spec.testcase = circuits::Testcase::DramOcsa;
  spec.method = core::VerifMethod::C_MCGL;
  spec.seed = 5;
  const auto result = core::make_optimizer(spec, bench)->run();
  printf("optimization: success=%s iterations=%zu simulations=%llu\n",
         result.success ? "yes" : "no", result.rl_iterations,
         static_cast<unsigned long long>(result.n_simulations));
  if (!result.success) return 1;

  const auto& sizing = bench->sizing();
  printf("\nverified sizing:\n");
  for (std::size_t i = 0; i < sizing.dimension(); ++i) {
    printf("  %-8s = %.4g um\n", sizing.names[i].c_str(), result.x_phys_final[i] * 1e6);
  }

  // Independent wafer-style stress test: fresh global+local draws.
  const auto& perf = bench->performance();
  std::vector<double> worst(perf.count(), 1e9);
  Rng rng(777);
  int failures = 0;
  for (const auto& corner : pdk::vt_corner_set()) {
    const auto layout = bench->mismatch_layout(result.x_phys_final, true);
    const auto hs = pdk::sample_mismatch_set(layout, 1000, rng, pdk::GlobalMode::PerSample);
    for (const auto& h : hs) {
      const auto m = bench->evaluate(result.x_phys_final, corner, h);
      for (std::size_t i = 0; i < perf.count(); ++i) {
        const double margin = circuits::normalized_margin(perf.metrics[i], m[i]);
        if (margin < 0.0) ++failures;
        if (perf.metrics[i].sense == circuits::Sense::MaximizeAbove) {
          worst[i] = std::min(worst[i], m[i]);
        } else {
          worst[i] = std::min(worst[i], perf.metrics[i].bound - (m[i] - perf.metrics[i].bound));
        }
      }
    }
  }
  printf("\nindependent 6,000-sample stress test: %d failing checks\n", failures);
  printf("worst observed dVD0 = %.1f mV (target >= 85), dVD1 = %.1f mV (target >= 85)\n",
         worst[0] * 1e3, worst[1] * 1e3);
  return failures == 0 ? 0 : 2;
}
