#include "rl/agent.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <ostream>
#include <sstream>

#include "common/state_io.hpp"
#include "common/text.hpp"
#include "nn/loss.hpp"

namespace glova::rl {

namespace {

nn::Mlp make_actor(std::size_t design_dim, std::size_t hidden, Rng stream) {
  // 4-layer network; sigmoid output keeps proposals inside [0,1]^p.
  return nn::Mlp(std::vector<std::size_t>{design_dim, hidden, hidden, hidden, design_dim},
                 nn::Activation::Tanh, nn::Activation::Sigmoid, stream);
}

EnsembleCritic make_critic(std::size_t design_dim, const CriticConfig& config, Rng stream) {
  return EnsembleCritic(design_dim, config, stream);
}

}  // namespace

RiskSensitiveAgent::RiskSensitiveAgent(std::size_t design_dim, const AgentConfig& config, Rng rng)
    : config_(config),
      rng_(rng),
      actor_(make_actor(design_dim, config.hidden, rng.split(0xAC70))),
      actor_opt_(actor_.parameter_count(),
                 nn::AdamConfig{config.actor_learning_rate, 0.9, 0.999, 1e-8}),
      critic_(make_critic(design_dim, config.critic, rng.split(0xC217))),
      noise_(config.noise_initial) {}

double RiskSensitiveAgent::update(const WorstCaseReplayBuffer& buffer) {
  if (buffer.empty()) return 0.0;
  ++updates_;

  // --- critic: each base model trains on its own batch (Sec. IV-B) ---
  for (std::size_t i = 0; i < critic_.ensemble_size(); ++i) {
    const std::vector<Experience> batch = buffer.sample(config_.batch_size, rng_);
    std::vector<std::vector<double>> xs;
    std::vector<double> rs;
    xs.reserve(batch.size());
    rs.reserve(batch.size());
    for (const Experience& e : batch) {
      xs.push_back(e.x01);
      rs.push_back(e.reward);
    }
    critic_.train_base(i, xs, rs);
  }

  // --- actor: minimize MSE(0.2, Q(A(x)) + bias) through the frozen critic ---
  const std::vector<Experience> batch = buffer.sample(config_.batch_size, rng_);
  std::vector<double> grad(actor_.parameter_count(), 0.0);
  double loss = 0.0;
  nn::Mlp::Workspace ws;
  const double scale = 1.0 / static_cast<double>(batch.size());
  for (const Experience& e : batch) {
    const std::vector<double> action = actor_.forward(e.x01, ws);
    const double q = critic_.predict(action) + config_.critic.bias;
    loss += nn::mse(q, config_.target_reward) * scale;
    const double dLdq = nn::mse_grad_scalar(q, config_.target_reward) * scale;
    const std::vector<double> dLda = critic_.input_gradient(action, dLdq);
    (void)actor_.backward(ws, dLda, grad);
  }
  actor_opt_.step(actor_.parameters(), grad);
  return loss;
}

std::vector<double> RiskSensitiveAgent::propose(std::span<const double> x_last) {
  std::vector<double> x_new = actor_.forward(x_last);
  for (double& v : x_new) {
    v = std::clamp(v + rng_.normal(0.0, noise_), 0.0, 1.0);
  }
  noise_ = std::max(config_.noise_min, noise_ * config_.noise_decay);
  return x_new;
}

std::vector<double> RiskSensitiveAgent::propose_screened(std::span<const double> x_last,
                                                         std::size_t candidates) {
  const std::vector<double> mean = actor_.forward(x_last);
  std::vector<double> best = mean;
  double best_bound = -std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < std::max<std::size_t>(candidates, 1); ++c) {
    std::vector<double> cand = mean;
    // A fraction of candidates explore at doubled noise so the screen can
    // escape shallow local basins.
    const double sigma = (c % 4 == 3) ? 2.0 * noise_ : noise_;
    for (double& v : cand) v = std::clamp(v + rng_.normal(0.0, sigma), 0.0, 1.0);
    const double bound = critic_.predict(cand);
    if (bound > best_bound) {
      best_bound = bound;
      best = std::move(cand);
    }
  }
  noise_ = std::max(config_.noise_min, noise_ * config_.noise_decay);
  return best;
}

std::vector<double> RiskSensitiveAgent::act(std::span<const double> x_last) const {
  return actor_.forward(x_last);
}

void RiskSensitiveAgent::save(std::ostream& os) const {
  os << "agent " << updates_ << ' ' << format_double_roundtrip(noise_) << '\n';
  os << "agent_rng " << rng_.save() << '\n';
  actor_.save(os);
  actor_opt_.save(os);
  critic_.save(os);
}

void RiskSensitiveAgent::load(std::istream& is) {
  std::istringstream head(state::expect_line(is, "agent"));
  std::size_t updates = 0;
  double noise = 0.0;
  if (!(head >> updates >> noise)) state::bad("malformed agent header");
  rng_.restore(state::expect_line(is, "agent_rng"));
  actor_.load(is);
  actor_opt_.load(is);
  critic_.load(is);
  updates_ = updates;
  noise_ = noise;
}

}  // namespace glova::rl
