// glova-serve daemon: the long-lived campaign service (docs/serve.md).
//
//   glova_serve --spool DIR [--port N] [--port-file PATH] [--workers N]
//               [--max-jobs N] [--steps-per-quantum N] [--checkpoint-every N]
//               [--cache-dir DIR]
//
// Binds 127.0.0.1 (port 0 = ephemeral; --port-file publishes the bound port
// for scripts), serves the line protocol until a client sends SHUTDOWN or
// the process receives SIGINT/SIGTERM, then checkpoints every in-flight
// campaign and exits 0.  A SIGKILL skips the final checkpoint — by design,
// the periodic spool checkpoints are enough to resume bit-identically on the
// next start (the CI serve-smoke job kills and restarts exactly this way).
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>

#include "common/fsio.hpp"
#include "serve/server.hpp"

namespace {

volatile std::sig_atomic_t g_signal = 0;

void on_signal(int) { g_signal = 1; }

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --spool DIR [--port N] [--port-file PATH] [--workers N] [--max-jobs N]"
               " [--steps-per-quantum N] [--checkpoint-every N] [--cache-dir DIR]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  glova::serve::ServerConfig config;
  std::string port_file;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    const char* v = nullptr;
    if (arg == "--spool" && (v = value())) {
      config.spool_dir = v;
    } else if (arg == "--port" && (v = value())) {
      config.port = static_cast<std::uint16_t>(std::atoi(v));
    } else if (arg == "--port-file" && (v = value())) {
      port_file = v;
    } else if (arg == "--workers" && (v = value())) {
      config.workers = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--max-jobs" && (v = value())) {
      config.max_jobs = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--steps-per-quantum" && (v = value())) {
      config.steps_per_quantum = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--checkpoint-every" && (v = value())) {
      config.checkpoint_every_steps = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--cache-dir" && (v = value())) {
      config.cache_dir = v;
    } else {
      return usage(argv[0]);
    }
  }
  if (config.spool_dir.empty()) return usage(argv[0]);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  try {
    glova::serve::Server server(std::move(config));
    server.start();
    std::cout << "glova-serve: port " << server.port() << std::endl;
    if (!port_file.empty()) {
      glova::atomic_write_file(port_file, std::to_string(server.port()) + "\n");
    }
    // Poll instead of blocking in wait(): a signal handler cannot safely
    // notify a condition variable, and 100 ms of shutdown latency is fine
    // for a daemon.
    while (g_signal == 0 && !server.shutdown_requested()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    server.stop(/*checkpoint=*/true);
  } catch (const std::exception& e) {
    std::cerr << "glova-serve: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
