// Step-driven optimizer sessions: the control-plane API of the repo.
//
// Every optimization algorithm (GLOVA, PVTSizing, RobustAnalog) is a
// `core::Optimizer` — a resumable session driven one iteration at a time:
//
//   auto opt = core::make_optimizer(spec);        // see run_spec.hpp
//   while (!opt->done()) opt->step();             // external control loop
//   const core::GlovaResult& res = opt->result();
//
// `run()` survives as a thin loop over `step()` and produces bit-identical
// fixed-seed results (tests/test_optimizer_session.cpp pins the parity; the
// pinned-seed regression pins the absolute numbers).  Callers observe
// progress through `RunObserver` (one callback per iteration, carrying the
// `IterationTrace` row plus an `EngineStats` snapshot) and bound a session
// with `RunBudget` (simulations / iterations / wall-clock) or `cancel()` —
// both terminate with a well-formed partial result, no algorithm forked.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/evaluation_engine.hpp"

namespace glova::core {

/// One row of the per-iteration trace (Fig. 3 reproduction).
struct IterationTrace {
  std::size_t iteration = 0;
  double reward_worst = 0.0;        ///< sampled worst-case reward of x_new
  double critic_mean = 0.0;         ///< E[Q_i(x_new)]
  double critic_bound = 0.0;        ///< E + beta1 * sigma (Eq. 6)
  bool mu_sigma_pass = false;       ///< step-4 gate outcome
  bool attempted_verification = false;
  std::uint64_t sims_total = 0;     ///< cumulative simulations
};

struct GlovaResult {
  bool success = false;             ///< true iff full verification passed
  std::size_t rl_iterations = 0;    ///< completed main-loop iterations
  /// Requested simulations — the paper's "# Simulation" column.  Cache hits
  /// count: the optimizer asked for them whether or not they had to run.
  std::uint64_t n_simulations = 0;
  /// Simulations the engine actually ran (n_simulations - n_cache_hits).
  std::uint64_t n_simulations_executed = 0;
  std::uint64_t n_cache_hits = 0;
  /// Full evaluation-funnel snapshot (requested/executed/cache-hit plus the
  /// SPICE dc_warm_* counters), identical across GLOVA and both baselines so
  /// Table II comparisons read from one funnel.
  EngineStats engine_stats;
  double wall_seconds = 0.0;        ///< measured wall time (timing; excluded
                                    ///< from bit-identical parity checks)
  double modeled_runtime = 0.0;     ///< sims * t_sim + iterations * t_iter
  std::uint64_t turbo_evaluations = 0;  ///< typical-condition init samples
  std::vector<double> x01_final;    ///< verified design (normalized), if any
  std::vector<double> x_phys_final; ///< verified design (physical units)
  std::vector<IterationTrace> trace;
  std::string termination;          ///< "verified" / "iteration-cap" / ...
};

/// Line-oriented text serialization of a GlovaResult (final or partial);
/// doubles round-trip via max_digits10.  One shared codec: campaign
/// checkpoints (every version) and optimizer session state embed results in
/// exactly this byte form.
void write_glova_result(std::ostream& os, const GlovaResult& r);
[[nodiscard]] GlovaResult read_glova_result(std::istream& is);

/// Session-level resource limits, enforced after every step.  0 = unlimited.
/// `max_iterations` here is a cross-algorithm cap on top of whatever
/// iteration limit the algorithm's own config carries.
struct RunBudget {
  std::uint64_t max_simulations = 0;
  std::size_t max_iterations = 0;
  double max_wall_seconds = 0.0;

  /// The termination reason this budget assigns to the given usage, or
  /// nullptr while everything is within limits.
  [[nodiscard]] const char* exceeded_by(std::uint64_t simulations, std::size_t iterations,
                                        double wall_seconds) const;

  friend bool operator==(const RunBudget&, const RunBudget&) = default;
};

class Optimizer;

/// Progress callbacks.  `on_iteration` fires once per completed step with
/// the trace row the step produced and a fresh engine-stats snapshot; the
/// non-const session reference lets observers call `cancel()` (budget
/// enforcement, early stopping).  Callbacks run on the driving thread.
class RunObserver {
 public:
  virtual ~RunObserver() = default;
  virtual void on_start(Optimizer& /*session*/) {}
  virtual void on_iteration(Optimizer& /*session*/, const IterationTrace& /*trace*/,
                            const EngineStats& /*stats*/) {}
  virtual void on_finish(Optimizer& /*session*/, const GlovaResult& /*result*/) {}
};

/// Abstract optimizer session.  Derived classes hoist their former run()
/// stack state into members and implement do_start/do_step; this base owns
/// the loop protocol, budgets, cancellation, observers, and the common
/// result finalization (engine stats, wall time, modeled runtime).
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Perform one optimization iteration (the first call also runs the
  /// algorithm's initialization).  Returns true if work was done, false if
  /// the session had already finished.
  bool step();

  /// True once the session has terminated (verified, capped, budget-stopped,
  /// or cancelled).  No further step() will do work.
  [[nodiscard]] bool done() const { return finished_; }

  /// The finalized result.  Valid only once done(); throws std::logic_error
  /// while the session is still running.
  [[nodiscard]] const GlovaResult& result() const;

  /// Run the session to termination: a thin loop over step().
  [[nodiscard]] GlovaResult run();

  /// Request termination.  Mid-run (from an observer) the current step
  /// completes and the session finishes with `termination == reason`; called
  /// between steps the session finishes immediately with a well-formed
  /// partial result.
  void cancel(std::string reason = "cancelled");
  [[nodiscard]] bool cancel_requested() const { return cancel_requested_; }

  /// Session budget, enforced by the base after every step (the sibling
  /// BudgetObserver offers the same checks for externally shared budgets).
  void set_budget(RunBudget budget) { budget_ = budget; }
  [[nodiscard]] const RunBudget& budget() const { return budget_; }

  void add_observer(std::shared_ptr<RunObserver> observer);

  [[nodiscard]] virtual const char* algorithm_name() const = 0;

  /// True when the algorithm implements replay-free state serialization
  /// (save_state/load_state below).  Campaign checkpoints fall back to
  /// deterministic replay for algorithms that return false.
  [[nodiscard]] virtual bool supports_state_serialization() const { return false; }

  /// Serialize the live session — the partial result plus the algorithm's
  /// full internal state (agent weights, RNG streams, buffers, engine
  /// counters/cache) — so an identically configured fresh session restored
  /// via load_state() continues bit-identically without replaying a single
  /// step.  Only a started, unfinished session can be saved; throws
  /// std::logic_error otherwise (terminal sessions are captured by their
  /// result, fresh ones by their spec).
  void save_state(std::ostream& os) const;

  /// Restore a session saved by save_state().  Must be called on a fresh
  /// session (no step() yet) constructed with the same configuration and
  /// testbench; the session is `started` afterwards and the next step()
  /// continues where the saved one left off.  Observer on_start callbacks do
  /// not re-fire.  Throws std::logic_error on protocol misuse and
  /// std::runtime_error on malformed state.
  void load_state(std::istream& is);

  /// Iterations completed so far (== result().rl_iterations when done).
  [[nodiscard]] std::size_t iterations_completed() const { return result_.rl_iterations; }

  /// The session's evaluation engine; nullptr before the first step.
  [[nodiscard]] const EvaluationEngine* engine() const { return engine_ptr(); }

  /// Seconds since the first step (0 before it).
  [[nodiscard]] double elapsed_seconds() const;

 protected:
  /// One-time initialization (engine construction, initial sampling, agent
  /// warm-up).  Runs inside the first step().
  virtual void do_start() = 0;
  /// One iteration of the algorithm's main loop.  Returns true while more
  /// work remains, false when the algorithm has terminated on its own
  /// (verified, or its configured iteration cap was reached).
  virtual bool do_step() = 0;
  /// Algorithm-specific result fields beyond the common finalization.
  virtual void do_finalize(GlovaResult& /*result*/) {}
  /// Algorithm-specific state serialization behind save_state()/load_state().
  /// The default implementations throw std::logic_error; algorithms that
  /// override both also override supports_state_serialization().
  virtual void do_save_state(std::ostream& os) const;
  virtual void do_load_state(std::istream& is);
  [[nodiscard]] virtual const EvaluationEngine* engine_ptr() const = 0;
  [[nodiscard]] virtual const SimulationCost& cost() const = 0;

  GlovaResult result_;

 private:
  void finish();

  bool started_ = false;
  bool finished_ = false;
  bool in_step_ = false;
  bool cancel_requested_ = false;
  std::string cancel_reason_;
  RunBudget budget_;
  std::vector<std::shared_ptr<RunObserver>> observers_;
  std::chrono::steady_clock::time_point t0_{};
  /// Wall seconds accrued before a load_state() restore; elapsed_seconds()
  /// (and thus wall-clock budgets) count across process restarts.
  double wall_offset_ = 0.0;
};

// ---------------------------------------------------------------------------
// Built-in observers.

/// Logs one line every `every` iterations (and on start/finish) via log_info.
class ProgressLogObserver final : public RunObserver {
 public:
  explicit ProgressLogObserver(std::size_t every = 25);
  void on_start(Optimizer& session) override;
  void on_iteration(Optimizer& session, const IterationTrace& trace,
                    const EngineStats& stats) override;
  void on_finish(Optimizer& session, const GlovaResult& result) override;

 private:
  std::size_t every_;
};

/// Cancels the session when an externally supplied budget is exhausted —
/// the observer-side twin of Optimizer::set_budget, for attaching a limit
/// after construction.  The checks read the observed session's own usage,
/// so use one instance per session (a fleet-wide shared budget would need
/// aggregate accounting this observer does not do).
class BudgetObserver final : public RunObserver {
 public:
  explicit BudgetObserver(RunBudget budget) : budget_(budget) {}
  void on_iteration(Optimizer& session, const IterationTrace& trace,
                    const EngineStats& stats) override;

 private:
  RunBudget budget_;
};

/// Cancels after `patience` consecutive iterations without the sampled
/// worst-case reward improving by more than `min_improvement`.
class EarlyStopObserver final : public RunObserver {
 public:
  explicit EarlyStopObserver(std::size_t patience, double min_improvement = 0.0);
  void on_iteration(Optimizer& session, const IterationTrace& trace,
                    const EngineStats& stats) override;

 private:
  std::size_t patience_;
  double min_improvement_;
  std::size_t stalled_ = 0;
  double best_ = 0.0;
  bool has_best_ = false;
};

}  // namespace glova::core
