// Bring your own circuit: implement the Testbench interface and GLOVA's
// whole machinery (risk-sensitive RL, mu-sigma gate, reordered verification)
// works on it unchanged.
//
// The example circuit is a two-stage RC-loaded common-source amplifier
// modeled behaviorally: metrics are DC gain (maximize) and bias power
// (minimize), with Pelgrom mismatch on the two transistors.
#include <cmath>
#include <cstdio>

#include "circuits/testbench.hpp"
#include "core/run_spec.hpp"
#include "pdk/mos_params.hpp"

namespace {

using namespace glova;

class CommonSourceAmp final : public circuits::Testbench {
 public:
  CommonSourceAmp() {
    sizing_.names = {"W1", "W2", "L1", "L2", "Rload"};
    sizing_.lower = {0.28e-6, 0.28e-6, 0.03e-6, 0.03e-6, 1e3};
    sizing_.upper = {20e-6, 20e-6, 0.3e-6, 0.3e-6, 100e3};
    // Targets chosen to be in tension across corners: FF/hot inflates bias
    // current (power), SS/cold starves transconductance (gain).
    performance_.metrics = {
        circuits::MetricSpec{"gain", "V/V", 1.0, 15.0, circuits::Sense::MaximizeAbove},
        circuits::MetricSpec{"power", "uW", 1e-6, 500e-6, circuits::Sense::MinimizeBelow},
    };
  }

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const circuits::SizingSpec& sizing() const override { return sizing_; }
  [[nodiscard]] const circuits::PerformanceSpec& performance() const override {
    return performance_;
  }

  [[nodiscard]] pdk::MismatchLayout mismatch_layout(std::span<const double> x,
                                                    bool global_enabled) const override {
    const std::vector<pdk::DeviceGeometry> devices = {
        {"m1", false, x[0], x[2]},
        {"m2", false, x[1], x[3]},
    };
    return pdk::build_layout(devices, pdk::PelgromConstants{}, pdk::GlobalSigmas{},
                             global_enabled);
  }

  [[nodiscard]] std::vector<double> evaluate(std::span<const double> x,
                                             const pdk::PvtCorner& corner,
                                             std::span<const double> h) const override {
    const auto stage = [&](std::size_t w_i, std::size_t l_i, std::size_t dev,
                           double& gain, double& power) {
      const double dvth = h.empty() ? 0.0 : h[2 * dev];
      const double dbeta = h.empty() ? 0.0 : h[2 * dev + 1];
      const auto p = pdk::mos_params(false, corner, x[l_i], dvth, dbeta);
      const double vbias = 0.55 * corner.vdd;
      const double id = pdk::ekv_id(p, x[w_i] / x[l_i], vbias, 0.5 * corner.vdd, corner.temp_k());
      const double gm = 2.0 * id / std::max(pdk::ekv_overdrive(vbias - p.vth, corner.temp_k()), 1e-4);
      gain *= gm * x[4];
      power += id * corner.vdd;
    };
    double gain = 1.0;
    double power = 0.0;
    stage(0, 2, 0, gain, power);
    stage(1, 3, 1, gain, power);
    return {gain, power};
  }

 private:
  std::string name_ = "two-stage common-source amplifier (user circuit)";
  circuits::SizingSpec sizing_;
  circuits::PerformanceSpec performance_;
};

}  // namespace

int main() {
  using namespace glova;
  const auto bench = std::make_shared<CommonSourceAmp>();

  // The testbench overload of make_optimizer runs GLOVA's whole machinery on
  // a circuit the registry has never heard of.
  core::RunSpec spec;
  spec.method = core::VerifMethod::C_MCL;
  spec.seed = 1;
  const auto result = core::make_optimizer(spec, bench)->run();

  printf("custom circuit '%s'\n", bench->name().c_str());
  printf("success=%s iterations=%zu simulations=%llu\n", result.success ? "yes" : "no",
         result.rl_iterations, static_cast<unsigned long long>(result.n_simulations));
  if (result.success) {
    const auto m = bench->evaluate(result.x_phys_final, pdk::typical_corner(), {});
    printf("gain = %.1f V/V (>= 15), power = %.1f uW (<= 500)\n", m[0], m[1] * 1e6);
  }
  return result.success ? 0 : 1;
}
