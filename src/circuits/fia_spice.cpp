// FIA SPICE testbench: a push-pull inverter pair powered from a floating
// reservoir capacitor.
//
// Phases (all switches are MOSFETs so the DC operating point is solvable
// without initial conditions):
//   hold   [0, kHold):  the reservoir switches clamp res_top to vdd and
//                       res_bot to ground (charging C_res to vdd) and the
//                       output clamps hold out_a/out_b at vdd/2.
//   amplify [kHold, t_stop]: every switch opens; the inverters integrate the
//                       differential probe input onto the load caps while
//                       the floating reservoir droops.
//
// Measurement extraction (the block's Table II metrics):
//   * integration window t_int — first time the rail-to-rail reservoir
//     voltage droops below (1 - reservoir_swing) * vdd;
//   * gain — differential output developed over t_int divided by the probe
//     input; feeds the latch-offset term of the analytic noise budget;
//   * energy per conversion — recharge accounting from the measured droops
//     (reservoir + output loads) plus the analytic gate/overhead charge,
//     via spice::capacitor_recharge_energy.
#include "circuits/spice_backend.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "circuits/parasitics.hpp"
#include "common/units.hpp"
#include "spice/ac.hpp"
#include "spice/batch.hpp"
#include "spice/measure.hpp"
#include "spice/warm_start.hpp"

namespace glova::circuits {

namespace {
// Switches flip at kHold: reservoir floats, output clamps release.
constexpr double kHold = 0.2e-9;
constexpr double kEdge = 20e-12;
// Switch gates are boosted so the NMOS clamps pass vdd/2 with full drive.
constexpr double kBoost = 0.45;
// Fixed (non-sized) switch geometry.
constexpr double kSwitchW = 4e-6;
constexpr double kClampW = 1e-6;
constexpr double kSwitchL = 30e-9;
// Warm-start cache tag (must not collide with the other testbenches).
constexpr std::uint64_t kFiaWarmStartTag = 0xF1A;

/// Effective single-ended output load: the sized cap plus the inverter
/// junction capacitance (exactly the behavioral c_load).  One derivation
/// shared by the netlist construction and the energy accounting.
double fia_output_load(std::span<const double> x) {
  return x[FiaSizing::kCLoad] +
         parasitics_28nm().c_junction * (x[FiaSizing::kWn] + x[FiaSizing::kWp]);
}
}  // namespace

FloatingInverterAmplifierSpice::FloatingInverterAmplifierSpice() = default;

spice::Circuit FloatingInverterAmplifierSpice::build_netlist(std::span<const double> x,
                                                             const pdk::PvtCorner& corner,
                                                             std::span<const double> h,
                                                             bool amplify_phase_dc) const {
  if (x.size() != FiaSizing::kCount) throw std::invalid_argument("FIA spice: bad sizing vector");
  if (!h.empty() && h.size() != 2 * kFiaDeviceCount) {
    throw std::invalid_argument("FIA spice: bad mismatch vector");
  }
  const double vdd = corner.vdd;
  const FiaConditions& cond = behavioral_.conditions();
  const auto dvth = [&](std::size_t d) { return h.empty() ? 0.0 : h[2 * d]; };
  const auto dbeta = [&](std::size_t d) { return h.empty() ? 0.0 : h[2 * d + 1]; };

  spice::Circuit ckt;
  const auto vdd_n = ckt.node("vdd");
  const auto pc = ckt.node("pc");      // PMOS reservoir-switch gate (low = on)
  const auto rstn = ckt.node("rstn");  // NMOS switch/clamp gate (high = on)
  const auto inp = ckt.node("inp");
  const auto inn = ckt.node("inn");
  const auto res_top = ckt.node("res_top");
  const auto res_bot = ckt.node("res_bot");
  const auto out_a = ckt.node("out_a");
  const auto out_b = ckt.node("out_b");
  const auto vcm_o = ckt.node("vcm_o");
  const auto gnd = spice::Circuit::ground();

  ckt.add_vsource("VDD", vdd_n, gnd, spice::Waveform::dc(vdd));
  const double vcm = cond.vcm_frac * vdd;
  if (amplify_phase_dc) {
    // Noise testbench: the floating reservoir has no DC path, so pin its
    // rails to ideal sources (the freshly-precharged state), hold every
    // switch and clamp off, and drive both inputs at the common mode.  The
    // DC solve then lands on the amplifying operating point the small-signal
    // pass linearizes around.
    ckt.add_vsource("VPC", pc, gnd, spice::Waveform::dc(vdd));
    ckt.add_vsource("VRSTN", rstn, gnd, spice::Waveform::dc(0.0));
    ckt.add_vsource("VREST", res_top, gnd, spice::Waveform::dc(vdd));
    ckt.add_vsource("VRESB", res_bot, gnd, spice::Waveform::dc(0.0));
    ckt.add_vsource("VCMO", vcm_o, gnd, spice::Waveform::dc(0.5 * vdd));
    ckt.add_vsource("VINP", inp, gnd, spice::Waveform::dc(vcm));
    ckt.add_vsource("VINN", inn, gnd, spice::Waveform::dc(vcm));
  } else {
    // Controls: pc rises (top switch off) while rstn falls (bottom switch and
    // output clamps off) at the hold -> amplify transition.
    ckt.add_vsource("VPC", pc, gnd,
                    spice::Waveform::pulse(0.0, vdd, kHold, kEdge, kEdge, 1.0, 0.0));
    ckt.add_vsource("VRSTN", rstn, gnd,
                    spice::Waveform::pulse(vdd + kBoost, 0.0, kHold, kEdge, kEdge, 1.0, 0.0));
    ckt.add_vsource("VCMO", vcm_o, gnd, spice::Waveform::dc(0.5 * vdd));
    ckt.add_vsource("VINP", inp, gnd, spice::Waveform::dc(vcm + 0.5 * cond.v_probe));
    ckt.add_vsource("VINN", inn, gnd, spice::Waveform::dc(vcm - 0.5 * cond.v_probe));
  }

  // Device instance order matches FloatingInverterAmplifier::devices():
  //   0 invn_a, 1 invn_b, 2 invp_a, 3 invp_b.
  const auto mos = [&](std::size_t d, bool pmos, std::size_t li) {
    return pdk::mos_params(pmos, corner, x[li], dvth(d), dbeta(d));
  };
  ckt.add_mosfet("Minv_na", out_a, inp, res_bot, mos(0, false, FiaSizing::kLn),
                 x[FiaSizing::kWn], x[FiaSizing::kLn]);
  ckt.add_mosfet("Minv_nb", out_b, inn, res_bot, mos(1, false, FiaSizing::kLn),
                 x[FiaSizing::kWn], x[FiaSizing::kLn]);
  ckt.add_mosfet("Minv_pa", out_a, inp, res_top, mos(2, true, FiaSizing::kLp),
                 x[FiaSizing::kWp], x[FiaSizing::kLp]);
  ckt.add_mosfet("Minv_pb", out_b, inn, res_top, mos(3, true, FiaSizing::kLp),
                 x[FiaSizing::kWp], x[FiaSizing::kLp]);

  // Reservoir precharge switches and output common-mode clamps (fixed
  // geometry, nominal parameters: they are infrastructure, not designables).
  const auto sw_n = pdk::mos_params(false, corner, kSwitchL);
  const auto sw_p = pdk::mos_params(true, corner, kSwitchL);
  ckt.add_mosfet("Msw_top", res_top, pc, vdd_n, sw_p, kSwitchW, kSwitchL);
  ckt.add_mosfet("Msw_bot", res_bot, rstn, gnd, sw_n, kSwitchW, kSwitchL);
  ckt.add_mosfet("Mrst_a", out_a, rstn, vcm_o, sw_n, kClampW, kSwitchL);
  ckt.add_mosfet("Mrst_b", out_b, rstn, vcm_o, sw_n, kClampW, kSwitchL);

  // The floating reservoir and the loads.
  const Parasitics& par = parasitics_28nm();
  const double c_load = fia_output_load(x);
  ckt.add_capacitor("Cres", res_top, res_bot, x[FiaSizing::kCRes]);
  ckt.add_capacitor("Cout_a", out_a, gnd, c_load);
  ckt.add_capacitor("Cout_b", out_b, gnd, c_load);
  const double c_rail = 2e-15 + par.c_junction * (kSwitchW + 2.0 * x[FiaSizing::kWp]);
  ckt.add_capacitor("Crtop", res_top, gnd, c_rail);
  ckt.add_capacitor("Crbot", res_bot, gnd, c_rail);
  return ckt;
}

namespace {
/// Transient spec shared by the sequential and batched FIA paths: amplify
/// well past the nominal integration window so the reservoir droop has fully
/// developed when energy is measured.  The timebase comes from the
/// nominal-mismatch analysis, so every draw of one design shares it (which
/// also keeps the DC warm-start cache coherent).
spice::TransientSpec fia_transient_spec(double nominal_t_int) {
  spice::TransientSpec spec;
  const double window = std::clamp(4.0 * nominal_t_int, 0.4e-9, 40e-9);
  spec.t_stop = kHold + window;
  spec.dt = std::clamp(window / 2500.0, 0.5e-12, 16e-12);
  spec.record = {"res_top", "res_bot", "out_a", "out_b"};
  return spec;
}
}  // namespace

std::vector<double> FloatingInverterAmplifierSpice::evaluate(std::span<const double> x,
                                                             const pdk::PvtCorner& corner,
                                                             std::span<const double> h) const {
  const FiaAnalysis nominal = behavioral_.analyze(x, corner, {});

  const spice::Circuit ckt = build_netlist(x, corner, h);
  spice::Simulator sim(ckt, spice::default_simulator_options());
  const spice::TransientSpec spec = fia_transient_spec(nominal.t_int);

  const bool warm = spice::dc_warm_start_enabled();
  const spice::OpResult* seed = nullptr;
  spice::DcWarmStartCache::Key key;
  if (warm) {
    key = spice::make_dc_key(kFiaWarmStartTag, x, corner);
    seed = spice::thread_local_dc_cache().lookup(key);
  }
  const spice::TransientResult res = sim.transient(spec, seed);
  if (warm && res.ok && (seed == nullptr || !res.dc_op.warm_started)) {
    spice::thread_local_dc_cache().store(key, res.dc_op);
  }
  if (!res.ok) {
    // A non-convergent design fails every constraint so the optimizer
    // steers away (both metrics are MinimizeBelow); the structured report
    // lets the engine retry or degrade instead of accepting the penalty.
    throw EvaluationError(evaluation_failure_from(res.failure), {1.0, 1.0});
  }
  return metrics_from_transient(res, x, corner, h, spec.t_stop);
}

std::vector<std::vector<double>> FloatingInverterAmplifierSpice::evaluate_draws(
    std::span<const double> x, const pdk::PvtCorner& corner,
    std::span<const std::vector<double>> hs, std::vector<EvaluationFailure>& failures) const {
  const FiaAnalysis nominal = behavioral_.analyze(x, corner, {});
  const spice::TransientSpec spec = fia_transient_spec(nominal.t_int);

  std::vector<spice::Circuit> lanes;
  lanes.reserve(hs.size());
  for (const std::vector<double>& h : hs) lanes.push_back(build_netlist(x, corner, h));

  const bool warm = spice::dc_warm_start_enabled();
  const spice::OpResult* seed = nullptr;
  spice::DcWarmStartCache::Key key;
  if (warm) {
    key = spice::make_dc_key(kFiaWarmStartTag, x, corner);
    seed = spice::thread_local_dc_cache().lookup(key);
  }
  spice::BatchSimulator batch(lanes, spice::default_simulator_options());
  const std::vector<spice::TransientResult> results = batch.transient(spec, seed);
  if (warm) spice::sync_warm_start_cache(key, seed, results);

  std::vector<std::vector<double>> out;
  out.reserve(results.size());
  failures.assign(results.size(), {});
  for (std::size_t l = 0; l < results.size(); ++l) {
    if (results[l].ok) {
      out.push_back(metrics_from_transient(results[l], x, corner, hs[l], spec.t_stop));
    } else {
      failures[l] = evaluation_failure_from(results[l].failure);
      out.push_back({1.0, 1.0});
    }
  }
  return out;
}

std::vector<double> FloatingInverterAmplifierSpice::metrics_from_transient(
    const spice::TransientResult& res, std::span<const double> x, const pdk::PvtCorner& corner,
    std::span<const double> h, double t_stop) const {
  // The drawn analysis provides the noise components for this h.
  const FiaAnalysis drawn = behavioral_.analyze(x, corner, h);
  const FiaConditions& cond = behavioral_.conditions();
  const double vdd = corner.vdd;
  const auto& t = res.times;

  // Integration window: rail-to-rail reservoir voltage droops by
  // reservoir_swing * vdd.
  const std::vector<double> rail = spice::difference(res.trace("res_top"), res.trace("res_bot"));
  const auto t_droop = spice::first_crossing(t, rail, (1.0 - cond.reservoir_swing) * vdd,
                                             spice::CrossDirection::Falling, kHold);
  const double t_int = (t_droop ? *t_droop : t_stop) - kHold;

  // Gain: differential output developed over the window / probe input — the
  // measurement is trusted as-is.  (An earlier revision swapped in the
  // analytic EKV gain whenever the reservoir failed to droop, papering over
  // the Level-1 hard cutoff at cold low-voltage corners; with the engine's
  // `mos_model=ekv` option the simulated inverter itself keeps conducting in
  // sub-threshold, so the crutch is gone and a dead amp reports as dead.)
  const std::vector<double> diff = spice::difference(res.trace("out_a"), res.trace("out_b"));
  const double dv = spice::value_at(t, diff, kHold + t_int) - spice::value_at(t, diff, kHold);
  const double gain = std::max(0.05, std::abs(dv) / cond.v_probe);

  // Energy per conversion: recharge the measured reservoir and load droops,
  // plus the analytic gate/overhead charge (same terms as the behavioral
  // budget, with the full-swing reservoir assumption replaced by the
  // measured droop).  The reservoir recharges from the vdd rail; the
  // outputs are restored by the clamps from the vdd/2 common-mode rail.
  const Parasitics& par = parasitics_28nm();
  const double c_load = fia_output_load(x);
  const double c_gate = 2.0 * par.cox * (x[FiaSizing::kWn] * x[FiaSizing::kLn] +
                                         x[FiaSizing::kWp] * x[FiaSizing::kLp]);
  double energy = spice::capacitor_recharge_energy(x[FiaSizing::kCRes], vdd, vdd, rail.back()) +
                  (c_gate + cond.overhead_cap) * vdd * vdd;
  for (const char* out : {"out_a", "out_b"}) {
    energy +=
        spice::capacitor_recharge_energy(c_load, 0.5 * vdd, res.trace(out).back(), 0.5 * vdd);
  }

  // Noise: the analytic thermal/offset budget of this mismatch draw, with
  // the latch-offset term attenuated by the measured gain.  With the
  // engine's spice_noise knob on, the stationary thermal+flicker term comes
  // from the simulated amplify-phase AC pass instead
  // (docs/architecture.md#ac-noise); the offset and latch-referral terms
  // keep the analytic decomposition either way.
  FiaAnalysis budget = drawn;
  if (spice::noise_analysis_default()) {
    if (const std::optional<double> simulated = simulated_input_noise(x, corner, h)) {
      budget.vn2_thermal = *simulated * *simulated;
    }
  }
  const double noise = budget.noise_given_gain(gain, cond.latch_sigma);
  return {energy, noise};
}

std::optional<double> FloatingInverterAmplifierSpice::simulated_input_noise(
    std::span<const double> x, const pdk::PvtCorner& corner, std::span<const double> h) const {
  const spice::Circuit ckt = build_netlist(x, corner, h, /*amplify_phase_dc=*/true);
  spice::Simulator sim(ckt, spice::default_simulator_options());
  const spice::OpResult op = sim.operating_point();
  if (!op.converged) return std::nullopt;
  spice::AcNoiseSpec spec;
  spec.input = "VINP";
  spec.output_pos = "out_a";
  spec.output_neg = "out_b";
  spec.f_start = 1e6;
  spec.f_stop = 100e9;
  spec.temp_k = corner.temp_k();
  const spice::NoiseResult nr =
      spice::noise_analysis(ckt, op, spec, spice::default_simulator_options());
  if (!nr.ok || nr.gain_ref < 1e-3 || !std::isfinite(nr.input_noise_vrms)) return std::nullopt;
  return nr.input_noise_vrms;
}

}  // namespace glova::circuits
