// glova-serve: a long-lived campaign service over the line protocol.
//
// One Server owns:
//   - a loopback TCP listener (port 0 = ephemeral, see port()),
//   - a bounded per-tenant FairScheduler feeding a shared worker pool,
//   - the job table (every submitted job, live and terminal),
//   - a JobStore spool for crash-safe persistence.
//
// Jobs are campaigns: SUBMIT parses a SweepSpec, admission either queues it
// or rejects with a reason, and workers drive each campaign in fair quanta of
// `steps_per_quantum` Campaign::step() calls, checkpointing to the spool
// every `checkpoint_every_steps` steps through the atomic-rename path.  A
// killed server therefore restarts with every in-flight campaign resuming
// from its last periodic checkpoint — and, campaigns being fixed-seed
// deterministic, finishing with results bit-identical to an uninterrupted
// run (pinned by tests/test_serve.cpp and the CI serve-smoke job).
//
// WATCH subscribers receive the campaign's observer events as EVENT lines on
// their connection until the job reaches a terminal state.  Events are
// forwarded from the driving worker thread; a subscriber that stops reading
// stalls only its own stream buffer, not the optimization (writes block on
// the kernel socket buffer, which only a wholly absent reader fills).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/campaign.hpp"
#include "serve/job_store.hpp"
#include "serve/scheduler.hpp"

namespace glova::serve {

struct ServerConfig {
  std::string spool_dir;             ///< required: job + checkpoint spool
  std::uint16_t port = 0;            ///< loopback TCP port; 0 = ephemeral
  std::size_t workers = 2;           ///< campaign-driving threads
  std::size_t max_jobs = 64;         ///< live-job admission bound; 0 = unlimited
  std::size_t steps_per_quantum = 8; ///< Campaign::step() calls per turn
  std::size_t checkpoint_every_steps = 16;  ///< spool checkpoint cadence
  /// Directory for persistent memo-cache files, forwarded to every fresh
  /// campaign (CampaignConfig::cache_dir) and created at start(); campaigns
  /// resumed from a checkpoint restore it from the checkpoint itself.  A
  /// kill -9'd and restarted server re-serves previously simulated points
  /// with zero evaluations.  Empty = off.
  std::string cache_dir;
  /// Testbench factory forwarded to every campaign (and to Campaign::load on
  /// recovery).  Empty = the circuits registry.
  std::function<circuits::TestbenchPtr(const core::RunSpec&)> make_testbench;
};

/// Lifecycle of one served job.
enum class JobState { Queued, Running, Done, Failed, Cancelled };
[[nodiscard]] const char* to_string(JobState state);

class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();  ///< calls stop(true) if still running

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Recover spool jobs, bind the loopback listener, and spawn the accept +
  /// worker threads.  Throws std::runtime_error on socket/spool failure.
  void start();

  /// The bound port (after start()); useful with config.port == 0.
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Block until a client issues SHUTDOWN (or stop() is called).
  void wait();

  /// Stop the server: close the listener and every connection, drain the
  /// workers, and — when `checkpoint` is true (graceful shutdown) — write a
  /// final spool checkpoint for every in-flight campaign.  stop(false)
  /// skips that final save, leaving only the periodic checkpoints, exactly
  /// the on-disk state a SIGKILL leaves behind (the crash path the
  /// kill-and-restart tests exercise).  Idempotent.
  void stop(bool checkpoint);

  [[nodiscard]] bool shutdown_requested() const;

 private:
  struct Job;
  class WatchForwarder;

  void accept_loop();
  void connection_loop(int fd);
  void worker_loop();

  /// One scheduling quantum for `id`: build or restore the campaign if
  /// needed, drive it, checkpoint on cadence, retire or requeue.
  void run_quantum(const std::string& id);
  void retire_job(std::unique_lock<std::mutex>& lock, Job& job, JobState state,
                  std::string result_text);
  void recover_spool();

  // Request handlers: each writes its complete response (first line, any
  // payload lines, END) to `fd`.
  void handle_submit(int fd, const std::string& rest);
  void handle_status(int fd, const std::string& id);
  void handle_result(int fd, const std::string& id);
  void handle_cancel(int fd, const std::string& id);
  void handle_list(int fd);
  /// On success registers `fd` as a watcher and sets `watching` (the
  /// connection becomes a dedicated event stream); already-terminal jobs get
  /// their final events immediately.
  void handle_watch(int fd, const std::string& id, bool& watching);

  void send_event_locked(Job& job, const std::string& line);

  ServerConfig config_;
  JobStore store_;
  FairScheduler scheduler_;

  mutable std::mutex mutex_;
  std::condition_variable cv_work_;      ///< workers: queue non-empty or stopping
  std::condition_variable cv_shutdown_;  ///< wait(): SHUTDOWN or stop()
  std::map<std::string, std::unique_ptr<Job>> jobs_;  ///< ordered by id
  std::uint64_t next_job_number_ = 1;
  bool started_ = false;
  bool stopping_ = false;
  bool shutdown_requested_ = false;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  std::vector<std::thread> connections_;
  std::vector<int> connection_fds_;  ///< open connection sockets (guarded by mutex_)
};

}  // namespace glova::serve
