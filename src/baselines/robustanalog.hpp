// RobustAnalog baseline (He et al., MLCAD 2022 [8]): fast variation-aware
// sizing via multi-task RL, reimplemented from its published description for
// Table II.
//
// Characteristics the paper's comparison isolates:
//   - random initial sampling (no TuRBO) — the limitation PVTSizing fixed,
//   - every PVT corner is a task; k-means clustering of the corners'
//     performance signatures prunes the task set to the dominant corner of
//     each cluster, which is what gets simulated each iteration,
//   - periodic re-clustering (full corner sweeps on the incumbent design),
//   - risk-neutral critic; verification without mu-sigma or reordering.
#pragma once

#include "circuits/testbench.hpp"
#include "core/optimizer.hpp"

namespace glova::baselines {

struct RobustAnalogConfig {
  core::VerifMethod method = core::VerifMethod::C;
  std::size_t n_opt_samples = 3;
  std::size_t batch_size = 10;
  std::size_t hidden = 64;
  std::size_t max_iterations = 3000;
  std::size_t random_init_samples = 20;
  std::size_t clusters = 4;             ///< dominant-corner count
  std::size_t recluster_interval = 25;  ///< iterations between corner sweeps
  std::uint64_t seed = 1;
  core::SimulationCost cost;
  core::EngineConfig engine;
};

class RobustAnalogOptimizer {
 public:
  RobustAnalogOptimizer(circuits::TestbenchPtr testbench, RobustAnalogConfig config);

  [[nodiscard]] core::GlovaResult run();

 private:
  circuits::TestbenchPtr testbench_;
  RobustAnalogConfig config_;
  core::OperationalConfig op_config_;
};

}  // namespace glova::baselines
