#include "serve/protocol.hpp"

#include <cerrno>
#include <sstream>

#include <sys/socket.h>
#include <sys/types.h>

#include "common/state_io.hpp"
#include "core/optimizer_base.hpp"

namespace glova::serve {

std::vector<std::string> split_tokens(std::string_view text) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
    std::size_t j = i;
    while (j < text.size() && text[j] != ' ' && text[j] != '\t') ++j;
    if (j > i) tokens.emplace_back(text.substr(i, j - i));
    i = j;
  }
  return tokens;
}

Request parse_request(std::string_view line) {
  Request request;
  std::size_t i = 0;
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  std::size_t j = i;
  while (j < line.size() && line[j] != ' ' && line[j] != '\t') ++j;
  request.verb = std::string(line.substr(i, j - i));
  while (j < line.size() && (line[j] == ' ' || line[j] == '\t')) ++j;
  request.rest = std::string(line.substr(j));
  request.args = split_tokens(request.rest);
  return request;
}

std::string ok_line(std::string_view detail) {
  if (detail.empty()) return "OK";
  return "OK " + state::one_line(detail);
}

std::string err_line(std::string_view reason) {
  return "ERR " + state::one_line(reason);
}

std::string format_campaign_result(const core::CampaignResult& table) {
  std::ostringstream os;
  os << "campaign-result entries " << table.entries.size() << " finished " << table.finished
     << " failed " << table.failed << " retries " << table.session_retries
     << " total_simulations " << table.total_simulations << '\n';
  for (std::size_t i = 0; i < table.entries.size(); ++i) {
    const core::CampaignEntry& entry = table.entries[i];
    os << "entry " << i << ' ' << core::to_string(entry.state) << " steps " << entry.steps
       << " retries " << entry.retries << '\n';
    os << "spec " << entry.spec.to_string() << '\n';
    os << "error " << (entry.error.empty() ? "-" : state::one_line(entry.error)) << '\n';
    // wall_seconds is measured time, the one nondeterministic field; zero it
    // so resumed-vs-straight-through runs compare byte-identical.
    core::GlovaResult result = entry.result;
    result.wall_seconds = 0.0;
    core::write_glova_result(os, result);
  }
  return os.str();
}

bool LineIo::read_line(std::string& line) {
  for (;;) {
    const std::size_t pos = buffer_.find('\n');
    if (pos != std::string::npos) {
      line.assign(buffer_, 0, pos);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      buffer_.erase(0, pos + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

bool LineIo::write_line(std::string_view line) { return write_line(fd_, line); }

bool LineIo::write_line(int fd, std::string_view line) {
  std::string framed(line);
  framed += '\n';
  const char* data = framed.data();
  std::size_t remaining = framed.size();
  while (remaining > 0) {
    const ssize_t n = ::send(fd, data, remaining, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    remaining -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace glova::serve
