#include "nn/mlp.hpp"

#include <cmath>
#include <stdexcept>

#include "common/state_io.hpp"

namespace glova::nn {

double activate(Activation act, double x) {
  switch (act) {
    case Activation::Identity: return x;
    case Activation::Tanh: return std::tanh(x);
    case Activation::ReLU: return x > 0.0 ? x : 0.0;
    case Activation::Sigmoid: return 1.0 / (1.0 + std::exp(-x));
  }
  return x;
}

double activate_grad(Activation act, double x) {
  switch (act) {
    case Activation::Identity: return 1.0;
    case Activation::Tanh: {
      const double t = std::tanh(x);
      return 1.0 - t * t;
    }
    case Activation::ReLU: return x > 0.0 ? 1.0 : 0.0;
    case Activation::Sigmoid: {
      const double s = 1.0 / (1.0 + std::exp(-x));
      return s * (1.0 - s);
    }
  }
  return 1.0;
}

Mlp::Mlp(std::vector<std::size_t> sizes, Activation hidden, Activation output, Rng& rng)
    : sizes_(std::move(sizes)) {
  if (sizes_.size() < 2) throw std::invalid_argument("Mlp: need at least input and output layer");
  std::size_t total = 0;
  for (std::size_t l = 0; l + 1 < sizes_.size(); ++l) {
    total += sizes_[l] * sizes_[l + 1] + sizes_[l + 1];
  }
  params_.resize(total);
  layers_.reserve(sizes_.size() - 1);
  std::size_t offset = 0;
  for (std::size_t l = 0; l + 1 < sizes_.size(); ++l) {
    const std::size_t in = sizes_[l];
    const std::size_t out = sizes_[l + 1];
    const Activation act = (l + 2 == sizes_.size()) ? output : hidden;
    LayerView view{offset, offset + in * out, in, out, act};
    offset += in * out + out;
    // Xavier/Glorot uniform initialization keeps tanh layers in their linear
    // region at the start of training.
    const double bound = std::sqrt(6.0 / static_cast<double>(in + out));
    for (std::size_t i = 0; i < in * out; ++i) {
      params_[view.w_offset + i] = rng.uniform(-bound, bound);
    }
    for (std::size_t i = 0; i < out; ++i) params_[view.b_offset + i] = 0.0;
    layers_.push_back(view);
  }
}

std::vector<double> Mlp::forward(std::span<const double> x) const {
  if (x.size() != input_dim()) throw std::invalid_argument("Mlp::forward: bad input size");
  std::vector<double> cur(x.begin(), x.end());
  std::vector<double> next;
  for (const LayerView& layer : layers_) {
    next.assign(layer.out, 0.0);
    for (std::size_t o = 0; o < layer.out; ++o) {
      double z = params_[layer.b_offset + o];
      const double* w_row = &params_[layer.w_offset + o * layer.in];
      for (std::size_t i = 0; i < layer.in; ++i) z += w_row[i] * cur[i];
      next[o] = activate(layer.act, z);
    }
    cur.swap(next);
  }
  return cur;
}

std::vector<double> Mlp::forward(std::span<const double> x, Workspace& ws) const {
  if (x.size() != input_dim()) throw std::invalid_argument("Mlp::forward: bad input size");
  ws.pre.assign(layers_.size(), {});
  ws.post.assign(layers_.size() + 1, {});
  ws.post[0].assign(x.begin(), x.end());
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const LayerView& layer = layers_[l];
    ws.pre[l].assign(layer.out, 0.0);
    ws.post[l + 1].assign(layer.out, 0.0);
    const std::vector<double>& input = ws.post[l];
    for (std::size_t o = 0; o < layer.out; ++o) {
      double z = params_[layer.b_offset + o];
      const double* w_row = &params_[layer.w_offset + o * layer.in];
      for (std::size_t i = 0; i < layer.in; ++i) z += w_row[i] * input[i];
      ws.pre[l][o] = z;
      ws.post[l + 1][o] = activate(layer.act, z);
    }
  }
  return ws.post.back();
}

std::vector<double> Mlp::backprop(const Workspace& ws, std::span<const double> dLdy,
                                  std::span<double>* grad) const {
  if (dLdy.size() != output_dim()) throw std::invalid_argument("Mlp::backward: bad dLdy size");
  if (grad != nullptr && grad->size() != params_.size()) {
    throw std::invalid_argument("Mlp::backward: bad grad size");
  }
  std::vector<double> delta(dLdy.begin(), dLdy.end());
  std::vector<double> prev_delta;
  for (std::size_t li = layers_.size(); li-- > 0;) {
    const LayerView& layer = layers_[li];
    // delta currently holds dL/d(post-activation) of this layer.
    for (std::size_t o = 0; o < layer.out; ++o) {
      delta[o] *= activate_grad(layer.act, ws.pre[li][o]);
    }
    const std::vector<double>& input = ws.post[li];
    if (grad != nullptr) {
      for (std::size_t o = 0; o < layer.out; ++o) {
        double* gw_row = &(*grad)[layer.w_offset + o * layer.in];
        for (std::size_t i = 0; i < layer.in; ++i) gw_row[i] += delta[o] * input[i];
        (*grad)[layer.b_offset + o] += delta[o];
      }
    }
    prev_delta.assign(layer.in, 0.0);
    for (std::size_t o = 0; o < layer.out; ++o) {
      const double* w_row = &params_[layer.w_offset + o * layer.in];
      for (std::size_t i = 0; i < layer.in; ++i) prev_delta[i] += w_row[i] * delta[o];
    }
    delta.swap(prev_delta);
  }
  return delta;
}

std::vector<double> Mlp::backward(const Workspace& ws, std::span<const double> dLdy,
                                  std::span<double> grad) const {
  return backprop(ws, dLdy, &grad);
}

std::vector<double> Mlp::input_gradient(const Workspace& ws, std::span<const double> dLdy) const {
  return backprop(ws, dLdy, nullptr);
}

void Mlp::save(std::ostream& os) const { state::write_doubles(os, "mlp", params_); }

void Mlp::load(std::istream& is) {
  std::vector<double> params = state::read_doubles(is, "mlp");
  if (params.size() != params_.size()) {
    state::bad("Mlp state size mismatch: network has " + std::to_string(params_.size()) +
               " parameters, state holds " + std::to_string(params.size()));
  }
  params_ = std::move(params);
}

}  // namespace glova::nn
