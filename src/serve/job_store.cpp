#include "serve/job_store.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/fsio.hpp"
#include "common/state_io.hpp"

namespace glova::serve {

namespace fs = std::filesystem;

JobStore::JobStore(std::string spool_dir) : spool_dir_(std::move(spool_dir)) {
  std::error_code ec;
  for (const char* sub : {"jobs", "checkpoints", "results"}) {
    fs::create_directories(fs::path(spool_dir_) / sub, ec);
    if (ec) {
      throw std::runtime_error("glova-serve spool: cannot create '" + spool_dir_ + "/" + sub +
                               "': " + ec.message());
    }
  }
}

std::string JobStore::job_path(const std::string& id) const {
  return spool_dir_ + "/jobs/" + id + ".job";
}

std::string JobStore::checkpoint_path(const std::string& id) const {
  return spool_dir_ + "/checkpoints/" + id + ".ckpt";
}

std::string JobStore::result_path(const std::string& id) const {
  return spool_dir_ + "/results/" + id + ".result";
}

void JobStore::save_job(const JobRecord& record) const {
  std::ostringstream os;
  os << "glova-job v1\n";
  os << "id " << record.id << '\n';
  os << "tenant " << state::one_line(record.tenant) << '\n';
  os << "spec " << state::one_line(record.spec_text) << '\n';
  atomic_write_file(job_path(record.id), os.str());
}

std::vector<JobRecord> JobStore::load_jobs() const {
  std::vector<JobRecord> records;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(spool_dir_ + "/jobs", ec)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".job") continue;
    std::ifstream is(entry.path());
    if (!is) throw std::runtime_error("glova-serve spool: cannot read " + entry.path().string());
    JobRecord record;
    (void)state::expect_line(is, "glova-job");  // version checked implicitly below
    record.id = state::expect_line(is, "id");
    record.tenant = state::expect_line(is, "tenant");
    record.spec_text = state::expect_line(is, "spec");
    if (record.id.empty()) state::bad("job record with empty id: " + entry.path().string());
    records.push_back(std::move(record));
  }
  std::sort(records.begin(), records.end(),
            [](const JobRecord& a, const JobRecord& b) { return a.id < b.id; });
  return records;
}

void JobStore::save_result(const std::string& id, std::string_view state,
                           const std::string& text) const {
  std::string content = "glova-job-result v1\nstate ";
  content += state;
  content += '\n';
  content += text;
  atomic_write_file(result_path(id), content);
}

std::optional<TerminalRecord> JobStore::load_result(const std::string& id) const {
  std::ifstream is(result_path(id));
  if (!is) return std::nullopt;
  TerminalRecord record;
  (void)state::expect_line(is, "glova-job-result");
  record.state = state::expect_line(is, "state");
  std::ostringstream rest;
  rest << is.rdbuf();
  record.text = rest.str();
  return record;
}

void JobStore::remove_checkpoint(const std::string& id) const {
  std::remove(checkpoint_path(id).c_str());
}

std::uint64_t JobStore::max_job_number() const {
  std::uint64_t max_n = 0;
  for (const JobRecord& record : load_jobs()) {
    // ids are "job-<digits>"; foreign ids are ignored rather than rejected.
    const std::string_view id = record.id;
    if (id.substr(0, 4) != "job-") continue;
    std::uint64_t n = 0;
    bool numeric = id.size() > 4;
    for (std::size_t i = 4; i < id.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(id[i]))) {
        numeric = false;
        break;
      }
      n = n * 10 + static_cast<std::uint64_t>(id[i] - '0');
    }
    if (numeric) max_n = std::max(max_n, n);
  }
  return max_n;
}

}  // namespace glova::serve
