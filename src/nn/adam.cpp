#include "nn/adam.hpp"

#include <cmath>
#include <ostream>
#include <stdexcept>

#include "common/state_io.hpp"

namespace glova::nn {

Adam::Adam(std::size_t parameter_count, AdamConfig config)
    : config_(config), m_(parameter_count, 0.0), v_(parameter_count, 0.0) {}

void Adam::step(std::span<double> params, std::span<const double> grad) {
  if (params.size() != m_.size() || grad.size() != m_.size()) {
    throw std::invalid_argument("Adam::step: size mismatch");
  }
  ++t_;
  const double b1 = config_.beta1;
  const double b2 = config_.beta2;
  const double bias1 = 1.0 - std::pow(b1, static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(b2, static_cast<double>(t_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    m_[i] = b1 * m_[i] + (1.0 - b1) * grad[i];
    v_[i] = b2 * v_[i] + (1.0 - b2) * grad[i] * grad[i];
    const double m_hat = m_[i] / bias1;
    const double v_hat = v_[i] / bias2;
    params[i] -= config_.learning_rate * m_hat / (std::sqrt(v_hat) + config_.epsilon);
  }
}

void Adam::save(std::ostream& os) const {
  os << "adam " << t_ << '\n';
  state::write_doubles(os, "m", m_);
  state::write_doubles(os, "v", v_);
}

void Adam::load(std::istream& is) {
  const std::size_t t = state::parse_u64(state::expect_line(is, "adam"), "adam step count");
  std::vector<double> m = state::read_doubles(is, "m");
  std::vector<double> v = state::read_doubles(is, "v");
  if (m.size() != m_.size() || v.size() != v_.size()) {
    state::bad("Adam state size mismatch: expected " + std::to_string(m_.size()) + " parameters, got " +
               std::to_string(m.size()) + "/" + std::to_string(v.size()));
  }
  t_ = t;
  m_ = std::move(m);
  v_ = std::move(v);
}

}  // namespace glova::nn
