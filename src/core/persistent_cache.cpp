#include "core/persistent_cache.hpp"

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

#include "common/fsio.hpp"
#include "common/key_hash.hpp"
#include "common/state_io.hpp"
#include "common/text.hpp"

namespace glova::core {

namespace {

[[noreturn]] void bad_cache(const std::string& what) {
  throw std::runtime_error("glova-memo cache: " + what);
}

/// Read one line and split off its leading keyword (campaign-checkpoint
/// convention); throws via bad_cache on end-of-input or keyword mismatch.
std::string expect_cache_line(std::istream& is, std::string_view expect) {
  std::string line;
  if (!std::getline(is, line)) {
    bad_cache("truncated file: expected '" + std::string(expect) + "'");
  }
  const std::size_t space = line.find(' ');
  const std::string_view keyword = space == std::string::npos
                                       ? std::string_view(line)
                                       : std::string_view(line).substr(0, space);
  if (keyword != expect) {
    bad_cache("expected '" + std::string(expect) + "', got '" + line + "'");
  }
  return space == std::string::npos ? std::string() : line.substr(space + 1);
}

std::uint64_t parse_count(const std::string& text, std::string_view what) {
  try {
    std::size_t pos = 0;
    const std::uint64_t v = std::stoull(text, &pos);
    if (pos != text.size()) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    bad_cache("invalid integer for " + std::string(what) + ": '" + text + "'");
  }
}

/// One process-wide lock around every file read-modify-write: concurrently
/// retiring sessions that share a cache path must serialize their merges or
/// the later rename would silently drop the earlier flush's entries.
std::mutex& file_mutex() {
  static std::mutex m;
  return m;
}

struct KeyHash {
  std::size_t operator()(const std::vector<std::int64_t>& key) const noexcept {
    return key_fnv1a(key);
  }
};

}  // namespace

std::string memo_cache_tag(const std::string& testbench_name, const EngineConfig& engine) {
  std::string tag = testbench_name;
  tag += "|q=" + format_double_roundtrip(engine.cache_quantum);
  tag += engine.dc_warm_start ? "|warm=1" : "|warm=0";
  tag += engine.batched_draws ? "|batched=1" : "|batched=0";
  tag += engine.adaptive_timestep ? "|adaptive=1" : "|adaptive=0";
  tag += engine.newton_bypass ? "|bypass=1" : "|bypass=0";
  tag += engine.recovery ? "|recovery=1" : "|recovery=0";
  tag += "|retries=" + std::to_string(engine.max_eval_retries);
  tag += "|deadline=" + std::to_string(engine.eval_deadline_steps);
  tag += engine.degrade_to_behavioral ? "|degrade=1" : "|degrade=0";
  tag += "|mos=" + engine.mos_model;
  tag += engine.spice_noise ? "|noise=1" : "|noise=0";
  return tag;
}

std::string memo_cache_file_name(const std::string& testbench_name, const EngineConfig& engine) {
  const std::string tag = memo_cache_tag(testbench_name, engine);
  // FNV-1a over the tag bytes; 32 bits is plenty to separate the handful of
  // configurations a cache directory ever sees.
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : tag) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  std::string base;
  base.reserve(testbench_name.size());
  for (const char c : testbench_name) {
    base += std::isalnum(static_cast<unsigned char>(c)) ? c : '-';
  }
  char suffix[16];
  std::snprintf(suffix, sizeof(suffix), "%08x", static_cast<unsigned>(h & 0xFFFFFFFFu));
  return base + "-" + suffix + ".memo";
}

void save_memo_cache(std::ostream& os, const MemoCacheFile& file) {
  os << "glova-memo v" << kMemoCacheFormatVersion << '\n';
  os << "tag " << state::one_line(file.tag) << '\n';
  os << "entries " << file.entries.size() << '\n';
  for (const MemoCacheEntry& e : file.entries) {
    os << "key " << e.key.size();
    for (const std::int64_t k : e.key) os << ' ' << k;
    os << '\n';
    state::write_doubles(os, "val", e.metrics);
  }
  std::string surrogate = file.surrogate_state;
  if (!surrogate.empty() && surrogate.back() != '\n') surrogate += '\n';
  std::size_t lines = 0;
  for (const char c : surrogate) lines += c == '\n' ? 1 : 0;
  os << "surrogate-lines " << lines << '\n';
  os << surrogate;
  os << "end\n";
  if (!os) bad_cache("write failed");
}

MemoCacheFile load_memo_cache(std::istream& is, const std::string& expected_tag) {
  {
    std::string header;
    if (!std::getline(is, header)) bad_cache("empty input");
    std::istringstream line(header);
    std::string magic;
    std::string version;
    line >> magic >> version;
    if (magic != "glova-memo") {
      bad_cache("not a memo-cache file (expected 'glova-memo v" +
                std::to_string(kMemoCacheFormatVersion) + "', got '" + header + "')");
    }
    if (version != "v" + std::to_string(kMemoCacheFormatVersion)) {
      bad_cache("unsupported format version '" + version + "' (this build reads v" +
                std::to_string(kMemoCacheFormatVersion) + ")");
    }
  }
  MemoCacheFile file;
  file.tag = expect_cache_line(is, "tag");
  if (!expected_tag.empty() && file.tag != expected_tag) {
    bad_cache("tag mismatch: file is tagged '" + file.tag + "' but this engine expects '" +
              expected_tag +
              "' — the cache belongs to a different (testcase, backend, numerics-config); "
              "delete the file or point cache_path elsewhere");
  }
  const std::uint64_t n = parse_count(expect_cache_line(is, "entries"), "entry count");
  if (n > kMaxMemoCacheEntries) {
    bad_cache("implausible entry count " + std::to_string(n) + " (cap is " +
              std::to_string(kMaxMemoCacheEntries) + ")");
  }
  file.entries.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    MemoCacheEntry entry;
    std::istringstream line(expect_cache_line(is, "key"));
    std::size_t klen = 0;
    if (!(line >> klen)) bad_cache("malformed key length in entry " + std::to_string(i));
    if (klen > state::kMaxCount) {
      bad_cache("implausible key length in entry " + std::to_string(i));
    }
    entry.key.resize(klen);
    for (std::int64_t& k : entry.key) {
      if (!(line >> k)) bad_cache("truncated key in entry " + std::to_string(i));
    }
    try {
      entry.metrics = state::read_doubles(is, "val");
    } catch (const std::exception& e) {
      bad_cache("bad metrics in entry " + std::to_string(i) + ": " + e.what());
    }
    file.entries.push_back(std::move(entry));
  }
  const std::uint64_t lines =
      parse_count(expect_cache_line(is, "surrogate-lines"), "surrogate line count");
  if (lines > state::kMaxCount) bad_cache("implausible surrogate line count");
  for (std::uint64_t i = 0; i < lines; ++i) {
    std::string line;
    if (!std::getline(is, line)) bad_cache("truncated surrogate state");
    file.surrogate_state += line;
    file.surrogate_state += '\n';
  }
  (void)expect_cache_line(is, "end");
  return file;
}

namespace {

std::optional<MemoCacheFile> load_file_locked(const std::string& path,
                                              const std::string& expected_tag) {
  std::ifstream is(path);
  if (!is) {
    std::error_code ec;
    if (!std::filesystem::exists(path, ec)) return std::nullopt;
    bad_cache("cannot open '" + path + "' for reading");
  }
  try {
    return load_memo_cache(is, expected_tag);
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(std::string(e.what()) + " [" + path + "]");
  }
}

}  // namespace

std::optional<MemoCacheFile> load_memo_cache_file(const std::string& path,
                                                  const std::string& expected_tag) {
  const std::lock_guard<std::mutex> lock(file_mutex());
  return load_file_locked(path, expected_tag);
}

std::size_t flush_memo_cache_file(const std::string& path, const MemoCacheFile& fresh) {
  const std::lock_guard<std::mutex> lock(file_mutex());
  MemoCacheFile merged;
  merged.tag = fresh.tag;
  merged.surrogate_state = fresh.surrogate_state;
  std::unordered_set<std::vector<std::int64_t>, KeyHash> seen;
  seen.reserve(fresh.entries.size());
  for (const MemoCacheEntry& e : fresh.entries) {
    if (seen.insert(e.key).second) merged.entries.push_back(e);
  }
  // Append-friendly: disk entries this engine never saw (other sessions,
  // evictions from a smaller LRU) survive the flush behind the fresh ones.
  if (const std::optional<MemoCacheFile> disk = load_file_locked(path, fresh.tag)) {
    for (const MemoCacheEntry& e : disk->entries) {
      if (seen.insert(e.key).second) merged.entries.push_back(e);
    }
    if (merged.surrogate_state.empty()) merged.surrogate_state = disk->surrogate_state;
  }
  if (merged.entries.size() > kMaxMemoCacheEntries) {
    merged.entries.resize(kMaxMemoCacheEntries);
  }
  std::ostringstream os;
  save_memo_cache(os, merged);
  atomic_write_file(path, os.str());
  return merged.entries.size();
}

}  // namespace glova::core
