#include "baselines/pvtsizing.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/state_io.hpp"
#include "core/reward.hpp"
#include "core/verifier.hpp"
#include "opt/turbo.hpp"
#include "pdk/variation.hpp"
#include "rl/agent.hpp"

namespace glova::baselines {

using core::kSuccessReward;

struct PvtSizingOptimizer::Session {
  core::EvaluationEngine service;
  Rng rng;
  Rng mc_rng{0};
  std::unique_ptr<rl::RiskSensitiveAgent> agent;
  rl::WorstCaseReplayBuffer buffer;
  rl::LastWorstBuffer last_worst;
  std::unique_ptr<core::Verifier> verifier;
  std::vector<double> x_last;
  std::size_t iter = 0;

  Session(circuits::TestbenchPtr testbench, const PvtSizingConfig& config,
          std::size_t corner_count)
      : service(std::move(testbench), config.engine),
        rng(config.seed),
        last_worst(corner_count) {}
};

PvtSizingOptimizer::PvtSizingOptimizer(circuits::TestbenchPtr testbench, PvtSizingConfig config)
    : testbench_(std::move(testbench)),
      config_(config),
      op_config_(core::OperationalConfig::for_method(config.method, config.n_opt_samples,
                                                     config.corner_filter)) {}

PvtSizingOptimizer::~PvtSizingOptimizer() = default;

const core::EvaluationEngine* PvtSizingOptimizer::engine_ptr() const {
  return s_ ? &s_->service : nullptr;
}

rl::AgentConfig PvtSizingOptimizer::agent_config() const {
  rl::AgentConfig agent_cfg;
  agent_cfg.critic.ensemble_size = 1;
  agent_cfg.critic.beta1 = 0.0;
  agent_cfg.critic.hidden = config_.hidden;
  agent_cfg.hidden = config_.hidden;
  agent_cfg.batch_size = config_.batch_size;
  return agent_cfg;
}

core::VerifierOptions PvtSizingOptimizer::verifier_options() const {
  core::VerifierOptions vopts;
  vopts.use_mu_sigma = false;
  vopts.use_reordering = false;
  return vopts;
}

void PvtSizingOptimizer::do_save_state(std::ostream& os) const {
  const Session& s = *s_;
  os << "pvtsizing " << s.iter << '\n';
  os << "rng " << s.rng.save() << '\n';
  os << "mc_rng " << s.mc_rng.save() << '\n';
  state::write_doubles(os, "x_last", s.x_last);
  s.buffer.save(os);
  s.last_worst.save(os);
  s.agent->save(os);
  s.service.save_state(os);
}

void PvtSizingOptimizer::do_load_state(std::istream& is) {
  s_ = std::make_unique<Session>(testbench_, config_, op_config_.corner_count());
  Session& s = *s_;
  s.iter = state::parse_u64(state::expect_line(is, "pvtsizing"), "PVTSizing iteration");
  s.rng.restore(state::expect_line(is, "rng"));
  s.mc_rng.restore(state::expect_line(is, "mc_rng"));
  s.x_last = state::read_doubles(is, "x_last");
  s.buffer.load(is);
  s.last_worst.load(is);
  // Placeholder construction: agent->load overwrites all of it.
  const std::size_t p = testbench_->sizing().dimension();
  s.agent = std::make_unique<rl::RiskSensitiveAgent>(p, agent_config(), s.rng.split(0xA6E7));
  s.agent->load(is);
  s.verifier = std::make_unique<core::Verifier>(s.service, op_config_, verifier_options());
  s.service.load_state(is);
}

void PvtSizingOptimizer::do_start() {
  s_ = std::make_unique<Session>(testbench_, config_, op_config_.corner_count());
  Session& s = *s_;
  core::EvaluationEngine& service = s.service;
  const circuits::SizingSpec& sizing = testbench_->sizing();
  const circuits::PerformanceSpec& spec = testbench_->performance();
  const std::size_t p = sizing.dimension();

  // --- TuRBO initial sampling at the typical condition (shared with GLOVA).
  opt::TurboConfig turbo_cfg;
  turbo_cfg.n_init = std::max<std::size_t>(8, p);
  opt::Turbo turbo(p, turbo_cfg, s.rng.split(0x7B0));
  const pdk::PvtCorner typical = pdk::typical_corner();
  const std::size_t turbo_min = std::min<std::size_t>(turbo_cfg.n_init + 4, config_.turbo_budget);
  while (service.simulation_count() < config_.turbo_budget) {
    const auto points = turbo.ask(1);
    std::vector<double> values;
    for (const auto& x01 : points) {
      const auto x = sizing.denormalize(x01);
      values.push_back(core::reward_from_metrics(spec, service.evaluate_one(x, typical, {})));
    }
    turbo.tell(points, values);
    if (turbo.best_value() >= kSuccessReward && service.simulation_count() >= turbo_min) break;
  }
  result_.turbo_evaluations = service.simulation_count();

  // --- risk-neutral agent: single critic, beta1 = 0.
  s.agent = std::make_unique<rl::RiskSensitiveAgent>(p, agent_config(), s.rng.split(0xA6E7));

  // Verification without the mu-sigma gate or reordering.
  s.verifier = std::make_unique<core::Verifier>(service, op_config_, verifier_options());

  s.x_last = turbo.best_point();
  if (s.x_last.empty()) s.x_last = s.rng.uniform_vector(p, 0.0, 1.0);
  s.buffer.add(s.x_last, 0.0);
  s.mc_rng = s.rng.split(0x3C3C);
  result_.termination = "iteration-cap";
}

bool PvtSizingOptimizer::do_step() {
  Session& s = *s_;
  if (s.iter >= config_.max_iterations) return false;
  const std::size_t iter = ++s.iter;
  core::EvaluationEngine& service = s.service;
  const circuits::SizingSpec& sizing = testbench_->sizing();
  const circuits::PerformanceSpec& spec = testbench_->performance();

  std::vector<double> x_new = s.agent->propose(s.x_last);
  const auto x_phys = sizing.denormalize(x_new);

  // Batch sampling: every corner, every iteration.
  double r_worst = std::numeric_limits<double>::max();
  for (std::size_t j = 0; j < op_config_.corner_count(); ++j) {
    const auto hs = op_config_.sample_conditions(*testbench_, x_phys, op_config_.n_opt, s.mc_rng);
    const auto metrics = service.evaluate_batch(x_phys, op_config_.corners[j], hs);
    const double w = core::worst_reward_of(spec, metrics);
    s.last_worst.update(j, w);
    r_worst = std::min(r_worst, w);
  }

  core::IterationTrace trace;
  trace.iteration = iter;
  trace.reward_worst = r_worst;
  const rl::EnsembleCritic::Bound bound = s.agent->critic().bound(x_new);
  trace.critic_mean = bound.mean;
  trace.critic_bound = bound.risk_adjusted;
  trace.mu_sigma_pass = r_worst == kSuccessReward;  // hard gate: no mu-sigma

  if (r_worst == kSuccessReward) {
    trace.attempted_verification = true;
    const core::VerificationOutcome outcome = s.verifier->verify(x_phys, s.last_worst, s.mc_rng);
    for (const auto& [j, w] : outcome.corner_worst_rewards) {
      s.last_worst.update(j, w);
      r_worst = std::min(r_worst, w);
    }
    if (outcome.passed) {
      result_.success = true;
      result_.rl_iterations = iter;
      result_.x01_final = x_new;
      result_.x_phys_final = x_phys;
      result_.termination = "verified";
      trace.sims_total = service.simulation_count();
      result_.trace.push_back(trace);
      return false;
    }
  }

  s.buffer.add(x_new, r_worst);
  (void)s.agent->update(s.buffer);  // standard DDPG: one update per environment step
  trace.sims_total = service.simulation_count();
  result_.trace.push_back(trace);
  s.x_last = std::move(x_new);
  if (const auto best = s.buffer.best(); best && r_worst < best->reward - 0.05) {
    s.x_last = best->x01;
  }
  result_.rl_iterations = iter;
  return iter < config_.max_iterations;
}

}  // namespace glova::baselines
