// Replay-free resume: every algorithm serializes its full session state
// (Optimizer::save_state / load_state), a restored session continues
// bit-identically from any checkpoint, Campaign::load restores v2
// checkpoints with zero optimizer step() replays (and zero evaluations),
// and v1 checkpoints still load through the deterministic-replay fallback.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "circuits/registry.hpp"
#include "common/log.hpp"
#include "core/campaign.hpp"
#include "core/run_spec.hpp"

namespace glova {
namespace {

/// Every deterministic field of two results must match bit-for-bit
/// (wall_seconds is timing and is deliberately excluded).
void expect_identical_results(const core::GlovaResult& a, const core::GlovaResult& b) {
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.rl_iterations, b.rl_iterations);
  EXPECT_EQ(a.n_simulations, b.n_simulations);
  EXPECT_EQ(a.n_simulations_executed, b.n_simulations_executed);
  EXPECT_EQ(a.n_cache_hits, b.n_cache_hits);
  EXPECT_EQ(a.engine_stats.requested, b.engine_stats.requested);
  EXPECT_EQ(a.engine_stats.executed, b.engine_stats.executed);
  EXPECT_EQ(a.engine_stats.cache_hits, b.engine_stats.cache_hits);
  EXPECT_EQ(a.turbo_evaluations, b.turbo_evaluations);
  EXPECT_EQ(a.x01_final, b.x01_final);
  EXPECT_EQ(a.x_phys_final, b.x_phys_final);
  EXPECT_EQ(a.termination, b.termination);
  EXPECT_DOUBLE_EQ(a.modeled_runtime, b.modeled_runtime);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].iteration, b.trace[i].iteration);
    EXPECT_DOUBLE_EQ(a.trace[i].reward_worst, b.trace[i].reward_worst);
    EXPECT_DOUBLE_EQ(a.trace[i].critic_mean, b.trace[i].critic_mean);
    EXPECT_DOUBLE_EQ(a.trace[i].critic_bound, b.trace[i].critic_bound);
    EXPECT_EQ(a.trace[i].mu_sigma_pass, b.trace[i].mu_sigma_pass);
    EXPECT_EQ(a.trace[i].attempted_verification, b.trace[i].attempted_verification);
    EXPECT_EQ(a.trace[i].sims_total, b.trace[i].sims_total);
  }
}

void expect_identical_tables(const core::CampaignResult& a, const core::CampaignResult& b) {
  EXPECT_EQ(a.total_simulations, b.total_simulations);
  EXPECT_EQ(a.finished, b.finished);
  EXPECT_EQ(a.failed, b.failed);
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (std::size_t i = 0; i < a.entries.size(); ++i) {
    EXPECT_EQ(a.entries[i].spec, b.entries[i].spec) << "entry " << i;
    EXPECT_EQ(a.entries[i].state, b.entries[i].state) << "entry " << i;
    EXPECT_EQ(a.entries[i].steps, b.entries[i].steps) << "entry " << i;
    EXPECT_EQ(a.entries[i].error, b.entries[i].error) << "entry " << i;
    expect_identical_results(a.entries[i].result, b.entries[i].result);
  }
}

core::RunSpec parity_spec(core::Algorithm algorithm) {
  core::RunSpec spec;
  spec.testcase = circuits::Testcase::Sal;
  spec.method = core::VerifMethod::C;
  spec.algorithm = algorithm;
  spec.max_iterations = 120;
  spec.seed = 1;
  return spec;
}

/// The sweep the campaign-level tests use: all three algorithms, one seed,
/// SAL behavioral — small enough to run in seconds, diverse enough to cover
/// every session implementation's state codec.
core::SweepSpec parity_sweep() {
  core::SweepSpec sweep;
  sweep.base = parity_spec(core::Algorithm::Glova);
  sweep.algorithms = core::all_algorithms();
  sweep.seeds = {1};
  return sweep;
}

/// Forwarding testbench that counts evaluate() calls through a shared
/// counter — the probe behind the O(1)-load pin: zero evaluations during
/// Campaign::load means zero replayed optimizer steps.
class CountingBench final : public circuits::Testbench {
 public:
  CountingBench(circuits::TestbenchPtr inner, std::shared_ptr<std::atomic<std::uint64_t>> count)
      : inner_(std::move(inner)), count_(std::move(count)) {}

  [[nodiscard]] const std::string& name() const override { return inner_->name(); }
  [[nodiscard]] const circuits::SizingSpec& sizing() const override { return inner_->sizing(); }
  [[nodiscard]] const circuits::PerformanceSpec& performance() const override {
    return inner_->performance();
  }
  [[nodiscard]] pdk::MismatchLayout mismatch_layout(std::span<const double> x,
                                                    bool global_enabled) const override {
    return inner_->mismatch_layout(x, global_enabled);
  }
  [[nodiscard]] std::vector<double> evaluate(std::span<const double> x,
                                             const pdk::PvtCorner& corner,
                                             std::span<const double> h) const override {
    count_->fetch_add(1, std::memory_order_relaxed);
    return inner_->evaluate(x, corner, h);
  }

 private:
  circuits::TestbenchPtr inner_;
  std::shared_ptr<std::atomic<std::uint64_t>> count_;
};

/// Down-convert a current (v3) campaign checkpoint to the v1 format: v1 has
/// no `cache_dir` line, no per-session `retries` line and no `resume` line
/// (in-flight sessions were implicitly replayed), so strip them — for
/// `resume state`, through the embedded state's `optimizer-state-end`
/// terminator.
std::string downconvert_to_v1(const std::string& v3_text) {
  std::istringstream in(v3_text);
  std::ostringstream out;
  std::string line;
  bool in_embedded_state = false;
  while (std::getline(in, line)) {
    if (in_embedded_state) {
      if (line == "optimizer-state-end") in_embedded_state = false;
      continue;
    }
    if (line == "glova-campaign v3") {
      out << "glova-campaign v1\n";
    } else if (line == "resume state") {
      in_embedded_state = true;
    } else if (line == "resume replay") {
      // dropped: v1 replays every in-flight session unconditionally
    } else if (line.rfind("retries ", 0) == 0) {
      // dropped: v1 predates the retry ladder
    } else if (line.rfind("cache_dir", 0) == 0) {
      // dropped: v1 predates the persistent memo cache
    } else {
      out << line << '\n';
    }
  }
  return out.str();
}

TEST(ResumeState, EveryAlgorithmSupportsStateSerialization) {
  for (core::Algorithm algorithm : core::all_algorithms()) {
    const auto session = core::make_optimizer(parity_spec(algorithm));
    EXPECT_TRUE(session->supports_state_serialization())
        << core::to_string(algorithm);
  }
}

TEST(ResumeState, SaveAndLoadEnforceTheSessionProtocol) {
  set_log_level(LogLevel::Warn);
  const core::RunSpec spec = parity_spec(core::Algorithm::Glova);

  // A fresh session has no state to save: it is captured by its spec.
  {
    const auto fresh = core::make_optimizer(spec);
    std::ostringstream os;
    EXPECT_THROW(fresh->save_state(os), std::logic_error);
  }

  // Capture a valid mid-run state for the load-side checks.
  std::string saved;
  {
    const auto driver = core::make_optimizer(spec);
    driver->step();
    std::ostringstream os;
    driver->save_state(os);
    saved = os.str();

    // load_state() must land on a fresh session, not one already stepped.
    std::istringstream is(saved);
    EXPECT_THROW(driver->load_state(is), std::logic_error);
  }

  // A finished session is captured by its result, not by live state.
  {
    const auto finished = core::make_optimizer(spec);
    (void)finished->run();
    std::ostringstream os;
    EXPECT_THROW(finished->save_state(os), std::logic_error);
  }

  // Malformed state is a runtime error, not a crash or a silent accept.
  {
    const auto fresh = core::make_optimizer(spec);
    std::istringstream is("optimizer-state v1 glova\n");
    EXPECT_THROW(fresh->load_state(is), std::runtime_error);
  }

  // State is algorithm-tagged: feeding one algorithm's state to another must
  // be rejected (the header names the algorithm).
  {
    const auto other = core::make_optimizer(parity_spec(core::Algorithm::PvtSizing));
    std::istringstream is(saved);
    EXPECT_THROW(other->load_state(is), std::runtime_error);
  }
}

/// The core parity pin, per algorithm: a session saved after k steps and
/// restored into a fresh session finishes bit-identically to an
/// uninterrupted run — at an early, a mid-run, and a late checkpoint.  The
/// restored session must also re-save to the exact same bytes (state fixed
/// point), and saving must not perturb the original session.
void check_resume_parity(core::Algorithm algorithm) {
  set_log_level(LogLevel::Warn);
  const core::RunSpec spec = parity_spec(algorithm);

  const core::GlovaResult reference = core::make_optimizer(spec)->run();
  const std::size_t total = reference.rl_iterations;
  ASSERT_GE(total, 3u) << "session too short to place three distinct checkpoints";

  std::set<std::size_t> checkpoints = {1, total / 2, total - 1};
  for (const std::size_t k : checkpoints) {
    if (k == 0 || k >= total) continue;
    SCOPED_TRACE(std::string(core::to_string(algorithm)) + " checkpoint at step " +
                 std::to_string(k) + " of " + std::to_string(total));

    const auto driver = core::make_optimizer(spec);
    while (!driver->done() && driver->iterations_completed() < k) driver->step();
    ASSERT_FALSE(driver->done());

    std::ostringstream state;
    driver->save_state(state);
    const std::string saved = state.str();

    // Restore into a fresh session; re-saving must reproduce the bytes.
    const auto resumed = core::make_optimizer(spec);
    {
      std::istringstream is(saved);
      resumed->load_state(is);
    }
    EXPECT_EQ(resumed->iterations_completed(), k);
    std::ostringstream resaved;
    resumed->save_state(resaved);
    EXPECT_EQ(resaved.str(), saved) << "state must be a byte fixed point";

    // save_state() is const: the original session still finishes right.
    while (!driver->done()) driver->step();
    expect_identical_results(driver->result(), reference);

    // And the resumed session continues bit-identically.
    while (!resumed->done()) resumed->step();
    expect_identical_results(resumed->result(), reference);
  }
}

TEST(ResumeState, GlovaResumesBitIdentically) {
  check_resume_parity(core::Algorithm::Glova);
}

TEST(ResumeState, PvtSizingResumesBitIdentically) {
  check_resume_parity(core::Algorithm::PvtSizing);
}

TEST(ResumeState, RobustAnalogResumesBitIdentically) {
  check_resume_parity(core::Algorithm::RobustAnalog);
}

TEST(ResumeState, CampaignLoadPerformsZeroEvaluations) {
  set_log_level(LogLevel::Warn);
  const auto count = std::make_shared<std::atomic<std::uint64_t>>(0);
  const auto factory = [count](const core::RunSpec& spec) -> circuits::TestbenchPtr {
    return std::make_shared<CountingBench>(
        circuits::make_testbench(spec.testcase, spec.backend), count);
  };

  core::CampaignConfig config;
  config.make_testbench = factory;
  core::Campaign campaign(parity_sweep(), config);

  // Three sessions, steps_per_turn 1: nine turns give every session three
  // steps, so each one is Running with serialized state in the checkpoint.
  for (int i = 0; i < 9 && !campaign.done(); ++i) campaign.step();
  ASSERT_FALSE(campaign.done());

  std::stringstream checkpoint;
  campaign.save(checkpoint);
  const std::string text = checkpoint.str();
  EXPECT_EQ(text.find("resume replay"), std::string::npos)
      << "every in-flight session must be on the replay-free state path";
  EXPECT_NE(text.find("resume state"), std::string::npos);

  // The acceptance pin: load() restores in-flight sessions O(1) — zero
  // optimizer step() replays, observable as zero testbench evaluations.
  const std::uint64_t before = count->load();
  core::Campaign loaded = core::Campaign::load(checkpoint, factory);
  EXPECT_EQ(count->load(), before)
      << "Campaign::load must not evaluate (replay) when restoring v2 state";

  // Both campaigns finish bit-identically from here.
  expect_identical_tables(loaded.run(), campaign.run());
}

TEST(ResumeState, V1CheckpointStillLoadsViaReplay) {
  set_log_level(LogLevel::Warn);
  const auto count = std::make_shared<std::atomic<std::uint64_t>>(0);
  const auto factory = [count](const core::RunSpec& spec) -> circuits::TestbenchPtr {
    return std::make_shared<CountingBench>(
        circuits::make_testbench(spec.testcase, spec.backend), count);
  };

  core::CampaignConfig config;
  config.make_testbench = factory;
  core::Campaign campaign(parity_sweep(), config);
  for (int i = 0; i < 9 && !campaign.done(); ++i) campaign.step();
  ASSERT_FALSE(campaign.done());

  std::stringstream checkpoint;
  campaign.save(checkpoint);
  const std::string v1_text = downconvert_to_v1(checkpoint.str());
  EXPECT_NE(v1_text.find("glova-campaign v1"), std::string::npos);
  EXPECT_EQ(v1_text.find("\nresume "), std::string::npos);
  EXPECT_EQ(v1_text.find("\nretries "), std::string::npos);

  // v1 resumes by deterministic replay: the load itself re-evaluates.
  const std::uint64_t before = count->load();
  std::istringstream in(v1_text);
  core::Campaign loaded = core::Campaign::load(in, factory);
  EXPECT_GT(count->load(), before)
      << "the v1 fallback replays steps, which must hit the testbench";

  // And lands on the same bit-identical table as the uninterrupted run.
  expect_identical_tables(loaded.run(), campaign.run());
}

TEST(ResumeState, UnknownCheckpointVersionIsRejected) {
  std::istringstream is("glova-campaign v999\n");
  EXPECT_THROW((void)core::Campaign::load(is), std::runtime_error);
}

}  // namespace
}  // namespace glova
