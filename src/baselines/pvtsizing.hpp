// PVTSizing baseline (Kong et al., DAC 2024 [9]): a TuRBO-RL batch-sampling
// framework for PVT-robust analog synthesis, reimplemented from its published
// description for Table II.
//
// Differences from GLOVA that the paper's comparison isolates:
//   - batch sampling: EVERY predefined corner is simulated at every RL
//     iteration (k x N' simulations per step instead of GLOVA's N' at the
//     single worst corner),
//   - risk-neutral critic: one Q network, no ensemble bound (beta1 = 0),
//   - verification: a full k x N sweep with neither the mu-sigma gate nor
//     simulation reordering (it still aborts at the first failing run).
// Shared with GLOVA: TuRBO initial sampling at the typical condition.
//
// Like every optimizer here, it is a step-driven core::Optimizer session:
// one step() = one RL iteration, observable/cancelable from outside.
#pragma once

#include <memory>

#include "circuits/testbench.hpp"
#include "core/optimizer.hpp"

namespace glova::baselines {

struct PvtSizingConfig {
  core::VerifMethod method = core::VerifMethod::C;
  std::string corner_filter = "all";  ///< RunSpec `corner_filter` (docs/run_spec.md)
  std::size_t n_opt_samples = 3;
  std::size_t batch_size = 10;
  std::size_t hidden = 64;
  std::size_t max_iterations = 3000;
  std::size_t turbo_budget = 150;
  std::uint64_t seed = 1;
  core::SimulationCost cost;
  core::EngineConfig engine;
};

class PvtSizingOptimizer final : public core::Optimizer {
 public:
  PvtSizingOptimizer(circuits::TestbenchPtr testbench, PvtSizingConfig config);
  ~PvtSizingOptimizer() override;

  [[nodiscard]] const char* algorithm_name() const override { return "PVTSizing"; }
  [[nodiscard]] bool supports_state_serialization() const override { return true; }

 protected:
  void do_start() override;
  bool do_step() override;
  void do_save_state(std::ostream& os) const override;
  void do_load_state(std::istream& is) override;
  [[nodiscard]] const core::EvaluationEngine* engine_ptr() const override;
  [[nodiscard]] const core::SimulationCost& cost() const override { return config_.cost; }

 private:
  struct Session;

  /// Shared by do_start and do_load_state so a restored agent/verifier is
  /// configured exactly like the saved one.
  [[nodiscard]] rl::AgentConfig agent_config() const;
  [[nodiscard]] core::VerifierOptions verifier_options() const;

  circuits::TestbenchPtr testbench_;
  PvtSizingConfig config_;
  core::OperationalConfig op_config_;
  std::unique_ptr<Session> s_;
};

}  // namespace glova::baselines
