// In-memory netlist.  A Circuit owns its elements; the Simulator walks them
// to assemble modified-nodal-analysis (MNA) systems.
//
// Supported elements (HSPICE letter in parentheses):
//   resistor (R), capacitor (C), independent voltage source (V, with DC /
//   PULSE / PWL / SIN waveforms), independent current source (I),
//   voltage-controlled voltage source (E), voltage-controlled current
//   source (G), and a Level-1 MOSFET (M) parameterized by the pdk.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "pdk/mos_params.hpp"
#include "spice/waveform.hpp"

namespace glova::spice {

/// Node handle; 0 is ground.
using NodeId = std::size_t;

struct Resistor {
  std::string name;
  NodeId a = 0, b = 0;
  double ohms = 1.0;
};

struct Capacitor {
  std::string name;
  NodeId a = 0, b = 0;
  double farads = 1e-15;
  std::optional<double> initial_voltage;  ///< .ic style initial condition
};

struct VoltageSource {
  std::string name;
  NodeId pos = 0, neg = 0;
  Waveform waveform = Waveform::dc(0.0);
};

struct CurrentSource {
  std::string name;
  NodeId pos = 0, neg = 0;  ///< current flows pos -> neg through the source
  Waveform waveform = Waveform::dc(0.0);
};

struct Vcvs {
  std::string name;
  NodeId pos = 0, neg = 0;        ///< output terminals
  NodeId ctrl_pos = 0, ctrl_neg = 0;
  double gain = 1.0;
};

struct Vccs {
  std::string name;
  NodeId pos = 0, neg = 0;
  NodeId ctrl_pos = 0, ctrl_neg = 0;
  double transconductance = 0.0;  ///< [S]
};

/// Level-1 MOSFET instance.  Electrical parameters come from the pdk so PVT
/// corners and mismatch shift every instance consistently.
struct Mosfet {
  std::string name;
  NodeId drain = 0, gate = 0, source = 0;
  pdk::MosParams params;
  double w = 1e-6;  ///< [m]
  double l = 100e-9;  ///< [m]

  [[nodiscard]] double w_over_l() const { return w / l; }
};

class Circuit {
 public:
  static constexpr NodeId ground() { return 0; }

  /// Get-or-create a named node.
  NodeId node(const std::string& name);

  /// Look up an existing node; throws std::out_of_range if absent.
  [[nodiscard]] NodeId find_node(const std::string& name) const;
  [[nodiscard]] bool has_node(const std::string& name) const;
  [[nodiscard]] const std::string& node_name(NodeId id) const;

  /// Number of nodes including ground.
  [[nodiscard]] std::size_t node_count() const { return node_names_.size(); }

  void add_resistor(std::string name, NodeId a, NodeId b, double ohms);
  void add_capacitor(std::string name, NodeId a, NodeId b, double farads,
                     std::optional<double> initial_voltage = std::nullopt);
  void add_vsource(std::string name, NodeId pos, NodeId neg, Waveform waveform);
  void add_isource(std::string name, NodeId pos, NodeId neg, Waveform waveform);
  void add_vcvs(std::string name, NodeId pos, NodeId neg, NodeId ctrl_pos, NodeId ctrl_neg,
                double gain);
  void add_vccs(std::string name, NodeId pos, NodeId neg, NodeId ctrl_pos, NodeId ctrl_neg,
                double transconductance);
  void add_mosfet(std::string name, NodeId drain, NodeId gate, NodeId source,
                  const pdk::MosParams& params, double w, double l);

  [[nodiscard]] const std::vector<Resistor>& resistors() const { return resistors_; }
  [[nodiscard]] const std::vector<Capacitor>& capacitors() const { return capacitors_; }
  [[nodiscard]] const std::vector<VoltageSource>& vsources() const { return vsources_; }
  [[nodiscard]] const std::vector<CurrentSource>& isources() const { return isources_; }
  [[nodiscard]] const std::vector<Vcvs>& vcvs() const { return vcvs_; }
  [[nodiscard]] const std::vector<Vccs>& vccs() const { return vccs_; }
  [[nodiscard]] const std::vector<Mosfet>& mosfets() const { return mosfets_; }

  [[nodiscard]] std::size_t element_count() const;

  /// Index of a voltage source by name (for current measurements);
  /// throws std::out_of_range if absent.
  [[nodiscard]] std::size_t vsource_index(const std::string& name) const;

 private:
  std::vector<std::string> node_names_{"0"};
  std::vector<Resistor> resistors_;
  std::vector<Capacitor> capacitors_;
  std::vector<VoltageSource> vsources_;
  std::vector<CurrentSource> isources_;
  std::vector<Vcvs> vcvs_;
  std::vector<Vccs> vccs_;
  std::vector<Mosfet> mosfets_;
};

}  // namespace glova::spice
