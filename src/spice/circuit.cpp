#include "spice/circuit.hpp"

#include <stdexcept>

namespace glova::spice {

NodeId Circuit::node(const std::string& name) {
  if (name == "0" || name == "gnd" || name == "GND") return ground();
  for (NodeId i = 0; i < node_names_.size(); ++i) {
    if (node_names_[i] == name) return i;
  }
  node_names_.push_back(name);
  return node_names_.size() - 1;
}

NodeId Circuit::find_node(const std::string& name) const {
  if (name == "0" || name == "gnd" || name == "GND") return ground();
  for (NodeId i = 0; i < node_names_.size(); ++i) {
    if (node_names_[i] == name) return i;
  }
  throw std::out_of_range("Circuit::find_node: unknown node " + name);
}

bool Circuit::has_node(const std::string& name) const {
  if (name == "0" || name == "gnd" || name == "GND") return true;
  for (const std::string& n : node_names_) {
    if (n == name) return true;
  }
  return false;
}

const std::string& Circuit::node_name(NodeId id) const {
  if (id >= node_names_.size()) throw std::out_of_range("Circuit::node_name: bad id");
  return node_names_[id];
}

void Circuit::add_resistor(std::string name, NodeId a, NodeId b, double ohms) {
  if (ohms <= 0.0) throw std::invalid_argument("add_resistor: non-positive resistance");
  resistors_.push_back(Resistor{std::move(name), a, b, ohms});
}

void Circuit::add_capacitor(std::string name, NodeId a, NodeId b, double farads,
                            std::optional<double> initial_voltage) {
  if (farads <= 0.0) throw std::invalid_argument("add_capacitor: non-positive capacitance");
  capacitors_.push_back(Capacitor{std::move(name), a, b, farads, initial_voltage});
}

void Circuit::add_vsource(std::string name, NodeId pos, NodeId neg, Waveform waveform) {
  vsources_.push_back(VoltageSource{std::move(name), pos, neg, std::move(waveform)});
}

void Circuit::add_isource(std::string name, NodeId pos, NodeId neg, Waveform waveform) {
  isources_.push_back(CurrentSource{std::move(name), pos, neg, std::move(waveform)});
}

void Circuit::add_vcvs(std::string name, NodeId pos, NodeId neg, NodeId ctrl_pos, NodeId ctrl_neg,
                       double gain) {
  vcvs_.push_back(Vcvs{std::move(name), pos, neg, ctrl_pos, ctrl_neg, gain});
}

void Circuit::add_vccs(std::string name, NodeId pos, NodeId neg, NodeId ctrl_pos, NodeId ctrl_neg,
                       double transconductance) {
  vccs_.push_back(Vccs{std::move(name), pos, neg, ctrl_pos, ctrl_neg, transconductance});
}

void Circuit::add_mosfet(std::string name, NodeId drain, NodeId gate, NodeId source,
                         const pdk::MosParams& params, double w, double l) {
  if (w <= 0.0 || l <= 0.0) throw std::invalid_argument("add_mosfet: non-positive geometry");
  mosfets_.push_back(Mosfet{std::move(name), drain, gate, source, params, w, l});
}

std::size_t Circuit::element_count() const {
  return resistors_.size() + capacitors_.size() + vsources_.size() + isources_.size() +
         vcvs_.size() + vccs_.size() + mosfets_.size();
}

std::size_t Circuit::vsource_index(const std::string& name) const {
  for (std::size_t i = 0; i < vsources_.size(); ++i) {
    if (vsources_[i].name == name) return i;
  }
  throw std::out_of_range("Circuit::vsource_index: unknown source " + name);
}

}  // namespace glova::spice
