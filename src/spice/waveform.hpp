// Independent-source waveforms: DC, PULSE, PWL and SIN, mirroring the
// corresponding HSPICE source specifications the paper's testbenches rely on.
#pragma once

#include <vector>

namespace glova::spice {

/// Value of a time-dependent source.  Cheap to copy.
class Waveform {
 public:
  /// Constant value.
  static Waveform dc(double value);

  /// SPICE PULSE(v1 v2 delay rise fall width period).  After `delay` the
  /// source ramps v1->v2 in `rise`, holds for `width`, ramps back in `fall`,
  /// and repeats every `period` (period <= 0 means single pulse).
  static Waveform pulse(double v1, double v2, double delay, double rise, double fall, double width,
                        double period);

  /// Piecewise-linear through (t, v) points (t strictly increasing).
  static Waveform pwl(std::vector<double> times, std::vector<double> values);

  /// SIN(offset amplitude freq [delay]).
  static Waveform sine(double offset, double amplitude, double freq_hz, double delay = 0.0);

  [[nodiscard]] double value(double time) const;

  /// Largest value the waveform ever takes (used for source stepping).
  [[nodiscard]] double dc_value() const { return value(0.0); }

  /// Append every slope discontinuity in (0, t_stop) to `out`: PULSE edge
  /// corners (per period), PWL knots, the SIN delay.  The adaptive timestep
  /// controller forces steps to land exactly on these so no edge is
  /// straddled by a large step.  Unsorted, may contain duplicates across
  /// waveforms; capped at 4096 points per call against degenerate periods.
  void append_breakpoints(double t_stop, std::vector<double>& out) const;

 private:
  enum class Kind { Dc, Pulse, Pwl, Sine };
  Kind kind_ = Kind::Dc;
  // Dc
  double v1_ = 0.0;
  // Pulse
  double v2_ = 0.0, delay_ = 0.0, rise_ = 0.0, fall_ = 0.0, width_ = 0.0, period_ = 0.0;
  // Pwl
  std::vector<double> times_, values_;
  // Sine
  double freq_ = 0.0;
};

}  // namespace glova::spice
