// Table II reproduction, OCSA + subhole in DRAM core block — the paper's
// hardest testcase: conflicting dVD0/dVD1 sensing margins and a cell-array
// mismatch space that demands the most statistical simulations.
// Paper values from Kim et al., DAC 2025, Table II (DRAM columns).
#include "bench_common.hpp"

using namespace glova;
using bench::PaperCell;

int main() {
  bench::BenchOptions options = bench::options_from_env();
  const std::vector<std::vector<PaperCell>> paper = {
      {{21, 390, 1.00, 1.00}, {84, 6916, 1.00, 1.00}, {129, 72853, 1.00, 1.00}},          // Ours
      {{72, 2066, 3.85, 1.00}, {138, 300332, 40.59, 1.00}, {238, 224768, 3.07, 0.87}},    // PVTSizing
      {{760, 6406, 21.24, 1.00}, {1166, 557050, 76.03, 0.83}, {2064, 753048, 10.40, 0.53}},  // RobustAnalog
  };
  bench::print_table2_block(circuits::Testcase::DramOcsa, paper, options);
  return 0;
}
