// Compatibility shim: the counting SimulationService grew into the batched,
// caching EvaluationEngine (see evaluation_engine.hpp).  Existing includes
// and the old type name keep working.
#pragma once

#include "core/evaluation_engine.hpp"

namespace glova::core {

using SimulationService = EvaluationEngine;

}  // namespace glova::core
