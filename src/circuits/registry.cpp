#include "circuits/registry.hpp"

#include <stdexcept>

#include "circuits/dram_ocsa.hpp"
#include "circuits/fia.hpp"
#include "circuits/spice_backend.hpp"
#include "circuits/strongarm.hpp"

namespace glova::circuits {

const char* to_string(Testcase testcase) {
  switch (testcase) {
    case Testcase::Sal: return "SAL";
    case Testcase::Fia: return "FIA";
    case Testcase::DramOcsa: return "OCSA+SH";
  }
  return "?";
}

std::vector<Testcase> all_testcases() {
  return {Testcase::Sal, Testcase::Fia, Testcase::DramOcsa};
}

TestbenchPtr make_testbench(Testcase testcase, Backend backend) {
  if (backend == Backend::Behavioral) {
    switch (testcase) {
      case Testcase::Sal: return std::make_shared<StrongArmLatch>();
      case Testcase::Fia: return std::make_shared<FloatingInverterAmplifier>();
      case Testcase::DramOcsa: return std::make_shared<DramOcsaSubhole>();
    }
  }
  if (backend == Backend::Spice && testcase == Testcase::Sal) {
    return std::make_shared<StrongArmLatchSpice>();
  }
  throw std::invalid_argument("make_testbench: no SPICE backend for this testcase yet");
}

}  // namespace glova::circuits
