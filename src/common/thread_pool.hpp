// Fixed-size worker pool used to run SPICE/behavioral simulations in
// parallel.  The paper runs N' = 3 simulations concurrently during
// optimization and "maximum available resources" during verification; the
// pool supports both via `parallel_for`.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace glova {

class ThreadPool {
 public:
  /// Create a pool with `n_threads` workers (0 means hardware_concurrency).
  explicit ThreadPool(std::size_t n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; returns a future for its completion.
  std::future<void> submit(std::function<void()> task);

  /// Run fn(i) for i in [0, n) across the pool and block until all complete.
  /// At most `max_workers` tasks run concurrently (0 = every worker).
  /// Exceptions from tasks are rethrown (first one wins).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                    std::size_t max_workers = 0);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Process-wide pool shared by simulation services.  Lazily constructed.
ThreadPool& global_thread_pool();

}  // namespace glova
