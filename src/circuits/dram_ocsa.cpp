#include "circuits/dram_ocsa.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "circuits/parasitics.hpp"
#include "common/units.hpp"
#include "pdk/mos_params.hpp"

namespace glova::circuits {

using units::literals::operator""_um;
using units::literals::operator""_mV;
using units::literals::operator""_fJ;

namespace {

constexpr std::size_t kDeviceCount = kDramDeviceCount;
constexpr std::size_t kArrayCoords = kDramArrayCoords;

struct InstanceRole {
  const char* name;
  bool is_pmos;
  std::size_t w_index;
  std::size_t l_index;
};

constexpr InstanceRole kInstances[kDeviceCount] = {
    {"xn_a", false, DramSizing::kWXn, DramSizing::kLXn},
    {"xn_b", false, DramSizing::kWXn, DramSizing::kLXn},
    {"xp_a", true, DramSizing::kWXp, DramSizing::kLXp},
    {"xp_b", true, DramSizing::kWXp, DramSizing::kLXp},
    {"ocs_a", false, DramSizing::kWOcs, DramSizing::kLOcs},
    {"ocs_b", false, DramSizing::kWOcs, DramSizing::kLOcs},
    {"csel", false, DramSizing::kWCsel, DramSizing::kLCsel},
    {"nsa", false, DramSizing::kWNsa, DramSizing::kLNsa},
    {"psa", true, DramSizing::kWPsa, DramSizing::kLPsa},
};

// Mismatch coordinate indices of the array extension.
constexpr std::size_t kIdxVcell = kDramIdxVcell;
constexpr std::size_t kIdxCs = kDramIdxCs;
constexpr std::size_t kIdxCbl = kDramIdxCbl;

}  // namespace

DramArrayCaps dram_array_caps(const DramConditions& cond, std::span<const double> x,
                              std::span<const double> h) {
  if (x.size() != DramSizing::kCount) throw std::invalid_argument("DRAM: bad sizing vector");
  if (!h.empty() && h.size() != kDramDeviceCount * 2 + kDramArrayCoords) {
    throw std::invalid_argument("DRAM: bad mismatch vector");
  }
  const Parasitics& par = parasitics_28nm();
  const double dcs = h.empty() ? 0.0 : h[kIdxCs];
  const double dcbl = h.empty() ? 0.0 : h[kIdxCbl];
  DramArrayCaps caps;
  caps.cs = cond.cs * std::max(0.5, 1.0 + dcs);
  caps.cbl = cond.cbl0 * std::max(0.5, 1.0 + dcbl) +
             par.c_junction * (x[DramSizing::kWCsel] + x[DramSizing::kWXn] +
                               x[DramSizing::kWXp] + 2.0 * x[DramSizing::kWOcs]);
  return caps;
}

DramOcsaSubhole::DramOcsaSubhole() {
  sizing_.names = {"W_xn", "W_xp", "W_ocs", "W_csel", "W_nsa", "W_psa",
                   "L_xn", "L_xp", "L_ocs", "L_csel", "L_nsa", "L_psa"};
  sizing_.lower.assign(DramSizing::kCount, 0.0);
  sizing_.upper.assign(DramSizing::kCount, 0.0);
  // OCSA widths are pitch-limited; SH drivers are wide.
  for (const std::size_t i : {DramSizing::kWXn, DramSizing::kWXp, DramSizing::kWOcs,
                              DramSizing::kWCsel}) {
    sizing_.lower[i] = 0.28_um;
    sizing_.upper[i] = 1.028_um;
  }
  for (const std::size_t i : {DramSizing::kWNsa, DramSizing::kWPsa}) {
    sizing_.lower[i] = 5.0_um;
    sizing_.upper[i] = 15.0_um;
  }
  for (std::size_t i = DramSizing::kLXn; i < DramSizing::kCount; ++i) {
    sizing_.lower[i] = 0.03_um;
    sizing_.upper[i] = 0.06_um;
  }

  performance_.metrics = {
      MetricSpec{"dVD0", "mV", units::milli, 85.0_mV, Sense::MaximizeAbove},
      MetricSpec{"dVD1", "mV", units::milli, 85.0_mV, Sense::MaximizeAbove},
      MetricSpec{"energy_per_bit", "fJ", units::femto, 30.0_fJ, Sense::MinimizeBelow},
  };
}

std::vector<pdk::DeviceGeometry> DramOcsaSubhole::devices(std::span<const double> x) const {
  if (x.size() != DramSizing::kCount) throw std::invalid_argument("DRAM: bad sizing vector");
  std::vector<pdk::DeviceGeometry> devs;
  devs.reserve(kDeviceCount);
  for (const InstanceRole& role : kInstances) {
    devs.push_back(pdk::DeviceGeometry{role.name, role.is_pmos, x[role.w_index], x[role.l_index]});
  }
  return devs;
}

pdk::MismatchLayout DramOcsaSubhole::mismatch_layout(std::span<const double> x,
                                                     bool global_enabled) const {
  pdk::MismatchLayout layout =
      pdk::build_layout(devices(x), pdk::PelgromConstants{}, pdk::GlobalSigmas{}, global_enabled);
  // Cell-array coordinates: stored-level spread and capacitor spread.  These
  // dominate the statistics of the DRAM core ("extensive mismatches").
  layout.names.push_back("array.dvcell");
  layout.local_sigma.push_back(conditions_.sigma_vcell_local);
  layout.global_sigma.push_back(global_enabled ? conditions_.sigma_vcell_global : 0.0);
  layout.names.push_back("array.dcs");
  layout.local_sigma.push_back(conditions_.sigma_cs_local);
  layout.global_sigma.push_back(global_enabled ? conditions_.sigma_cs_global : 0.0);
  layout.names.push_back("array.dcbl");
  layout.local_sigma.push_back(conditions_.sigma_cbl_local);
  layout.global_sigma.push_back(global_enabled ? conditions_.sigma_cbl_global : 0.0);
  return layout;
}

std::vector<double> DramOcsaSubhole::evaluate(std::span<const double> x,
                                              const pdk::PvtCorner& corner,
                                              std::span<const double> h) const {
  if (x.size() != DramSizing::kCount) throw std::invalid_argument("DRAM: bad sizing vector");
  if (!h.empty() && h.size() != kDeviceCount * 2 + kArrayCoords) {
    throw std::invalid_argument("DRAM: bad mismatch vector");
  }
  const Parasitics& par = parasitics_28nm();
  const DramConditions& cond = conditions_;
  const double vdd = corner.vdd;
  const double temp_k = corner.temp_k();

  std::vector<pdk::MosParams> p(kDeviceCount);
  for (std::size_t d = 0; d < kDeviceCount; ++d) {
    const InstanceRole& role = kInstances[d];
    const double dvth = h.empty() ? 0.0 : h[2 * d];
    const double dbeta = h.empty() ? 0.0 : h[2 * d + 1];
    p[d] = pdk::mos_params(role.is_pmos, corner, x[role.l_index], dvth, dbeta);
  }
  const auto wol = [&](std::size_t d) {
    const InstanceRole& role = kInstances[d];
    return x[role.w_index] / x[role.l_index];
  };
  const double dvcell = h.empty() ? 0.0 : h[kIdxVcell];

  // --- charge sharing: cell onto the (heavily loaded) bitline ---
  const auto [cs, cbl] = dram_array_caps(cond, x, h);
  const double ratio = cs / (cs + cbl);
  const double vpre = 0.5 * vdd;
  const double v1 = cond.v1_frac * vdd + dvcell;
  const double v0 = cond.v0_frac * vdd + dvcell;
  const double signal0 = std::max(0.0, (vpre - v0) * ratio);
  const double signal1 = std::max(0.0, (v1 - vpre) * ratio);

  // --- SA offset with offset cancellation ---
  double offset_raw = 0.0;   // signed: > 0 favors reading '0', hurts '1'
  double inj_mismatch = 0.0;
  if (!h.empty()) {
    const double gm_ratio = std::sqrt((p[2].kp * wol(2)) / std::max(1e-12, p[0].kp * wol(0)));
    offset_raw = (h[2 * 0] - h[2 * 1]) + gm_ratio * (h[2 * 2] - h[2 * 3]);
    inj_mismatch = 0.1 * std::abs(h[2 * 4] - h[2 * 5]);
  }
  const double k_oc = x[DramSizing::kWOcs] / (x[DramSizing::kWOcs] + cond.oc_half_width);
  const double residual_offset = offset_raw * (1.0 - k_oc);
  // Charge injection pedestal of the OC switches (differential fraction).
  const double v_inj = 0.2 * par.cox * x[DramSizing::kWOcs] * x[DramSizing::kLOcs] * vdd / cbl +
                       inj_mismatch;

  // --- subhole drivers: shared-rail drive vs common-mode kickback ---
  const double c_san = cond.n_shared_sa *
                       (cond.c_san_fixed +
                        0.5 * par.c_junction * (x[DramSizing::kWXn] + x[DramSizing::kWXp]));
  const double i_need = c_san * (0.5 * vdd) / cond.t_overlap;
  const double i_nsa = pdk::ekv_id(p[7], wol(7), vdd, 0.3 * vdd, temp_k);
  const double i_psa = pdk::ekv_id(p[8], wol(8), vdd, 0.3 * vdd, temp_k);
  const double frac_n = i_nsa / (i_nsa + i_need);
  const double frac_p = i_psa / (i_psa + i_need);
  const double kick_n = cond.k_kick * i_nsa * cond.t_ramp / c_san;
  const double kick_p = cond.k_kick * i_psa * cond.t_ramp / c_san;

  // --- regeneration boost during the overlap window ---
  // Once the rails split, the cross pair's gate drive approaches the full
  // rail (the opposing bitline swings away), so evaluate at 0.75*vdd.
  const double vov_reg = 0.75 * vdd;
  const double i_xn = pdk::ekv_id(p[0], wol(0), vov_reg, 0.25 * vdd, temp_k);
  const double i_xp = pdk::ekv_id(p[2], wol(2), vov_reg, 0.25 * vdd, temp_k);
  const double gm_xn = pdk::ekv_gm(p[0], wol(0), vov_reg, 0.25 * vdd, temp_k);
  const double gm_xp = pdk::ekv_gm(p[2], wol(2), vov_reg, 0.25 * vdd, temp_k);
  const double g0 = std::min(cond.gain_cap, gm_xn * cond.t_overlap / (cs + cbl) * frac_n);
  const double g1 = std::min(cond.gain_cap, gm_xp * cond.t_overlap / (cs + cbl) * frac_p);

  // --- sensing margins (positive residual offset favors '0', hurts '1') ---
  const double dvd0 =
      std::max(1e-6, (signal0 - std::max(0.0, -residual_offset) - v_inj - kick_p) * (1.0 + g0));
  const double dvd1 =
      std::max(1e-6, (signal1 - std::max(0.0, residual_offset) - v_inj - kick_n) * (1.0 + g1));

  // --- energy per 1-bit sensing ---
  const double e_bl = 0.60 * (cs + cbl) * vdd * vdd;  // develop + restore + precharge
  const double e_sa =
      par.cox * vdd * vdd *
      (x[DramSizing::kWXn] * x[DramSizing::kLXn] + x[DramSizing::kWXp] * x[DramSizing::kLXp] +
       2.0 * x[DramSizing::kWOcs] * x[DramSizing::kLOcs] +
       x[DramSizing::kWCsel] * x[DramSizing::kLCsel]);
  const double e_rail = (c_san / cond.n_shared_sa) * vdd * vdd;
  // Subhole driver gate + crowbar energy amortized over the shared SAs.
  const double e_driver =
      (par.cox * (x[DramSizing::kWNsa] * x[DramSizing::kLNsa] +
                  x[DramSizing::kWPsa] * x[DramSizing::kLPsa]) *
           vdd * vdd +
       0.01 * (i_nsa + i_psa) * cond.t_ramp * vdd) /
      cond.n_shared_sa * 64.0;  // 64 activated bits share one driver pair
  const double energy = e_bl + e_sa + e_rail + e_driver;

  return {dvd0, dvd1, energy};
}

}  // namespace glova::circuits
