// Floating inverter amplifier (FIA) testcase [25] — paper Sec. VI-A.
//
// Sizing vector (6 parameters, design space ~10^12):
//   W_n, W_p in [0.28, 32.8] um; L_n, L_p in [0.03, 0.33] um;
//   C_res, C_load in [0.005, 5.5] pF.
// Metrics / constraints:
//   energy per conversion <= 0.1 pJ, noise <= 130 mV.
//
// The FIA (Tang et al., JSSC 2020) is a fully dynamic pre-amplifier: a
// differential pair of CMOS inverters powered from a floating reservoir
// capacitor.  The behavioral model captures the energy budget (reservoir +
// load + gate charge), the integration gain gm*t_int/C_load, and an
// input-referred error combining integrated thermal noise, inverter offset
// (Pelgrom mismatch), and the following latch's offset divided by the gain.
// All constants flow through the pdk so corners/mismatch act consistently.
#pragma once

#include "circuits/testbench.hpp"

namespace glova::circuits {

struct FiaSizing {
  enum : std::size_t { kWn = 0, kWp, kLn, kLp, kCRes, kCLoad, kCount };
};

/// Transistor instances in the mismatch layout (two inverters); the
/// mismatch vector has 2 * kFiaDeviceCount coordinates (dvth, dbeta per
/// device).  Shared by the behavioral model and the SPICE netlist.
inline constexpr std::size_t kFiaDeviceCount = 4;

struct FiaConditions {
  double vcm_frac = 0.55;          ///< input common mode as a fraction of vdd
  double reservoir_swing = 0.25;   ///< usable reservoir droop as fraction of vdd
  double latch_sigma = 10e-3;      ///< next-stage latch offset sigma [V]
  double overhead_cap = 2e-15;     ///< routing/clocking overhead [F]
  double v_probe = 10e-3;          ///< differential probe input for gain measurement [V]
};

/// Intermediate quantities of the FIA behavioral analysis, exposed so the
/// SPICE backend can combine the analytic noise decomposition with its own
/// transient-measured gain and integration window.
struct FiaAnalysis {
  double i_branch = 0.0;     ///< per-inverter bias current [A]
  double gm_eff = 0.0;       ///< push-pull transconductance [S]
  double t_int = 0.0;        ///< reservoir-limited integration window [s]
  double c_load = 0.0;       ///< effective single-ended output load [F]
  double gain = 0.0;         ///< gm_eff * t_int / c_load (floored)
  double energy = 0.0;       ///< energy per conversion [J]
  double vn2_thermal = 0.0;  ///< integrated thermal noise power [V^2]
  double v_off = 0.0;        ///< inverter offset from mismatch [V]

  /// Input-referred error for a given amplifier gain (thermal + offset +
  /// next-stage latch offset attenuated by the gain).
  [[nodiscard]] double noise_given_gain(double g, double latch_sigma) const;
};

class FloatingInverterAmplifier final : public Testbench {
 public:
  FloatingInverterAmplifier();

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const SizingSpec& sizing() const override { return sizing_; }
  [[nodiscard]] const PerformanceSpec& performance() const override { return performance_; }

  [[nodiscard]] pdk::MismatchLayout mismatch_layout(std::span<const double> x,
                                                    bool global_enabled) const override;

  /// Returns {energy per conversion [J], input-referred noise [V]}.
  [[nodiscard]] std::vector<double> evaluate(std::span<const double> x,
                                             const pdk::PvtCorner& corner,
                                             std::span<const double> h) const override;

  /// Device instances (4 transistors: two inverters).
  [[nodiscard]] std::vector<pdk::DeviceGeometry> devices(std::span<const double> x) const;

  /// The full behavioral analysis behind evaluate(): bias, gain, energy, and
  /// noise components.  evaluate() is {analysis.energy,
  /// analysis.noise_given_gain(analysis.gain, latch_sigma)}.
  [[nodiscard]] FiaAnalysis analyze(std::span<const double> x, const pdk::PvtCorner& corner,
                                    std::span<const double> h) const;

  [[nodiscard]] const FiaConditions& conditions() const { return conditions_; }

 private:
  std::string name_ = "Floating inverter amplifier";
  SizingSpec sizing_;
  PerformanceSpec performance_;
  FiaConditions conditions_;
};

}  // namespace glova::circuits
