// glova-serve client CLI (docs/serve.md#client).
//
//   glova_client --port N [--connect-timeout SEC] <command> [args...]
//
//   submit <tenant> <spec tokens...>   submit a sweep, print the job id
//   submit-file <tenant> <path>        spec read from a file (newlines join)
//   status <job-id>                    one-line state
//   result <job-id>                    terminal state + canonical result text
//   watch <job-id>                     stream EVENT lines until the job ends
//   cancel <job-id>
//   wait <job-id> [timeout-sec]        poll status until terminal (default 300)
//   list
//   shutdown
//
// Exit code 0 on OK responses, 1 on ERR or connection failure, 2 on usage
// errors.  Connects to 127.0.0.1 only, retrying for --connect-timeout
// seconds (default 5) so scripts can race a freshly started daemon.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "serve/protocol.hpp"

namespace {

using glova::serve::LineIo;

int usage() {
  std::cerr << "usage: glova_client --port N [--connect-timeout SEC] "
               "submit|submit-file|status|result|watch|cancel|wait|list|shutdown [args...]\n";
  return 2;
}

int connect_loopback(std::uint16_t port, int timeout_sec) {
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(timeout_sec);
  for (;;) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0) return fd;
    ::close(fd);
    if (std::chrono::steady_clock::now() >= deadline) return -1;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
}

/// Send one request; print the first response line and, when it opens a
/// multi-line payload, every line up to END.  Returns 0 for OK, 1 for ERR.
int request(LineIo& io, const std::string& line, bool multi_line) {
  if (!io.write_line(line)) {
    std::cerr << "glova_client: connection lost\n";
    return 1;
  }
  std::string response;
  if (!io.read_line(response)) {
    std::cerr << "glova_client: connection closed before a response\n";
    return 1;
  }
  std::cout << response << '\n';
  const bool ok = response.rfind("OK", 0) == 0;
  if (ok && multi_line) {
    while (io.read_line(response) && response != glova::serve::kEndLine) {
      std::cout << response << '\n';
    }
  }
  return ok ? 0 : 1;
}

/// STATUS states that end a wait.
bool state_terminal(const std::string& status_line) {
  for (const char* state : {" Done ", " Failed ", " Cancelled "}) {
    if (status_line.find(state) != std::string::npos) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint16_t port = 0;
  int connect_timeout = 5;
  int i = 1;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--port" && i + 1 < argc) {
      port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    } else if (arg == "--connect-timeout" && i + 1 < argc) {
      connect_timeout = std::atoi(argv[++i]);
    } else {
      break;
    }
  }
  if (port == 0 || i >= argc) return usage();
  const std::string command = argv[i++];
  std::vector<std::string> args(argv + i, argv + argc);

  const int fd = connect_loopback(port, connect_timeout);
  if (fd < 0) {
    std::cerr << "glova_client: cannot connect to 127.0.0.1:" << port << '\n';
    return 1;
  }
  LineIo io(fd);
  int code = 2;
  if (command == "submit" && args.size() >= 2) {
    std::string line = "SUBMIT " + args[0];
    for (std::size_t a = 1; a < args.size(); ++a) line += ' ' + args[a];
    code = request(io, line, /*multi_line=*/false);
  } else if (command == "submit-file" && args.size() == 2) {
    std::ifstream in(args[1]);
    if (!in) {
      std::cerr << "glova_client: cannot read " << args[1] << '\n';
      ::close(fd);
      return 1;
    }
    std::string token, spec;
    while (in >> token) spec += (spec.empty() ? "" : " ") + token;
    code = request(io, "SUBMIT " + args[0] + ' ' + spec, /*multi_line=*/false);
  } else if (command == "status" && args.size() == 1) {
    code = request(io, "STATUS " + args[0], /*multi_line=*/false);
  } else if (command == "result" && args.size() == 1) {
    code = request(io, "RESULT " + args[0], /*multi_line=*/true);
  } else if (command == "watch" && args.size() == 1) {
    code = request(io, "WATCH " + args[0], /*multi_line=*/true);
  } else if (command == "cancel" && args.size() == 1) {
    code = request(io, "CANCEL " + args[0], /*multi_line=*/false);
  } else if (command == "list" && args.empty()) {
    code = request(io, "LIST", /*multi_line=*/true);
  } else if (command == "shutdown" && args.empty()) {
    code = request(io, "SHUTDOWN", /*multi_line=*/false);
  } else if (command == "wait" && (args.size() == 1 || args.size() == 2)) {
    const int timeout_sec = args.size() == 2 ? std::atoi(args[1].c_str()) : 300;
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(timeout_sec);
    code = 1;
    for (;;) {
      if (!io.write_line("STATUS " + args[0])) break;
      std::string response;
      if (!io.read_line(response)) break;
      if (response.rfind("ERR", 0) == 0) {
        std::cout << response << '\n';
        break;
      }
      if (state_terminal(response + ' ')) {
        std::cout << response << '\n';
        code = 0;
        break;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        std::cerr << "glova_client: timed out waiting for " << args[0] << '\n';
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
  } else {
    ::close(fd);
    return usage();
  }
  ::close(fd);
  return code;
}
