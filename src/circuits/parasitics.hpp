// Shared technology parasitics for the behavioral circuit models.
// Values are representative of a 28 nm bulk CMOS back-end:
//   gate capacitance ~ 20 fF/um^2, drain junction ~ 0.5 fF/um of width.
#pragma once

namespace glova::circuits {

struct Parasitics {
  double cox = 0.020;        ///< gate cap density [F/m^2]  (20 fF/um^2)
  double c_junction = 0.5e-9;///< drain/source junction cap [F/m of width]
  double gamma_noise = 0.7;  ///< thermal-noise excess factor for short channel
};

[[nodiscard]] inline const Parasitics& parasitics_28nm() {
  static const Parasitics p{};
  return p;
}

}  // namespace glova::circuits
