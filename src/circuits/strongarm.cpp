#include "circuits/strongarm.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "circuits/parasitics.hpp"
#include "common/units.hpp"
#include "pdk/mos_params.hpp"

namespace glova::circuits {

using units::literals::operator""_um;
using units::literals::operator""_pF;
using units::literals::operator""_ns;
using units::literals::operator""_uW;
using units::literals::operator""_uV;

namespace {

constexpr std::size_t kDeviceCount = 11;

/// Instance -> (is_pmos, width index, length index) in the sizing vector.
struct InstanceRole {
  const char* name;
  bool is_pmos;
  std::size_t w_index;
  std::size_t l_index;
};

constexpr InstanceRole kInstances[kDeviceCount] = {
    {"tail", false, SalSizing::kWTail, SalSizing::kLTail},
    {"in_a", false, SalSizing::kWIn, SalSizing::kLIn},
    {"in_b", false, SalSizing::kWIn, SalSizing::kLIn},
    {"xn_a", false, SalSizing::kWXn, SalSizing::kLXn},
    {"xn_b", false, SalSizing::kWXn, SalSizing::kLXn},
    {"xp_a", true, SalSizing::kWXp, SalSizing::kLXp},
    {"xp_b", true, SalSizing::kWXp, SalSizing::kLXp},
    {"pre_a", true, SalSizing::kWPre, SalSizing::kLPre},
    {"pre_b", true, SalSizing::kWPre, SalSizing::kLPre},
    {"sr_a", false, SalSizing::kWSr, SalSizing::kLSr},
    {"sr_b", false, SalSizing::kWSr, SalSizing::kLSr},
};

}  // namespace

StrongArmLatch::StrongArmLatch() {
  sizing_.names = {"W_tail", "W_in", "W_xn", "W_xp", "W_pre", "W_sr",
                   "L_tail", "L_in", "L_xn", "L_xp", "L_pre", "L_sr",
                   "C_out", "C_sr"};
  sizing_.lower.assign(SalSizing::kCount, 0.0);
  sizing_.upper.assign(SalSizing::kCount, 0.0);
  for (std::size_t i = 0; i < 6; ++i) {
    sizing_.lower[i] = 0.28_um;
    sizing_.upper[i] = 32.8_um;
    sizing_.lower[6 + i] = 0.03_um;
    sizing_.upper[6 + i] = 0.33_um;
  }
  for (const std::size_t ci : {SalSizing::kCOut, SalSizing::kCSr}) {
    sizing_.lower[ci] = 0.005_pF;
    sizing_.upper[ci] = 5.5_pF;
  }

  performance_.metrics = {
      MetricSpec{"power", "uW", units::micro, 40.0_uW, Sense::MinimizeBelow},
      MetricSpec{"set_delay", "ns", units::nano, 4.0_ns, Sense::MinimizeBelow},
      MetricSpec{"reset_delay", "ns", units::nano, 4.0_ns, Sense::MinimizeBelow},
      MetricSpec{"noise", "uV", units::micro, 120.0_uV, Sense::MinimizeBelow},
  };
}

std::vector<pdk::DeviceGeometry> StrongArmLatch::devices(std::span<const double> x) const {
  if (x.size() != SalSizing::kCount) throw std::invalid_argument("SAL: bad sizing vector");
  std::vector<pdk::DeviceGeometry> devs;
  devs.reserve(kDeviceCount);
  for (const InstanceRole& role : kInstances) {
    devs.push_back(pdk::DeviceGeometry{role.name, role.is_pmos, x[role.w_index], x[role.l_index]});
  }
  return devs;
}

pdk::MismatchLayout StrongArmLatch::mismatch_layout(std::span<const double> x,
                                                    bool global_enabled) const {
  return pdk::build_layout(devices(x), pdk::PelgromConstants{}, pdk::GlobalSigmas{}, global_enabled);
}

std::vector<double> StrongArmLatch::evaluate(std::span<const double> x,
                                             const pdk::PvtCorner& corner,
                                             std::span<const double> h) const {
  if (x.size() != SalSizing::kCount) throw std::invalid_argument("SAL: bad sizing vector");
  if (!h.empty() && h.size() != kDeviceCount * 2) {
    throw std::invalid_argument("SAL: bad mismatch vector");
  }
  const Parasitics& par = parasitics_28nm();
  const double vdd = corner.vdd;
  const double kT = units::kBoltzmann * corner.temp_k();

  // Effective parameters per instance (PVT corner + mismatch).
  std::vector<pdk::MosParams> p(kDeviceCount);
  for (std::size_t d = 0; d < kDeviceCount; ++d) {
    const InstanceRole& role = kInstances[d];
    const double dvth = h.empty() ? 0.0 : h[2 * d];
    const double dbeta = h.empty() ? 0.0 : h[2 * d + 1];
    p[d] = pdk::mos_params(role.is_pmos, corner, x[role.l_index], dvth, dbeta);
  }
  const auto wol = [&](std::size_t d) {
    const InstanceRole& role = kInstances[d];
    return x[role.w_index] / x[role.l_index];
  };

  // --- bias: tail current during evaluation (clock high, gate at vdd) ---
  const double i_tail = std::max(1e-9, pdk::square_law_id(p[0], wol(0), vdd, 0.3 * vdd));
  const double i_branch = 0.5 * i_tail;

  // Transconductances at the branch current (saturation gm = sqrt(2 kp W/L I)).
  const auto gm_at = [&](std::size_t d, double i) {
    return std::sqrt(std::max(1e-30, 2.0 * p[d].kp * wol(d) * i));
  };
  const double gm_in = 0.5 * (gm_at(1, i_branch) + gm_at(2, i_branch));
  const double gm_xn = 0.5 * (gm_at(3, i_branch) + gm_at(4, i_branch));
  const double gm_xp = 0.5 * (gm_at(5, i_branch) + gm_at(6, i_branch));

  // --- capacitances ---
  const double c_par_out =
      par.cox * (x[SalSizing::kWXn] * x[SalSizing::kLXn] + x[SalSizing::kWXp] * x[SalSizing::kLXp] +
                 x[SalSizing::kWPre] * x[SalSizing::kLPre]) +
      par.c_junction * (x[SalSizing::kWXn] + x[SalSizing::kWXp] + x[SalSizing::kWPre] +
                        x[SalSizing::kWIn]);
  const double c_out = x[SalSizing::kCOut] + c_par_out;
  const double c_sr =
      x[SalSizing::kCSr] + 4.0 * par.cox * x[SalSizing::kWSr] * x[SalSizing::kLSr];

  // --- input-referred offset from mismatch (reduces the effective input) ---
  double v_off = 0.0;
  if (!h.empty()) {
    const double dvth_in = std::abs(h[2 * 1] - h[2 * 2]);
    const double dvth_xn = std::abs(h[2 * 3] - h[2 * 4]);
    const double dvth_xp = std::abs(h[2 * 5] - h[2 * 6]);
    const double dbeta_in = std::abs(h[2 * 1 + 1] - h[2 * 2 + 1]);
    const double vov_in = std::sqrt(std::max(1e-9, i_tail / (p[1].kp * wol(1))));
    v_off = dvth_in + 0.5 * dbeta_in * vov_in +
            (gm_xn / std::max(gm_in, 1e-9)) * dvth_xn +
            (gm_xp / std::max(gm_in, 1e-9)) * 0.5 * dvth_xp;
  }

  // --- set delay: integration + regeneration + SR latch ---
  const double vthp_x = p[5].vth;  // cross PMOS turns on after outputs drop |Vthp|
  const double t_int = c_out * vthp_x / std::max(i_branch, 1e-9);
  const double v_in_eff = std::max(1e-3, conditions_.v_input_diff - v_off);
  const double dv0 = std::max(50e-6, gm_in * v_in_eff * t_int / c_out);
  const double gm_regen = std::max(gm_xn + gm_xp, 1e-9);
  const double tau = c_out / gm_regen;
  const double t_regen = tau * std::log(std::max(1.001, 0.5 * vdd / dv0));
  const double i_sr = std::max(1e-9, pdk::square_law_id(p[9], wol(9), vdd, 0.5 * vdd));
  const double t_sr = c_sr * vdd / i_sr;
  const double set_delay = t_int + t_regen + t_sr;

  // --- reset delay: PMOS precharge pulls both outputs back to vdd ---
  const double i_pre = std::max(1e-9, pdk::square_law_id(p[7], wol(7), vdd, 0.5 * vdd));
  const double reset_delay = (c_out * 0.9 * vdd) / i_pre + (c_sr * 0.9 * vdd) / std::max(i_sr, i_pre);

  // --- power: CV^2 switching + tail current during evaluation + leakage ---
  double total_width = 0.0;
  for (const InstanceRole& role : kInstances) total_width += x[role.w_index];
  const double leak_mult =
      std::exp((corner.temp_k() - units::kRoomTemperatureK) / 40.0) * (vdd / 0.9);
  const double i_leak = conditions_.leakage_per_um * (total_width / 1e-6) * leak_mult;
  const double t_eval = t_int + std::min(t_regen, 2e-9);
  const double e_cycle = (2.0 * c_out + c_sr) * vdd * vdd + i_tail * t_eval * vdd;
  const double power = conditions_.clock_hz * e_cycle + i_leak * vdd;

  // --- input-referred noise: integrated thermal noise of the input pair ---
  // vn^2 ~ 4 kT gamma / (gm_in * t_int), the classic dynamic-comparator
  // result; cross-pair regeneration adds a (gm_x/gm_in) excess term.
  const double excess = 1.0 + 0.15 * gm_regen / std::max(gm_in, 1e-9);
  const double vn2 = 4.0 * kT * par.gamma_noise * excess / std::max(gm_in * t_int, 1e-18);
  const double noise = std::sqrt(vn2);

  return {power, set_delay, reset_delay, noise};
}

}  // namespace glova::circuits
