#include "circuits/fia.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "circuits/parasitics.hpp"
#include "common/units.hpp"
#include "pdk/mos_params.hpp"

namespace glova::circuits {

using units::literals::operator""_um;
using units::literals::operator""_pF;
using units::literals::operator""_pJ;
using units::literals::operator""_mV;

namespace {

constexpr std::size_t kDeviceCount = kFiaDeviceCount;

struct InstanceRole {
  const char* name;
  bool is_pmos;
  std::size_t w_index;
  std::size_t l_index;
};

constexpr InstanceRole kInstances[kDeviceCount] = {
    {"invn_a", false, FiaSizing::kWn, FiaSizing::kLn},
    {"invn_b", false, FiaSizing::kWn, FiaSizing::kLn},
    {"invp_a", true, FiaSizing::kWp, FiaSizing::kLp},
    {"invp_b", true, FiaSizing::kWp, FiaSizing::kLp},
};

}  // namespace

FloatingInverterAmplifier::FloatingInverterAmplifier() {
  sizing_.names = {"W_n", "W_p", "L_n", "L_p", "C_res", "C_load"};
  sizing_.lower = {0.28_um, 0.28_um, 0.03_um, 0.03_um, 0.005_pF, 0.005_pF};
  sizing_.upper = {32.8_um, 32.8_um, 0.33_um, 0.33_um, 5.5_pF, 5.5_pF};

  performance_.metrics = {
      MetricSpec{"energy_per_conv", "pJ", units::pico, 0.1_pJ, Sense::MinimizeBelow},
      MetricSpec{"noise", "mV", units::milli, 130.0_mV, Sense::MinimizeBelow},
  };
}

std::vector<pdk::DeviceGeometry> FloatingInverterAmplifier::devices(
    std::span<const double> x) const {
  if (x.size() != FiaSizing::kCount) throw std::invalid_argument("FIA: bad sizing vector");
  std::vector<pdk::DeviceGeometry> devs;
  devs.reserve(kDeviceCount);
  for (const InstanceRole& role : kInstances) {
    devs.push_back(pdk::DeviceGeometry{role.name, role.is_pmos, x[role.w_index], x[role.l_index]});
  }
  return devs;
}

pdk::MismatchLayout FloatingInverterAmplifier::mismatch_layout(std::span<const double> x,
                                                               bool global_enabled) const {
  return pdk::build_layout(devices(x), pdk::PelgromConstants{}, pdk::GlobalSigmas{}, global_enabled);
}

double FiaAnalysis::noise_given_gain(double g, double latch_sigma) const {
  const double v_latch = latch_sigma / std::max(g, 0.05);
  return std::sqrt(vn2_thermal + v_off * v_off + v_latch * v_latch);
}

FiaAnalysis FloatingInverterAmplifier::analyze(std::span<const double> x,
                                               const pdk::PvtCorner& corner,
                                               std::span<const double> h) const {
  if (x.size() != FiaSizing::kCount) throw std::invalid_argument("FIA: bad sizing vector");
  if (!h.empty() && h.size() != kDeviceCount * 2) {
    throw std::invalid_argument("FIA: bad mismatch vector");
  }
  const Parasitics& par = parasitics_28nm();
  const double vdd = corner.vdd;
  const double temp_k = corner.temp_k();
  const double kT = units::kBoltzmann * temp_k;

  std::vector<pdk::MosParams> p(kDeviceCount);
  for (std::size_t d = 0; d < kDeviceCount; ++d) {
    const InstanceRole& role = kInstances[d];
    const double dvth = h.empty() ? 0.0 : h[2 * d];
    const double dbeta = h.empty() ? 0.0 : h[2 * d + 1];
    p[d] = pdk::mos_params(role.is_pmos, corner, x[role.l_index], dvth, dbeta);
  }
  const double wol_n = x[FiaSizing::kWn] / x[FiaSizing::kLn];
  const double wol_p = x[FiaSizing::kWp] / x[FiaSizing::kLp];

  // --- branch current: inverter biased at the input common mode ---
  // NMOS sees vgs = vcm; PMOS sees vsg = vdd - vcm (the floating reservoir
  // self-biases the rails; the usable drive is the weaker of the two).
  const double vcm = conditions_.vcm_frac * vdd;
  const double i_n = pdk::ekv_id(p[0], wol_n, vcm, 0.3 * vdd, temp_k);
  const double i_p = pdk::ekv_id(p[2], wol_p, vdd - vcm, 0.3 * vdd, temp_k);
  const double i_branch = std::max(1e-12, std::min(i_n, i_p));

  // Effective transconductance of the push-pull pair, as the analytic
  // derivative of the same EKV current the bias uses.  (The old
  // 2*I/max(Vov, 1e-4) estimate is a strong-inversion identity; in weak
  // inversion it collapses to 2*I/1e-4 instead of the correct I/(n*vt),
  // overstating gm by orders of magnitude at cold low-voltage corners.)
  const double vov_n = pdk::ekv_overdrive(vcm - p[0].vth, temp_k);
  const double vov_p = pdk::ekv_overdrive((vdd - vcm) - p[2].vth, temp_k);
  const double gm_n = pdk::ekv_gm(p[0], wol_n, vcm, 0.3 * vdd, temp_k);
  const double gm_p = pdk::ekv_gm(p[2], wol_p, vdd - vcm, 0.3 * vdd, temp_k);
  const double gm_eff = gm_n + gm_p;

  // --- integration window limited by the reservoir droop ---
  const double c_res = x[FiaSizing::kCRes];
  const double c_load = x[FiaSizing::kCLoad] +
                        par.c_junction * (x[FiaSizing::kWn] + x[FiaSizing::kWp]);
  const double t_int = c_res * conditions_.reservoir_swing * vdd / (2.0 * i_branch);
  const double gain = std::max(0.05, gm_eff * t_int / c_load);

  // --- energy per conversion: reservoir recharge + loads + gate charge ---
  const double c_gate = 2.0 * par.cox * (x[FiaSizing::kWn] * x[FiaSizing::kLn] +
                                         x[FiaSizing::kWp] * x[FiaSizing::kLp]);
  const double energy =
      (c_res + 2.0 * c_load + c_gate + conditions_.overhead_cap) * vdd * vdd;

  // --- input-referred error ("noise" metric) ---
  FiaAnalysis a;
  a.i_branch = i_branch;
  a.gm_eff = gm_eff;
  a.t_int = t_int;
  a.c_load = c_load;
  a.gain = gain;
  a.energy = energy;
  // integrated thermal noise of the push-pull gm over the window,
  a.vn2_thermal = 4.0 * kT * par.gamma_noise / std::max(gm_eff * t_int, 1e-18);
  // inverter offset: Vth mismatch of both polarities plus beta imbalance,
  if (!h.empty()) {
    const double dvth_n = h[2 * 0] - h[2 * 1];
    const double dvth_p = h[2 * 2] - h[2 * 3];
    const double dbeta_n = h[2 * 0 + 1] - h[2 * 1 + 1];
    const double dbeta_p = h[2 * 2 + 1] - h[2 * 3 + 1];
    a.v_off = std::abs(dvth_n) * gm_n / gm_eff + std::abs(dvth_p) * gm_p / gm_eff +
              0.25 * (std::abs(dbeta_n) * vov_n + std::abs(dbeta_p) * vov_p);
  }
  return a;
}

std::vector<double> FloatingInverterAmplifier::evaluate(std::span<const double> x,
                                                        const pdk::PvtCorner& corner,
                                                        std::span<const double> h) const {
  const FiaAnalysis a = analyze(x, corner, h);
  // The latch's offset is attenuated by the FIA gain.
  return {a.energy, a.noise_given_gain(a.gain, conditions_.latch_sigma)};
}

}  // namespace glova::circuits
