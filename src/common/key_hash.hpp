// Shared helpers for flat integer cache keys: the evaluation-engine memo
// cache and the SPICE DC warm-start cache quantize coordinates the same way
// and hash the same key shape, so the scheme lives in one place.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace glova {

/// FNV-1a over the key words; good enough for a few thousand entries.
inline std::size_t key_fnv1a(const std::vector<std::int64_t>& words) {
  std::uint64_t h = 1469598103934665603ull;
  for (const std::int64_t w : words) {
    auto u = static_cast<std::uint64_t>(w);
    for (int b = 0; b < 8; ++b) {
      h ^= (u >> (8 * b)) & 0xFFu;
      h *= 1099511628211ull;
    }
  }
  return static_cast<std::size_t>(h);
}

/// Quantize one coordinate for an exact-equality cache key.  Saturates
/// instead of invoking UB on overflow; keys only need equality.
inline std::int64_t quantize_for_key(double v, double quantum) {
  const double q = v / quantum;
  if (q >= 9.2e18) return std::numeric_limits<std::int64_t>::max();
  if (q <= -9.2e18) return std::numeric_limits<std::int64_t>::min();
  return std::llround(q);
}

}  // namespace glova
