// Tests for the step-driven session API: run()/step() parity for all three
// optimizers, mid-run cancellation, budget enforcement, RunSpec validation
// and round-tripping, the make_optimizer factory, and observers.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>

#include "baselines/pvtsizing.hpp"
#include "baselines/robustanalog.hpp"
#include "circuits/registry.hpp"
#include "common/log.hpp"
#include "core/optimizer.hpp"
#include "core/run_spec.hpp"

namespace glova {
namespace {

/// Every deterministic field of two results must match bit-for-bit
/// (wall_seconds is timing and is deliberately excluded).
void expect_identical_results(const core::GlovaResult& a, const core::GlovaResult& b) {
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.rl_iterations, b.rl_iterations);
  EXPECT_EQ(a.n_simulations, b.n_simulations);
  EXPECT_EQ(a.n_simulations_executed, b.n_simulations_executed);
  EXPECT_EQ(a.n_cache_hits, b.n_cache_hits);
  EXPECT_EQ(a.engine_stats.requested, b.engine_stats.requested);
  EXPECT_EQ(a.engine_stats.executed, b.engine_stats.executed);
  EXPECT_EQ(a.engine_stats.cache_hits, b.engine_stats.cache_hits);
  EXPECT_EQ(a.turbo_evaluations, b.turbo_evaluations);
  EXPECT_EQ(a.x01_final, b.x01_final);
  EXPECT_EQ(a.x_phys_final, b.x_phys_final);
  EXPECT_EQ(a.termination, b.termination);
  EXPECT_DOUBLE_EQ(a.modeled_runtime, b.modeled_runtime);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].iteration, b.trace[i].iteration);
    EXPECT_DOUBLE_EQ(a.trace[i].reward_worst, b.trace[i].reward_worst);
    EXPECT_DOUBLE_EQ(a.trace[i].critic_mean, b.trace[i].critic_mean);
    EXPECT_DOUBLE_EQ(a.trace[i].critic_bound, b.trace[i].critic_bound);
    EXPECT_EQ(a.trace[i].mu_sigma_pass, b.trace[i].mu_sigma_pass);
    EXPECT_EQ(a.trace[i].attempted_verification, b.trace[i].attempted_verification);
    EXPECT_EQ(a.trace[i].sims_total, b.trace[i].sims_total);
  }
}

core::GlovaResult drive_manually(core::Optimizer& opt) {
  while (!opt.done()) opt.step();
  return opt.result();
}

TEST(StepParity, GlovaStepLoopMatchesRun) {
  set_log_level(LogLevel::Warn);
  core::GlovaConfig cfg;
  cfg.method = core::VerifMethod::C;
  cfg.seed = 1;
  cfg.max_iterations = 200;
  const auto tb = circuits::make_testbench(circuits::Testcase::Sal);
  const auto via_run = core::GlovaOptimizer(tb, cfg).run();
  core::GlovaOptimizer stepped(tb, cfg);
  const auto via_steps = drive_manually(stepped);
  EXPECT_TRUE(via_run.success);
  expect_identical_results(via_run, via_steps);
}

TEST(StepParity, PvtSizingStepLoopMatchesRun) {
  set_log_level(LogLevel::Warn);
  baselines::PvtSizingConfig cfg;
  cfg.method = core::VerifMethod::C;
  cfg.seed = 1;
  cfg.max_iterations = 200;
  const auto tb = circuits::make_testbench(circuits::Testcase::Sal);
  const auto via_run = baselines::PvtSizingOptimizer(tb, cfg).run();
  baselines::PvtSizingOptimizer stepped(tb, cfg);
  const auto via_steps = drive_manually(stepped);
  expect_identical_results(via_run, via_steps);
}

TEST(StepParity, RobustAnalogStepLoopMatchesRun) {
  set_log_level(LogLevel::Warn);
  baselines::RobustAnalogConfig cfg;
  cfg.method = core::VerifMethod::C;
  cfg.seed = 1;
  cfg.max_iterations = 200;
  const auto tb = circuits::make_testbench(circuits::Testcase::Sal);
  const auto via_run = baselines::RobustAnalogOptimizer(tb, cfg).run();
  baselines::RobustAnalogOptimizer stepped(tb, cfg);
  const auto via_steps = drive_manually(stepped);
  expect_identical_results(via_run, via_steps);
}

TEST(Session, ResultThrowsWhileRunning) {
  set_log_level(LogLevel::Warn);
  core::GlovaConfig cfg;
  cfg.seed = 1;
  core::GlovaOptimizer opt(circuits::make_testbench(circuits::Testcase::Sal), cfg);
  EXPECT_FALSE(opt.done());
  EXPECT_THROW((void)opt.result(), std::logic_error);
  opt.step();
  EXPECT_THROW((void)opt.result(), std::logic_error);
  opt.cancel();
  (void)opt.result();  // finished now
}

TEST(Session, MidRunCancelProducesWellFormedPartialResult) {
  set_log_level(LogLevel::Warn);
  core::GlovaConfig cfg;
  cfg.method = core::VerifMethod::C;
  cfg.seed = 1;
  cfg.max_iterations = 200;  // this seed verifies at iteration 15 when free
  core::GlovaOptimizer opt(circuits::make_testbench(circuits::Testcase::Sal), cfg);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(opt.step());
  EXPECT_FALSE(opt.done());
  opt.cancel("operator-stop");
  EXPECT_TRUE(opt.done());
  EXPECT_FALSE(opt.step());  // no further work

  const core::GlovaResult& res = opt.result();
  EXPECT_EQ(res.termination, "operator-stop");
  EXPECT_FALSE(res.success);
  EXPECT_EQ(res.rl_iterations, 5u);
  EXPECT_EQ(res.trace.size(), 5u);
  EXPECT_GT(res.n_simulations, 0u);
  EXPECT_EQ(res.n_simulations, res.n_simulations_executed + res.n_cache_hits);
  EXPECT_GT(res.modeled_runtime, 0.0);
}

/// Testbench whose evaluations start throwing after a fuse burns, to probe
/// session behavior when a step fails mid-flight.
class FailingBench final : public circuits::Testbench {
 public:
  explicit FailingBench(int evaluations_until_failure) : fuse_(evaluations_until_failure) {
    sizing_.names = {"x0"};
    sizing_.lower = {0.0};
    sizing_.upper = {1.0};
    performance_.metrics = {
        circuits::MetricSpec{"m", "u", 1.0, 1.0, circuits::Sense::MinimizeBelow}};
  }
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const circuits::SizingSpec& sizing() const override { return sizing_; }
  [[nodiscard]] const circuits::PerformanceSpec& performance() const override {
    return performance_;
  }
  [[nodiscard]] pdk::MismatchLayout mismatch_layout(std::span<const double>,
                                                    bool) const override {
    return {};
  }
  [[nodiscard]] std::vector<double> evaluate(std::span<const double>, const pdk::PvtCorner&,
                                             std::span<const double>) const override {
    if (fuse_.fetch_sub(1) <= 0) throw std::runtime_error("simulator crashed");
    return {2.0};  // always failing the spec keeps the session running
  }

 private:
  std::string name_ = "failing-bench";
  circuits::SizingSpec sizing_;
  circuits::PerformanceSpec performance_;
  mutable std::atomic<int> fuse_;  // evaluations run concurrently
};

TEST(Session, ThrowingStepStillAllowsCancelAndPartialResult) {
  set_log_level(LogLevel::Warn);
  core::RunSpec spec;
  spec.engine.cache_capacity = 0;  // every request reaches the bench
  spec.engine.parallelism = 1;     // deterministic fuse burn point
  const auto bench = std::make_shared<FailingBench>(400);
  const auto opt = core::make_optimizer(spec, bench);
  EXPECT_THROW(
      {
        while (!opt->done()) opt->step();
      },
      std::runtime_error);
  EXPECT_FALSE(opt->done());
  opt->cancel("simulator-error");  // between steps: must finalize immediately
  EXPECT_TRUE(opt->done());
  EXPECT_EQ(opt->result().termination, "simulator-error");
  EXPECT_GT(opt->result().n_simulations, 0u);
}

TEST(Session, CancelBeforeFirstStep) {
  core::GlovaConfig cfg;
  core::GlovaOptimizer opt(circuits::make_testbench(circuits::Testcase::Sal), cfg);
  opt.cancel();
  EXPECT_TRUE(opt.done());
  const core::GlovaResult& res = opt.result();
  EXPECT_EQ(res.termination, "cancelled");
  EXPECT_EQ(res.n_simulations, 0u);
  EXPECT_EQ(res.rl_iterations, 0u);
}

TEST(Session, MidRunCancelWorksForBaselines) {
  set_log_level(LogLevel::Warn);
  const auto tb = circuits::make_testbench(circuits::Testcase::Sal);
  baselines::PvtSizingConfig pvt_cfg;
  pvt_cfg.seed = 1;
  baselines::PvtSizingOptimizer pvt(tb, pvt_cfg);
  pvt.step();
  pvt.cancel("shutdown");
  EXPECT_EQ(pvt.result().termination, "shutdown");
  EXPECT_EQ(pvt.result().rl_iterations, 1u);

  baselines::RobustAnalogConfig ra_cfg;
  ra_cfg.seed = 1;
  baselines::RobustAnalogOptimizer ra(tb, ra_cfg);
  ra.step();
  ra.cancel("shutdown");
  EXPECT_EQ(ra.result().termination, "shutdown");
  EXPECT_EQ(ra.result().rl_iterations, 1u);
}

TEST(Session, SimulationBudgetStopsWithinOneIteration) {
  set_log_level(LogLevel::Warn);
  core::RunSpec spec;
  spec.testcase = circuits::Testcase::Sal;
  spec.method = core::VerifMethod::C;
  spec.seed = 1;
  // The free-running seed-1 run reaches 70 requested simulations by
  // iteration 14 and verifies at 100; a cap of 65 must stop it mid-climb.
  spec.budget.max_simulations = 65;
  const auto opt = core::make_optimizer(spec);
  const auto res = opt->run();
  EXPECT_EQ(res.termination, "simulation-budget");
  EXPECT_FALSE(res.success);
  EXPECT_GE(res.n_simulations, spec.budget.max_simulations);
  // "Within one iteration of the cap": every iteration before the stopping
  // one was still under budget.
  ASSERT_GE(res.trace.size(), 1u);
  for (std::size_t i = 0; i + 1 < res.trace.size(); ++i) {
    EXPECT_LT(res.trace[i].sims_total, spec.budget.max_simulations);
  }
}

TEST(Session, IterationBudgetStopsTheSession) {
  set_log_level(LogLevel::Warn);
  core::RunSpec spec;
  spec.testcase = circuits::Testcase::Sal;
  spec.seed = 1;
  spec.budget.max_iterations = 3;
  const auto res = core::make_optimizer(spec)->run();
  EXPECT_EQ(res.termination, "iteration-budget");
  EXPECT_EQ(res.rl_iterations, 3u);
  EXPECT_EQ(res.trace.size(), 3u);
}

TEST(Session, BudgetedRunStillSucceedsWhenBudgetIsGenerous) {
  set_log_level(LogLevel::Warn);
  core::RunSpec spec;
  spec.testcase = circuits::Testcase::Sal;
  spec.seed = 1;
  spec.budget.max_simulations = 100000;
  const auto res = core::make_optimizer(spec)->run();
  EXPECT_TRUE(res.success);
  EXPECT_EQ(res.termination, "verified");
}

TEST(Factory, MatchesDirectConstruction) {
  set_log_level(LogLevel::Warn);
  const auto tb = circuits::make_testbench(circuits::Testcase::Sal);
  core::GlovaConfig cfg;
  cfg.method = core::VerifMethod::C;
  cfg.seed = 1;
  const auto direct = core::GlovaOptimizer(tb, cfg).run();

  core::RunSpec spec;
  spec.testcase = circuits::Testcase::Sal;
  spec.method = core::VerifMethod::C;
  spec.seed = 1;
  const auto via_factory = core::make_optimizer(spec)->run();
  expect_identical_results(direct, via_factory);
}

TEST(Factory, BuildsEveryAlgorithm) {
  for (const core::Algorithm algo : core::all_algorithms()) {
    core::RunSpec spec;
    spec.algorithm = algo;
    const auto opt = core::make_optimizer(spec);
    ASSERT_NE(opt, nullptr);
    EXPECT_FALSE(opt->done());
    EXPECT_STRNE(opt->algorithm_name(), "");
  }
}

TEST(Factory, EngineStatsSurfaceInBaselineResults) {
  set_log_level(LogLevel::Warn);
  for (const core::Algorithm algo :
       {core::Algorithm::PvtSizing, core::Algorithm::RobustAnalog}) {
    core::RunSpec spec;
    spec.algorithm = algo;
    spec.seed = 1;
    spec.budget.max_iterations = 2;  // enough to exercise the funnel
    const auto res = core::make_optimizer(spec)->run();
    EXPECT_EQ(res.engine_stats.requested, res.n_simulations);
    EXPECT_EQ(res.engine_stats.executed, res.n_simulations_executed);
    EXPECT_EQ(res.engine_stats.cache_hits, res.n_cache_hits);
    EXPECT_EQ(res.engine_stats.requested,
              res.engine_stats.executed + res.engine_stats.cache_hits);
    EXPECT_FALSE(res.trace.empty());  // baselines now emit IterationTrace too
  }
}

TEST(RunSpec, RoundTripsThroughText) {
  core::RunSpec spec;
  spec.testcase = circuits::Testcase::DramOcsa;
  spec.backend = circuits::Backend::Behavioral;
  spec.algorithm = core::Algorithm::RobustAnalog;
  spec.method = core::VerifMethod::C_MCGL;
  spec.seed = 42;
  spec.max_iterations = 77;
  spec.n_opt_samples = 5;
  spec.use_mu_sigma = false;
  spec.budget.max_simulations = 12345;
  spec.budget.max_wall_seconds = 1.5;
  spec.cost.per_simulation = 2.25;
  spec.engine.parallelism = 4;
  spec.engine.cache_capacity = 128;
  spec.engine.cache_quantum = 1e-12;
  spec.engine.dc_warm_start = false;
  spec.progress_log = true;

  const std::string text = spec.to_string();
  const core::RunSpec parsed = core::RunSpec::from_string(text);
  EXPECT_EQ(parsed, spec);
  EXPECT_EQ(parsed.to_string(), text);
}

TEST(RunSpec, DefaultSpecIsValidAndRoundTrips) {
  const core::RunSpec spec;
  EXPECT_NO_THROW(spec.validate());
  EXPECT_EQ(core::RunSpec::from_string(spec.to_string()), spec);
}

TEST(RunSpec, FromStringRejectsGarbage) {
  EXPECT_THROW((void)core::RunSpec::from_string("testcase=XYZ"), std::invalid_argument);
  EXPECT_THROW((void)core::RunSpec::from_string("algorithm=sgd"), std::invalid_argument);
  EXPECT_THROW((void)core::RunSpec::from_string("seed=abc"), std::invalid_argument);
  EXPECT_THROW((void)core::RunSpec::from_string("no_such_key=1"), std::invalid_argument);
  EXPECT_THROW((void)core::RunSpec::from_string("just-a-token"), std::invalid_argument);
}

TEST(RunSpec, ValidateAcceptsEveryRegistryCombination) {
  // Since ISSUE 5 every (testcase, backend) pair has a registered
  // testbench, so validate() must accept the full matrix — the capability
  // tables (circuits::is_available) and validation stay in lockstep.
  for (const auto tc : circuits::all_testcases()) {
    for (const auto backend : circuits::available_backends(tc)) {
      core::RunSpec spec;
      spec.testcase = tc;
      spec.backend = backend;
      EXPECT_NO_THROW(spec.validate())
          << circuits::to_string(tc) << "/" << circuits::to_string(backend);
    }
  }
}

TEST(RunSpec, ValidateRejectsBadScalars) {
  core::RunSpec bad_quantum;
  bad_quantum.engine.cache_quantum = 0.0;
  EXPECT_THROW(bad_quantum.validate(), std::invalid_argument);
  core::RunSpec bad_iter;
  bad_iter.max_iterations = 0;
  EXPECT_THROW(bad_iter.validate(), std::invalid_argument);
  core::RunSpec bad_samples;
  bad_samples.n_opt_samples = 0;
  EXPECT_THROW(bad_samples.validate(), std::invalid_argument);
}

/// Counts callbacks and checks the per-iteration stats snapshot.
class CountingObserver final : public core::RunObserver {
 public:
  void on_start(core::Optimizer&) override { ++starts; }
  void on_iteration(core::Optimizer&, const core::IterationTrace& trace,
                    const core::EngineStats& stats) override {
    ++iterations;
    last_iteration = trace.iteration;
    last_requested = stats.requested;
  }
  void on_finish(core::Optimizer&, const core::GlovaResult& result) override {
    ++finishes;
    final_termination = result.termination;
  }

  int starts = 0;
  int iterations = 0;
  int finishes = 0;
  std::size_t last_iteration = 0;
  std::uint64_t last_requested = 0;
  std::string final_termination;
};

TEST(Observers, SeeEveryIterationAndTheFinish) {
  set_log_level(LogLevel::Warn);
  core::RunSpec spec;
  spec.testcase = circuits::Testcase::Sal;
  spec.seed = 1;
  const auto opt = core::make_optimizer(spec);
  const auto counter = std::make_shared<CountingObserver>();
  opt->add_observer(counter);
  const auto res = opt->run();
  EXPECT_EQ(counter->starts, 1);
  EXPECT_EQ(counter->finishes, 1);
  EXPECT_EQ(counter->iterations, static_cast<int>(res.rl_iterations));
  EXPECT_EQ(counter->last_iteration, res.rl_iterations);
  EXPECT_EQ(counter->last_requested, res.n_simulations);
  EXPECT_EQ(counter->final_termination, res.termination);
}

TEST(Observers, BudgetObserverCancelsLikeTheBuiltInBudget) {
  set_log_level(LogLevel::Warn);
  core::GlovaConfig cfg;
  cfg.method = core::VerifMethod::C;
  cfg.seed = 1;
  core::GlovaOptimizer opt(circuits::make_testbench(circuits::Testcase::Sal), cfg);
  core::RunBudget shared;
  shared.max_simulations = 65;
  opt.add_observer(std::make_shared<core::BudgetObserver>(shared));
  const auto res = opt.run();
  EXPECT_EQ(res.termination, "simulation-budget");
  EXPECT_GE(res.n_simulations, 65u);
}

TEST(Observers, EarlyStopCancelsAfterStall) {
  set_log_level(LogLevel::Warn);
  core::GlovaConfig cfg;
  cfg.method = core::VerifMethod::C;
  cfg.seed = 1;
  cfg.max_iterations = 200;
  core::GlovaOptimizer opt(circuits::make_testbench(circuits::Testcase::Sal), cfg);
  opt.add_observer(std::make_shared<core::EarlyStopObserver>(/*patience=*/1));
  const auto res = opt.run();
  // Either the run verified before the first stall, or early-stop fired; in
  // both cases the session terminated cleanly well under the iteration cap.
  EXPECT_TRUE(res.termination == "early-stop" || res.termination == "verified")
      << res.termination;
  EXPECT_LT(res.rl_iterations, cfg.max_iterations);
}

}  // namespace
}  // namespace glova
