#include "core/optimizer_base.hpp"

#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/log.hpp"
#include "common/state_io.hpp"
#include "common/text.hpp"

namespace glova::core {

// ---------------------------------------------------------------------------
// GlovaResult text codec, shared by campaign checkpoints and optimizer state.

void write_glova_result(std::ostream& os, const GlovaResult& r) {
  os << "result " << (r.success ? 1 : 0) << ' ' << r.rl_iterations << ' ' << r.n_simulations
     << ' ' << r.n_simulations_executed << ' ' << r.n_cache_hits << ' ' << r.turbo_evaluations
     << ' ' << format_double_roundtrip(r.wall_seconds) << ' '
     << format_double_roundtrip(r.modeled_runtime) << '\n';
  os << "stats " << r.engine_stats.requested << ' ' << r.engine_stats.executed << ' '
     << r.engine_stats.cache_hits << ' ' << r.engine_stats.dc_warm_hits << ' '
     << r.engine_stats.dc_warm_misses << ' ' << r.engine_stats.dc_warm_stores << '\n';
  os << "termination " << state::one_line(r.termination) << '\n';
  state::write_doubles(os, "x01", r.x01_final);
  state::write_doubles(os, "xphys", r.x_phys_final);
  os << "trace " << r.trace.size() << '\n';
  for (const IterationTrace& t : r.trace) {
    os << "t " << t.iteration << ' ' << format_double_roundtrip(t.reward_worst) << ' '
       << format_double_roundtrip(t.critic_mean) << ' '
       << format_double_roundtrip(t.critic_bound) << ' ' << (t.mu_sigma_pass ? 1 : 0) << ' '
       << (t.attempted_verification ? 1 : 0) << ' ' << t.sims_total << '\n';
  }
}

GlovaResult read_glova_result(std::istream& is) {
  GlovaResult r;
  {
    std::istringstream line(state::expect_line(is, "result"));
    int success = 0;
    if (!(line >> success >> r.rl_iterations >> r.n_simulations >> r.n_simulations_executed >>
          r.n_cache_hits >> r.turbo_evaluations >> r.wall_seconds >> r.modeled_runtime)) {
      state::bad("malformed 'result' line");
    }
    r.success = success != 0;
  }
  {
    std::istringstream line(state::expect_line(is, "stats"));
    if (!(line >> r.engine_stats.requested >> r.engine_stats.executed >>
          r.engine_stats.cache_hits >> r.engine_stats.dc_warm_hits >>
          r.engine_stats.dc_warm_misses >> r.engine_stats.dc_warm_stores)) {
      state::bad("malformed 'stats' line");
    }
  }
  r.termination = state::expect_line(is, "termination");
  r.x01_final = state::read_doubles(is, "x01");
  r.x_phys_final = state::read_doubles(is, "xphys");
  const std::size_t trace_count =
      state::parse_u64(state::expect_line(is, "trace"), "trace count");
  if (trace_count > state::kMaxCount) {
    state::bad("implausible trace count " + std::to_string(trace_count));
  }
  r.trace.reserve(trace_count);
  for (std::size_t i = 0; i < trace_count; ++i) {
    std::istringstream line(state::expect_line(is, "t"));
    IterationTrace t;
    int mu = 0;
    int att = 0;
    if (!(line >> t.iteration >> t.reward_worst >> t.critic_mean >> t.critic_bound >> mu >>
          att >> t.sims_total)) {
      state::bad("malformed trace row");
    }
    t.mu_sigma_pass = mu != 0;
    t.attempted_verification = att != 0;
    r.trace.push_back(t);
  }
  return r;
}

const char* RunBudget::exceeded_by(std::uint64_t simulations, std::size_t iterations,
                                   double wall_seconds) const {
  if (max_simulations != 0 && simulations >= max_simulations) return "simulation-budget";
  if (max_iterations != 0 && iterations >= max_iterations) return "iteration-budget";
  if (max_wall_seconds > 0.0 && wall_seconds >= max_wall_seconds) return "wall-clock-budget";
  return nullptr;
}

double Optimizer::elapsed_seconds() const {
  if (!started_) return 0.0;
  return wall_offset_ +
         std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_).count();
}

void Optimizer::do_save_state(std::ostream&) const {
  throw std::logic_error(std::string(algorithm_name()) +
                         ": state serialization not implemented");
}

void Optimizer::do_load_state(std::istream&) {
  throw std::logic_error(std::string(algorithm_name()) +
                         ": state serialization not implemented");
}

void Optimizer::save_state(std::ostream& os) const {
  if (!supports_state_serialization()) {
    throw std::logic_error(std::string(algorithm_name()) +
                           ": state serialization not supported");
  }
  if (!started_ || finished_) {
    throw std::logic_error(
        "Optimizer::save_state: only a live (started, unfinished) session can be serialized; "
        "a fresh session is captured by its spec, a terminal one by its result");
  }
  os << "optimizer-state v2 " << algorithm_name() << '\n';
  write_glova_result(os, result_);
  do_save_state(os);
  os << "optimizer-state-end\n";
  if (!os) state::bad("optimizer state write failed");
}

void Optimizer::load_state(std::istream& is) {
  if (!supports_state_serialization()) {
    throw std::logic_error(std::string(algorithm_name()) +
                           ": state serialization not supported");
  }
  if (started_ || finished_) {
    throw std::logic_error("Optimizer::load_state: requires a fresh session (no step() yet)");
  }
  std::istringstream header(state::expect_line(is, "optimizer-state"));
  std::string version;
  std::string name;
  header >> version >> name;
  if (version != "v2") {
    state::bad("unsupported optimizer-state version '" + version + "' (this build reads v2)");
  }
  if (name != algorithm_name()) {
    state::bad("optimizer-state algorithm mismatch: state is for '" + name +
               "', this session runs " + algorithm_name());
  }
  result_ = read_glova_result(is);
  do_load_state(is);
  state::expect_line(is, "optimizer-state-end");
  // The session is live from here: the saved wall time carries into
  // elapsed_seconds() so wall-clock budgets span process restarts.
  wall_offset_ = result_.wall_seconds;
  t0_ = std::chrono::steady_clock::now();
  started_ = true;
}

bool Optimizer::step() {
  if (finished_) return false;
  if (cancel_requested_) {  // cancelled between steps, before this call
    result_.termination = cancel_reason_;
    finish();
    return false;
  }
  // RAII so an exception escaping do_start()/do_step() (e.g. a failing
  // testbench evaluation) still clears the flag: a subsequent cancel() can
  // then finalize the session instead of deferring forever.
  struct StepScope {
    bool& flag;
    explicit StepScope(bool& f) : flag(f) { flag = true; }
    ~StepScope() { flag = false; }
  } scope(in_step_);
  if (!started_) {
    t0_ = std::chrono::steady_clock::now();
    do_start();
    // Marked only after do_start() succeeds: if initialization throws, a
    // retrying step() must run it again from scratch (do_start builds a
    // fresh Session) instead of stepping a half-built one.
    started_ = true;
    for (const auto& obs : observers_) obs->on_start(*this);
  }
  const bool more = do_step();
  if (!observers_.empty() && !result_.trace.empty()) {
    const EvaluationEngine* eng = engine_ptr();
    const EngineStats stats = eng ? eng->stats() : EngineStats{};
    for (const auto& obs : observers_) obs->on_iteration(*this, result_.trace.back(), stats);
  }
  if (more && !cancel_requested_) {
    const EvaluationEngine* eng = engine_ptr();
    const std::uint64_t sims = eng ? eng->simulation_count() : 0;
    if (const char* reason =
            budget_.exceeded_by(sims, result_.rl_iterations, elapsed_seconds())) {
      cancel(reason);
    }
  }
  if (!more) {
    finish();  // natural termination: the algorithm set its own reason
  } else if (cancel_requested_) {
    result_.termination = cancel_reason_;
    finish();
  }
  return true;
}

void Optimizer::cancel(std::string reason) {
  if (finished_) return;
  cancel_requested_ = true;
  cancel_reason_ = reason.empty() ? "cancelled" : std::move(reason);
  if (!in_step_) {
    result_.termination = cancel_reason_;
    finish();
  }
}

void Optimizer::finish() {
  if (finished_) return;
  finished_ = true;
  if (const EvaluationEngine* eng = engine_ptr()) {
    const EngineStats stats = eng->stats();
    result_.engine_stats = stats;
    result_.n_simulations = stats.requested;
    result_.n_simulations_executed = stats.executed;
    result_.n_cache_hits = stats.cache_hits;
  }
  result_.wall_seconds = elapsed_seconds();
  result_.modeled_runtime =
      static_cast<double>(result_.n_simulations) * cost().per_simulation +
      static_cast<double>(result_.rl_iterations) * cost().per_rl_iteration;
  do_finalize(result_);
  for (const auto& obs : observers_) obs->on_finish(*this, result_);
}

const GlovaResult& Optimizer::result() const {
  if (!finished_) {
    throw std::logic_error(
        "Optimizer::result(): session still running; drive step() until done() or cancel()");
  }
  return result_;
}

GlovaResult Optimizer::run() {
  while (!finished_) step();
  return result_;
}

void Optimizer::add_observer(std::shared_ptr<RunObserver> observer) {
  if (observer) observers_.push_back(std::move(observer));
}

// ---------------------------------------------------------------------------

ProgressLogObserver::ProgressLogObserver(std::size_t every)
    : every_(every == 0 ? 1 : every) {}

void ProgressLogObserver::on_start(Optimizer& session) {
  log_info(session.algorithm_name(), ": session started");
}

void ProgressLogObserver::on_iteration(Optimizer& session, const IterationTrace& trace,
                                       const EngineStats& stats) {
  if (trace.iteration % every_ != 0) return;
  log_info(session.algorithm_name(), ": iter ", trace.iteration, " reward_worst ",
           trace.reward_worst, " sims ", stats.requested, " (", stats.cache_hits,
           " cache hits)");
}

void ProgressLogObserver::on_finish(Optimizer& session, const GlovaResult& result) {
  log_info(session.algorithm_name(), ": finished (", result.termination, ") after ",
           result.rl_iterations, " iterations, ", result.n_simulations, " simulations");
}

void BudgetObserver::on_iteration(Optimizer& session, const IterationTrace& trace,
                                  const EngineStats& stats) {
  (void)trace;
  if (const char* reason = budget_.exceeded_by(stats.requested, session.iterations_completed(),
                                               session.elapsed_seconds())) {
    session.cancel(reason);
  }
}

EarlyStopObserver::EarlyStopObserver(std::size_t patience, double min_improvement)
    : patience_(patience == 0 ? 1 : patience), min_improvement_(min_improvement) {}

void EarlyStopObserver::on_iteration(Optimizer& session, const IterationTrace& trace,
                                     const EngineStats& stats) {
  (void)stats;
  if (!has_best_ || trace.reward_worst > best_ + min_improvement_) {
    has_best_ = true;
    best_ = trace.reward_worst;
    stalled_ = 0;
    return;
  }
  if (++stalled_ >= patience_) session.cancel("early-stop");
}

}  // namespace glova::core
