// Risk-sensitive RL agent (paper Algorithm 1, modified DDPG [21]).
//
// The actor is a 4-layer MLP mapping the previous normalized design to the
// next one; the critic is the ensemble of Sec. IV-B.  Each update step:
//   - every critic base model takes one gradient step on its own batch
//     sampled from the worst-case replay buffer (L_Qi = MSE(r, Q_i(x)+bias)),
//   - the actor takes one step minimizing L_A = MSE(0.2, Q(A(x))+bias),
//     i.e. it is pulled toward designs whose *risk-adjusted* reliability
//     bound reaches the all-constraints-met reward of 0.2,
//   - a new design is proposed as A(x_last) + exploration noise.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "nn/adam.hpp"
#include "nn/mlp.hpp"
#include "rl/ensemble_critic.hpp"
#include "rl/replay_buffer.hpp"

namespace glova::rl {

struct AgentConfig {
  CriticConfig critic;
  std::size_t hidden = 64;
  std::size_t batch_size = 10;     ///< paper Sec. VI-B
  double actor_learning_rate = 1e-3;
  double target_reward = 0.2;      ///< Eq. (4) success reward
  double noise_initial = 0.20;     ///< exploration noise sigma (normalized units)
  double noise_decay = 0.97;
  double noise_min = 0.03;
};

class RiskSensitiveAgent {
 public:
  RiskSensitiveAgent(std::size_t design_dim, const AgentConfig& config, Rng rng);

  /// One Algorithm-1 training iteration on the current buffer contents.
  /// Returns the actor loss (for traces).  No-op if the buffer is empty.
  double update(const WorstCaseReplayBuffer& buffer);

  /// Propose the next design from the last one (actor + exploration noise),
  /// clamped to [0,1]^p.
  [[nodiscard]] std::vector<double> propose(std::span<const double> x_last);

  /// Propose `candidates` noisy variants of the actor output and return the
  /// one with the highest risk-adjusted critic bound (Eq. 6).  This uses the
  /// ensemble exactly as Sec. IV-B intends — the reliability bound guides
  /// the search — at zero simulation cost.
  [[nodiscard]] std::vector<double> propose_screened(std::span<const double> x_last,
                                                     std::size_t candidates);

  /// Deterministic actor output (no exploration noise).
  [[nodiscard]] std::vector<double> act(std::span<const double> x_last) const;

  [[nodiscard]] const EnsembleCritic& critic() const { return critic_; }
  [[nodiscard]] double exploration_noise() const { return noise_; }
  [[nodiscard]] std::size_t update_count() const { return updates_; }

  /// Text-serialize the full learning state (agent RNG stream, actor
  /// weights + Adam moments, critic ensemble, noise schedule, update count).
  /// `load` expects an agent constructed with the same design_dim and config.
  void save(std::ostream& os) const;
  void load(std::istream& is);

 private:
  AgentConfig config_;
  Rng rng_;
  nn::Mlp actor_;
  nn::Adam actor_opt_;
  EnsembleCritic critic_;
  double noise_;
  std::size_t updates_ = 0;
};

}  // namespace glova::rl
