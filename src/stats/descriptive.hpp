// Descriptive statistics used throughout the framework:
//  - mean / standard deviation feed the mu-sigma evaluation (Eq. 7) and the
//    ensemble critic's risk bound (Eq. 6),
//  - Welford accumulators provide numerically stable online updates,
//  - quantiles support the reported result summaries.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace glova::stats {

/// Arithmetic mean.  Returns 0 for an empty span.
[[nodiscard]] double mean(std::span<const double> xs);

/// Population variance (divide by n).  Returns 0 for n < 1.
[[nodiscard]] double variance_population(std::span<const double> xs);

/// Sample variance (divide by n-1).  Returns 0 for n < 2.
[[nodiscard]] double variance_sample(std::span<const double> xs);

/// Population standard deviation.
[[nodiscard]] double stddev_population(std::span<const double> xs);

/// Sample standard deviation.
[[nodiscard]] double stddev_sample(std::span<const double> xs);

/// Minimum value; throws std::invalid_argument on empty input.
[[nodiscard]] double min_value(std::span<const double> xs);

/// Maximum value; throws std::invalid_argument on empty input.
[[nodiscard]] double max_value(std::span<const double> xs);

/// Linear-interpolation quantile, q in [0, 1]; throws on empty input.
[[nodiscard]] double quantile(std::vector<double> xs, double q);

/// Median (quantile 0.5).
[[nodiscard]] double median(std::vector<double> xs);

/// Numerically stable online mean/variance accumulator (Welford, 1962).
class Welford {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Population variance of the samples added so far.
  [[nodiscard]] double variance_population() const { return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0; }
  /// Sample variance of the samples added so far.
  [[nodiscard]] double variance_sample() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev_population() const;
  [[nodiscard]] double stddev_sample() const;

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const Welford& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace glova::stats
