// Pinned-seed regression table (ROADMAP ask): fixed-seed GlovaOptimizer runs
// must request exactly the recorded number of simulations, with the recorded
// cache behavior, and the SPICE StrongARM testbench must reproduce the
// recorded circuit metrics.  This is the guard rail for every evaluation-
// stack change: a refactor that alters optimizer control flow, cache keys,
// or solver results shows up here before it ships.
//
// Re-recording (only when an intentional behavior change is made): build,
// then run this binary with --gtest_also_run_disabled_tests removed and
// copy the values printed by a failing expectation — or rerun the
// bench-point probe documented in README.md — into the tables below.
#include <gtest/gtest.h>

#include <cstdint>

#include "circuits/registry.hpp"
#include "circuits/spice_backend.hpp"
#include "common/log.hpp"
#include "core/optimizer.hpp"
#include "spice/warm_start.hpp"

namespace glova {
namespace {

struct PinnedRun {
  circuits::Testcase testcase;
  core::VerifMethod method;
  std::uint64_t seed;
  std::size_t max_iterations;
  // Recorded reference values (git main, seed toolchain).
  std::uint64_t n_simulations;
  std::uint64_t n_executed;
  std::uint64_t n_cache_hits;
  std::size_t rl_iterations;
  const char* termination;
};

// The paper's "# Simulation" column semantics: requested = executed + hits.
constexpr PinnedRun kPinnedRuns[] = {
    {circuits::Testcase::Sal, core::VerifMethod::C, 1, 200, 100, 99, 1, 15, "verified"},
    {circuits::Testcase::Sal, core::VerifMethod::C_MCGL, 7, 60, 6199, 6199, 0, 39, "verified"},
    {circuits::Testcase::DramOcsa, core::VerifMethod::C_MCL, 3, 60, 3571, 3571, 0, 11, "verified"},
    {circuits::Testcase::Fia, core::VerifMethod::C, 5, 120, 133, 132, 1, 16, "verified"},
};

TEST(PinnedSeedRegression, SimulationCountsMatchReferenceTable) {
  set_log_level(LogLevel::Warn);
  for (const PinnedRun& run : kPinnedRuns) {
    core::GlovaConfig cfg;
    cfg.method = run.method;
    cfg.seed = run.seed;
    cfg.max_iterations = run.max_iterations;
    core::GlovaOptimizer opt(circuits::make_testbench(run.testcase), cfg);
    const core::GlovaResult res = opt.run();
    const std::string label = std::string(circuits::to_string(run.testcase)) + "/" +
                              core::to_string(run.method) + "/seed" +
                              std::to_string(run.seed);
    EXPECT_EQ(res.n_simulations, run.n_simulations) << label;
    EXPECT_EQ(res.n_simulations_executed, run.n_executed) << label;
    EXPECT_EQ(res.n_cache_hits, run.n_cache_hits) << label;
    EXPECT_EQ(res.rl_iterations, run.rl_iterations) << label;
    EXPECT_EQ(res.termination, run.termination) << label;
  }
}

// SPICE metrics at the bench_micro sizing point, recorded on git main before
// the stamp-plan/warm-start rewrite.  The compiled-plan assembler, the
// fused LU kernel, and the pinned-source absorption must reproduce them to
// within Newton's voltage tolerance (measured deviation: ~2e-13 relative).
// Warm start is disabled so the check is independent of cache state.
TEST(PinnedSeedRegression, SalSpiceMetricsMatchRecordedBaseline) {
  const bool was_enabled = spice::dc_warm_start_enabled();
  spice::set_dc_warm_start_enabled(false);
  circuits::StrongArmLatchSpice sal;
  const std::vector<double> x01 = {0.2, 0.3, 0.2, 0.2, 0.2, 0.1, 0.2,
                                   0.0, 0.0, 0.0, 0.0, 0.0, 0.05, 0.01};
  const auto x = sal.sizing().denormalize(x01);
  const auto m = sal.evaluate(x, pdk::typical_corner(), {});
  spice::set_dc_warm_start_enabled(was_enabled);

  ASSERT_EQ(m.size(), 4u);
  const double kBaseline[4] = {
      1.07752996735817896e-05,  // power [W]
      5.11384451347080707e-10,  // set delay [s]
      1.11129848615213381e-10,  // reset delay [s]
      9.12987598746986783e-05,  // input noise [V]
  };
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(m[i], kBaseline[i], std::abs(kBaseline[i]) * 1e-6) << "metric " << i;
  }
}

}  // namespace
}  // namespace glova
