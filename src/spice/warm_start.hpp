// DC warm-start cache: converged operating points keyed by a quantized
// (design, corner) identity, reused as Newton seeds across mismatch draws of
// the same design.
//
// Mismatch shifts device parameters by millivolts around the nominal design,
// so the nominal DC solution is an excellent Newton seed: warm-started
// solves converge in a fraction of the cold iteration count and skip the
// source-stepping fallback entirely.  Correctness is unaffected — a warm
// start only changes the Newton trajectory, and Simulator::operating_point
// falls back to the cold path whenever a seed fails, so converged solutions
// agree with cold solves to within the Newton voltage tolerance (vtol).
//
// The cache is thread-local (one per worker, adjacent to the thread's
// SimulatorWorkspace): lookups are lock-free and each evaluation thread
// warms its own cache after the first draw of a design.  Hit/miss/store
// counters are process-wide atomics so the evaluation engine can surface
// them next to its memoization statistics.
#pragma once

#include <cstdint>
#include <list>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "pdk/corner.hpp"
#include "spice/simulator.hpp"

namespace glova::spice {

/// Process-wide warm-start counters (summed over every thread's cache).
struct WarmStartStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stores = 0;
};

[[nodiscard]] WarmStartStats warm_start_stats();
void reset_warm_start_stats();

/// Credit `count` extra warm-start hits to the process-wide statistics.  The
/// batched draw-group path performs ONE cache lookup per group and then rolls
/// the seed forward internally (BatchSimulator), where the sequential path
/// would have performed one counted lookup per draw; the batched caller
/// credits the hits its internal reseeding replaced so the dc_warm_* figures
/// stay comparable across paths.
void note_warm_start_hits(std::uint64_t count);

/// Global enable switch (default on).  Tests that need bit-identical repeat
/// evaluations disable it; the evaluation engine applies its config here.
[[nodiscard]] bool dc_warm_start_enabled();
void set_dc_warm_start_enabled(bool enabled);

/// Small LRU cache of converged DC operating points.  Keys are flat integer
/// vectors (see make_dc_key); equality is exact.
class DcWarmStartCache {
 public:
  using Key = std::vector<std::int64_t>;

  explicit DcWarmStartCache(std::size_t capacity = 64);

  /// Returns the cached operating point, or nullptr on a miss.  The pointer
  /// stays valid until the next store() or clear() on this cache.  Counts
  /// into the process-wide hit/miss statistics.
  [[nodiscard]] const OpResult* lookup(const Key& key);

  /// Insert (or refresh) an entry; evicts least-recently-used on overflow.
  /// Only converged results are worth storing; non-converged ones are
  /// silently dropped.
  void store(const Key& key, const OpResult& op);

  void clear();
  [[nodiscard]] std::size_t size() const { return lru_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  struct KeyHash {
    std::size_t operator()(const Key& key) const noexcept;
  };

  std::size_t capacity_;
  /// LRU: most recent at the front.  The map points into the list.
  std::list<std::pair<Key, OpResult>> lru_;
  std::unordered_map<Key, decltype(lru_)::iterator, KeyHash> index_;
};

/// The calling thread's warm-start cache, adjacent to its
/// thread_local_workspace().
[[nodiscard]] DcWarmStartCache& thread_local_dc_cache();

/// Reconcile the calling thread's warm-start cache and the process-wide
/// statistics after a batched draw-group run.  `seed` is what the group's
/// single lookup(key) returned; `results` are the per-lane transients from
/// BatchSimulator::transient(spec, seed).  Mirrors the sequential per-draw
/// bookkeeping: every lane that cold-solved stores (refreshing a stale entry
/// exactly as the per-draw store rule would), and every successful warm
/// start beyond the one the lookup already counted is credited as a hit.
/// No-op while dc_warm_start_enabled() is false.
void sync_warm_start_cache(const DcWarmStartCache::Key& key, const OpResult* seed,
                           std::span<const TransientResult> results);

/// Build a cache key from a testbench tag (distinguishes circuit topologies
/// that share a design-vector shape), the physical design vector, and the
/// PVT corner.  Mismatch draws are deliberately NOT part of the key: all
/// draws of one (design, corner) share the nominal seed.  Coordinates are
/// quantized like the evaluation-engine memo keys so round-trip noise never
/// splits entries.
[[nodiscard]] DcWarmStartCache::Key make_dc_key(std::uint64_t testbench_tag,
                                                std::span<const double> x_phys,
                                                const pdk::PvtCorner& corner,
                                                double quantum = 1e-15);

}  // namespace glova::spice
