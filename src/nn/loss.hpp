// Mean-squared-error loss; Algorithm 1 uses MSE for both the critic
// regression (L_Qi) and the actor objective (L_A).
#pragma once

#include <span>
#include <vector>

namespace glova::nn {

/// 0.5/n * sum (pred - target)^2 — the 0.5 keeps the gradient clean.
[[nodiscard]] double mse(std::span<const double> pred, std::span<const double> target);

/// Gradient of `mse` with respect to `pred`.
[[nodiscard]] std::vector<double> mse_grad(std::span<const double> pred,
                                           std::span<const double> target);

/// Scalar convenience overloads.
[[nodiscard]] double mse(double pred, double target);
[[nodiscard]] double mse_grad_scalar(double pred, double target);

}  // namespace glova::nn
