#include "baselines/robustanalog.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/state_io.hpp"
#include "core/reward.hpp"
#include "core/verifier.hpp"
#include "opt/kmeans.hpp"
#include "pdk/variation.hpp"
#include "rl/agent.hpp"

namespace glova::baselines {

using core::kSuccessReward;

struct RobustAnalogOptimizer::Session {
  core::EvaluationEngine service;
  Rng rng;
  Rng mc_rng{0};
  rl::LastWorstBuffer last_worst;
  std::vector<std::size_t> dominant;
  std::unique_ptr<rl::RiskSensitiveAgent> agent;
  rl::WorstCaseReplayBuffer buffer;
  std::unique_ptr<core::Verifier> verifier;
  std::vector<double> x_last;
  std::size_t iter = 0;

  Session(circuits::TestbenchPtr testbench, const RobustAnalogConfig& config,
          std::size_t corner_count)
      : service(std::move(testbench), config.engine),
        rng(config.seed),
        last_worst(corner_count) {}
};

RobustAnalogOptimizer::RobustAnalogOptimizer(circuits::TestbenchPtr testbench,
                                             RobustAnalogConfig config)
    : testbench_(std::move(testbench)),
      config_(config),
      op_config_(core::OperationalConfig::for_method(config.method, config.n_opt_samples,
                                                     config.corner_filter)) {}

RobustAnalogOptimizer::~RobustAnalogOptimizer() = default;

const core::EvaluationEngine* RobustAnalogOptimizer::engine_ptr() const {
  return s_ ? &s_->service : nullptr;
}

rl::AgentConfig RobustAnalogOptimizer::agent_config() const {
  rl::AgentConfig agent_cfg;
  agent_cfg.critic.ensemble_size = 1;
  agent_cfg.critic.beta1 = 0.0;
  agent_cfg.critic.hidden = config_.hidden;
  agent_cfg.hidden = config_.hidden;
  agent_cfg.batch_size = config_.batch_size;
  return agent_cfg;
}

core::VerifierOptions RobustAnalogOptimizer::verifier_options() const {
  core::VerifierOptions vopts;
  vopts.use_mu_sigma = false;
  vopts.use_reordering = false;
  return vopts;
}

void RobustAnalogOptimizer::do_save_state(std::ostream& os) const {
  const Session& s = *s_;
  os << "robustanalog " << s.iter << '\n';
  os << "rng " << s.rng.save() << '\n';
  os << "mc_rng " << s.mc_rng.save() << '\n';
  state::write_doubles(os, "x_last", s.x_last);
  const std::vector<std::uint64_t> dominant(s.dominant.begin(), s.dominant.end());
  state::write_u64s(os, "dominant", dominant);
  s.buffer.save(os);
  s.last_worst.save(os);
  s.agent->save(os);
  s.service.save_state(os);
}

void RobustAnalogOptimizer::do_load_state(std::istream& is) {
  s_ = std::make_unique<Session>(testbench_, config_, op_config_.corner_count());
  Session& s = *s_;
  s.iter = state::parse_u64(state::expect_line(is, "robustanalog"), "RobustAnalog iteration");
  s.rng.restore(state::expect_line(is, "rng"));
  s.mc_rng.restore(state::expect_line(is, "mc_rng"));
  s.x_last = state::read_doubles(is, "x_last");
  const auto dominant = state::read_u64s(is, "dominant");
  s.dominant.assign(dominant.begin(), dominant.end());
  for (const std::size_t j : s.dominant) {
    if (j >= op_config_.corner_count()) state::bad("RobustAnalog dominant corner out of range");
  }
  s.buffer.load(is);
  s.last_worst.load(is);
  // Placeholder construction: agent->load overwrites all of it.
  const std::size_t p = testbench_->sizing().dimension();
  s.agent = std::make_unique<rl::RiskSensitiveAgent>(p, agent_config(), s.rng.split(0xA6E7));
  s.agent->load(is);
  s.verifier = std::make_unique<core::Verifier>(s.service, op_config_, verifier_options());
  s.service.load_state(is);
}

void RobustAnalogOptimizer::recluster(std::span<const double> x01) {
  Session& s = *s_;
  const circuits::SizingSpec& sizing = testbench_->sizing();
  const circuits::PerformanceSpec& spec = testbench_->performance();
  const std::size_t k = op_config_.corner_count();
  const auto x = sizing.denormalize(x01);
  std::vector<std::vector<double>> signatures(k);
  for (std::size_t j = 0; j < k; ++j) {
    const auto hs = op_config_.sample_conditions(*testbench_, x, op_config_.n_opt, s.mc_rng);
    const auto metrics = s.service.evaluate_batch(x, op_config_.corners[j], hs);
    s.last_worst.update(j, core::worst_reward_of(spec, metrics));
    // Signature: mean normalized margins across the sampled conditions.
    std::vector<double> mean_margins(spec.count(), 0.0);
    for (const auto& m : metrics) {
      const auto f = core::margins(spec, m);
      for (std::size_t i = 0; i < f.size(); ++i) mean_margins[i] += f[i] / metrics.size();
    }
    signatures[j] = std::move(mean_margins);
  }
  const std::size_t n_clusters = std::min(config_.clusters, k);
  Rng cluster_rng = s.rng.split(0xC1);  // deterministic given the seed
  const opt::KMeansResult clusters = opt::kmeans(signatures, n_clusters, cluster_rng);
  s.dominant.assign(n_clusters, 0);
  std::vector<double> worst(n_clusters, std::numeric_limits<double>::max());
  for (std::size_t j = 0; j < k; ++j) {
    const std::size_t c = clusters.assignment[j];
    if (s.last_worst.reward(j) < worst[c]) {
      worst[c] = s.last_worst.reward(j);
      s.dominant[c] = j;
    }
  }
}

void RobustAnalogOptimizer::do_start() {
  s_ = std::make_unique<Session>(testbench_, config_, op_config_.corner_count());
  Session& s = *s_;
  core::EvaluationEngine& service = s.service;
  const circuits::SizingSpec& sizing = testbench_->sizing();
  const circuits::PerformanceSpec& spec = testbench_->performance();
  const std::size_t p = sizing.dimension();

  // --- random initial sampling (no TuRBO: the limitation [9] pointed out).
  s.mc_rng = s.rng.split(0x3C3C);
  std::vector<double> x_best;
  double best_reward = -std::numeric_limits<double>::max();
  const pdk::PvtCorner typical = pdk::typical_corner();
  for (std::size_t i = 0; i < config_.random_init_samples; ++i) {
    const auto x01 = s.rng.uniform_vector(p, 0.0, 1.0);
    const auto x = sizing.denormalize(x01);
    const double r = core::reward_from_metrics(spec, service.evaluate_one(x, typical, {}));
    if (r > best_reward) {
      best_reward = r;
      x_best = x01;
    }
  }
  result_.turbo_evaluations = service.simulation_count();  // init cost (random here)

  // --- corner signatures of the incumbent -> k-means -> dominant corners.
  if (x_best.empty()) x_best = s.rng.uniform_vector(p, 0.0, 1.0);
  recluster(x_best);

  // --- risk-neutral multi-task agent (shared actor/critic over tasks).
  s.agent = std::make_unique<rl::RiskSensitiveAgent>(p, agent_config(), s.rng.split(0xA6E7));
  s.buffer.add(x_best, best_reward);

  s.verifier = std::make_unique<core::Verifier>(service, op_config_, verifier_options());

  s.x_last = std::move(x_best);
  result_.termination = "iteration-cap";
}

bool RobustAnalogOptimizer::do_step() {
  Session& s = *s_;
  if (s.iter >= config_.max_iterations) return false;
  const std::size_t iter = ++s.iter;
  core::EvaluationEngine& service = s.service;
  const circuits::SizingSpec& sizing = testbench_->sizing();
  const circuits::PerformanceSpec& spec = testbench_->performance();

  std::vector<double> x_new = s.agent->propose(s.x_last);
  const auto x_phys = sizing.denormalize(x_new);

  // Simulate only the dominant corner of each cluster.
  double r_worst = std::numeric_limits<double>::max();
  for (const std::size_t j : s.dominant) {
    const auto hs = op_config_.sample_conditions(*testbench_, x_phys, op_config_.n_opt, s.mc_rng);
    const auto metrics = service.evaluate_batch(x_phys, op_config_.corners[j], hs);
    const double w = core::worst_reward_of(spec, metrics);
    s.last_worst.update(j, w);
    r_worst = std::min(r_worst, w);
  }

  core::IterationTrace trace;
  trace.iteration = iter;
  trace.reward_worst = r_worst;
  const rl::EnsembleCritic::Bound bound = s.agent->critic().bound(x_new);
  trace.critic_mean = bound.mean;
  trace.critic_bound = bound.risk_adjusted;
  trace.mu_sigma_pass = r_worst == kSuccessReward;  // hard gate: no mu-sigma

  if (r_worst == kSuccessReward) {
    trace.attempted_verification = true;
    const core::VerificationOutcome outcome = s.verifier->verify(x_phys, s.last_worst, s.mc_rng);
    for (const auto& [j, w] : outcome.corner_worst_rewards) {
      s.last_worst.update(j, w);
      r_worst = std::min(r_worst, w);
    }
    if (outcome.passed) {
      result_.success = true;
      result_.rl_iterations = iter;
      result_.x01_final = x_new;
      result_.x_phys_final = x_phys;
      result_.termination = "verified";
      trace.sims_total = service.simulation_count();
      result_.trace.push_back(trace);
      return false;
    }
  }

  s.buffer.add(x_new, r_worst);
  (void)s.agent->update(s.buffer);  // standard DDPG: one update per environment step
  trace.sims_total = service.simulation_count();
  result_.trace.push_back(trace);
  // RobustAnalog follows the plain DDPG chain: no re-anchoring onto the
  // best-known design (one of the stability gaps the later works close).
  s.x_last = std::move(x_new);
  if (iter % config_.recluster_interval == 0) {
    recluster(s.buffer.best() ? s.buffer.best()->x01 : s.x_last);
  }
  result_.rl_iterations = iter;
  return iter < config_.max_iterations;
}

}  // namespace glova::baselines
