#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace glova::stats {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (const double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance_population(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  const double m = mean(xs);
  double sum = 0.0;
  for (const double x : xs) sum += (x - m) * (x - m);
  return sum / static_cast<double>(xs.size());
}

double variance_sample(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double sum = 0.0;
  for (const double x : xs) sum += (x - m) * (x - m);
  return sum / static_cast<double>(xs.size() - 1);
}

double stddev_population(std::span<const double> xs) { return std::sqrt(variance_population(xs)); }

double stddev_sample(std::span<const double> xs) { return std::sqrt(variance_sample(xs)); }

double min_value(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("min_value: empty input");
  return *std::min_element(xs.begin(), xs.end());
}

double max_value(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("max_value: empty input");
  return *std::max_element(xs.begin(), xs.end());
}

double quantile(std::vector<double> xs, double q) {
  if (xs.empty()) throw std::invalid_argument("quantile: empty input");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q out of [0,1]");
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double median(std::vector<double> xs) { return quantile(std::move(xs), 0.5); }

void Welford::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Welford::stddev_population() const { return std::sqrt(variance_population()); }

double Welford::stddev_sample() const { return std::sqrt(variance_sample()); }

void Welford::merge(const Welford& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  n_ += other.n_;
}

}  // namespace glova::stats
