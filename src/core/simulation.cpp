#include "core/simulation.hpp"

#include <stdexcept>

namespace glova::core {

SimulationService::SimulationService(circuits::TestbenchPtr testbench, std::size_t parallelism)
    : testbench_(std::move(testbench)), parallelism_(parallelism) {
  if (!testbench_) throw std::invalid_argument("SimulationService: null testbench");
}

std::vector<std::vector<double>> SimulationService::evaluate_batch(
    std::span<const double> x_phys, const pdk::PvtCorner& corner,
    const std::vector<std::vector<double>>& hs) {
  std::vector<std::vector<double>> results(hs.size());
  count_.fetch_add(hs.size());
  // Behavioral evaluations are microseconds each; threading only pays off
  // for sizable batches (or the SPICE backend).
  const bool parallel = hs.size() >= 16 && parallelism_ != 1;
  if (parallel) {
    global_thread_pool().parallel_for(hs.size(), [&](std::size_t i) {
      results[i] = testbench_->evaluate(x_phys, corner, hs[i]);
    });
  } else {
    for (std::size_t i = 0; i < hs.size(); ++i) {
      results[i] = testbench_->evaluate(x_phys, corner, hs[i]);
    }
  }
  return results;
}

std::vector<double> SimulationService::evaluate_one(std::span<const double> x_phys,
                                                    const pdk::PvtCorner& corner,
                                                    std::span<const double> h) {
  count_.fetch_add(1);
  return testbench_->evaluate(x_phys, corner, h);
}

}  // namespace glova::core
