// Ensemble-based critic (paper Sec. IV-B, Eq. 6):
//
//   Q(x) = E[Q_i(x)] + beta1 * sigma[Q_i(x)],   beta1 < 0 (risk avoidance)
//
// Each base model is a 4-layer MLP trained on its own batch from the
// worst-case replay buffer; the ensemble spread estimates the uncertainty of
// the design-reliability bound that only ~N' = 2..5 mismatch samples per
// iteration could never pin down directly.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "nn/adam.hpp"
#include "nn/mlp.hpp"

namespace glova::rl {

struct CriticConfig {
  std::size_t ensemble_size = 5;
  std::size_t hidden = 64;
  double beta1 = -3.0;        ///< risk-avoidance parameter (Eq. 6)
  double learning_rate = 1e-3;
  double bias = 0.0;          ///< the constant bias term of Algorithm 1's losses
};

class EnsembleCritic {
 public:
  EnsembleCritic(std::size_t input_dim, const CriticConfig& config, Rng& rng);

  /// Risk-adjusted bound Q(x) of Eq. (6).
  [[nodiscard]] double predict(std::span<const double> x) const;

  /// Mean and std of the base-model outputs (Fig. 3 reproduction).
  struct Bound {
    double mean = 0.0;
    double std = 0.0;
    double risk_adjusted = 0.0;
  };
  [[nodiscard]] Bound bound(std::span<const double> x) const;

  /// One gradient step of base model `i` on (x, r) targets:
  /// L_Qi = MSE(r, Q_i(x) + bias).  Returns the batch loss.
  double train_base(std::size_t i, const std::vector<std::vector<double>>& xs,
                    std::span<const double> rewards);

  /// d Q(x) / d x of the aggregated (risk-adjusted) output, used to push
  /// gradients into the actor.  `dLdq` scales the result.
  [[nodiscard]] std::vector<double> input_gradient(std::span<const double> x, double dLdq) const;

  [[nodiscard]] std::size_t ensemble_size() const { return models_.size(); }
  [[nodiscard]] const CriticConfig& config() const { return config_; }

  /// Text-serialize every base model's parameters and optimizer moments
  /// (architecture and config come from the constructor).
  void save(std::ostream& os) const;
  void load(std::istream& is);

 private:
  CriticConfig config_;
  std::vector<nn::Mlp> models_;
  std::vector<nn::Adam> optimizers_;
};

}  // namespace glova::rl
