// Pinned-seed regression table (ROADMAP ask): fixed-seed GlovaOptimizer runs
// must request exactly the recorded number of simulations, with the recorded
// cache behavior, and the SPICE StrongARM testbench must reproduce the
// recorded circuit metrics.  This is the guard rail for every evaluation-
// stack change: a refactor that alters optimizer control flow, cache keys,
// or solver results shows up here before it ships.
//
// Re-recording (only when an intentional behavior change is made): build,
// then run this binary with --gtest_also_run_disabled_tests removed and
// copy the values printed by a failing expectation — or rerun the
// bench-point probe documented in README.md — into the tables below.
#include <gtest/gtest.h>

#include <cstdint>
#include <iterator>
#include <vector>

#include "circuits/registry.hpp"
#include "circuits/spice_backend.hpp"
#include "common/log.hpp"
#include "core/optimizer.hpp"
#include "spice/warm_start.hpp"

namespace glova {
namespace {

struct PinnedRun {
  circuits::Testcase testcase;
  core::VerifMethod method;
  std::uint64_t seed;
  std::size_t max_iterations;
  // Recorded reference values (git main, seed toolchain).
  std::uint64_t n_simulations;
  std::uint64_t n_executed;
  std::uint64_t n_cache_hits;
  std::size_t rl_iterations;
  const char* termination;
};

// The paper's "# Simulation" column semantics: requested = executed + hits.
constexpr PinnedRun kPinnedRuns[] = {
    {circuits::Testcase::Sal, core::VerifMethod::C, 1, 200, 100, 99, 1, 15, "verified"},
    {circuits::Testcase::Sal, core::VerifMethod::C_MCGL, 7, 60, 6199, 6199, 0, 39, "verified"},
    // OCSA and FIA rows re-recorded when the behavioral gm estimates moved
    // from the 2*I/max(Vov, 1e-4) strong-inversion identity to the analytic
    // pdk::ekv_gm derivative (the optimizer sees different metric surfaces,
    // so its fixed-seed trajectory legitimately changes).
    {circuits::Testcase::DramOcsa, core::VerifMethod::C_MCL, 3, 60, 3151, 3151, 0, 2, "verified"},
    {circuits::Testcase::Fia, core::VerifMethod::C, 5, 120, 96, 95, 1, 4, "verified"},
};

TEST(PinnedSeedRegression, SimulationCountsMatchReferenceTable) {
  set_log_level(LogLevel::Warn);
  for (const PinnedRun& run : kPinnedRuns) {
    core::GlovaConfig cfg;
    cfg.method = run.method;
    cfg.seed = run.seed;
    cfg.max_iterations = run.max_iterations;
    core::GlovaOptimizer opt(circuits::make_testbench(run.testcase), cfg);
    const core::GlovaResult res = opt.run();
    const std::string label = std::string(circuits::to_string(run.testcase)) + "/" +
                              core::to_string(run.method) + "/seed" +
                              std::to_string(run.seed);
    EXPECT_EQ(res.n_simulations, run.n_simulations) << label;
    EXPECT_EQ(res.n_simulations_executed, run.n_executed) << label;
    EXPECT_EQ(res.n_cache_hits, run.n_cache_hits) << label;
    EXPECT_EQ(res.rl_iterations, run.rl_iterations) << label;
    EXPECT_EQ(res.termination, run.termination) << label;
  }
}

// SPICE metrics at fixed sizing points, one row per testcase netlist.  The
// SAL row was recorded on git main before the stamp-plan/warm-start
// rewrite; the FIA and OCSA+SH rows were recorded when their netlists
// landed (ISSUE 5).  The compiled-plan assembler, the fused LU kernel, the
// pinned-source absorption, and the netlist construction itself must
// reproduce them to within Newton's voltage tolerance (measured deviation:
// ~2e-13 relative).  Warm start is disabled so the check is independent of
// cache state.
//
// Re-recording (only for an intentional solver/netlist change): run this
// binary, copy the "actual" values from the failing EXPECT_NEAR output —
// or print them at max_digits10 with a one-off probe against
// circuits::make_testbench(tc, Backend::Spice) — into kSpiceBaselines, and
// note the change in bench/BENCH_spice.json's context.note.
struct SpiceBaseline {
  circuits::Testcase testcase;
  std::vector<double> x01;
  std::vector<double> metrics;
};

const SpiceBaseline kSpiceBaselines[] = {
    {circuits::Testcase::Sal,
     {0.2, 0.3, 0.2, 0.2, 0.2, 0.1, 0.2, 0.0, 0.0, 0.0, 0.0, 0.0, 0.05, 0.01},
     {
         // Re-recorded when SalConditions::input_cm_frac returned to the
         // paper's mid-rail testbench (the 0.7*vdd bias was a Level-1
         // cutoff crutch; see SalConditions).
         1.07752996735812805e-05,  // power [W]
         5.11384451347077711e-10,  // set delay [s]
         1.11129848615213381e-10,  // reset delay [s]
         9.12987598746986783e-05,  // input noise [V]
     }},
    {circuits::Testcase::Fia,
     {0.05, 0.25, 0.5, 0.3, 0.003, 0.001},
     {
         4.80820605355794003e-14,  // energy per conversion [J]
         // Noise re-recorded with the behavioral gm estimate moved to the
         // analytic pdk::ekv_gm derivative (thermal + latch-referral terms
         // shift slightly at this bias).
         8.04802882424353610e-04,  // input-referred noise [V]
     }},
    {circuits::Testcase::DramOcsa,
     {1.0, 1.0, 1.0, 0.0, 0.0, 0.3, 1.0, 1.0, 1.0, 0.0, 1.0, 1.0},
     {
         1.13709493220082503e-01,  // dVD0 [V]
         1.42651524570952482e-01,  // dVD1 [V]
         1.02392190707012904e-14,  // energy per bit [J]
     }},
};

TEST(PinnedSeedRegression, SpiceMetricsMatchRecordedBaselines) {
  // Evaluate everything first and restore the global warm-start switch
  // before any assertion can return early, so a failing row cannot leave
  // warm start disabled for the rest of the binary.
  const bool was_enabled = spice::dc_warm_start_enabled();
  spice::set_dc_warm_start_enabled(false);
  std::vector<std::vector<double>> measured;
  for (const SpiceBaseline& row : kSpiceBaselines) {
    const auto tb = circuits::make_testbench(row.testcase, circuits::Backend::Spice);
    const auto x = tb->sizing().denormalize(row.x01);
    measured.push_back(tb->evaluate(x, pdk::typical_corner(), {}));
  }
  spice::set_dc_warm_start_enabled(was_enabled);

  for (std::size_t ri = 0; ri < std::size(kSpiceBaselines); ++ri) {
    const SpiceBaseline& row = kSpiceBaselines[ri];
    const auto& m = measured[ri];
    ASSERT_EQ(m.size(), row.metrics.size()) << circuits::to_string(row.testcase);
    for (std::size_t i = 0; i < m.size(); ++i) {
      EXPECT_NEAR(m[i], row.metrics[i], std::abs(row.metrics[i]) * 1e-6)
          << circuits::to_string(row.testcase) << " metric " << i;
    }
  }
}

}  // namespace
}  // namespace glova
