#include "circuits/spice_backend.hpp"

#include <cmath>
#include <stdexcept>

#include "circuits/parasitics.hpp"
#include "common/units.hpp"
#include "spice/ac.hpp"
#include "spice/batch.hpp"
#include "spice/measure.hpp"
#include "spice/warm_start.hpp"

namespace glova::circuits {

EvaluationFailure evaluation_failure_from(const spice::FailureReport& report) {
  EvaluationFailure f;
  f.failed = true;
  f.stage = spice::to_string(report.stage);
  f.message = report.to_string();
  f.recovery_attempts = report.attempts;
  return f;
}

namespace {
// Testbench timing: clock rises at kClkRise (evaluation), falls at kClkFall
// (precharge/reset); the run ends at kTStop.
constexpr double kClkRise = 0.2e-9;
constexpr double kClkFall = 3.2e-9;
constexpr double kTStop = 6.0e-9;
constexpr double kDt = 2.0e-12;
constexpr double kEdge = 20e-12;
// Warm-start cache tag for the SAL topology (keys must not collide across
// testbenches whose design vectors happen to share a shape).
constexpr std::uint64_t kSalWarmStartTag = 0x5a1;
}  // namespace

StrongArmLatchSpice::StrongArmLatchSpice() = default;

spice::Circuit StrongArmLatchSpice::build_netlist(std::span<const double> x,
                                                  const pdk::PvtCorner& corner,
                                                  std::span<const double> h,
                                                  bool amplify_phase_dc) const {
  if (x.size() != SalSizing::kCount) throw std::invalid_argument("SAL spice: bad sizing vector");
  if (!h.empty() && h.size() != 22) throw std::invalid_argument("SAL spice: bad mismatch vector");
  const double vdd = corner.vdd;
  const auto dvth = [&](std::size_t d) { return h.empty() ? 0.0 : h[2 * d]; };
  const auto dbeta = [&](std::size_t d) { return h.empty() ? 0.0 : h[2 * d + 1]; };

  spice::Circuit ckt;
  const auto vdd_n = ckt.node("vdd");
  const auto clk = ckt.node("clk");
  const auto inp = ckt.node("inp");
  const auto inn = ckt.node("inn");
  const auto tail = ckt.node("tail");
  const auto di_a = ckt.node("di_a");
  const auto di_b = ckt.node("di_b");
  const auto out_a = ckt.node("out_a");
  const auto out_b = ckt.node("out_b");
  const auto gnd = spice::Circuit::ground();

  ckt.add_vsource("VDD", vdd_n, gnd, spice::Waveform::dc(vdd));
  const double vin = behavioral_.conditions().v_input_diff;
  const double vcm = behavioral_.conditions().input_cm_frac * vdd;
  if (amplify_phase_dc) {
    // Noise testbench: hold the clock DC-high and drive both inputs at the
    // common mode, so the DC solve lands on the symmetric (metastable)
    // amplify-phase operating point rather than a latched rail state.
    ckt.add_vsource("VCLK", clk, gnd, spice::Waveform::dc(vdd));
    ckt.add_vsource("VINP", inp, gnd, spice::Waveform::dc(vcm));
    ckt.add_vsource("VINN", inn, gnd, spice::Waveform::dc(vcm));
  } else {
    ckt.add_vsource("VCLK", clk, gnd,
                    spice::Waveform::pulse(0.0, vdd, kClkRise, kEdge, kEdge, kClkFall - kClkRise,
                                           0.0));
    ckt.add_vsource("VINP", inp, gnd, spice::Waveform::dc(vcm + 0.5 * vin));
    ckt.add_vsource("VINN", inn, gnd, spice::Waveform::dc(vcm - 0.5 * vin));
  }

  // Device instance order matches StrongArmLatch::devices():
  //   0 tail, 1-2 input pair, 3-4 cross NMOS, 5-6 cross PMOS,
  //   7-8 precharge PMOS, 9-10 SR latch (modeled as load here).
  const auto mos = [&](std::size_t d, bool pmos, std::size_t li) {
    return pdk::mos_params(pmos, corner, x[li], dvth(d), dbeta(d));
  };
  ckt.add_mosfet("Mtail", tail, clk, gnd, mos(0, false, SalSizing::kLTail),
                 x[SalSizing::kWTail], x[SalSizing::kLTail]);
  ckt.add_mosfet("Min_a", di_a, inp, tail, mos(1, false, SalSizing::kLIn),
                 x[SalSizing::kWIn], x[SalSizing::kLIn]);
  ckt.add_mosfet("Min_b", di_b, inn, tail, mos(2, false, SalSizing::kLIn),
                 x[SalSizing::kWIn], x[SalSizing::kLIn]);
  ckt.add_mosfet("Mxn_a", out_a, out_b, di_a, mos(3, false, SalSizing::kLXn),
                 x[SalSizing::kWXn], x[SalSizing::kLXn]);
  ckt.add_mosfet("Mxn_b", out_b, out_a, di_b, mos(4, false, SalSizing::kLXn),
                 x[SalSizing::kWXn], x[SalSizing::kLXn]);
  ckt.add_mosfet("Mxp_a", out_a, out_b, vdd_n, mos(5, true, SalSizing::kLXp),
                 x[SalSizing::kWXp], x[SalSizing::kLXp]);
  ckt.add_mosfet("Mxp_b", out_b, out_a, vdd_n, mos(6, true, SalSizing::kLXp),
                 x[SalSizing::kWXp], x[SalSizing::kLXp]);
  ckt.add_mosfet("Mpre_a", out_a, clk, vdd_n, mos(7, true, SalSizing::kLPre),
                 x[SalSizing::kWPre], x[SalSizing::kLPre]);
  ckt.add_mosfet("Mpre_b", out_b, clk, vdd_n, mos(8, true, SalSizing::kLPre),
                 x[SalSizing::kWPre], x[SalSizing::kLPre]);

  // Output loads: the sized caps plus the SR-latch input gate capacitance.
  const Parasitics& par = parasitics_28nm();
  const double c_sr_gate =
      0.5 * x[SalSizing::kCSr] + 2.0 * par.cox * x[SalSizing::kWSr] * x[SalSizing::kLSr];
  ckt.add_capacitor("Cout_a", out_a, gnd, x[SalSizing::kCOut] + c_sr_gate);
  ckt.add_capacitor("Cout_b", out_b, gnd, x[SalSizing::kCOut] + c_sr_gate);
  ckt.add_capacitor("Cdi_a", di_a, gnd, 2e-15 + par.c_junction * x[SalSizing::kWIn]);
  ckt.add_capacitor("Cdi_b", di_b, gnd, 2e-15 + par.c_junction * x[SalSizing::kWIn]);
  ckt.add_capacitor("Ctail", tail, gnd, 2e-15 + par.c_junction * x[SalSizing::kWTail]);
  return ckt;
}

std::vector<double> StrongArmLatchSpice::evaluate(std::span<const double> x,
                                                  const pdk::PvtCorner& corner,
                                                  std::span<const double> h) const {
  const spice::Circuit ckt = build_netlist(x, corner, h);
  // Each pool worker keeps one workspace (the Simulator default): the Newton
  // loop's matrix, RHS, and factorization buffers survive across the
  // thousands of evaluate() calls an optimization run makes on that thread.
  spice::Simulator sim(ckt, spice::default_simulator_options());
  spice::TransientSpec spec;
  spec.t_stop = kTStop;
  spec.dt = kDt;
  spec.record = {"out_a", "out_b"};
  // DC warm start: mismatch draws of one (design, corner) share the first
  // draw's converged operating point as the Newton seed.  The seed only
  // shortens the Newton trajectory (with a cold fallback on failure), so
  // metrics agree with cold evaluation to within the solver's vtol.
  const bool warm = spice::dc_warm_start_enabled();
  const spice::OpResult* seed = nullptr;
  spice::DcWarmStartCache::Key key;
  if (warm) {
    key = spice::make_dc_key(kSalWarmStartTag, x, corner);
    seed = spice::thread_local_dc_cache().lookup(key);
  }
  const spice::TransientResult res = sim.transient(spec, seed);
  // Store on a cache miss, and also refresh whenever a cached seed went
  // unused (the warm attempt failed and the cold fallback converged) so a
  // stale entry cannot keep charging the failed-warm-attempt tax to every
  // later draw of this design.
  if (warm && res.ok && (seed == nullptr || !res.dc_op.warm_started)) {
    spice::thread_local_dc_cache().store(key, res.dc_op);
  }
  if (!res.ok) {
    // A non-convergent design is a broken design: the penalty metrics fail
    // every constraint so the optimizer steers away, and the structured
    // report lets the engine retry or degrade instead of accepting them.
    throw EvaluationError(evaluation_failure_from(res.failure), {1.0, 1.0, 1.0, 1.0});
  }
  return metrics_from_transient(res, x, corner, h);
}

std::vector<std::vector<double>> StrongArmLatchSpice::evaluate_draws(
    std::span<const double> x, const pdk::PvtCorner& corner,
    std::span<const std::vector<double>> hs, std::vector<EvaluationFailure>& failures) const {
  std::vector<spice::Circuit> lanes;
  lanes.reserve(hs.size());
  for (const std::vector<double>& h : hs) lanes.push_back(build_netlist(x, corner, h));

  spice::TransientSpec spec;
  spec.t_stop = kTStop;
  spec.dt = kDt;
  spec.record = {"out_a", "out_b"};

  // One warm-start lookup for the whole group; BatchSimulator rolls the
  // seed forward across lanes exactly as the per-draw cache would, and
  // sync_warm_start_cache replays the per-draw store/hit bookkeeping.
  const bool warm = spice::dc_warm_start_enabled();
  const spice::OpResult* seed = nullptr;
  spice::DcWarmStartCache::Key key;
  if (warm) {
    key = spice::make_dc_key(kSalWarmStartTag, x, corner);
    seed = spice::thread_local_dc_cache().lookup(key);
  }
  spice::BatchSimulator batch(lanes, spice::default_simulator_options());
  const std::vector<spice::TransientResult> results = batch.transient(spec, seed);
  if (warm) spice::sync_warm_start_cache(key, seed, results);

  std::vector<std::vector<double>> out;
  out.reserve(results.size());
  failures.assign(results.size(), {});
  for (std::size_t l = 0; l < results.size(); ++l) {
    if (results[l].ok) {
      out.push_back(metrics_from_transient(results[l], x, corner, hs[l]));
    } else {
      failures[l] = evaluation_failure_from(results[l].failure);
      out.push_back({1.0, 1.0, 1.0, 1.0});
    }
  }
  return out;
}

std::vector<double> StrongArmLatchSpice::metrics_from_transient(
    const spice::TransientResult& res, std::span<const double> x, const pdk::PvtCorner& corner,
    std::span<const double> h) const {
  const double vdd = corner.vdd;
  const auto& t = res.times;
  const auto& va = res.trace("out_a");
  const auto& vb = res.trace("out_b");

  // Set delay: clock edge to the losing output crossing vdd/2 (the input
  // pair sees +vin on inp, so out_b falls).
  std::vector<double> diff(va.size());
  for (std::size_t i = 0; i < va.size(); ++i) diff[i] = std::abs(va[i] - vb[i]);
  const auto t_dec = spice::first_crossing(t, diff, 0.5 * vdd, spice::CrossDirection::Rising,
                                           kClkRise);
  // SR-latch stage delay retains the behavioral estimate (the SR stage is
  // modeled as capacitive load here).
  const double i_sr = std::max(
      1e-9, pdk::square_law_id(pdk::mos_params(false, corner, x[SalSizing::kLSr],
                                               h.empty() ? 0.0 : h[2 * 9],
                                               h.empty() ? 0.0 : h[2 * 9 + 1]),
                               x[SalSizing::kWSr] / x[SalSizing::kLSr], vdd, 0.5 * vdd));
  const double t_sr = (0.5 * x[SalSizing::kCSr]) * vdd / i_sr;
  // No crossing inside the evaluate window: extrapolate the decision time
  // from the exponential regeneration rate at the end of the window instead
  // of returning a flat sentinel.  The latch separation grows as
  // exp(t / tau); projecting the final separation forward at the measured
  // rate keeps set_delay continuous across the window boundary and gives
  // the optimizer a gradient toward deciding designs — a flat sentinel made
  // every under-driven sizing look equally bad, which is what the old
  // raised input-CM crutch papered over at cold low-voltage corners.
  double t_undecided = kTStop;
  if (!t_dec) {
    const double t1 = kClkFall;
    const double t0 = kClkRise + 0.5 * (kClkFall - kClkRise);
    const double d1 = spice::value_at(t, diff, t1);
    const double d0 = spice::value_at(t, diff, t0);
    if (d1 > d0 && d0 > 0.0) {
      const double rate = std::log(d1 / d0) / (t1 - t0);  // 1/tau
      t_undecided = (t1 - kClkRise) + std::log(0.5 * vdd / d1) / rate;
    }
  }
  const double set_delay = (t_dec ? *t_dec - kClkRise : t_undecided) + t_sr;

  // Reset delay: falling clock edge until *both* outputs are back near vdd.
  // The winning output never crossed down, so measure on min(va, vb).
  std::vector<double> vmin(va.size());
  for (std::size_t i = 0; i < va.size(); ++i) vmin[i] = std::min(va[i], vb[i]);
  const double reset_threshold = 0.9 * vdd;
  double reset_delay = kTStop;
  if (spice::value_at(t, vmin, kClkFall + kEdge) >= reset_threshold) {
    reset_delay = kEdge;  // nothing to recover
  } else if (const auto t_r = spice::first_crossing(t, vmin, reset_threshold,
                                                    spice::CrossDirection::Rising, kClkFall)) {
    reset_delay = *t_r - kClkFall;
  }

  // Power: supply energy over the full evaluate+reset cycle times the clock.
  const double e_cycle = spice::supply_energy(t, res.trace("I(VDD)"), vdd, 0.0, kTStop);
  const double power = std::max(0.0, e_cycle) * behavioral_.conditions().clock_hz;

  // Noise: analytic kT/C budget from the behavioral model by default; the
  // engine's spice_noise knob swaps in the simulated amplify-phase AC pass
  // (docs/architecture.md#ac-noise), keeping the analytic budget as the
  // fallback when the small-signal solve fails.
  double noise = behavioral_.evaluate(x, corner, h)[3];
  if (spice::noise_analysis_default()) {
    if (const std::optional<double> simulated = simulated_input_noise(x, corner, h)) {
      noise = *simulated;
    }
  }

  return {power, set_delay, reset_delay, noise};
}

std::optional<double> StrongArmLatchSpice::simulated_input_noise(
    std::span<const double> x, const pdk::PvtCorner& corner, std::span<const double> h) const {
  const spice::Circuit ckt = build_netlist(x, corner, h, /*amplify_phase_dc=*/true);
  spice::Simulator sim(ckt, spice::default_simulator_options());
  const spice::OpResult op = sim.operating_point();
  if (!op.converged) return std::nullopt;
  spice::AcNoiseSpec spec;
  spec.input = "VINP";
  spec.output_pos = "out_a";
  spec.output_neg = "out_b";
  // Band: well below the amplify-phase bandwidth up to far past it, so the
  // integrated output noise covers the full equivalent noise bandwidth.
  spec.f_start = 1e6;
  spec.f_stop = 100e9;
  spec.temp_k = corner.temp_k();
  const spice::NoiseResult nr =
      spice::noise_analysis(ckt, op, spec, spice::default_simulator_options());
  if (!nr.ok || nr.gain_ref < 1e-3 || !std::isfinite(nr.input_noise_vrms)) return std::nullopt;
  return nr.input_noise_vrms;
}

}  // namespace glova::circuits
