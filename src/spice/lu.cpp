#include "spice/lu.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace glova::spice {

void DenseMatrix::set_zero() { std::fill(data_.begin(), data_.end(), 0.0); }

void DenseMatrix::resize_zero(std::size_t n) {
  n_ = n;
  stride_ = row_stride(n);
  data_.assign(n * stride_ + 1, 0.0);
}

bool LuSolver::factor(const DenseMatrix& a) {
  lu_ = a;
  return factor_in_place();
}

DenseMatrix& LuSolver::matrix(std::size_t n) {
  if (lu_.size() != n) lu_.resize_zero(n);
  return lu_;
}

bool LuSolver::factor_in_place() {
  const std::size_t n = lu_.size();
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting: pick the largest magnitude entry in this column.
    std::size_t pivot = col;
    double best = std::abs(lu_.at(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double mag = std::abs(lu_.at(r, col));
      if (mag > best) {
        best = mag;
        pivot = r;
      }
    }
    if (best < 1e-300) return false;  // singular
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(lu_.at(col, c), lu_.at(pivot, c));
      std::swap(perm_[col], perm_[pivot]);
    }
    const double inv_pivot = 1.0 / lu_.at(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = lu_.at(r, col) * inv_pivot;
      lu_.at(r, col) = factor;
      if (factor == 0.0) continue;
      for (std::size_t c = col + 1; c < n; ++c) {
        lu_.at(r, c) -= factor * lu_.at(col, c);
      }
    }
  }
  return true;
}

bool LuSolver::factor_solve_in_place(std::span<double> b, std::vector<double>& x) {
  const std::size_t n = lu_.size();
  const std::size_t stride = lu_.stride();
  if (b.size() < n) throw std::invalid_argument("LuSolver::factor_solve_in_place: size mismatch");
  double* a = lu_.data();
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting: pick the largest magnitude entry in this column.
    // Branchless select: the compare data-depends on matrix values, so a
    // conditional here mispredicts; cmov keeps the scan running.
    std::size_t pivot = col;
    double best = std::abs(a[col * stride + col]);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double mag = std::abs(a[r * stride + col]);
      const bool better = mag > best;
      pivot = better ? r : pivot;
      best = better ? mag : best;
    }
    if (best < 1e-300) return false;  // singular
    if (pivot != col) {
      double* rc = a + col * stride;
      double* rp = a + pivot * stride;
      for (std::size_t c = 0; c < stride; ++c) std::swap(rc[c], rp[c]);
      std::swap(perm_[col], perm_[pivot]);
      std::swap(b[col], b[pivot]);
    }
    const double* __restrict prow = a + col * stride;
    const double inv_pivot = 1.0 / prow[col];
    const double b_col = b[col];
    for (std::size_t r = col + 1; r < n; ++r) {
      double* __restrict row = a + r * stride;
      const double factor = row[col] * inv_pivot;
      if (factor == 0.0) continue;
      // Update the ENTIRE padded row, not just columns right of the pivot:
      // the trip count becomes a fixed multiple of the vector width with an
      // aligned start, so the loop vectorizes with no prologue.  Columns
      // c > col receive exactly the updates classic elimination applies
      // (bit-identical); columns c <= col accumulate garbage in what would
      // be the L factors — this fused kernel never reads them again (unlike
      // factor(), it does not leave a solve()-ready factorization behind).
      for (std::size_t c = 0; c < stride; ++c) row[c] -= factor * prow[c];
      b[r] -= factor * b_col;
    }
  }

  // Back substitution (b now holds the forward-eliminated RHS).
  x.resize(n);
  double* xp = x.data();
  for (std::size_t r = n; r-- > 0;) {
    const double* row = a + r * stride;
    double sum = b[r];
    for (std::size_t c = r + 1; c < n; ++c) sum -= row[c] * xp[c];
    xp[r] = sum / row[r];
  }
  return true;
}

std::vector<double> LuSolver::solve(std::span<const double> b) const {
  std::vector<double> x;
  solve_into(b, x);
  return x;
}

void LuSolver::solve_into(std::span<const double> b, std::vector<double>& x) const {
  const std::size_t n = lu_.size();
  if (b.size() != n) throw std::invalid_argument("LuSolver::solve: size mismatch");
  x.resize(n);
  // Forward substitution with permutation.
  for (std::size_t r = 0; r < n; ++r) {
    double sum = b[perm_[r]];
    for (std::size_t c = 0; c < r; ++c) sum -= lu_.at(r, c) * x[c];
    x[r] = sum;
  }
  // Back substitution.
  for (std::size_t r = n; r-- > 0;) {
    double sum = x[r];
    for (std::size_t c = r + 1; c < n; ++c) sum -= lu_.at(r, c) * x[c];
    x[r] = sum / lu_.at(r, r);
  }
}

}  // namespace glova::spice
