// Gaussian-process regression with an RBF kernel — the surrogate inside
// TuRBO [13], which GLOVA (following PVTSizing [9]) uses to generate initial
// design solutions that already satisfy constraints at the typical corner.
//
// Scale: TuRBO fits on at most a few hundred points in <= 14 dimensions, so
// dense Cholesky O(n^3) is the right tool.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace glova::opt {

struct GpHyperparameters {
  double lengthscale = 0.3;  ///< isotropic RBF lengthscale (inputs live in [0,1]^p)
  double signal_variance = 1.0;
  double noise_variance = 1e-6;
};

struct GpPrediction {
  double mean = 0.0;
  double variance = 0.0;
};

/// Dense Cholesky factorization A = L L^T (lower).  Returns false if A is
/// not positive definite to working precision.
[[nodiscard]] bool cholesky_factor(std::vector<double>& a, std::size_t n);

/// Solve L L^T x = b given the factor from cholesky_factor.
[[nodiscard]] std::vector<double> cholesky_solve(const std::vector<double>& l, std::size_t n,
                                                 std::span<const double> b);

class GaussianProcess {
 public:
  /// Fit on observations; `select_lengthscale` additionally does a small
  /// grid search maximizing the log marginal likelihood.
  void fit(std::vector<std::vector<double>> x, std::vector<double> y,
           bool select_lengthscale = true);

  [[nodiscard]] GpPrediction predict(std::span<const double> x) const;

  [[nodiscard]] bool fitted() const { return !x_.empty(); }
  [[nodiscard]] const GpHyperparameters& hyperparameters() const { return hyper_; }
  [[nodiscard]] std::size_t size() const { return x_.size(); }

  /// Log marginal likelihood of the current fit (for tests and tuning).
  [[nodiscard]] double log_marginal_likelihood() const { return lml_; }

 private:
  [[nodiscard]] double kernel(std::span<const double> a, std::span<const double> b) const;
  /// Factor + alpha for a candidate lengthscale; returns LML.
  double build(double lengthscale);

  GpHyperparameters hyper_;
  std::vector<std::vector<double>> x_;
  std::vector<double> y_;            ///< standardized targets
  double y_mean_ = 0.0;
  double y_std_ = 1.0;
  std::vector<double> chol_;         ///< lower Cholesky of K + noise I
  std::vector<double> alpha_;        ///< (K + noise I)^-1 y
  double lml_ = 0.0;
};

}  // namespace glova::opt
