// Minimal leveled logger.  The optimizer and verifier use it for workflow
// traces (Fig. 2 reproduction); benches run with the level raised to Warn so
// table output stays clean.
#pragma once

#include <sstream>
#include <string>

namespace glova {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Emit a message at `level` (thread-safe, newline appended).
void log_message(LogLevel level, const std::string& message);

namespace detail {
inline void format_into(std::ostringstream&) {}
template <typename T, typename... Rest>
void format_into(std::ostringstream& os, const T& value, const Rest&... rest) {
  os << value;
  format_into(os, rest...);
}
}  // namespace detail

/// Variadic convenience: log_info("iteration ", i, " reward ", r);
template <typename... Args>
void log_debug(const Args&... args) {
  if (log_level() > LogLevel::Debug) return;
  std::ostringstream os;
  detail::format_into(os, args...);
  log_message(LogLevel::Debug, os.str());
}

template <typename... Args>
void log_info(const Args&... args) {
  if (log_level() > LogLevel::Info) return;
  std::ostringstream os;
  detail::format_into(os, args...);
  log_message(LogLevel::Info, os.str());
}

template <typename... Args>
void log_warn(const Args&... args) {
  if (log_level() > LogLevel::Warn) return;
  std::ostringstream os;
  detail::format_into(os, args...);
  log_message(LogLevel::Warn, os.str());
}

template <typename... Args>
void log_error(const Args&... args) {
  if (log_level() > LogLevel::Error) return;
  std::ostringstream os;
  detail::format_into(os, args...);
  log_message(LogLevel::Error, os.str());
}

}  // namespace glova
