// Dev probe (not built by CMake): prints the behavioral-vs-SPICE metric
// ratio table over the shared parity grid, for re-recording the tolerance
// bands in tests/test_backend_parity.cpp.  The grid, corners, and mismatch
// draws come from tests/backend_parity_grid.hpp, so the printed ratios
// correspond exactly to the points the test asserts.  Build by hand:
//   g++ -std=c++20 -O2 -Isrc -Itests tools/probe_parity.cpp build/libglova.a \
//       -lpthread -o /tmp/probe
// Run with no arguments for the nominal-mismatch table, with "h" for the
// local-draw table.
#include <cstdio>
#include <cstring>
#include <vector>

#include "backend_parity_grid.hpp"
#include "circuits/registry.hpp"

using namespace glova;

int main(int argc, char** argv) {
  const bool with_h = argc > 1 && std::strcmp(argv[1], "h") == 0;
  for (const auto tc : circuits::all_testcases()) {
    const auto beh = circuits::make_testbench(tc, circuits::Backend::Behavioral);
    const auto spc = circuits::make_testbench(tc, circuits::Backend::Spice);
    const auto& sz = beh->sizing();
    std::printf("=== %s ===\n", circuits::to_string(tc));
    const auto grid = parity_grid::designs_x01(tc);
    const auto corners = parity_grid::corners();
    for (std::size_t gi = 0; gi < grid.size(); ++gi) {
      const auto x = sz.denormalize(grid[gi]);
      const std::vector<double> h =
          with_h ? parity_grid::local_draw(*beh, x, gi) : std::vector<double>{};
      for (std::size_t ci = 0; ci < corners.size(); ++ci) {
        const auto mb = beh->evaluate(x, corners[ci], h);
        const auto ms = spc->evaluate(x, corners[ci], h);
        std::printf("g%zu c%zu :", gi, ci);
        for (std::size_t mi = 0; mi < mb.size(); ++mi) {
          std::printf("  m%zu %.4g/%.4g r=%.3f", mi, ms[mi], mb[mi],
                      mb[mi] != 0 ? ms[mi] / mb[mi] : -1.0);
        }
        std::printf("\n");
      }
    }
  }
  return 0;
}
