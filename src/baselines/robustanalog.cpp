#include "baselines/robustanalog.hpp"

#include <algorithm>
#include <chrono>
#include <limits>

#include "core/reward.hpp"
#include "core/verifier.hpp"
#include "opt/kmeans.hpp"
#include "pdk/variation.hpp"
#include "rl/agent.hpp"

namespace glova::baselines {

using core::kSuccessReward;

RobustAnalogOptimizer::RobustAnalogOptimizer(circuits::TestbenchPtr testbench,
                                             RobustAnalogConfig config)
    : testbench_(std::move(testbench)),
      config_(config),
      op_config_(core::OperationalConfig::for_method(config.method, config.n_opt_samples)) {}

core::GlovaResult RobustAnalogOptimizer::run() {
  const auto t0 = std::chrono::steady_clock::now();
  core::GlovaResult result;
  core::EvaluationEngine service(testbench_, config_.engine);
  const circuits::SizingSpec& sizing = testbench_->sizing();
  const circuits::PerformanceSpec& spec = testbench_->performance();
  const std::size_t p = sizing.dimension();
  const std::size_t k = op_config_.corner_count();
  Rng rng(config_.seed);

  const auto sample_conditions = [&](std::span<const double> x_phys, std::size_t n,
                                     Rng& stream) -> std::vector<std::vector<double>> {
    if (!op_config_.has_mismatch()) return std::vector<std::vector<double>>(n);
    const auto layout = testbench_->mismatch_layout(x_phys, op_config_.global_mismatch);
    return pdk::sample_mismatch_set(layout, n, stream, op_config_.sampling_mode());
  };
  const auto worst_reward_of = [&](const std::vector<std::vector<double>>& metrics) {
    double worst = std::numeric_limits<double>::max();
    for (const auto& m : metrics) worst = std::min(worst, core::reward_from_metrics(spec, m));
    return worst;
  };

  // --- random initial sampling (no TuRBO: the limitation [9] pointed out).
  Rng mc_rng = rng.split(0x3C3C);
  std::vector<double> x_best;
  double best_reward = -std::numeric_limits<double>::max();
  const pdk::PvtCorner typical = pdk::typical_corner();
  for (std::size_t s = 0; s < config_.random_init_samples; ++s) {
    const auto x01 = rng.uniform_vector(p, 0.0, 1.0);
    const auto x = sizing.denormalize(x01);
    const double r = core::reward_from_metrics(spec, service.evaluate_one(x, typical, {}));
    if (r > best_reward) {
      best_reward = r;
      x_best = x01;
    }
  }
  result.turbo_evaluations = service.simulation_count();  // init cost (random here)

  // --- corner signatures of the incumbent -> k-means -> dominant corners.
  rl::LastWorstBuffer last_worst(k);
  std::vector<std::size_t> dominant;
  const auto recluster = [&](std::span<const double> x01) {
    const auto x = sizing.denormalize(x01);
    std::vector<std::vector<double>> signatures(k);
    for (std::size_t j = 0; j < k; ++j) {
      const auto hs = sample_conditions(x, op_config_.n_opt, mc_rng);
      const auto metrics = service.evaluate_batch(x, op_config_.corners[j], hs);
      last_worst.update(j, worst_reward_of(metrics));
      // Signature: mean normalized margins across the sampled conditions.
      std::vector<double> mean_margins(spec.count(), 0.0);
      for (const auto& m : metrics) {
        const auto f = core::margins(spec, m);
        for (std::size_t i = 0; i < f.size(); ++i) mean_margins[i] += f[i] / metrics.size();
      }
      signatures[j] = std::move(mean_margins);
    }
    const std::size_t n_clusters = std::min(config_.clusters, k);
    Rng cluster_rng = rng.split(0xC1); // deterministic given the seed
    const opt::KMeansResult clusters = opt::kmeans(signatures, n_clusters, cluster_rng);
    dominant.assign(n_clusters, 0);
    std::vector<double> worst(n_clusters, std::numeric_limits<double>::max());
    for (std::size_t j = 0; j < k; ++j) {
      const std::size_t c = clusters.assignment[j];
      if (last_worst.reward(j) < worst[c]) {
        worst[c] = last_worst.reward(j);
        dominant[c] = j;
      }
    }
  };
  if (x_best.empty()) x_best = rng.uniform_vector(p, 0.0, 1.0);
  recluster(x_best);

  // --- risk-neutral multi-task agent (shared actor/critic over tasks).
  rl::AgentConfig agent_cfg;
  agent_cfg.critic.ensemble_size = 1;
  agent_cfg.critic.beta1 = 0.0;
  agent_cfg.critic.hidden = config_.hidden;
  agent_cfg.hidden = config_.hidden;
  agent_cfg.batch_size = config_.batch_size;
  rl::RiskSensitiveAgent agent(p, agent_cfg, rng.split(0xA6E7));
  rl::WorstCaseReplayBuffer buffer;
  buffer.add(x_best, best_reward);

  core::VerifierOptions vopts;
  vopts.use_mu_sigma = false;
  vopts.use_reordering = false;
  core::Verifier verifier(service, op_config_, vopts);

  std::vector<double> x_last = x_best;
  result.termination = "iteration-cap";

  for (std::size_t iter = 1; iter <= config_.max_iterations; ++iter) {
    std::vector<double> x_new = agent.propose(x_last);
    const auto x_phys = sizing.denormalize(x_new);

    // Simulate only the dominant corner of each cluster.
    double r_worst = std::numeric_limits<double>::max();
    for (const std::size_t j : dominant) {
      const auto hs = sample_conditions(x_phys, op_config_.n_opt, mc_rng);
      const auto metrics = service.evaluate_batch(x_phys, op_config_.corners[j], hs);
      const double w = worst_reward_of(metrics);
      last_worst.update(j, w);
      r_worst = std::min(r_worst, w);
    }

    if (r_worst == kSuccessReward) {
      const core::VerificationOutcome outcome = verifier.verify(x_phys, last_worst, mc_rng);
      for (const auto& [j, w] : outcome.corner_worst_rewards) {
        last_worst.update(j, w);
        r_worst = std::min(r_worst, w);
      }
      if (outcome.passed) {
        result.success = true;
        result.rl_iterations = iter;
        result.x01_final = x_new;
        result.x_phys_final = x_phys;
        result.termination = "verified";
        break;
      }
    }

    buffer.add(x_new, r_worst);
    (void)agent.update(buffer);  // standard DDPG: one update per environment step
    // RobustAnalog follows the plain DDPG chain: no re-anchoring onto the
    // best-known design (one of the stability gaps the later works close).
    x_last = std::move(x_new);
    if (iter % config_.recluster_interval == 0) {
      recluster(buffer.best() ? buffer.best()->x01 : x_last);
    }
    result.rl_iterations = iter;
  }

  const core::EngineStats eval_stats = service.stats();
  result.n_simulations = eval_stats.requested;
  result.n_simulations_executed = eval_stats.executed;
  result.n_cache_hits = eval_stats.cache_hits;
  result.wall_seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  result.modeled_runtime =
      static_cast<double>(result.n_simulations) * config_.cost.per_simulation +
      static_cast<double>(result.rl_iterations) * config_.cost.per_rl_iteration;
  return result;
}

}  // namespace glova::baselines
