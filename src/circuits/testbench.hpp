// The testbench abstraction: everything the optimizer sees of a circuit.
//
// A Testbench maps a sizing vector x (physical units) plus a PVT corner t and
// a mismatch condition h to a vector of performance metrics F_i(x | t, h)
// (paper Sec. III-A).  Two implementations exist per circuit: a closed-form
// behavioral model (fast; used by benches) and a SPICE-netlist model (used by
// tests/examples).  Both share sizing/performance specs and mismatch layout,
// so the optimization problem is identical.
#pragma once

#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "pdk/corner.hpp"
#include "pdk/variation.hpp"

namespace glova::circuits {

/// Design-space description: per-parameter physical bounds (paper Sec. VI-A
/// gives [0.28, 32.8] um widths, [0.03, 0.33] um lengths, [0.005, 5.5] pF).
struct SizingSpec {
  std::vector<std::string> names;
  std::vector<double> lower;  ///< [SI units]
  std::vector<double> upper;  ///< [SI units]

  [[nodiscard]] std::size_t dimension() const { return names.size(); }

  /// Map a normalized point in [0,1]^p to physical units (linear).
  [[nodiscard]] std::vector<double> denormalize(std::span<const double> x01) const;

  /// Map a physical point to [0,1]^p.
  [[nodiscard]] std::vector<double> normalize(std::span<const double> physical) const;

  /// Clamp a normalized point into [0,1]^p.
  static void clamp01(std::span<double> x01);

  /// log10 of the design-space cardinality assuming ~100 steps/axis — the
  /// "10^28 design space" style figure quoted in the paper.
  [[nodiscard]] double log10_space_size(double steps_per_axis = 100.0) const;
};

/// Whether a metric must stay below or above its bound.
enum class Sense { MinimizeBelow, MaximizeAbove };

struct MetricSpec {
  std::string name;
  std::string unit;        ///< for printing ("uW", "ns", ...)
  double unit_scale = 1.0; ///< SI value * 1/unit_scale = value in `unit`
  double bound = 0.0;      ///< constraint c_i in SI units
  Sense sense = Sense::MinimizeBelow;
};

struct PerformanceSpec {
  std::vector<MetricSpec> metrics;
  [[nodiscard]] std::size_t count() const { return metrics.size(); }
};

/// Normalized constraint margin f_i of Eq. (5):
///   MinimizeBelow: f = (c - F) / (c + F)
///   MaximizeAbove: f = (F - c) / (F + c)
/// Positive iff the constraint is met; magnitudes are comparable across
/// metrics.  Raw metric values are positive magnitudes, which keeps the
/// denominator positive (guarded anyway).
[[nodiscard]] double normalized_margin(const MetricSpec& spec, double value);

/// Degradation score g_i = -f_i (bigger = worse); the mu-sigma evaluation
/// (Eq. 7) and the t-/h-SCOREs operate in this space.
[[nodiscard]] double degradation(const MetricSpec& spec, double value);

/// Structured record of one failed evaluation, mirrored from the simulator's
/// failure taxonomy without depending on it (behavioral backends never fail,
/// so a default-constructed instance means "evaluated fine").
struct EvaluationFailure {
  bool failed = false;
  std::string stage;        ///< e.g. "dc-operating-point", "deadline"
  std::string message;      ///< the canonical one-line error
  int recovery_attempts = 0;///< recovery rungs the simulator tried
};

/// Thrown by SPICE-backed Testbench::evaluate when the simulation did not
/// converge.  Carries the penalty metrics the backend historically returned
/// inline (every constraint failed, so the optimizer steers away); callers
/// that do not retry or degrade fall back to exactly those values, keeping
/// legacy behavior bit-identical.
class EvaluationError : public std::runtime_error {
 public:
  EvaluationError(EvaluationFailure failure, std::vector<double> penalty_metrics)
      : std::runtime_error(failure.message),
        failure_(std::move(failure)),
        penalty_metrics_(std::move(penalty_metrics)) {}

  [[nodiscard]] const EvaluationFailure& failure() const { return failure_; }
  [[nodiscard]] const std::vector<double>& penalty_metrics() const { return penalty_metrics_; }

 private:
  EvaluationFailure failure_;
  std::vector<double> penalty_metrics_;
};

class Testbench {
 public:
  virtual ~Testbench() = default;

  [[nodiscard]] virtual const std::string& name() const = 0;
  [[nodiscard]] virtual const SizingSpec& sizing() const = 0;
  [[nodiscard]] virtual const PerformanceSpec& performance() const = 0;

  /// Mismatch space H for the design x (Sigma_Local depends on x through the
  /// Pelgrom law).  `global_enabled` selects the Table I row (C-MC_G-L).
  [[nodiscard]] virtual pdk::MismatchLayout mismatch_layout(std::span<const double> x,
                                                            bool global_enabled) const = 0;

  /// Evaluate all metrics for physical sizing x under corner t and mismatch
  /// condition h.  h may be empty (nominal device parameters).  Must be
  /// thread-safe: simulations run in parallel.
  [[nodiscard]] virtual std::vector<double> evaluate(std::span<const double> x,
                                                     const pdk::PvtCorner& corner,
                                                     std::span<const double> h) const = 0;

  /// Evaluate a group of mismatch draws of one (x, corner), one metric vector
  /// per draw, in input order.  The base implementation loops evaluate();
  /// backends that override supports_batched_draws() march the draws through
  /// one lockstep batched simulation instead (spice::BatchSimulator), which
  /// amortizes netlist-independent work and keeps the Newton state of every
  /// draw hot in cache.  Semantics are identical to the loop: with adaptive
  /// stepping and Newton bypass off the metrics are bit-identical.
  [[nodiscard]] std::vector<std::vector<double>> evaluate_draws(
      std::span<const double> x, const pdk::PvtCorner& corner,
      std::span<const std::vector<double>> hs) const;

  /// As above, additionally reporting per-draw failures: failures[i].failed
  /// is set (and the draw's metrics are the backend's penalty sentinel) when
  /// draw i did not converge.  The base implementation loops evaluate(),
  /// translating EvaluationError into the per-draw record; batched backends
  /// override this overload and annotate lanes from their simulator reports.
  [[nodiscard]] virtual std::vector<std::vector<double>> evaluate_draws(
      std::span<const double> x, const pdk::PvtCorner& corner,
      std::span<const std::vector<double>> hs,
      std::vector<EvaluationFailure>& failures) const;

  /// True when evaluate_draws() is a genuine batched implementation rather
  /// than the sequential fallback loop (the evaluation engine only routes
  /// draw groups here when this holds).
  [[nodiscard]] virtual bool supports_batched_draws() const { return false; }

  /// Cheaper stand-in for graceful degradation: when an evaluation keeps
  /// failing after every retry, the engine (with degrade_to_behavioral set)
  /// quarantines the draw to this testbench instead of accepting the penalty
  /// sentinel.  nullptr (the default) means no fallback exists.  SPICE
  /// backends return their behavioral sibling, which shares specs and
  /// mismatch layout by construction.
  [[nodiscard]] virtual const Testbench* degraded_fallback() const { return nullptr; }
};

using TestbenchPtr = std::shared_ptr<const Testbench>;

}  // namespace glova::circuits
