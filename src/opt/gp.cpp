#include "opt/gp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

#include "stats/descriptive.hpp"

namespace glova::opt {

bool cholesky_factor(std::vector<double>& a, std::size_t n) {
  if (a.size() != n * n) throw std::invalid_argument("cholesky_factor: bad size");
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a[j * n + j];
    for (std::size_t k = 0; k < j; ++k) diag -= a[j * n + k] * a[j * n + k];
    if (diag <= 0.0) return false;
    const double l_jj = std::sqrt(diag);
    a[j * n + j] = l_jj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double sum = a[i * n + j];
      for (std::size_t k = 0; k < j; ++k) sum -= a[i * n + k] * a[j * n + k];
      a[i * n + j] = sum / l_jj;
    }
    for (std::size_t k = j + 1; k < n; ++k) a[j * n + k] = 0.0;  // zero upper triangle
  }
  return true;
}

std::vector<double> cholesky_solve(const std::vector<double>& l, std::size_t n,
                                   std::span<const double> b) {
  if (b.size() != n) throw std::invalid_argument("cholesky_solve: bad rhs");
  std::vector<double> x(b.begin(), b.end());
  // Forward: L z = b.
  for (std::size_t i = 0; i < n; ++i) {
    double sum = x[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l[i * n + k] * x[k];
    x[i] = sum / l[i * n + i];
  }
  // Backward: L^T x = z.
  for (std::size_t i = n; i-- > 0;) {
    double sum = x[i];
    for (std::size_t k = i + 1; k < n; ++k) sum -= l[k * n + i] * x[k];
    x[i] = sum / l[i * n + i];
  }
  return x;
}

double GaussianProcess::kernel(std::span<const double> a, std::span<const double> b) const {
  double d2 = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    d2 += d * d;
  }
  const double ls2 = hyper_.lengthscale * hyper_.lengthscale;
  return hyper_.signal_variance * std::exp(-0.5 * d2 / ls2);
}

double GaussianProcess::build(double lengthscale) {
  hyper_.lengthscale = lengthscale;
  const std::size_t n = x_.size();
  chol_.assign(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double k = kernel(x_[i], x_[j]);
      chol_[i * n + j] = k;
      chol_[j * n + i] = k;
    }
    chol_[i * n + i] += hyper_.noise_variance;
  }
  if (!cholesky_factor(chol_, n)) return -std::numeric_limits<double>::infinity();
  alpha_ = cholesky_solve(chol_, n, y_);
  // LML = -0.5 y^T alpha - sum log L_ii - n/2 log 2pi
  double lml = 0.0;
  for (std::size_t i = 0; i < n; ++i) lml -= 0.5 * y_[i] * alpha_[i];
  for (std::size_t i = 0; i < n; ++i) lml -= std::log(chol_[i * n + i]);
  lml -= 0.5 * static_cast<double>(n) * std::log(2.0 * std::numbers::pi);
  return lml;
}

void GaussianProcess::fit(std::vector<std::vector<double>> x, std::vector<double> y,
                          bool select_lengthscale) {
  if (x.size() != y.size() || x.empty()) throw std::invalid_argument("GP::fit: bad data");
  x_ = std::move(x);
  // Standardize targets for a unit-signal-variance prior.
  y_mean_ = stats::mean(y);
  y_std_ = std::max(1e-9, stats::stddev_population(y));
  y_.resize(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) y_[i] = (y[i] - y_mean_) / y_std_;
  hyper_.noise_variance = std::max(hyper_.noise_variance, 1e-6);

  if (select_lengthscale) {
    static constexpr double kGrid[] = {0.1, 0.2, 0.3, 0.5, 0.8, 1.2};
    double best_ls = hyper_.lengthscale;
    double best_lml = -std::numeric_limits<double>::infinity();
    for (const double ls : kGrid) {
      const double lml = build(ls);
      if (lml > best_lml) {
        best_lml = lml;
        best_ls = ls;
      }
    }
    lml_ = build(best_ls);
  } else {
    lml_ = build(hyper_.lengthscale);
  }
}

GpPrediction GaussianProcess::predict(std::span<const double> x) const {
  if (!fitted()) throw std::logic_error("GP::predict before fit");
  const std::size_t n = x_.size();
  std::vector<double> k_star(n);
  for (std::size_t i = 0; i < n; ++i) k_star[i] = kernel(x_[i], x);
  double mean_std = 0.0;
  for (std::size_t i = 0; i < n; ++i) mean_std += k_star[i] * alpha_[i];
  // Predictive variance: k** - v^T v with v = L^-1 k*.
  std::vector<double> v(k_star);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = v[i];
    for (std::size_t k = 0; k < i; ++k) sum -= chol_[i * n + k] * v[k];
    v[i] = sum / chol_[i * n + i];
  }
  double var_std = hyper_.signal_variance;
  for (std::size_t i = 0; i < n; ++i) var_std -= v[i] * v[i];
  var_std = std::max(1e-12, var_std);

  GpPrediction out;
  out.mean = mean_std * y_std_ + y_mean_;
  out.variance = var_std * y_std_ * y_std_;
  return out;
}

}  // namespace glova::opt
