#include "pdk/corner.hpp"

#include <array>
#include <sstream>

#include "common/units.hpp"

namespace glova::pdk {

const char* to_string(ProcessCorner corner) {
  switch (corner) {
    case ProcessCorner::TT: return "TT";
    case ProcessCorner::SS: return "SS";
    case ProcessCorner::FF: return "FF";
    case ProcessCorner::SF: return "SF";
    case ProcessCorner::FS: return "FS";
  }
  return "??";
}

std::string PvtCorner::name() const {
  std::ostringstream os;
  if (process_predefined) {
    os << to_string(process);
  } else {
    os << "MCG";  // process axis sampled by global MC
  }
  os << '/' << vdd << "V/" << temp_c << "C";
  return os.str();
}

double PvtCorner::temp_k() const { return units::celsius_to_kelvin(temp_c); }

CornerFactors corner_factors(ProcessCorner corner) {
  // Shift magnitudes are representative of a 28 nm bulk CMOS PDK: roughly
  // +-8 % die-to-die mobility and +-40 mV threshold shift at the slow/fast
  // 3-sigma corners.  The first letter is the NMOS corner, the second PMOS.
  constexpr double kSlowKp = 0.92;
  constexpr double kFastKp = 1.08;
  constexpr double kSlowVth = 0.040;
  constexpr double kFastVth = -0.040;
  switch (corner) {
    case ProcessCorner::TT: return {1.0, 1.0, 0.0, 0.0};
    case ProcessCorner::SS: return {kSlowKp, kSlowKp, kSlowVth, kSlowVth};
    case ProcessCorner::FF: return {kFastKp, kFastKp, kFastVth, kFastVth};
    case ProcessCorner::SF: return {kSlowKp, kFastKp, kSlowVth, kFastVth};
    case ProcessCorner::FS: return {kFastKp, kSlowKp, kFastVth, kSlowVth};
  }
  return {};
}

std::vector<PvtCorner> full_corner_set() {
  static constexpr std::array<ProcessCorner, 5> kProcess = {
      ProcessCorner::TT, ProcessCorner::SS, ProcessCorner::FF, ProcessCorner::SF,
      ProcessCorner::FS};
  static constexpr std::array<double, 2> kVdd = {0.8, 0.9};
  static constexpr std::array<double, 3> kTemp = {-40.0, 27.0, 80.0};
  std::vector<PvtCorner> corners;
  corners.reserve(kProcess.size() * kVdd.size() * kTemp.size());
  for (const ProcessCorner p : kProcess) {
    for (const double v : kVdd) {
      for (const double t : kTemp) {
        corners.push_back(PvtCorner{p, v, t, true});
      }
    }
  }
  return corners;
}

std::vector<PvtCorner> vt_corner_set() {
  static constexpr std::array<double, 2> kVdd = {0.8, 0.9};
  static constexpr std::array<double, 3> kTemp = {-40.0, 27.0, 80.0};
  std::vector<PvtCorner> corners;
  corners.reserve(kVdd.size() * kTemp.size());
  for (const double v : kVdd) {
    for (const double t : kTemp) {
      corners.push_back(PvtCorner{ProcessCorner::TT, v, t, false});
    }
  }
  return corners;
}

PvtCorner typical_corner() { return PvtCorner{ProcessCorner::TT, 0.9, 27.0, true}; }

}  // namespace glova::pdk
