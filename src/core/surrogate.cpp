#include "core/surrogate.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "common/rng.hpp"
#include "common/state_io.hpp"

namespace glova::core {

namespace {

/// Fixed initialization seed: surrogate-on runs are deterministic, and a
/// save -> load -> save round trip is a byte fixed point.
constexpr std::uint64_t kInitSeed = 0x51093A7EC0FFEEull;

/// Floor on normalization scales so constant coordinates (zero-padded
/// mismatch slots, single-corner campaigns) neither divide by zero nor
/// dominate the extremity ranking through numerical noise.
constexpr double kStdFloor = 1e-8;

}  // namespace

SurrogateModel::SurrogateModel(SurrogateConfig config) : config_(config) {
  if (config_.keep <= 0.0 || config_.keep > 1.0) {
    throw std::invalid_argument("SurrogateModel: keep must be in (0, 1]");
  }
  if (config_.hidden_width == 0) {
    throw std::invalid_argument("SurrogateModel: hidden_width must be >= 1");
  }
}

std::size_t SurrogateModel::input_dim() const { return mlp_ ? mlp_->input_dim() : 0; }
std::size_t SurrogateModel::output_dim() const { return mlp_ ? mlp_->output_dim() : 0; }

void SurrogateModel::build(std::size_t in, std::size_t out) {
  if (in == 0 || out == 0) {
    throw std::invalid_argument("SurrogateModel: input and output must be non-empty");
  }
  Rng rng(kInitSeed);
  mlp_ = std::make_unique<nn::Mlp>(
      std::vector<std::size_t>{in, config_.hidden_width, config_.hidden_width, out},
      nn::Activation::Tanh, nn::Activation::Identity, rng);
  nn::AdamConfig adam;
  adam.learning_rate = config_.learning_rate;
  adam_ = std::make_unique<nn::Adam>(mlp_->parameter_count(), adam);
  in_mean_.assign(in, 0.0);
  in_m2_.assign(in, 0.0);
  out_mean_.assign(out, 0.0);
  out_m2_.assign(out, 0.0);
  grad_.assign(mlp_->parameter_count(), 0.0);
}

double SurrogateModel::in_std(std::size_t j) const {
  const double n = observations_ > 1 ? static_cast<double>(observations_ - 1) : 1.0;
  return std::max(std::sqrt(in_m2_[j] / n), kStdFloor);
}

double SurrogateModel::out_std(std::size_t j) const {
  const double n = observations_ > 1 ? static_cast<double>(observations_ - 1) : 1.0;
  return std::max(std::sqrt(out_m2_[j] / n), kStdFloor);
}

void SurrogateModel::observe(std::span<const double> input, std::span<const double> metrics) {
  if (!mlp_) build(input.size(), metrics.size());
  if (input.size() != mlp_->input_dim() || metrics.size() != mlp_->output_dim()) {
    throw std::invalid_argument("SurrogateModel::observe: dimension mismatch (model is " +
                                std::to_string(mlp_->input_dim()) + "->" +
                                std::to_string(mlp_->output_dim()) + ", sample is " +
                                std::to_string(input.size()) + "->" +
                                std::to_string(metrics.size()) + ")");
  }
  for (const double v : input) {
    if (!std::isfinite(v)) return;
  }
  for (const double m : metrics) {
    if (!std::isfinite(m)) return;
  }
  ++observations_;
  for (std::size_t j = 0; j < input.size(); ++j) {
    const double d = input[j] - in_mean_[j];
    in_mean_[j] += d / static_cast<double>(observations_);
    in_m2_[j] += d * (input[j] - in_mean_[j]);
  }
  for (std::size_t j = 0; j < metrics.size(); ++j) {
    const double d = metrics[j] - out_mean_[j];
    out_mean_[j] += d / static_cast<double>(observations_);
    out_m2_[j] += d * (metrics[j] - out_mean_[j]);
  }
  std::vector<double> zx(input.size());
  for (std::size_t j = 0; j < input.size(); ++j) zx[j] = (input[j] - in_mean_[j]) / in_std(j);
  std::vector<double> zt(metrics.size());
  for (std::size_t j = 0; j < metrics.size(); ++j) {
    zt[j] = (metrics[j] - out_mean_[j]) / out_std(j);
  }
  nn::Mlp::Workspace ws;
  const std::vector<double> y = mlp_->forward(zx, ws);
  std::vector<double> dLdy(y.size());
  for (std::size_t j = 0; j < y.size(); ++j) {
    dLdy[j] = (y[j] - zt[j]) / static_cast<double>(y.size());
  }
  std::fill(grad_.begin(), grad_.end(), 0.0);
  (void)mlp_->backward(ws, dLdy, grad_);
  adam_->step(mlp_->parameters(), grad_);
  ++train_steps_;
}

std::vector<double> SurrogateModel::predict(std::span<const double> input) const {
  if (!mlp_) throw std::logic_error("SurrogateModel::predict: model not built");
  if (input.size() != mlp_->input_dim()) {
    throw std::invalid_argument("SurrogateModel::predict: input dimension mismatch");
  }
  std::vector<double> zx(input.size());
  for (std::size_t j = 0; j < input.size(); ++j) zx[j] = (input[j] - in_mean_[j]) / in_std(j);
  std::vector<double> y = mlp_->forward(zx);
  for (std::size_t j = 0; j < y.size(); ++j) y[j] = y[j] * out_std(j) + out_mean_[j];
  return y;
}

double SurrogateModel::extremity(std::span<const double> prediction) const {
  if (!mlp_ || prediction.size() != mlp_->output_dim()) return 0.0;
  double score = 0.0;
  for (std::size_t j = 0; j < prediction.size(); ++j) {
    score = std::max(score, std::abs(prediction[j] - out_mean_[j]) / out_std(j));
  }
  return score;
}

void SurrogateModel::save(std::ostream& os) const {
  if (!mlp_) throw std::logic_error("SurrogateModel::save: model not built");
  os << "surrogate v1\n";
  os << "dims " << mlp_->input_dim() << ' ' << mlp_->output_dim() << ' ' << config_.hidden_width
     << '\n';
  os << "observations " << observations_ << '\n';
  os << "train-steps " << train_steps_ << '\n';
  state::write_doubles(os, "in-mean", in_mean_);
  state::write_doubles(os, "in-m2", in_m2_);
  state::write_doubles(os, "out-mean", out_mean_);
  state::write_doubles(os, "out-m2", out_m2_);
  mlp_->save(os);
  adam_->save(os);
}

void SurrogateModel::load(std::istream& is) {
  const std::string version = state::expect_line(is, "surrogate");
  if (version != "v1") {
    state::bad("unsupported surrogate-state version '" + version + "' (this build reads v1)");
  }
  std::size_t in = 0;
  std::size_t out = 0;
  std::size_t hidden = 0;
  {
    std::istringstream line(state::expect_line(is, "dims"));
    if (!(line >> in >> out >> hidden) || in == 0 || out == 0 || hidden == 0) {
      state::bad("malformed surrogate dims");
    }
    if (in > state::kMaxCount || out > state::kMaxCount || hidden > state::kMaxCount) {
      state::bad("implausible surrogate dims");
    }
  }
  if (mlp_ && (mlp_->input_dim() != in || mlp_->output_dim() != out)) {
    state::bad("surrogate state is for a " + std::to_string(in) + "->" + std::to_string(out) +
               " model, this one is " + std::to_string(mlp_->input_dim()) + "->" +
               std::to_string(mlp_->output_dim()));
  }
  const std::size_t observations =
      state::parse_u64(state::expect_line(is, "observations"), "surrogate observations");
  const std::uint64_t train_steps =
      state::parse_u64(state::expect_line(is, "train-steps"), "surrogate train steps");
  std::vector<double> in_mean = state::read_doubles(is, "in-mean");
  std::vector<double> in_m2 = state::read_doubles(is, "in-m2");
  std::vector<double> out_mean = state::read_doubles(is, "out-mean");
  std::vector<double> out_m2 = state::read_doubles(is, "out-m2");
  if (in_mean.size() != in || in_m2.size() != in || out_mean.size() != out ||
      out_m2.size() != out) {
    state::bad("surrogate statistics do not match the stated dims");
  }
  // Rebuild with the *stored* width so the parameter counts line up even if
  // the caller's config differs; the policy knobs (keep, warmup) stay ours.
  config_.hidden_width = hidden;
  build(in, out);
  mlp_->load(is);
  adam_->load(is);
  observations_ = observations;
  train_steps_ = train_steps;
  in_mean_ = std::move(in_mean);
  in_m2_ = std::move(in_m2);
  out_mean_ = std::move(out_mean);
  out_m2_ = std::move(out_m2);
}

}  // namespace glova::core
