// Fig. 3 reproduction: design-reliability-bound estimation by the
// ensemble-based critic.
//
// The figure shows, across RL iterations, the sampled performance
// distribution, the sampled worst case, and the critic's risk-adjusted
// output E[Q] + beta1*sigma[Q] tracking (and lower-bounding) it.  We run
// GLOVA on the SAL under C-MC_G-L and emit the per-iteration series as CSV,
// then summarize how often the risk-adjusted bound sat below the sampled
// worst case (the conservatism the risk-avoidance beta1 < 0 buys).
#include <cstdio>

#include "circuits/registry.hpp"
#include "core/optimizer.hpp"

using namespace glova;

int main() {
  core::GlovaConfig cfg;
  cfg.method = core::VerifMethod::C_MCGL;
  cfg.seed = 3;
  const auto tb = circuits::make_testbench(circuits::Testcase::Sal);
  core::GlovaOptimizer optimizer(tb, cfg);
  const core::GlovaResult res = optimizer.run();

  printf("Fig. 3 — ensemble-critic reliability bound (SAL, C-MC_G-L, seed 3)\n");
  printf("iteration,sampled_worst_reward,critic_mean,critic_risk_bound\n");
  std::size_t conservative = 0;
  for (const core::IterationTrace& t : res.trace) {
    printf("%zu,%.5f,%.5f,%.5f\n", t.iteration, t.reward_worst, t.critic_mean, t.critic_bound);
    if (t.critic_bound <= t.reward_worst + 1e-9) ++conservative;
  }
  if (!res.trace.empty()) {
    printf("\nrisk-adjusted bound below sampled worst case in %zu/%zu iterations "
           "(beta1 < 0 keeps the estimate conservative)\n",
           conservative, res.trace.size());
  }
  printf("success=%s after %zu iterations\n", res.success ? "yes" : "no", res.rl_iterations);
  return res.success ? 0 : 1;
}
