// glova-serve tests: the FairScheduler and protocol units, JobStore spool
// round-trips, and the live server over loopback TCP — submit/status/result,
// malformed requests, bounded admission, concurrent clients, WATCH streams,
// and the headline contract: a server killed mid-flight (stop without a
// final checkpoint, exactly the on-disk state a SIGKILL leaves) restarts and
// finishes every in-flight campaign bit-identical to an uninterrupted run.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/log.hpp"
#include "core/campaign.hpp"
#include "serve/job_store.hpp"
#include "serve/protocol.hpp"
#include "serve/scheduler.hpp"
#include "serve/server.hpp"

namespace glova {
namespace {

using serve::FairScheduler;
using serve::JobStore;
using serve::LineIo;

// ------------------------------------------------------------- scheduler --

TEST(FairScheduler, RoundRobinsAcrossTenants) {
  FairScheduler scheduler;
  EXPECT_FALSE(scheduler.admit("alice", "a1"));
  EXPECT_FALSE(scheduler.admit("alice", "a2"));
  EXPECT_FALSE(scheduler.admit("alice", "a3"));
  EXPECT_FALSE(scheduler.admit("bob", "b1"));
  EXPECT_EQ(scheduler.queued(), 4u);
  EXPECT_EQ(scheduler.live(), 4u);

  // alice's backlog cannot starve bob: dispatch alternates while both have
  // queued work.
  EXPECT_EQ(scheduler.next().value_or(""), "a1");
  EXPECT_EQ(scheduler.next().value_or(""), "b1");
  EXPECT_EQ(scheduler.next().value_or(""), "a2");
  EXPECT_EQ(scheduler.next().value_or(""), "a3");
  EXPECT_FALSE(scheduler.next().has_value());
  EXPECT_EQ(scheduler.queued(), 0u);
  EXPECT_EQ(scheduler.live(), 4u);  // dispatched, not yet released
}

TEST(FairScheduler, BoundedAdmissionRejectsWithAReason) {
  FairScheduler scheduler(2);
  EXPECT_FALSE(scheduler.admit("t", "j1"));
  EXPECT_FALSE(scheduler.admit("t", "j2"));
  const auto rejection = scheduler.admit("t", "j3");
  ASSERT_TRUE(rejection.has_value());
  EXPECT_NE(rejection->find("queue full"), std::string::npos);

  // A terminal job frees one admission slot — dispatching alone must not.
  EXPECT_EQ(scheduler.next().value_or(""), "j1");
  EXPECT_TRUE(scheduler.admit("t", "j4").has_value());
  scheduler.release();
  EXPECT_FALSE(scheduler.admit("t", "j4"));
}

TEST(FairScheduler, AdoptBypassesTheBoundButCountsAsLive) {
  // Spool recovery must never orphan work that was admitted before a crash,
  // even when the bound shrank; the adopted jobs still occupy live slots.
  FairScheduler scheduler(1);
  scheduler.adopt("t", "r1");
  scheduler.adopt("t", "r2");
  EXPECT_EQ(scheduler.live(), 2u);
  EXPECT_EQ(scheduler.queued(), 2u);
  EXPECT_TRUE(scheduler.admit("t", "j1").has_value());
  scheduler.release();
  scheduler.release();
  EXPECT_FALSE(scheduler.admit("t", "j1"));
}

TEST(FairScheduler, RequeueAndRemoveManageQueuedJobsOnly) {
  FairScheduler scheduler(4);
  EXPECT_FALSE(scheduler.admit("t", "j1"));
  EXPECT_EQ(scheduler.next().value_or(""), "j1");

  // Requeue after an unfinished quantum: queued again, live count unchanged.
  scheduler.requeue("t", "j1");
  EXPECT_EQ(scheduler.queued(), 1u);
  EXPECT_EQ(scheduler.live(), 1u);

  // Cancellation pulls it out of the queue; unknown ids report false.
  EXPECT_TRUE(scheduler.remove("j1"));
  EXPECT_FALSE(scheduler.remove("j1"));
  EXPECT_EQ(scheduler.queued(), 0u);
  EXPECT_EQ(scheduler.live(), 1u);  // remove() does not release the slot
  scheduler.release();
  EXPECT_EQ(scheduler.live(), 0u);
}

// -------------------------------------------------------------- protocol --

TEST(ServeProtocol, ParseRequestSplitsVerbRestAndArgs) {
  const serve::Request request = serve::parse_request("SUBMIT  alice  testcase=sal seed=3");
  EXPECT_EQ(request.verb, "SUBMIT");
  EXPECT_EQ(request.rest, "alice  testcase=sal seed=3");
  ASSERT_EQ(request.args.size(), 3u);
  EXPECT_EQ(request.args[0], "alice");
  EXPECT_EQ(request.args[2], "seed=3");

  const serve::Request bare = serve::parse_request("LIST");
  EXPECT_EQ(bare.verb, "LIST");
  EXPECT_TRUE(bare.rest.empty());
  EXPECT_TRUE(bare.args.empty());
}

TEST(ServeProtocol, ResponseLinesStayOneLine) {
  EXPECT_EQ(serve::ok_line("job-000001"), "OK job-000001");
  const std::string err = serve::err_line("bad spec:\nline two\r\n");
  EXPECT_EQ(err.rfind("ERR ", 0), 0u);
  EXPECT_EQ(err.find('\n'), std::string::npos);
  EXPECT_EQ(err.find('\r'), std::string::npos);
}

TEST(ServeProtocol, FormatCampaignResultIsByteStableAcrossRuns) {
  set_log_level(LogLevel::Warn);
  core::SweepSpec sweep;
  sweep.base.testcase = circuits::Testcase::Sal;
  sweep.base.method = core::VerifMethod::C;
  sweep.base.max_iterations = 120;
  sweep.base.seed = 1;

  // Two independent runs of the same fixed-seed sweep differ only in wall
  // time; the canonical text zeroes it, so the bytes must match — the exact
  // comparison the kill-and-restart smoke test performs with diff(1).
  core::Campaign first(sweep);
  core::Campaign second(sweep);
  const std::string a = serve::format_campaign_result(first.run());
  const std::string b = serve::format_campaign_result(second.run());
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("campaign-result entries 1"), std::string::npos);
}

// -------------------------------------------------------------- job store --

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(JobStoreTest, RoundTripsJobsResultsAndIdSequence) {
  const std::string spool = fresh_dir("glova_serve_store");
  JobStore store(spool);

  store.save_job({"job-000002", "bob", "testcase=sal seed=2"});
  store.save_job({"job-000010", "alice", "testcase=sal seed=1"});
  const auto jobs = store.load_jobs();
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].id, "job-000002");  // sorted by id = submission order
  EXPECT_EQ(jobs[0].tenant, "bob");
  EXPECT_EQ(jobs[1].id, "job-000010");
  EXPECT_EQ(jobs[1].spec_text, "testcase=sal seed=1");
  EXPECT_EQ(store.max_job_number(), 10u);

  // Results: absent until saved, then state + text round-trip.
  EXPECT_FALSE(store.load_result("job-000002").has_value());
  store.save_result("job-000002", "Done", "campaign-result entries 1\n");
  const auto result = store.load_result("job-000002");
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->state, "Done");
  EXPECT_EQ(result->text, "campaign-result entries 1\n");

  // Checkpoint removal tolerates a checkpoint that never existed.
  store.remove_checkpoint("job-000002");
  std::filesystem::remove_all(spool);
}

// ------------------------------------------------------------ live server --

/// Minimal loopback client for the tests: one connection, line at a time.
class TestClient {
 public:
  explicit TestClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
    io_ = std::make_unique<LineIo>(fd_);
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  /// One request, first response line back.
  std::string request(const std::string& line) {
    EXPECT_TRUE(io_->write_line(line));
    std::string response;
    EXPECT_TRUE(io_->read_line(response)) << "no response to: " << line;
    return response;
  }

  /// Payload lines up to (excluding) END.
  std::vector<std::string> read_payload() {
    std::vector<std::string> lines;
    std::string line;
    while (io_->read_line(line) && line != serve::kEndLine) lines.push_back(line);
    return lines;
  }

 private:
  int fd_ = -1;
  std::unique_ptr<LineIo> io_;
};

/// The sweep the end-to-end tests submit: small enough to finish in seconds,
/// all three algorithms so resume covers every state codec.
core::SweepSpec serve_sweep() {
  core::SweepSpec sweep;
  sweep.base.testcase = circuits::Testcase::Sal;
  sweep.base.method = core::VerifMethod::C;
  sweep.base.max_iterations = 120;
  sweep.base.seed = 1;
  sweep.algorithms = core::all_algorithms();
  return sweep;
}

/// Poll STATUS until the job reports `state` (word match on the response
/// line) or the deadline passes; returns the last status line either way.
std::string wait_for_state(TestClient& client, const std::string& id, const std::string& state,
                           int timeout_sec = 180) {
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(timeout_sec);
  std::string response;
  for (;;) {
    response = client.request("STATUS " + id);
    if (response.find(' ' + state + ' ') != std::string::npos) return response;
    if (std::chrono::steady_clock::now() >= deadline) return response;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

/// Poll STATUS until the job is terminal (Done/Failed/Cancelled) or the
/// deadline passes; returns the last status line.
std::string wait_terminal(TestClient& client, const std::string& id, int timeout_sec = 180) {
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(timeout_sec);
  std::string response;
  for (;;) {
    response = client.request("STATUS " + id);
    for (const char* state : {" Done ", " Failed ", " Cancelled "}) {
      if (response.find(state) != std::string::npos) return response;
    }
    if (std::chrono::steady_clock::now() >= deadline) return response;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

/// Payload of a successful RESULT, rejoined to the canonical text (the
/// server strips trailing newlines for transport; restore exactly one).
std::string result_text(TestClient& client, const std::string& id) {
  const std::string head = client.request("RESULT " + id);
  EXPECT_EQ(head.rfind("OK ", 0), 0u) << head;
  std::string text;
  for (const std::string& line : client.read_payload()) text += line + '\n';
  return text;
}

std::string strip_trailing_newlines(std::string text) {
  while (!text.empty() && text.back() == '\n') text.pop_back();
  return text.empty() ? text : text + '\n';
}

TEST(Server, SubmitRunsToDoneWithTheCanonicalResult) {
  set_log_level(LogLevel::Warn);
  const std::string spool = fresh_dir("glova_serve_e2e");
  serve::ServerConfig config;
  config.spool_dir = spool;
  config.workers = 2;
  serve::Server server(std::move(config));
  server.start();
  ASSERT_NE(server.port(), 0);

  core::SweepSpec sweep = serve_sweep();
  sweep.algorithms = {core::Algorithm::Glova};

  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  const std::string submitted = client.request("SUBMIT alice " + sweep.to_string());
  ASSERT_EQ(submitted.rfind("OK ", 0), 0u) << submitted;
  const std::string id = submitted.substr(3);
  EXPECT_EQ(id, "job-000001");

  const std::string status = wait_for_state(client, id, "Done");
  ASSERT_NE(status.find(" Done "), std::string::npos) << status;
  EXPECT_NE(status.find("tenant=alice"), std::string::npos);

  // The served result is the canonical byte form of the same sweep run
  // directly — the format_campaign_result contract.
  core::Campaign direct(sweep);
  EXPECT_EQ(strip_trailing_newlines(result_text(client, id)),
            strip_trailing_newlines(serve::format_campaign_result(direct.run())));

  // LIST reflects the terminal job.
  const std::string count = client.request("LIST");
  EXPECT_EQ(count, "OK 1");
  const auto rows = client.read_payload();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].rfind("JOB job-000001 alice Done", 0), 0u) << rows[0];

  server.stop(true);
  std::filesystem::remove_all(spool);
}

TEST(Server, MalformedRequestsGetErrWithoutDroppingTheConnection) {
  set_log_level(LogLevel::Warn);
  serve::ServerConfig config;
  config.spool_dir = fresh_dir("glova_serve_malformed");
  serve::Server server(std::move(config));
  server.start();

  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  EXPECT_EQ(client.request("FROBNICATE now").rfind("ERR bad request", 0), 0u);
  EXPECT_EQ(client.request("SUBMIT").rfind("ERR SUBMIT needs", 0), 0u);
  EXPECT_EQ(client.request("SUBMIT alice no-such-key=1").rfind("ERR bad spec", 0), 0u);
  EXPECT_EQ(client.request("STATUS job-999999").rfind("ERR unknown job", 0), 0u);
  EXPECT_EQ(client.request("RESULT job-999999").rfind("ERR unknown job", 0), 0u);
  EXPECT_EQ(client.request("CANCEL job-999999").rfind("ERR unknown job", 0), 0u);
  EXPECT_EQ(client.request("WATCH job-999999").rfind("ERR unknown job", 0), 0u);
  EXPECT_EQ(client.request("STATUS one two").rfind("ERR bad request", 0), 0u);

  // Eight rejected requests later, the connection still serves good ones.
  EXPECT_EQ(client.request("LIST"), "OK 0");
  EXPECT_TRUE(client.read_payload().empty());

  server.stop(true);
}

TEST(Server, BoundedAdmissionRejectsAndRecoversAfterCancel) {
  set_log_level(LogLevel::Warn);
  serve::ServerConfig config;
  config.spool_dir = fresh_dir("glova_serve_bounded");
  config.workers = 1;
  config.max_jobs = 1;
  config.steps_per_quantum = 1;
  serve::Server server(std::move(config));
  server.start();

  // A long-running sweep occupies the single admission slot.
  core::SweepSpec sweep = serve_sweep();
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  const std::string first = client.request("SUBMIT alice " + sweep.to_string());
  ASSERT_EQ(first.rfind("OK ", 0), 0u) << first;
  const std::string id = first.substr(3);

  // The bound holds regardless of tenant: backpressure at the door.
  const std::string rejected = client.request("SUBMIT bob " + sweep.to_string());
  EXPECT_EQ(rejected.rfind("ERR queue full", 0), 0u) << rejected;

  // Cancelling the live job frees the slot (possibly a quantum later).
  EXPECT_EQ(client.request("CANCEL " + id).rfind("OK ", 0), 0u);
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  std::string retried;
  for (;;) {
    retried = client.request("SUBMIT bob " + sweep.to_string());
    if (retried.rfind("OK ", 0) == 0 || std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(retried.rfind("OK ", 0), 0u) << retried;

  // The cancelled job reaches a terminal state; unless it won the race and
  // finished on its own, the payload of a cancelled job is empty.
  const std::string final_status = wait_terminal(client, id);
  if (final_status.find(" Cancelled ") != std::string::npos) {
    EXPECT_EQ(result_text(client, id), "");
  } else {
    EXPECT_NE(final_status.find(" Done "), std::string::npos) << final_status;
  }

  server.stop(true);
}

TEST(Server, ConcurrentClientsGetDistinctJobs) {
  set_log_level(LogLevel::Warn);
  serve::ServerConfig config;
  config.spool_dir = fresh_dir("glova_serve_concurrent");
  config.workers = 2;
  serve::Server server(std::move(config));
  server.start();

  core::SweepSpec sweep = serve_sweep();
  sweep.algorithms = {core::Algorithm::Glova};
  const std::string spec_text = sweep.to_string();

  constexpr std::size_t kClients = 4;
  std::vector<std::string> responses(kClients);
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      TestClient client(server.port());
      if (!client.connected()) return;
      responses[i] = client.request("SUBMIT tenant" + std::to_string(i % 2) + ' ' + spec_text);
    });
  }
  for (std::thread& thread : threads) thread.join();

  std::set<std::string> ids;
  for (const std::string& response : responses) {
    ASSERT_EQ(response.rfind("OK job-", 0), 0u) << response;
    ids.insert(response.substr(3));
  }
  EXPECT_EQ(ids.size(), kClients) << "every submission must get a unique id";

  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  EXPECT_EQ(client.request("LIST"), "OK " + std::to_string(kClients));
  EXPECT_EQ(client.read_payload().size(), kClients);

  server.stop(true);
}

TEST(Server, WatchStreamsEventsUntilTheJobEnds) {
  set_log_level(LogLevel::Warn);
  serve::ServerConfig config;
  config.spool_dir = fresh_dir("glova_serve_watch");
  config.workers = 1;
  // A long first quantum on the blocker job gives the WATCH below seconds of
  // margin to register before the watched job takes its first step.
  config.steps_per_quantum = 64;
  serve::Server server(std::move(config));
  server.start();

  core::SweepSpec blocker_sweep = serve_sweep();
  core::SweepSpec watched_sweep = serve_sweep();
  watched_sweep.algorithms = {core::Algorithm::Glova};

  TestClient control(server.port());
  ASSERT_TRUE(control.connected());
  // The single worker chews on the blocker first, so the WATCH below is
  // registered before the watched job takes its first step.
  const std::string blocker = control.request("SUBMIT alice " + blocker_sweep.to_string());
  ASSERT_EQ(blocker.rfind("OK ", 0), 0u);
  const std::string watched = control.request("SUBMIT bob " + watched_sweep.to_string());
  ASSERT_EQ(watched.rfind("OK ", 0), 0u);
  const std::string id = watched.substr(3);

  TestClient watcher(server.port());
  ASSERT_TRUE(watcher.connected());
  EXPECT_EQ(watcher.request("WATCH " + id), "OK watching " + id);

  // A watching connection accepts no further requests...
  // (checked indirectly: the stream below arrives in order and ends in END).
  const std::vector<std::string> events = watcher.read_payload();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.front().rfind("EVENT " + id + " session-start 0", 0), 0u) << events.front();
  std::size_t iterations = 0;
  for (const std::string& event : events) {
    iterations += event.find(" iteration ") != std::string::npos ? 1 : 0;
  }
  EXPECT_GT(iterations, 0u);
  EXPECT_EQ(events.back(), "EVENT " + id + " done Done");

  // Watching an already-terminal job returns its final event immediately.
  TestClient late(server.port());
  ASSERT_TRUE(late.connected());
  EXPECT_EQ(late.request("WATCH " + id), "OK watching " + id);
  const auto replayed = late.read_payload();
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_EQ(replayed[0], "EVENT " + id + " done Done");

  server.stop(true);
}

TEST(Server, ShutdownVerbRequestsTermination) {
  set_log_level(LogLevel::Warn);
  serve::ServerConfig config;
  config.spool_dir = fresh_dir("glova_serve_shutdown");
  serve::Server server(std::move(config));
  server.start();
  EXPECT_FALSE(server.shutdown_requested());

  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  EXPECT_EQ(client.request("SHUTDOWN"), "OK shutting-down");
  EXPECT_TRUE(server.shutdown_requested());
  server.stop(true);
}

TEST(Server, KillAndRestartResumesEveryInFlightCampaignBitIdentically) {
  set_log_level(LogLevel::Warn);
  const std::string spool = fresh_dir("glova_serve_restart");
  const core::SweepSpec sweep = serve_sweep();

  auto make_config = [&spool] {
    serve::ServerConfig config;
    config.spool_dir = spool;
    config.workers = 1;
    config.steps_per_quantum = 1;
    config.checkpoint_every_steps = 1;  // a checkpoint after every step
    return config;
  };

  std::string id;
  {
    serve::Server server(make_config());
    server.start();
    TestClient client(server.port());
    ASSERT_TRUE(client.connected());
    const std::string submitted = client.request("SUBMIT alice " + sweep.to_string());
    ASSERT_EQ(submitted.rfind("OK ", 0), 0u) << submitted;
    id = submitted.substr(3);

    // Let it make real progress (several checkpoints deep) before the crash.
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(120);
    for (;;) {
      const std::string status = client.request("STATUS " + id);
      if (status.find(" Done ") != std::string::npos) {
        GTEST_SKIP() << "job finished before the simulated crash: " << status;
      }
      const std::size_t at = status.find("steps=");
      if (at != std::string::npos && std::atoi(status.c_str() + at + 6) >= 5) break;
      ASSERT_LT(std::chrono::steady_clock::now(), deadline) << status;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }

    // Crash simulation: no final checkpoint — only the periodic spool
    // checkpoints survive, exactly what a SIGKILL leaves behind.
    server.stop(/*checkpoint=*/false);
  }
  ASSERT_TRUE(std::filesystem::exists(spool + "/checkpoints/" + id + ".ckpt"));

  // Restart on the same spool: the job is recovered, resumed from its last
  // checkpoint, and driven to Done.
  serve::Server restarted(make_config());
  restarted.start();
  TestClient client(restarted.port());
  ASSERT_TRUE(client.connected());
  const std::string status = wait_for_state(client, id, "Done");
  ASSERT_NE(status.find(" Done "), std::string::npos) << status;

  // The acceptance pin: the resumed result is byte-identical to the same
  // sweep run start-to-finish in one piece.
  core::Campaign direct(sweep);
  EXPECT_EQ(strip_trailing_newlines(result_text(client, id)),
            strip_trailing_newlines(serve::format_campaign_result(direct.run())));

  // The id sequence continues across the restart instead of reusing ids.
  core::SweepSpec tiny = serve_sweep();
  tiny.algorithms = {core::Algorithm::Glova};
  const std::string next = client.request("SUBMIT alice " + tiny.to_string());
  ASSERT_EQ(next.rfind("OK ", 0), 0u) << next;
  EXPECT_EQ(next.substr(3), "job-000002");

  restarted.stop(true);
  std::filesystem::remove_all(spool);
}

}  // namespace
}  // namespace glova
