// DC warm-start tests: the per-thread cache of converged operating points,
// the iteration-count win from seeding Newton across mismatch draws, and the
// guarantee that warm starts never move converged solutions beyond vtol.
#include <gtest/gtest.h>

#include <cmath>

#include "circuits/registry.hpp"
#include "circuits/spice_backend.hpp"
#include "common/rng.hpp"
#include "core/evaluation_engine.hpp"
#include "pdk/variation.hpp"
#include "spice/circuit.hpp"
#include "spice/simulator.hpp"
#include "spice/warm_start.hpp"

namespace glova::spice {
namespace {

circuits::StrongArmLatchSpice& sal_testbench() {
  static circuits::StrongArmLatchSpice sal;
  return sal;
}

std::vector<double> sal_sizing() {
  const std::vector<double> x01 = {0.2, 0.3, 0.2, 0.2, 0.2, 0.1, 0.2,
                                   0.0, 0.0, 0.0, 0.0, 0.0, 0.05, 0.01};
  return sal_testbench().sizing().denormalize(x01);
}

Circuit sal_netlist(std::span<const double> h = {}) {
  return sal_testbench().build_netlist(sal_sizing(), pdk::typical_corner(), h);
}

TEST(DcWarmStart, WarmStartedOpTakesStrictlyFewerIterations) {
  const Circuit ckt = sal_netlist();
  Simulator sim(ckt);
  const OpResult cold = sim.operating_point();
  ASSERT_TRUE(cold.converged);
  EXPECT_FALSE(cold.warm_started);
  EXPECT_GT(cold.iterations, 1);

  const OpResult warm = sim.operating_point(&cold);
  ASSERT_TRUE(warm.converged);
  EXPECT_TRUE(warm.warm_started);
  EXPECT_LT(warm.iterations, cold.iterations);

  // The warm start changes the Newton trajectory, never the solution
  // (beyond vtol).
  ASSERT_EQ(warm.node_voltages.size(), cold.node_voltages.size());
  for (std::size_t nd = 0; nd < cold.node_voltages.size(); ++nd) {
    EXPECT_NEAR(warm.node_voltages[nd], cold.node_voltages[nd], 10 * SimulatorOptions{}.vtol);
  }
}

TEST(DcWarmStart, MismatchDrawSeededFromNominalOpConvergesFaster) {
  // The realistic reuse pattern: the nominal design's DC op seeds a
  // *different* circuit instance — a mismatch draw of the same design.
  Rng rng(7);
  const auto layout = sal_testbench().mismatch_layout(sal_sizing(), true);
  const auto hs = pdk::sample_mismatch_set(layout, 1, rng, pdk::GlobalMode::PerSample);

  const Circuit nominal = sal_netlist();
  const OpResult nominal_op = Simulator(nominal).operating_point();
  ASSERT_TRUE(nominal_op.converged);

  const Circuit drawn = sal_netlist(hs[0]);
  Simulator sim(drawn);
  const OpResult cold = sim.operating_point();
  const OpResult warm = sim.operating_point(&nominal_op);
  ASSERT_TRUE(cold.converged);
  ASSERT_TRUE(warm.converged);
  EXPECT_TRUE(warm.warm_started);
  EXPECT_LT(warm.iterations, cold.iterations);
  for (std::size_t nd = 0; nd < cold.node_voltages.size(); ++nd) {
    EXPECT_NEAR(warm.node_voltages[nd], cold.node_voltages[nd], 10 * SimulatorOptions{}.vtol);
  }
}

TEST(DcWarmStart, TransientReportsIterationCountersAndDcOp) {
  const Circuit ckt = sal_netlist();
  Simulator sim(ckt);
  TransientSpec spec;
  spec.t_stop = 0.4e-9;
  spec.dt = 2e-12;
  spec.record = {"out_a", "out_b"};

  const TransientResult cold = sim.transient(spec);
  ASSERT_TRUE(cold.ok) << cold.error;
  EXPECT_TRUE(cold.dc_op.converged);
  EXPECT_GT(cold.dc_iterations, 0);
  EXPECT_GE(cold.newton_iterations, cold.times.size() - 1);  // >= 1 per step

  const TransientResult warm = sim.transient(spec, &cold.dc_op);
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_TRUE(warm.dc_op.warm_started);
  EXPECT_LT(warm.dc_iterations, cold.dc_iterations);

  // Same waveforms to within solver tolerance.
  ASSERT_EQ(warm.times.size(), cold.times.size());
  const auto& a = cold.trace("out_a");
  const auto& b = warm.trace("out_a");
  for (std::size_t i = 0; i < a.size(); i += 25) {
    EXPECT_NEAR(a[i], b[i], 1e-6);
  }
}

TEST(DcWarmStart, BogusWarmStartFallsBackToColdPath) {
  const Circuit ckt = sal_netlist();
  Simulator sim(ckt);
  OpResult bogus;
  bogus.converged = true;
  bogus.node_voltages.assign(3, 0.0);  // wrong shape: must be ignored
  bogus.vsource_currents.assign(1, 0.0);
  const OpResult op = sim.operating_point(&bogus);
  ASSERT_TRUE(op.converged);
  EXPECT_FALSE(op.warm_started);
}

TEST(DcWarmStart, CacheLruEvictionAndStats) {
  reset_warm_start_stats();
  DcWarmStartCache cache(2);
  OpResult op;
  op.converged = true;
  op.node_voltages = {0.0, 1.0};
  op.vsource_currents = {2.0};

  const auto key = [](std::int64_t v) { return DcWarmStartCache::Key{v}; };
  EXPECT_EQ(cache.lookup(key(1)), nullptr);
  cache.store(key(1), op);
  cache.store(key(2), op);
  ASSERT_NE(cache.lookup(key(1)), nullptr);  // refreshes 1
  cache.store(key(3), op);                   // evicts 2 (LRU)
  EXPECT_EQ(cache.lookup(key(2)), nullptr);
  ASSERT_NE(cache.lookup(key(3)), nullptr);
  EXPECT_EQ(cache.lookup(key(3))->vsource_currents[0], 2.0);

  OpResult unconverged;
  unconverged.converged = false;
  cache.store(key(9), unconverged);  // not worth caching
  EXPECT_EQ(cache.lookup(key(9)), nullptr);

  const WarmStartStats stats = warm_start_stats();
  EXPECT_EQ(stats.stores, 3u);
  EXPECT_GE(stats.hits, 3u);
  EXPECT_GE(stats.misses, 3u);

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(DcWarmStart, KeyDistinguishesDesignCornerAndTag) {
  const std::vector<double> x1 = {1e-6, 2e-6};
  std::vector<double> x2 = x1;
  x2[1] += 1e-9;
  const auto k1 = make_dc_key(1, x1, pdk::typical_corner());
  EXPECT_EQ(k1, make_dc_key(1, x1, pdk::typical_corner()));
  EXPECT_NE(k1, make_dc_key(2, x1, pdk::typical_corner()));
  EXPECT_NE(k1, make_dc_key(1, x2, pdk::typical_corner()));
  pdk::PvtCorner hot = pdk::typical_corner();
  hot.temp_c += 50.0;
  EXPECT_NE(k1, make_dc_key(1, x1, hot));
}

TEST(DcWarmStart, SalEvaluateWarmMatchesColdWithinTolerance) {
  auto& sal = sal_testbench();
  const auto x = sal_sizing();
  Rng rng(11);
  const auto layout = sal.mismatch_layout(x, true);
  const auto hs = pdk::sample_mismatch_set(layout, 3, rng, pdk::GlobalMode::PerSample);

  set_dc_warm_start_enabled(false);
  std::vector<std::vector<double>> cold;
  for (const auto& h : hs) cold.push_back(sal.evaluate(x, pdk::typical_corner(), h));

  thread_local_dc_cache().clear();
  reset_warm_start_stats();
  set_dc_warm_start_enabled(true);
  std::vector<std::vector<double>> warm;
  for (const auto& h : hs) warm.push_back(sal.evaluate(x, pdk::typical_corner(), h));
  set_dc_warm_start_enabled(true);  // leave the default in place

  const WarmStartStats stats = warm_start_stats();
  EXPECT_EQ(stats.misses, 1u);  // first draw seeds the cache
  EXPECT_EQ(stats.stores, 1u);
  EXPECT_EQ(stats.hits, 2u);    // subsequent draws of the same design hit

  for (std::size_t i = 0; i < hs.size(); ++i) {
    ASSERT_EQ(warm[i].size(), cold[i].size());
    for (std::size_t mi = 0; mi < cold[i].size(); ++mi) {
      EXPECT_NEAR(warm[i][mi], cold[i][mi], std::abs(cold[i][mi]) * 1e-6)
          << "draw " << i << " metric " << mi;
    }
  }
}

// Warm-start coverage for the FIA and DRAM OCSA netlists (ISSUE 5): hit
// counters must rise across mismatch draws of one design, and warm results
// must match cold results to within the solver's voltage tolerance (the
// same contract the SAL test above pins — a warm seed only shortens the
// Newton trajectory, with a cold fallback on failure, so converged metrics
// can differ from cold ones only below vtol, not bit-for-bit).
class NewBackendWarmStart : public ::testing::TestWithParam<int> {};

TEST_P(NewBackendWarmStart, HitCountersRiseAndWarmMatchesCold) {
  const circuits::Testcase tc =
      GetParam() == 0 ? circuits::Testcase::Fia : circuits::Testcase::DramOcsa;
  const auto tb = circuits::make_testbench(tc, circuits::Backend::Spice);
  std::vector<double> x01(tb->sizing().dimension(), 0.45);
  const auto x = tb->sizing().denormalize(x01);
  Rng rng(21 + GetParam());
  const auto layout = tb->mismatch_layout(x, false);
  const auto hs = pdk::sample_mismatch_set(layout, 3, rng, pdk::GlobalMode::Zero);

  set_dc_warm_start_enabled(false);
  std::vector<std::vector<double>> cold;
  for (const auto& h : hs) cold.push_back(tb->evaluate(x, pdk::typical_corner(), h));

  thread_local_dc_cache().clear();
  reset_warm_start_stats();
  set_dc_warm_start_enabled(true);
  std::vector<std::vector<double>> warm;
  for (const auto& h : hs) warm.push_back(tb->evaluate(x, pdk::typical_corner(), h));

  // The DRAM testbench runs one transient per data polarity (two cache
  // entries per design); the FIA runs one.
  const std::uint64_t solves_per_eval = tc == circuits::Testcase::DramOcsa ? 2u : 1u;
  const WarmStartStats stats = warm_start_stats();
  EXPECT_EQ(stats.misses, solves_per_eval);          // first draw seeds the cache
  EXPECT_EQ(stats.stores, solves_per_eval);
  EXPECT_EQ(stats.hits, 2u * solves_per_eval);       // later draws hit

  for (std::size_t i = 0; i < hs.size(); ++i) {
    ASSERT_EQ(warm[i].size(), cold[i].size());
    for (std::size_t mi = 0; mi < cold[i].size(); ++mi) {
      EXPECT_NEAR(warm[i][mi], cold[i][mi], std::abs(cold[i][mi]) * 1e-6)
          << circuits::to_string(tc) << " draw " << i << " metric " << mi;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(FiaAndDram, NewBackendWarmStart, ::testing::Range(0, 2));

TEST(DcWarmStart, PolaritiesAndTestbenchesDoNotShareSeeds) {
  // The DRAM data-0/data-1 transients have different operating points and
  // the three testbenches share design-vector shapes at equal dimensions —
  // the cache keys must keep all of them apart.  Evaluating each backend
  // once from a cold cache must only ever miss (no cross-testbench or
  // cross-polarity hits).
  thread_local_dc_cache().clear();
  reset_warm_start_stats();
  set_dc_warm_start_enabled(true);
  for (const auto tc : circuits::all_testcases()) {
    const auto tb = circuits::make_testbench(tc, circuits::Backend::Spice);
    std::vector<double> x01(tb->sizing().dimension(), 0.45);
    const auto x = tb->sizing().denormalize(x01);
    (void)tb->evaluate(x, pdk::typical_corner(), {});
  }
  const WarmStartStats stats = warm_start_stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 4u);  // SAL + FIA + DRAM data0 + DRAM data1
  EXPECT_EQ(stats.stores, 4u);
}

TEST(DcWarmStart, EngineSurfacesWarmStartCounters) {
  thread_local_dc_cache().clear();
  reset_warm_start_stats();

  core::EngineConfig cfg;
  cfg.parallelism = 1;
  cfg.min_parallel_batch = 1000;  // keep everything inline on this thread
  core::EvaluationEngine engine(
      circuits::make_testbench(circuits::Testcase::Sal, circuits::Backend::Spice), cfg);
  const auto& sz = engine.testbench().sizing();
  std::vector<double> x01(sz.dimension(), 0.4);
  const auto x = sz.denormalize(x01);
  Rng rng(3);
  const auto layout = engine.testbench().mismatch_layout(x, false);
  const auto hs = pdk::sample_mismatch_set(layout, 3, rng, pdk::GlobalMode::Zero);
  (void)engine.evaluate_batch(x, pdk::typical_corner(), hs);

  const core::EngineStats stats = engine.stats();
  EXPECT_EQ(stats.requested, 3u);
  EXPECT_EQ(stats.dc_warm_stores, 1u);
  EXPECT_EQ(stats.dc_warm_hits + stats.dc_warm_misses, 3u);
  EXPECT_GE(stats.dc_warm_hits, 2u);
}

}  // namespace
}  // namespace glova::spice
