#include "spice/measure.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace glova::spice {

namespace {
void check_sizes(std::span<const double> times, std::span<const double> values) {
  if (times.size() != values.size()) throw std::invalid_argument("measure: trace size mismatch");
  if (times.empty()) throw std::invalid_argument("measure: empty trace");
}
}  // namespace

std::optional<double> first_crossing(std::span<const double> times, std::span<const double> values,
                                     double threshold, CrossDirection direction, double t_start) {
  check_sizes(times, values);
  for (std::size_t i = 1; i < times.size(); ++i) {
    if (times[i] < t_start) continue;
    const double prev = values[i - 1];
    const double cur = values[i];
    const bool rising = prev < threshold && cur >= threshold;
    const bool falling = prev > threshold && cur <= threshold;
    const bool hit = (direction == CrossDirection::Rising && rising) ||
                     (direction == CrossDirection::Falling && falling) ||
                     (direction == CrossDirection::Either && (rising || falling));
    if (!hit) continue;
    const double denom = cur - prev;
    const double frac = std::abs(denom) > 0.0 ? (threshold - prev) / denom : 0.0;
    const double t = times[i - 1] + frac * (times[i] - times[i - 1]);
    if (t >= t_start) return t;
  }
  return std::nullopt;
}

double integrate(std::span<const double> times, std::span<const double> values, double t0,
                 double t1) {
  check_sizes(times, values);
  double sum = 0.0;
  for (std::size_t i = 1; i < times.size(); ++i) {
    const double a = std::max(times[i - 1], t0);
    const double b = std::min(times[i], t1);
    if (b <= a) continue;
    const double va = value_at(times, values, a);
    const double vb = value_at(times, values, b);
    sum += 0.5 * (va + vb) * (b - a);
  }
  return sum;
}

double value_at(std::span<const double> times, std::span<const double> values, double t) {
  check_sizes(times, values);
  if (t <= times.front()) return values.front();
  if (t >= times.back()) return values.back();
  const auto it = std::lower_bound(times.begin(), times.end(), t);
  const std::size_t hi = static_cast<std::size_t>(it - times.begin());
  if (times[hi] == t) return values[hi];
  const std::size_t lo = hi - 1;
  const double frac = (t - times[lo]) / (times[hi] - times[lo]);
  return values[lo] + frac * (values[hi] - values[lo]);
}

double min_in_window(std::span<const double> times, std::span<const double> values, double t0,
                     double t1) {
  check_sizes(times, values);
  double best = value_at(times, values, t0);
  for (std::size_t i = 0; i < times.size(); ++i) {
    if (times[i] >= t0 && times[i] <= t1) best = std::min(best, values[i]);
  }
  best = std::min(best, value_at(times, values, t1));
  return best;
}

double max_in_window(std::span<const double> times, std::span<const double> values, double t0,
                     double t1) {
  check_sizes(times, values);
  double best = value_at(times, values, t0);
  for (std::size_t i = 0; i < times.size(); ++i) {
    if (times[i] >= t0 && times[i] <= t1) best = std::max(best, values[i]);
  }
  best = std::max(best, value_at(times, values, t1));
  return best;
}

double supply_energy(std::span<const double> times, std::span<const double> currents, double vdd,
                     double t0, double t1) {
  // The MNA branch current of a source flows from + through the source to -,
  // so a supply *delivering* energy has negative branch current.
  return -vdd * integrate(times, currents, t0, t1);
}

std::vector<double> difference(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) throw std::invalid_argument("measure: trace size mismatch");
  std::vector<double> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

double capacitor_recharge_energy(double farads, double v_supply, double v_from, double v_to) {
  return farads * v_supply * std::abs(v_to - v_from);
}

}  // namespace glova::spice
