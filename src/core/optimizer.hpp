// The GLOVA optimization loop (paper Fig. 2, Secs. III-C and IV):
//
//   0. TuRBO generates design solutions meeting constraints at the typical
//      condition (initial sampling adopted from PVTSizing [9]).
//   1. The actor proposes a new design from the last one.
//   2. The worst PVT corner is selected from the last-worst-case buffer and
//      N' mismatch conditions are sampled via Eq. (3).
//   3. The design is simulated under those conditions.
//   4. The mu-sigma metric decides whether full verification is worthwhile.
//   5. If so, Algorithm 2 verifies with reordered PVT conditions; success
//      terminates the framework.
//   6. Otherwise the worst reward is stored in the replay buffer and the
//      risk-sensitive agent is updated (Algorithm 1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "circuits/testbench.hpp"
#include "core/config.hpp"
#include "core/evaluation_engine.hpp"
#include "core/verifier.hpp"
#include "rl/agent.hpp"

namespace glova::core {

struct GlovaConfig {
  VerifMethod method = VerifMethod::C;
  std::size_t n_opt_samples = 3;      ///< N' (paper: parallel sample size 3)
  double beta1 = -3.0;                ///< risk-avoidance (Eq. 6)
  double beta2 = 4.0;                 ///< reliability factor (Eq. 7)
  std::size_t batch_size = 10;        ///< replay batch (paper Sec. VI-B)
  std::size_t ensemble_size = 5;
  std::size_t hidden = 64;
  std::size_t max_iterations = 3000;  ///< success-rate cap
  std::size_t turbo_budget = 150;     ///< typical-condition evals for init
  std::size_t init_buffer_seeds = 6;  ///< extra TuRBO designs seeding the buffer
  bool use_ensemble_critic = true;    ///< ablation "w/o EC": single base model
  bool use_mu_sigma = true;           ///< ablation "w/o mu-sigma"
  bool use_reordering = true;         ///< ablation "w/o SR"
  std::uint64_t seed = 1;
  SimulationCost cost;
  EngineConfig engine;                ///< evaluation-stack knobs (parallelism, cache)
};

/// One row of the per-iteration trace (Fig. 3 reproduction).
struct IterationTrace {
  std::size_t iteration = 0;
  double reward_worst = 0.0;        ///< sampled worst-case reward of x_new
  double critic_mean = 0.0;         ///< E[Q_i(x_new)]
  double critic_bound = 0.0;        ///< E + beta1 * sigma (Eq. 6)
  bool mu_sigma_pass = false;       ///< step-4 gate outcome
  bool attempted_verification = false;
  std::uint64_t sims_total = 0;     ///< cumulative simulations
};

struct GlovaResult {
  bool success = false;
  std::size_t rl_iterations = 0;
  /// Requested simulations — the paper's "# Simulation" column.  Cache hits
  /// count: the optimizer asked for them whether or not they had to run.
  std::uint64_t n_simulations = 0;
  /// Simulations the engine actually ran (n_simulations - n_cache_hits).
  std::uint64_t n_simulations_executed = 0;
  std::uint64_t n_cache_hits = 0;
  double wall_seconds = 0.0;
  double modeled_runtime = 0.0;     ///< sims * t_sim + iterations * t_iter
  std::uint64_t turbo_evaluations = 0;
  std::vector<double> x01_final;    ///< verified design (normalized), if any
  std::vector<double> x_phys_final; ///< verified design (physical units)
  std::vector<IterationTrace> trace;
  std::string termination;          ///< "verified" / "iteration-cap" / ...
};

class GlovaOptimizer {
 public:
  GlovaOptimizer(circuits::TestbenchPtr testbench, GlovaConfig config);

  /// Run the full workflow to termination.
  [[nodiscard]] GlovaResult run();

  [[nodiscard]] const OperationalConfig& operational_config() const { return op_config_; }

 private:
  circuits::TestbenchPtr testbench_;
  GlovaConfig config_;
  OperationalConfig op_config_;
};

}  // namespace glova::core
