#include "circuits/testbench.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace glova::circuits {

std::vector<double> SizingSpec::denormalize(std::span<const double> x01) const {
  if (x01.size() != dimension()) throw std::invalid_argument("SizingSpec::denormalize: bad size");
  std::vector<double> phys(dimension());
  for (std::size_t i = 0; i < dimension(); ++i) {
    const double t = std::clamp(x01[i], 0.0, 1.0);
    phys[i] = lower[i] + t * (upper[i] - lower[i]);
  }
  return phys;
}

std::vector<double> SizingSpec::normalize(std::span<const double> physical) const {
  if (physical.size() != dimension()) throw std::invalid_argument("SizingSpec::normalize: bad size");
  std::vector<double> x01(dimension());
  for (std::size_t i = 0; i < dimension(); ++i) {
    const double span = upper[i] - lower[i];
    x01[i] = span > 0.0 ? std::clamp((physical[i] - lower[i]) / span, 0.0, 1.0) : 0.0;
  }
  return x01;
}

void SizingSpec::clamp01(std::span<double> x01) {
  for (double& v : x01) v = std::clamp(v, 0.0, 1.0);
}

double SizingSpec::log10_space_size(double steps_per_axis) const {
  return static_cast<double>(dimension()) * std::log10(steps_per_axis);
}

double normalized_margin(const MetricSpec& spec, double value) {
  const double c = spec.bound;
  const double f = value;
  double num = 0.0;
  double den = 0.0;
  if (spec.sense == Sense::MinimizeBelow) {
    num = c - f;
    den = c + f;
  } else {
    num = f - c;
    den = f + c;
  }
  // Raw metrics are positive magnitudes, so den > 0 in practice; guard for
  // robustness against degenerate evaluator output.
  den = std::max(std::abs(den), 1e-30);
  return std::clamp(num / den, -1.0, 1.0);
}

std::vector<std::vector<double>> Testbench::evaluate_draws(
    std::span<const double> x, const pdk::PvtCorner& corner,
    std::span<const std::vector<double>> hs) const {
  std::vector<EvaluationFailure> failures;
  return evaluate_draws(x, corner, hs, failures);
}

std::vector<std::vector<double>> Testbench::evaluate_draws(
    std::span<const double> x, const pdk::PvtCorner& corner,
    std::span<const std::vector<double>> hs, std::vector<EvaluationFailure>& failures) const {
  std::vector<std::vector<double>> out;
  out.reserve(hs.size());
  failures.assign(hs.size(), {});
  for (std::size_t i = 0; i < hs.size(); ++i) {
    try {
      out.push_back(evaluate(x, corner, hs[i]));
    } catch (const EvaluationError& e) {
      failures[i] = e.failure();
      out.push_back(e.penalty_metrics());
    }
  }
  return out;
}

double degradation(const MetricSpec& spec, double value) { return -normalized_margin(spec, value); }

}  // namespace glova::circuits
