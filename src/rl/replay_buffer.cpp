#include "rl/replay_buffer.hpp"

#include <algorithm>
#include <numeric>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "common/state_io.hpp"

namespace glova::rl {

WorstCaseReplayBuffer::WorstCaseReplayBuffer(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ == 0) throw std::invalid_argument("WorstCaseReplayBuffer: zero capacity");
  entries_.reserve(std::min<std::size_t>(capacity_, 1024));
}

void WorstCaseReplayBuffer::add(std::vector<double> x01, double reward) {
  if (!best_ || reward > best_->reward) best_ = Experience{x01, reward};
  if (entries_.size() < capacity_) {
    entries_.push_back(Experience{std::move(x01), reward});
  } else {
    entries_[next_] = Experience{std::move(x01), reward};
    next_ = (next_ + 1) % capacity_;
  }
}

std::vector<Experience> WorstCaseReplayBuffer::sample(std::size_t n, Rng& rng) const {
  if (entries_.empty()) throw std::logic_error("WorstCaseReplayBuffer::sample: empty");
  std::vector<Experience> batch;
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) batch.push_back(entries_[rng.index(entries_.size())]);
  return batch;
}

std::optional<Experience> WorstCaseReplayBuffer::best() const { return best_; }

namespace {

void write_experience(std::ostream& os, const Experience& e) {
  std::vector<double> row;
  row.reserve(e.x01.size() + 1);
  row.push_back(e.reward);
  row.insert(row.end(), e.x01.begin(), e.x01.end());
  state::write_doubles(os, "e", row);
}

Experience read_experience(std::istream& is) {
  std::vector<double> row = state::read_doubles(is, "e");
  if (row.empty()) state::bad("replay experience missing reward");
  Experience e;
  e.reward = row.front();
  e.x01.assign(row.begin() + 1, row.end());
  return e;
}

}  // namespace

void WorstCaseReplayBuffer::save(std::ostream& os) const {
  os << "replay " << capacity_ << ' ' << next_ << ' ' << entries_.size() << ' '
     << (best_ ? 1 : 0) << '\n';
  for (const Experience& e : entries_) write_experience(os, e);
  if (best_) write_experience(os, *best_);
}

void WorstCaseReplayBuffer::load(std::istream& is) {
  std::istringstream head(state::expect_line(is, "replay"));
  std::size_t capacity = 0, next = 0, count = 0;
  int has_best = 0;
  if (!(head >> capacity >> next >> count >> has_best)) state::bad("malformed replay header");
  if (capacity != capacity_) {
    state::bad("replay buffer capacity mismatch: expected " + std::to_string(capacity_) + ", got " +
               std::to_string(capacity));
  }
  if (count > capacity || next >= capacity || count > state::kMaxCount) {
    state::bad("implausible replay buffer header");
  }
  std::vector<Experience> entries;
  entries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) entries.push_back(read_experience(is));
  std::optional<Experience> best;
  if (has_best != 0) best = read_experience(is);
  next_ = next;
  entries_ = std::move(entries);
  best_ = std::move(best);
}

LastWorstBuffer::LastWorstBuffer(std::size_t corner_count) : rewards_(corner_count, -1.0) {
  if (corner_count == 0) throw std::invalid_argument("LastWorstBuffer: zero corners");
}

void LastWorstBuffer::update(std::size_t corner, double worst_reward) {
  if (corner >= rewards_.size()) throw std::out_of_range("LastWorstBuffer::update");
  rewards_[corner] = worst_reward;
}

std::size_t LastWorstBuffer::worst_corner() const {
  return static_cast<std::size_t>(
      std::min_element(rewards_.begin(), rewards_.end()) - rewards_.begin());
}

void LastWorstBuffer::save(std::ostream& os) const {
  state::write_doubles(os, "last_worst", rewards_);
}

void LastWorstBuffer::load(std::istream& is) {
  std::vector<double> rewards = state::read_doubles(is, "last_worst");
  if (rewards.size() != rewards_.size()) {
    state::bad("LastWorstBuffer corner count mismatch: expected " + std::to_string(rewards_.size()) +
               ", got " + std::to_string(rewards.size()));
  }
  rewards_ = std::move(rewards);
}

std::vector<std::size_t> LastWorstBuffer::corners_worst_first() const {
  std::vector<std::size_t> order(rewards_.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return rewards_[a] < rewards_[b]; });
  return order;
}

}  // namespace glova::rl
