// core::Campaign — many optimizer sessions over one evaluation stack.
//
// A campaign is the unit of real sizing work (Table II is 3 testcases x 3
// algorithms x 3 verification methods x several seeds): a list of RunSpecs,
// each turned into a step-driven session via core::make_optimizer, driven
// round-robin over the shared process-wide thread pool with fair scheduling,
// per-session budgets (RunSpec::budget) and a campaign-wide simulation cap,
// aggregated observer events, and a CampaignResult table keyed by spec.
//
//   core::SweepSpec sweep;
//   sweep.base.testcase = circuits::Testcase::Sal;
//   sweep.seeds = {1, 2, 3, 4, 5};
//   sweep.algorithms = core::all_algorithms();
//   core::Campaign campaign(sweep);
//   const core::CampaignResult& table = campaign.run();
//
// Checkpoint/resume: save() serializes the campaign — config, cursor, every
// session's spec (the way RunSpec already round-trips through text), its
// step count, the full result of each terminal session, and (v2) the full
// serialized optimizer state of each in-flight session — to a versioned text
// format.  load() restores in-flight sessions O(1) from that state, without
// replaying a single optimizer step; v1 checkpoints (and algorithms without
// state serialization) fall back to deterministic replay (re-stepping a
// freshly built session to its recorded step count).  Sessions are
// fixed-seed deterministic by construction (pinned by the run/step parity
// tests), so a resumed campaign produces bit-identical results to an
// uninterrupted one; tests/test_campaign.cpp and tests/test_resume_state.cpp
// pin that parity.
// The one caveat: wall-clock budgets (RunSpec::budget.max_wall_seconds) and
// SPICE DC warm-start caches are inherently timing/thread dependent — specs
// that rely on them resume correctly but only agree to solver tolerance
// (see docs/architecture.md).
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/run_spec.hpp"

namespace glova::core {

/// Cartesian sweep description: `expand()` produces one RunSpec per element
/// of testcases x algorithms x methods x seeds, all other fields copied from
/// `base`.  Empty axis vectors default to the base spec's value, so a
/// default-constructed SweepSpec expands to exactly {base}.
struct SweepSpec {
  RunSpec base;                                ///< template for every expanded spec
  std::vector<circuits::Testcase> testcases;   ///< empty = {base.testcase}
  std::vector<Algorithm> algorithms;           ///< empty = {base.algorithm}
  std::vector<VerifMethod> methods;            ///< empty = {base.method}
  std::vector<std::uint64_t> seeds;            ///< empty = {base.seed}

  /// Expanded specs in testcase-major, seed-minor order (Table II reading
  /// order: block, row, column, then independent runs).
  [[nodiscard]] std::vector<RunSpec> expand() const;

  /// Canonical one-line form: the base RunSpec's "key=value" tokens followed
  /// by one "sweep.<axis>=a,b,c" token per non-empty axis vector.
  /// from_string() parses it back losslessly, so sweeps travel through the
  /// same text channels (queues, CLIs, glova-serve jobs) RunSpecs do.
  [[nodiscard]] std::string to_string() const;
  static SweepSpec from_string(std::string_view text);  ///< throws on bad input

  friend bool operator==(const SweepSpec&, const SweepSpec&) = default;
};

/// Campaign-level knobs.  Per-session budgets live on each RunSpec.
struct CampaignConfig {
  /// Campaign-wide cap on *requested* simulations summed over every session
  /// (the paper's "# Simulation" semantics).  Checked after every scheduling
  /// turn, so the campaign stops within one turn of the cap: exceeding it
  /// cancels every unfinished session with termination
  /// "campaign-simulation-budget".  0 = unlimited.
  std::uint64_t max_total_simulations = 0;
  /// Session step() calls per scheduling turn before the round-robin cursor
  /// moves on.  1 = strict interleaving; larger values trade fairness for
  /// fewer session switches.  0 is treated as 1.
  std::size_t steps_per_turn = 1;
  /// Per-session retry budget for throwing steps.  A session whose step()
  /// throws is rebuilt and deterministically replayed to its recorded step
  /// count (the same mechanism load() uses), then resumes; only when the
  /// budget is exhausted — a deterministic failure re-throws on every retry —
  /// is it retired as Failed.  0 = retire on the first throw (legacy).
  std::size_t max_session_retries = 0;
  /// Directory for persistent memo-cache files (empty = off).  Every session
  /// whose spec leaves engine.cache_path unset gets one assigned here, named
  /// by its (testcase, backend, numerics-config) tag, so a campaign re-run —
  /// or a glova-serve restart — re-serves previously simulated points with
  /// zero evaluations.  A spec with its own cache_path keeps it.  Saved in
  /// checkpoints (format v3) and restored by load().
  std::string cache_dir;
  /// Testbench factory override (custom circuits, failure-injection tests).
  /// Default: the circuits registry, with one shared testbench instance per
  /// (testcase, backend) — testbenches are stateless-const, so sharing is
  /// result-identical to per-session construction.  A campaign loaded from a
  /// checkpoint needs the same factory passed to load().
  std::function<circuits::TestbenchPtr(const RunSpec&)> make_testbench;
};

/// Lifecycle of one campaign session.
enum class SessionState {
  Pending,   ///< not yet stepped
  Running,   ///< mid-optimization
  Finished,  ///< terminated with a well-formed result (verified, capped, ...)
  Failed,    ///< a step threw; `error` holds the exception text
};

[[nodiscard]] const char* to_string(SessionState state);

/// One row of the campaign result table.
struct CampaignEntry {
  RunSpec spec;                                ///< the key: what was run
  SessionState state = SessionState::Pending;
  std::size_t steps = 0;                       ///< completed step() calls
  std::size_t retries = 0;                     ///< throw-and-replay recoveries
  /// Valid when state is Finished (full result) or Failed (partial result up
  /// to the failing step, termination == "campaign-session-error").
  GlovaResult result;
  std::string error;                           ///< exception text when Failed
};

/// Aggregated campaign outcome, keyed by spec.
struct CampaignResult {
  std::vector<CampaignEntry> entries;          ///< campaign order == spec order
  std::uint64_t total_simulations = 0;         ///< summed requested sims
  std::size_t finished = 0;                    ///< entries with state Finished
  std::size_t failed = 0;                      ///< entries with state Failed
  std::size_t session_retries = 0;             ///< summed throw-and-replay recoveries

  /// First entry whose spec equals `spec` (RunSpec equality), or nullptr.
  [[nodiscard]] const CampaignEntry* find(const RunSpec& spec) const;
};

/// Aggregated progress callbacks: per-iteration events from every session
/// funnel through one observer, tagged with the session index and spec.
/// Callbacks run on the driving thread (the one calling Campaign::step()).
class CampaignObserver {
 public:
  virtual ~CampaignObserver() = default;
  /// The session is about to take its first step.
  virtual void on_session_start(std::size_t /*index*/, const RunSpec& /*spec*/) {}
  /// One session iteration completed (forwarded RunObserver::on_iteration).
  virtual void on_iteration(std::size_t /*index*/, const RunSpec& /*spec*/,
                            const IterationTrace& /*trace*/, const EngineStats& /*stats*/) {}
  /// The session terminated with a well-formed result.
  virtual void on_session_finish(std::size_t /*index*/, const RunSpec& /*spec*/,
                                 const GlovaResult& /*result*/) {}
  /// A session step threw; the session is retired with a partial result.
  virtual void on_session_error(std::size_t /*index*/, const RunSpec& /*spec*/,
                                const std::string& /*error*/) {}
};

/// Multi-session scheduler: constructs one session per spec and round-robin
/// step()s them to completion.  Sessions are independent (each owns its
/// EvaluationEngine and RNG streams) and share the process-wide simulation
/// thread pool plus, by default, one testbench per (testcase, backend), so
/// interleaving order never changes any session's numbers — only when the
/// campaign-wide budget trips.
class Campaign {
 public:
  /// One session per spec, in order.  Validates every spec up front (throws
  /// std::invalid_argument like make_optimizer).  An empty list is a valid,
  /// already-done campaign.
  explicit Campaign(std::vector<RunSpec> specs, CampaignConfig config = {});
  /// Convenience: Campaign(sweep.expand(), config).
  explicit Campaign(const SweepSpec& sweep, CampaignConfig config = {});

  Campaign(Campaign&&) noexcept;
  Campaign& operator=(Campaign&&) noexcept;
  ~Campaign();

  /// One fair-scheduling turn: advance the round-robin cursor to the next
  /// live session, step() it up to steps_per_turn times, then enforce the
  /// campaign-wide budget.  Returns true if any work was done, false once
  /// every session is terminal.
  bool step();

  /// Drive step() until done; returns the final result table.
  const CampaignResult& run();

  /// True once every session is Finished or Failed.
  [[nodiscard]] bool done() const;

  [[nodiscard]] std::size_t session_count() const;
  /// Sessions not yet terminal (Pending or Running).
  [[nodiscard]] std::size_t sessions_remaining() const;
  /// Requested simulations summed over every session so far.
  [[nodiscard]] std::uint64_t total_simulations() const;

  /// The result table.  Valid only once done(); throws std::logic_error
  /// while sessions are still live (mirrors Optimizer::result()).
  [[nodiscard]] const CampaignResult& result() const;

  void add_observer(std::shared_ptr<CampaignObserver> observer);

  // ---- checkpoint / resume ------------------------------------------------

  /// Serialize the whole campaign (versioned text format, see
  /// docs/architecture.md#checkpoint-format) so a later load() can resume
  /// it.  Callable at any point between step() calls.
  void save(std::ostream& os) const;
  /// save() to a file, crash-safely: the checkpoint is written to a
  /// temporary sibling (`path` + ".tmp") and atomically renamed over `path`
  /// only after the write fully succeeded, so an interrupted save can never
  /// leave a truncated checkpoint where a good one stood.  Throws
  /// std::runtime_error when the file cannot be written.
  void save_file(const std::string& path) const;

  /// Reconstruct a campaign from save() output.  Terminal sessions restore
  /// their recorded results directly; in-flight sessions restore O(1) from
  /// their serialized optimizer state (v2) — zero step() replays — or, for
  /// v1 checkpoints and algorithms without state serialization, are rebuilt
  /// via make_optimizer and deterministically replayed to their recorded
  /// step count.  Either way resuming continues bit-identically (fixed
  /// seeds, no wall-clock budgets).  `make_testbench` must match the factory
  /// the saved campaign was constructed with (empty = registry default).
  /// Throws std::runtime_error on malformed input or version mismatch.
  static Campaign load(std::istream& is,
                       std::function<circuits::TestbenchPtr(const RunSpec&)> make_testbench = {});
  /// load() from a file; throws std::runtime_error when unreadable.
  static Campaign load_file(
      const std::string& path,
      std::function<circuits::TestbenchPtr(const RunSpec&)> make_testbench = {});

 private:
  struct Session;
  struct Hub;
  class IterationForwarder;

  Campaign();  // for load()

  [[nodiscard]] circuits::TestbenchPtr testbench_for(const RunSpec& spec);
  [[nodiscard]] std::unique_ptr<Optimizer> build_optimizer(const RunSpec& spec);
  void attach_forwarder(std::size_t index);
  /// Rebuild session `index` from its spec and deterministically replay it to
  /// its recorded step count (the load() mechanism).  Returns false — leaving
  /// the session untouched — when the replay itself throws or falls short.
  [[nodiscard]] bool retry_session(std::size_t index);
  void retire_finished(std::size_t index);
  void retire_failed(std::size_t index, std::string error);
  void enforce_campaign_budget();
  [[nodiscard]] std::size_t next_live(std::size_t from) const;

  CampaignConfig config_;
  std::vector<Session> sessions_;
  std::size_t cursor_ = 0;  ///< round-robin position: next session to consider
  std::shared_ptr<Hub> hub_;
  /// Default-factory testbench cache: one instance per (testcase, backend).
  std::vector<std::pair<std::pair<int, int>, circuits::TestbenchPtr>> shared_benches_;
  mutable CampaignResult result_;
  mutable bool result_valid_ = false;
};

}  // namespace glova::core
