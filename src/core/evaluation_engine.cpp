#include "core/evaluation_engine.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <numeric>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "common/key_hash.hpp"
#include "common/log.hpp"
#include "common/state_io.hpp"
#include "core/persistent_cache.hpp"
#include "core/surrogate.hpp"
#include "spice/counters.hpp"
#include "spice/simulator.hpp"
#include "spice/warm_start.hpp"

namespace glova::core {

std::size_t EvaluationEngine::CacheKeyHash::operator()(const CacheKey& key) const noexcept {
  return key_fnv1a(key);
}

EvaluationEngine::EvaluationEngine(circuits::TestbenchPtr testbench, EngineConfig config)
    : testbench_(std::move(testbench)), config_(config) {
  if (!testbench_) throw std::invalid_argument("EvaluationEngine: null testbench");
  if (config_.cache_quantum <= 0.0) {
    throw std::invalid_argument("EvaluationEngine: cache_quantum must be positive");
  }
  if (config_.parallelism > 0) {
    slots_ = std::make_unique<std::counting_semaphore<>>(
        static_cast<std::ptrdiff_t>(config_.parallelism));
  }
  // The warm-start switch is process-wide (the caches are per worker
  // thread); the most recently constructed engine's config wins, which
  // matches the one-engine-per-run usage everywhere in the codebase.  The
  // adaptive-timestep and Newton-bypass switches follow the same pattern:
  // they configure spice::default_simulator_options() for every simulation
  // this engine (or anything sharing the process) runs from here on.
  if (config_.max_eval_retries < 0) {
    throw std::invalid_argument("EvaluationEngine: max_eval_retries must be >= 0");
  }
  if (config_.surrogate_keep <= 0.0 || config_.surrogate_keep > 1.0) {
    throw std::invalid_argument("EvaluationEngine: surrogate_keep must be in (0, 1]");
  }
  for (const char c : config_.cache_path) {
    // The RunSpec grammar is space-separated; a path that cannot round-trip
    // through it is rejected up front rather than corrupting a checkpoint.
    if (std::isspace(static_cast<unsigned char>(c))) {
      throw std::invalid_argument("EvaluationEngine: cache_path must not contain whitespace");
    }
  }
  if (config_.mos_model != "level1" && config_.mos_model != "ekv") {
    throw std::invalid_argument("EvaluationEngine: mos_model must be 'level1' or 'ekv'");
  }
  spice::set_mos_model_default(config_.mos_model == "ekv" ? spice::MosModel::kEkv
                                                          : spice::MosModel::kLevel1);
  spice::set_noise_analysis_default(config_.spice_noise);
  spice::set_dc_warm_start_enabled(config_.dc_warm_start);
  spice::set_adaptive_timestep_default(config_.adaptive_timestep);
  spice::set_newton_bypass_default(config_.newton_bypass);
  spice::set_recovery_default(config_.recovery);
  spice::set_deadline_default(config_.eval_deadline_steps);
  snapshot_warm_baseline();
  load_persistent_cache();
}

std::vector<double> EvaluationEngine::recover_or_degrade(std::span<const double> x_phys,
                                                         const pdk::PvtCorner& corner,
                                                         std::span<const double> h,
                                                         const std::vector<double>& penalty) {
  // Escalated retries: each attempt raises the thread-local recovery level,
  // so the failing evaluation re-runs with the ladder enabled (level 1) and
  // then taller/deeper (level >= 2).  The level is always restored to 0 —
  // neighbouring evaluations on this thread must not inherit it.
  for (int attempt = 1; attempt <= config_.max_eval_retries; ++attempt) {
    retries_.fetch_add(1);
    spice::set_recovery_escalation(attempt);
    try {
      std::vector<double> metrics = testbench_->evaluate(x_phys, corner, h);
      spice::set_recovery_escalation(0);
      return metrics;
    } catch (const circuits::EvaluationError&) {
      // Next attempt escalates further.
    } catch (...) {
      spice::set_recovery_escalation(0);
      throw;
    }
  }
  spice::set_recovery_escalation(0);
  if (config_.degrade_to_behavioral) {
    if (const circuits::Testbench* fallback = testbench_->degraded_fallback()) {
      degraded_evals_.fetch_add(1);
      return fallback->evaluate(x_phys, corner, h);
    }
  }
  return penalty;
}

std::vector<double> EvaluationEngine::evaluate_guarded(std::span<const double> x_phys,
                                                       const pdk::PvtCorner& corner,
                                                       std::span<const double> h) {
  try {
    return testbench_->evaluate(x_phys, corner, h);
  } catch (const circuits::EvaluationError& e) {
    // With no retries and no degradation this resolves to the backend's
    // legacy penalty metrics — bit-identical to the pre-funnel behavior.
    return recover_or_degrade(x_phys, corner, h, e.penalty_metrics());
  }
}

std::vector<double> EvaluationEngine::evaluate_with_slot(std::span<const double> x_phys,
                                                         const pdk::PvtCorner& corner,
                                                         std::span<const double> h) {
  if (!slots_) return evaluate_guarded(x_phys, corner, h);
  slots_->acquire();
  try {
    std::vector<double> metrics = evaluate_guarded(x_phys, corner, h);
    slots_->release();
    return metrics;
  } catch (...) {
    slots_->release();
    throw;
  }
}

void EvaluationEngine::snapshot_warm_baseline() {
  const spice::WarmStartStats warm = spice::warm_start_stats();
  warm_base_hits_ = warm.hits;
  warm_base_misses_ = warm.misses;
  warm_base_stores_ = warm.stores;
  const spice::SpiceCounters sc = spice::spice_counters();
  spice_base_[0] = sc.batch_groups;
  spice_base_[1] = sc.batch_lanes;
  spice_base_[2] = sc.bypass_solves;
  spice_base_[3] = sc.bypass_refactors;
  spice_base_[4] = sc.steps_accepted;
  spice_base_[5] = sc.steps_rejected;
  spice_base_[6] = sc.recovered_dc;
  spice_base_[7] = sc.recovered_transient;
  spice_base_[8] = sc.deadline_aborts;
}

EvaluationEngine::EvaluationEngine(circuits::TestbenchPtr testbench, std::size_t parallelism)
    : EvaluationEngine(std::move(testbench), [&] {
        EngineConfig cfg;
        cfg.parallelism = parallelism;
        return cfg;
      }()) {}

EvaluationEngine::~EvaluationEngine() {
  std::vector<std::future<void>> pending;
  {
    const std::lock_guard<std::mutex> lock(pending_mutex_);
    pending.swap(pending_);
  }
  for (std::future<void>& f : pending) {
    if (f.valid()) f.wait();
  }
  if (!config_.cache_path.empty()) {
    try {
      flush_persistent_cache();
    } catch (const std::exception& e) {
      log_warn("EvaluationEngine: persistent cache flush failed: ", e.what());
    }
  }
}

std::string EvaluationEngine::persistent_cache_tag() const {
  return memo_cache_tag(testbench_->name(), config_);
}

void EvaluationEngine::load_persistent_cache() {
  if (config_.cache_path.empty() || config_.cache_capacity == 0) return;
  const std::optional<MemoCacheFile> file =
      load_memo_cache_file(config_.cache_path, persistent_cache_tag());
  if (!file) return;  // first run against this path
  {
    const std::lock_guard<std::mutex> lock(cache_mutex_);
    // Entries are stored most recent first; preserve that recency in the LRU
    // and stop at capacity (the file may hold more than one engine's worth).
    for (const MemoCacheEntry& e : file->entries) {
      if (lru_.size() >= config_.cache_capacity) break;
      if (index_.find(e.key) != index_.end()) continue;
      lru_.emplace_back(e.key, e.metrics);
      index_.emplace(lru_.back().first, std::prev(lru_.end()));
    }
  }
  if (config_.surrogate && !file->surrogate_state.empty()) {
    SurrogateConfig cfg;
    cfg.keep = config_.surrogate_keep;
    cfg.warmup = config_.surrogate_warmup;
    auto model = std::make_unique<SurrogateModel>(cfg);
    std::istringstream ss(file->surrogate_state);
    model->load(ss);
    const std::lock_guard<std::mutex> lock(surrogate_mutex_);
    surrogate_ = std::move(model);
  }
}

void EvaluationEngine::flush_persistent_cache() {
  if (config_.cache_path.empty() || config_.cache_capacity == 0) return;
  MemoCacheFile file;
  file.tag = persistent_cache_tag();
  {
    const std::lock_guard<std::mutex> lock(cache_mutex_);
    file.entries.reserve(lru_.size());
    for (const auto& [key, metrics] : lru_) file.entries.push_back({key, metrics});
  }
  if (config_.surrogate) {
    const std::lock_guard<std::mutex> lock(surrogate_mutex_);
    if (surrogate_ && surrogate_->built()) {
      std::ostringstream ss;
      surrogate_->save(ss);
      file.surrogate_state = ss.str();
    }
  }
  flush_memo_cache_file(config_.cache_path, file);
}

EvaluationEngine::CacheKey EvaluationEngine::make_key(std::span<const double> x_phys,
                                                      const pdk::PvtCorner& corner,
                                                      std::span<const double> h) const {
  CacheKey key;
  key.reserve(4 + x_phys.size() + 1 + h.size());
  key.push_back(static_cast<std::int64_t>(corner.process) * 2 +
                (corner.process_predefined ? 1 : 0));
  key.push_back(quantize_for_key(corner.vdd, config_.cache_quantum));
  key.push_back(quantize_for_key(corner.temp_c, config_.cache_quantum));
  key.push_back(static_cast<std::int64_t>(x_phys.size()));
  for (const double v : x_phys) key.push_back(quantize_for_key(v, config_.cache_quantum));
  key.push_back(static_cast<std::int64_t>(h.size()));
  for (const double v : h) key.push_back(quantize_for_key(v, config_.cache_quantum));
  return key;
}

bool EvaluationEngine::cache_lookup(const CacheKey& key, std::vector<double>& out) {
  if (config_.cache_capacity == 0) return false;
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) return false;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  out = it->second->second;
  return true;
}

void EvaluationEngine::cache_insert(CacheKey key, const std::vector<double>& metrics) {
  if (config_.cache_capacity == 0) return;
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  if (index_.find(key) != index_.end()) return;  // concurrent duplicate compute
  lru_.emplace_front(std::move(key), metrics);
  index_.emplace(lru_.front().first, lru_.begin());
  if (lru_.size() > config_.cache_capacity) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

std::vector<double> EvaluationEngine::surrogate_input(std::span<const double> x_phys,
                                                      const pdk::PvtCorner& corner,
                                                      std::span<const double> h) {
  if (!surrogate_h_dim_set_) {
    // Fix the padded mismatch dimension once, from the full (global + local)
    // layout — every draw the engine will see fits it, shorter draws (local
    // only, nominal) are zero-padded.  Deterministic: the layout dimension
    // is the testbench's device count, independent of x.
    surrogate_h_dim_ = std::max(h.size(), testbench_->mismatch_layout(x_phys, true).dimension());
    surrogate_h_dim_set_ = true;
  }
  if (h.size() > surrogate_h_dim_) return {};  // incompatible sample
  std::vector<double> input;
  input.reserve(3 + x_phys.size() + surrogate_h_dim_);
  input.push_back(static_cast<double>(corner.process) * 2.0 +
                  (corner.process_predefined ? 1.0 : 0.0));
  input.push_back(corner.vdd);
  input.push_back(corner.temp_c);
  input.insert(input.end(), x_phys.begin(), x_phys.end());
  input.insert(input.end(), h.begin(), h.end());
  input.resize(3 + x_phys.size() + surrogate_h_dim_, 0.0);
  return input;
}

void EvaluationEngine::observe_surrogate(std::span<const double> x_phys,
                                         const pdk::PvtCorner& corner,
                                         std::span<const double> h,
                                         const std::vector<double>& metrics) {
  const std::vector<double> input = surrogate_input(x_phys, corner, h);
  if (input.empty() || metrics.empty()) return;
  if (!surrogate_) {
    SurrogateConfig cfg;
    cfg.keep = config_.surrogate_keep;
    cfg.warmup = config_.surrogate_warmup;
    surrogate_ = std::make_unique<SurrogateModel>(cfg);
  }
  if (surrogate_->built() && (input.size() != surrogate_->input_dim() ||
                              metrics.size() != surrogate_->output_dim())) {
    return;  // geometry drifted (custom testbench quirk): skip, never throw
  }
  surrogate_->observe(input, metrics);
}

void EvaluationEngine::train_surrogate(std::span<const double> x_phys,
                                       const pdk::PvtCorner& corner,
                                       const std::vector<std::vector<double>>& hs,
                                       const std::vector<std::size_t>& executed_indices,
                                       const std::vector<std::vector<double>>& results) {
  if (!config_.surrogate) return;
  const std::lock_guard<std::mutex> lock(surrogate_mutex_);
  for (const std::size_t i : executed_indices) {
    observe_surrogate(x_phys, corner, hs[i], results[i]);
  }
}

void EvaluationEngine::prune_with_surrogate(std::span<const double> x_phys,
                                            const pdk::PvtCorner& corner,
                                            const std::vector<std::vector<double>>& hs,
                                            std::vector<std::size_t>& miss_indices,
                                            std::vector<CacheKey>& miss_keys,
                                            std::vector<std::vector<double>>& results) {
  if (miss_indices.size() < 2) return;
  const std::lock_guard<std::mutex> lock(surrogate_mutex_);
  if (!surrogate_ || !surrogate_->ready()) return;
  const std::size_t n = miss_indices.size();
  const std::size_t keep = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(config_.surrogate_keep * static_cast<double>(n))));
  if (keep >= n) return;
  std::vector<std::vector<double>> predictions(n);
  std::vector<double> scores(n);
  for (std::size_t mi = 0; mi < n; ++mi) {
    const std::vector<double> input = surrogate_input(x_phys, corner, hs[miss_indices[mi]]);
    if (input.size() != surrogate_->input_dim()) return;  // incompatible batch: no pruning
    predictions[mi] = surrogate_->predict(input);
    const double score = surrogate_->extremity(predictions[mi]);
    // A non-finite prediction is exactly a candidate the model cannot vouch
    // for: rank it maximally extreme so SPICE confirms it.
    scores[mi] = std::isfinite(score) ? score : std::numeric_limits<double>::infinity();
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  // Highest predicted extremity survives to simulation; stable sort keeps
  // ties in submission order so the pruning decision is deterministic.
  std::stable_sort(order.begin(), order.end(),
                   [&scores](std::size_t a, std::size_t b) { return scores[a] > scores[b]; });
  std::vector<char> survives(n, 0);
  for (std::size_t k = 0; k < keep; ++k) survives[order[k]] = 1;
  std::vector<std::size_t> kept_indices;
  std::vector<CacheKey> kept_keys;
  kept_indices.reserve(keep);
  kept_keys.reserve(miss_keys.empty() ? 0 : keep);
  for (std::size_t mi = 0; mi < n; ++mi) {
    if (survives[mi]) {
      kept_indices.push_back(miss_indices[mi]);
      if (!miss_keys.empty()) kept_keys.push_back(std::move(miss_keys[mi]));
    } else {
      // Answered speculatively: the prediction is the result, but it is
      // never cached and never counted executed — the memo cache stays a
      // record of simulation truth only.
      results[miss_indices[mi]] = std::move(predictions[mi]);
      surrogate_prunes_.fetch_add(1);
    }
  }
  surrogate_confirms_.fetch_add(kept_indices.size());
  miss_indices = std::move(kept_indices);
  miss_keys = std::move(kept_keys);
}

std::size_t EvaluationEngine::effective_parallelism() const {
  const std::size_t pool = global_thread_pool().size();
  if (config_.parallelism == 0) return pool;
  return std::min(config_.parallelism, pool);
}

std::vector<std::vector<double>> EvaluationEngine::evaluate_batch(
    std::span<const double> x_phys, const pdk::PvtCorner& corner,
    const std::vector<std::vector<double>>& hs) {
  std::vector<std::vector<double>> results(hs.size());
  requested_.fetch_add(hs.size());

  // Resolve cache hits up front; only misses go to the simulator.  Identical
  // conditions inside one batch are still evaluated once each requested time
  // until the first insert lands — correctness is unaffected, and in practice
  // duplicate keys within a batch are repeated nominal-mismatch draws.
  const bool caching = config_.cache_capacity != 0;
  std::vector<std::size_t> miss_indices;
  std::vector<CacheKey> miss_keys;
  miss_indices.reserve(hs.size());
  if (caching) {
    miss_keys.reserve(hs.size());
    for (std::size_t i = 0; i < hs.size(); ++i) {
      CacheKey key = make_key(x_phys, corner, hs[i]);
      if (cache_lookup(key, results[i])) {
        cache_hits_.fetch_add(1);
      } else {
        miss_indices.push_back(i);
        miss_keys.push_back(std::move(key));
      }
    }
  } else {
    for (std::size_t i = 0; i < hs.size(); ++i) miss_indices.push_back(i);
  }
  if (miss_indices.empty()) return results;

  if (config_.surrogate) {
    prune_with_surrogate(x_phys, corner, hs, miss_indices, miss_keys, results);
    if (miss_indices.empty()) return results;
  }

  // Batched draw-group path: every miss of this call shares (x, corner), so
  // when the testbench can march draws in lockstep, hand it the whole miss
  // set at once.  A single parallelism slot covers the group (it occupies
  // one thread); the memo cache sees each lane's metrics exactly as the
  // sequential path would have inserted them.
  if (config_.batched_draws && miss_indices.size() > 1 &&
      testbench_->supports_batched_draws()) {
    std::vector<std::vector<double>> miss_hs;
    miss_hs.reserve(miss_indices.size());
    for (const std::size_t i : miss_indices) miss_hs.push_back(hs[i]);
    std::vector<std::vector<double>> group;
    std::vector<circuits::EvaluationFailure> lane_failures;
    // Failed lanes re-enter the funnel one by one while the group's slot is
    // still held: each is retried with the ladder escalated and then (when
    // configured) degraded, exactly as a sequential failure would be.  The
    // group's metrics for that lane already hold the penalty sentinel, so
    // with no retries and no degradation nothing changes.
    const auto run_group = [&] {
      group = testbench_->evaluate_draws(x_phys, corner, miss_hs, lane_failures);
      if (config_.max_eval_retries > 0 || config_.degrade_to_behavioral) {
        for (std::size_t mi = 0; mi < miss_hs.size(); ++mi) {
          if (mi < lane_failures.size() && lane_failures[mi].failed) {
            group[mi] = recover_or_degrade(x_phys, corner, miss_hs[mi], group[mi]);
          }
        }
      }
    };
    if (slots_) {
      slots_->acquire();
      try {
        run_group();
      } catch (...) {
        slots_->release();
        throw;
      }
      slots_->release();
    } else {
      run_group();
    }
    for (std::size_t mi = 0; mi < miss_indices.size(); ++mi) {
      results[miss_indices[mi]] = std::move(group[mi]);
      executed_.fetch_add(1);
      if (caching) cache_insert(std::move(miss_keys[mi]), results[miss_indices[mi]]);
    }
    train_surrogate(x_phys, corner, hs, miss_indices, results);
    return results;
  }

  const auto run_one = [&](std::size_t mi) {
    const std::size_t i = miss_indices[mi];
    results[i] = evaluate_with_slot(x_phys, corner, hs[i]);
    // Counted after the run so a throwing evaluation keeps the invariant
    // requested == cache_hits + executed (+ failures, which propagate).
    executed_.fetch_add(1);
    if (caching) cache_insert(std::move(miss_keys[mi]), results[i]);
  };

  const std::size_t parallelism = effective_parallelism();
  if (parallelism > 1 && miss_indices.size() >= config_.min_parallel_batch) {
    global_thread_pool().parallel_for(miss_indices.size(), run_one, parallelism);
  } else {
    for (std::size_t mi = 0; mi < miss_indices.size(); ++mi) run_one(mi);
  }
  // Train on the confirmed misses in index order — deterministic regardless
  // of which worker thread finished first.
  train_surrogate(x_phys, corner, hs, miss_indices, results);
  return results;
}

std::vector<double> EvaluationEngine::evaluate_one(std::span<const double> x_phys,
                                                   const pdk::PvtCorner& corner,
                                                   std::span<const double> h) {
  requested_.fetch_add(1);
  const bool caching = config_.cache_capacity != 0;
  CacheKey key;
  std::vector<double> metrics;
  if (caching) {
    key = make_key(x_phys, corner, h);
    if (cache_lookup(key, metrics)) {
      cache_hits_.fetch_add(1);
      return metrics;
    }
  }
  metrics = evaluate_with_slot(x_phys, corner, h);
  executed_.fetch_add(1);
  if (caching) cache_insert(std::move(key), metrics);
  if (config_.surrogate) {
    const std::lock_guard<std::mutex> slock(surrogate_mutex_);
    observe_surrogate(x_phys, corner, h, metrics);
  }
  return metrics;
}

std::future<std::vector<double>> EvaluationEngine::submit(std::span<const double> x_phys,
                                                          const pdk::PvtCorner& corner,
                                                          std::span<const double> h) {
  requested_.fetch_add(1);
  const bool caching = config_.cache_capacity != 0;
  CacheKey key;
  std::vector<double> metrics;
  if (caching) {
    key = make_key(x_phys, corner, h);
    if (cache_lookup(key, metrics)) {
      cache_hits_.fetch_add(1);
      std::promise<std::vector<double>> ready;
      ready.set_value(std::move(metrics));
      return ready.get_future();
    }
  }
  // The task owns copies of its inputs: the caller's spans need not outlive
  // the future.
  auto state = std::make_shared<std::promise<std::vector<double>>>();
  std::future<std::vector<double>> fut = state->get_future();
  std::vector<double> x_copy(x_phys.begin(), x_phys.end());
  std::vector<double> h_copy(h.begin(), h.end());
  std::future<void> done = global_thread_pool().submit(
      [this, state, caching, key = std::move(key), corner, x = std::move(x_copy),
       hh = std::move(h_copy)] {
        try {
          std::vector<double> m = evaluate_with_slot(x, corner, hh);
          executed_.fetch_add(1);
          if (caching) cache_insert(key, m);
          state->set_value(std::move(m));
        } catch (...) {
          state->set_exception(std::current_exception());
        }
      });
  {
    // Track the queued task so the destructor can drain it; drop entries
    // that have already finished to keep the list from growing.
    const std::lock_guard<std::mutex> lock(pending_mutex_);
    std::erase_if(pending_, [](std::future<void>& f) {
      return f.wait_for(std::chrono::seconds(0)) == std::future_status::ready;
    });
    pending_.push_back(std::move(done));
  }
  return fut;
}

EngineStats EvaluationEngine::stats() const {
  EngineStats s;
  s.requested = requested_.load();
  s.executed = executed_.load();
  s.cache_hits = cache_hits_.load();
  const spice::WarmStartStats warm = spice::warm_start_stats();
  // Saturating delta: a concurrent reset_warm_start_stats() elsewhere must
  // not wrap the reported counts.
  s.dc_warm_hits = warm.hits >= warm_base_hits_ ? warm.hits - warm_base_hits_ : 0;
  s.dc_warm_misses = warm.misses >= warm_base_misses_ ? warm.misses - warm_base_misses_ : 0;
  s.dc_warm_stores = warm.stores >= warm_base_stores_ ? warm.stores - warm_base_stores_ : 0;
  const spice::SpiceCounters sc = spice::spice_counters();
  const auto delta = [](std::uint64_t now, std::uint64_t base) {
    return now >= base ? now - base : 0;
  };
  s.batch_groups = delta(sc.batch_groups, spice_base_[0]);
  s.batch_lanes = delta(sc.batch_lanes, spice_base_[1]);
  s.bypass_solves = delta(sc.bypass_solves, spice_base_[2]);
  s.bypass_refactors = delta(sc.bypass_refactors, spice_base_[3]);
  s.steps_accepted = delta(sc.steps_accepted, spice_base_[4]);
  s.steps_rejected = delta(sc.steps_rejected, spice_base_[5]);
  s.recovered_dc = delta(sc.recovered_dc, spice_base_[6]);
  s.recovered_transient = delta(sc.recovered_transient, spice_base_[7]);
  s.deadline_aborts = delta(sc.deadline_aborts, spice_base_[8]);
  s.retries = retries_.load();
  s.degraded_evals = degraded_evals_.load();
  s.surrogate_prunes = surrogate_prunes_.load();
  s.surrogate_confirms = surrogate_confirms_.load();
  {
    const std::lock_guard<std::mutex> lock(surrogate_mutex_);
    s.surrogate_train_steps = surrogate_ ? surrogate_->train_steps() : 0;
  }
  // Counters carried across a process restart via load_state().
  s.dc_warm_hits += carried_.dc_warm_hits;
  s.dc_warm_misses += carried_.dc_warm_misses;
  s.dc_warm_stores += carried_.dc_warm_stores;
  s.batch_groups += carried_.batch_groups;
  s.batch_lanes += carried_.batch_lanes;
  s.bypass_solves += carried_.bypass_solves;
  s.bypass_refactors += carried_.bypass_refactors;
  s.steps_accepted += carried_.steps_accepted;
  s.steps_rejected += carried_.steps_rejected;
  s.recovered_dc += carried_.recovered_dc;
  s.recovered_transient += carried_.recovered_transient;
  s.deadline_aborts += carried_.deadline_aborts;
  return s;
}

void EvaluationEngine::reset_count() {
  requested_.store(0);
  executed_.store(0);
  cache_hits_.store(0);
  retries_.store(0);
  degraded_evals_.store(0);
  surrogate_prunes_.store(0);
  surrogate_confirms_.store(0);
  carried_ = EngineStats{};
  snapshot_warm_baseline();
}

std::size_t EvaluationEngine::cache_size() const {
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  return lru_.size();
}

void EvaluationEngine::clear_cache() {
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  index_.clear();
  lru_.clear();
}

void EvaluationEngine::save_state(std::ostream& os) const {
  // v1 when the surrogate is off — byte-identical to every earlier release,
  // so surrogate-free checkpoints keep their pinned golden bytes.  v2 adds
  // the surrogate funnel counters and (when built) the model state.
  const bool v2 = config_.surrogate;
  os << "engine-state " << (v2 ? 2 : 1) << '\n';
  os << "counters " << requested_.load() << ' ' << executed_.load() << ' ' << cache_hits_.load()
     << ' ' << retries_.load() << ' ' << degraded_evals_.load() << '\n';
  // Fold the live process-wide deltas into the carried totals so a restore in
  // a fresh process (whose deltas restart at zero) continues the same counts.
  const EngineStats s = stats();
  os << "carried " << s.dc_warm_hits << ' ' << s.dc_warm_misses << ' ' << s.dc_warm_stores << ' '
     << s.batch_groups << ' ' << s.batch_lanes << ' ' << s.bypass_solves << ' '
     << s.bypass_refactors << ' ' << s.steps_accepted << ' ' << s.steps_rejected << ' '
     << s.recovered_dc << ' ' << s.recovered_transient << ' ' << s.deadline_aborts << '\n';
  if (v2) {
    os << "surrogate-counters " << surrogate_prunes_.load() << ' ' << surrogate_confirms_.load()
       << '\n';
    const std::lock_guard<std::mutex> slock(surrogate_mutex_);
    if (surrogate_ && surrogate_->built()) {
      os << "surrogate-model 1\n";
      surrogate_->save(os);
    } else {
      os << "surrogate-model 0\n";
    }
  }
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  os << "cache " << lru_.size() << '\n';
  // Front (most recent) first; load() rebuilds in the same order.
  for (const auto& [key, metrics] : lru_) {
    os << "key " << key.size();
    for (const std::int64_t k : key) os << ' ' << k;
    os << '\n';
    state::write_doubles(os, "val", metrics);
  }
}

void EvaluationEngine::load_state(std::istream& is) {
  const std::uint64_t version =
      state::parse_u64(state::expect_line(is, "engine-state"), "engine-state version");
  if (version != 1 && version != 2) {
    state::bad("unsupported engine-state version " + std::to_string(version) +
               " (this build reads 1 and 2)");
  }
  {
    std::istringstream line(state::expect_line(is, "counters"));
    std::uint64_t requested = 0, executed = 0, cache_hits = 0, retries = 0, degraded = 0;
    if (!(line >> requested >> executed >> cache_hits >> retries >> degraded)) {
      state::bad("malformed engine counters");
    }
    requested_.store(requested);
    executed_.store(executed);
    cache_hits_.store(cache_hits);
    retries_.store(retries);
    degraded_evals_.store(degraded);
  }
  {
    std::istringstream line(state::expect_line(is, "carried"));
    EngineStats c;
    if (!(line >> c.dc_warm_hits >> c.dc_warm_misses >> c.dc_warm_stores >> c.batch_groups >>
          c.batch_lanes >> c.bypass_solves >> c.bypass_refactors >> c.steps_accepted >>
          c.steps_rejected >> c.recovered_dc >> c.recovered_transient >> c.deadline_aborts)) {
      state::bad("malformed engine carried counters");
    }
    carried_ = c;
  }
  if (version >= 2) {
    std::istringstream line(state::expect_line(is, "surrogate-counters"));
    std::uint64_t prunes = 0, confirms = 0;
    if (!(line >> prunes >> confirms)) state::bad("malformed surrogate counters");
    surrogate_prunes_.store(prunes);
    surrogate_confirms_.store(confirms);
    const std::string flag = state::expect_line(is, "surrogate-model");
    if (flag == "1") {
      SurrogateConfig cfg;
      cfg.keep = config_.surrogate_keep;
      cfg.warmup = config_.surrogate_warmup;
      auto model = std::make_unique<SurrogateModel>(cfg);
      model->load(is);
      const std::lock_guard<std::mutex> slock(surrogate_mutex_);
      surrogate_ = std::move(model);
    } else if (flag == "0") {
      const std::lock_guard<std::mutex> slock(surrogate_mutex_);
      surrogate_.reset();
    } else {
      state::bad("malformed surrogate-model flag '" + flag + "'");
    }
  }
  const std::size_t n = state::parse_u64(state::expect_line(is, "cache"), "engine cache size");
  if (n > config_.cache_capacity) {
    state::bad("engine cache state holds " + std::to_string(n) + " entries, capacity is " +
               std::to_string(config_.cache_capacity));
  }
  decltype(lru_) lru;
  decltype(index_) index;
  for (std::size_t i = 0; i < n; ++i) {
    std::istringstream line(state::expect_line(is, "key"));
    std::size_t klen = 0;
    if (!(line >> klen)) state::bad("malformed engine cache key");
    if (klen > state::kMaxCount) state::bad("implausible engine cache key length");
    CacheKey key(klen);
    for (std::int64_t& k : key) {
      if (!(line >> k)) state::bad("truncated engine cache key");
    }
    std::vector<double> metrics = state::read_doubles(is, "val");
    lru.emplace_back(std::move(key), std::move(metrics));
    if (!index.emplace(lru.back().first, std::prev(lru.end())).second) {
      state::bad("duplicate engine cache key");
    }
  }
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  lru_ = std::move(lru);
  index_ = std::move(index);
  // Deltas restart from this instant; everything before is in carried_.
  snapshot_warm_baseline();
}

}  // namespace glova::core
