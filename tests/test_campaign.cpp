// Tests for core::Campaign: sweep expansion, fair scheduling, the result
// table, aggregated observers, edge cases (empty campaign, failing session,
// campaign-wide budget), and the checkpoint/resume parity pin — a campaign
// saved mid-run and resumed must produce bit-identical fixed-seed results to
// an uninterrupted run.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "circuits/registry.hpp"
#include "common/log.hpp"
#include "core/campaign.hpp"

namespace glova {
namespace {

/// Every deterministic field of two results must match bit-for-bit
/// (wall_seconds is timing and is deliberately excluded).
void expect_identical_results(const core::GlovaResult& a, const core::GlovaResult& b) {
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.rl_iterations, b.rl_iterations);
  EXPECT_EQ(a.n_simulations, b.n_simulations);
  EXPECT_EQ(a.n_simulations_executed, b.n_simulations_executed);
  EXPECT_EQ(a.n_cache_hits, b.n_cache_hits);
  EXPECT_EQ(a.engine_stats.requested, b.engine_stats.requested);
  EXPECT_EQ(a.engine_stats.executed, b.engine_stats.executed);
  EXPECT_EQ(a.engine_stats.cache_hits, b.engine_stats.cache_hits);
  EXPECT_EQ(a.turbo_evaluations, b.turbo_evaluations);
  EXPECT_EQ(a.x01_final, b.x01_final);
  EXPECT_EQ(a.x_phys_final, b.x_phys_final);
  EXPECT_EQ(a.termination, b.termination);
  EXPECT_DOUBLE_EQ(a.modeled_runtime, b.modeled_runtime);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].iteration, b.trace[i].iteration);
    EXPECT_DOUBLE_EQ(a.trace[i].reward_worst, b.trace[i].reward_worst);
    EXPECT_DOUBLE_EQ(a.trace[i].critic_mean, b.trace[i].critic_mean);
    EXPECT_DOUBLE_EQ(a.trace[i].critic_bound, b.trace[i].critic_bound);
    EXPECT_EQ(a.trace[i].mu_sigma_pass, b.trace[i].mu_sigma_pass);
    EXPECT_EQ(a.trace[i].attempted_verification, b.trace[i].attempted_verification);
    EXPECT_EQ(a.trace[i].sims_total, b.trace[i].sims_total);
  }
}

void expect_identical_tables(const core::CampaignResult& a, const core::CampaignResult& b) {
  EXPECT_EQ(a.total_simulations, b.total_simulations);
  EXPECT_EQ(a.finished, b.finished);
  EXPECT_EQ(a.failed, b.failed);
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (std::size_t i = 0; i < a.entries.size(); ++i) {
    EXPECT_EQ(a.entries[i].spec, b.entries[i].spec) << "entry " << i;
    EXPECT_EQ(a.entries[i].state, b.entries[i].state) << "entry " << i;
    EXPECT_EQ(a.entries[i].steps, b.entries[i].steps) << "entry " << i;
    EXPECT_EQ(a.entries[i].error, b.entries[i].error) << "entry " << i;
    expect_identical_results(a.entries[i].result, b.entries[i].result);
  }
}

/// The sweep pinned by the parity tests: all three algorithms, two GLOVA
/// seeds, SAL behavioral, corner verification — small enough to run in
/// seconds, diverse enough to cover every session implementation.
core::SweepSpec parity_sweep() {
  core::SweepSpec sweep;
  sweep.base.testcase = circuits::Testcase::Sal;
  sweep.base.method = core::VerifMethod::C;
  sweep.base.max_iterations = 120;
  sweep.algorithms = core::all_algorithms();
  sweep.seeds = {1, 2};
  return sweep;
}

TEST(SweepSpec, ExpandsTheCartesianProductInTableOrder) {
  core::SweepSpec sweep;
  sweep.base.max_iterations = 50;
  sweep.testcases = {circuits::Testcase::Sal, circuits::Testcase::Fia};
  sweep.algorithms = {core::Algorithm::Glova, core::Algorithm::PvtSizing};
  sweep.methods = {core::VerifMethod::C};
  sweep.seeds = {7, 8, 9};
  const auto specs = sweep.expand();
  ASSERT_EQ(specs.size(), 2u * 2u * 1u * 3u);
  // testcase-major, seed-minor: first three specs share (SAL, Glova, C).
  EXPECT_EQ(specs[0].seed, 7u);
  EXPECT_EQ(specs[1].seed, 8u);
  EXPECT_EQ(specs[2].seed, 9u);
  EXPECT_EQ(specs[0].testcase, circuits::Testcase::Sal);
  EXPECT_EQ(specs[3].algorithm, core::Algorithm::PvtSizing);
  EXPECT_EQ(specs[6].testcase, circuits::Testcase::Fia);
  // Non-axis fields are copied from the base.
  for (const auto& spec : specs) EXPECT_EQ(spec.max_iterations, 50u);
}

TEST(SweepSpec, EmptyAxesDefaultToTheBaseSpec) {
  core::SweepSpec sweep;
  sweep.base.seed = 42;
  const auto specs = sweep.expand();
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0], sweep.base);
}

TEST(Campaign, EmptyCampaignIsTriviallyDone) {
  core::Campaign campaign(std::vector<core::RunSpec>{});
  EXPECT_TRUE(campaign.done());
  EXPECT_FALSE(campaign.step());
  EXPECT_EQ(campaign.session_count(), 0u);
  EXPECT_EQ(campaign.sessions_remaining(), 0u);
  const auto& table = campaign.run();
  EXPECT_TRUE(table.entries.empty());
  EXPECT_EQ(table.total_simulations, 0u);

  // An empty campaign round-trips through the checkpoint format too.
  std::stringstream ss;
  campaign.save(ss);
  core::Campaign loaded = core::Campaign::load(ss);
  EXPECT_TRUE(loaded.done());
  EXPECT_TRUE(loaded.run().entries.empty());
}

TEST(Campaign, ValidatesEverySpecUpFront) {
  core::RunSpec bad;
  bad.max_iterations = 0;  // fails RunSpec::validate()
  EXPECT_THROW(core::Campaign(std::vector<core::RunSpec>{bad}), std::invalid_argument);
}

TEST(Campaign, ResultThrowsWhileSessionsAreLive) {
  set_log_level(LogLevel::Warn);
  core::SweepSpec sweep = parity_sweep();
  sweep.algorithms = {core::Algorithm::Glova};
  sweep.seeds = {1};
  core::Campaign campaign(sweep);
  EXPECT_THROW((void)campaign.result(), std::logic_error);
  EXPECT_TRUE(campaign.step());
  EXPECT_THROW((void)campaign.result(), std::logic_error);
  (void)campaign.run();
  EXPECT_NO_THROW((void)campaign.result());
}

TEST(Campaign, RunsAWholeSweepAndKeysTheTableBySpec) {
  set_log_level(LogLevel::Warn);
  const core::SweepSpec sweep = parity_sweep();
  core::Campaign campaign(sweep);
  EXPECT_EQ(campaign.session_count(), 6u);
  const core::CampaignResult& table = campaign.run();
  EXPECT_TRUE(campaign.done());
  ASSERT_EQ(table.entries.size(), 6u);
  EXPECT_EQ(table.finished, 6u);
  EXPECT_EQ(table.failed, 0u);
  EXPECT_GT(table.total_simulations, 0u);
  for (const auto& entry : table.entries) {
    EXPECT_EQ(entry.state, core::SessionState::Finished);
    EXPECT_GT(entry.steps, 0u);
    EXPECT_FALSE(entry.result.termination.empty());
    EXPECT_EQ(entry.result.n_simulations,
              entry.result.n_simulations_executed + entry.result.n_cache_hits);
  }
  // find() keys the table by spec value.
  const auto specs = sweep.expand();
  const core::CampaignEntry* found = table.find(specs[3]);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->spec, specs[3]);
  core::RunSpec missing = specs[0];
  missing.seed = 999;
  EXPECT_EQ(table.find(missing), nullptr);
}

TEST(Campaign, MatchesStandaloneSessionResults) {
  // Campaign scheduling (shared testbench, interleaved stepping) must not
  // change any session's numbers vs. a standalone make_optimizer run.
  set_log_level(LogLevel::Warn);
  core::SweepSpec sweep = parity_sweep();
  sweep.algorithms = {core::Algorithm::Glova};
  sweep.seeds = {1};
  core::Campaign campaign(sweep);
  const auto& table = campaign.run();
  ASSERT_EQ(table.entries.size(), 1u);
  const auto standalone = core::make_optimizer(sweep.expand()[0])->run();
  expect_identical_results(table.entries[0].result, standalone);
}

// ---------------------------------------------------------------------------
// Checkpoint / resume

TEST(CampaignCheckpoint, SaveResumeMatchesStraightThroughBitIdentically) {
  set_log_level(LogLevel::Warn);
  const core::SweepSpec sweep = parity_sweep();

  // Straight-through reference run.
  core::Campaign reference(sweep);
  const core::CampaignResult ref_table = reference.run();

  // Checkpoint once early (most sessions pending) and once late (some
  // finished, some mid-flight), then resume each and compare.
  core::Campaign driver(sweep);
  std::stringstream early;
  std::stringstream late;
  int turns = 0;
  while (driver.step()) {
    ++turns;
    if (turns == 2) driver.save(early);
    if (turns == 40) driver.save(late);
  }
  ASSERT_GT(turns, 40) << "sweep finished before the late checkpoint; grow the sweep";
  expect_identical_tables(driver.result(), ref_table);

  core::Campaign resumed_early = core::Campaign::load(early);
  EXPECT_FALSE(resumed_early.done());
  expect_identical_tables(resumed_early.run(), ref_table);

  core::Campaign resumed_late = core::Campaign::load(late);
  expect_identical_tables(resumed_late.run(), ref_table);
}

TEST(CampaignCheckpoint, SavedTextRoundTripsThroughSaveAgain) {
  set_log_level(LogLevel::Warn);
  core::SweepSpec sweep = parity_sweep();
  sweep.algorithms = {core::Algorithm::Glova};
  core::Campaign campaign(sweep);
  for (int i = 0; i < 3; ++i) campaign.step();
  std::stringstream first;
  campaign.save(first);
  const std::string text = first.str();

  // load() then save() again reproduces the identical checkpoint: the
  // replayed sessions land on the same cursor/steps/results.
  std::stringstream in(text);
  core::Campaign loaded = core::Campaign::load(in);
  std::stringstream second;
  loaded.save(second);
  EXPECT_EQ(second.str(), text);
}

TEST(CampaignCheckpoint, RejectsGarbageAndWrongVersions) {
  {
    std::stringstream ss("not a checkpoint\n");
    EXPECT_THROW((void)core::Campaign::load(ss), std::runtime_error);
  }
  {
    std::stringstream ss("glova-campaign v999\n");
    EXPECT_THROW((void)core::Campaign::load(ss), std::runtime_error);
  }
  {
    std::stringstream ss("glova-campaign v1\nmax_total_simulations 0\n");  // truncated
    EXPECT_THROW((void)core::Campaign::load(ss), std::runtime_error);
  }
  {
    // A corrupt count must fail as a malformed checkpoint, not as a
    // gigantic allocation.
    std::stringstream ss(
        "glova-campaign v1\nmax_total_simulations 0\nsteps_per_turn 1\ncursor 0\n"
        "sessions 9999999999999\n");
    EXPECT_THROW((void)core::Campaign::load(ss), std::runtime_error);
  }
}

TEST(CampaignCheckpoint, SaveFileAndLoadFileRoundTrip) {
  set_log_level(LogLevel::Warn);
  core::SweepSpec sweep = parity_sweep();
  sweep.algorithms = {core::Algorithm::Glova};
  sweep.seeds = {1};
  core::Campaign campaign(sweep);
  (void)campaign.run();
  const std::string path = ::testing::TempDir() + "glova_campaign_ckpt.txt";
  campaign.save_file(path);
  core::Campaign loaded = core::Campaign::load_file(path);
  expect_identical_tables(loaded.run(), campaign.result());
  EXPECT_THROW((void)core::Campaign::load_file(path + ".does-not-exist"), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Edge cases: failing sessions, campaign-wide budget, observers

/// Testbench whose evaluations start throwing after a fuse burns (same probe
/// as the session tests, here to fail one campaign member mid-flight).
class FailingBench final : public circuits::Testbench {
 public:
  explicit FailingBench(int evaluations_until_failure) : fuse_(evaluations_until_failure) {
    sizing_.names = {"x0"};
    sizing_.lower = {0.0};
    sizing_.upper = {1.0};
    performance_.metrics = {
        circuits::MetricSpec{"m", "u", 1.0, 1.0, circuits::Sense::MinimizeBelow}};
  }
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const circuits::SizingSpec& sizing() const override { return sizing_; }
  [[nodiscard]] const circuits::PerformanceSpec& performance() const override {
    return performance_;
  }
  [[nodiscard]] pdk::MismatchLayout mismatch_layout(std::span<const double>,
                                                    bool) const override {
    return {};
  }
  [[nodiscard]] std::vector<double> evaluate(std::span<const double>, const pdk::PvtCorner&,
                                             std::span<const double>) const override {
    if (fuse_.fetch_sub(1) <= 0) throw std::runtime_error("simulator crashed");
    return {2.0};  // always failing the spec keeps the session running
  }

 private:
  std::string name_ = "failing-bench";
  circuits::SizingSpec sizing_;
  circuits::PerformanceSpec performance_;
  mutable std::atomic<int> fuse_;
};

TEST(Campaign, OneFailingSessionDoesNotStopTheOthers) {
  set_log_level(LogLevel::Warn);
  core::RunSpec failing;
  failing.seed = 1;
  failing.engine.cache_capacity = 0;  // every request reaches the bench
  failing.engine.parallelism = 1;     // deterministic fuse burn point
  core::RunSpec healthy;
  healthy.seed = 2;
  healthy.max_iterations = 120;

  core::CampaignConfig config;
  config.make_testbench = [](const core::RunSpec& spec) -> circuits::TestbenchPtr {
    if (spec.seed == 1) return std::make_shared<FailingBench>(400);
    return circuits::make_testbench(spec.testcase, spec.backend);
  };
  core::Campaign campaign({failing, healthy}, config);
  const core::CampaignResult& table = campaign.run();

  EXPECT_TRUE(campaign.done());
  ASSERT_EQ(table.entries.size(), 2u);
  EXPECT_EQ(table.failed, 1u);
  EXPECT_EQ(table.finished, 1u);

  const core::CampaignEntry& broken = table.entries[0];
  EXPECT_EQ(broken.state, core::SessionState::Failed);
  EXPECT_NE(broken.error.find("simulator crashed"), std::string::npos) << broken.error;
  EXPECT_EQ(broken.result.termination, "campaign-session-error");
  EXPECT_GT(broken.result.n_simulations, 0u);  // partial result is well-formed

  const core::CampaignEntry& ok = table.entries[1];
  EXPECT_EQ(ok.state, core::SessionState::Finished);
  EXPECT_TRUE(ok.result.success);
}

/// Deterministic wrapper that throws a plain runtime_error on exactly the
/// nth evaluate() call and forwards to the wrapped bench otherwise — a
/// transient fault: a rebuilt-and-replayed session sails past it because the
/// call counter has already burned through n.
class ThrowOnceBench final : public circuits::Testbench {
 public:
  ThrowOnceBench(circuits::TestbenchPtr inner, int nth) : inner_(std::move(inner)), nth_(nth) {}
  [[nodiscard]] const std::string& name() const override { return inner_->name(); }
  [[nodiscard]] const circuits::SizingSpec& sizing() const override { return inner_->sizing(); }
  [[nodiscard]] const circuits::PerformanceSpec& performance() const override {
    return inner_->performance();
  }
  [[nodiscard]] pdk::MismatchLayout mismatch_layout(std::span<const double> x,
                                                    bool global_enabled) const override {
    return inner_->mismatch_layout(x, global_enabled);
  }
  [[nodiscard]] std::vector<double> evaluate(std::span<const double> x,
                                             const pdk::PvtCorner& corner,
                                             std::span<const double> h) const override {
    if (calls_.fetch_add(1) + 1 == nth_) throw std::runtime_error("transient evaluator glitch");
    return inner_->evaluate(x, corner, h);
  }

 private:
  circuits::TestbenchPtr inner_;
  int nth_;
  mutable std::atomic<int> calls_{0};
};

TEST(Campaign, SessionRetryReplaysThroughATransientThrow) {
  set_log_level(LogLevel::Warn);
  core::RunSpec spec;
  spec.testcase = circuits::Testcase::Sal;
  spec.max_iterations = 120;
  spec.engine.cache_capacity = 0;  // every request reaches the bench
  spec.engine.parallelism = 1;     // deterministic throw point

  // Reference: an uninterrupted run, and its evaluation count to place the
  // one-shot fault mid-session.
  core::Campaign reference(std::vector<core::RunSpec>{spec});
  const core::CampaignResult& ref_table = reference.run();
  ASSERT_EQ(ref_table.entries.size(), 1u);
  ASSERT_EQ(ref_table.entries[0].state, core::SessionState::Finished);
  const int nth = static_cast<int>(ref_table.entries[0].result.n_simulations / 2);
  ASSERT_GT(nth, 1);

  // One transient throw, one retry budgeted: the session is rebuilt,
  // replayed, and finishes bit-identically to the uninterrupted run.
  core::CampaignConfig config;
  config.max_session_retries = 2;
  const auto bench = std::make_shared<ThrowOnceBench>(
      circuits::make_testbench(spec.testcase, spec.backend), nth);
  config.make_testbench = [bench](const core::RunSpec&) -> circuits::TestbenchPtr {
    return bench;  // one shared instance: the replay must see the burnt fuse
  };
  core::Campaign campaign(std::vector<core::RunSpec>{spec}, config);
  const core::CampaignResult& table = campaign.run();
  ASSERT_EQ(table.entries.size(), 1u);
  EXPECT_EQ(table.entries[0].state, core::SessionState::Finished);
  EXPECT_EQ(table.entries[0].retries, 1u);
  EXPECT_EQ(table.session_retries, 1u);
  EXPECT_TRUE(table.entries[0].error.empty());
  expect_identical_results(table.entries[0].result, ref_table.entries[0].result);

  // With no retry budget the same fault is fatal (the legacy behavior).
  core::CampaignConfig none;
  const auto bench2 = std::make_shared<ThrowOnceBench>(
      circuits::make_testbench(spec.testcase, spec.backend), nth);
  none.make_testbench = [bench2](const core::RunSpec&) -> circuits::TestbenchPtr {
    return bench2;
  };
  core::Campaign fatal(std::vector<core::RunSpec>{spec}, none);
  const core::CampaignResult& fatal_table = fatal.run();
  EXPECT_EQ(fatal_table.entries[0].state, core::SessionState::Failed);
  EXPECT_EQ(fatal_table.entries[0].retries, 0u);
  EXPECT_NE(fatal_table.entries[0].error.find("transient evaluator glitch"), std::string::npos);
}

TEST(Campaign, DeterministicFailureExhaustsTheRetryBudget) {
  set_log_level(LogLevel::Warn);
  core::RunSpec spec;
  spec.engine.cache_capacity = 0;
  spec.engine.parallelism = 1;
  core::CampaignConfig config;
  config.max_session_retries = 2;
  // FailingBench's fuse burns permanently: every replay re-throws at the
  // same evaluation, so the retry budget drains and the session fails.
  config.make_testbench = [](const core::RunSpec&) -> circuits::TestbenchPtr {
    return std::make_shared<FailingBench>(400);
  };
  core::Campaign campaign(std::vector<core::RunSpec>{spec}, config);
  const core::CampaignResult& table = campaign.run();
  ASSERT_EQ(table.entries.size(), 1u);
  EXPECT_EQ(table.entries[0].state, core::SessionState::Failed);
  EXPECT_EQ(table.entries[0].retries, 2u);
  EXPECT_EQ(table.session_retries, 2u);
  EXPECT_NE(table.entries[0].error.find("simulator crashed"), std::string::npos);
}

TEST(CampaignCheckpoint, SaveFileSurvivesPartialWriteInjection) {
  set_log_level(LogLevel::Warn);
  core::SweepSpec sweep = parity_sweep();
  sweep.algorithms = {core::Algorithm::Glova};
  sweep.seeds = {1};
  core::Campaign campaign(sweep);
  (void)campaign.run();

  const std::string path = ::testing::TempDir() + "glova_campaign_atomic.txt";
  const std::string tmp = path + ".tmp";
  std::filesystem::remove(path);
  std::filesystem::remove_all(tmp);

  // A stale temp file from a crashed writer is simply overwritten.
  {
    std::ofstream garbage(tmp);
    garbage << "truncated-partial-write";
  }
  campaign.save_file(path);
  EXPECT_FALSE(std::filesystem::exists(tmp)) << "temp file must be renamed away";
  expect_identical_tables(core::Campaign::load_file(path).run(), campaign.result());

  // Injected write failure: the temp path is unopenable (a directory squats
  // on it), save_file throws — and the existing good checkpoint is intact.
  std::filesystem::create_directory(tmp);
  EXPECT_THROW(campaign.save_file(path), std::runtime_error);
  std::filesystem::remove_all(tmp);
  expect_identical_tables(core::Campaign::load_file(path).run(), campaign.result());

  // The file path writes exactly the save() bytes — the durable (fsync +
  // rename) route and the stream route are one serializer.
  std::stringstream expected;
  campaign.save(expected);
  std::ifstream written(path);
  std::stringstream on_disk;
  on_disk << written.rdbuf();
  EXPECT_EQ(on_disk.str(), expected.str());

  // Overwriting a good checkpoint with a newer one is atomic too: a
  // different campaign saved over the same path fully replaces it.
  core::SweepSpec newer_sweep = parity_sweep();
  newer_sweep.algorithms = {core::Algorithm::PvtSizing};
  newer_sweep.seeds = {2};
  core::Campaign newer(newer_sweep);
  (void)newer.run();
  newer.save_file(path);
  EXPECT_FALSE(std::filesystem::exists(tmp));
  expect_identical_tables(core::Campaign::load_file(path).run(), newer.result());
}

TEST(Campaign, WideSimulationBudgetStopsWithinOneTurn) {
  set_log_level(LogLevel::Warn);
  core::SweepSpec sweep = parity_sweep();
  sweep.algorithms = {core::Algorithm::Glova};
  sweep.seeds = {1, 2, 3};
  core::CampaignConfig config;
  config.max_total_simulations = 120;  // trips during the second session's init
  core::Campaign campaign(sweep, config);

  // Budget enforcement runs after every turn, so at the top of each turn the
  // campaign is either under the cap or already done.
  while (!campaign.done()) {
    EXPECT_LT(campaign.total_simulations(), config.max_total_simulations);
    campaign.step();
  }
  const core::CampaignResult& table = campaign.result();
  EXPECT_GE(table.total_simulations, config.max_total_simulations);
  ASSERT_EQ(table.entries.size(), 3u);
  std::size_t budget_stopped = 0;
  for (const auto& entry : table.entries) {
    EXPECT_EQ(entry.state, core::SessionState::Finished);
    budget_stopped += entry.result.termination == "campaign-simulation-budget" ? 1 : 0;
  }
  // The cap trips before the sweep can finish on its own: at least one
  // session (in fact the later ones) is cut off by the campaign budget.
  EXPECT_GE(budget_stopped, 1u);
}

TEST(Campaign, ObserversAggregateAcrossSessions) {
  set_log_level(LogLevel::Warn);

  class Counter final : public core::CampaignObserver {
   public:
    void on_session_start(std::size_t index, const core::RunSpec&) override {
      ++starts;
      last_started = index;
    }
    void on_iteration(std::size_t index, const core::RunSpec&, const core::IterationTrace&,
                      const core::EngineStats& stats) override {
      ++iterations;
      (void)index;
      last_requested = stats.requested;
    }
    void on_session_finish(std::size_t index, const core::RunSpec&,
                           const core::GlovaResult&) override {
      ++finishes;
      last_finished = index;
    }
    int starts = 0;
    int iterations = 0;
    int finishes = 0;
    std::size_t last_started = 0;
    std::size_t last_finished = 0;
    std::uint64_t last_requested = 0;
  };

  core::SweepSpec sweep = parity_sweep();
  sweep.algorithms = {core::Algorithm::Glova};
  sweep.seeds = {1, 2};
  core::Campaign campaign(sweep);
  const auto counter = std::make_shared<Counter>();
  campaign.add_observer(counter);
  const auto& table = campaign.run();

  EXPECT_EQ(counter->starts, 2);
  EXPECT_EQ(counter->finishes, 2);
  std::size_t total_steps = 0;
  for (const auto& entry : table.entries) total_steps += entry.steps;
  EXPECT_EQ(counter->iterations, static_cast<int>(total_steps));
  EXPECT_GT(counter->last_requested, 0u);
}

}  // namespace
}  // namespace glova
