// Tests for the optimization substrate: Cholesky, GP regression, TuRBO
// trust-region behavior, and k-means.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "opt/gp.hpp"
#include "opt/kmeans.hpp"
#include "opt/turbo.hpp"

namespace glova::opt {
namespace {

TEST(Cholesky, FactorsAndSolves) {
  // A = [[4,2],[2,3]] -> L = [[2,0],[1,sqrt(2)]]
  std::vector<double> a = {4.0, 2.0, 2.0, 3.0};
  ASSERT_TRUE(cholesky_factor(a, 2));
  EXPECT_NEAR(a[0], 2.0, 1e-12);
  EXPECT_NEAR(a[2], 1.0, 1e-12);
  EXPECT_NEAR(a[3], std::sqrt(2.0), 1e-12);
  const auto x = cholesky_solve(a, 2, std::vector<double>{8.0, 7.0});
  // A x = b -> x = [1.25, 1.5]
  EXPECT_NEAR(x[0], 1.25, 1e-12);
  EXPECT_NEAR(x[1], 1.5, 1e-12);
}

TEST(Cholesky, RejectsIndefinite) {
  std::vector<double> a = {1.0, 2.0, 2.0, 1.0};
  EXPECT_FALSE(cholesky_factor(a, 2));
}

TEST(Gp, InterpolatesTrainingDataAtLowNoise) {
  Rng rng(3);
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  for (int i = 0; i < 20; ++i) {
    xs.push_back(rng.uniform_vector(2, 0.0, 1.0));
    ys.push_back(std::sin(4.0 * xs.back()[0]) + xs.back()[1]);
  }
  GaussianProcess gp;
  gp.fit(xs, ys);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const GpPrediction pred = gp.predict(xs[i]);
    EXPECT_NEAR(pred.mean, ys[i], 0.05);
  }
}

TEST(Gp, UncertaintyGrowsAwayFromData) {
  GaussianProcess gp;
  gp.fit({{0.2, 0.2}, {0.3, 0.3}, {0.25, 0.2}}, {1.0, 2.0, 1.5});
  const double var_near = gp.predict(std::vector<double>{0.25, 0.25}).variance;
  const double var_far = gp.predict(std::vector<double>{0.95, 0.95}).variance;
  EXPECT_GT(var_far, var_near);
}

TEST(Gp, PredictBeforeFitThrows) {
  GaussianProcess gp;
  EXPECT_THROW((void)gp.predict(std::vector<double>{0.5}), std::logic_error);
}

TEST(Turbo, OptimizesSmoothBowl) {
  // Maximize -(x - 0.7)^2 summed over 4 dims; optimum 0 at x = 0.7.
  const std::size_t dim = 4;
  Turbo turbo(dim, TurboConfig{}, Rng(5));
  for (int step = 0; step < 120; ++step) {
    const auto points = turbo.ask(1);
    std::vector<double> values;
    for (const auto& x : points) {
      double v = 0.0;
      for (const double xi : x) v -= (xi - 0.7) * (xi - 0.7);
      values.push_back(v);
    }
    turbo.tell(points, values);
  }
  EXPECT_GT(turbo.best_value(), -0.02);
  for (const double xi : turbo.best_point()) EXPECT_NEAR(xi, 0.7, 0.15);
}

TEST(Turbo, TrustRegionShrinksOnFailures) {
  Turbo turbo(3, TurboConfig{}, Rng(6));
  // Constant objective: never improves after the first tell.
  for (int step = 0; step < 60; ++step) {
    const auto points = turbo.ask(1);
    turbo.tell(points, std::vector<double>(points.size(), 0.0));
  }
  EXPECT_LT(turbo.trust_region(), TurboConfig{}.tr_initial);
}

TEST(Turbo, TopPointsSortedByValue) {
  Turbo turbo(2, TurboConfig{}, Rng(7));
  turbo.tell({{0.1, 0.1}, {0.2, 0.2}, {0.3, 0.3}}, {1.0, 3.0, 2.0});
  const auto top = turbo.top_points(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], (std::vector<double>{0.2, 0.2}));
  EXPECT_EQ(top[1], (std::vector<double>{0.3, 0.3}));
}

TEST(KMeans, RecoversSeparatedClusters) {
  Rng rng(8);
  std::vector<std::vector<double>> points;
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 30; ++i) {
      points.push_back({c * 10.0 + rng.normal() * 0.2, c * -5.0 + rng.normal() * 0.2});
    }
  }
  const KMeansResult result = kmeans(points, 3, rng);
  // All points of one block share an assignment; blocks differ.
  for (int c = 0; c < 3; ++c) {
    const std::size_t label = result.assignment[c * 30];
    for (int i = 1; i < 30; ++i) EXPECT_EQ(result.assignment[c * 30 + i], label);
  }
  EXPECT_NE(result.assignment[0], result.assignment[30]);
  EXPECT_NE(result.assignment[30], result.assignment[60]);
  EXPECT_LT(result.inertia, 30.0);
}

TEST(KMeans, KEqualsOneAndBadInputs) {
  Rng rng(9);
  const std::vector<std::vector<double>> points = {{0.0}, {1.0}, {2.0}};
  const KMeansResult one = kmeans(points, 1, rng);
  EXPECT_NEAR(one.centroids[0][0], 1.0, 1e-9);
  EXPECT_THROW((void)kmeans(points, 0, rng), std::invalid_argument);
  EXPECT_THROW((void)kmeans(points, 4, rng), std::invalid_argument);
  EXPECT_THROW((void)kmeans({}, 1, rng), std::invalid_argument);
}

TEST(KMeans, HandlesDuplicatePoints) {
  Rng rng(10);
  const std::vector<std::vector<double>> points(10, std::vector<double>{1.0, 1.0});
  const KMeansResult result = kmeans(points, 3, rng);
  EXPECT_NEAR(result.inertia, 0.0, 1e-12);
}

}  // namespace
}  // namespace glova::opt
