// Spool-directory persistence for glova-serve jobs.
//
// Layout (docs/serve.md#spool-layout):
//
//   <spool>/jobs/<id>.job          submitted spec record, written at SUBMIT
//   <spool>/checkpoints/<id>.ckpt  periodic Campaign checkpoint (in-flight
//                                  jobs only; removed at terminal state)
//   <spool>/results/<id>.result    terminal state + canonical result text
//
// Every file is written through glova::atomic_write_file (temp sibling,
// fsync, rename), so a kill at any instant leaves either the old file or the
// new one — never a truncated half.  Recovery is a pure function of the
// directory: jobs with a result file are terminal; the rest resume from
// their checkpoint when one exists, else restart from their spec.  Both
// paths land on bit-identical results (fixed seeds).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace glova::serve {

/// Immutable submission record: what was asked for, by whom.
struct JobRecord {
  std::string id;
  std::string tenant;
  std::string spec_text;  ///< SweepSpec::to_string() form
};

/// Terminal outcome as persisted: the job's final state name plus the
/// canonical result text (empty for cancelled-before-finish jobs).
struct TerminalRecord {
  std::string state;
  std::string text;
};

class JobStore {
 public:
  /// Creates the spool layout if absent; throws std::runtime_error when the
  /// directories cannot be created.
  explicit JobStore(std::string spool_dir);

  [[nodiscard]] const std::string& spool_dir() const { return spool_dir_; }
  [[nodiscard]] std::string checkpoint_path(const std::string& id) const;

  void save_job(const JobRecord& record) const;
  /// Every persisted job record, sorted by id (submission order, since ids
  /// are zero-padded sequence numbers).
  [[nodiscard]] std::vector<JobRecord> load_jobs() const;

  void save_result(const std::string& id, std::string_view state,
                   const std::string& text) const;
  [[nodiscard]] std::optional<TerminalRecord> load_result(const std::string& id) const;

  void remove_checkpoint(const std::string& id) const;

  /// Highest numeric suffix among persisted "job-<n>" ids (0 when none);
  /// restarted servers continue the id sequence instead of reusing ids.
  [[nodiscard]] std::uint64_t max_job_number() const;

 private:
  std::string spool_dir_;
  std::string job_path(const std::string& id) const;
  std::string result_path(const std::string& id) const;
};

}  // namespace glova::serve
