// The behavioral-vs-SPICE parity grid: realistic design points, PVT
// corners, and the deterministic local-mismatch draw recipe.  Shared by
// tests/test_backend_parity.cpp (which asserts the tolerance bands) and
// tools/probe_parity.cpp (which prints the ratio table the bands are
// re-recorded from), so the recorded bands always correspond to exactly
// the points the test evaluates.
//
// The designs are deliberately *not* design-space midpoints: at multi-pF
// loads the latch never decides inside its clock phase and the reservoir
// never droops, so parity there would compare two failure modes.  They are
// the bench_micro/pinned-regression sizing points, the known-robust
// designs from test_circuits.cpp, and moderate spreads around them.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "circuits/registry.hpp"
#include "common/rng.hpp"
#include "pdk/variation.hpp"

namespace glova::parity_grid {

inline std::vector<std::vector<double>> designs_x01(circuits::Testcase tc) {
  switch (tc) {
    case circuits::Testcase::Sal:
      return {
          {0.2, 0.3, 0.2, 0.2, 0.2, 0.1, 0.2, 0.0, 0.0, 0.0, 0.0, 0.0, 0.05, 0.01},
          {0.056, 0.504, 0.455, 0.121, 0.174, 0.035, 1.0, 0.0, 0.16, 0.0, 0.061, 0.118, 0.027,
           0.0},
          {0.3, 0.45, 0.3, 0.25, 0.3, 0.15, 0.1, 0.0, 0.05, 0.0, 0.0, 0.05, 0.1, 0.02},
          {0.1, 0.2, 0.15, 0.1, 0.1, 0.05, 0.3, 0.1, 0.1, 0.1, 0.1, 0.1, 0.02, 0.005},
      };
    case circuits::Testcase::Fia:
      return {
          {0.05, 0.25, 0.5, 0.3, 0.003, 0.001},
          {0.3, 0.3, 0.1, 0.1, 0.01, 0.005},
          {0.15, 0.4, 0.3, 0.2, 0.02, 0.01},
          {0.5, 0.5, 0.05, 0.05, 0.05, 0.02},
      };
    case circuits::Testcase::DramOcsa:
      return {
          {1.0, 1.0, 1.0, 0.0, 0.0, 0.3, 1.0, 1.0, 1.0, 0.0, 1.0, 1.0},
          {0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5},
          {0.7, 0.6, 0.8, 0.3, 0.4, 0.6, 0.8, 0.7, 0.9, 0.2, 0.8, 0.9},
          {0.3, 0.4, 0.4, 0.6, 0.7, 0.4, 0.3, 0.4, 0.5, 0.6, 0.4, 0.3},
      };
  }
  return {};
}

inline std::vector<pdk::PvtCorner> corners() {
  return {
      pdk::typical_corner(),
      pdk::PvtCorner{pdk::ProcessCorner::SS, 0.8, 85.0, true},
      pdk::PvtCorner{pdk::ProcessCorner::FF, 1.0, -25.0, true},
  };
}

/// The coldest low-voltage corner: slow process, minimum vdd, -40C.  Vth
/// rises ~54 mV over typical here, so mid-rail gate drives sit *below*
/// threshold — the Level-1 hard cutoff cannot evaluate this corner, while
/// the EKV model conducts through weak inversion.  Only the ekv parity rows
/// include it.
inline pdk::PvtCorner cold_low_voltage_corner() {
  return pdk::PvtCorner{pdk::ProcessCorner::SS, 0.8, -40.0, true};
}

/// One fixed local-only mismatch draw per design (the offset-relevant
/// statistics), deterministic in the design index.
inline std::vector<double> local_draw(const circuits::Testbench& tb, std::span<const double> x,
                                      std::size_t design_index) {
  Rng rng(100 + design_index);
  const auto layout = tb.mismatch_layout(x, false);
  return pdk::sample_mismatch_set(layout, 1, rng, pdk::GlobalMode::Zero)[0];
}

}  // namespace glova::parity_grid
