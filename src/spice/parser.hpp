// Text netlist parser for a practical subset of SPICE syntax, so examples
// and tests can describe circuits the way an analog designer would:
//
//   * comment
//   R1 out 0 10k
//   C1 out 0 100f IC=0.9
//   VDD vdd 0 0.9
//   VIN in 0 PULSE(0 0.9 0 10p 10p 1n 2n)
//   M1 out in 0 NMOS W=1u L=30n
//   .tran 1p 5n
//   .ic V(out)=0.9
//   .end
//
// MOSFET model cards resolve through the pdk at a caller-supplied PVT corner
// so parsed netlists see the same process/temperature behaviour as
// programmatically built ones.  Unit suffixes: f p n u m k meg g t.
#pragma once

#include <optional>
#include <string>

#include "pdk/corner.hpp"
#include "spice/circuit.hpp"
#include "spice/simulator.hpp"

namespace glova::spice {

struct ParsedNetlist {
  std::string title;
  Circuit circuit;
  std::optional<TransientSpec> tran;
};

/// Parse a netlist; throws std::runtime_error with a line-numbered message
/// on malformed input.  `corner` selects device parameters for M cards.
[[nodiscard]] ParsedNetlist parse_netlist(const std::string& text,
                                          const pdk::PvtCorner& corner = pdk::typical_corner());

/// Parse a SPICE number with optional unit suffix ("10k", "100f", "3meg").
[[nodiscard]] double parse_spice_number(const std::string& token);

}  // namespace glova::spice
