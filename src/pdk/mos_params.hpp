// Device-parameter model for an advanced 28 nm bulk CMOS process.
//
// These parameters drive both the SPICE Level-1 MOSFET model and the
// behavioral circuit evaluators.  The chain is:
//   nominal 28 nm values  ->  process-corner shift (CornerFactors)
//   ->  temperature dependence (mobility ~ T^-1.5, Vth ~ -0.8 mV/K)
//   ->  per-device mismatch (delta_vth [V], delta_beta [relative]).
#pragma once

#include "pdk/corner.hpp"

namespace glova::pdk {

/// Effective square-law parameters of one transistor instance under a given
/// PVT condition and mismatch realization.
struct MosParams {
  double vth = 0.38;     ///< |threshold voltage| [V]
  double kp = 350e-6;    ///< transconductance parameter u*Cox [A/V^2]
  double lambda = 0.10;  ///< channel-length modulation [1/V]
  bool is_pmos = false;
  double temp_k = 300.0;   ///< device temperature [K]; sets the EKV subthreshold slope
  double kf = 1.0e-26;     ///< flicker coefficient in S_id(f) = kf * |Id|^af / f [A^2/Hz units]
  double af = 1.0;         ///< flicker current exponent
  double gamma_n = 0.7;    ///< thermal channel-noise excess factor (S_id = 4 k T gamma gm)
};

/// EKV subthreshold slope factor n (bulk, typical): v_char = 2 n vt.
inline constexpr double kEkvSlopeFactor = 1.3;

/// Nominal (TT, 27 C, no mismatch) parameter set for the technology.
struct TechnologyNominal {
  double vth_n = 0.38;       ///< [V]
  double vth_p = 0.42;       ///< magnitude [V]
  double kp_n = 350e-6;      ///< [A/V^2]
  double kp_p = 150e-6;      ///< [A/V^2]
  double lambda0 = 0.12;     ///< [1/V] at L = Lmin
  double l_min = 30e-9;      ///< [m]
  double vth_tc = -0.8e-3;   ///< Vth temperature coefficient [V/K]
  double mobility_exp = 1.5; ///< mobility ~ (T/T0)^-exp
  double kf_n = 1.0e-26;     ///< NMOS flicker coefficient (S_id = kf |Id|^af / f)
  double kf_p = 0.5e-26;     ///< PMOS flicker coefficient (buried channel: quieter)
  double gamma_noise = 0.7;  ///< thermal channel-noise excess factor
};

[[nodiscard]] const TechnologyNominal& technology_28nm();

/// Compute the effective parameters of a device instance.
/// `delta_vth` shifts the threshold magnitude (positive = slower device);
/// `delta_beta_rel` scales kp multiplicatively (e.g. +0.02 = +2 %).
/// `length` sets channel-length modulation: lambda = lambda0 * Lmin / L.
[[nodiscard]] MosParams mos_params(bool is_pmos, const PvtCorner& corner, double length,
                                   double delta_vth = 0.0, double delta_beta_rel = 0.0);

/// Square-law drain current with channel-length modulation.
/// Voltages are terminal magnitudes referred to the source (vgs, vds >= 0 for
/// "on" operation of either polarity; callers flip signs for PMOS).
[[nodiscard]] double square_law_id(const MosParams& p, double w_over_l, double vgs, double vds);

/// EKV-style smooth drain current: identical to the square law in strong
/// inversion but with a soft subthreshold transition, so behavioral models
/// stay differentiable (and non-zero) when slow corners push devices toward
/// weak inversion.  `temp_k` sets the subthreshold slope via the thermal
/// voltage.  The model is source/drain symmetric: for vds < 0 the terminals
/// swap roles and the current sign flips.
[[nodiscard]] double ekv_id(const MosParams& p, double w_over_l, double vgs, double vds,
                            double temp_k);

/// Transconductance d(ekv_id)/d(vgs), analytically consistent with ekv_id.
/// Recovers k*Vov in strong inversion and Id/(n*vt) in weak inversion, where
/// the classic gm = 2*Id/Vov estimate collapses.  Source/drain symmetric like
/// ekv_id.
[[nodiscard]] double ekv_gm(const MosParams& p, double w_over_l, double vgs, double vds,
                            double temp_k);

/// The smoothed overdrive used by ekv_id: 2 n vt ln(1 + exp(vov / (2 n vt))).
[[nodiscard]] double ekv_overdrive(double vov, double temp_k);

/// d(ekv_overdrive)/d(vov): the logistic sigmoid of vov / (2 n vt).
[[nodiscard]] double ekv_overdrive_slope(double vov, double temp_k);

}  // namespace glova::pdk
