// Convergence-recovery ladder, evaluation deadlines, and deterministic fault
// injection: every rescue rung (DC gmin stepping, transient substep cutting,
// restart-from-DC), the cooperative Newton-iteration deadline, scalar/batch
// failure-message parity, per-lane escalation inside a batch, the engine's
// retry / degrade funnel, and the defaults-off bit-identity guarantee.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "backend_parity_grid.hpp"
#include "circuits/registry.hpp"
#include "circuits/testbench.hpp"
#include "core/evaluation_engine.hpp"
#include "spice/batch.hpp"
#include "spice/circuit.hpp"
#include "spice/counters.hpp"
#include "spice/simulator.hpp"
#include "spice/warm_start.hpp"
#include "spice/waveform.hpp"

namespace glova::spice {
namespace {

constexpr std::uint64_t kAll = std::numeric_limits<std::uint64_t>::max();

/// RC lowpass driven by a pulse, tau = R * 1 fF comparable to the run length
/// so the waveform actually moves.  One solved unknown ("out"; the source
/// node is absorbed), so every Newton solve is one fault-plan index.
Circuit rc_circuit(double r_ohms = 1e3) {
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  ckt.add_vsource("VIN", in, Circuit::ground(),
                  Waveform::pulse(0.0, 1.0, 2e-12, 2e-12, 2e-12, 4e-12, 20e-12));
  ckt.add_resistor("R1", in, out, r_ohms);
  ckt.add_capacitor("C1", out, Circuit::ground(), 1e-15);
  return ckt;
}

TransientSpec rc_spec() {
  TransientSpec spec;
  spec.t_stop = 10e-12;
  spec.dt = 1e-12;
  spec.record = {"out"};
  return spec;
}

FaultPlan one_site(std::uint64_t begin, std::uint64_t end, FaultPlan::Kind kind,
                   int extra = 50) {
  FaultPlan plan;
  plan.sites.push_back({begin, end, kind, extra});
  return plan;
}

/// RAII fault-plan installation so no test leaks a plan into the next.
class ScopedFaults {
 public:
  explicit ScopedFaults(const FaultPlan* plan) { set_thread_fault_plan(plan); }
  ~ScopedFaults() { set_thread_fault_plan(nullptr); }
};

TEST(FaultPlan, MatchesHalfOpenSiteRanges) {
  const FaultPlan plan = one_site(2, 4, FaultPlan::Kind::NanStamp);
  EXPECT_EQ(plan.match(1), nullptr);
  ASSERT_NE(plan.match(2), nullptr);
  EXPECT_EQ(plan.match(2)->kind, FaultPlan::Kind::NanStamp);
  ASSERT_NE(plan.match(3), nullptr);
  EXPECT_EQ(plan.match(4), nullptr);
}

// Pins the solve numbering the rest of this file relies on: a converging
// scalar run consumes one index for the cold DC solve and one per timestep.
TEST(FaultPlan, EmptyPlanCountsEverySolve) {
  const Circuit ckt = rc_circuit();
  FaultPlan probe;  // no sites: pure dry-run counter
  ScopedFaults guard(&probe);
  Simulator sim(ckt, SimulatorOptions{});
  const TransientResult res = sim.transient(rc_spec());
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(probe.cursor, 1u + res.steps_accepted);
}

TEST(Recovery, DefaultsOffIsBitIdenticalToRecoveryEnabledWithoutFailures) {
  const Circuit ckt = rc_circuit();
  SimulatorOptions plain;
  SimulatorOptions armed;
  armed.recovery.enabled = true;
  armed.deadline_newton_iterations = 1u << 30;

  Simulator a(ckt, plain);
  Simulator b(ckt, armed);
  const TransientResult ra = a.transient(rc_spec());
  const TransientResult rb = b.transient(rc_spec());
  ASSERT_TRUE(ra.ok);
  ASSERT_TRUE(rb.ok);
  EXPECT_EQ(ra.failure.stage, FailureStage::None);
  ASSERT_EQ(ra.times, rb.times);
  ASSERT_EQ(ra.traces.size(), rb.traces.size());
  for (std::size_t i = 0; i < ra.traces.size(); ++i) {
    EXPECT_EQ(ra.traces[i].values, rb.traces[i].values) << ra.traces[i].name;
  }
}

TEST(Recovery, GminLadderRescuesAFaultedOperatingPoint) {
  const Circuit ckt = rc_circuit();
  SimulatorOptions opts;

  // Reference solution and the standard (always-on) ladder's solve count:
  // faulting every solve makes the cold attempt and the source-stepping ramp
  // all fail, and the cursor afterwards is exactly that ladder's length.
  OpResult reference;
  {
    Simulator sim(ckt, opts);
    reference = sim.operating_point();
    ASSERT_TRUE(reference.converged);
  }
  FaultPlan all = one_site(0, kAll, FaultPlan::Kind::NonConverge);
  std::uint64_t standard_ladder = 0;
  {
    ScopedFaults guard(&all);
    Simulator sim(ckt, opts);
    const OpResult op = sim.operating_point();
    EXPECT_FALSE(op.converged);
    standard_ladder = all.cursor;
  }
  ASSERT_GT(standard_ladder, 1u);

  // Fault exactly the standard ladder; only the gmin rungs can save the run.
  const SpiceCounters before = spice_counters();
  FaultPlan fp = one_site(0, standard_ladder, FaultPlan::Kind::NonConverge);
  SimulatorOptions armed = opts;
  armed.recovery.enabled = true;
  ScopedFaults guard(&fp);
  Simulator sim(ckt, armed);
  const OpResult op = sim.operating_point();
  ASSERT_TRUE(op.converged);
  ASSERT_EQ(op.node_voltages.size(), reference.node_voltages.size());
  for (std::size_t i = 0; i < op.node_voltages.size(); ++i) {
    EXPECT_NEAR(op.node_voltages[i], reference.node_voltages[i], 1e-6);
  }
  EXPECT_EQ(spice_counters().recovered_dc, before.recovered_dc + 1);

  // Without recovery the same fault pattern stays fatal.
  FaultPlan fp2 = one_site(0, standard_ladder, FaultPlan::Kind::NonConverge);
  fp2.cursor = 0;
  set_thread_fault_plan(&fp2);
  Simulator plain(ckt, opts);
  EXPECT_FALSE(plain.operating_point().converged);
}

TEST(Recovery, TransientDcFailureReportsTheDcStage) {
  const Circuit ckt = rc_circuit();
  const FaultPlan all = one_site(0, kAll, FaultPlan::Kind::NonConverge);
  ScopedFaults guard(&all);
  Simulator sim(ckt, SimulatorOptions{});
  const TransientResult res = sim.transient(rc_spec());
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.failure.stage, FailureStage::DcOperatingPoint);
  EXPECT_FALSE(res.error.empty());
  EXPECT_EQ(res.error, res.failure.to_string());
}

TEST(Recovery, StepCuttingRescuesAFaultedTransientStep) {
  const Circuit ckt = rc_circuit();
  const TransientSpec spec = rc_spec();

  Simulator ref_sim(ckt, SimulatorOptions{});
  const TransientResult ref = ref_sim.transient(spec);
  ASSERT_TRUE(ref.ok);

  // Solve index 3 is the third timestep (t = 3 ps); only that solve faults,
  // so the first cut's backward-Euler substeps land on clean indices.
  {
    const FaultPlan fp = one_site(3, 4, FaultPlan::Kind::NonConverge);
    ScopedFaults guard(&fp);
    Simulator sim(ckt, SimulatorOptions{});
    const TransientResult res = sim.transient(spec);
    EXPECT_FALSE(res.ok);
    EXPECT_EQ(res.failure.stage, FailureStage::TransientNewton);
    EXPECT_DOUBLE_EQ(res.failure.time, 3e-12);
    EXPECT_FALSE(res.failure.worst_node.empty());
  }

  const SpiceCounters before = spice_counters();
  const FaultPlan fp = one_site(3, 4, FaultPlan::Kind::NonConverge);
  ScopedFaults guard(&fp);
  SimulatorOptions armed;
  armed.recovery.enabled = true;
  Simulator sim(ckt, armed);
  const TransientResult res = sim.transient(spec);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(spice_counters().recovered_transient, before.recovered_transient + 1);
  // Substep cutting records only at the original grid point: same time axis,
  // values within the rung's integration-order difference (the substeps are
  // first-order backward Euler against the trapezoidal reference).
  ASSERT_EQ(res.times, ref.times);
  const auto& rescued = res.trace("out");
  const auto& reference = ref.trace("out");
  ASSERT_EQ(rescued.size(), reference.size());
  for (std::size_t i = 0; i < rescued.size(); ++i) {
    EXPECT_NEAR(rescued[i], reference[i], 0.1) << "sample " << i;
  }
}

TEST(Recovery, DcRestartRescuesWhenStepCutsAreExhausted) {
  const Circuit ckt = rc_circuit();
  const SpiceCounters before = spice_counters();
  const FaultPlan fp = one_site(3, 4, FaultPlan::Kind::NonConverge);
  ScopedFaults guard(&fp);
  SimulatorOptions armed;
  armed.recovery.enabled = true;
  armed.recovery.max_step_cuts = 0;  // skip straight to the restart rung
  armed.recovery.dc_restart_attempts = 1;
  Simulator sim(ckt, armed);
  const TransientResult res = sim.transient(rc_spec());
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.failure.stage, FailureStage::None);
  EXPECT_EQ(spice_counters().recovered_transient, before.recovered_transient + 1);
}

TEST(Recovery, NanStampAndSingularMatrixFaultsAreRescued) {
  const Circuit ckt = rc_circuit();
  for (const FaultPlan::Kind kind :
       {FaultPlan::Kind::NanStamp, FaultPlan::Kind::SingularMatrix}) {
    {
      const FaultPlan fp = one_site(3, 4, kind);
      ScopedFaults guard(&fp);
      Simulator sim(ckt, SimulatorOptions{});
      const TransientResult res = sim.transient(rc_spec());
      EXPECT_FALSE(res.ok);
      EXPECT_EQ(res.failure.stage, FailureStage::TransientNewton);
    }
    const FaultPlan fp = one_site(3, 4, kind);
    ScopedFaults guard(&fp);
    SimulatorOptions armed;
    armed.recovery.enabled = true;
    Simulator sim(ckt, armed);
    const TransientResult res = sim.transient(rc_spec());
    EXPECT_TRUE(res.ok) << res.error;
  }
}

TEST(Recovery, DeadlineAbortsDeterministically) {
  const Circuit ckt = rc_circuit();
  SimulatorOptions opts;
  opts.deadline_newton_iterations = 8;
  const FaultPlan fp = one_site(0, kAll, FaultPlan::Kind::SlowConverge, 50);

  const SpiceCounters before = spice_counters();
  {
    ScopedFaults guard(&fp);
    Simulator sim(ckt, opts);
    const TransientResult res = sim.transient(rc_spec());
    EXPECT_FALSE(res.ok);
    EXPECT_EQ(res.failure.stage, FailureStage::Deadline);
    EXPECT_EQ(res.error, res.failure.to_string());
  }
  EXPECT_EQ(spice_counters().deadline_aborts, before.deadline_aborts + 1);

  // Per lane in the batched evaluator: the same deadline, the same stage.
  const FaultPlan fp2 = one_site(0, kAll, FaultPlan::Kind::SlowConverge, 50);
  ScopedFaults guard(&fp2);
  std::vector<Circuit> lanes;
  lanes.push_back(rc_circuit());
  BatchSimulator batch(lanes, opts);
  const auto results = batch.transient(rc_spec());
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].ok);
  EXPECT_EQ(results[0].failure.stage, FailureStage::Deadline);
}

// Satellite guarantee: the sequential and batched evaluators render the same
// structured report — byte-identical error strings for the same failure.
TEST(Recovery, FailureMessagesMatchBetweenScalarAndBatch) {
  const Circuit ckt = rc_circuit();
  const TransientSpec spec = rc_spec();

  TransientResult scalar;
  {
    const FaultPlan fp = one_site(3, 4, FaultPlan::Kind::NonConverge);
    ScopedFaults guard(&fp);
    Simulator sim(ckt, SimulatorOptions{});
    scalar = sim.transient(spec);
  }
  std::vector<TransientResult> batch_res;
  {
    const FaultPlan fp = one_site(3, 4, FaultPlan::Kind::NonConverge);
    ScopedFaults guard(&fp);
    std::vector<Circuit> lanes;
    lanes.push_back(ckt);
    BatchSimulator batch(lanes, SimulatorOptions{});
    batch_res = batch.transient(spec);
  }
  ASSERT_EQ(batch_res.size(), 1u);
  EXPECT_FALSE(scalar.ok);
  EXPECT_FALSE(batch_res[0].ok);
  EXPECT_EQ(scalar.failure.stage, batch_res[0].failure.stage);
  EXPECT_DOUBLE_EQ(scalar.failure.time, batch_res[0].failure.time);
  EXPECT_EQ(scalar.failure.worst_node, batch_res[0].failure.worst_node);
  EXPECT_EQ(scalar.error, batch_res[0].error);
}

TEST(Recovery, BatchLaneEscalatesAloneWithoutDisturbingItsNeighbors) {
  std::vector<Circuit> lanes;
  lanes.push_back(rc_circuit(1e3));
  lanes.push_back(rc_circuit(1.5e3));
  lanes.push_back(rc_circuit(2e3));
  const TransientSpec spec = rc_spec();
  SimulatorOptions opts;

  BatchSimulator ref(lanes, opts);
  const auto reference = ref.transient(spec);
  for (const auto& r : reference) ASSERT_TRUE(r.ok) << r.error;

  // Solve numbering inside a batch: one DC solve per lane (0..2), then one
  // index per alive lane per timestep in lane order.  Index 7 is lane 1 at
  // the second timestep.
  const std::uint64_t lane1_step2 = 3 + 3 + 1;

  // Recovery off: the faulted lane is retired alone; the others finish with
  // bit-identical traces.
  {
    const FaultPlan fp = one_site(lane1_step2, lane1_step2 + 1, FaultPlan::Kind::NonConverge);
    ScopedFaults guard(&fp);
    BatchSimulator batch(lanes, opts);
    const auto results = batch.transient(spec);
    EXPECT_TRUE(results[0].ok);
    EXPECT_FALSE(results[1].ok);
    EXPECT_TRUE(results[2].ok);
    EXPECT_EQ(results[1].failure.stage, FailureStage::TransientNewton);
    EXPECT_DOUBLE_EQ(results[1].failure.time, 2e-12);
    EXPECT_EQ(results[0].trace("out"), reference[0].trace("out"));
    EXPECT_EQ(results[2].trace("out"), reference[2].trace("out"));
  }

  // Recovery on: only the failing lane escalates (scalar substep rescue);
  // untouched lanes stay bit-identical, the rescued one lands within the
  // substeps' tolerance.
  const SpiceCounters before = spice_counters();
  const FaultPlan fp = one_site(lane1_step2, lane1_step2 + 1, FaultPlan::Kind::NonConverge);
  ScopedFaults guard(&fp);
  SimulatorOptions armed = opts;
  armed.recovery.enabled = true;
  BatchSimulator batch(lanes, armed);
  const auto results = batch.transient(spec);
  for (const auto& r : results) ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(spice_counters().recovered_transient, before.recovered_transient + 1);
  EXPECT_EQ(results[0].trace("out"), reference[0].trace("out"));
  EXPECT_EQ(results[2].trace("out"), reference[2].trace("out"));
  const auto& rescued = results[1].trace("out");
  const auto& lane1_ref = reference[1].trace("out");
  ASSERT_EQ(rescued.size(), lane1_ref.size());
  for (std::size_t i = 0; i < rescued.size(); ++i) {
    EXPECT_NEAR(rescued[i], lane1_ref[i], 5e-2) << "sample " << i;
  }
}

TEST(Recovery, EscalationLevelsShapeTheDefaultOptions) {
  set_recovery_default(false);
  set_recovery_escalation(0);
  EXPECT_FALSE(default_simulator_options().recovery.enabled);
  set_recovery_escalation(1);
  EXPECT_TRUE(default_simulator_options().recovery.enabled);
  set_recovery_escalation(2);
  const SimulatorOptions o = default_simulator_options();
  EXPECT_TRUE(o.recovery.enabled);
  EXPECT_GT(o.recovery.max_gmin_rungs, RecoveryPolicy{}.max_gmin_rungs);
  EXPECT_GT(o.recovery.max_step_cuts, RecoveryPolicy{}.max_step_cuts);
  set_recovery_escalation(0);
}

// ---------------------------------------------------------------------------
// The engine-level funnel: structured errors out of the backends, escalated
// retries, degradation quarantine, and the EngineStats taxonomy.

/// Restore every process-wide simulator switch the engine tests touch.
void reset_simulator_defaults() {
  set_adaptive_timestep_default(false);
  set_newton_bypass_default(false);
  set_recovery_default(false);
  set_deadline_default(0);
  set_recovery_escalation(0);
  set_dc_warm_start_enabled(true);
}

struct SalFixture {
  circuits::TestbenchPtr tb;
  std::vector<double> x;
  pdk::PvtCorner corner;

  SalFixture() {
    tb = circuits::make_testbench(circuits::Testcase::Sal, circuits::Backend::Spice);
    x = tb->sizing().denormalize(parity_grid::designs_x01(circuits::Testcase::Sal)[0]);
    corner = parity_grid::corners()[0];
  }
};

TEST(EngineFunnel, BackendsRaiseStructuredErrorsWithPenaltyMetrics) {
  reset_simulator_defaults();
  SalFixture fx;
  thread_local_dc_cache().clear();
  const FaultPlan all = one_site(0, kAll, FaultPlan::Kind::NonConverge);
  ScopedFaults guard(&all);
  try {
    (void)fx.tb->evaluate(fx.x, fx.corner, {});
    FAIL() << "expected EvaluationError";
  } catch (const circuits::EvaluationError& e) {
    EXPECT_TRUE(e.failure().failed);
    EXPECT_FALSE(e.failure().stage.empty());
    EXPECT_FALSE(e.failure().message.empty());
    EXPECT_EQ(e.penalty_metrics(), (std::vector<double>{1.0, 1.0, 1.0, 1.0}));
  }
}

TEST(EngineFunnel, PenaltyPathIsTheDefaultAndNeverThrows) {
  reset_simulator_defaults();
  SalFixture fx;
  core::EngineConfig config;
  config.cache_capacity = 0;
  core::EvaluationEngine engine(fx.tb, config);
  thread_local_dc_cache().clear();
  const FaultPlan all = one_site(0, kAll, FaultPlan::Kind::NonConverge);
  ScopedFaults guard(&all);
  const auto metrics = engine.evaluate_one(fx.x, fx.corner, {});
  EXPECT_EQ(metrics, (std::vector<double>{1.0, 1.0, 1.0, 1.0}));
  const core::EngineStats stats = engine.stats();
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.degraded_evals, 0u);
  reset_simulator_defaults();
}

TEST(EngineFunnel, EscalatedRetryRecoversATransientFault) {
  reset_simulator_defaults();
  SalFixture fx;

  // Reference metrics and the per-evaluation solve budget F: a clean run's
  // cursor tells how many solves one evaluation consumes, and a fault-all
  // failing attempt consumes at most as many before throwing.
  thread_local_dc_cache().clear();
  FaultPlan probe;
  set_thread_fault_plan(&probe);
  const auto reference = fx.tb->evaluate(fx.x, fx.corner, {});
  set_thread_fault_plan(nullptr);
  const std::uint64_t clean_solves = probe.cursor;
  ASSERT_GT(clean_solves, 0u);

  std::uint64_t failing_solves = 0;
  {
    thread_local_dc_cache().clear();
    const FaultPlan all = one_site(0, kAll, FaultPlan::Kind::NonConverge);
    ScopedFaults guard(&all);
    EXPECT_THROW((void)fx.tb->evaluate(fx.x, fx.corner, {}), circuits::EvaluationError);
    failing_solves = all.cursor;
  }

  // Fault exactly one failing attempt; the escalated retry runs clean.
  core::EngineConfig config;
  config.cache_capacity = 0;
  config.max_eval_retries = 2;
  core::EvaluationEngine engine(fx.tb, config);
  thread_local_dc_cache().clear();
  const FaultPlan fp = one_site(0, failing_solves, FaultPlan::Kind::NonConverge);
  ScopedFaults guard(&fp);
  const auto metrics = engine.evaluate_one(fx.x, fx.corner, {});
  ASSERT_EQ(metrics.size(), reference.size());
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    EXPECT_NEAR(metrics[i], reference[i], 1e-3 * std::max(1.0, std::abs(reference[i])))
        << "metric " << i;
  }
  const core::EngineStats stats = engine.stats();
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.degraded_evals, 0u);
  EXPECT_EQ(stats.requested, 1u);
  // The escalation level never leaks to neighboring evaluations.
  EXPECT_EQ(recovery_escalation(), 0);
  reset_simulator_defaults();
}

TEST(EngineFunnel, DegradationQuarantinesToTheBehavioralSibling) {
  reset_simulator_defaults();
  SalFixture fx;
  ASSERT_NE(fx.tb->degraded_fallback(), nullptr);

  const auto behavioral =
      circuits::make_testbench(circuits::Testcase::Sal, circuits::Backend::Behavioral);
  const auto expected = behavioral->evaluate(fx.x, fx.corner, {});

  core::EngineConfig config;
  config.cache_capacity = 0;
  config.degrade_to_behavioral = true;
  core::EvaluationEngine engine(fx.tb, config);
  thread_local_dc_cache().clear();
  const FaultPlan all = one_site(0, kAll, FaultPlan::Kind::NonConverge);
  ScopedFaults guard(&all);
  const auto metrics = engine.evaluate_one(fx.x, fx.corner, {});
  EXPECT_EQ(metrics, expected);
  const core::EngineStats stats = engine.stats();
  EXPECT_EQ(stats.degraded_evals, 1u);
  reset_simulator_defaults();
}

TEST(EngineFunnel, StatsSurfaceTheRecoveryCounters) {
  reset_simulator_defaults();
  SalFixture fx;
  core::EvaluationEngine engine(fx.tb, core::EngineConfig{});
  // Process-wide recovery counters noted after engine construction surface
  // in EngineStats as deltas against the construction snapshot (the same
  // convention as the dc_warm_* counters).
  const Circuit ckt = rc_circuit();
  const FaultPlan fp = one_site(3, 4, FaultPlan::Kind::NonConverge);
  ScopedFaults guard(&fp);
  SimulatorOptions armed;
  armed.recovery.enabled = true;
  Simulator sim(ckt, armed);
  const TransientResult res = sim.transient(rc_spec());
  ASSERT_TRUE(res.ok) << res.error;
  const core::EngineStats stats = engine.stats();
  EXPECT_EQ(stats.recovered_transient, 1u);
  EXPECT_EQ(stats.deadline_aborts, 0u);
  EXPECT_EQ(stats.retries, 0u);
  reset_simulator_defaults();
}

}  // namespace
}  // namespace glova::spice
