// MOSFET channel linearizations shared by the scalar Newton loop
// (simulator.cpp) and the batched lockstep evaluator (batch.cpp).
//
// Two channel models live here behind the same linearization interface:
//   - Level-1 square law (default): hard cutoff below Vth, the historical
//     model every pinned baseline was recorded against.
//   - EKV-style continuous model (`MosModel::kEkv`): forward-minus-reverse
//     softplus interpolation with characteristic voltage 2*n*vt, so the
//     channel conducts continuously from weak through strong inversion and
//     gm/gds stay consistent analytic derivatives of Id.  See
//     docs/architecture.md#mos-models.
//
// Both translation units are compiled with GLOVA_SPICE_KERNEL_FLAGS, and the
// functions are inline, so the scalar and batched paths evaluate the exact
// same floating-point expressions — a requirement for the batched path's
// bit-identical parity with sequential evaluation.
#pragma once

#include <cmath>

#include "common/units.hpp"
#include "pdk/mos_params.hpp"

namespace glova::spice {

/// Channel model selector (SimulatorOptions::mos_model, RunSpec `mos_model`).
enum class MosModel : unsigned char {
  kLevel1 = 0,  ///< square law with hard sub-Vth cutoff
  kEkv = 1,     ///< continuous weak/strong-inversion interpolation
};

/// Linearized MOSFET: drain-to-source current and its partial derivatives
/// with respect to the gate, drain and source node voltages.
struct MosLinearization {
  double i_ds = 0.0;
  double d_vg = 0.0;
  double d_vd = 0.0;
  double d_vs = 0.0;
};

/// Square-law evaluation for an NMOS-oriented channel (vds >= 0 assumed by
/// the caller): returns current and (gm, gds).
struct NmosEval {
  double id = 0.0;
  double gm = 0.0;
  double gds = 0.0;
};

inline NmosEval nmos_square_law(const pdk::MosParams& p, double w_over_l, double vgs, double vds) {
  NmosEval e;
  const double vov = vgs - p.vth;
  // Cutoff is a gate condition only.  vds == 0 must land in the triode
  // branch: the current is zero there but the channel conductance is
  // k*Vov, and stamping gds = 0 instead starves Newton of the very
  // derivative it needs to move a pass-gate node off equal bias.
  if (vov <= 0.0) return e;  // cutoff
  const double k = p.kp * w_over_l;
  if (vds < vov) {
    // Triode region.
    const double clm = 1.0 + p.lambda * vds;
    e.id = k * (vov - 0.5 * vds) * vds * clm;
    e.gm = k * vds * clm;
    e.gds = k * ((vov - vds) * clm + (vov - 0.5 * vds) * vds * p.lambda);
  } else {
    // Saturation.
    const double clm = 1.0 + p.lambda * vds;
    e.id = 0.5 * k * vov * vov * clm;
    e.gm = k * vov * clm;
    e.gds = 0.5 * k * vov * vov * p.lambda;
  }
  return e;
}

/// EKV-style continuous evaluation (vds >= 0 assumed by the caller), in the
/// forward-minus-reverse interpolation form:
///
///   Id = (k/2) * v_char^2 * [sp(zf)^2 - sp(zr)^2] * (1 + lambda*vds)
///   zf = (Vgs - Vth) / v_char,  zr = (Vgs - Vth - Vds) / v_char
///
/// with sp = softplus (ln(1+e^z)) and v_char = 2*n*vt.  Strong inversion
/// recovers the square law exactly in triode and to well under 0.1% in
/// saturation (the reverse term decays as e^(2*zr)); weak inversion gives
/// the exponential characteristic with gm = Id/(n*vt).
///
/// The forward-minus-reverse split — rather than a smoothed overdrive
/// bolted onto the square-law branch structure — is what keeps Newton
/// stable: *both* terminal derivatives stay exponentially alive through
/// weak inversion, so gds never collapses to the bare lambda slope.  (A
/// smoothed-overdrive variant leaves a reverse-saturated weak channel with
/// gds ~ lambda*Id ~ 1e-11 S next to an exponential forward slope; Newton
/// then limit-cycles across the source/drain swap point — observed on the
/// SAL amplify-phase operating point.)
inline NmosEval nmos_ekv(const pdk::MosParams& p, double w_over_l, double vgs, double vds) {
  NmosEval e;
  const double v_char = 2.0 * pdk::kEkvSlopeFactor * units::thermal_voltage(p.temp_k);
  const auto half_charge = [](double z, double& sp, double& sig) {
    if (z > 30.0) {
      sp = z;
      sig = 1.0;
    } else if (z < -30.0) {
      sp = std::exp(z);
      sig = sp;
    } else {
      const double ez = std::exp(z);
      sp = std::log1p(ez);
      sig = ez / (1.0 + ez);
    }
  };
  double spf;
  double sigf;
  double spr;
  double sigr;
  half_charge((vgs - p.vth) / v_char, spf, sigf);
  half_charge((vgs - p.vth - vds) / v_char, spr, sigr);
  const double k = p.kp * w_over_l;
  const double clm = 1.0 + p.lambda * vds;
  const double i0 = 0.5 * k * v_char * v_char * (spf * spf - spr * spr);
  e.id = i0 * clm;
  e.gm = k * v_char * (spf * sigf - spr * sigr) * clm;
  e.gds = k * v_char * spr * sigr * clm + i0 * p.lambda;
  return e;
}

/// Channel evaluation dispatch.  Level-1 keeps the exact historical
/// expressions; the branch is on a plan-constant enum so the kernel TUs
/// hoist it out of the device loop.
inline NmosEval nmos_channel(MosModel model, const pdk::MosParams& p, double w_over_l,
                             double vgs, double vds) {
  if (model == MosModel::kEkv) return nmos_ekv(p, w_over_l, vgs, vds);
  return nmos_square_law(p, w_over_l, vgs, vds);
}

/// NMOS including source/drain swap for vds < 0 (the channel is symmetric).
inline MosLinearization nmos_linearize(MosModel model, const pdk::MosParams& p, double w_over_l,
                                       double vg, double vd, double vs) {
  MosLinearization lin;
  if (vd >= vs) {
    const NmosEval e = nmos_channel(model, p, w_over_l, vg - vs, vd - vs);
    lin.i_ds = e.id;
    lin.d_vg = e.gm;
    lin.d_vd = e.gds;
    lin.d_vs = -(e.gm + e.gds);
  } else {
    // Swapped: physical source terminal acts as the channel drain.
    const NmosEval e = nmos_channel(model, p, w_over_l, vg - vd, vs - vd);
    lin.i_ds = -e.id;
    lin.d_vg = -e.gm;
    lin.d_vs = -e.gds;
    lin.d_vd = e.gm + e.gds;
  }
  return lin;
}

/// Level-1 convenience overload (historical call signature).
inline MosLinearization nmos_linearize(const pdk::MosParams& p, double w_over_l, double vg,
                                       double vd, double vs) {
  return nmos_linearize(MosModel::kLevel1, p, w_over_l, vg, vd, vs);
}

/// Full linearization covering both polarities.  PMOS devices are evaluated
/// as NMOS on mirrored voltages; the mirror flips the current sign while the
/// chain rule cancels the sign on the derivatives.  w_over_l is passed in so
/// the plan can hoist the division out of the Newton loop.
inline MosLinearization mos_linearize(MosModel model, const pdk::MosParams& params,
                                      double w_over_l, double vg, double vd, double vs) {
  if (!params.is_pmos) {
    return nmos_linearize(model, params, w_over_l, vg, vd, vs);
  }
  const MosLinearization mirrored = nmos_linearize(model, params, w_over_l, -vg, -vd, -vs);
  MosLinearization lin;
  lin.i_ds = -mirrored.i_ds;
  lin.d_vg = mirrored.d_vg;
  lin.d_vd = mirrored.d_vd;
  lin.d_vs = mirrored.d_vs;
  return lin;
}

/// Level-1 convenience overload (historical call signature).
inline MosLinearization mos_linearize(const pdk::MosParams& params, double w_over_l, double vg,
                                      double vd, double vs) {
  return mos_linearize(MosModel::kLevel1, params, w_over_l, vg, vd, vs);
}

/// Drain-to-source current only (branch-current recovery at pinned nodes,
/// residual-only evaluation in the Newton LU-bypass path).
inline double mos_current(MosModel model, const pdk::MosParams& params, double w_over_l,
                          double vg, double vd, double vs) {
  return mos_linearize(model, params, w_over_l, vg, vd, vs).i_ds;
}

/// Level-1 convenience overload (historical call signature).
inline double mos_current(const pdk::MosParams& params, double w_over_l, double vg, double vd,
                          double vs) {
  return mos_current(MosModel::kLevel1, params, w_over_l, vg, vd, vs);
}

}  // namespace glova::spice
