// Tests for the process model: corner sets, device-parameter shifts, the
// square-law/EKV current models, Pelgrom mismatch, and the hierarchical
// Eq. (3) sampler.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "pdk/corner.hpp"
#include "pdk/mos_params.hpp"
#include "pdk/variation.hpp"
#include "stats/descriptive.hpp"

namespace glova::pdk {
namespace {

TEST(Corner, FullSetHas30Conditions) {
  const auto corners = full_corner_set();
  EXPECT_EQ(corners.size(), 30u);
  for (const auto& c : corners) EXPECT_TRUE(c.process_predefined);
}

TEST(Corner, VtSetHas6ConditionsWithoutPredefinedProcess) {
  const auto corners = vt_corner_set();
  EXPECT_EQ(corners.size(), 6u);
  for (const auto& c : corners) EXPECT_FALSE(c.process_predefined);
}

TEST(Corner, TypicalIsTT09V27C) {
  const auto t = typical_corner();
  EXPECT_EQ(t.process, ProcessCorner::TT);
  EXPECT_DOUBLE_EQ(t.vdd, 0.9);
  EXPECT_DOUBLE_EQ(t.temp_c, 27.0);
  EXPECT_NEAR(t.temp_k(), 300.15, 1e-9);
}

TEST(Corner, FactorsFollowSlowFastConvention) {
  const auto tt = corner_factors(ProcessCorner::TT);
  EXPECT_DOUBLE_EQ(tt.kp_n_mult, 1.0);
  EXPECT_DOUBLE_EQ(tt.vth_n_shift, 0.0);
  const auto ss = corner_factors(ProcessCorner::SS);
  EXPECT_LT(ss.kp_n_mult, 1.0);
  EXPECT_GT(ss.vth_n_shift, 0.0);
  const auto ff = corner_factors(ProcessCorner::FF);
  EXPECT_GT(ff.kp_n_mult, 1.0);
  EXPECT_LT(ff.vth_n_shift, 0.0);
  // SF: slow NMOS, fast PMOS.
  const auto sf = corner_factors(ProcessCorner::SF);
  EXPECT_LT(sf.kp_n_mult, 1.0);
  EXPECT_GT(sf.kp_p_mult, 1.0);
}

TEST(MosParams, SlowCornerRaisesVthAndLowersKp) {
  const PvtCorner tt{ProcessCorner::TT, 0.9, 27.0, true};
  const PvtCorner ss{ProcessCorner::SS, 0.9, 27.0, true};
  const auto p_tt = mos_params(false, tt, 60e-9);
  const auto p_ss = mos_params(false, ss, 60e-9);
  EXPECT_GT(p_ss.vth, p_tt.vth);
  EXPECT_LT(p_ss.kp, p_tt.kp);
}

TEST(MosParams, ColdIncreasesBothMobilityAndVth) {
  const PvtCorner warm{ProcessCorner::TT, 0.9, 27.0, true};
  const PvtCorner cold{ProcessCorner::TT, 0.9, -40.0, true};
  const auto p_warm = mos_params(false, warm, 60e-9);
  const auto p_cold = mos_params(false, cold, 60e-9);
  EXPECT_GT(p_cold.kp, p_warm.kp);   // mobility ~ T^-1.5
  EXPECT_GT(p_cold.vth, p_warm.vth); // vth_tc < 0
}

TEST(MosParams, MismatchShiftsApply) {
  const PvtCorner tt = typical_corner();
  const auto base = mos_params(false, tt, 60e-9);
  const auto shifted = mos_params(false, tt, 60e-9, 0.02, 0.05);
  EXPECT_NEAR(shifted.vth - base.vth, 0.02, 1e-12);
  EXPECT_NEAR(shifted.kp / base.kp, 1.05, 1e-12);
}

TEST(MosParams, LambdaShrinksWithLength) {
  const PvtCorner tt = typical_corner();
  EXPECT_GT(mos_params(false, tt, 30e-9).lambda, mos_params(false, tt, 300e-9).lambda);
}

TEST(SquareLaw, Regions) {
  MosParams p;
  p.vth = 0.4;
  p.kp = 300e-6;
  p.lambda = 0.0;
  // Cutoff.
  EXPECT_DOUBLE_EQ(square_law_id(p, 10.0, 0.3, 0.5), 0.0);
  // Saturation: id = 0.5 k W/L vov^2.
  EXPECT_NEAR(square_law_id(p, 10.0, 0.9, 0.9), 0.5 * 300e-6 * 10 * 0.25, 1e-12);
  // Triode < saturation at same vgs.
  EXPECT_LT(square_law_id(p, 10.0, 0.9, 0.1), square_law_id(p, 10.0, 0.9, 0.9));
  // Continuity at vds = vov.
  const double at_edge_tri = square_law_id(p, 10.0, 0.9, 0.5 - 1e-9);
  const double at_edge_sat = square_law_id(p, 10.0, 0.9, 0.5 + 1e-9);
  EXPECT_NEAR(at_edge_tri, at_edge_sat, 1e-9);
}

TEST(Ekv, MatchesSquareLawInStrongInversion) {
  MosParams p;
  p.vth = 0.38;
  p.kp = 350e-6;
  p.lambda = 0.05;
  const double sq = square_law_id(p, 20.0, 1.2, 1.0);
  const double ekv = ekv_id(p, 20.0, 1.2, 1.0, 300.0);
  EXPECT_NEAR(ekv / sq, 1.0, 0.02);
}

TEST(Ekv, PositiveBelowThreshold) {
  MosParams p;
  p.vth = 0.45;
  const double id = ekv_id(p, 20.0, 0.40, 0.5, 300.0);
  EXPECT_GT(id, 0.0);
  EXPECT_LT(id, ekv_id(p, 20.0, 0.50, 0.5, 300.0));
}

TEST(Ekv, OverdriveIsMonotoneAndAsymptotic) {
  EXPECT_GT(ekv_overdrive(0.0, 300.0), 0.0);
  EXPECT_LT(ekv_overdrive(-0.3, 300.0), ekv_overdrive(0.0, 300.0));
  EXPECT_NEAR(ekv_overdrive(0.5, 300.0), 0.5, 0.01);
  EXPECT_NEAR(ekv_overdrive(3.0, 300.0), 3.0, 1e-6);
}

TEST(Pelgrom, SigmaScalesInverseSqrtArea) {
  const double small = pelgrom_sigma_vth(2.8e-9, 0.28e-6, 30e-9);
  const double big = pelgrom_sigma_vth(2.8e-9, 1.12e-6, 120e-9);  // 16x area
  EXPECT_NEAR(small / big, 4.0, 1e-9);
  EXPECT_THROW((void)pelgrom_sigma_vth(2.8e-9, 0.0, 30e-9), std::invalid_argument);
}

TEST(Layout, TwoCoordinatesPerDevice) {
  const std::vector<DeviceGeometry> devs = {{"a", false, 1e-6, 60e-9}, {"b", true, 2e-6, 30e-9}};
  const auto layout = build_layout(devs, PelgromConstants{}, GlobalSigmas{}, true);
  ASSERT_EQ(layout.dimension(), 4u);
  EXPECT_EQ(layout.names[0], "a.dvth");
  EXPECT_EQ(layout.names[3], "b.dbeta");
  // PMOS uses the larger A_VT.
  EXPECT_GT(layout.local_sigma[2] * std::sqrt(2e-6 * 30e-9),
            layout.local_sigma[0] * std::sqrt(1e-6 * 60e-9) - 1e-15);
  // Global sigmas present when enabled, zero otherwise.
  EXPECT_GT(layout.global_sigma[0], 0.0);
  const auto no_global = build_layout(devs, PelgromConstants{}, GlobalSigmas{}, false);
  EXPECT_DOUBLE_EQ(no_global.global_sigma[0], 0.0);
}

class SamplerProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SamplerProperty, ZeroModeMatchesLocalSigma) {
  MismatchLayout layout;
  layout.names = {"p0", "p1"};
  layout.local_sigma = {0.01, 0.05};
  layout.global_sigma = {0.02, 0.02};
  Rng rng(GetParam());
  const auto set = sample_mismatch_set(layout, 4000, rng, GlobalMode::Zero);
  std::vector<double> col0(set.size());
  for (std::size_t i = 0; i < set.size(); ++i) col0[i] = set[i][0];
  EXPECT_NEAR(stats::mean(col0), 0.0, 0.001);
  EXPECT_NEAR(stats::stddev_population(col0), 0.01, 0.001);
}

TEST_P(SamplerProperty, SharedDieShiftsTheWholeSet) {
  MismatchLayout layout;
  layout.names = {"p0"};
  layout.local_sigma = {0.001};  // tiny local spread
  layout.global_sigma = {0.1};   // dominant global
  Rng rng(GetParam() + 77);
  const auto set = sample_mismatch_set(layout, 200, rng, GlobalMode::SharedDie);
  std::vector<double> col(set.size());
  for (std::size_t i = 0; i < set.size(); ++i) col[i] = set[i][0];
  // Within the die: small spread around a common (usually nonzero) mean.
  EXPECT_LT(stats::stddev_population(col), 0.01);
}

TEST_P(SamplerProperty, PerSampleHasFullCombinedVariance) {
  MismatchLayout layout;
  layout.names = {"p0"};
  layout.local_sigma = {0.03};
  layout.global_sigma = {0.04};
  Rng rng(GetParam() + 123);
  const auto set = sample_mismatch_set(layout, 8000, rng, GlobalMode::PerSample);
  std::vector<double> col(set.size());
  for (std::size_t i = 0; i < set.size(); ++i) col[i] = set[i][0];
  EXPECT_NEAR(stats::stddev_population(col), std::sqrt(0.03 * 0.03 + 0.04 * 0.04), 0.004);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SamplerProperty, ::testing::Values(1, 2, 3, 4, 5));

TEST(Sampler, DeterministicGivenRngState) {
  MismatchLayout layout;
  layout.names = {"p0", "p1"};
  layout.local_sigma = {0.01, 0.02};
  layout.global_sigma = {0.0, 0.0};
  Rng a(9);
  Rng b(9);
  EXPECT_EQ(sample_mismatch_set(layout, 10, a, GlobalMode::Zero),
            sample_mismatch_set(layout, 10, b, GlobalMode::Zero));
}

TEST(Sampler, InconsistentLayoutThrows) {
  MismatchLayout layout;
  layout.names = {"p0"};
  layout.local_sigma = {0.01, 0.02};  // wrong length
  layout.global_sigma = {0.0};
  Rng rng(1);
  EXPECT_THROW((void)sample_mismatch_set(layout, 1, rng, GlobalMode::Zero),
               std::invalid_argument);
}

}  // namespace
}  // namespace glova::pdk
