// Behavioral-vs-SPICE parity harness (ISSUE 5 tentpole deliverable).
//
// For every Table II testcase this suite evaluates a grid of realistic
// designs and PVT corners on both evaluator backends and asserts the
// metrics agree within documented tolerance bands.  The bands pin the
// *relationship* between the closed-form behavioral models and the
// transistor-level MNA netlists: they are wide where the models genuinely
// differ (see below) but tight enough that a broken netlist — a latch that
// stops deciding, a reservoir that stops drooping, a sense amp that flips
// the wrong way — lands far outside them.
//
// Why the bands are not ±5 %:
//   * the behavioral models are first-order analytics (square-law/EKV
//     hand calculations), while the SPICE backend solves the Level-1 MNA
//     system; absolute delays/energies legitimately differ by factors;
//   * the Level-1 model cuts off hard below Vth while the behavioral EKV
//     smoothing keeps subthreshold conduction alive, so slow/low-voltage
//     corners (SS @ 0.8 V) push ratios outward — most visibly on the FIA
//     noise metric, whose latch-offset term divides by the measured gain;
//   * SAL noise and (nominal-mismatch) FIA noise reuse the analytic
//     budget, so their ratios are pinned near 1 exactly.
//
// Recorded ratio ranges (spice / behavioral, over the shared grid in
// backend_parity_grid.hpp, 2026 toolchain) and the shipped bands with
// headroom:
//   SAL   power      0.25..0.39   band [0.1, 0.8]
//         set delay  0.48..1.90   band [0.25, 4.0]
//         reset      1.11..2.04   band [0.5, 4.0]
//         noise      1.00         band [0.99, 1.01]
//   FIA   energy     0.13..0.56   band [0.06, 1.0]
//         noise      0.47..5.7    band [0.25, 9.0]
//   OCSA  dVD0       0.35..1.04   band [0.12, 2.5]
//         dVD1       0.45..2.16   band [0.2, 3.6]
//         energy     0.24..1.03   band [0.1, 1.8]
//
// Re-recording: if an intentional model/netlist change moves a ratio out
// of band, rerun this suite — each failure prints the measured ratio —
// and update the table above plus the bands below together
// (tools/probe_parity.cpp prints the full ratio grid in one shot).
#include <gtest/gtest.h>

#include <cmath>

#include "backend_parity_grid.hpp"
#include "circuits/registry.hpp"

namespace glova {
namespace {

struct MetricBand {
  const char* metric;
  double lo;  ///< min accepted spice/behavioral ratio
  double hi;  ///< max accepted spice/behavioral ratio
};

struct ParityBands {
  circuits::Testcase tc;
  std::vector<MetricBand> nominal;  ///< bands, nominal mismatch
  std::vector<MetricBand> drawn;    ///< bands, local-mismatch draws
};

// The design/corner grid and draw recipe live in backend_parity_grid.hpp
// (shared with tools/probe_parity.cpp, which regenerates the ratio table).
const ParityBands kBands[] = {
    {circuits::Testcase::Sal,
     {{"power", 0.1, 0.8},
      {"set_delay", 0.25, 4.0},
      {"reset_delay", 0.5, 4.0},
      {"noise", 0.99, 1.01}},
     {{"power", 0.1, 0.8},
      {"set_delay", 0.25, 4.0},
      {"reset_delay", 0.5, 4.0},
      {"noise", 0.99, 1.01}}},
    {circuits::Testcase::Fia,
     {{"energy", 0.06, 1.0}, {"noise", 0.25, 9.0}},
     {{"energy", 0.06, 1.0}, {"noise", 0.25, 9.0}}},
    {circuits::Testcase::DramOcsa,
     {{"dVD0", 0.12, 2.5}, {"dVD1", 0.2, 3.6}, {"energy_per_bit", 0.1, 1.8}},
     {{"dVD0", 0.12, 2.5}, {"dVD1", 0.2, 3.6}, {"energy_per_bit", 0.1, 1.8}}}};

void check_pair(const circuits::Testbench& beh, const circuits::Testbench& spc,
                std::span<const double> x, const pdk::PvtCorner& corner,
                std::span<const double> h, std::span<const MetricBand> bands,
                const std::string& label) {
  const auto mb = beh.evaluate(x, corner, h);
  const auto ms = spc.evaluate(x, corner, h);
  ASSERT_EQ(mb.size(), bands.size()) << label;
  ASSERT_EQ(ms.size(), mb.size()) << label;
  for (std::size_t mi = 0; mi < mb.size(); ++mi) {
    const std::string where = label + " metric " + bands[mi].metric;
    ASSERT_TRUE(std::isfinite(mb[mi]) && std::isfinite(ms[mi])) << where;
    ASSERT_GT(mb[mi], 0.0) << where;
    ASSERT_GT(ms[mi], 0.0) << where;
    const double ratio = ms[mi] / mb[mi];
    EXPECT_GE(ratio, bands[mi].lo) << where << " ratio " << ratio;
    EXPECT_LE(ratio, bands[mi].hi) << where << " ratio " << ratio;
  }
}

class BackendParity : public ::testing::TestWithParam<int> {};

TEST_P(BackendParity, NominalMetricsAgreeWithinBands) {
  const ParityBands& bands = kBands[GetParam()];
  const auto beh = circuits::make_testbench(bands.tc, circuits::Backend::Behavioral);
  const auto spc = circuits::make_testbench(bands.tc, circuits::Backend::Spice);
  const auto designs = parity_grid::designs_x01(bands.tc);
  for (std::size_t gi = 0; gi < designs.size(); ++gi) {
    const auto x = beh->sizing().denormalize(designs[gi]);
    for (const auto& corner : parity_grid::corners()) {
      check_pair(*beh, *spc, x, corner, {}, bands.nominal,
                 std::string(circuits::to_string(bands.tc)) + " design " + std::to_string(gi) +
                     " corner " + corner.name());
    }
  }
}

TEST_P(BackendParity, LocalMismatchDrawsAgreeWithinBands) {
  const ParityBands& bands = kBands[GetParam()];
  const auto beh = circuits::make_testbench(bands.tc, circuits::Backend::Behavioral);
  const auto spc = circuits::make_testbench(bands.tc, circuits::Backend::Spice);
  const auto designs = parity_grid::designs_x01(bands.tc);
  for (std::size_t gi = 0; gi < designs.size(); ++gi) {
    const auto x = beh->sizing().denormalize(designs[gi]);
    const auto h = parity_grid::local_draw(*beh, x, gi);
    for (const auto& corner : parity_grid::corners()) {
      check_pair(*beh, *spc, x, corner, h, bands.drawn,
                 std::string(circuits::to_string(bands.tc)) + " design " + std::to_string(gi) +
                     " corner " + corner.name() + " (drawn)");
    }
  }
}

// Both backends must describe the *same* optimization problem: identical
// sizing bounds, metric specs, and mismatch-space dimensions.
TEST_P(BackendParity, SpecsAndMismatchLayoutMatch) {
  const ParityBands& bands = kBands[GetParam()];
  const auto beh = circuits::make_testbench(bands.tc, circuits::Backend::Behavioral);
  const auto spc = circuits::make_testbench(bands.tc, circuits::Backend::Spice);
  ASSERT_EQ(beh->sizing().dimension(), spc->sizing().dimension());
  for (std::size_t i = 0; i < beh->sizing().dimension(); ++i) {
    EXPECT_DOUBLE_EQ(beh->sizing().lower[i], spc->sizing().lower[i]);
    EXPECT_DOUBLE_EQ(beh->sizing().upper[i], spc->sizing().upper[i]);
  }
  ASSERT_EQ(beh->performance().count(), spc->performance().count());
  for (std::size_t i = 0; i < beh->performance().count(); ++i) {
    EXPECT_EQ(beh->performance().metrics[i].name, spc->performance().metrics[i].name);
    EXPECT_DOUBLE_EQ(beh->performance().metrics[i].bound, spc->performance().metrics[i].bound);
  }
  const auto x = beh->sizing().denormalize(parity_grid::designs_x01(bands.tc).front());
  for (const bool global : {false, true}) {
    EXPECT_EQ(beh->mismatch_layout(x, global).dimension(),
              spc->mismatch_layout(x, global).dimension());
  }
}

INSTANTIATE_TEST_SUITE_P(AllTestcases, BackendParity, ::testing::Range(0, 3));

}  // namespace
}  // namespace glova
