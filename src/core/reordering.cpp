#include "core/reordering.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "stats/pearson.hpp"

namespace glova::core {

double total_degradation(const circuits::PerformanceSpec& spec, std::span<const double> metrics) {
  if (metrics.size() != spec.count()) {
    throw std::invalid_argument("total_degradation: metric count mismatch");
  }
  double g = 0.0;
  for (std::size_t i = 0; i < spec.count(); ++i) {
    g += circuits::degradation(spec.metrics[i], metrics[i]);
  }
  return g;
}

std::vector<double> correlation_vector(const std::vector<std::vector<double>>& mismatch_conditions,
                                       std::span<const double> g) {
  return stats::pearson_columns(mismatch_conditions, g);
}

double h_score(std::span<const double> h, std::span<const double> rho) {
  if (h.size() != rho.size()) throw std::invalid_argument("h_score: dimension mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < h.size(); ++i) s += h[i] * rho[i];
  return s;
}

std::vector<std::size_t> order_descending(std::span<const double> scores) {
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return scores[a] > scores[b]; });
  return order;
}

}  // namespace glova::core
