// Tests for the neural-network substrate: activation math, analytic
// gradients against finite differences (the load-bearing property for the
// whole RL stack), Adam convergence, and end-to-end regression.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "common/rng.hpp"
#include "nn/adam.hpp"
#include "nn/loss.hpp"
#include "nn/mlp.hpp"

namespace glova::nn {
namespace {

TEST(Activation, ValuesAndDerivatives) {
  EXPECT_DOUBLE_EQ(activate(Activation::Identity, 1.7), 1.7);
  EXPECT_DOUBLE_EQ(activate_grad(Activation::Identity, 1.7), 1.0);
  EXPECT_DOUBLE_EQ(activate(Activation::ReLU, -2.0), 0.0);
  EXPECT_DOUBLE_EQ(activate(Activation::ReLU, 2.0), 2.0);
  EXPECT_NEAR(activate(Activation::Tanh, 0.5), std::tanh(0.5), 1e-15);
  EXPECT_NEAR(activate(Activation::Sigmoid, 0.0), 0.5, 1e-15);
  // Derivative consistency via finite differences.
  for (const Activation act :
       {Activation::Tanh, Activation::Sigmoid, Activation::Identity}) {
    const double x = 0.37;
    const double eps = 1e-6;
    const double fd = (activate(act, x + eps) - activate(act, x - eps)) / (2 * eps);
    EXPECT_NEAR(activate_grad(act, x), fd, 1e-8);
  }
}

TEST(Mlp, ShapesAndDeterminism) {
  Rng rng(1);
  const Mlp net({3, 8, 8, 2}, Activation::Tanh, Activation::Identity, rng);
  EXPECT_EQ(net.input_dim(), 3u);
  EXPECT_EQ(net.output_dim(), 2u);
  EXPECT_EQ(net.layer_count(), 3u);
  EXPECT_EQ(net.parameter_count(), 3u * 8 + 8 + 8u * 8 + 8 + 8u * 2 + 2);
  const std::vector<double> x = {0.1, -0.2, 0.3};
  EXPECT_EQ(net.forward(x), net.forward(x));
}

TEST(Mlp, BadInputSizeThrows) {
  Rng rng(1);
  const Mlp net({2, 4, 1}, Activation::Tanh, Activation::Identity, rng);
  EXPECT_THROW((void)net.forward(std::vector<double>{1.0}), std::invalid_argument);
}

/// Property sweep: analytic gradients match finite differences across
/// architectures and activation choices.
struct GradCase {
  std::vector<std::size_t> sizes;
  Activation hidden;
  Activation output;
};

class MlpGradient : public ::testing::TestWithParam<int> {};

TEST_P(MlpGradient, MatchesFiniteDifferences) {
  static const GradCase cases[] = {
      {{2, 5, 1}, Activation::Tanh, Activation::Identity},
      {{3, 6, 6, 2}, Activation::Tanh, Activation::Sigmoid},
      {{4, 8, 8, 8, 4}, Activation::Tanh, Activation::Sigmoid},
      {{5, 7, 3}, Activation::ReLU, Activation::Identity},
      {{1, 4, 4, 1}, Activation::Sigmoid, Activation::Identity},
  };
  const GradCase& c = cases[GetParam() % std::size(cases)];
  Rng rng(17 + GetParam());
  Mlp net(c.sizes, c.hidden, c.output, rng);
  const std::vector<double> x = rng.uniform_vector(c.sizes.front(), -0.9, 0.9);
  const std::vector<double> dLdy = rng.uniform_vector(c.sizes.back(), -1.0, 1.0);

  Mlp::Workspace ws;
  (void)net.forward(x, ws);
  std::vector<double> grad(net.parameter_count(), 0.0);
  const std::vector<double> dx = net.backward(ws, dLdy, grad);

  const auto loss_at = [&](void) {
    const auto y = net.forward(x);
    double l = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i) l += dLdy[i] * y[i];
    return l;
  };

  // Parameter gradients (spot-check a deterministic subset for speed).
  const double eps = 1e-6;
  auto params = net.parameters();
  for (std::size_t i = 0; i < net.parameter_count(); i += std::max<std::size_t>(1, net.parameter_count() / 25)) {
    const double saved = params[i];
    params[i] = saved + eps;
    const double up = loss_at();
    params[i] = saved - eps;
    const double down = loss_at();
    params[i] = saved;
    EXPECT_NEAR(grad[i], (up - down) / (2 * eps), 1e-5) << "param " << i;
  }

  // Input gradients.
  std::vector<double> x_mut = x;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double saved = x_mut[i];
    x_mut[i] = saved + eps;
    const auto yu = net.forward(x_mut);
    x_mut[i] = saved - eps;
    const auto yd = net.forward(x_mut);
    x_mut[i] = saved;
    double fd = 0.0;
    for (std::size_t o = 0; o < yu.size(); ++o) fd += dLdy[o] * (yu[o] - yd[o]) / (2 * eps);
    EXPECT_NEAR(dx[i], fd, 1e-5) << "input " << i;
  }

  // input_gradient (no parameter accumulation) agrees with backward's dx.
  const std::vector<double> dx2 = net.input_gradient(ws, dLdy);
  for (std::size_t i = 0; i < dx.size(); ++i) EXPECT_NEAR(dx[i], dx2[i], 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Cases, MlpGradient, ::testing::Range(0, 10));

TEST(Adam, ConvergesOnQuadratic) {
  // minimize (p - 3)^2 elementwise.
  std::vector<double> params(4, 0.0);
  Adam adam(4, AdamConfig{0.05, 0.9, 0.999, 1e-8});
  for (int step = 0; step < 500; ++step) {
    std::vector<double> grad(4);
    for (std::size_t i = 0; i < 4; ++i) grad[i] = 2.0 * (params[i] - 3.0);
    adam.step(params, grad);
  }
  for (const double p : params) EXPECT_NEAR(p, 3.0, 1e-2);
  EXPECT_EQ(adam.step_count(), 500u);
}

TEST(Adam, SizeMismatchThrows) {
  Adam adam(3);
  std::vector<double> params(3, 0.0);
  EXPECT_THROW(adam.step(params, std::vector<double>{1.0}), std::invalid_argument);
}

TEST(Loss, MseAndGradient) {
  const std::vector<double> pred = {1.0, 2.0};
  const std::vector<double> target = {0.0, 4.0};
  EXPECT_DOUBLE_EQ(mse(pred, target), 0.5 * (0.5 * 1.0 + 0.5 * 4.0));
  const auto g = mse_grad(pred, target);
  EXPECT_DOUBLE_EQ(g[0], 0.5);
  EXPECT_DOUBLE_EQ(g[1], -1.0);
  EXPECT_DOUBLE_EQ(mse(2.0, 3.0), 0.5);
  EXPECT_DOUBLE_EQ(mse_grad_scalar(2.0, 3.0), -1.0);
}

TEST(Serialization, MlpSaveLoadRoundTripsParameters) {
  Rng rng(41);
  Mlp net({3, 8, 2}, Activation::Tanh, Activation::Identity, rng);
  std::ostringstream saved;
  net.save(saved);

  Rng rng2(99);  // different init: load must overwrite every parameter
  Mlp restored({3, 8, 2}, Activation::Tanh, Activation::Identity, rng2);
  std::istringstream in(saved.str());
  restored.load(in);
  ASSERT_EQ(restored.parameter_count(), net.parameter_count());
  for (std::size_t i = 0; i < net.parameter_count(); ++i) {
    EXPECT_EQ(restored.parameters()[i], net.parameters()[i]) << "parameter " << i;
  }
  // Bit-identical parameters mean bit-identical inference.
  const std::vector<double> x = {0.1, -0.7, 2.5};
  EXPECT_EQ(restored.forward(x), net.forward(x));

  // Save -> load -> save is a byte fixed point.
  std::ostringstream resaved;
  restored.save(resaved);
  EXPECT_EQ(resaved.str(), saved.str());
}

TEST(Serialization, MlpLoadRejectsMismatchedShape) {
  Rng rng(41);
  Mlp small({2, 4, 1}, Activation::Tanh, Activation::Identity, rng);
  Mlp big({3, 8, 2}, Activation::Tanh, Activation::Identity, rng);
  std::ostringstream saved;
  small.save(saved);
  std::istringstream in(saved.str());
  try {
    big.load(in);
    FAIL() << "load() must reject a parameter-count mismatch";
  } catch (const std::exception& e) {
    EXPECT_NE(std::string(e.what()).find("size mismatch"), std::string::npos) << e.what();
  }
}

TEST(Serialization, AdamSaveLoadRoundTripsMoments) {
  Rng rng(7);
  Mlp net({2, 6, 1}, Activation::Tanh, Activation::Identity, rng);
  Adam adam(net.parameter_count());
  Mlp::Workspace ws;
  // A few real steps so the moments and timestep are non-trivial.
  for (int step = 0; step < 5; ++step) {
    std::vector<double> grad(net.parameter_count(), 0.0);
    const auto y = net.forward(std::vector<double>{0.3, -0.9}, ws);
    const std::vector<double> dLdy = {y[0] - 1.0};
    (void)net.backward(ws, dLdy, grad);
    adam.step(net.parameters(), grad);
  }
  std::ostringstream saved;
  adam.save(saved);

  Adam restored(net.parameter_count());
  std::istringstream in(saved.str());
  restored.load(in);
  std::ostringstream resaved;
  restored.save(resaved);
  EXPECT_EQ(resaved.str(), saved.str());  // full state: t, m, v

  // The restored optimizer continues exactly like the original: one more
  // identical step must produce identical parameters.
  std::vector<double> params_a(net.parameters().begin(), net.parameters().end());
  std::vector<double> params_b = params_a;
  std::vector<double> grad(net.parameter_count(), 0.01);
  adam.step(params_a, grad);
  restored.step(params_b, grad);
  EXPECT_EQ(params_a, params_b);
}

TEST(Serialization, AdamLoadRejectsMismatchedCount) {
  Adam small(4);
  std::ostringstream saved;
  small.save(saved);
  Adam big(9);
  std::istringstream in(saved.str());
  try {
    big.load(in);
    FAIL() << "load() must reject a moment-length mismatch";
  } catch (const std::exception& e) {
    EXPECT_NE(std::string(e.what()).find("size mismatch"), std::string::npos) << e.what();
  }
}

TEST(Training, LearnsOneDimensionalRegression) {
  // Fit y = sin(3x) on a fixed grid (full-batch); checks the complete
  // forward/backward/Adam loop end to end.
  Rng rng(23);
  Mlp net({1, 24, 24, 1}, Activation::Tanh, Activation::Identity, rng);
  Adam adam(net.parameter_count(), AdamConfig{5e-3, 0.9, 0.999, 1e-8});
  Mlp::Workspace ws;
  constexpr int kGrid = 64;
  for (int epoch = 0; epoch < 1500; ++epoch) {
    std::vector<double> grad(net.parameter_count(), 0.0);
    for (int i = 0; i < kGrid; ++i) {
      const double x = -1.0 + 2.0 * i / (kGrid - 1);
      const double target = std::sin(3.0 * x);
      const auto y = net.forward(std::vector<double>{x}, ws);
      const std::vector<double> dLdy = {mse_grad_scalar(y[0], target) / kGrid};
      (void)net.backward(ws, dLdy, grad);
    }
    adam.step(net.parameters(), grad);
  }
  double worst = 0.0;
  for (double x = -1.0; x <= 1.0; x += 0.05) {
    const double y = net.forward(std::vector<double>{x})[0];
    worst = std::max(worst, std::abs(y - std::sin(3.0 * x)));
  }
  EXPECT_LT(worst, 0.15);
}

}  // namespace
}  // namespace glova::nn
