// Tests for the SPICE engine: linear algebra, operating point, transient
// accuracy against closed-form RC solutions, device models, the netlist
// parser, and waveform measurements.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "pdk/mos_params.hpp"
#include "spice/circuit.hpp"
#include "spice/lu.hpp"
#include "spice/measure.hpp"
#include "spice/mos_model.hpp"
#include "spice/parser.hpp"
#include "spice/simulator.hpp"
#include "spice/waveform.hpp"

namespace glova::spice {
namespace {

TEST(Lu, SolvesKnownSystem) {
  DenseMatrix a(2);
  a.at(0, 0) = 2.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 3.0;
  LuSolver solver;
  ASSERT_TRUE(solver.factor(a));
  const auto x = solver.solve(std::vector<double>{5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, DetectsSingular) {
  DenseMatrix a(2);
  a.at(0, 0) = 1.0;
  a.at(0, 1) = 2.0;
  a.at(1, 0) = 2.0;
  a.at(1, 1) = 4.0;
  LuSolver solver;
  EXPECT_FALSE(solver.factor(a));
}

TEST(Lu, RandomRoundTrip) {
  Rng rng(4);
  const std::size_t n = 12;
  DenseMatrix a(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a.at(i, j) = rng.uniform(-1.0, 1.0);
    a.at(i, i) += 5.0;
  }
  const std::vector<double> x_true = rng.uniform_vector(n, -2.0, 2.0);
  std::vector<double> b(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b[i] += a.at(i, j) * x_true[j];
  }
  LuSolver solver;
  ASSERT_TRUE(solver.factor(a));
  const auto x = solver.solve(b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

TEST(Waveform, PulseShape) {
  const Waveform w = Waveform::pulse(0.0, 1.0, 1e-9, 0.1e-9, 0.1e-9, 1e-9, 0.0);
  EXPECT_DOUBLE_EQ(w.value(0.0), 0.0);
  EXPECT_NEAR(w.value(1.05e-9), 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(w.value(1.5e-9), 1.0);
  EXPECT_DOUBLE_EQ(w.value(3.0e-9), 0.0);
}

TEST(Waveform, PwlInterpolates) {
  const Waveform w = Waveform::pwl({0.0, 1.0, 2.0}, {0.0, 2.0, 0.0});
  EXPECT_DOUBLE_EQ(w.value(0.5), 1.0);
  EXPECT_DOUBLE_EQ(w.value(1.5), 1.0);
  EXPECT_DOUBLE_EQ(w.value(5.0), 0.0);
  EXPECT_THROW((void)Waveform::pwl({1.0, 0.5}, {0.0, 1.0}), std::invalid_argument);
}

TEST(Op, VoltageDivider) {
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto mid = ckt.node("mid");
  ckt.add_vsource("V1", in, Circuit::ground(), Waveform::dc(1.0));
  ckt.add_resistor("R1", in, mid, 1e3);
  ckt.add_resistor("R2", mid, Circuit::ground(), 3e3);
  Simulator sim(ckt);
  const OpResult op = sim.operating_point();
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(op.node_voltages[mid], 0.75, 1e-6);
  // Branch current of V1: 1 V over 4 kOhm, flowing out of + internally.
  EXPECT_NEAR(op.vsource_currents[0], -1.0 / 4e3, 1e-9);
}

TEST(Op, CurrentSourceIntoResistor) {
  Circuit ckt;
  const auto out = ckt.node("out");
  ckt.add_isource("I1", Circuit::ground(), out, Waveform::dc(1e-3));
  ckt.add_resistor("R1", out, Circuit::ground(), 2e3);
  Simulator sim(ckt);
  const OpResult op = sim.operating_point();
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(op.node_voltages[out], 2.0, 1e-6);
}

TEST(Op, VcvsGain) {
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  ckt.add_vsource("V1", in, Circuit::ground(), Waveform::dc(0.25));
  ckt.add_vcvs("E1", out, Circuit::ground(), in, Circuit::ground(), 4.0);
  ckt.add_resistor("RL", out, Circuit::ground(), 1e3);
  Simulator sim(ckt);
  const OpResult op = sim.operating_point();
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(op.node_voltages[out], 1.0, 1e-6);
}

TEST(Op, NmosSaturationCurrentMatchesModel) {
  const pdk::MosParams params = pdk::mos_params(false, pdk::typical_corner(), 60e-9);
  Circuit ckt;
  const auto d = ckt.node("d");
  const auto g = ckt.node("g");
  ckt.add_vsource("VD", d, Circuit::ground(), Waveform::dc(0.9));
  ckt.add_vsource("VG", g, Circuit::ground(), Waveform::dc(0.9));
  ckt.add_mosfet("M1", d, g, Circuit::ground(), params, 1e-6, 60e-9);
  Simulator sim(ckt);
  const OpResult op = sim.operating_point();
  ASSERT_TRUE(op.converged);
  const double expected = pdk::square_law_id(params, 1e-6 / 60e-9, 0.9, 0.9);
  // VD supplies the drain current (negative branch convention).
  EXPECT_NEAR(-op.vsource_currents[0], expected, expected * 1e-3 + 1e-12);
}

TEST(Op, CmosInverterTransfersCorrectly) {
  const auto nmos = pdk::mos_params(false, pdk::typical_corner(), 60e-9);
  const auto pmos = pdk::mos_params(true, pdk::typical_corner(), 60e-9);
  const auto out_at = [&](double vin) {
    Circuit ckt;
    const auto vdd = ckt.node("vdd");
    const auto in = ckt.node("in");
    const auto out = ckt.node("out");
    ckt.add_vsource("VDD", vdd, Circuit::ground(), Waveform::dc(0.9));
    ckt.add_vsource("VIN", in, Circuit::ground(), Waveform::dc(vin));
    ckt.add_mosfet("MN", out, in, Circuit::ground(), nmos, 1e-6, 60e-9);
    ckt.add_mosfet("MP", out, in, vdd, pmos, 2e-6, 60e-9);
    Simulator sim(ckt);
    const OpResult op = sim.operating_point();
    EXPECT_TRUE(op.converged) << "vin = " << vin;
    return op.node_voltages[out];
  };
  EXPECT_GT(out_at(0.0), 0.85);   // input low -> output high
  EXPECT_LT(out_at(0.9), 0.05);   // input high -> output low
  EXPECT_GT(out_at(0.2), out_at(0.7));  // monotone falling
}

// The MOS channel is symmetric: biasing the "source" terminal above the
// "drain" must produce the same current magnitude flowing the other way,
// both in the raw linearization and through the assembled MNA stamp.
TEST(Op, NmosReversedBiasSwapsSourceAndDrain) {
  const pdk::MosParams params = pdk::mos_params(false, pdk::typical_corner(), 60e-9);
  const double w_over_l = 1e-6 / 60e-9;
  for (const auto model : {MosModel::kLevel1, MosModel::kEkv}) {
    const MosLinearization fwd = nmos_linearize(model, params, w_over_l, 0.9, 0.9, 0.0);
    const MosLinearization rev = nmos_linearize(model, params, w_over_l, 0.9, 0.0, 0.9);
    EXPECT_DOUBLE_EQ(rev.i_ds, -fwd.i_ds);
    // Swapping terminals swaps the roles of the drain/source derivatives:
    // the low terminal sees gm + gds, mirroring -d_vs of the forward bias.
    EXPECT_DOUBLE_EQ(rev.d_vd, -fwd.d_vs);
    EXPECT_GT(rev.d_vd, 0.0);
    EXPECT_LT(rev.d_vs, 0.0);
  }

  // Same check through the full operating-point solve: reverse the supply
  // and the measured branch current flips sign, same magnitude.
  const auto branch_current = [&](double vd, double vs) {
    Circuit ckt;
    const auto d = ckt.node("d");
    const auto g = ckt.node("g");
    const auto s = ckt.node("s");
    ckt.add_vsource("VD", d, Circuit::ground(), Waveform::dc(vd));
    ckt.add_vsource("VG", g, Circuit::ground(), Waveform::dc(0.9));
    ckt.add_vsource("VS", s, Circuit::ground(), Waveform::dc(vs));
    ckt.add_mosfet("M1", d, g, s, params, 1e-6, 60e-9);
    Simulator sim(ckt);
    const OpResult op = sim.operating_point();
    EXPECT_TRUE(op.converged);
    return op.vsource_currents[0];  // VD branch
  };
  const double fwd_i = branch_current(0.9, 0.0);
  const double rev_i = branch_current(0.0, 0.9);
  // The small residual asymmetry is gmin leakage through swapped node sets.
  EXPECT_NEAR(rev_i, -fwd_i, 1e-8 * std::abs(fwd_i));
}

// Regression for the cutoff-region stamp bug: at vds == 0 an on channel
// carries no current but is still a resistor of conductance k*Vov.  The
// old model classified vds == 0 as cutoff and stamped gds = 0, starving
// Newton of the derivative that moves a pass-gate node off equal bias.
TEST(Op, PassGateAtEqualBiasKeepsChannelConductance) {
  const pdk::MosParams params = pdk::mos_params(false, pdk::typical_corner(), 60e-9);
  const double w_over_l = 1e-6 / 60e-9;
  const double vov = 0.45 - params.vth;  // vgs = vg - vs = 0.45
  for (const auto model : {MosModel::kLevel1, MosModel::kEkv}) {
    const MosLinearization lin = nmos_linearize(model, params, w_over_l, 0.9, 0.45, 0.45);
    EXPECT_DOUBLE_EQ(lin.i_ds, 0.0);
    EXPECT_GT(lin.d_vd, 0.0) << "channel conductance lost at vds == 0";
    // Level-1 triode limit: gds -> k * Vov as vds -> 0 (clm factor is 1).
    if (model == MosModel::kLevel1) {
      EXPECT_NEAR(lin.d_vd, params.kp * w_over_l * vov, 1e-9);
    }
  }

  // Functional version: a node connected only through an on pass-gate must
  // settle to the driven level (gmin alone would leave it near ground).
  Circuit ckt;
  const auto d = ckt.node("d");
  const auto g = ckt.node("g");
  const auto s = ckt.node("s");
  ckt.add_vsource("VG", g, Circuit::ground(), Waveform::dc(0.9));
  ckt.add_vsource("VS", s, Circuit::ground(), Waveform::dc(0.45));
  ckt.add_mosfet("M1", d, g, s, params, 1e-6, 60e-9);
  Simulator sim(ckt);
  const OpResult op = sim.operating_point();
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(op.node_voltages[d], 0.45, 1e-6);
}

TEST(Transient, RcDischargeMatchesAnalytic) {
  // C charged to 1 V discharging through R: v(t) = exp(-t/RC).
  Circuit ckt;
  const auto out = ckt.node("out");
  ckt.add_resistor("R1", out, Circuit::ground(), 1e3);
  ckt.add_capacitor("C1", out, Circuit::ground(), 1e-12, 1.0);
  Simulator sim(ckt);
  TransientSpec spec;
  spec.t_stop = 3e-9;
  spec.dt = 5e-12;
  spec.use_ic = true;
  spec.initial_conditions["out"] = 1.0;
  const TransientResult res = sim.transient(spec);
  ASSERT_TRUE(res.ok) << res.error;
  const auto& v = res.trace("out");
  const double tau = 1e3 * 1e-12;
  for (std::size_t i = 0; i < res.times.size(); i += 50) {
    EXPECT_NEAR(v[i], std::exp(-res.times[i] / tau), 5e-3) << "t = " << res.times[i];
  }
}

TEST(Transient, RcChargeStepResponse) {
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  ckt.add_vsource("V1", in, Circuit::ground(),
                  Waveform::pulse(0.0, 1.0, 0.1e-9, 1e-12, 1e-12, 10e-9, 0.0));
  ckt.add_resistor("R1", in, out, 10e3);
  ckt.add_capacitor("C1", out, Circuit::ground(), 100e-15);
  Simulator sim(ckt);
  TransientSpec spec;
  spec.t_stop = 5e-9;
  spec.dt = 2e-12;
  const TransientResult res = sim.transient(spec);
  ASSERT_TRUE(res.ok) << res.error;
  const auto& v = res.trace("out");
  const double tau = 10e3 * 100e-15;  // 1 ns
  const double t_probe = 0.1e-9 + tau;
  EXPECT_NEAR(value_at(res.times, v, t_probe), 1.0 - std::exp(-1.0), 0.01);
}

TEST(Transient, EnergyConservationInRcCharge) {
  // Charging a cap through a resistor from a step: the supply delivers
  // C*V^2, half stored, half dissipated.
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  ckt.add_vsource("V1", in, Circuit::ground(),
                  Waveform::pulse(0.0, 1.0, 0.05e-9, 1e-12, 1e-12, 100e-9, 0.0));
  ckt.add_resistor("R1", in, out, 1e3);
  ckt.add_capacitor("C1", out, Circuit::ground(), 200e-15);
  Simulator sim(ckt);
  TransientSpec spec;
  spec.t_stop = 3e-9;  // 15 tau
  spec.dt = 1e-12;
  const TransientResult res = sim.transient(spec);
  ASSERT_TRUE(res.ok);
  const double delivered = supply_energy(res.times, res.trace("I(V1)"), 1.0, 0.0, 3e-9);
  EXPECT_NEAR(delivered, 200e-15 * 1.0, 200e-15 * 0.05);
}

TEST(Transient, FinalStepLandsExactlyOnTStop) {
  // t_stop is NOT an integer multiple of dt: the final partial step must
  // land exactly on t_stop with strictly positive dt everywhere.
  Circuit ckt;
  const auto out = ckt.node("out");
  ckt.add_resistor("R1", out, Circuit::ground(), 1e3);
  ckt.add_capacitor("C1", out, Circuit::ground(), 1e-12, 1.0);
  Simulator sim(ckt);
  TransientSpec spec;
  spec.t_stop = 1e-9;
  spec.dt = 3e-13;
  spec.use_ic = true;
  spec.initial_conditions["out"] = 1.0;
  const TransientResult res = sim.transient(spec);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_DOUBLE_EQ(res.times.back(), spec.t_stop);
  // ceil(1e-9 / 3e-13) = 3334 steps plus the initial point.
  EXPECT_EQ(res.times.size(), 3335u);
  for (std::size_t i = 1; i < res.times.size(); ++i) {
    EXPECT_GT(res.times[i], res.times[i - 1]) << "non-positive dt at step " << i;
  }

  // Exact-multiple case ends on t_stop too, with no extra step.
  spec.dt = 1e-12;
  const TransientResult even = sim.transient(spec);
  ASSERT_TRUE(even.ok);
  EXPECT_DOUBLE_EQ(even.times.back(), spec.t_stop);
  EXPECT_EQ(even.times.size(), 1001u);
}

TEST(TransientResult, TraceLookupByNameIsRebuiltAfterAppends) {
  TransientResult r;
  r.traces.push_back(Trace{"a", {1.0}});
  r.traces.push_back(Trace{"b", {2.0}});
  EXPECT_TRUE(r.has_trace("a"));
  EXPECT_EQ(r.trace("b")[0], 2.0);
  EXPECT_FALSE(r.has_trace("c"));
  r.traces.push_back(Trace{"c", {3.0}});  // map must rebuild lazily
  EXPECT_TRUE(r.has_trace("c"));
  EXPECT_EQ(r.trace("c")[0], 3.0);
  EXPECT_THROW((void)r.trace("missing"), std::out_of_range);
}

TEST(Op, PinnedSourceAbsorptionMatchesFullBranchFormulation) {
  // The structure-aware plan absorbs grounded ideal sources (5 unknowns on
  // the SAL netlist instead of 13).  Both formulations solve the same
  // equations: operating points must agree to solver tolerance.
  const auto nmos = pdk::mos_params(false, pdk::typical_corner(), 60e-9);
  const auto pmos = pdk::mos_params(true, pdk::typical_corner(), 60e-9);
  Circuit ckt;
  const auto vdd = ckt.node("vdd");
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  const auto buf = ckt.node("buf");
  ckt.add_vsource("VDD", vdd, Circuit::ground(), Waveform::dc(0.9));
  ckt.add_vsource("VIN", in, Circuit::ground(), Waveform::dc(0.35));
  ckt.add_mosfet("MN", out, in, Circuit::ground(), nmos, 1e-6, 60e-9);
  ckt.add_mosfet("MP", out, in, vdd, pmos, 2e-6, 60e-9);
  ckt.add_resistor("RL", out, buf, 5e3);
  ckt.add_capacitor("CL", buf, Circuit::ground(), 1e-15);

  SimulatorOptions absorbed;
  SimulatorOptions full;
  full.pin_grounded_sources = false;
  Simulator sim_a(ckt, absorbed);
  Simulator sim_f(ckt, full);
  EXPECT_LT(sim_a.plan().unknown_count(), sim_f.plan().unknown_count());

  const OpResult a = sim_a.operating_point();
  const OpResult f = sim_f.operating_point();
  ASSERT_TRUE(a.converged);
  ASSERT_TRUE(f.converged);
  for (std::size_t nd = 0; nd < a.node_voltages.size(); ++nd) {
    EXPECT_NEAR(a.node_voltages[nd], f.node_voltages[nd], 1e-6) << "node " << nd;
  }
  ASSERT_EQ(a.vsource_currents.size(), f.vsource_currents.size());
  for (std::size_t si = 0; si < a.vsource_currents.size(); ++si) {
    EXPECT_NEAR(a.vsource_currents[si], f.vsource_currents[si],
                std::abs(f.vsource_currents[si]) * 1e-6 + 1e-12)
        << "source " << si;
  }
}

TEST(Transient, PinnedSourceAbsorptionMatchesFullBranchWaveforms) {
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  ckt.add_vsource("V1", in, Circuit::ground(),
                  Waveform::pulse(0.0, 1.0, 0.1e-9, 1e-12, 1e-12, 10e-9, 0.0));
  ckt.add_resistor("R1", in, out, 10e3);
  ckt.add_capacitor("C1", out, Circuit::ground(), 100e-15);
  TransientSpec spec;
  spec.t_stop = 2e-9;
  spec.dt = 2e-12;

  SimulatorOptions full;
  full.pin_grounded_sources = false;
  Simulator sim_a(ckt);
  Simulator sim_f(ckt, full);
  const TransientResult a = sim_a.transient(spec);
  const TransientResult f = sim_f.transient(spec);
  ASSERT_TRUE(a.ok) << a.error;
  ASSERT_TRUE(f.ok) << f.error;
  ASSERT_EQ(a.times.size(), f.times.size());
  const auto& va = a.trace("out");
  const auto& vf = f.trace("out");
  const auto& ia = a.trace("I(V1)");
  const auto& iff = f.trace("I(V1)");
  for (std::size_t i = 0; i < va.size(); i += 20) {
    EXPECT_NEAR(va[i], vf[i], 1e-7) << "t = " << a.times[i];
    EXPECT_NEAR(ia[i], iff[i], 1e-10) << "t = " << a.times[i];
  }

  // UIC variant: the t = 0 sample is the caller's initial state, not a
  // solved point — both formulations must record a zero branch current
  // there (regression: KCL recovery used to run against the unloaded
  // pinned tail).
  spec.use_ic = true;
  spec.initial_conditions["out"] = 0.5;
  const TransientResult au = sim_a.transient(spec);
  const TransientResult fu = sim_f.transient(spec);
  ASSERT_TRUE(au.ok) << au.error;
  ASSERT_TRUE(fu.ok) << fu.error;
  EXPECT_DOUBLE_EQ(au.trace("I(V1)")[0], 0.0);
  EXPECT_DOUBLE_EQ(fu.trace("I(V1)")[0], 0.0);
  const auto& vau = au.trace("out");
  const auto& vfu = fu.trace("out");
  const auto& iau = au.trace("I(V1)");
  const auto& ifu = fu.trace("I(V1)");
  for (std::size_t i = 0; i < vau.size(); i += 20) {
    EXPECT_NEAR(vau[i], vfu[i], 1e-7) << "t = " << au.times[i];
    EXPECT_NEAR(iau[i], ifu[i], 1e-10) << "t = " << au.times[i];
  }
}

TEST(Transient, FloatingCapacitorHoldsChargeWhenSwitchesOpen) {
  // The FIA reservoir construct: a capacitor between two internal nodes,
  // charged through MOSFET switches that then open.  The floating cap must
  // hold its rail-to-rail voltage (only the load discharges it).
  const auto nmos = pdk::mos_params(false, pdk::typical_corner(), 30e-9);
  const auto pmos = pdk::mos_params(true, pdk::typical_corner(), 30e-9);
  Circuit ckt;
  const auto vdd = ckt.node("vdd");
  const auto pc = ckt.node("pc");
  const auto pcb = ckt.node("pcb");
  const auto top = ckt.node("top");
  const auto bot = ckt.node("bot");
  ckt.add_vsource("VDD", vdd, Circuit::ground(), Waveform::dc(0.9));
  // Switches open at 0.2 ns: pc rises (PMOS off), pcb falls (NMOS off).
  ckt.add_vsource("VPC", pc, Circuit::ground(),
                  Waveform::pulse(0.0, 0.9, 0.2e-9, 10e-12, 10e-12, 1.0, 0.0));
  ckt.add_vsource("VPCB", pcb, Circuit::ground(),
                  Waveform::pulse(0.9, 0.0, 0.2e-9, 10e-12, 10e-12, 1.0, 0.0));
  ckt.add_mosfet("Msw_top", top, pc, vdd, pmos, 2e-6, 30e-9);
  ckt.add_mosfet("Msw_bot", bot, pcb, Circuit::ground(), nmos, 2e-6, 30e-9);
  ckt.add_capacitor("Cres", top, bot, 100e-15);
  // A resistive load across the floating cap discharges it slowly.
  ckt.add_resistor("RL", top, bot, 1e6);  // tau = 100 ns >> sim window
  Simulator sim(ckt);
  TransientSpec spec;
  spec.t_stop = 2e-9;
  spec.dt = 2e-12;
  spec.record = {"top", "bot"};
  const TransientResult res = sim.transient(spec);
  ASSERT_TRUE(res.ok) << res.error;
  const auto& vt = res.trace("top");
  const auto& vb = res.trace("bot");
  // Charged to the rails at DC...
  EXPECT_NEAR(vt.front() - vb.front(), 0.9, 1e-3);
  // ...and still holding (minus the slow RC droop) after the switches open.
  const double v_end = vt.back() - vb.back();
  const double expected = 0.9 * std::exp(-(2e-9 - 0.2e-9) / (1e6 * 100e-15));
  EXPECT_NEAR(v_end, expected, 0.02);
}

TEST(Transient, BoostedPassGateSharesChargeBidirectionally) {
  // The DRAM access construct: a boosted NMOS pass-gate between two caps,
  // with the *source* side above the drain side (reverse conduction — the
  // channel-symmetry path of the Level-1 model).
  const auto nmos = pdk::mos_params(false, pdk::typical_corner(), 50e-9);
  Circuit ckt;
  const auto cellv = ckt.node("cellv");
  const auto wl = ckt.node("wl");
  const auto wr = ckt.node("wr");
  const auto bl = ckt.node("bl");
  const auto blp = ckt.node("blp");
  const auto peq = ckt.node("peq");
  const auto cell = ckt.node("cell");
  // Cell written to 0.8 V, bitline precharged to 0.45 V; both switches
  // open before the wordline rises at 0.5 ns.
  ckt.add_vsource("VCELL", cellv, Circuit::ground(), Waveform::dc(0.8));
  ckt.add_vsource("VBLP", blp, Circuit::ground(), Waveform::dc(0.45));
  ckt.add_vsource("VWR", wr, Circuit::ground(),
                  Waveform::pulse(1.35, 0.0, 0.1e-9, 10e-12, 10e-12, 1.0, 0.0));
  ckt.add_vsource("VPEQ", peq, Circuit::ground(),
                  Waveform::pulse(1.35, 0.0, 0.1e-9, 10e-12, 10e-12, 1.0, 0.0));
  ckt.add_vsource("VWL", wl, Circuit::ground(),
                  Waveform::pulse(0.0, 1.35, 0.5e-9, 50e-12, 50e-12, 1.0, 0.0));
  ckt.add_mosfet("Mwr", cell, wr, cellv, nmos, 1e-6, 30e-9);
  ckt.add_mosfet("Mpeq", bl, peq, blp, nmos, 1e-6, 30e-9);
  ckt.add_mosfet("Macc", bl, wl, cell, nmos, 0.28e-6, 50e-9);
  ckt.add_capacitor("Cs", cell, Circuit::ground(), 12e-15);
  ckt.add_capacitor("Cbl", bl, Circuit::ground(), 24e-15);
  Simulator sim(ckt);
  TransientSpec spec;
  spec.t_stop = 3e-9;
  spec.dt = 2e-12;
  spec.record = {"cell", "bl"};
  const TransientResult res = sim.transient(spec);
  ASSERT_TRUE(res.ok) << res.error;
  // Charge conservation: 12f * 0.8 + 24f * 0.45 -> 36f * V  =>  V ~ 0.5667.
  const double v_share = (12e-15 * 0.8 + 24e-15 * 0.45) / 36e-15;
  EXPECT_NEAR(res.trace("bl").back(), v_share, 0.01);
  EXPECT_NEAR(res.trace("cell").back(), v_share, 0.01);
}

TEST(Measure, DifferenceOfTracePair) {
  const std::vector<double> a = {1.0, 3.0, 5.0};
  const std::vector<double> b = {0.5, 1.0, 1.5};
  const auto d = difference(a, b);
  ASSERT_EQ(d.size(), 3u);
  EXPECT_DOUBLE_EQ(d[0], 0.5);
  EXPECT_DOUBLE_EQ(d[2], 3.5);
  EXPECT_THROW((void)difference(a, std::vector<double>{1.0}), std::invalid_argument);
}

TEST(Measure, CapacitorRechargeEnergy) {
  // 100 fF recharged by 0.25 V from a 0.9 V rail: C * Vdd * |dV|.
  EXPECT_DOUBLE_EQ(capacitor_recharge_energy(100e-15, 0.9, 0.9, 0.65), 100e-15 * 0.9 * 0.25);
  // Direction-independent magnitude; zero swing costs nothing.
  EXPECT_DOUBLE_EQ(capacitor_recharge_energy(100e-15, 0.9, 0.65, 0.9),
                   capacitor_recharge_energy(100e-15, 0.9, 0.9, 0.65));
  EXPECT_DOUBLE_EQ(capacitor_recharge_energy(100e-15, 0.9, 0.4, 0.4), 0.0);
}

TEST(Measure, CrossingAndIntegral) {
  const std::vector<double> t = {0.0, 1.0, 2.0, 3.0};
  const std::vector<double> v = {0.0, 1.0, 0.0, 1.0};
  const auto rise = first_crossing(t, v, 0.5, CrossDirection::Rising);
  ASSERT_TRUE(rise.has_value());
  EXPECT_DOUBLE_EQ(*rise, 0.5);
  const auto fall = first_crossing(t, v, 0.5, CrossDirection::Falling);
  ASSERT_TRUE(fall.has_value());
  EXPECT_DOUBLE_EQ(*fall, 1.5);
  const auto late = first_crossing(t, v, 0.5, CrossDirection::Rising, 1.6);
  ASSERT_TRUE(late.has_value());
  EXPECT_DOUBLE_EQ(*late, 2.5);
  EXPECT_FALSE(first_crossing(t, v, 2.0, CrossDirection::Rising).has_value());
  EXPECT_DOUBLE_EQ(integrate(t, v, 0.0, 3.0), 1.5);
  EXPECT_DOUBLE_EQ(integrate(t, v, 0.5, 1.5), 0.75);
  EXPECT_DOUBLE_EQ(min_in_window(t, v, 0.5, 2.5), 0.0);
  EXPECT_DOUBLE_EQ(max_in_window(t, v, 0.0, 1.2), 1.0);
}

TEST(Parser, NumbersWithSuffixes) {
  EXPECT_DOUBLE_EQ(parse_spice_number("10k"), 1e4);
  EXPECT_DOUBLE_EQ(parse_spice_number("100f"), 1e-13);
  EXPECT_DOUBLE_EQ(parse_spice_number("3meg"), 3e6);
  EXPECT_DOUBLE_EQ(parse_spice_number("2.5n"), 2.5e-9);
  EXPECT_DOUBLE_EQ(parse_spice_number("0.9"), 0.9);
  EXPECT_DOUBLE_EQ(parse_spice_number("1u"), 1e-6);
  EXPECT_THROW((void)parse_spice_number("abc"), std::runtime_error);
}

TEST(Parser, RcNetlistSimulates) {
  const std::string text = R"(* RC lowpass
VIN in 0 PULSE(0 1 0.1n 1p 1p 10n)
R1 in out 10k
C1 out 0 100f
.tran 2p 5n
.end
)";
  const ParsedNetlist parsed = parse_netlist(text);
  ASSERT_TRUE(parsed.tran.has_value());
  EXPECT_EQ(parsed.circuit.resistors().size(), 1u);
  EXPECT_EQ(parsed.circuit.capacitors().size(), 1u);
  Simulator sim(parsed.circuit);
  const TransientResult res = sim.transient(*parsed.tran);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_NEAR(value_at(res.times, res.trace("out"), 1.1e-9),
              1.0 - std::exp(-1.0), 0.02);
}

TEST(Parser, MosfetAndControlCards) {
  const std::string text = R"(
VDD vdd 0 0.9
VIN in 0 DC 0.45
M1 out in 0 NMOS W=1u L=60n
M2 out in vdd PMOS W=2u L=60n
.ic V(out)=0.5
.tran 1p 1n uic
.end
)";
  const ParsedNetlist parsed = parse_netlist(text);
  EXPECT_EQ(parsed.circuit.mosfets().size(), 2u);
  EXPECT_TRUE(parsed.circuit.mosfets()[1].params.is_pmos);
  EXPECT_DOUBLE_EQ(parsed.circuit.mosfets()[0].w, 1e-6);
  ASSERT_TRUE(parsed.tran.has_value());
  EXPECT_TRUE(parsed.tran->use_ic);
  EXPECT_DOUBLE_EQ(parsed.tran->initial_conditions.at("out"), 0.5);
}

TEST(Parser, MalformedLineReportsLineNumber) {
  try {
    (void)parse_netlist("R1 a b\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos);
  }
}

TEST(Parser, MalformedPulseAndMosfetReportErrors) {
  // A PULSE stimulus with too few values (the clocked-testbench stimulus
  // shape every SPICE backend uses) must fail, naming the line.
  try {
    (void)parse_netlist("VDD vdd 0 0.9\nVCLK clk 0 PULSE(0 0.9 1n)\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
    EXPECT_NE(what.find("PULSE"), std::string::npos) << what;
  }
  // A MOSFET without its NMOS/PMOS model card is rejected.
  EXPECT_THROW((void)parse_netlist("M1 d g 0 W=1u L=30n\n"), std::runtime_error);
  // A floating capacitor with a malformed value is rejected.
  EXPECT_THROW((void)parse_netlist("C1 top bot 100q\n"), std::runtime_error);
}

}  // namespace
}  // namespace glova::spice
