// Simulation reordering (paper Sec. V-B): order verification work so the
// most-likely-to-fail simulations run first and failures abort cheaply.
//
//   corner reordering:  t-SCORE_j = sum_i e_{j,i}        (Eq. 8)
//   MC reordering:      rho_j = Pearson(h-coordinates, g)  (Eq. 9)
//                       h-SCORE_{j,n} = sum_i (h_{j,n})_i * (rho_j)_i (Eq. 10)
//
// where g = sum_i g_i is the per-sample total degradation.  Corners with a
// higher t-SCORE and mismatch conditions with a higher h-SCORE are simulated
// first.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "circuits/testbench.hpp"

namespace glova::core {

/// Total degradation g = sum_i g_i of one simulated sample.
[[nodiscard]] double total_degradation(const circuits::PerformanceSpec& spec,
                                       std::span<const double> metrics);

/// Pearson correlation vector rho_j (Eq. 9) from the pre-sampled mismatch
/// conditions and their total degradations.
[[nodiscard]] std::vector<double> correlation_vector(
    const std::vector<std::vector<double>>& mismatch_conditions, std::span<const double> g);

/// h-SCORE of one mismatch condition against rho (Eq. 10).
[[nodiscard]] double h_score(std::span<const double> h, std::span<const double> rho);

/// Indices sorted by descending score (ties keep original order).
[[nodiscard]] std::vector<std::size_t> order_descending(std::span<const double> scores);

}  // namespace glova::core
