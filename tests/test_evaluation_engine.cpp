// Tests for the EvaluationEngine: memoization-cache correctness (hits return
// identical metrics, distinct mismatch draws never alias), counter semantics
// (requested == hits + executed == simulation_count()), LRU bounding, the
// parallelism cap, and the future-based submission path.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <set>
#include <thread>

#include "circuits/registry.hpp"
#include "core/evaluation_engine.hpp"
#include "pdk/variation.hpp"

namespace glova::core {
namespace {

std::vector<double> midpoint_design(const circuits::Testbench& tb) {
  std::vector<double> x01(tb.sizing().dimension(), 0.5);
  return tb.sizing().denormalize(x01);
}

TEST(EvaluationEngine, CacheHitReturnsIdenticalMetrics) {
  EvaluationEngine engine(circuits::make_testbench(circuits::Testcase::Sal));
  const auto x = midpoint_design(engine.testbench());
  const auto layout = engine.testbench().mismatch_layout(x, false);
  Rng rng(7);
  const auto hs = pdk::sample_mismatch_set(layout, 1, rng, pdk::GlobalMode::Zero);

  const auto first = engine.evaluate_one(x, pdk::typical_corner(), hs[0]);
  const auto second = engine.evaluate_one(x, pdk::typical_corner(), hs[0]);
  EXPECT_EQ(first, second);  // bit-identical, not re-simulated

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.requested, 2u);
  EXPECT_EQ(stats.executed, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);
}

TEST(EvaluationEngine, DistinctMismatchDrawsDoNotShareCacheEntries) {
  EvaluationEngine engine(circuits::make_testbench(circuits::Testcase::Sal));
  const auto x = midpoint_design(engine.testbench());
  const auto layout = engine.testbench().mismatch_layout(x, false);
  Rng rng(11);
  const auto hs = pdk::sample_mismatch_set(layout, 8, rng, pdk::GlobalMode::Zero);

  const auto batch = engine.evaluate_batch(x, pdk::typical_corner(), hs);
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.requested, 8u);
  EXPECT_EQ(stats.executed, 8u);  // every draw is distinct: no false sharing
  EXPECT_EQ(stats.cache_hits, 0u);
  // Different mismatch conditions really produce different metrics.
  EXPECT_NE(batch[0], batch[1]);

  // Re-requesting the same draws is now free.
  const auto again = engine.evaluate_batch(x, pdk::typical_corner(), hs);
  EXPECT_EQ(batch, again);
  EXPECT_EQ(engine.stats().executed, 8u);
  EXPECT_EQ(engine.stats().cache_hits, 8u);
}

TEST(EvaluationEngine, CountersMatchSimulationCountSemantics) {
  // simulation_count() keeps the paper's "# Simulation" meaning: every
  // *requested* evaluation counts, whether the cache answered it or not.
  EvaluationEngine engine(circuits::make_testbench(circuits::Testcase::Sal));
  const auto x = midpoint_design(engine.testbench());

  (void)engine.evaluate_one(x, pdk::typical_corner(), {});
  const std::vector<std::vector<double>> nominal(5);  // five nominal-h repeats
  (void)engine.evaluate_batch(x, pdk::typical_corner(), nominal);

  const EngineStats stats = engine.stats();
  EXPECT_EQ(engine.simulation_count(), 6u);
  EXPECT_EQ(stats.requested, engine.simulation_count());
  EXPECT_EQ(stats.requested, stats.executed + stats.cache_hits);
  EXPECT_EQ(stats.executed, 1u);  // one real run; five answered from cache

  engine.reset_count();
  EXPECT_EQ(engine.simulation_count(), 0u);
  EXPECT_EQ(engine.stats().executed, 0u);
  EXPECT_EQ(engine.stats().cache_hits, 0u);
}

TEST(EvaluationEngine, DisabledCacheAlwaysExecutes) {
  EngineConfig cfg;
  cfg.cache_capacity = 0;
  EvaluationEngine engine(circuits::make_testbench(circuits::Testcase::Fia), cfg);
  const auto x = midpoint_design(engine.testbench());
  (void)engine.evaluate_one(x, pdk::typical_corner(), {});
  (void)engine.evaluate_one(x, pdk::typical_corner(), {});
  EXPECT_EQ(engine.stats().executed, 2u);
  EXPECT_EQ(engine.stats().cache_hits, 0u);
  EXPECT_EQ(engine.cache_size(), 0u);
}

TEST(EvaluationEngine, LruEvictionKeepsCacheBounded) {
  EngineConfig cfg;
  cfg.cache_capacity = 2;
  EvaluationEngine engine(circuits::make_testbench(circuits::Testcase::Sal), cfg);
  const auto x = midpoint_design(engine.testbench());
  const auto corners = pdk::full_corner_set();

  (void)engine.evaluate_one(x, corners[0], {});
  (void)engine.evaluate_one(x, corners[1], {});
  (void)engine.evaluate_one(x, corners[2], {});  // evicts corners[0]
  EXPECT_EQ(engine.cache_size(), 2u);

  (void)engine.evaluate_one(x, corners[0], {});  // must re-run
  EXPECT_EQ(engine.stats().executed, 4u);
  (void)engine.evaluate_one(x, corners[2], {});  // still resident
  EXPECT_EQ(engine.stats().cache_hits, 1u);
}

TEST(EvaluationEngine, SubmitResolvesLikeEvaluateOne) {
  EvaluationEngine engine(circuits::make_testbench(circuits::Testcase::DramOcsa));
  const auto x = midpoint_design(engine.testbench());
  auto fut = engine.submit(x, pdk::typical_corner(), {});
  const auto async_metrics = fut.get();
  const auto sync_metrics = engine.evaluate_one(x, pdk::typical_corner(), {});
  EXPECT_EQ(async_metrics, sync_metrics);
  EXPECT_EQ(engine.simulation_count(), 2u);
  EXPECT_EQ(engine.stats().executed, 1u);

  // A cached submit resolves immediately.
  auto fut2 = engine.submit(x, pdk::typical_corner(), {});
  EXPECT_EQ(fut2.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(fut2.get(), sync_metrics);
}

TEST(EvaluationEngine, DestructionDrainsPendingSubmits) {
  // Discarding the future and destroying the engine must not leave a queued
  // task touching freed state: the destructor drains in-flight submits.
  const auto tb = circuits::make_testbench(circuits::Testcase::Sal);
  const auto x = midpoint_design(*tb);
  for (int round = 0; round < 4; ++round) {
    EvaluationEngine engine(tb);
    (void)engine.submit(x, pdk::typical_corner(), {});
    (void)engine.submit(x, pdk::full_corner_set()[round], {});
  }  // engine destroyed with results never collected
  SUCCEED();
}

/// Testbench that records the maximum number of concurrent evaluations.
class ConcurrencyProbeBench final : public circuits::Testbench {
 public:
  ConcurrencyProbeBench() {
    sizing_.names = {"x0"};
    sizing_.lower = {0.0};
    sizing_.upper = {1.0};
    performance_.metrics = {
        circuits::MetricSpec{"m", "u", 1.0, 1.0, circuits::Sense::MinimizeBelow}};
  }

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const circuits::SizingSpec& sizing() const override { return sizing_; }
  [[nodiscard]] const circuits::PerformanceSpec& performance() const override {
    return performance_;
  }
  [[nodiscard]] pdk::MismatchLayout mismatch_layout(std::span<const double>,
                                                    bool) const override {
    pdk::MismatchLayout layout;
    layout.names = {"h0"};
    layout.local_sigma = {1.0};
    layout.global_sigma = {0.0};
    return layout;
  }
  [[nodiscard]] std::vector<double> evaluate(std::span<const double>, const pdk::PvtCorner&,
                                             std::span<const double> h) const override {
    const int now = in_flight_.fetch_add(1) + 1;
    int seen = max_in_flight_.load();
    while (now > seen && !max_in_flight_.compare_exchange_weak(seen, now)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    in_flight_.fetch_sub(1);
    return {h.empty() ? 0.0 : h[0]};
  }

  [[nodiscard]] int max_in_flight() const { return max_in_flight_.load(); }

 private:
  std::string name_ = "concurrency-probe";
  circuits::SizingSpec sizing_;
  circuits::PerformanceSpec performance_;
  mutable std::atomic<int> in_flight_{0};
  mutable std::atomic<int> max_in_flight_{0};
};

TEST(EvaluationEngine, ParallelismSettingCapsFanOut) {
  const auto probe = std::make_shared<ConcurrencyProbeBench>();
  EngineConfig cfg;
  cfg.parallelism = 2;
  cfg.min_parallel_batch = 2;
  EvaluationEngine engine(probe, cfg);

  // 24 distinct mismatch draws so nothing is answered from the cache.
  std::vector<std::vector<double>> hs;
  for (int i = 0; i < 24; ++i) hs.push_back({static_cast<double>(i)});
  const std::vector<double> x = {0.5};
  const auto results = engine.evaluate_batch(x, pdk::typical_corner(), hs);

  ASSERT_EQ(results.size(), hs.size());
  for (std::size_t i = 0; i < hs.size(); ++i) EXPECT_EQ(results[i][0], hs[i][0]);  // order kept
  EXPECT_LE(probe->max_in_flight(), 2);
}

TEST(EvaluationEngine, SubmitHonorsTheParallelismCap) {
  // Individually submitted evaluations used to bypass EngineConfig::
  // parallelism entirely (documented gap); they now draw from the same
  // counting semaphore as evaluate_batch.
  const auto probe = std::make_shared<ConcurrencyProbeBench>();
  EngineConfig cfg;
  cfg.parallelism = 2;
  EvaluationEngine engine(probe, cfg);

  const std::vector<double> x = {0.5};
  std::vector<std::future<std::vector<double>>> futures;
  std::vector<std::vector<double>> hs;
  for (int i = 0; i < 24; ++i) hs.push_back({static_cast<double>(i)});
  for (const auto& h : hs) futures.push_back(engine.submit(x, pdk::typical_corner(), h));
  for (std::size_t i = 0; i < futures.size(); ++i) {
    EXPECT_EQ(futures[i].get()[0], hs[i][0]);
  }
  EXPECT_LE(probe->max_in_flight(), 2);
  EXPECT_EQ(engine.stats().executed, 24u);
}

TEST(EvaluationEngine, MixedSubmitAndBatchShareOneCap) {
  const auto probe = std::make_shared<ConcurrencyProbeBench>();
  EngineConfig cfg;
  cfg.parallelism = 3;
  cfg.min_parallel_batch = 2;
  EvaluationEngine engine(probe, cfg);

  const std::vector<double> x = {0.5};
  std::vector<std::future<std::vector<double>>> futures;
  for (int i = 0; i < 8; ++i) {
    const std::vector<double> h = {100.0 + i};
    futures.push_back(engine.submit(x, pdk::typical_corner(), h));
  }
  std::vector<std::vector<double>> hs;
  for (int i = 0; i < 12; ++i) hs.push_back({static_cast<double>(i)});
  (void)engine.evaluate_batch(x, pdk::typical_corner(), hs);
  for (auto& f : futures) (void)f.get();
  EXPECT_LE(probe->max_in_flight(), 3);
}

/// Minimal three-way-mismatch testbench for key-quantization properties:
/// metrics echo the draw so result identity implies key identity.
class EchoBench final : public circuits::Testbench {
 public:
  EchoBench() {
    sizing_.names = {"x0"};
    sizing_.lower = {0.0};
    sizing_.upper = {1.0};
    performance_.metrics = {
        circuits::MetricSpec{"m", "u", 1.0, 1.0, circuits::Sense::MinimizeBelow}};
  }
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const circuits::SizingSpec& sizing() const override { return sizing_; }
  [[nodiscard]] const circuits::PerformanceSpec& performance() const override {
    return performance_;
  }
  [[nodiscard]] pdk::MismatchLayout mismatch_layout(std::span<const double>,
                                                    bool) const override {
    pdk::MismatchLayout layout;
    layout.names = {"h0", "h1", "h2"};
    layout.local_sigma = {1.0, 1.0, 1.0};
    layout.global_sigma = {0.0, 0.0, 0.0};
    return layout;
  }
  [[nodiscard]] std::vector<double> evaluate(std::span<const double>, const pdk::PvtCorner&,
                                             std::span<const double> h) const override {
    double sum = 0.0;
    for (std::size_t j = 0; j < h.size(); ++j) sum += (static_cast<double>(j) + 1.0) * h[j];
    return {sum};
  }

 private:
  std::string name_ = "echo-bench";
  circuits::SizingSpec sizing_;
  circuits::PerformanceSpec performance_;
};

TEST(EvaluationEngine, MemoKeyQuantizationProperty) {
  // Property-test the memo-key quantization on randomized draws: draws that
  // differ by at least one cache quantum in some coordinate never alias
  // (every grid-distinct draw executes), and sub-quantum perturbations of a
  // cached draw always hit.  parallelism=1 keeps intra-batch duplicate
  // resolution deterministic (inserts land in submission order).
  const double q = 1e-6;
  EngineConfig cfg;
  cfg.cache_quantum = q;
  cfg.cache_capacity = 4096;
  cfg.parallelism = 1;
  EvaluationEngine engine(std::make_shared<EchoBench>(), cfg);
  const std::vector<double> x = {0.5};

  Rng rng(2026);
  std::vector<std::vector<double>> hs;
  std::set<std::array<long long, 3>> grid_distinct;
  for (int i = 0; i < 200; ++i) {
    std::array<long long, 3> g{};
    std::vector<double> h(3);
    for (int j = 0; j < 3; ++j) {
      g[j] = std::llround(rng.uniform(-1000.0, 1000.0));
      h[j] = static_cast<double>(g[j]) * q;  // exactly on the quantization grid
    }
    grid_distinct.insert(g);
    hs.push_back(std::move(h));
  }
  (void)engine.evaluate_batch(x, pdk::typical_corner(), hs);
  // No aliasing: every grid-distinct draw was simulated; grid-equal repeats
  // were answered from cache.
  EXPECT_EQ(engine.stats().executed, grid_distinct.size());
  EXPECT_EQ(engine.stats().cache_hits, hs.size() - grid_distinct.size());

  // Perturbing every coordinate by strictly less than half a quantum rounds
  // to the same key: the whole batch must be served from cache.
  std::vector<std::vector<double>> perturbed = hs;
  for (auto& h : perturbed) {
    for (double& v : h) v += q * rng.uniform(-0.49, 0.49);
  }
  (void)engine.evaluate_batch(x, pdk::typical_corner(), perturbed);
  EXPECT_EQ(engine.stats().executed, grid_distinct.size()) << "sub-quantum perturbation re-ran";
  EXPECT_EQ(engine.stats().cache_hits, 2 * hs.size() - grid_distinct.size());
}

TEST(EvaluationEngine, SequentialParallelismNeverUsesThePool) {
  const auto probe = std::make_shared<ConcurrencyProbeBench>();
  EvaluationEngine engine(probe, /*parallelism=*/1);
  std::vector<std::vector<double>> hs;
  for (int i = 0; i < 20; ++i) hs.push_back({static_cast<double>(i)});
  (void)engine.evaluate_batch(std::vector<double>{0.5}, pdk::typical_corner(), hs);
  EXPECT_EQ(probe->max_in_flight(), 1);
}

}  // namespace
}  // namespace glova::core
