// Online surrogate for speculative evaluation (the opt-in
// EngineConfig::surrogate mode; see docs/architecture.md#speculative-evaluation).
//
// A small nn::Mlp regressor from the engine's evaluation inputs (corner
// features + design vector + zero-padded mismatch draw) to the testbench's
// metric vector, trained one Adam step per *executed* simulation — exactly
// the observations the memo cache records, so the model never learns from
// its own predictions.  The engine uses it to rank each candidate batch by
// predicted extremity and only pays SPICE price for the tail that could
// decide the worst case; the pruned middle is answered from the model.
//
// Everything is deterministic: network initialization uses a fixed seed,
// normalization is running Welford statistics updated in observation order,
// and save()/load() round-trip the full state (statistics, Mlp parameters,
// Adam moments) through the state_io frame so a model persisted in the memo
// cache file resumes training bit-identically in the next session.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <vector>

#include "nn/adam.hpp"
#include "nn/mlp.hpp"

namespace glova::core {

struct SurrogateConfig {
  /// Fraction of each pre-ranked candidate batch SPICE confirms; in (0, 1].
  double keep = 0.5;
  /// Executed observations the model must train on before it may prune.
  std::size_t warmup = 64;
  /// Hidden-layer width of the {in, hidden, hidden, out} regressor.
  std::size_t hidden_width = 24;
  double learning_rate = 1e-3;
};

class SurrogateModel {
 public:
  explicit SurrogateModel(SurrogateConfig config = {});

  /// Train on one executed (input, metrics) pair.  The first call fixes the
  /// input/output dimensions and builds the network; later calls with other
  /// dimensions throw std::invalid_argument.  Non-finite samples (penalty
  /// sentinels from failed evaluations) are skipped — they would poison the
  /// running statistics.
  void observe(std::span<const double> input, std::span<const double> metrics);

  [[nodiscard]] bool built() const { return mlp_ != nullptr; }
  /// True once the model has trained on at least `warmup` observations.
  [[nodiscard]] bool ready() const { return built() && observations_ >= config_.warmup; }
  [[nodiscard]] std::size_t input_dim() const;
  [[nodiscard]] std::size_t output_dim() const;
  [[nodiscard]] std::size_t observation_count() const { return observations_; }
  [[nodiscard]] std::uint64_t train_steps() const { return train_steps_; }
  [[nodiscard]] const SurrogateConfig& config() const { return config_; }

  /// Predicted metric vector (denormalized).  Requires built().
  [[nodiscard]] std::vector<double> predict(std::span<const double> input) const;

  /// Ranking score of one prediction: the largest |z-score| of its
  /// components under the running output statistics.  Batches are confirmed
  /// highest-extremity-first — predicted outliers are the candidates that
  /// can decide a worst case, so they are the ones worth full SPICE price.
  [[nodiscard]] double extremity(std::span<const double> prediction) const;

  /// Full-state round trip ("surrogate v1" frame: dimensions, observation
  /// counters, Welford statistics, Mlp parameters, Adam moments).  load()
  /// throws on malformed input or a dimension mismatch with a built model.
  void save(std::ostream& os) const;
  void load(std::istream& is);

 private:
  void build(std::size_t in, std::size_t out);
  [[nodiscard]] double in_std(std::size_t j) const;
  [[nodiscard]] double out_std(std::size_t j) const;

  SurrogateConfig config_;
  std::unique_ptr<nn::Mlp> mlp_;
  std::unique_ptr<nn::Adam> adam_;
  std::size_t observations_ = 0;
  std::uint64_t train_steps_ = 0;
  /// Running per-coordinate mean and sum of squared deviations (Welford).
  std::vector<double> in_mean_, in_m2_, out_mean_, out_m2_;
  std::vector<double> grad_;  ///< parameter-gradient scratch
};

}  // namespace glova::core
