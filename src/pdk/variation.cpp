#include "pdk/variation.hpp"

#include <cmath>
#include <stdexcept>

namespace glova::pdk {

double pelgrom_sigma_vth(double avt, double w, double l) {
  if (w <= 0.0 || l <= 0.0) throw std::invalid_argument("pelgrom_sigma_vth: non-positive geometry");
  return avt / std::sqrt(w * l);
}

double pelgrom_sigma_beta(double abeta, double w, double l) {
  if (w <= 0.0 || l <= 0.0) throw std::invalid_argument("pelgrom_sigma_beta: non-positive geometry");
  return abeta / std::sqrt(w * l);
}

MismatchLayout build_layout(const std::vector<DeviceGeometry>& devices,
                            const PelgromConstants& pelgrom, const GlobalSigmas& global_sigmas,
                            bool global_enabled) {
  MismatchLayout layout;
  layout.names.reserve(devices.size() * 2);
  layout.local_sigma.reserve(devices.size() * 2);
  layout.global_sigma.reserve(devices.size() * 2);
  for (const DeviceGeometry& dev : devices) {
    const double avt = dev.is_pmos ? pelgrom.avt_p : pelgrom.avt_n;
    layout.names.push_back(dev.name + ".dvth");
    layout.local_sigma.push_back(pelgrom_sigma_vth(avt, dev.w, dev.l));
    layout.global_sigma.push_back(global_enabled ? global_sigmas.vth : 0.0);

    layout.names.push_back(dev.name + ".dbeta");
    layout.local_sigma.push_back(pelgrom_sigma_beta(pelgrom.abeta, dev.w, dev.l));
    layout.global_sigma.push_back(global_enabled ? global_sigmas.beta : 0.0);
  }
  return layout;
}

std::vector<std::vector<double>> sample_mismatch_set(const MismatchLayout& layout, std::size_t n,
                                                     Rng& rng, GlobalMode mode) {
  const std::size_t r = layout.dimension();
  if (layout.local_sigma.size() != r || layout.global_sigma.size() != r) {
    throw std::invalid_argument("sample_mismatch_set: inconsistent layout");
  }
  std::vector<std::vector<double>> set;
  set.reserve(n);

  std::vector<double> h1(r, 0.0);
  const auto draw_global = [&] {
    for (std::size_t d = 0; d < r; ++d) h1[d] = rng.normal(0.0, layout.global_sigma[d]);
  };
  if (mode == GlobalMode::SharedDie) draw_global();

  for (std::size_t i = 0; i < n; ++i) {
    if (mode == GlobalMode::PerSample) draw_global();
    std::vector<double> h2(r);
    for (std::size_t d = 0; d < r; ++d) {
      const double mean = (mode == GlobalMode::Zero) ? 0.0 : h1[d];
      h2[d] = rng.normal(mean, layout.local_sigma[d]);
    }
    set.push_back(std::move(h2));
  }
  return set;
}

}  // namespace glova::pdk
