#include "core/campaign.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/log.hpp"
#include "common/text.hpp"

namespace glova::core {

// ---------------------------------------------------------------------------
// SweepSpec

std::vector<RunSpec> SweepSpec::expand() const {
  const auto tcs = testcases.empty() ? std::vector<circuits::Testcase>{base.testcase} : testcases;
  const auto algos = algorithms.empty() ? std::vector<Algorithm>{base.algorithm} : algorithms;
  const auto verifs = methods.empty() ? std::vector<VerifMethod>{base.method} : methods;
  const auto sds = seeds.empty() ? std::vector<std::uint64_t>{base.seed} : seeds;

  std::vector<RunSpec> out;
  out.reserve(tcs.size() * algos.size() * verifs.size() * sds.size());
  for (const auto tc : tcs) {
    for (const auto algo : algos) {
      for (const auto verif : verifs) {
        for (const auto seed : sds) {
          RunSpec spec = base;
          spec.testcase = tc;
          spec.algorithm = algo;
          spec.method = verif;
          spec.seed = seed;
          out.push_back(std::move(spec));
        }
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Result table

const char* to_string(SessionState state) {
  switch (state) {
    case SessionState::Pending: return "pending";
    case SessionState::Running: return "running";
    case SessionState::Finished: return "finished";
    case SessionState::Failed: return "failed";
  }
  return "?";
}

namespace {

std::optional<SessionState> session_state_from_string(std::string_view name) {
  for (const SessionState s : {SessionState::Pending, SessionState::Running,
                               SessionState::Finished, SessionState::Failed}) {
    if (name == to_string(s)) return s;
  }
  return std::nullopt;
}

}  // namespace

const CampaignEntry* CampaignResult::find(const RunSpec& spec) const {
  for (const CampaignEntry& entry : entries) {
    if (entry.spec == spec) return &entry;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Campaign internals

/// One scheduled session: the spec, the live optimizer (null once terminal),
/// and the bookkeeping that becomes a CampaignEntry.
struct Campaign::Session {
  RunSpec spec;
  std::unique_ptr<Optimizer> optimizer;
  SessionState state = SessionState::Pending;
  std::size_t steps = 0;
  std::size_t retries = 0;  ///< throw-and-replay recoveries so far
  GlovaResult result;  ///< copied from the optimizer when it terminates
  std::string error;

  [[nodiscard]] bool terminal() const {
    return state == SessionState::Finished || state == SessionState::Failed;
  }
};

/// Observer fan-out shared between the campaign and its per-session
/// forwarders.  shared_ptr-owned so forwarders survive Campaign moves.
struct Campaign::Hub {
  std::vector<std::shared_ptr<CampaignObserver>> observers;
};

/// RunObserver attached to each session that relays per-iteration events to
/// every campaign observer, tagged with the session's index and spec.
class Campaign::IterationForwarder final : public RunObserver {
 public:
  IterationForwarder(std::shared_ptr<Hub> hub, std::size_t index, RunSpec spec)
      : hub_(std::move(hub)), index_(index), spec_(std::move(spec)) {}

  void on_iteration(Optimizer&, const IterationTrace& trace, const EngineStats& stats) override {
    for (const auto& obs : hub_->observers) obs->on_iteration(index_, spec_, trace, stats);
  }

 private:
  std::shared_ptr<Hub> hub_;
  std::size_t index_;
  RunSpec spec_;
};

Campaign::Campaign() : hub_(std::make_shared<Hub>()) {}

Campaign::Campaign(std::vector<RunSpec> specs, CampaignConfig config) : Campaign() {
  config_ = std::move(config);
  sessions_.reserve(specs.size());
  for (RunSpec& spec : specs) {
    Session session;
    session.spec = std::move(spec);
    session.optimizer = build_optimizer(session.spec);
    sessions_.push_back(std::move(session));
  }
  for (std::size_t i = 0; i < sessions_.size(); ++i) attach_forwarder(i);
}

Campaign::Campaign(const SweepSpec& sweep, CampaignConfig config)
    : Campaign(sweep.expand(), std::move(config)) {}

Campaign::Campaign(Campaign&&) noexcept = default;
Campaign& Campaign::operator=(Campaign&&) noexcept = default;
Campaign::~Campaign() = default;

circuits::TestbenchPtr Campaign::testbench_for(const RunSpec& spec) {
  if (config_.make_testbench) return config_.make_testbench(spec);
  // Registry default: validate the full spec (including availability), then
  // share one testbench per (testcase, backend) — testbenches are
  // stateless-const, so sharing cannot change any session's results.
  spec.validate();
  const std::pair<int, int> key{static_cast<int>(spec.testcase), static_cast<int>(spec.backend)};
  for (const auto& [k, tb] : shared_benches_) {
    if (k == key) return tb;
  }
  auto tb = circuits::make_testbench(spec.testcase, spec.backend);
  shared_benches_.emplace_back(key, tb);
  return tb;
}

std::unique_ptr<Optimizer> Campaign::build_optimizer(const RunSpec& spec) {
  return make_optimizer(spec, testbench_for(spec));
}

void Campaign::attach_forwarder(std::size_t index) {
  sessions_[index].optimizer->add_observer(
      std::make_shared<IterationForwarder>(hub_, index, sessions_[index].spec));
}

bool Campaign::retry_session(std::size_t index) {
  Session& s = sessions_[index];
  ++s.retries;
  // Replay is observer-silent, exactly like load(): already-reported
  // iterations must not log or forward twice, so the fresh session runs with
  // progress_log off and no forwarder until the replay succeeded.
  RunSpec quiet = s.spec;
  quiet.progress_log = false;
  std::unique_ptr<Optimizer> fresh;
  try {
    fresh = build_optimizer(quiet);
    for (std::size_t k = 0; k < s.steps; ++k) {
      if (!fresh->step()) return false;
    }
  } catch (const std::exception&) {
    return false;  // deterministic failure: the replay hit the same throw
  }
  if (fresh->done()) return false;  // drift: was live at the recorded count
  // Only now replace the broken optimizer — retire_failed still needs the
  // original (cancel() finalizes a partial result) when the retry fails.
  s.optimizer = std::move(fresh);
  if (s.spec.progress_log) s.optimizer->add_observer(std::make_shared<ProgressLogObserver>());
  attach_forwarder(index);
  return true;
}

void Campaign::retire_finished(std::size_t index) {
  Session& s = sessions_[index];
  s.state = SessionState::Finished;
  s.result = s.optimizer->result();
  s.optimizer.reset();
  result_valid_ = false;
  for (const auto& obs : hub_->observers) obs->on_session_finish(index, s.spec, s.result);
}

void Campaign::retire_failed(std::size_t index, std::string error) {
  Session& s = sessions_[index];
  s.state = SessionState::Failed;
  s.error = std::move(error);
  // cancel() between steps finalizes immediately with a well-formed partial
  // result (the session base guarantees this even after a throwing step).
  s.optimizer->cancel("campaign-session-error");
  s.result = s.optimizer->result();
  s.optimizer.reset();
  result_valid_ = false;
  for (const auto& obs : hub_->observers) obs->on_session_error(index, s.spec, s.error);
}

std::size_t Campaign::next_live(std::size_t from) const {
  const std::size_t n = sessions_.size();
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = (from + k) % n;
    if (!sessions_[i].terminal()) return i;
  }
  return n;
}

bool Campaign::step() {
  if (sessions_.empty()) return false;
  const std::size_t index = next_live(cursor_);
  if (index == sessions_.size()) return false;
  cursor_ = (index + 1) % sessions_.size();

  Session& s = sessions_[index];
  if (s.state == SessionState::Pending) {
    for (const auto& obs : hub_->observers) obs->on_session_start(index, s.spec);
    s.state = SessionState::Running;
    result_valid_ = false;
  }

  const std::size_t turn = config_.steps_per_turn == 0 ? 1 : config_.steps_per_turn;
  for (std::size_t t = 0; t < turn; ++t) {
    try {
      if (!s.optimizer->step()) break;
      ++s.steps;
      result_valid_ = false;
    } catch (const std::exception& e) {
      // Transient-error recovery: rebuild-and-replay the session (the load()
      // mechanism), draining the retry budget before retiring it — a
      // deterministic failure re-throws during every replay.  On success the
      // failed step is re-attempted on the session's next scheduling turn.
      bool recovered = false;
      while (s.retries < config_.max_session_retries) {
        if (retry_session(index)) {
          recovered = true;
          break;
        }
      }
      if (recovered) break;
      retire_failed(index, e.what());
      break;
    }
    if (s.optimizer->done()) break;
  }
  if (s.state == SessionState::Running && s.optimizer->done()) retire_finished(index);

  enforce_campaign_budget();
  return true;
}

void Campaign::enforce_campaign_budget() {
  if (config_.max_total_simulations == 0) return;
  if (total_simulations() < config_.max_total_simulations) return;
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    Session& s = sessions_[i];
    if (s.terminal()) continue;
    const bool was_pending = s.state == SessionState::Pending;
    s.optimizer->cancel("campaign-simulation-budget");
    if (was_pending) {
      for (const auto& obs : hub_->observers) obs->on_session_start(i, s.spec);
    }
    s.state = SessionState::Running;  // retire_finished asserts a live state
    retire_finished(i);
  }
}

const CampaignResult& Campaign::run() {
  while (step()) {
  }
  return result();
}

bool Campaign::done() const {
  for (const Session& s : sessions_) {
    if (!s.terminal()) return false;
  }
  return true;
}

std::size_t Campaign::session_count() const { return sessions_.size(); }

std::size_t Campaign::sessions_remaining() const {
  std::size_t live = 0;
  for (const Session& s : sessions_) live += s.terminal() ? 0 : 1;
  return live;
}

std::uint64_t Campaign::total_simulations() const {
  std::uint64_t total = 0;
  for (const Session& s : sessions_) {
    if (s.terminal()) {
      total += s.result.n_simulations;
    } else if (const EvaluationEngine* engine = s.optimizer->engine()) {
      total += engine->simulation_count();
    }
  }
  return total;
}

const CampaignResult& Campaign::result() const {
  if (!done()) {
    throw std::logic_error(
        "Campaign::result(): sessions still live; drive step() until done()");
  }
  if (!result_valid_) {
    result_.entries.clear();
    result_.entries.reserve(sessions_.size());
    result_.total_simulations = 0;
    result_.finished = 0;
    result_.failed = 0;
    result_.session_retries = 0;
    for (const Session& s : sessions_) {
      CampaignEntry entry;
      entry.spec = s.spec;
      entry.state = s.state;
      entry.steps = s.steps;
      entry.retries = s.retries;
      entry.result = s.result;
      entry.error = s.error;
      result_.entries.push_back(std::move(entry));
      result_.total_simulations += s.result.n_simulations;
      result_.session_retries += s.retries;
      result_.finished += s.state == SessionState::Finished ? 1 : 0;
      result_.failed += s.state == SessionState::Failed ? 1 : 0;
    }
    result_valid_ = true;
  }
  return result_;
}

void Campaign::add_observer(std::shared_ptr<CampaignObserver> observer) {
  if (observer) hub_->observers.push_back(std::move(observer));
}

// ---------------------------------------------------------------------------
// Checkpoint format (versioned, line-oriented text; doubles round-trip via
// max_digits10 like RunSpec).  See docs/architecture.md#checkpoint-format.

namespace {

constexpr const char* kMagic = "glova-campaign";
constexpr int kFormatVersion = 1;

/// Sanity cap on serialized element counts (sessions, vector lengths, trace
/// rows).  Real campaigns are orders of magnitude below this; a corrupt
/// count field must fail as a malformed-checkpoint error, not as a
/// multi-petabyte allocation.
constexpr std::size_t kMaxCheckpointCount = 1'000'000;

std::string fmt_double(double v) { return format_double_roundtrip(v); }

[[noreturn]] void bad_checkpoint(const std::string& what) {
  throw std::runtime_error("Campaign checkpoint: " + what);
}

/// Read one line and split off its leading keyword; throws when the stream
/// ends or the keyword differs from `expect`.
std::string expect_line(std::istream& is, std::string_view expect) {
  std::string line;
  if (!std::getline(is, line)) bad_checkpoint("unexpected end of input, expected '" +
                                              std::string(expect) + "'");
  const std::size_t space = line.find(' ');
  const std::string_view keyword =
      space == std::string::npos ? std::string_view(line)
                                 : std::string_view(line).substr(0, space);
  if (keyword != expect) {
    bad_checkpoint("expected '" + std::string(expect) + "', got '" + line + "'");
  }
  return space == std::string::npos ? std::string() : line.substr(space + 1);
}

std::uint64_t parse_u64_field(const std::string& text, std::string_view what) {
  try {
    std::size_t pos = 0;
    const std::uint64_t v = std::stoull(text, &pos);
    if (pos != text.size()) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    bad_checkpoint("invalid integer for " + std::string(what) + ": '" + text + "'");
  }
}

/// Newlines would break the line-oriented format; exception texts and
/// termination reasons are stored with them flattened to spaces.
std::string one_line(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return out;
}

void write_vector(std::ostream& os, const char* tag, const std::vector<double>& v) {
  os << tag << ' ' << v.size();
  for (const double x : v) os << ' ' << fmt_double(x);
  os << '\n';
}

std::vector<double> read_vector(std::istream& is, std::string_view tag) {
  std::istringstream line(expect_line(is, tag));
  std::size_t n = 0;
  if (!(line >> n)) bad_checkpoint("missing count after '" + std::string(tag) + "'");
  if (n > kMaxCheckpointCount) {
    bad_checkpoint("implausible '" + std::string(tag) + "' count " + std::to_string(n));
  }
  std::vector<double> out(n);
  for (double& x : out) {
    if (!(line >> x)) bad_checkpoint("truncated vector '" + std::string(tag) + "'");
  }
  return out;
}

void write_result(std::ostream& os, const GlovaResult& r) {
  os << "result " << (r.success ? 1 : 0) << ' ' << r.rl_iterations << ' ' << r.n_simulations
     << ' ' << r.n_simulations_executed << ' ' << r.n_cache_hits << ' ' << r.turbo_evaluations
     << ' ' << fmt_double(r.wall_seconds) << ' ' << fmt_double(r.modeled_runtime) << '\n';
  os << "stats " << r.engine_stats.requested << ' ' << r.engine_stats.executed << ' '
     << r.engine_stats.cache_hits << ' ' << r.engine_stats.dc_warm_hits << ' '
     << r.engine_stats.dc_warm_misses << ' ' << r.engine_stats.dc_warm_stores << '\n';
  os << "termination " << one_line(r.termination) << '\n';
  write_vector(os, "x01", r.x01_final);
  write_vector(os, "xphys", r.x_phys_final);
  os << "trace " << r.trace.size() << '\n';
  for (const IterationTrace& t : r.trace) {
    os << "t " << t.iteration << ' ' << fmt_double(t.reward_worst) << ' '
       << fmt_double(t.critic_mean) << ' ' << fmt_double(t.critic_bound) << ' '
       << (t.mu_sigma_pass ? 1 : 0) << ' ' << (t.attempted_verification ? 1 : 0) << ' '
       << t.sims_total << '\n';
  }
}

GlovaResult read_result(std::istream& is) {
  GlovaResult r;
  {
    std::istringstream line(expect_line(is, "result"));
    int success = 0;
    if (!(line >> success >> r.rl_iterations >> r.n_simulations >> r.n_simulations_executed >>
          r.n_cache_hits >> r.turbo_evaluations >> r.wall_seconds >> r.modeled_runtime)) {
      bad_checkpoint("malformed 'result' line");
    }
    r.success = success != 0;
  }
  {
    std::istringstream line(expect_line(is, "stats"));
    if (!(line >> r.engine_stats.requested >> r.engine_stats.executed >>
          r.engine_stats.cache_hits >> r.engine_stats.dc_warm_hits >>
          r.engine_stats.dc_warm_misses >> r.engine_stats.dc_warm_stores)) {
      bad_checkpoint("malformed 'stats' line");
    }
  }
  r.termination = expect_line(is, "termination");
  r.x01_final = read_vector(is, "x01");
  r.x_phys_final = read_vector(is, "xphys");
  const std::size_t trace_count = parse_u64_field(expect_line(is, "trace"), "trace count");
  if (trace_count > kMaxCheckpointCount) {
    bad_checkpoint("implausible trace count " + std::to_string(trace_count));
  }
  r.trace.reserve(trace_count);
  for (std::size_t i = 0; i < trace_count; ++i) {
    std::istringstream line(expect_line(is, "t"));
    IterationTrace t;
    int mu = 0;
    int att = 0;
    if (!(line >> t.iteration >> t.reward_worst >> t.critic_mean >> t.critic_bound >> mu >>
          att >> t.sims_total)) {
      bad_checkpoint("malformed trace row");
    }
    t.mu_sigma_pass = mu != 0;
    t.attempted_verification = att != 0;
    r.trace.push_back(t);
  }
  return r;
}

}  // namespace

void Campaign::save(std::ostream& os) const {
  os << kMagic << " v" << kFormatVersion << '\n';
  os << "max_total_simulations " << config_.max_total_simulations << '\n';
  os << "steps_per_turn " << config_.steps_per_turn << '\n';
  os << "cursor " << cursor_ << '\n';
  os << "sessions " << sessions_.size() << '\n';
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    const Session& s = sessions_[i];
    os << "session " << i << '\n';
    os << "spec " << s.spec.to_string() << '\n';
    os << "state " << to_string(s.state) << '\n';
    os << "steps " << s.steps << '\n';
    if (s.state == SessionState::Failed) os << "error " << one_line(s.error) << '\n';
    if (s.terminal()) write_result(os, s.result);
  }
  os << "end\n";
  if (!os) bad_checkpoint("write failed");
}

void Campaign::save_file(const std::string& path) const {
  // Crash-safe: write a temporary sibling first and rename it over the
  // destination only after the write fully succeeded, so an interrupted or
  // failed save can never truncate an existing good checkpoint.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp);
    if (!os) bad_checkpoint("cannot open '" + tmp + "' for writing");
    try {
      save(os);
    } catch (...) {
      os.close();
      std::remove(tmp.c_str());
      throw;
    }
    os.flush();
    os.close();
    if (!os) {
      std::remove(tmp.c_str());
      bad_checkpoint("write to '" + tmp + "' failed");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    bad_checkpoint("cannot rename '" + tmp + "' to '" + path + "'");
  }
}

Campaign Campaign::load(std::istream& is,
                        std::function<circuits::TestbenchPtr(const RunSpec&)> make_testbench) {
  {
    std::string magic;
    std::string version;
    std::string header;
    if (!std::getline(is, header)) bad_checkpoint("empty input");
    std::istringstream line(header);
    line >> magic >> version;
    if (magic != kMagic) bad_checkpoint("not a campaign checkpoint (bad magic '" + magic + "')");
    if (version != "v" + std::to_string(kFormatVersion)) {
      bad_checkpoint("unsupported format version '" + version + "' (this build reads v" +
                     std::to_string(kFormatVersion) + ")");
    }
  }

  Campaign campaign;
  campaign.config_.make_testbench = std::move(make_testbench);
  campaign.config_.max_total_simulations =
      parse_u64_field(expect_line(is, "max_total_simulations"), "max_total_simulations");
  campaign.config_.steps_per_turn = static_cast<std::size_t>(
      parse_u64_field(expect_line(is, "steps_per_turn"), "steps_per_turn"));
  campaign.cursor_ = static_cast<std::size_t>(parse_u64_field(expect_line(is, "cursor"), "cursor"));
  const std::size_t count =
      static_cast<std::size_t>(parse_u64_field(expect_line(is, "sessions"), "sessions"));
  if (count > kMaxCheckpointCount) {
    bad_checkpoint("implausible session count " + std::to_string(count));
  }

  campaign.sessions_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (parse_u64_field(expect_line(is, "session"), "session index") != i) {
      bad_checkpoint("session records out of order");
    }
    Session s;
    s.spec = RunSpec::from_string(expect_line(is, "spec"));
    const std::string state_name = expect_line(is, "state");
    const auto state = session_state_from_string(state_name);
    if (!state) bad_checkpoint("unknown session state '" + state_name + "'");
    s.state = *state;
    s.steps = static_cast<std::size_t>(parse_u64_field(expect_line(is, "steps"), "steps"));
    if (s.state == SessionState::Failed) s.error = expect_line(is, "error");
    if (s.terminal()) s.result = read_result(is);
    campaign.sessions_.push_back(std::move(s));
  }
  (void)expect_line(is, "end");
  if (campaign.cursor_ >= count && count > 0) bad_checkpoint("cursor out of range");

  // Rebuild in-flight sessions by deterministic replay: a fresh session
  // re-stepped to its recorded count reaches the same state as the one that
  // was checkpointed (fixed-seed determinism, pinned by the parity tests).
  // Replay is observer-silent: forwarders attach afterwards (observers added
  // post-load see only new iterations), and the spec's ProgressLogObserver
  // is attached after replay too so already-reported iterations do not log
  // twice.
  for (std::size_t i = 0; i < campaign.sessions_.size(); ++i) {
    Session& s = campaign.sessions_[i];
    if (s.terminal()) continue;
    RunSpec quiet = s.spec;
    quiet.progress_log = false;
    s.optimizer = campaign.build_optimizer(quiet);
    const std::size_t replay = s.steps;
    s.steps = 0;
    for (std::size_t k = 0; k < replay; ++k) {
      try {
        if (!s.optimizer->step()) break;
        ++s.steps;
      } catch (const std::exception& e) {
        campaign.retire_failed(i, e.what());
        break;
      }
    }
    if (s.steps != replay && s.state != SessionState::Failed) {
      bad_checkpoint("replay of session " + std::to_string(i) + " stopped after " +
                     std::to_string(s.steps) + " of " + std::to_string(replay) + " steps");
    }
    if (!s.terminal() && s.optimizer->done()) {
      // A replayed session should stop strictly before termination (it was
      // live at save time); tolerate drift by retiring it cleanly.
      s.state = SessionState::Running;
      campaign.retire_finished(i);
    }
    if (!s.terminal()) {
      if (s.spec.progress_log) s.optimizer->add_observer(std::make_shared<ProgressLogObserver>());
      campaign.attach_forwarder(i);
    }
  }
  return campaign;
}

Campaign Campaign::load_file(
    const std::string& path,
    std::function<circuits::TestbenchPtr(const RunSpec&)> make_testbench) {
  std::ifstream is(path);
  if (!is) bad_checkpoint("cannot open '" + path + "' for reading");
  return load(is, std::move(make_testbench));
}

}  // namespace glova::core
