#include "common/fsio.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include <fcntl.h>
#include <unistd.h>

namespace glova {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error("atomic_write_file: " + what + " '" + path + "': " +
                           std::strerror(errno));
}

}  // namespace

void atomic_write_file(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail("cannot open", tmp);
  const char* data = content.data();
  std::size_t remaining = content.size();
  while (remaining > 0) {
    const ssize_t n = ::write(fd, data, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      std::remove(tmp.c_str());
      fail("write to", tmp);
    }
    data += n;
    remaining -= static_cast<std::size_t>(n);
  }
  // Without the fsync, rename() can commit the *name* before the *data*: a
  // power loss in between leaves a zero-length or partial file under the
  // final path — exactly the corruption the temp-sibling pattern exists to
  // prevent.
  if (::fsync(fd) != 0) {
    ::close(fd);
    std::remove(tmp.c_str());
    fail("fsync of", tmp);
  }
  if (::close(fd) != 0) {
    std::remove(tmp.c_str());
    fail("close of", tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    fail("cannot rename to", path);
  }
}

}  // namespace glova
