// glova-serve wire protocol: newline-delimited request/response over a
// loopback TCP socket.
//
// Requests are one line each: an upper-case verb followed by space-separated
// arguments.  The full grammar (docs/serve.md documents every form):
//
//   SUBMIT <tenant> <sweep-spec text>      -> OK <job-id> | ERR <reason>
//   STATUS <job-id>                        -> OK <job-id> <state> steps=<n> tenant=<t>
//   RESULT <job-id>                        -> OK <job-id> <state>, result lines, END
//   WATCH <job-id>                         -> OK watching <job-id>, EVENT lines, END
//   CANCEL <job-id>                        -> OK <job-id> <state>
//   LIST                                   -> OK <count>, JOB lines, END
//   SHUTDOWN                               -> OK shutting-down
//
// Every response's first line starts with "OK" or "ERR"; multi-line payloads
// are terminated by a line that is exactly "END".  The sweep-spec text is the
// SweepSpec::to_string() "key=value" form, so jobs travel through the same
// canonical grammar the rest of the repo uses.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/campaign.hpp"

namespace glova::serve {

/// One parsed request line.  `verb` is the first token verbatim (the server
/// rejects unknown verbs, case-sensitively); `rest` is everything after the
/// verb with leading whitespace stripped; `args` is `rest` split on runs of
/// whitespace.
struct Request {
  std::string verb;
  std::string rest;
  std::vector<std::string> args;
};

[[nodiscard]] Request parse_request(std::string_view line);

/// Split on runs of spaces/tabs, dropping empty tokens.
[[nodiscard]] std::vector<std::string> split_tokens(std::string_view text);

/// Response first-line helpers ("OK <detail>" / "ERR <reason>", reason
/// flattened to one line).
[[nodiscard]] std::string ok_line(std::string_view detail);
[[nodiscard]] std::string err_line(std::string_view reason);

/// Terminator line for multi-line payloads.
inline constexpr std::string_view kEndLine = "END";

/// Canonical deterministic text of a campaign result table: header, then per
/// entry its spec, state, steps, retries, error, and the full GlovaResult in
/// the shared write_glova_result byte form — with wall_seconds zeroed, so two
/// fixed-seed runs of the same sweep compare byte-identical (the contract the
/// kill-restart smoke test and tests/test_serve.cpp pin).
[[nodiscard]] std::string format_campaign_result(const core::CampaignResult& table);

/// Blocking line-oriented I/O over a connected stream socket, shared by the
/// server's connection threads and the client CLI.  write_line appends '\n'
/// and sends with SIGPIPE suppressed; read_line strips the trailing newline
/// (and a carriage return, for telnet-style clients) and returns false on
/// EOF or error.
class LineIo {
 public:
  explicit LineIo(int fd) : fd_(fd) {}

  bool read_line(std::string& line);
  bool write_line(std::string_view line);

  /// One send() call per line keeps concurrent writers (command responses vs
  /// streamed events) from interleaving bytes mid-line.
  static bool write_line(int fd, std::string_view line);

 private:
  int fd_;
  std::string buffer_;
};

}  // namespace glova::serve
