// Waveform post-processing: the .measure equivalents the testbenches use to
// turn transient traces into performance metrics (delays, swings, energy).
#pragma once

#include <optional>
#include <span>
#include <vector>

namespace glova::spice {

enum class CrossDirection { Rising, Falling, Either };

/// First time `values` crosses `threshold` after `t_start` (linear
/// interpolation between samples).  Returns nullopt if it never does.
[[nodiscard]] std::optional<double> first_crossing(std::span<const double> times,
                                                   std::span<const double> values, double threshold,
                                                   CrossDirection direction, double t_start = 0.0);

/// Trapezoidal integral of `values` over `times` within [t0, t1].
[[nodiscard]] double integrate(std::span<const double> times, std::span<const double> values,
                               double t0, double t1);

/// Value at (or linearly interpolated around) time `t`.
[[nodiscard]] double value_at(std::span<const double> times, std::span<const double> values,
                              double t);

/// Extremes within [t0, t1].
[[nodiscard]] double min_in_window(std::span<const double> times, std::span<const double> values,
                                   double t0, double t1);
[[nodiscard]] double max_in_window(std::span<const double> times, std::span<const double> values,
                                   double t0, double t1);

/// Energy delivered by a supply: -integral(v * i) dt over [t0, t1]
/// (the source current convention makes delivered energy positive).
[[nodiscard]] double supply_energy(std::span<const double> times, std::span<const double> currents,
                                   double vdd, double t0, double t1);

/// Elementwise a - b (the differential of a trace pair, e.g. out_a - out_b
/// or the floating-reservoir rail-to-rail voltage).
[[nodiscard]] std::vector<double> difference(std::span<const double> a, std::span<const double> b);

/// Energy a rail at `v_supply` spends moving a capacitor between two
/// measured voltages through a switch: C * v_supply * |v_to - v_from|.
/// This is the ".measure"-style recharge accounting the dynamic testbenches
/// (FIA reservoir, DRAM bitline precharge) use to translate transient
/// droops into per-conversion energy without simulating the recharge phase.
[[nodiscard]] double capacitor_recharge_energy(double farads, double v_supply, double v_from,
                                               double v_to);

}  // namespace glova::spice
