// Reward shaping (paper Eqs. 4 and 5):
//
//   f_i = normalized margin of metric i          (positive = satisfied)
//   r'  = sum_i min(f_i, 0)
//   r   = r'            if r' < 0
//       = 0.2           otherwise (all constraints met)
#pragma once

#include <span>
#include <vector>

#include "circuits/testbench.hpp"

namespace glova::core {

inline constexpr double kSuccessReward = 0.2;

/// Normalized margins f_i for all metrics.
[[nodiscard]] std::vector<double> margins(const circuits::PerformanceSpec& spec,
                                          std::span<const double> metrics);

/// Eq. (4)/(5) reward from raw metric values.
[[nodiscard]] double reward_from_metrics(const circuits::PerformanceSpec& spec,
                                         std::span<const double> metrics);

/// Reward from precomputed margins.
[[nodiscard]] double reward_from_margins(std::span<const double> margins);

/// True iff every constraint is satisfied.
[[nodiscard]] bool all_constraints_met(const circuits::PerformanceSpec& spec,
                                       std::span<const double> metrics);

/// Worst (minimum) Eq. (4)/(5) reward across a set of simulated conditions —
/// the r_worst every optimizer and the verifier fold batches with.
[[nodiscard]] double worst_reward_of(const circuits::PerformanceSpec& spec,
                                     const std::vector<std::vector<double>>& metrics);

}  // namespace glova::core
