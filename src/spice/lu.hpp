// Dense LU factorization with partial pivoting.  MNA systems for the paper's
// testbenches have a few dozen unknowns, so a dense solver is both simpler
// and faster than a sparse one at this scale.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace glova::spice {

/// Row-major dense square matrix with a padded row stride.
///
/// Rows are stored with stride row_stride(n) — n rounded up to a multiple of
/// 4 — so the elimination inner loops vectorize cleanly; padded lanes are
/// kept at exactly 0.0, which leaves the arithmetic on real lanes
/// bit-identical to the unpadded layout.  One extra trailing element is a
/// write-only scratch slot (see scratch_index()): compiled stamp plans map
/// updates whose row or column is the eliminated ground node there, so the
/// stamping loop needs no per-entry ground branches; the slot is never read
/// by the solver.
class DenseMatrix {
 public:
  /// Row stride used for an n x n matrix: n rounded up to a multiple of 4.
  [[nodiscard]] static constexpr std::size_t row_stride(std::size_t n) {
    return (n + 3) & ~static_cast<std::size_t>(3);
  }

  DenseMatrix() = default;
  explicit DenseMatrix(std::size_t n) { resize_zero(n); }

  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] std::size_t stride() const { return stride_; }
  [[nodiscard]] double& at(std::size_t r, std::size_t c) { return data_[r * stride_ + c]; }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const { return data_[r * stride_ + c]; }

  void set_zero();
  /// Resize to n x n and zero.  Reuses existing storage when capacity allows,
  /// so a workspace matrix is allocation-free across same-size solves.
  void resize_zero(std::size_t n);
  [[nodiscard]] std::span<double> row(std::size_t r) { return {&data_[r * stride_], n_}; }

  /// Raw storage (row-major with stride(), scratch slot last).
  [[nodiscard]] double* data() { return data_.data(); }
  [[nodiscard]] const double* data() const { return data_.data(); }
  [[nodiscard]] std::size_t storage_size() const { return n_ * stride_ + 1; }
  /// Flat index of the write-only scratch slot.
  [[nodiscard]] std::size_t scratch_index() const { return n_ * stride_; }

 private:
  std::size_t n_ = 0;
  std::size_t stride_ = 0;
  std::vector<double> data_ = {0.0};  ///< n * stride + 1; scratch slot at the end
};

/// Factor A in place (returns false if singular to working precision) and
/// solve A x = b.  `perm` records the row permutation.
class LuSolver {
 public:
  /// Factor a copy of `a`.  Returns false on (numerical) singularity.
  [[nodiscard]] bool factor(const DenseMatrix& a);

  /// The internal factorization buffer, sized for an n-unknown system.
  /// Callers on the hot path assemble directly into this matrix and then
  /// call factor_in_place(), skipping the copy factor() makes.
  [[nodiscard]] DenseMatrix& matrix(std::size_t n);

  /// Factor whatever matrix() currently holds, destroying it.  Returns
  /// false on (numerical) singularity.
  [[nodiscard]] bool factor_in_place();

  /// Factor matrix() in place while eliminating `b` alongside it (Gaussian
  /// elimination on the augmented system), then back-substitute into `x`.
  /// Arithmetically identical to factor_in_place() + solve_into(b, x) —
  /// same operations in the same order — but a single pass: the Newton hot
  /// loop saves the separate forward-substitution sweep and the permutation
  /// indirection.  `b` is destroyed; `x` is resized to n (capacity reused).
  /// Unlike factor(), this does NOT leave a solve()-ready factorization
  /// behind (the L region is clobbered for vectorization); reassemble and
  /// refactor before any subsequent solve call.
  [[nodiscard]] bool factor_solve_in_place(std::span<double> b, std::vector<double>& x);

  /// Solve using the last successful factorization.
  [[nodiscard]] std::vector<double> solve(std::span<const double> b) const;

  /// Solve into a caller-provided vector (resized to n; reuses capacity so
  /// repeated solves allocate nothing).  `x` must not alias `b`.
  void solve_into(std::span<const double> b, std::vector<double>& x) const;

 private:
  DenseMatrix lu_;
  std::vector<std::size_t> perm_;
};

}  // namespace glova::spice
