// Pearson correlation, used by the MC reordering method (paper Eq. 9):
// for each mismatch-parameter dimension, the correlation between that
// parameter across the pre-sampled conditions and the scalar degradation
// score g of each condition ranks which directions in mismatch space hurt.
#pragma once

#include <span>
#include <vector>

namespace glova::stats {

/// Pearson correlation coefficient between two equal-length series.
/// Returns 0 when either series is (numerically) constant or shorter than 2.
[[nodiscard]] double pearson(std::span<const double> xs, std::span<const double> ys);

/// Column-wise Pearson correlation (paper Eq. 9).
/// `rows` holds n vectors of equal dimension r (the mismatch conditions
/// h_{j,n}); `g` holds the n scalar scores.  Returns the r-dimensional
/// correlation vector rho_j.
[[nodiscard]] std::vector<double> pearson_columns(const std::vector<std::vector<double>>& rows,
                                                  std::span<const double> g);

}  // namespace glova::stats
