// Batched mismatch-draw evaluator tests: BatchSimulator congruence checking,
// bit-identity of the batched backend paths against the sequential reference
// (default options), tolerance bands for the Newton LU-bypass and
// LTE-adaptive variants, warm-start cache accounting, and the evaluation
// engine's draw-group routing with memo-cache composition.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "backend_parity_grid.hpp"
#include "circuits/registry.hpp"
#include "common/rng.hpp"
#include "core/evaluation_engine.hpp"
#include "pdk/corner.hpp"
#include "pdk/variation.hpp"
#include "spice/batch.hpp"
#include "spice/circuit.hpp"
#include "spice/counters.hpp"
#include "spice/simulator.hpp"
#include "spice/warm_start.hpp"

namespace glova::spice {
namespace {

circuits::Testcase testcase_for(int index) {
  switch (index) {
    case 0: return circuits::Testcase::Sal;
    case 1: return circuits::Testcase::Fia;
    default: return circuits::Testcase::DramOcsa;
  }
}

/// A nominal lane plus `count` deterministic local draws of one design.
std::vector<std::vector<double>> draw_group(const circuits::Testbench& tb,
                                            std::span<const double> x, std::size_t count,
                                            std::uint64_t seed) {
  Rng rng(seed);
  const auto layout = tb.mismatch_layout(x, false);
  auto hs = pdk::sample_mismatch_set(layout, count, rng, pdk::GlobalMode::Zero);
  hs.insert(hs.begin(), std::vector<double>{});
  return hs;
}

/// Pin the process-wide simulator switches to the documented defaults; the
/// engine constructor and other tests may have flipped them.
void reset_simulator_defaults() {
  set_adaptive_timestep_default(false);
  set_newton_bypass_default(false);
  set_dc_warm_start_enabled(true);
}

TEST(BatchSimulator, RejectsNonCongruentLanes) {
  Circuit a;
  const auto n1 = a.node("n1");
  a.add_vsource("V1", n1, Circuit::ground(), Waveform::dc(1.0));
  a.add_resistor("R1", n1, Circuit::ground(), 1e3);

  // Values may differ between lanes; structure may not.
  Circuit same = a;
  Circuit extra = a;
  extra.add_capacitor("C1", n1, Circuit::ground(), 1e-15);

  std::vector<Circuit> ok_lanes;
  ok_lanes.push_back(a);
  ok_lanes.push_back(same);
  EXPECT_NO_THROW(BatchSimulator{ok_lanes});

  std::vector<Circuit> bad_lanes;
  bad_lanes.push_back(a);
  bad_lanes.push_back(extra);
  EXPECT_THROW(BatchSimulator{bad_lanes}, std::invalid_argument);
}

class BatchedDrawParity : public ::testing::TestWithParam<int> {};

// With adaptive stepping and Newton bypass off, the batched path promises
// *bit-identical* metrics: per lane the Newton arithmetic is the scalar
// simulator's, and the internal rolling DC seed reproduces the sequential
// warm-start cache exactly.
TEST_P(BatchedDrawParity, BitIdenticalToSequentialWithDefaultOptions) {
  const circuits::Testcase tc = testcase_for(GetParam());
  const auto tb = circuits::make_testbench(tc, circuits::Backend::Spice);
  reset_simulator_defaults();

  const auto designs = parity_grid::designs_x01(tc);
  const auto corners = parity_grid::corners();
  for (std::size_t d = 0; d < designs.size(); ++d) {
    const auto x = tb->sizing().denormalize(designs[d]);
    const auto hs = draw_group(*tb, x, 3, 100 + d);
    for (std::size_t c = 0; c < corners.size(); ++c) {
      thread_local_dc_cache().clear();
      std::vector<std::vector<double>> seq;
      for (const auto& h : hs) seq.push_back(tb->evaluate(x, corners[c], h));

      thread_local_dc_cache().clear();
      const auto bat = tb->evaluate_draws(x, corners[c], hs);

      ASSERT_EQ(bat.size(), seq.size());
      for (std::size_t i = 0; i < seq.size(); ++i) {
        ASSERT_EQ(bat[i].size(), seq[i].size());
        for (std::size_t mi = 0; mi < seq[i].size(); ++mi) {
          EXPECT_EQ(bat[i][mi], seq[i][mi])
              << circuits::to_string(tc) << " design " << d << " corner " << c << " draw " << i
              << " metric " << mi;
        }
      }
    }
  }
}

// With LTE-adaptive stepping the grids differ, so metrics agree only within
// the controller's truncation-error tolerance.  The 3% band is ~4x the worst
// deviation observed across the parity grid (see docs/architecture.md).
TEST_P(BatchedDrawParity, AdaptiveTimestepStaysWithinToleranceBand) {
  const circuits::Testcase tc = testcase_for(GetParam());
  const auto tb = circuits::make_testbench(tc, circuits::Backend::Spice);
  reset_simulator_defaults();

  const auto designs = parity_grid::designs_x01(tc);
  const auto corners = parity_grid::corners();
  for (std::size_t d = 0; d < 2; ++d) {  // two designs bound the runtime
    const auto x = tb->sizing().denormalize(designs[d]);
    const auto hs = draw_group(*tb, x, 2, 100 + d);
    for (std::size_t c = 0; c < corners.size(); ++c) {
      thread_local_dc_cache().clear();
      std::vector<std::vector<double>> ref;
      for (const auto& h : hs) ref.push_back(tb->evaluate(x, corners[c], h));

      set_adaptive_timestep_default(true);
      thread_local_dc_cache().clear();
      const auto bat = tb->evaluate_draws(x, corners[c], hs);
      set_adaptive_timestep_default(false);

      ASSERT_EQ(bat.size(), ref.size());
      for (std::size_t i = 0; i < ref.size(); ++i) {
        for (std::size_t mi = 0; mi < ref[i].size(); ++mi) {
          EXPECT_NEAR(bat[i][mi], ref[i][mi], 0.03 * std::abs(ref[i][mi]) + 1e-12)
              << circuits::to_string(tc) << " design " << d << " corner " << c << " draw " << i
              << " metric " << mi;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllTestcases, BatchedDrawParity, ::testing::Range(0, 3));

// Newton LU-bypass keeps the grid but solves chord iterations on retained
// factors; converged solutions move only within the Newton tolerance, and
// chord solves must dominate refactors for the optimization to be worth it.
TEST(BatchedDraws, NewtonBypassWithinToleranceAndChordDominates) {
  const auto tb = circuits::make_testbench(circuits::Testcase::Sal, circuits::Backend::Spice);
  reset_simulator_defaults();
  const auto x = tb->sizing().denormalize(parity_grid::designs_x01(circuits::Testcase::Sal)[0]);
  const auto hs = draw_group(*tb, x, 3, 7);
  const pdk::PvtCorner corner = pdk::typical_corner();

  thread_local_dc_cache().clear();
  std::vector<std::vector<double>> ref;
  for (const auto& h : hs) ref.push_back(tb->evaluate(x, corner, h));

  set_newton_bypass_default(true);
  thread_local_dc_cache().clear();
  reset_spice_counters();
  const auto bat = tb->evaluate_draws(x, corner, hs);
  set_newton_bypass_default(false);

  const SpiceCounters c = spice_counters();
  EXPECT_GT(c.bypass_solves, 0u);
  EXPECT_GT(c.bypass_solves, 4 * c.bypass_refactors);

  ASSERT_EQ(bat.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    for (std::size_t mi = 0; mi < ref[i].size(); ++mi) {
      EXPECT_NEAR(bat[i][mi], ref[i][mi], 1e-4 * std::abs(ref[i][mi]) + 1e-15)
          << "draw " << i << " metric " << mi;
    }
  }
}

// One group lookup plus internal seed rolling must report the same
// hit/miss/store totals the sequential per-draw path would.
TEST(BatchedDraws, WarmStartAccountingMatchesSequentialSemantics) {
  const auto tb = circuits::make_testbench(circuits::Testcase::Sal, circuits::Backend::Spice);
  reset_simulator_defaults();
  const auto x = tb->sizing().denormalize(parity_grid::designs_x01(circuits::Testcase::Sal)[0]);
  const auto hs = draw_group(*tb, x, 3, 11);  // 4 lanes
  const pdk::PvtCorner corner = pdk::typical_corner();

  // Cold cache: the group lookup misses, lane 0 cold-solves and stores, the
  // three remaining lanes warm-start off the rolling seed (credited hits).
  thread_local_dc_cache().clear();
  reset_warm_start_stats();
  (void)tb->evaluate_draws(x, corner, hs);
  WarmStartStats s = warm_start_stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.stores, 1u);
  EXPECT_EQ(s.hits, 3u);

  // Warm cache: the group lookup hits, every lane warm-starts — exactly the
  // four hits four sequential lookups would have counted, and no store.
  reset_warm_start_stats();
  (void)tb->evaluate_draws(x, corner, hs);
  s = warm_start_stats();
  EXPECT_EQ(s.misses, 0u);
  EXPECT_EQ(s.stores, 0u);
  EXPECT_EQ(s.hits, 4u);
}

// EngineConfig::batched_draws routes the misses of one evaluate_batch call
// through the testbench's batched evaluator; memoization composes and the
// new EngineStats counters surface the activity.
TEST(BatchedDraws, EngineRoutesDrawGroupsAndComposesWithMemoCache) {
  const auto tb = circuits::make_testbench(circuits::Testcase::Sal, circuits::Backend::Spice);
  const auto x = tb->sizing().denormalize(parity_grid::designs_x01(circuits::Testcase::Sal)[0]);
  Rng rng(13);
  const auto layout = tb->mismatch_layout(x, false);
  const auto hs = pdk::sample_mismatch_set(layout, 3, rng, pdk::GlobalMode::Zero);
  const pdk::PvtCorner corner = pdk::typical_corner();

  core::EngineConfig seq_cfg;
  seq_cfg.parallelism = 1;
  seq_cfg.min_parallel_batch = 1000;  // keep the sequential path inline
  core::EngineConfig bat_cfg = seq_cfg;
  bat_cfg.batched_draws = true;

  thread_local_dc_cache().clear();
  core::EvaluationEngine seq_engine(tb, seq_cfg);
  const auto seq = seq_engine.evaluate_batch(x, corner, hs);
  EXPECT_EQ(seq_engine.stats().batch_groups, 0u);

  thread_local_dc_cache().clear();
  core::EvaluationEngine bat_engine(tb, bat_cfg);
  const auto bat = bat_engine.evaluate_batch(x, corner, hs);
  ASSERT_EQ(bat.size(), seq.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    for (std::size_t mi = 0; mi < seq[i].size(); ++mi) {
      EXPECT_EQ(bat[i][mi], seq[i][mi]) << "draw " << i << " metric " << mi;
    }
  }
  core::EngineStats stats = bat_engine.stats();
  EXPECT_EQ(stats.requested, 3u);
  EXPECT_EQ(stats.executed, 3u);
  EXPECT_EQ(stats.batch_groups, 1u);
  EXPECT_EQ(stats.batch_lanes, 3u);

  // The memo cache answers the repeat; no second group runs.
  const auto again = bat_engine.evaluate_batch(x, corner, hs);
  EXPECT_EQ(again, bat);
  stats = bat_engine.stats();
  EXPECT_EQ(stats.requested, 6u);
  EXPECT_EQ(stats.cache_hits, 3u);
  EXPECT_EQ(stats.executed, 3u);
  EXPECT_EQ(stats.batch_groups, 1u);

  // A single-miss group is not worth a batch: it runs through the scalar
  // path and the group counter stays put.
  const auto h_extra =
      pdk::sample_mismatch_set(layout, 1, rng, pdk::GlobalMode::Zero);
  (void)bat_engine.evaluate_batch(x, corner, h_extra);
  EXPECT_EQ(bat_engine.stats().batch_groups, 1u);

  reset_simulator_defaults();
}

}  // namespace
}  // namespace glova::spice
