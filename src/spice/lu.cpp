#include "spice/lu.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace glova::spice {

void DenseMatrix::set_zero() { std::fill(data_.begin(), data_.end(), 0.0); }

void DenseMatrix::resize_zero(std::size_t n) {
  n_ = n;
  data_.assign(n * n, 0.0);
}

bool LuSolver::factor(const DenseMatrix& a) {
  const std::size_t n = a.size();
  lu_ = a;
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting: pick the largest magnitude entry in this column.
    std::size_t pivot = col;
    double best = std::abs(lu_.at(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double mag = std::abs(lu_.at(r, col));
      if (mag > best) {
        best = mag;
        pivot = r;
      }
    }
    if (best < 1e-300) return false;  // singular
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(lu_.at(col, c), lu_.at(pivot, c));
      std::swap(perm_[col], perm_[pivot]);
    }
    const double inv_pivot = 1.0 / lu_.at(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = lu_.at(r, col) * inv_pivot;
      lu_.at(r, col) = factor;
      if (factor == 0.0) continue;
      for (std::size_t c = col + 1; c < n; ++c) {
        lu_.at(r, c) -= factor * lu_.at(col, c);
      }
    }
  }
  return true;
}

std::vector<double> LuSolver::solve(std::span<const double> b) const {
  std::vector<double> x;
  solve_into(b, x);
  return x;
}

void LuSolver::solve_into(std::span<const double> b, std::vector<double>& x) const {
  const std::size_t n = lu_.size();
  if (b.size() != n) throw std::invalid_argument("LuSolver::solve: size mismatch");
  x.resize(n);
  // Forward substitution with permutation.
  for (std::size_t r = 0; r < n; ++r) {
    double sum = b[perm_[r]];
    for (std::size_t c = 0; c < r; ++c) sum -= lu_.at(r, c) * x[c];
    x[r] = sum;
  }
  // Back substitution.
  for (std::size_t r = n; r-- > 0;) {
    double sum = x[r];
    for (std::size_t c = r + 1; c < n; ++c) sum -= lu_.at(r, c) * x[c];
    x[r] = sum / lu_.at(r, r);
  }
}

}  // namespace glova::spice
