// mu-sigma evaluation (paper Sec. V-A, Eq. 7): from the N' pre-sampled
// simulations of a corner, statistically decide whether the full N-sample
// verification is worth running.
//
//   e_i = E[g_i] + beta2 * sigma[g_i] <= 0  for every metric i
//
// where g_i is the *normalized degradation* (-f_i of Eq. 5; bigger = worse).
// The paper states Eq. (7) with raw metrics against c_i; we evaluate in the
// unit-free normalized space so e_i values are comparable across metrics,
// which Eq. (8)'s t-SCORE sum requires (see DESIGN.md, interpretation
// choices).  The pass/fail decision is order-isomorphic to the raw form.
// beta2 >= 4 compensates for how few samples N' provides.
#pragma once

#include <span>
#include <vector>

#include "circuits/testbench.hpp"

namespace glova::core {

struct MuSigmaResult {
  bool pass = false;
  std::vector<double> e;  ///< e_i per metric (normalized degradation bound)
  double t_score = 0.0;   ///< Eq. (8): sum_i e_i — corner severity rank key
};

/// Evaluate Eq. (7) over `metric_samples` (one vector of raw metric values
/// per simulated mismatch condition).
[[nodiscard]] MuSigmaResult mu_sigma_evaluate(const circuits::PerformanceSpec& spec,
                                              const std::vector<std::vector<double>>& metric_samples,
                                              double beta2);

}  // namespace glova::core
