#include "bench_common.hpp"

#include <cstdio>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string_view>

#include "common/log.hpp"
#include "core/campaign.hpp"

namespace glova::bench {

const char* to_string(Method m) {
  switch (m) {
    case Method::Glova: return "Ours";
    case Method::PvtSizing: return "PVTSizing";
    case Method::RobustAnalog: return "RobustAnalog";
  }
  return "?";
}

BenchOptions options_from_env() {
  BenchOptions opt;
  if (const char* s = std::getenv("GLOVA_BENCH_SEEDS")) opt.seeds = std::strtoul(s, nullptr, 10);
  if (const char* s = std::getenv("GLOVA_BENCH_MAXIT")) {
    opt.max_iterations = std::strtoul(s, nullptr, 10);
  }
  if (const char* s = std::getenv("GLOVA_BENCH_BACKEND")) {
    const auto backend = circuits::backend_from_string(s);
    if (!backend) {
      fprintf(stderr, "GLOVA_BENCH_BACKEND: unknown backend '%s' (behavioral, spice)\n", s);
      exit(2);
    }
    opt.backend = *backend;
  }
  if (const char* s = std::getenv("GLOVA_BENCH_BATCHED")) {
    opt.batched_draws = s[0] != '\0' && s[0] != '0';
  }
  if (const char* s = std::getenv("GLOVA_BENCH_MOS_MODEL")) {
    if (std::string_view(s) != "level1" && std::string_view(s) != "ekv") {
      fprintf(stderr, "GLOVA_BENCH_MOS_MODEL: unknown model '%s' (level1, ekv)\n", s);
      exit(2);
    }
    opt.mos_model = s;
  }
  if (const char* s = std::getenv("GLOVA_BENCH_SPICE_NOISE")) {
    opt.spice_noise = s[0] != '\0' && s[0] != '0';
  }
  if (const char* s = std::getenv("GLOVA_BENCH_CORNERS")) {
    if (std::string_view(s) != "all" && std::string_view(s) != "cold_lv") {
      fprintf(stderr, "GLOVA_BENCH_CORNERS: unknown corner_filter '%s' (all, cold_lv)\n", s);
      exit(2);
    }
    opt.corner_filter = s;
  }
  if (opt.seeds == 0) opt.seeds = 1;
  return opt;
}

CellStats run_cell(Method method, circuits::Testcase testcase, core::VerifMethod verif,
                   const BenchOptions& options) {
  set_log_level(LogLevel::Warn);

  // One cell = one campaign: the sweep expands the seeds, core::Campaign
  // schedules the sessions over the shared evaluation stack (sharing one
  // testbench per (testcase, backend), exactly as this harness did by hand
  // before) and aggregates per-spec results into one table.
  core::SweepSpec sweep;
  sweep.base.testcase = testcase;
  sweep.base.backend = options.backend;
  sweep.base.algorithm = method;
  sweep.base.method = verif;
  sweep.base.max_iterations = options.max_iterations;
  sweep.base.use_ensemble_critic = options.use_ensemble_critic;
  sweep.base.use_mu_sigma = options.use_mu_sigma;
  sweep.base.use_reordering = options.use_reordering;
  sweep.base.engine.batched_draws = options.batched_draws;
  sweep.base.engine.mos_model = options.mos_model;
  sweep.base.engine.spice_noise = options.spice_noise;
  sweep.base.corner_filter = options.corner_filter;
  sweep.seeds.reserve(options.seeds);
  for (std::uint64_t seed = 1; seed <= options.seeds; ++seed) sweep.seeds.push_back(seed);

  // Run the seeds back-to-back (one session finishes before the next
  // starts): interleaving buys nothing on a single cell, and sequential
  // scheduling keeps each run's wall_seconds measuring only itself, exactly
  // as the old hand-rolled loop did.
  core::CampaignConfig config;
  config.steps_per_turn = std::numeric_limits<std::size_t>::max();
  core::Campaign campaign(sweep, config);
  const core::CampaignResult& table = campaign.run();
  for (const core::CampaignEntry& entry : table.entries) {
    // An infrastructure crash must fail the bench loudly (as the old loop's
    // escaping exception did), not masquerade as a lower success rate.
    if (entry.state == core::SessionState::Failed) {
      throw std::runtime_error("run_cell: session '" + entry.spec.to_string() +
                               "' failed: " + entry.error);
    }
  }

  CellStats stats;
  stats.runs = options.seeds;
  std::size_t successes = 0;
  double sum_it = 0.0;
  double sum_sims = 0.0;
  double sum_runtime = 0.0;
  double sum_wall = 0.0;
  for (const core::CampaignEntry& entry : table.entries) {
    if (entry.state != core::SessionState::Finished || !entry.result.success) continue;
    ++successes;
    // Paper footnote: cells with < 100 % success average successful runs.
    sum_it += static_cast<double>(entry.result.rl_iterations);
    sum_sims += static_cast<double>(entry.result.n_simulations);
    sum_runtime += entry.result.modeled_runtime;
    sum_wall += entry.result.wall_seconds;
  }
  if (successes > 0) {
    stats.mean_iterations = sum_it / static_cast<double>(successes);
    stats.mean_simulations = sum_sims / static_cast<double>(successes);
    stats.mean_modeled_runtime = sum_runtime / static_cast<double>(successes);
    stats.mean_wall_seconds = sum_wall / static_cast<double>(successes);
  }
  stats.success_rate = static_cast<double>(successes) / static_cast<double>(options.seeds);
  return stats;
}

void print_table2_block(circuits::Testcase testcase,
                        const std::vector<std::vector<PaperCell>>& paper,
                        const BenchOptions& options) {
  const auto verifs = core::all_verif_methods();
  const Method methods[] = {Method::Glova, Method::PvtSizing, Method::RobustAnalog};

  printf("Table II block — %s on the %s backend (%zu seeds, iteration cap %zu)\n",
         circuits::to_string(testcase), circuits::to_string(options.backend), options.seeds,
         options.max_iterations);
  printf("%-14s | %-24s | %-24s | %-24s\n", "", "C", "C-MC_L", "C-MC_G-L");
  printf("%-14s | %-11s %-12s | %-11s %-12s | %-11s %-12s\n", "method", "paper", "ours", "paper",
         "ours", "paper", "ours");

  // Gather all cells first so runtime normalization (Ours = 1.00) works.
  std::vector<std::vector<CellStats>> cells(3, std::vector<CellStats>(verifs.size()));
  for (std::size_t mi = 0; mi < 3; ++mi) {
    for (std::size_t vi = 0; vi < verifs.size(); ++vi) {
      cells[mi][vi] = run_cell(methods[mi], testcase, verifs[vi], options);
    }
  }

  const auto row = [&](const char* label, auto paper_of, auto ours_of) {
    printf("%s\n", label);
    for (std::size_t mi = 0; mi < 3; ++mi) {
      printf("  %-12s |", bench::to_string(methods[mi]));
      for (std::size_t vi = 0; vi < verifs.size(); ++vi) {
        printf(" %-11.6g %-12.6g |", paper_of(mi, vi), ours_of(mi, vi));
      }
      printf("\n");
    }
  };

  row(
      "RL Iteration", [&](std::size_t mi, std::size_t vi) { return paper[mi][vi].iterations; },
      [&](std::size_t mi, std::size_t vi) { return cells[mi][vi].mean_iterations; });
  row(
      "# Simulation", [&](std::size_t mi, std::size_t vi) { return paper[mi][vi].simulations; },
      [&](std::size_t mi, std::size_t vi) { return cells[mi][vi].mean_simulations; });
  row(
      "Norm. Runtime",
      [&](std::size_t mi, std::size_t vi) { return paper[mi][vi].norm_runtime; },
      [&](std::size_t mi, std::size_t vi) {
        const double base = cells[0][vi].mean_modeled_runtime;
        return base > 0.0 ? cells[mi][vi].mean_modeled_runtime / base : 0.0;
      });
  row(
      "Success Rate", [&](std::size_t mi, std::size_t vi) { return paper[mi][vi].success; },
      [&](std::size_t mi, std::size_t vi) { return cells[mi][vi].success_rate; });
  printf("\n");
}

}  // namespace glova::bench
