// PVT corner definitions (paper Sec. II-A / VI-A).
//
// The paper verifies over 30 PVT conditions:
//   {TT, SS, FF, SF, FS} x {0.8 V, 0.9 V} x {-40 C, 27 C, 80 C}
// and, for the global-local MC regime (C-MC_G-L), over the 6 VT conditions
// {0.8 V, 0.9 V} x {-40 C, 27 C, 80 C} where the process axis is *not*
// predefined but sampled as a global variation (Table I, column P = N).
#pragma once

#include <string>
#include <vector>

namespace glova::pdk {

enum class ProcessCorner { TT, SS, FF, SF, FS };

[[nodiscard]] const char* to_string(ProcessCorner corner);

/// One PVT condition t in the predefined set T.
struct PvtCorner {
  ProcessCorner process = ProcessCorner::TT;
  double vdd = 0.9;      ///< supply voltage [V]
  double temp_c = 27.0;  ///< junction temperature [Celsius]
  /// False for the C-MC_G-L regime: the process axis is nominal here and the
  /// die-level shift comes from the sampled global variation instead.
  bool process_predefined = true;

  [[nodiscard]] std::string name() const;
  [[nodiscard]] double temp_k() const;

  bool operator==(const PvtCorner&) const = default;
};

/// Die-level device-parameter multipliers/shifts implied by a process corner.
/// Slow corners have lower mobility (kp) and higher |Vth|.
struct CornerFactors {
  double kp_n_mult = 1.0;
  double kp_p_mult = 1.0;
  double vth_n_shift = 0.0;  ///< [V], added to NMOS Vth
  double vth_p_shift = 0.0;  ///< [V], added to |PMOS Vth|
};

[[nodiscard]] CornerFactors corner_factors(ProcessCorner corner);

/// The full 30-condition corner set used by C and C-MC_L.
[[nodiscard]] std::vector<PvtCorner> full_corner_set();

/// The 6 VT conditions used by C-MC_G-L (process nominal, not predefined).
[[nodiscard]] std::vector<PvtCorner> vt_corner_set();

/// The single typical condition {TT, 0.9 V, 27 C} used by TuRBO init.
[[nodiscard]] PvtCorner typical_corner();

}  // namespace glova::pdk
