#include "circuits/registry.hpp"

#include <stdexcept>

#include "common/text.hpp"

#include "circuits/dram_ocsa.hpp"
#include "circuits/fia.hpp"
#include "circuits/spice_backend.hpp"
#include "circuits/strongarm.hpp"

namespace glova::circuits {

namespace {

std::vector<Backend> all_backends() { return {Backend::Behavioral, Backend::Spice}; }

}  // namespace

const char* to_string(Testcase testcase) {
  switch (testcase) {
    case Testcase::Sal: return "SAL";
    case Testcase::Fia: return "FIA";
    case Testcase::DramOcsa: return "OCSA+SH";
  }
  return "?";
}

const char* to_string(Backend backend) {
  switch (backend) {
    case Backend::Behavioral: return "behavioral";
    case Backend::Spice: return "spice";
  }
  return "?";
}

std::optional<Testcase> testcase_from_string(std::string_view name) {
  const std::string n = to_lower(name);
  for (const Testcase tc : all_testcases()) {
    if (n == to_lower(to_string(tc))) return tc;
  }
  if (n == "dram" || n == "ocsa") return Testcase::DramOcsa;
  return std::nullopt;
}

std::optional<Backend> backend_from_string(std::string_view name) {
  const std::string n = to_lower(name);
  for (const Backend b : all_backends()) {
    if (n == to_lower(to_string(b))) return b;
  }
  return std::nullopt;
}

std::vector<Testcase> all_testcases() {
  return {Testcase::Sal, Testcase::Fia, Testcase::DramOcsa};
}

bool is_available(Testcase testcase, Backend backend) {
  // Every Table II block runs on both backends: behavioral closed-form
  // models and transistor-level SPICE netlists through the MNA engine.
  (void)testcase;
  (void)backend;
  return true;
}

std::vector<Backend> available_backends(Testcase testcase) {
  std::vector<Backend> out;
  for (const Backend b : all_backends()) {
    if (is_available(testcase, b)) out.push_back(b);
  }
  return out;
}

std::string supported_combinations() {
  std::string out;
  for (const Testcase tc : all_testcases()) {
    for (const Backend b : available_backends(tc)) {
      if (!out.empty()) out += ", ";
      out += to_string(tc);
      out += '/';
      out += to_string(b);
    }
  }
  return out;
}

TestbenchPtr make_testbench(Testcase testcase, Backend backend) {
  if (backend == Backend::Behavioral) {
    switch (testcase) {
      case Testcase::Sal: return std::make_shared<StrongArmLatch>();
      case Testcase::Fia: return std::make_shared<FloatingInverterAmplifier>();
      case Testcase::DramOcsa: return std::make_shared<DramOcsaSubhole>();
    }
  }
  if (backend == Backend::Spice) {
    switch (testcase) {
      case Testcase::Sal: return std::make_shared<StrongArmLatchSpice>();
      case Testcase::Fia: return std::make_shared<FloatingInverterAmplifierSpice>();
      case Testcase::DramOcsa: return std::make_shared<DramOcsaSubholeSpice>();
    }
  }
  // Unreachable for the current enums; kept so a future backend that is
  // registered in the capability tables but not here fails loudly.
  throw std::invalid_argument(std::string("make_testbench: no ") + to_string(backend) +
                              " backend for testcase " + to_string(testcase) +
                              "; available combinations: " + supported_combinations() +
                              " (see docs/run_spec.md for the testcase/backend matrix)");
}

}  // namespace glova::circuits
