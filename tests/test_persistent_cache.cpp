// Tests for the persistent memo cache and surrogate-guided speculative
// evaluation (docs/architecture.md#speculative-evaluation): the glova-memo
// file format (save -> load -> save byte fixed point, actionable rejection of
// truncated/garbage/version-mismatched/foreign-tag files), the engine's
// preload/flush round trip, warm-cache campaign determinism (a second run
// over a shared cache directory executes zero simulations and reproduces
// results byte-identically), and the surrogate funnel counters.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>

#include "circuits/registry.hpp"
#include "core/campaign.hpp"
#include "core/evaluation_engine.hpp"
#include "core/optimizer_base.hpp"
#include "core/persistent_cache.hpp"
#include "pdk/variation.hpp"

namespace glova {
namespace {

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

core::MemoCacheFile sample_file() {
  core::MemoCacheFile file;
  file.tag = "sample-bench|q=1e-15|warm=1|batched=0|adaptive=0|bypass=0|recovery=0"
             "|retries=0|deadline=0|degrade=0";
  file.entries.push_back({{1, -2, 3}, {0.5, -1.25}});
  file.entries.push_back({{4, 5}, {3.0}});
  file.entries.push_back({{}, {1e-300, 2e17}});
  file.surrogate_state = "opaque line one\nopaque line two\n";
  return file;
}

TEST(MemoCacheFormat, SaveLoadSaveIsAByteFixedPoint) {
  const core::MemoCacheFile original = sample_file();
  std::ostringstream first;
  core::save_memo_cache(first, original);

  std::istringstream in(first.str());
  const core::MemoCacheFile loaded = core::load_memo_cache(in, original.tag);
  EXPECT_EQ(loaded, original);

  std::ostringstream second;
  core::save_memo_cache(second, loaded);
  EXPECT_EQ(second.str(), first.str());
}

TEST(MemoCacheFormat, EmptyAndGarbageInputsAreRejectedWithContext) {
  {
    std::istringstream in("");
    try {
      (void)core::load_memo_cache(in);
      FAIL() << "empty input must be rejected";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("empty input"), std::string::npos) << e.what();
    }
  }
  {
    std::istringstream in("this is not a cache file\n");
    try {
      (void)core::load_memo_cache(in);
      FAIL() << "garbage magic must be rejected";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("not a memo-cache file"), std::string::npos)
          << e.what();
    }
  }
}

TEST(MemoCacheFormat, UnsupportedVersionIsRejected) {
  std::istringstream in("glova-memo v999\ntag t\nentries 0\nsurrogate-lines 0\nend\n");
  try {
    (void)core::load_memo_cache(in);
    FAIL() << "future version must be rejected";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unsupported format version 'v999'"), std::string::npos) << what;
    EXPECT_NE(what.find("this build reads v1"), std::string::npos) << what;
  }
}

TEST(MemoCacheFormat, ForeignTagIsRejectedWithActionableMessage) {
  std::ostringstream saved;
  core::save_memo_cache(saved, sample_file());
  std::istringstream in(saved.str());
  try {
    (void)core::load_memo_cache(in, "another-bench|q=1e-15");
    FAIL() << "foreign tag must be rejected";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("tag mismatch"), std::string::npos) << what;
    EXPECT_NE(what.find("delete the file or point cache_path elsewhere"), std::string::npos)
        << what;
  }
}

TEST(MemoCacheFormat, TruncatedFilesAreRejected) {
  std::ostringstream saved;
  core::save_memo_cache(saved, sample_file());
  const std::string full = saved.str();
  // Cutting the file anywhere must fail loudly, never return partial data.
  for (const double fraction : {0.2, 0.5, 0.9}) {
    const std::string cut = full.substr(0, static_cast<std::size_t>(full.size() * fraction));
    std::istringstream in(cut);
    EXPECT_THROW((void)core::load_memo_cache(in, sample_file().tag), std::runtime_error)
        << "accepted a file truncated to " << fraction;
  }
  // A malformed metric line inside an entry names the entry.
  std::string corrupt = full;
  const std::size_t val = corrupt.find("val 1 3");
  ASSERT_NE(val, std::string::npos);
  corrupt.replace(val, 7, "val 1 x");
  std::istringstream in(corrupt);
  try {
    (void)core::load_memo_cache(in, sample_file().tag);
    FAIL() << "corrupt metrics must be rejected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("bad metrics in entry 1"), std::string::npos)
        << e.what();
  }
}

TEST(MemoCacheFormat, MissingFileIsNotAnErrorButUnreadableIs) {
  const std::string dir = fresh_dir("glova_memo_missing");
  EXPECT_FALSE(core::load_memo_cache_file(dir + "/absent.memo", "t").has_value());
  // A present-but-garbage file throws, and the message names the path.
  const std::string path = dir + "/garbage.memo";
  std::ofstream(path) << "not a cache\n";
  try {
    (void)core::load_memo_cache_file(path, "t");
    FAIL() << "garbage file must be rejected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos) << e.what();
  }
}

TEST(MemoCacheFormat, FileNameShardsByConfigAndSanitizesTheName) {
  core::EngineConfig a;
  const std::string name_a = core::memo_cache_file_name("my bench/v2", a);
  // Non-alphanumerics in the testbench name never reach the filesystem.
  EXPECT_EQ(name_a.find('/'), std::string::npos);
  EXPECT_EQ(name_a.find(' '), std::string::npos);
  EXPECT_NE(name_a.find(".memo"), std::string::npos);
  // A different numerics config shards to a different file, so two engines
  // with incompatible settings sharing one cache_dir never collide.
  core::EngineConfig b = a;
  b.cache_quantum = 1e-9;
  EXPECT_NE(core::memo_cache_file_name("my bench/v2", b), name_a);
  EXPECT_NE(core::memo_cache_tag("my bench/v2", b), core::memo_cache_tag("my bench/v2", a));
}

std::vector<double> midpoint_design(const circuits::Testbench& tb) {
  std::vector<double> x01(tb.sizing().dimension(), 0.5);
  return tb.sizing().denormalize(x01);
}

TEST(PersistentCache, EngineFlushesOnDestructionAndPreloadsOnConstruction) {
  const std::string dir = fresh_dir("glova_memo_engine");
  core::EngineConfig cfg;
  cfg.cache_path = dir + "/sal.memo";

  std::vector<std::vector<double>> hs;
  std::vector<std::vector<double>> first;
  {
    core::EvaluationEngine engine(circuits::make_testbench(circuits::Testcase::Sal), cfg);
    const auto x = midpoint_design(engine.testbench());
    const auto layout = engine.testbench().mismatch_layout(x, false);
    Rng rng(5);
    hs = pdk::sample_mismatch_set(layout, 6, rng, pdk::GlobalMode::Zero);
    first = engine.evaluate_batch(x, pdk::typical_corner(), hs);
    EXPECT_EQ(engine.stats().executed, 6u);
  }  // destructor flushes
  ASSERT_TRUE(std::filesystem::exists(cfg.cache_path));

  core::EvaluationEngine warm(circuits::make_testbench(circuits::Testcase::Sal), cfg);
  EXPECT_EQ(warm.cache_size(), 6u);
  const auto x = midpoint_design(warm.testbench());
  const auto again = warm.evaluate_batch(x, pdk::typical_corner(), hs);
  EXPECT_EQ(again, first);  // bit-identical, served from disk
  EXPECT_EQ(warm.stats().executed, 0u);
  EXPECT_EQ(warm.stats().cache_hits, 6u);
}

TEST(PersistentCache, FlushMergesWithEntriesAlreadyOnDisk) {
  const std::string dir = fresh_dir("glova_memo_merge");
  core::EngineConfig cfg;
  cfg.cache_path = dir + "/sal.memo";
  const auto tb = circuits::make_testbench(circuits::Testcase::Sal);
  const auto x = midpoint_design(*tb);
  const auto corners = pdk::full_corner_set();

  {
    core::EvaluationEngine a(tb, cfg);
    (void)a.evaluate_one(x, corners[0], {});
  }
  {
    // B never saw A's entry (fresh process simulation): its flush must merge,
    // not overwrite.
    core::EvaluationEngine b(tb, cfg);
    b.clear_cache();
    (void)b.evaluate_one(x, corners[1], {});
  }
  core::EvaluationEngine c(tb, cfg);
  (void)c.evaluate_one(x, corners[0], {});
  (void)c.evaluate_one(x, corners[1], {});
  EXPECT_EQ(c.stats().executed, 0u);
  EXPECT_EQ(c.stats().cache_hits, 2u);
}

TEST(PersistentCache, TagMismatchAtEngineConstructionThrows) {
  const std::string dir = fresh_dir("glova_memo_tagclash");
  core::EngineConfig cfg;
  cfg.cache_path = dir + "/shared.memo";
  {
    core::EvaluationEngine engine(circuits::make_testbench(circuits::Testcase::Sal), cfg);
    (void)engine.evaluate_one(midpoint_design(engine.testbench()), pdk::typical_corner(), {});
  }
  // Same file, different numerics config: the tag no longer matches and the
  // stale results must not be served.
  core::EngineConfig other = cfg;
  other.cache_quantum = 1e-9;
  EXPECT_THROW(
      core::EvaluationEngine(circuits::make_testbench(circuits::Testcase::Sal), other),
      std::runtime_error);
}

/// One small campaign cell (SAL behavioral, corner verification).
core::SweepSpec small_sweep(const std::string&) {
  core::SweepSpec sweep;
  sweep.base.testcase = circuits::Testcase::Sal;
  sweep.base.method = core::VerifMethod::C;
  sweep.base.max_iterations = 80;
  sweep.base.engine.cache_capacity = 65536;  // hold every executed point
  sweep.seeds = {1};
  return sweep;
}

TEST(PersistentCache, WarmCampaignRerunExecutesZeroAndIsBitIdentical) {
  const std::string dir = fresh_dir("glova_memo_campaign");
  core::CampaignConfig config;
  config.cache_dir = dir;

  core::Campaign cold(small_sweep(dir), config);
  const core::CampaignResult first = cold.run();
  ASSERT_EQ(first.entries.size(), 1u);
  EXPECT_GT(first.entries[0].result.engine_stats.executed, 0u);

  // Same sweep, fresh campaign, same cache directory: every simulation the
  // deterministic rerun requests was already recorded, so nothing executes.
  core::Campaign warm(small_sweep(dir), config);
  const core::CampaignResult second = warm.run();
  ASSERT_EQ(second.entries.size(), 1u);
  EXPECT_EQ(second.entries[0].result.engine_stats.executed, 0u)
      << "warm rerun must be answered entirely from the persistent cache";
  EXPECT_GT(second.entries[0].result.engine_stats.cache_hits, 0u);

  // Byte-identical results (wall time is the one timing-dependent field).
  const auto canonical = [](core::GlovaResult r) {
    r.wall_seconds = 0.0;
    std::ostringstream os;
    core::write_glova_result(os, r);
    return os.str();
  };
  core::GlovaResult a = first.entries[0].result;
  core::GlovaResult b = second.entries[0].result;
  // The funnel split differs by construction (that is the feature); the
  // result payload must not.
  EXPECT_EQ(a.n_simulations, b.n_simulations);
  a.n_simulations_executed = b.n_simulations_executed = 0;
  a.n_cache_hits = b.n_cache_hits = 0;
  a.engine_stats = b.engine_stats = core::EngineStats{};
  EXPECT_EQ(canonical(a), canonical(b));
}

/// Cheap 3-mismatch testbench for surrogate funnel tests.
class PlaneBench final : public circuits::Testbench {
 public:
  PlaneBench() {
    sizing_.names = {"x0"};
    sizing_.lower = {0.0};
    sizing_.upper = {1.0};
    performance_.metrics = {
        circuits::MetricSpec{"m", "u", 1.0, 1.0, circuits::Sense::MinimizeBelow}};
  }
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const circuits::SizingSpec& sizing() const override { return sizing_; }
  [[nodiscard]] const circuits::PerformanceSpec& performance() const override {
    return performance_;
  }
  [[nodiscard]] pdk::MismatchLayout mismatch_layout(std::span<const double>,
                                                    bool) const override {
    pdk::MismatchLayout layout;
    layout.names = {"h0", "h1", "h2"};
    layout.local_sigma = {1.0, 1.0, 1.0};
    layout.global_sigma = {0.0, 0.0, 0.0};
    return layout;
  }
  [[nodiscard]] std::vector<double> evaluate(std::span<const double> x, const pdk::PvtCorner&,
                                             std::span<const double> h) const override {
    double sum = x.empty() ? 0.0 : x[0];
    for (std::size_t j = 0; j < h.size(); ++j) sum += (static_cast<double>(j) + 1.0) * h[j];
    return {sum};
  }

 private:
  std::string name_ = "plane-bench";
  circuits::SizingSpec sizing_;
  circuits::PerformanceSpec performance_;
};

std::vector<std::vector<double>> random_draws(Rng& rng, int count) {
  std::vector<std::vector<double>> hs;
  for (int i = 0; i < count; ++i) {
    hs.push_back({rng.normal(), rng.normal(), rng.normal()});
  }
  return hs;
}

TEST(Surrogate, FunnelCountersObeyTheExtendedInvariant) {
  core::EngineConfig cfg;
  cfg.surrogate = true;
  cfg.surrogate_warmup = 8;
  cfg.surrogate_keep = 0.5;
  cfg.parallelism = 1;
  core::EvaluationEngine engine(std::make_shared<PlaneBench>(), cfg);
  const std::vector<double> x = {0.5};
  Rng rng(17);

  // Warmup batch trains the model; the second batch gets pre-ranked and the
  // unremarkable half answered speculatively.
  (void)engine.evaluate_batch(x, pdk::typical_corner(), random_draws(rng, 16));
  core::EngineStats stats = engine.stats();
  EXPECT_EQ(stats.surrogate_prunes, 0u);  // not ready during warmup
  EXPECT_EQ(stats.executed, 16u);
  EXPECT_GT(stats.surrogate_train_steps, 0u);

  (void)engine.evaluate_batch(x, pdk::typical_corner(), random_draws(rng, 16));
  stats = engine.stats();
  EXPECT_EQ(stats.surrogate_prunes, 8u);  // keep=0.5 of 16 misses
  EXPECT_EQ(stats.surrogate_confirms, 8u);
  EXPECT_EQ(stats.requested, stats.cache_hits + stats.executed + stats.surrogate_prunes);
  EXPECT_EQ(stats.executed, 24u);
}

TEST(Surrogate, DisabledModeKeepsTheLegacyStateFrame) {
  const auto tb = circuits::make_testbench(circuits::Testcase::Sal);
  core::EvaluationEngine off(tb);
  (void)off.evaluate_one(midpoint_design(*tb), pdk::typical_corner(), {});
  std::ostringstream state_off;
  off.save_state(state_off);
  EXPECT_EQ(state_off.str().rfind("engine-state 1\n", 0), 0u)
      << "surrogate-off engines must keep the v1 frame byte-identical";

  core::EngineConfig cfg;
  cfg.surrogate = true;
  core::EvaluationEngine on(std::make_shared<PlaneBench>(), cfg);
  std::ostringstream state_on;
  on.save_state(state_on);
  EXPECT_EQ(state_on.str().rfind("engine-state 2\n", 0), 0u);

  // v2 round trip: counters and (once built) the model survive.
  core::EvaluationEngine reload(std::make_shared<PlaneBench>(), cfg);
  std::istringstream in(state_on.str());
  reload.load_state(in);
  std::ostringstream resaved;
  reload.save_state(resaved);
  EXPECT_EQ(resaved.str(), state_on.str());
}

TEST(Surrogate, ModelStateRidesInTheMemoCacheFile) {
  const std::string dir = fresh_dir("glova_memo_surrogate");
  core::EngineConfig cfg;
  cfg.cache_path = dir + "/plane.memo";
  cfg.surrogate = true;
  cfg.surrogate_warmup = 8;
  cfg.parallelism = 1;
  Rng rng(29);
  const std::vector<double> x = {0.5};
  {
    core::EvaluationEngine engine(std::make_shared<PlaneBench>(), cfg);
    (void)engine.evaluate_batch(x, pdk::typical_corner(), random_draws(rng, 12));
    EXPECT_GT(engine.stats().surrogate_train_steps, 0u);
  }
  core::EvaluationEngine warm(std::make_shared<PlaneBench>(), cfg);
  EXPECT_GT(warm.stats().surrogate_train_steps, 0u)
      << "the trained model must be restored from the cache file";
  EXPECT_EQ(warm.cache_size(), 12u);
}

}  // namespace
}  // namespace glova
