#include "opt/kmeans.hpp"

#include <limits>
#include <stdexcept>

namespace glova::opt {

double squared_distance(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) throw std::invalid_argument("squared_distance: dim mismatch");
  double d2 = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    d2 += d * d;
  }
  return d2;
}

KMeansResult kmeans(const std::vector<std::vector<double>>& points, std::size_t k, Rng& rng,
                    std::size_t max_iterations) {
  if (points.empty()) throw std::invalid_argument("kmeans: no points");
  if (k == 0 || k > points.size()) throw std::invalid_argument("kmeans: bad k");
  const std::size_t n = points.size();

  // k-means++ seeding.
  KMeansResult result;
  result.centroids.push_back(points[rng.index(n)]);
  std::vector<double> d2(n, std::numeric_limits<double>::max());
  while (result.centroids.size() < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      d2[i] = std::min(d2[i], squared_distance(points[i], result.centroids.back()));
      total += d2[i];
    }
    if (total <= 0.0) {
      // All remaining points coincide with centroids; duplicate one.
      result.centroids.push_back(points[rng.index(n)]);
      continue;
    }
    double pick = rng.uniform() * total;
    std::size_t chosen = n - 1;
    for (std::size_t i = 0; i < n; ++i) {
      pick -= d2[i];
      if (pick <= 0.0) {
        chosen = i;
        break;
      }
    }
    result.centroids.push_back(points[chosen]);
  }

  // Lloyd iterations.
  result.assignment.assign(n, 0);
  for (std::size_t it = 0; it < max_iterations; ++it) {
    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::max();
      std::size_t best_c = 0;
      for (std::size_t c = 0; c < k; ++c) {
        const double d = squared_distance(points[i], result.centroids[c]);
        if (d < best) {
          best = d;
          best_c = c;
        }
      }
      if (result.assignment[i] != best_c) {
        result.assignment[i] = best_c;
        changed = true;
      }
    }
    // Recompute centroids.
    const std::size_t dim = points.front().size();
    std::vector<std::vector<double>> sums(k, std::vector<double>(dim, 0.0));
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t d = 0; d < dim; ++d) sums[result.assignment[i]][d] += points[i][d];
      ++counts[result.assignment[i]];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        result.centroids[c] = points[rng.index(n)];  // re-seed empty cluster
        continue;
      }
      for (std::size_t d = 0; d < dim; ++d) {
        result.centroids[c][d] = sums[c][d] / static_cast<double>(counts[c]);
      }
    }
    result.iterations = it + 1;
    if (!changed) break;
  }

  result.inertia = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    result.inertia += squared_distance(points[i], result.centroids[result.assignment[i]]);
  }
  return result;
}

}  // namespace glova::opt
