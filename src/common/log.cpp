#include "common/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace glova {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_io_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "[debug]";
    case LogLevel::Info: return "[info ]";
    case LogLevel::Warn: return "[warn ]";
    case LogLevel::Error: return "[error]";
    case LogLevel::Off: return "[off  ]";
  }
  return "[?]";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, const std::string& message) {
  if (level < g_level.load()) return;
  const std::lock_guard<std::mutex> lock(g_io_mutex);
  std::cerr << level_tag(level) << ' ' << message << '\n';
}

}  // namespace glova
