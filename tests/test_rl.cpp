// Tests for the RL layer: buffers, the ensemble critic's risk bound (Eq. 6)
// and its gradients, and agent learning on a controllable toy landscape.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "rl/agent.hpp"
#include "rl/ensemble_critic.hpp"
#include "rl/replay_buffer.hpp"

namespace glova::rl {
namespace {

TEST(ReplayBuffer, FifoEvictionAtCapacity) {
  WorstCaseReplayBuffer buffer(3);
  for (int i = 0; i < 5; ++i) buffer.add({static_cast<double>(i)}, i * 0.1);
  EXPECT_EQ(buffer.size(), 3u);
  // Entries 3, 4 remain plus slot recycled; best() survives eviction.
  ASSERT_TRUE(buffer.best().has_value());
  EXPECT_DOUBLE_EQ(buffer.best()->reward, 0.4);
}

TEST(ReplayBuffer, SampleFromEmptyThrows) {
  WorstCaseReplayBuffer buffer(4);
  Rng rng(1);
  EXPECT_THROW((void)buffer.sample(2, rng), std::logic_error);
}

TEST(ReplayBuffer, SampleDrawsStoredEntries) {
  WorstCaseReplayBuffer buffer(8);
  buffer.add({1.0}, -0.5);
  buffer.add({2.0}, 0.2);
  Rng rng(2);
  for (const Experience& e : buffer.sample(20, rng)) {
    EXPECT_TRUE(e.reward == -0.5 || e.reward == 0.2);
  }
}

TEST(LastWorstBuffer, TracksWorstCorner) {
  LastWorstBuffer buffer(4);
  buffer.update(0, 0.2);
  buffer.update(1, -0.3);
  buffer.update(2, 0.1);
  buffer.update(3, -0.1);
  EXPECT_EQ(buffer.worst_corner(), 1u);
  const auto order = buffer.corners_worst_first();
  EXPECT_EQ(order.front(), 1u);
  EXPECT_EQ(order[1], 3u);
  EXPECT_EQ(order.back(), 0u);
}

TEST(EnsembleCritic, BoundMathMatchesManualComputation) {
  Rng rng(3);
  CriticConfig cfg;
  cfg.ensemble_size = 5;
  cfg.beta1 = -3.0;
  EnsembleCritic critic(4, cfg, rng);
  const std::vector<double> x = {0.1, 0.4, 0.6, 0.9};
  const auto b = critic.bound(x);
  EXPECT_NEAR(b.risk_adjusted, b.mean - 3.0 * b.std, 1e-12);
  EXPECT_GE(b.std, 0.0);
  EXPECT_DOUBLE_EQ(critic.predict(x), b.risk_adjusted);
}

TEST(EnsembleCritic, NegativeBeta1IsConservative) {
  Rng rng(4);
  CriticConfig risk_averse;
  risk_averse.beta1 = -3.0;
  CriticConfig neutral;
  neutral.beta1 = 0.0;
  EnsembleCritic a(3, risk_averse, rng);
  Rng rng2(4);
  EnsembleCritic b(3, neutral, rng2);
  const std::vector<double> x = {0.2, 0.5, 0.8};
  // Same weights (same seed): risk-averse bound <= neutral mean.
  EXPECT_LE(a.predict(x), b.predict(x) + 1e-12);
}

TEST(EnsembleCritic, TrainingReducesLoss) {
  Rng rng(5);
  CriticConfig cfg;
  cfg.ensemble_size = 3;
  cfg.learning_rate = 3e-3;
  EnsembleCritic critic(2, cfg, rng);
  std::vector<std::vector<double>> xs;
  std::vector<double> rs;
  Rng data_rng(6);
  for (int i = 0; i < 32; ++i) {
    xs.push_back(data_rng.uniform_vector(2, 0.0, 1.0));
    rs.push_back(-std::abs(xs.back()[0] - 0.5));
  }
  double first = 0.0;
  double last = 0.0;
  for (int epoch = 0; epoch < 400; ++epoch) {
    double loss = 0.0;
    for (std::size_t i = 0; i < critic.ensemble_size(); ++i) {
      loss += critic.train_base(i, xs, rs);
    }
    if (epoch == 0) first = loss;
    last = loss;
  }
  EXPECT_LT(last, 0.2 * first);
}

TEST(EnsembleCritic, InputGradientMatchesFiniteDifference) {
  Rng rng(7);
  CriticConfig cfg;
  cfg.ensemble_size = 4;
  cfg.beta1 = -2.0;
  EnsembleCritic critic(3, cfg, rng);
  const std::vector<double> x = {0.3, 0.6, 0.2};
  const double dLdq = 1.7;
  const auto grad = critic.input_gradient(x, dLdq);
  const double eps = 1e-6;
  for (std::size_t d = 0; d < x.size(); ++d) {
    std::vector<double> xp = x;
    std::vector<double> xm = x;
    xp[d] += eps;
    xm[d] -= eps;
    const double fd = dLdq * (critic.predict(xp) - critic.predict(xm)) / (2 * eps);
    EXPECT_NEAR(grad[d], fd, 1e-5) << "dim " << d;
  }
}

TEST(Agent, ProposalsStayInUnitBox) {
  AgentConfig cfg;
  RiskSensitiveAgent agent(5, cfg, Rng(8));
  const std::vector<double> x_last(5, 0.5);
  for (int i = 0; i < 50; ++i) {
    for (const double v : agent.propose(x_last)) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
  EXPECT_LT(agent.exploration_noise(), cfg.noise_initial);  // decays
}

TEST(Agent, ScreenedProposalPrefersHighBound) {
  AgentConfig cfg;
  RiskSensitiveAgent agent(2, cfg, Rng(9));
  // Train the critic so that reward = -(x0 - 0.8)^2.
  WorstCaseReplayBuffer buffer;
  Rng data(10);
  for (int i = 0; i < 200; ++i) {
    const auto x = data.uniform_vector(2, 0.0, 1.0);
    buffer.add(x, -(x[0] - 0.8) * (x[0] - 0.8));
  }
  for (int i = 0; i < 300; ++i) (void)agent.update(buffer);
  // Screened proposals should concentrate near x0 = 0.8 versus x0 = 0.2.
  const std::vector<double> x_last = {0.5, 0.5};
  double mean_x0 = 0.0;
  const int n = 30;
  for (int i = 0; i < n; ++i) mean_x0 += agent.propose_screened(x_last, 8)[0] / n;
  EXPECT_GT(mean_x0, 0.5);
}

TEST(Agent, LearnsToProposeHighRewardDesigns) {
  // End-to-end mini-loop on a deterministic landscape: the agent should walk
  // its proposals into the high-reward region around (0.7, 0.3).
  AgentConfig cfg;
  RiskSensitiveAgent agent(2, cfg, Rng(11));
  WorstCaseReplayBuffer buffer;
  const auto reward = [](const std::vector<double>& x) {
    const double d2 = (x[0] - 0.7) * (x[0] - 0.7) + (x[1] - 0.3) * (x[1] - 0.3);
    return d2 < 0.005 ? 0.2 : -d2;
  };
  std::vector<double> x_last = {0.2, 0.8};
  buffer.add(x_last, reward(x_last));
  double best = -1e9;
  for (int iter = 0; iter < 250; ++iter) {
    const auto x_new = agent.propose_screened(x_last, 8);
    const double r = reward(x_new);
    best = std::max(best, r);
    buffer.add(x_new, r);
    for (int e = 0; e < 3; ++e) (void)agent.update(buffer);
    x_last = x_new;
    if (const auto top = buffer.best(); top && r < top->reward - 0.05) x_last = top->x01;
    if (best >= 0.2) break;
  }
  EXPECT_GE(best, -0.05);
}

}  // namespace
}  // namespace glova::rl
