// Crash-safe file writes.
#pragma once

#include <string>

namespace glova {

/// Atomically replace `path` with `content`: write a temporary sibling,
/// fsync it (data must reach the device before the metadata operation), then
/// rename() it over the destination.  An interrupted or failed write can
/// never truncate an existing good file, and a completed rename survives
/// power loss with the *new* content, not an empty file.  Throws
/// std::runtime_error on any failure (the temporary is removed).
void atomic_write_file(const std::string& path, const std::string& content);

}  // namespace glova
