#include "common/state_io.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "common/text.hpp"

namespace glova::state {

void bad(const std::string& what) { throw std::runtime_error("glova-state: " + what); }

std::string expect_line(std::istream& is, std::string_view expect) {
  std::string line;
  if (!std::getline(is, line)) {
    bad("unexpected end of input, expected '" + std::string(expect) + "'");
  }
  const std::size_t space = line.find(' ');
  const std::string_view keyword =
      space == std::string::npos ? std::string_view(line) : std::string_view(line).substr(0, space);
  if (keyword != expect) {
    bad("expected '" + std::string(expect) + "', got '" + line + "'");
  }
  return space == std::string::npos ? std::string() : line.substr(space + 1);
}

std::uint64_t parse_u64(const std::string& text, std::string_view what) {
  try {
    std::size_t pos = 0;
    const std::uint64_t v = std::stoull(text, &pos);
    if (pos != text.size()) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    bad("invalid integer for " + std::string(what) + ": '" + text + "'");
  }
}

double parse_double(const std::string& text, std::string_view what) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(text, &pos);
    if (pos != text.size()) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    bad("invalid number for " + std::string(what) + ": '" + text + "'");
  }
}

void write_doubles(std::ostream& os, std::string_view tag, std::span<const double> v) {
  os << tag << ' ' << v.size();
  for (const double x : v) os << ' ' << format_double_roundtrip(x);
  os << '\n';
}

std::vector<double> read_doubles(std::istream& is, std::string_view tag) {
  std::istringstream line(expect_line(is, tag));
  std::size_t n = 0;
  if (!(line >> n)) bad("missing count after '" + std::string(tag) + "'");
  if (n > kMaxCount) bad("implausible '" + std::string(tag) + "' count " + std::to_string(n));
  std::vector<double> out(n);
  for (double& x : out) {
    if (!(line >> x)) bad("truncated vector '" + std::string(tag) + "'");
  }
  return out;
}

void write_u64s(std::ostream& os, std::string_view tag, std::span<const std::uint64_t> v) {
  os << tag << ' ' << v.size();
  for (const std::uint64_t x : v) os << ' ' << x;
  os << '\n';
}

std::vector<std::uint64_t> read_u64s(std::istream& is, std::string_view tag) {
  std::istringstream line(expect_line(is, tag));
  std::size_t n = 0;
  if (!(line >> n)) bad("missing count after '" + std::string(tag) + "'");
  if (n > kMaxCount) bad("implausible '" + std::string(tag) + "' count " + std::to_string(n));
  std::vector<std::uint64_t> out(n);
  for (std::uint64_t& x : out) {
    if (!(line >> x)) bad("truncated vector '" + std::string(tag) + "'");
  }
  return out;
}

std::string one_line(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return out;
}

}  // namespace glova::state
