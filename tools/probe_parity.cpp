// Dev probe (CMake target `probe_parity`): prints the behavioral-vs-SPICE
// metric ratio table over the shared parity grid, for re-recording the
// tolerance bands in tests/test_backend_parity.cpp.  The grid, corners, and
// mismatch draws come from tests/backend_parity_grid.hpp, so the printed
// ratios correspond exactly to the points the test asserts.
//
// Arguments (in any order):
//   h    — use the deterministic local-mismatch draw instead of nominal;
//   ekv  — evaluate the SPICE backend with mos_model=ekv and append the
//          cold low-voltage corner the ekv parity rows assert on.
#include <cstdio>
#include <cstring>
#include <vector>

#include "backend_parity_grid.hpp"
#include "circuits/registry.hpp"
#include "spice/simulator.hpp"

using namespace glova;

int main(int argc, char** argv) {
  bool with_h = false;
  bool ekv = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "h") == 0) with_h = true;
    if (std::strcmp(argv[i], "ekv") == 0) ekv = true;
  }
  spice::set_mos_model_default(ekv ? spice::MosModel::kEkv : spice::MosModel::kLevel1);
  for (const auto tc : circuits::all_testcases()) {
    const auto beh = circuits::make_testbench(tc, circuits::Backend::Behavioral);
    const auto spc = circuits::make_testbench(tc, circuits::Backend::Spice);
    const auto& sz = beh->sizing();
    std::printf("=== %s (%s) ===\n", circuits::to_string(tc), ekv ? "ekv" : "level1");
    const auto grid = parity_grid::designs_x01(tc);
    auto corners = parity_grid::corners();
    if (ekv) corners.push_back(parity_grid::cold_low_voltage_corner());
    for (std::size_t gi = 0; gi < grid.size(); ++gi) {
      const auto x = sz.denormalize(grid[gi]);
      const std::vector<double> h =
          with_h ? parity_grid::local_draw(*beh, x, gi) : std::vector<double>{};
      for (std::size_t ci = 0; ci < corners.size(); ++ci) {
        const auto mb = beh->evaluate(x, corners[ci], h);
        std::vector<double> ms;
        try {
          ms = spc->evaluate(x, corners[ci], h);
        } catch (const circuits::EvaluationError& e) {
          std::printf("g%zu c%zu :  FAILED (%s)\n", gi, ci, e.failure().stage.c_str());
          continue;
        }
        std::printf("g%zu c%zu :", gi, ci);
        for (std::size_t mi = 0; mi < mb.size(); ++mi) {
          std::printf("  m%zu %.4g/%.4g r=%.3f", mi, ms[mi], mb[mi],
                      mb[mi] != 0 ? ms[mi] / mb[mi] : -1.0);
        }
        std::printf("\n");
      }
    }
  }
  return 0;
}
