// Micro-benchmarks (google-benchmark) for the hot paths under the tables:
// behavioral circuit evaluation, mismatch sampling, the SPICE transient,
// network updates, and the reordering math.
#include <benchmark/benchmark.h>

#include "circuits/registry.hpp"
#include "circuits/spice_backend.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "core/evaluation_engine.hpp"
#include "core/optimizer.hpp"
#include "core/reordering.hpp"
#include "nn/adam.hpp"
#include "nn/mlp.hpp"
#include "opt/gp.hpp"
#include "pdk/variation.hpp"
#include "rl/ensemble_critic.hpp"
#include "spice/lu.hpp"
#include "spice/simulator.hpp"
#include "spice/warm_start.hpp"
#include "stats/pearson.hpp"

using namespace glova;

static void BM_BehavioralEval(benchmark::State& state) {
  const auto tb =
      circuits::make_testbench(static_cast<circuits::Testcase>(state.range(0)));
  const auto& sz = tb->sizing();
  std::vector<double> x01(sz.dimension(), 0.5);
  const auto x = sz.denormalize(x01);
  const auto layout = tb->mismatch_layout(x, true);
  Rng rng(1);
  const auto hs = pdk::sample_mismatch_set(layout, 1, rng, pdk::GlobalMode::PerSample);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tb->evaluate(x, pdk::typical_corner(), hs[0]));
  }
}
BENCHMARK(BM_BehavioralEval)->Arg(0)->Arg(1)->Arg(2);

static void BM_MismatchSample(benchmark::State& state) {
  const auto tb = circuits::make_testbench(circuits::Testcase::DramOcsa);
  const auto& sz = tb->sizing();
  std::vector<double> x01(sz.dimension(), 0.5);
  const auto x = sz.denormalize(x01);
  const auto layout = tb->mismatch_layout(x, true);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pdk::sample_mismatch_set(layout, state.range(0), rng, pdk::GlobalMode::PerSample));
  }
}
BENCHMARK(BM_MismatchSample)->Arg(3)->Arg(100)->Arg(1000);

static void BM_SpiceSalTransient(benchmark::State& state) {
  // The SPICE run path under every SAL evaluation: netlist build, DC op,
  // transient, measurement extraction.  Warm start disabled so the number
  // is a clean cold-evaluation cost.  Arg 0 = fixed 3000-step grid, arg 1 =
  // LTE-adaptive timestep controller.
  spice::set_dc_warm_start_enabled(false);
  spice::set_adaptive_timestep_default(state.range(0) != 0);
  circuits::StrongArmLatchSpice sal;
  const auto& sz = sal.sizing();
  std::vector<double> x01 = {0.2, 0.3, 0.2, 0.2, 0.2, 0.1, 0.2, 0, 0, 0, 0, 0, 0.05, 0.01};
  const auto x = sz.denormalize(x01);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sal.evaluate(x, pdk::typical_corner(), {}));
  }
  spice::set_adaptive_timestep_default(false);
  spice::set_dc_warm_start_enabled(true);
}
BENCHMARK(BM_SpiceSalTransient)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

static void BM_SpiceBatchedDraws(benchmark::State& state) {
  // 16 mismatch draws of one SAL (design, corner) cell, the inner loop of a
  // verification batch.  Arg 0 = sequential per-draw evaluate() on the fixed
  // grid (the pre-batching path), arg 1 = the lockstep batched evaluator on
  // the LTE-adaptive union grid — the batched production regime.  Newton
  // LU-bypass stays off in both legs: measured slower at SAL matrix sizes
  // (a chord iteration still pays the full companion-model evaluation, and
  // the O(n^3) refactor it saves is noise at n~20; see BENCH_spice.json).
  // Warm start on for both, with a per-iteration cache clear so every run
  // is cold-equivalent.
  constexpr std::size_t kDraws = 16;
  const bool batched = state.range(0) != 0;
  spice::set_adaptive_timestep_default(batched);
  circuits::StrongArmLatchSpice sal;
  const auto& sz = sal.sizing();
  std::vector<double> x01 = {0.2, 0.3, 0.2, 0.2, 0.2, 0.1, 0.2, 0, 0, 0, 0, 0, 0.05, 0.01};
  const auto x = sz.denormalize(x01);
  const auto layout = sal.mismatch_layout(x, false);
  Rng rng(9);
  const auto hs = pdk::sample_mismatch_set(layout, kDraws, rng, pdk::GlobalMode::Zero);
  for (auto _ : state) {
    state.PauseTiming();
    spice::thread_local_dc_cache().clear();
    state.ResumeTiming();
    if (batched) {
      benchmark::DoNotOptimize(sal.evaluate_draws(x, pdk::typical_corner(), hs));
    } else {
      for (const auto& h : hs) {
        benchmark::DoNotOptimize(sal.evaluate(x, pdk::typical_corner(), h));
      }
    }
  }
  spice::set_adaptive_timestep_default(false);
  state.counters["draws_per_s"] = benchmark::Counter(
      static_cast<double>(kDraws) * state.iterations(), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SpiceBatchedDraws)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

static void BM_SpiceAssemblyOnly(benchmark::State& state) {
  // One Newton iteration's assembly through the compiled stamp plan: memcpy
  // of the cached static matrix + RHS base, then the MOSFET companion pass.
  circuits::StrongArmLatchSpice sal;
  const auto x = sal.sizing().denormalize(
      std::vector<double>{0.2, 0.3, 0.2, 0.2, 0.2, 0.1, 0.2, 0, 0, 0, 0, 0, 0.05, 0.01});
  const spice::Circuit ckt = sal.build_netlist(x, pdk::typical_corner(), {});
  spice::StampPlan plan(ckt, {});
  std::vector<double> x_prev(plan.padded_size(), 0.0);
  std::vector<double> cap_current(ckt.capacitors().size(), 0.0);
  spice::AssemblyInputs in;
  in.mode = spice::AnalysisMode::Transient;
  in.time = 1e-9;
  in.dt = 2e-12;
  in.trapezoidal = true;
  in.x_prev = x_prev;
  in.cap_current_prev = cap_current;
  plan.begin_solve(in);
  std::vector<double> xg(plan.padded_size(), 0.45);
  plan.load_pinned(xg);
  spice::LuSolver solver;
  spice::DenseMatrix& g = solver.matrix(plan.unknown_count());
  std::vector<double> rhs(plan.unknown_count() + 1, 0.0);
  for (auto _ : state) {
    plan.stamp(xg, g, rhs);
    benchmark::DoNotOptimize(g.data());
    benchmark::DoNotOptimize(rhs.data());
  }
}
BENCHMARK(BM_SpiceAssemblyOnly);

static void BM_SpiceNewtonOp(benchmark::State& state) {
  // A full DC Newton solve (assembly + fused LU each iteration) on the SAL
  // netlist with a warm workspace: cold solves at arg 0, warm-started at 1.
  circuits::StrongArmLatchSpice sal;
  const auto x = sal.sizing().denormalize(
      std::vector<double>{0.2, 0.3, 0.2, 0.2, 0.2, 0.1, 0.2, 0, 0, 0, 0, 0, 0.05, 0.01});
  const spice::Circuit ckt = sal.build_netlist(x, pdk::typical_corner(), {});
  spice::Simulator sim(ckt);
  const spice::OpResult seed = sim.operating_point();
  const spice::OpResult* warm = state.range(0) != 0 ? &seed : nullptr;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.operating_point(warm));
  }
}
BENCHMARK(BM_SpiceNewtonOp)->Arg(0)->Arg(1);

static void BM_LuSolve(benchmark::State& state) {
  const std::size_t n = state.range(0);
  Rng rng(2);
  spice::DenseMatrix a(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a.at(i, j) = rng.uniform(-1.0, 1.0);
    a.at(i, i) += static_cast<double>(n);
  }
  const std::vector<double> b = rng.uniform_vector(n, -1.0, 1.0);
  for (auto _ : state) {
    spice::LuSolver solver;
    benchmark::DoNotOptimize(solver.factor(a));
    benchmark::DoNotOptimize(solver.solve(b));
  }
}
BENCHMARK(BM_LuSolve)->Arg(16)->Arg(64);

static void BM_EngineBatch(benchmark::State& state) {
  // The evaluation funnel under every table: one design, one corner, a batch
  // of fresh mismatch draws through the caching engine.
  core::EvaluationEngine engine(circuits::make_testbench(circuits::Testcase::DramOcsa));
  const auto& sz = engine.testbench().sizing();
  std::vector<double> x01(sz.dimension(), 0.5);
  const auto x = sz.denormalize(x01);
  const auto layout = engine.testbench().mismatch_layout(x, false);
  Rng rng(6);
  for (auto _ : state) {
    state.PauseTiming();
    const auto hs =
        pdk::sample_mismatch_set(layout, state.range(0), rng, pdk::GlobalMode::Zero);
    state.ResumeTiming();
    benchmark::DoNotOptimize(engine.evaluate_batch(x, pdk::typical_corner(), hs));
  }
}
BENCHMARK(BM_EngineBatch)->Arg(3)->Arg(32)->Arg(100);

static void BM_EngineCacheHit(benchmark::State& state) {
  core::EvaluationEngine engine(circuits::make_testbench(circuits::Testcase::DramOcsa));
  const auto& sz = engine.testbench().sizing();
  std::vector<double> x01(sz.dimension(), 0.5);
  const auto x = sz.denormalize(x01);
  (void)engine.evaluate_one(x, pdk::typical_corner(), {});  // prime
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.evaluate_one(x, pdk::typical_corner(), {}));
  }
}
BENCHMARK(BM_EngineCacheHit);

static void BM_GlovaRunCornerOnly(benchmark::State& state) {
  // End-to-end GlovaOptimizer::run — TuRBO init, RL loop, verification —
  // on the behavioral SAL bench, corner-only regime, fixed seed.
  set_log_level(LogLevel::Warn);
  const auto tb = circuits::make_testbench(circuits::Testcase::Sal);
  for (auto _ : state) {
    core::GlovaConfig cfg;
    cfg.method = core::VerifMethod::C;
    cfg.seed = 1;
    cfg.max_iterations = 200;
    core::GlovaOptimizer opt(tb, cfg);
    const auto res = opt.run();
    benchmark::DoNotOptimize(res.n_simulations);
  }
}
BENCHMARK(BM_GlovaRunCornerOnly)->Unit(benchmark::kMillisecond);

static void BM_CriticUpdate(benchmark::State& state) {
  Rng rng(3);
  rl::CriticConfig cfg;
  rl::EnsembleCritic critic(14, cfg, rng);
  std::vector<std::vector<double>> xs(10);
  std::vector<double> rs(10);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = rng.uniform_vector(14, 0.0, 1.0);
    rs[i] = rng.uniform(-1.0, 0.2);
  }
  for (auto _ : state) {
    for (std::size_t i = 0; i < critic.ensemble_size(); ++i) {
      benchmark::DoNotOptimize(critic.train_base(i, xs, rs));
    }
  }
}
BENCHMARK(BM_CriticUpdate);

static void BM_HScoreReordering(benchmark::State& state) {
  Rng rng(4);
  const std::size_t n = state.range(0);
  const std::size_t r = 21;
  std::vector<std::vector<double>> hs(n);
  for (auto& h : hs) h = rng.normal_vector(r);
  const std::vector<double> rho = rng.normal_vector(r);
  for (auto _ : state) {
    std::vector<double> scores(n);
    for (std::size_t i = 0; i < n; ++i) scores[i] = core::h_score(hs[i], rho);
    benchmark::DoNotOptimize(core::order_descending(scores));
  }
}
BENCHMARK(BM_HScoreReordering)->Arg(1000);

static void BM_GpFitPredict(benchmark::State& state) {
  Rng rng(5);
  const std::size_t n = state.range(0);
  std::vector<std::vector<double>> xs(n);
  std::vector<double> ys(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = rng.uniform_vector(14, 0.0, 1.0);
    ys[i] = std::sin(xs[i][0] * 6.0) + 0.1 * rng.normal();
  }
  const std::vector<double> q = rng.uniform_vector(14, 0.0, 1.0);
  for (auto _ : state) {
    opt::GaussianProcess gp;
    gp.fit(xs, ys);
    benchmark::DoNotOptimize(gp.predict(q));
  }
}
BENCHMARK(BM_GpFitPredict)->Arg(50)->Arg(150)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
