// Shared harness for the table/figure reproduction binaries.
//
// Each bench prints the paper row ("paper") next to the measured row
// ("ours") so the shape comparison is immediate.  Seeds, iteration caps and
// the evaluator backend are env-tunable (see docs/reproduce_table2.md):
//   GLOVA_BENCH_SEEDS   (default 5)   independent runs per cell
//   GLOVA_BENCH_MAXIT   (default 3000) RL-iteration cap (success-rate cap)
//   GLOVA_BENCH_BACKEND (default behavioral) evaluator backend; "spice"
//                       runs every testcase transistor-level on the MNA
//                       engine (see circuits::available_backends)
//   GLOVA_BENCH_BATCHED (default 0) route mismatch-draw groups through the
//                       lockstep batched SPICE evaluator
//                       (RunSpec engine.batched_draws; no-op on behavioral)
//   GLOVA_BENCH_MOS_MODEL (default level1) SPICE MOSFET channel model
//                       (RunSpec engine.mos_model: level1 or ekv)
//   GLOVA_BENCH_SPICE_NOISE (default 0) simulated AC/noise pass in place of
//                       the analytic budget (RunSpec engine.spice_noise)
//   GLOVA_BENCH_CORNERS (default all) corner_filter: "all" or "cold_lv"
//                       (only the coldest low-voltage corner)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "circuits/registry.hpp"
#include "core/run_spec.hpp"

namespace glova::bench {

/// Table II row labels for core::Algorithm ("Ours" for GLOVA).
using Method = core::Algorithm;

[[nodiscard]] const char* to_string(Method m);

/// Aggregated multi-seed statistics for one (method, circuit, verif) cell.
struct CellStats {
  double mean_iterations = 0.0;   ///< over successful runs (paper's footnote)
  double mean_simulations = 0.0;  ///< over successful runs
  double mean_modeled_runtime = 0.0;
  double mean_wall_seconds = 0.0;
  double success_rate = 0.0;      ///< over all runs
  std::size_t runs = 0;
};

struct BenchOptions {
  std::size_t seeds = 3;
  std::size_t max_iterations = 3000;
  /// Evaluator backend for every cell (GLOVA_BENCH_BACKEND).  Every
  /// testcase supports both backends.
  circuits::Backend backend = circuits::Backend::Behavioral;
  /// Batched mismatch-draw evaluation (GLOVA_BENCH_BATCHED), forwarded to
  /// RunSpec engine.batched_draws.
  bool batched_draws = false;
  /// SPICE MOSFET channel model (GLOVA_BENCH_MOS_MODEL), forwarded to
  /// RunSpec engine.mos_model.
  std::string mos_model = "level1";
  /// Simulated AC/noise pass (GLOVA_BENCH_SPICE_NOISE), forwarded to
  /// RunSpec engine.spice_noise.
  bool spice_noise = false;
  /// PVT corner-set restriction (GLOVA_BENCH_CORNERS), forwarded to
  /// RunSpec corner_filter.
  std::string corner_filter = "all";
  /// Ablation switches (Table III); default = full GLOVA.
  bool use_ensemble_critic = true;
  bool use_mu_sigma = true;
  bool use_reordering = true;
};

[[nodiscard]] BenchOptions options_from_env();

/// Run one cell: `seeds` runs of `method` on `testcase` under `verif`,
/// scheduled as one core::Campaign (seed sweep over the shared evaluation
/// stack; see docs/reproduce_table2.md).
[[nodiscard]] CellStats run_cell(Method method, circuits::Testcase testcase,
                                 core::VerifMethod verif, const BenchOptions& options);

/// Print a Table II-style block for one circuit: rows = metric x method,
/// columns = verification methods.  `paper` holds the published values
/// in the order [metric][method][verif] for the comparison row.
struct PaperCell {
  double iterations = 0.0;
  double simulations = 0.0;
  double norm_runtime = 0.0;
  double success = 1.0;
};

void print_table2_block(circuits::Testcase testcase,
                        const std::vector<std::vector<PaperCell>>& paper,
                        const BenchOptions& options);

}  // namespace glova::bench
