#include "spice/ac.hpp"

#include <algorithm>
#include <cmath>
#include <complex>
#include <numbers>

#include "common/units.hpp"
#include "spice/mos_model.hpp"

namespace glova::spice {

namespace {

using Cplx = std::complex<double>;

/// Dense complex LU with partial pivoting.  The AC systems are tiny (every
/// node plus one branch per V/E element), so a plain O(n^3) factorization is
/// the right tool; the transpose solve is what makes the adjoint noise
/// method one-solve-per-frequency.
class ComplexLu {
 public:
  explicit ComplexLu(std::size_t n) : n_(n), a_(n * n, Cplx{0.0, 0.0}), piv_(n, 0) {}

  void reset() { std::fill(a_.begin(), a_.end(), Cplx{0.0, 0.0}); }
  Cplx& at(std::size_t row, std::size_t col) { return a_[row * n_ + col]; }

  /// In-place PA = LU factorization; false on a (numerically) singular pivot.
  bool factor() {
    for (std::size_t k = 0; k < n_; ++k) {
      std::size_t p = k;
      double best = std::abs(a_[k * n_ + k]);
      for (std::size_t r = k + 1; r < n_; ++r) {
        const double mag = std::abs(a_[r * n_ + k]);
        if (mag > best) {
          best = mag;
          p = r;
        }
      }
      if (!(best > 0.0) || !std::isfinite(best)) return false;
      piv_[k] = p;
      if (p != k) {
        for (std::size_t c = 0; c < n_; ++c) std::swap(a_[k * n_ + c], a_[p * n_ + c]);
      }
      const Cplx inv_pivot = 1.0 / a_[k * n_ + k];
      for (std::size_t r = k + 1; r < n_; ++r) {
        const Cplx m = a_[r * n_ + k] * inv_pivot;
        a_[r * n_ + k] = m;
        if (m == Cplx{0.0, 0.0}) continue;
        for (std::size_t c = k + 1; c < n_; ++c) a_[r * n_ + c] -= m * a_[k * n_ + c];
      }
    }
    return true;
  }

  /// Solve A x = b in place.
  void solve(std::vector<Cplx>& b) const {
    for (std::size_t k = 0; k < n_; ++k) {
      if (piv_[k] != k) std::swap(b[k], b[piv_[k]]);
    }
    for (std::size_t r = 1; r < n_; ++r) {
      Cplx sum = b[r];
      for (std::size_t c = 0; c < r; ++c) sum -= a_[r * n_ + c] * b[c];
      b[r] = sum;
    }
    for (std::size_t r = n_; r-- > 0;) {
      Cplx sum = b[r];
      for (std::size_t c = r + 1; c < n_; ++c) sum -= a_[r * n_ + c] * b[c];
      b[r] = sum / a_[r * n_ + r];
    }
  }

  /// Solve A^T y = b in place (adjoint transfer solve): with PA = LU,
  /// A^T = U^T L^T P, so U^T z = b (forward), L^T w = z (backward), then the
  /// row swaps are undone in reverse order.
  void solve_transpose(std::vector<Cplx>& b) const {
    for (std::size_t r = 0; r < n_; ++r) {
      Cplx sum = b[r];
      for (std::size_t c = 0; c < r; ++c) sum -= a_[c * n_ + r] * b[c];
      b[r] = sum / a_[r * n_ + r];
    }
    for (std::size_t r = n_; r-- > 0;) {
      Cplx sum = b[r];
      for (std::size_t c = r + 1; c < n_; ++c) sum -= a_[c * n_ + r] * b[c];
      b[r] = sum;
    }
    for (std::size_t k = n_; k-- > 0;) {
      if (piv_[k] != k) std::swap(b[k], b[piv_[k]]);
    }
  }

 private:
  std::size_t n_;
  std::vector<Cplx> a_;
  std::vector<std::size_t> piv_;
};

/// One device noise-current injection (flowing from `from_x` to `to_x`
/// through the device, i.e. RHS contribution (e_to - e_from) * i) and its
/// PSD: S(f) = thermal + flicker_coeff / f.
struct NoiseSource {
  std::ptrdiff_t from_x = -1;  ///< unknown index or -1 for ground
  std::ptrdiff_t to_x = -1;
  double thermal = 0.0;        ///< [A^2/Hz] white part
  double flicker_coeff = 0.0;  ///< [A^2] flicker part, S_fl = coeff / f
};

}  // namespace

NoiseResult noise_analysis(const Circuit& circuit, const OpResult& op, const AcNoiseSpec& spec,
                           const SimulatorOptions& options) {
  NoiseResult res;
  if (!op.converged || op.node_voltages.size() < circuit.node_count()) {
    res.message = "noise_analysis: operating point not converged";
    return res;
  }
  if (!(spec.f_start > 0.0) || !(spec.f_stop > spec.f_start) || spec.points_per_decade < 1) {
    res.message = "noise_analysis: bad frequency grid";
    return res;
  }

  // --- unknown ordering: node voltages (ground dropped), V branches, E
  // branches.  The AC pass keeps the classic full MNA formulation — no
  // pinning: shorted sources cost one branch each and the systems are tiny.
  const std::size_t n_nodes = circuit.node_count();
  const std::size_t n_vsrc = circuit.vsources().size();
  const std::size_t n_vcvs = circuit.vcvs().size();
  const std::size_t n = (n_nodes - 1) + n_vsrc + n_vcvs;
  const auto xof = [](NodeId nd) -> std::ptrdiff_t {
    return nd == Circuit::ground() ? -1 : static_cast<std::ptrdiff_t>(nd - 1);
  };

  std::ptrdiff_t input_branch = -1;
  for (std::size_t si = 0; si < n_vsrc; ++si) {
    if (circuit.vsources()[si].name == spec.input) {
      input_branch = static_cast<std::ptrdiff_t>((n_nodes - 1) + si);
    }
  }
  if (input_branch < 0) {
    res.message = "noise_analysis: input source '" + spec.input + "' not found";
    return res;
  }
  if (!circuit.has_node(spec.output_pos) ||
      (!spec.output_neg.empty() && !circuit.has_node(spec.output_neg))) {
    res.message = "noise_analysis: output node not found";
    return res;
  }
  const std::ptrdiff_t out_p = xof(circuit.find_node(spec.output_pos));
  const std::ptrdiff_t out_n =
      spec.output_neg.empty() ? -1 : xof(circuit.find_node(spec.output_neg));

  // --- operating-point linearization of every MOSFET (shared by the matrix
  // stamps and the channel noise models) ---
  struct MosLin {
    const Mosfet* dev;
    MosLinearization lin;
  };
  std::vector<MosLin> mos;
  mos.reserve(circuit.mosfets().size());
  for (const Mosfet& m : circuit.mosfets()) {
    const double vg = op.node_voltages[m.gate];
    const double vd = op.node_voltages[m.drain];
    const double vs = op.node_voltages[m.source];
    mos.push_back({&m, mos_linearize(options.mos_model, m.params, m.w_over_l(), vg, vd, vs)});
  }

  // --- noise source list (frequency-independent descriptions) ---
  const double kT_res = units::kBoltzmann * spec.temp_k;
  std::vector<NoiseSource> sources;
  sources.reserve(circuit.resistors().size() + mos.size());
  for (const Resistor& r : circuit.resistors()) {
    if (!(r.ohms > 0.0)) continue;
    sources.push_back({xof(r.a), xof(r.b), 4.0 * kT_res / r.ohms, 0.0});
  }
  for (const MosLin& ml : mos) {
    const pdk::MosParams& p = ml.dev->params;
    const double gm = std::abs(ml.lin.d_vg);
    const double gds = std::abs(ml.lin.d_vd);
    const double kT_dev = units::kBoltzmann * p.temp_k;
    NoiseSource s;
    s.from_x = xof(ml.dev->drain);
    s.to_x = xof(ml.dev->source);
    s.thermal = 4.0 * kT_dev * (p.gamma_n * gm + gds);
    s.flicker_coeff = p.kf * std::pow(std::abs(ml.lin.i_ds), p.af);
    sources.push_back(s);
  }

  // --- logarithmic frequency grid ---
  const double decades = std::log10(spec.f_stop / spec.f_start);
  const int n_pts = std::max(2, 1 + static_cast<int>(std::ceil(decades * spec.points_per_decade)));
  res.freq.resize(n_pts);
  for (int i = 0; i < n_pts; ++i) {
    res.freq[i] = spec.f_start * std::pow(10.0, decades * i / (n_pts - 1));
  }
  res.gain_mag.resize(n_pts, 0.0);
  res.output_psd.resize(n_pts, 0.0);
  std::vector<double> thermal_psd(n_pts, 0.0);

  ComplexLu lu(n);
  std::vector<Cplx> fwd(n);
  std::vector<Cplx> adj(n);
  const auto read = [](const std::vector<Cplx>& v, std::ptrdiff_t x) {
    return x < 0 ? Cplx{0.0, 0.0} : v[static_cast<std::size_t>(x)];
  };

  for (int fi = 0; fi < n_pts; ++fi) {
    const double w = 2.0 * std::numbers::pi * res.freq[fi];
    lu.reset();
    const auto add = [&](std::ptrdiff_t row, std::ptrdiff_t col, Cplx v) {
      if (row < 0 || col < 0) return;
      lu.at(static_cast<std::size_t>(row), static_cast<std::size_t>(col)) += v;
    };
    // gmin keeps floating (capacitor-only) nodes non-singular, as in the
    // Newton assembly.
    for (NodeId nd = 1; nd < n_nodes; ++nd) add(xof(nd), xof(nd), Cplx{options.gmin, 0.0});
    for (const Resistor& r : circuit.resistors()) {
      const Cplx g{1.0 / r.ohms, 0.0};
      add(xof(r.a), xof(r.a), g);
      add(xof(r.a), xof(r.b), -g);
      add(xof(r.b), xof(r.b), g);
      add(xof(r.b), xof(r.a), -g);
    }
    for (const Capacitor& c : circuit.capacitors()) {
      const Cplx y{0.0, w * c.farads};
      add(xof(c.a), xof(c.a), y);
      add(xof(c.a), xof(c.b), -y);
      add(xof(c.b), xof(c.b), y);
      add(xof(c.b), xof(c.a), -y);
    }
    for (const Vccs& g : circuit.vccs()) {
      const Cplx gm{g.transconductance, 0.0};
      add(xof(g.pos), xof(g.ctrl_pos), gm);
      add(xof(g.pos), xof(g.ctrl_neg), -gm);
      add(xof(g.neg), xof(g.ctrl_pos), -gm);
      add(xof(g.neg), xof(g.ctrl_neg), gm);
    }
    for (std::size_t si = 0; si < n_vsrc; ++si) {
      const VoltageSource& v = circuit.vsources()[si];
      const auto branch = static_cast<std::ptrdiff_t>((n_nodes - 1) + si);
      add(xof(v.pos), branch, Cplx{1.0, 0.0});
      add(xof(v.neg), branch, Cplx{-1.0, 0.0});
      add(branch, xof(v.pos), Cplx{1.0, 0.0});
      add(branch, xof(v.neg), Cplx{-1.0, 0.0});
    }
    for (std::size_t ei = 0; ei < n_vcvs; ++ei) {
      const Vcvs& e = circuit.vcvs()[ei];
      const auto branch = static_cast<std::ptrdiff_t>((n_nodes - 1) + n_vsrc + ei);
      add(xof(e.pos), branch, Cplx{1.0, 0.0});
      add(xof(e.neg), branch, Cplx{-1.0, 0.0});
      add(branch, xof(e.pos), Cplx{1.0, 0.0});
      add(branch, xof(e.neg), Cplx{-1.0, 0.0});
      add(branch, xof(e.ctrl_pos), Cplx{-e.gain, 0.0});
      add(branch, xof(e.ctrl_neg), Cplx{e.gain, 0.0});
    }
    for (const MosLin& ml : mos) {
      const std::ptrdiff_t d = xof(ml.dev->drain);
      const std::ptrdiff_t g = xof(ml.dev->gate);
      const std::ptrdiff_t s = xof(ml.dev->source);
      add(d, g, Cplx{ml.lin.d_vg, 0.0});
      add(d, d, Cplx{ml.lin.d_vd, 0.0});
      add(d, s, Cplx{ml.lin.d_vs, 0.0});
      add(s, g, Cplx{-ml.lin.d_vg, 0.0});
      add(s, d, Cplx{-ml.lin.d_vd, 0.0});
      add(s, s, Cplx{-ml.lin.d_vs, 0.0});
    }

    if (!lu.factor()) {
      res.message = "noise_analysis: singular AC matrix at f = " + std::to_string(res.freq[fi]);
      return res;
    }

    // Forward transfer: unit AC excitation on the input source's branch row.
    std::fill(fwd.begin(), fwd.end(), Cplx{0.0, 0.0});
    fwd[static_cast<std::size_t>(input_branch)] = Cplx{1.0, 0.0};
    lu.solve(fwd);
    res.gain_mag[fi] = std::abs(read(fwd, out_p) - read(fwd, out_n));

    // Adjoint transfer: one transpose solve gives every source's transfer to
    // the output.
    std::fill(adj.begin(), adj.end(), Cplx{0.0, 0.0});
    if (out_p >= 0) adj[static_cast<std::size_t>(out_p)] += Cplx{1.0, 0.0};
    if (out_n >= 0) adj[static_cast<std::size_t>(out_n)] -= Cplx{1.0, 0.0};
    lu.solve_transpose(adj);
    double psd = 0.0;
    double psd_thermal = 0.0;
    for (const NoiseSource& s : sources) {
      // RHS of a current i flowing from -> to through the device is
      // (e_to - e_from) * i, so the transfer is y[to] - y[from].
      const double t2 = std::norm(read(adj, s.to_x) - read(adj, s.from_x));
      psd_thermal += s.thermal * t2;
      psd += (s.thermal + s.flicker_coeff / res.freq[fi]) * t2;
    }
    res.output_psd[fi] = psd;
    thermal_psd[fi] = psd_thermal;
  }

  // Trapezoid integration over the (linear-frequency) grid.
  double total = 0.0;
  double thermal = 0.0;
  for (int i = 0; i + 1 < n_pts; ++i) {
    const double df = res.freq[i + 1] - res.freq[i];
    total += 0.5 * (res.output_psd[i] + res.output_psd[i + 1]) * df;
    thermal += 0.5 * (thermal_psd[i] + thermal_psd[i + 1]) * df;
  }
  res.output_noise_vrms = std::sqrt(std::max(0.0, total));
  res.thermal_vrms = std::sqrt(std::max(0.0, thermal));
  res.flicker_vrms = std::sqrt(std::max(0.0, total - thermal));
  res.gain_ref = res.gain_mag.empty() ? 0.0 : res.gain_mag.front();
  res.input_noise_vrms = res.output_noise_vrms / std::max(res.gain_ref, 1e-12);
  res.ok = true;
  return res;
}

}  // namespace glova::spice
