// Documentation honesty checks (the docs/ tree is part of the contract):
//   - every relative markdown link in README.md and docs/*.md resolves to a
//     real file in the repo,
//   - docs/run_spec.md documents every RunSpec key (run_spec_keys() is the
//     machine-readable index of the grammar),
//   - run_spec_keys() itself stays in lockstep with RunSpec::to_string(),
//   - the docs the error messages point at actually exist.
//
// The source tree location comes from the GLOVA_SOURCE_DIR compile
// definition (set in CMakeLists.txt), so the checks run from any build dir.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/run_spec.hpp"

namespace glova {
namespace {

namespace fs = std::filesystem;

fs::path source_dir() { return fs::path(GLOVA_SOURCE_DIR); }

std::string read_file(const fs::path& path) {
  std::ifstream is(path);
  EXPECT_TRUE(is) << "cannot open " << path;
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

/// All markdown documents that form the public doc surface.
std::vector<fs::path> doc_files() {
  std::vector<fs::path> out = {source_dir() / "README.md"};
  for (const auto& entry : fs::directory_iterator(source_dir() / "docs")) {
    if (entry.path().extension() == ".md") out.push_back(entry.path());
  }
  return out;
}

/// Extract every inline markdown link target: the (...) after a ](.
std::vector<std::string> link_targets(const std::string& text) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while ((pos = text.find("](", pos)) != std::string::npos) {
    const std::size_t start = pos + 2;
    const std::size_t end = text.find(')', start);
    if (end == std::string::npos) break;
    out.push_back(text.substr(start, end - start));
    pos = end + 1;
  }
  return out;
}

TEST(Docs, TreeExists) {
  EXPECT_TRUE(fs::exists(source_dir() / "docs" / "architecture.md"));
  EXPECT_TRUE(fs::exists(source_dir() / "docs" / "run_spec.md"));
  EXPECT_TRUE(fs::exists(source_dir() / "docs" / "reproduce_table2.md"));
}

TEST(Docs, InternalLinksResolve) {
  for (const fs::path& doc : doc_files()) {
    const std::string text = read_file(doc);
    for (const std::string& raw : link_targets(text)) {
      if (raw.empty() || raw.front() == '#') continue;  // intra-doc anchor
      if (raw.rfind("http://", 0) == 0 || raw.rfind("https://", 0) == 0 ||
          raw.rfind("mailto:", 0) == 0) {
        continue;  // external; not checked offline
      }
      // Strip an anchor suffix: docs/foo.md#section -> docs/foo.md.
      std::string target = raw.substr(0, raw.find('#'));
      if (target.empty()) continue;
      const fs::path resolved = doc.parent_path() / target;
      EXPECT_TRUE(fs::exists(resolved))
          << doc.filename() << " links to missing target '" << raw << "'";
    }
  }
}

TEST(Docs, RunSpecDocCoversEveryKey) {
  const std::string doc = read_file(source_dir() / "docs" / "run_spec.md");
  for (const std::string_view key : core::run_spec_keys()) {
    // Keys are documented in backticks so prose mentions don't mask a
    // missing grammar row.
    const std::string needle = "`" + std::string(key) + "`";
    EXPECT_NE(doc.find(needle), std::string::npos)
        << "docs/run_spec.md does not document RunSpec key '" << key << "'";
  }
}

TEST(Docs, RunSpecKeysMatchTheCanonicalEmission) {
  // run_spec_keys() is only honest if it matches what to_string() emits —
  // key-for-key, in order.
  const std::string text = core::RunSpec{}.to_string();
  std::vector<std::string> emitted;
  std::istringstream ss(text);
  std::string token;
  while (ss >> token) {
    const std::size_t eq = token.find('=');
    ASSERT_NE(eq, std::string::npos) << token;
    emitted.push_back(token.substr(0, eq));
  }
  const auto& keys = core::run_spec_keys();
  ASSERT_EQ(emitted.size(), keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(emitted[i], keys[i]) << "key order mismatch at index " << i;
  }
}

TEST(Docs, ErrorMessagesPointAtAnExistingDoc) {
  // RunSpec validation errors and the registry error both reference
  // docs/run_spec.md; the file must exist for the pointer to be useful.
  try {
    (void)core::RunSpec::from_string("no_such_key=1");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("docs/run_spec.md"), std::string::npos) << what;
  }
  EXPECT_TRUE(fs::exists(source_dir() / "docs" / "run_spec.md"));
}

}  // namespace
}  // namespace glova
