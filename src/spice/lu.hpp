// Dense LU factorization with partial pivoting.  MNA systems for the paper's
// testbenches have a few dozen unknowns, so a dense solver is both simpler
// and faster than a sparse one at this scale.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace glova::spice {

/// Row-major dense square matrix.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  explicit DenseMatrix(std::size_t n) : n_(n), data_(n * n, 0.0) {}

  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] double& at(std::size_t r, std::size_t c) { return data_[r * n_ + c]; }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const { return data_[r * n_ + c]; }

  void set_zero();
  /// Resize to n x n and zero.  Reuses existing storage when capacity allows,
  /// so a workspace matrix is allocation-free across same-size solves.
  void resize_zero(std::size_t n);
  [[nodiscard]] std::span<double> row(std::size_t r) { return {&data_[r * n_], n_}; }

 private:
  std::size_t n_ = 0;
  std::vector<double> data_;
};

/// Factor A in place (returns false if singular to working precision) and
/// solve A x = b.  `perm` records the row permutation.
class LuSolver {
 public:
  /// Factor a copy of `a`.  Returns false on (numerical) singularity.
  [[nodiscard]] bool factor(const DenseMatrix& a);

  /// Solve using the last successful factorization.
  [[nodiscard]] std::vector<double> solve(std::span<const double> b) const;

  /// Solve into a caller-provided vector (resized to n; reuses capacity so
  /// repeated solves allocate nothing).  `x` must not alias `b`.
  void solve_into(std::span<const double> b, std::vector<double>& x) const;

 private:
  DenseMatrix lu_;
  std::vector<std::size_t> perm_;
};

}  // namespace glova::spice
