// Process-wide simulator counters (relaxed atomics, summed over every
// thread), mirroring the warm-start statistics pattern: the scalar and
// batched evaluators note events here and core::EvaluationEngine surfaces
// them through EngineStats as deltas against a construction-time snapshot.
#pragma once

#include <cstdint>

namespace glova::spice {

struct SpiceCounters {
  /// Batched-evaluator groups run and total lanes marched across them.
  std::uint64_t batch_groups = 0;
  std::uint64_t batch_lanes = 0;
  /// Chord-Newton solves on frozen LU factors (Newton bypass) vs. full
  /// stamp + refactor solves taken in bypass mode (first step, stalls).
  std::uint64_t bypass_solves = 0;
  std::uint64_t bypass_refactors = 0;
  /// LTE-adaptive timestep controller: accepted steps and rejected (redone)
  /// steps, scalar and batched paths combined.
  std::uint64_t steps_accepted = 0;
  std::uint64_t steps_rejected = 0;
  /// Convergence-recovery ladder: DC operating points rescued by gmin
  /// stepping and transient steps rescued by substep cutting / DC restart
  /// (scalar and per-lane batched rescues combined).
  std::uint64_t recovered_dc = 0;
  std::uint64_t recovered_transient = 0;
  /// Runs aborted by the cooperative Newton-iteration deadline.
  std::uint64_t deadline_aborts = 0;
};

[[nodiscard]] SpiceCounters spice_counters();
void reset_spice_counters();

void note_batch_group(std::uint64_t lanes);
void note_bypass_solves(std::uint64_t solves, std::uint64_t refactors);
void note_lte_steps(std::uint64_t accepted, std::uint64_t rejected);
void note_recovered_dc();
void note_recovered_transient();
void note_deadline_abort();

}  // namespace glova::spice
