#include "spice/simulator.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

#include "spice/counters.hpp"
#include "spice/mos_model.hpp"

namespace glova::spice {

// ---------------------------------------------------------------------------
// Process-wide option switches

namespace {
std::atomic<bool> g_adaptive_timestep_default{false};
std::atomic<bool> g_newton_bypass_default{false};
std::atomic<bool> g_recovery_default{false};
std::atomic<std::uint64_t> g_deadline_default{0};
std::atomic<unsigned char> g_mos_model_default{static_cast<unsigned char>(MosModel::kLevel1)};
std::atomic<bool> g_noise_analysis_default{false};
thread_local int t_recovery_escalation = 0;
thread_local const FaultPlan* t_fault_plan = nullptr;
}  // namespace

bool adaptive_timestep_default() {
  return g_adaptive_timestep_default.load(std::memory_order_relaxed);
}
void set_adaptive_timestep_default(bool enabled) {
  g_adaptive_timestep_default.store(enabled, std::memory_order_relaxed);
}
bool newton_bypass_default() { return g_newton_bypass_default.load(std::memory_order_relaxed); }
void set_newton_bypass_default(bool enabled) {
  g_newton_bypass_default.store(enabled, std::memory_order_relaxed);
}
bool recovery_default() { return g_recovery_default.load(std::memory_order_relaxed); }
void set_recovery_default(bool enabled) {
  g_recovery_default.store(enabled, std::memory_order_relaxed);
}
std::uint64_t deadline_default() { return g_deadline_default.load(std::memory_order_relaxed); }
void set_deadline_default(std::uint64_t max_newton_iterations) {
  g_deadline_default.store(max_newton_iterations, std::memory_order_relaxed);
}
MosModel mos_model_default() {
  return static_cast<MosModel>(g_mos_model_default.load(std::memory_order_relaxed));
}
void set_mos_model_default(MosModel model) {
  g_mos_model_default.store(static_cast<unsigned char>(model), std::memory_order_relaxed);
}
bool noise_analysis_default() { return g_noise_analysis_default.load(std::memory_order_relaxed); }
void set_noise_analysis_default(bool enabled) {
  g_noise_analysis_default.store(enabled, std::memory_order_relaxed);
}
int recovery_escalation() { return t_recovery_escalation; }
void set_recovery_escalation(int level) { t_recovery_escalation = level; }

SimulatorOptions default_simulator_options() {
  SimulatorOptions options;
  options.mos_model = mos_model_default();
  options.adaptive_timestep = adaptive_timestep_default();
  options.newton_bypass = newton_bypass_default();
  options.recovery.enabled = recovery_default();
  options.deadline_newton_iterations = deadline_default();
  // Escalated retries (core::EvaluationEngine) harden the ladder beyond the
  // process defaults; level 0 leaves the options untouched.
  const int level = recovery_escalation();
  if (level >= 1) options.recovery.enabled = true;
  if (level >= 2) {
    options.recovery.gmin_start = 1e-2;
    options.recovery.max_gmin_rungs = 16;
    options.recovery.max_step_cuts = 5;
    options.recovery.dc_restart_attempts = 2;
  }
  return options;
}

// ---------------------------------------------------------------------------
// Failure taxonomy and deterministic fault injection

const char* to_string(FailureStage stage) {
  switch (stage) {
    case FailureStage::None: return "none";
    case FailureStage::Setup: return "setup";
    case FailureStage::DcOperatingPoint: return "dc-operating-point";
    case FailureStage::TransientNewton: return "transient-newton";
    case FailureStage::Timestep: return "timestep";
    case FailureStage::Deadline: return "deadline";
  }
  return "none";
}

std::string FailureReport::to_string() const {
  if (stage == FailureStage::None) return {};
  if (stage == FailureStage::Setup) return message;
  char head[192];
  switch (stage) {
    case FailureStage::DcOperatingPoint:
      std::snprintf(head, sizeof head, "transient: DC operating point failed to converge");
      break;
    case FailureStage::TransientNewton:
      std::snprintf(head, sizeof head, "transient: Newton failed at t = %.6g s", time);
      break;
    case FailureStage::Timestep:
      std::snprintf(head, sizeof head,
                    "transient: Newton failed at t = %.6g s with dt already at dt_min", time);
      break;
    case FailureStage::Deadline:
      std::snprintf(head, sizeof head,
                    "transient: Newton-iteration deadline exceeded at t = %.6g s", time);
      break;
    default:
      head[0] = '\0';
      break;
  }
  std::string out = head;
  if (attempts > 0 || !worst_node.empty()) {
    char detail[160];
    if (!worst_node.empty()) {
      std::snprintf(detail, sizeof detail, " (recovery attempts: %d; worst residual %.3g A at %s)",
                    attempts, final_residual, worst_node.c_str());
    } else {
      std::snprintf(detail, sizeof detail, " (recovery attempts: %d)", attempts);
    }
    out += detail;
  }
  if (!message.empty()) out += " [" + message + "]";
  return out;
}

const FaultPlan::Site* FaultPlan::match(std::uint64_t index) const {
  for (const Site& s : sites) {
    if (index >= s.begin && index < s.end) return &s;
  }
  return nullptr;
}

void set_thread_fault_plan(const FaultPlan* plan) { t_fault_plan = plan; }
const FaultPlan* thread_fault_plan() { return t_fault_plan; }

std::string row_label(const Circuit& circuit, const StampPlan& plan, std::size_t row) {
  if (row < plan.unknown_node_count()) {
    for (NodeId nd = 1; nd < circuit.node_count(); ++nd) {
      if (plan.node_is_unknown(nd) && plan.x_slot(nd) == row) return circuit.node_name(nd);
    }
  }
  return "branch " + std::to_string(row);
}

void note_worst_residual(const Circuit& circuit, StampPlan& plan, std::span<const double> x,
                         FailureReport& report) {
  const std::size_t n = plan.unknown_count();
  std::vector<double> r(n + 1, 0.0);
  plan.residual(x, r);
  std::size_t worst = 0;
  double worst_abs = 0.0;
  for (std::size_t row = 0; row < n; ++row) {
    const double a = std::abs(r[row]);
    if (a > worst_abs) {
      worst_abs = a;
      worst = row;
    }
  }
  report.final_residual = worst_abs;
  report.worst_node = row_label(circuit, plan, worst);
}

// ---------------------------------------------------------------------------
// TransientResult

const Trace* TransientResult::find_trace(const std::string& name) const {
  // Lazily build (and rebuild after appends) the name -> index map; callers
  // like the measurement layer look traces up once per metric.
  if (trace_index_.size() != traces.size()) {
    trace_index_.clear();
    trace_index_.reserve(traces.size());
    for (std::size_t i = 0; i < traces.size(); ++i) {
      trace_index_.emplace(traces[i].name, i);  // first occurrence wins
    }
  }
  const auto it = trace_index_.find(name);
  return it == trace_index_.end() ? nullptr : &traces[it->second];
}

const std::vector<double>& TransientResult::trace(const std::string& name) const {
  const Trace* t = find_trace(name);
  if (t == nullptr) throw std::out_of_range("TransientResult::trace: no trace named " + name);
  return t->values;
}

bool TransientResult::has_trace(const std::string& name) const {
  return find_trace(name) != nullptr;
}

// ---------------------------------------------------------------------------
// StampPlan

std::size_t StampPlan::mat_slot(NodeId row, NodeId col) const {
  if (row == Circuit::ground() || col == Circuit::ground()) return scratch_;
  if (node_pin_[row] != kNoPin || node_pin_[col] != kNoPin) return scratch_;
  return node_slot_[row] * stride_ + node_slot_[col];
}

std::size_t StampPlan::rhs_slot(NodeId node) const {
  if (node == Circuit::ground() || node_pin_[node] != kNoPin) return n_;
  return node_slot_[node];
}

void StampPlan::route_static(std::vector<LinearStamp>& out, NodeId row, NodeId col,
                             double value) {
  if (row == Circuit::ground() || node_pin_[row] != kNoPin) return;  // row eliminated
  route_static_row(out, node_slot_[row], col, value);
}

void StampPlan::route_static_row(std::vector<LinearStamp>& out, std::size_t row_unknown,
                                 NodeId col, double value) {
  if (col == Circuit::ground()) return;  // V = 0: no contribution
  if (node_pin_[col] != kNoPin) {
    // Known voltage: move `value * V_col` to the right-hand side.
    pinned_rhs_.push_back({row_unknown, -value, node_pin_[col]});
    return;
  }
  out.push_back({row_unknown * stride_ + node_slot_[col], value});
}

void StampPlan::append_conductance(NodeId a, NodeId b, double cond) {
  // Same entry order as the reference two-terminal conductance stamp:
  // (a,a), (a,b), (b,b), (b,a) — order matters for reproducible accumulation.
  route_static(pre_cap_, a, a, cond);
  route_static(pre_cap_, a, b, -cond);
  route_static(pre_cap_, b, b, cond);
  route_static(pre_cap_, b, a, -cond);
}

StampPlan::StampPlan(const Circuit& circuit, const SimulatorOptions& options) {
  mos_model_ = options.mos_model;
  n_nodes_ = circuit.node_count();
  const std::vector<VoltageSource>& vsrcs = circuit.vsources();
  const std::size_t n_vsrc = vsrcs.size();
  const std::size_t n_vcvs = circuit.vcvs().size();

  // --- node classification: ground / pinned-by-source / unknown ---
  node_slot_.assign(n_nodes_, 0);
  node_pin_.assign(n_nodes_, kNoPin);
  vsrc_branch_.assign(n_vsrc, kNoSlot);
  std::vector<bool> src_pinned(n_vsrc, false);
  if (options.pin_grounded_sources) {
    for (std::size_t si = 0; si < n_vsrc; ++si) {
      const VoltageSource& v = vsrcs[si];
      NodeId p = Circuit::ground();
      double sign = 1.0;
      if (v.pos != Circuit::ground() && v.neg == Circuit::ground()) {
        p = v.pos;
      } else if (v.neg != Circuit::ground() && v.pos == Circuit::ground()) {
        p = v.neg;
        sign = -1.0;
      }
      if (p == Circuit::ground() || node_pin_[p] != kNoPin) continue;
      node_pin_[p] = pinned_.size();
      src_pinned[si] = true;
      pinned_.push_back({si, p, sign, &v.waveform});
    }
  }
  nu_ = 0;
  for (NodeId nd = 1; nd < n_nodes_; ++nd) {
    if (node_pin_[nd] == kNoPin) node_slot_[nd] = nu_++;
  }
  std::size_t nb_vsrc = 0;
  for (std::size_t si = 0; si < n_vsrc; ++si) {
    if (!src_pinned[si]) vsrc_branch_[si] = nu_ + nb_vsrc++;
  }
  n_ = nu_ + nb_vsrc + n_vcvs;
  for (NodeId nd = 1; nd < n_nodes_; ++nd) {
    if (node_pin_[nd] != kNoPin) node_slot_[nd] = n_ + node_pin_[nd];
  }
  node_slot_[Circuit::ground()] = n_ + pinned_.size();  // trailing zero slot

  stride_ = DenseMatrix::row_stride(n_);
  scratch_ = n_ * stride_;
  static_g_.assign(n_ * stride_ + 1, 0.0);
  rhs_base_.assign(n_ + 1, 0.0);
  pinned_vals_.assign(pinned_.size(), 0.0);

  // gmin to ground keeps cutoff regions non-singular.  It is applied first,
  // then resistors: the accumulation order into shared slots is kept fixed
  // so repeated solves are reproducible.
  for (NodeId nd = 1; nd < n_nodes_; ++nd) {
    if (node_pin_[nd] != kNoPin) continue;
    const std::size_t idx = node_slot_[nd];
    pre_cap_.push_back({idx * stride_ + idx, options.gmin});
  }
  for (const Resistor& r : circuit.resistors()) {
    append_conductance(r.a, r.b, 1.0 / r.ohms);
  }

  for (const Capacitor& c : circuit.capacitors()) {
    CapStamp cs;
    cs.aa = mat_slot(c.a, c.a);
    cs.ab = mat_slot(c.a, c.b);
    cs.bb = mat_slot(c.b, c.b);
    cs.ba = mat_slot(c.b, c.a);
    cs.rhs_a = rhs_slot(c.a);
    cs.rhs_b = rhs_slot(c.b);
    cs.xa = x_slot(c.a);
    cs.xb = x_slot(c.b);
    cs.pin_a = (c.a != Circuit::ground()) ? node_pin_[c.a] : kNoPin;
    cs.pin_b = (c.b != Circuit::ground()) ? node_pin_[c.b] : kNoPin;
    cs.farads = c.farads;
    caps_.push_back(cs);
  }

  for (std::size_t si = 0; si < n_vsrc; ++si) {
    if (vsrc_branch_[si] == kNoSlot) continue;  // absorbed
    const VoltageSource& v = vsrcs[si];
    const std::size_t branch = vsrc_branch_[si];
    if (v.pos != Circuit::ground() && node_pin_[v.pos] == kNoPin) {
      post_cap_.push_back({node_slot_[v.pos] * stride_ + branch, 1.0});
    }
    route_static_row(post_cap_, branch, v.pos, 1.0);
    if (v.neg != Circuit::ground() && node_pin_[v.neg] == kNoPin) {
      post_cap_.push_back({node_slot_[v.neg] * stride_ + branch, -1.0});
    }
    route_static_row(post_cap_, branch, v.neg, -1.0);
    vsrcs_.push_back({branch, &v.waveform});
  }

  for (const CurrentSource& i : circuit.isources()) {
    isrcs_.push_back({rhs_slot(i.pos), rhs_slot(i.neg), &i.waveform});
  }

  const std::vector<Vcvs>& vcvs = circuit.vcvs();
  for (std::size_t ei = 0; ei < vcvs.size(); ++ei) {
    const Vcvs& e = vcvs[ei];
    const std::size_t branch = nu_ + nb_vsrc + ei;
    if (e.pos != Circuit::ground() && node_pin_[e.pos] == kNoPin) {
      post_cap_.push_back({node_slot_[e.pos] * stride_ + branch, 1.0});
    }
    route_static_row(post_cap_, branch, e.pos, 1.0);
    if (e.neg != Circuit::ground() && node_pin_[e.neg] == kNoPin) {
      post_cap_.push_back({node_slot_[e.neg] * stride_ + branch, -1.0});
    }
    route_static_row(post_cap_, branch, e.neg, -1.0);
    route_static_row(post_cap_, branch, e.ctrl_pos, -e.gain);
    route_static_row(post_cap_, branch, e.ctrl_neg, e.gain);
  }

  for (const Vccs& gm : circuit.vccs()) {
    route_static(post_cap_, gm.pos, gm.ctrl_pos, gm.transconductance);
    route_static(post_cap_, gm.pos, gm.ctrl_neg, -gm.transconductance);
    route_static(post_cap_, gm.neg, gm.ctrl_pos, -gm.transconductance);
    route_static(post_cap_, gm.neg, gm.ctrl_neg, gm.transconductance);
  }

  for (const Mosfet& m : circuit.mosfets()) {
    MosStamp ms;
    ms.j_dg = mat_slot(m.drain, m.gate);
    ms.j_dd = mat_slot(m.drain, m.drain);
    ms.j_ds = mat_slot(m.drain, m.source);
    ms.j_sg = mat_slot(m.source, m.gate);
    ms.j_sd = mat_slot(m.source, m.drain);
    ms.j_ss = mat_slot(m.source, m.source);
    ms.rhs_d = rhs_slot(m.drain);
    ms.rhs_s = rhs_slot(m.source);
    ms.xg = x_slot(m.gate);
    ms.xd = x_slot(m.drain);
    ms.xs = x_slot(m.source);
    // Masks fold known-voltage terminals out of the companion RHS: for an
    // unknown terminal the J*v term cancels against the matrix column; for
    // ground/pinned terminals the matrix column is gone and the J*v value
    // belongs in i_eq (ground contributes 0 either way).
    ms.mg = node_is_unknown(m.gate) ? 1.0 : 0.0;
    ms.md = node_is_unknown(m.drain) ? 1.0 : 0.0;
    ms.ms = node_is_unknown(m.source) ? 1.0 : 0.0;
    ms.params = &m.params;
    ms.w_over_l = m.w_over_l();
    mosfets_.push_back(ms);
  }

  build_recovery(circuit, options);
}

void StampPlan::build_recovery(const Circuit& circuit, const SimulatorOptions& options) {
  recovery_.resize(pinned_.size());
  const std::size_t zero_slot = node_slot_[Circuit::ground()];
  for (std::size_t pi = 0; pi < pinned_.size(); ++pi) {
    const NodeId p = pinned_[pi].node;
    std::vector<RecoveryTerm>& terms = recovery_[pi];

    // gmin to ground (matches the gmin the full-branch formulation stamps).
    {
      RecoveryTerm t;
      t.kind = RecoveryTerm::Kind::Conductance;
      t.coeff = options.gmin;
      t.xa = x_slot(p);
      t.xb = zero_slot;
      terms.push_back(t);
    }
    for (const Resistor& r : circuit.resistors()) {
      const double g = 1.0 / r.ohms;
      if (r.a == p) {
        RecoveryTerm t;
        t.kind = RecoveryTerm::Kind::Conductance;
        t.coeff = g;
        t.xa = x_slot(r.a);
        t.xb = x_slot(r.b);
        terms.push_back(t);
      }
      if (r.b == p) {
        RecoveryTerm t;
        t.kind = RecoveryTerm::Kind::Conductance;
        t.coeff = g;
        t.xa = x_slot(r.b);
        t.xb = x_slot(r.a);
        terms.push_back(t);
      }
    }
    const std::vector<Capacitor>& caps = circuit.capacitors();
    for (std::size_t ci = 0; ci < caps.size(); ++ci) {
      if (caps[ci].a == p || caps[ci].b == p) {
        RecoveryTerm t;
        t.kind = RecoveryTerm::Kind::CapCurrent;
        t.coeff = (caps[ci].a == p ? 1.0 : 0.0) - (caps[ci].b == p ? 1.0 : 0.0);
        t.index = ci;
        terms.push_back(t);
      }
    }
    for (const Mosfet& m : circuit.mosfets()) {
      if (m.drain != p && m.source != p) continue;  // gates draw no current
      RecoveryTerm t;
      t.kind = RecoveryTerm::Kind::MosChannel;
      t.coeff = (m.drain == p ? 1.0 : 0.0) - (m.source == p ? 1.0 : 0.0);
      t.params = &m.params;
      t.w_over_l = m.w_over_l();
      t.xg = x_slot(m.gate);
      t.xd = x_slot(m.drain);
      t.xs = x_slot(m.source);
      terms.push_back(t);
    }
    for (const CurrentSource& i : circuit.isources()) {
      if (i.pos != p && i.neg != p) continue;
      RecoveryTerm t;
      t.kind = RecoveryTerm::Kind::SourceCurrent;
      t.coeff = (i.pos == p ? 1.0 : 0.0) - (i.neg == p ? 1.0 : 0.0);
      t.waveform = &i.waveform;
      terms.push_back(t);
    }
    const std::vector<VoltageSource>& vsrcs = circuit.vsources();
    for (std::size_t si = 0; si < vsrcs.size(); ++si) {
      if (vsrc_branch_[si] == kNoSlot) continue;  // absorbed (including self)
      if (vsrcs[si].pos != p && vsrcs[si].neg != p) continue;
      RecoveryTerm t;
      t.kind = RecoveryTerm::Kind::BranchCurrent;
      t.coeff = (vsrcs[si].pos == p ? 1.0 : 0.0) - (vsrcs[si].neg == p ? 1.0 : 0.0);
      t.index = vsrc_branch_[si];
      terms.push_back(t);
    }
    const std::vector<Vcvs>& vcvs = circuit.vcvs();
    for (std::size_t ei = 0; ei < vcvs.size(); ++ei) {
      if (vcvs[ei].pos != p && vcvs[ei].neg != p) continue;
      RecoveryTerm t;
      t.kind = RecoveryTerm::Kind::BranchCurrent;
      t.coeff = (vcvs[ei].pos == p ? 1.0 : 0.0) - (vcvs[ei].neg == p ? 1.0 : 0.0);
      t.index = n_ - vcvs.size() + ei;
      terms.push_back(t);
    }
    for (const Vccs& gm : circuit.vccs()) {
      if (gm.pos != p && gm.neg != p) continue;
      RecoveryTerm t;
      t.kind = RecoveryTerm::Kind::Conductance;
      t.coeff = ((gm.pos == p ? 1.0 : 0.0) - (gm.neg == p ? 1.0 : 0.0)) * gm.transconductance;
      t.xa = x_slot(gm.ctrl_pos);
      t.xb = x_slot(gm.ctrl_neg);
      terms.push_back(t);
    }
  }
}

void StampPlan::begin_solve(const AssemblyInputs& in) {
  const bool transient = in.mode == AnalysisMode::Transient;
  if (transient && in.x_prev.size() != padded_size()) {
    throw std::logic_error("StampPlan::begin_solve: transient requires a padded x_prev");
  }

  // Known node voltages for this solve.
  for (std::size_t pi = 0; pi < pinned_.size(); ++pi) {
    pinned_vals_[pi] =
        pinned_[pi].sign * pinned_[pi].waveform->value(in.time) * in.source_scale;
  }

  // Static matrix: rebuilt only when the (mode, method, dt) key changes —
  // a handful of times per transient (BE startup -> trapezoidal -> final
  // partial step), once per operating point.
  if (!key_.valid || key_.mode != in.mode || key_.trapezoidal != in.trapezoidal ||
      key_.dt != in.dt || key_.extra_gmin != in.extra_gmin) {
    std::fill(static_g_.begin(), static_g_.end(), 0.0);
    for (const LinearStamp& s : pre_cap_) static_g_[s.slot] += s.value;
    if (in.extra_gmin != 0.0) {
      // gmin-stepping rung: extra conductance to ground on every unknown
      // node.  Guarded so the extra_gmin == 0 path accumulates identically
      // to previous releases.
      for (std::size_t i = 0; i < nu_; ++i) static_g_[i * stride_ + i] += in.extra_gmin;
    }
    if (transient) {
      for (const CapStamp& c : caps_) {
        const double geq = (in.trapezoidal ? 2.0 : 1.0) * c.farads / in.dt;
        static_g_[c.aa] += geq;
        static_g_[c.ab] -= geq;
        static_g_[c.bb] += geq;
        static_g_[c.ba] -= geq;
      }
    }
    // In OP mode capacitors are open circuits: no stamp.
    for (const LinearStamp& s : post_cap_) static_g_[s.slot] += s.value;
    static_g_[scratch_] = 0.0;  // scrub scratch garbage from eliminated stamps
    key_ = {in.mode, in.trapezoidal, in.dt, in.extra_gmin, true};
  }

  // RHS base: everything that does not depend on the Newton iterate.  Cheap
  // enough to rebuild per solve (it depends on time, source scale, and the
  // previous timestep).
  std::fill(rhs_base_.begin(), rhs_base_.end(), 0.0);
  double* rb = rhs_base_.data();
  if (transient) {
    const std::span<const double> xp = in.x_prev;
    for (std::size_t ci = 0; ci < caps_.size(); ++ci) {
      const CapStamp& c = caps_[ci];
      const double geq = (in.trapezoidal ? 2.0 : 1.0) * c.farads / in.dt;
      const double v_prev = xp[c.xa] - xp[c.xb];
      if (in.trapezoidal) {
        // i_{n+1} = (2C/dt)(v_{n+1} - v_n) - i_n
        const double i_prev = ci < in.cap_current_prev.size() ? in.cap_current_prev[ci] : 0.0;
        rb[c.rhs_a] += geq * v_prev + i_prev;
        rb[c.rhs_b] -= geq * v_prev + i_prev;
      } else {
        // Backward Euler: i_{n+1} = (C/dt)(v_{n+1} - v_n)
        rb[c.rhs_a] += geq * v_prev;
        rb[c.rhs_b] -= geq * v_prev;
      }
      // Known-voltage side of the companion conductance.
      if (c.pin_b != kNoPin) rb[c.rhs_a] += geq * pinned_vals_[c.pin_b];
      if (c.pin_a != kNoPin) rb[c.rhs_b] += geq * pinned_vals_[c.pin_a];
    }
  }
  for (const VsrcStamp& v : vsrcs_) {
    rb[v.branch] += v.waveform->value(in.time) * in.source_scale;
  }
  for (const IsrcStamp& i : isrcs_) {
    const double value = i.waveform->value(in.time) * in.source_scale;
    rb[i.rhs_pos] -= value;
    rb[i.rhs_neg] += value;
  }
  for (const PinnedRhsStamp& s : pinned_rhs_) {
    rb[s.rhs_row] += s.coeff * pinned_vals_[s.pin];
  }
  rb[n_] = 0.0;  // scrub the RHS scratch slot
}

void StampPlan::load_pinned(std::span<double> x) const {
  for (std::size_t pi = 0; pi < pinned_.size(); ++pi) x[n_ + pi] = pinned_vals_[pi];
  x[n_ + pinned_.size()] = 0.0;  // ground slot
}

void StampPlan::load_static(DenseMatrix& g, std::span<double> rhs) const {
  std::copy(static_g_.begin(), static_g_.end(), g.data());
  std::copy(rhs_base_.begin(), rhs_base_.end(), rhs.begin());
}

void StampPlan::stamp(std::span<const double> x, DenseMatrix& g, std::span<double> rhs) const {
  load_static(g, rhs);
  double* gd = g.data();
  double* rd = rhs.data();

  // MOSFETs: companion model around the current Newton iterate.  Eliminated
  // rows/columns land in the scratch slots, so the loop has no branches
  // beyond the device-region selection inside the linearization itself.
  for (const MosStamp& ms : mosfets_) {
    const double vg = x[ms.xg];
    const double vd = x[ms.xd];
    const double vs = x[ms.xs];
    const MosLinearization lin = mos_linearize(mos_model_, *ms.params, ms.w_over_l, vg, vd, vs);
    // i(vg, vd, vs) ~ i0 + d_vg*(Vg - vg) + d_vd*(Vd - vd) + d_vs*(Vs - vs);
    // only unknown-terminal slopes stay on the left-hand side.
    const double i_eq = lin.i_ds - ms.mg * (lin.d_vg * vg) - ms.md * (lin.d_vd * vd) -
                        ms.ms * (lin.d_vs * vs);
    gd[ms.j_dg] += lin.d_vg;  // current i_ds leaves the drain node
    gd[ms.j_dd] += lin.d_vd;
    gd[ms.j_ds] += lin.d_vs;
    rd[ms.rhs_d] -= i_eq;
    gd[ms.j_sg] -= lin.d_vg;  // and enters the source node
    gd[ms.j_sd] -= lin.d_vd;
    gd[ms.j_ss] -= lin.d_vs;
    rd[ms.rhs_s] += i_eq;
  }
}

void StampPlan::residual(std::span<const double> x, std::span<double> r) const {
  // Static part: G_static x - rhs_base row by row.  Columns >= n_ of each
  // padded row are never written by any stamp, so the matvec can stop at n_.
  const double* g = static_g_.data();
  const double* xp = x.data();
  double* rd = r.data();
  for (std::size_t row = 0; row < n_; ++row) {
    const double* __restrict grow = g + row * stride_;
    double sum = -rhs_base_[row];
    for (std::size_t c = 0; c < n_; ++c) sum += grow[c] * xp[c];
    rd[row] = sum;
  }
  rd[n_] = 0.0;  // scratch slot absorbs eliminated-row device currents
  // Nonlinear part: each channel current leaves the drain node and enters
  // the source node (gates draw no current).
  for (const MosStamp& ms : mosfets_) {
    const double i = mos_current(mos_model_, *ms.params, ms.w_over_l, x[ms.xg], x[ms.xd], x[ms.xs]);
    rd[ms.rhs_d] += i;
    rd[ms.rhs_s] -= i;
  }
}

void StampPlan::vsource_currents(std::span<const double> x, std::span<const double> cap_current,
                                 double time, double source_scale, std::span<double> out) const {
  for (std::size_t si = 0; si < vsrc_branch_.size(); ++si) {
    if (vsrc_branch_[si] != kNoSlot) out[si] = x[vsrc_branch_[si]];
  }
  for (std::size_t pi = 0; pi < pinned_.size(); ++pi) {
    double sum = 0.0;
    for (const RecoveryTerm& t : recovery_[pi]) {
      switch (t.kind) {
        case RecoveryTerm::Kind::Conductance:
          sum += t.coeff * (x[t.xa] - x[t.xb]);
          break;
        case RecoveryTerm::Kind::CapCurrent:
          if (!cap_current.empty()) sum += t.coeff * cap_current[t.index];
          break;
        case RecoveryTerm::Kind::MosChannel:
          sum += t.coeff * mos_current(mos_model_, *t.params, t.w_over_l, x[t.xg], x[t.xd],
                                       x[t.xs]);
          break;
        case RecoveryTerm::Kind::SourceCurrent:
          sum += t.coeff * t.waveform->value(time) * source_scale;
          break;
        case RecoveryTerm::Kind::BranchCurrent:
          sum += t.coeff * x[t.index];
          break;
      }
    }
    // KCL at the pinned node: the currents out of the node plus the source
    // branch current (with its incidence sign) sum to zero.
    out[pinned_[pi].vsource_index] = -pinned_[pi].sign * sum;
  }
}

// ---------------------------------------------------------------------------
// SimulatorWorkspace

void SimulatorWorkspace::prepare(std::size_t n) {
  rhs.resize(n + 1);  // contents are fully overwritten by StampPlan::stamp
  x_new.resize(n);
}

SimulatorWorkspace& thread_local_workspace() {
  thread_local SimulatorWorkspace workspace;
  return workspace;
}

// ---------------------------------------------------------------------------
// Simulator

Simulator::Simulator(const Circuit& circuit, SimulatorOptions options,
                     SimulatorWorkspace* workspace)
    : circuit_(circuit),
      options_(options),
      workspace_(workspace != nullptr ? workspace : &thread_local_workspace()),
      plan_(circuit, options),
      n_nodes_(circuit.node_count()),
      n_vsrc_(circuit.vsources().size()),
      n_vcvs_(circuit.vcvs().size()) {}

double Simulator::voltage_of(const std::vector<double>& x, NodeId node) const {
  return x[plan_.x_slot(node)];
}

bool newton_solve_plan(StampPlan& plan, const SimulatorOptions& options,
                       SimulatorWorkspace& ws, const AssemblyInputs& in, std::vector<double>& x,
                       int& iterations) {
  const std::size_t n = plan.unknown_count();
  const std::size_t nu = plan.unknown_node_count();
  ws.prepare(n);
  plan.begin_solve(in);
  plan.load_pinned(x);
  // Deterministic fault injection (tests/benches only; t_fault_plan is never
  // installed in production, so this is one null check on the default path).
  const FaultPlan::Site* fault = nullptr;
  if (const FaultPlan* fp = thread_fault_plan(); fp != nullptr) {
    fault = fp->match(fp->cursor++);
  }
  if (fault != nullptr && fault->kind == FaultPlan::Kind::NonConverge) {
    iterations += options.max_newton_iterations;
    return false;
  }
  bool poison_rhs = fault != nullptr && fault->kind == FaultPlan::Kind::NanStamp;
  bool wreck_matrix = fault != nullptr && fault->kind == FaultPlan::Kind::SingularMatrix;
  DenseMatrix& g = ws.solver.matrix(n);
  for (int it = 0; it < options.max_newton_iterations; ++it) {
    plan.stamp(x, g, ws.rhs);
    if (poison_rhs) {
      ws.rhs[0] = std::numeric_limits<double>::quiet_NaN();
      poison_rhs = false;
    }
    if (wreck_matrix) {
      std::fill_n(g.data(), n, 0.0);  // zero row 0: factorization must fail
      wreck_matrix = false;
    }
    if (!ws.solver.factor_solve_in_place(std::span<double>(ws.rhs.data(), n), ws.x_new)) {
      iterations += it + 1;
      return false;
    }
    const std::vector<double>& x_new = ws.x_new;
    // Damped update: clamp the voltage change per iteration (node voltages
    // only; branch currents move freely, as before).
    double max_delta = 0.0;
    for (std::size_t i = 0; i < nu; ++i) {
      const double delta =
          std::clamp(x_new[i] - x[i], -options.max_step_voltage, options.max_step_voltage);
      max_delta = std::max(max_delta, std::abs(delta));
      x[i] += delta;
    }
    for (std::size_t i = nu; i < n; ++i) x[i] = x_new[i];
    bool finite = std::isfinite(max_delta);
    for (std::size_t i = 0; finite && i < n; ++i) finite = std::isfinite(x[i]);
    if (!finite) {
      // A NaN/Inf iterate can never converge (NaN comparisons silently fall
      // out of the max/clamp reductions); bail now instead of burning the
      // iteration budget on a poisoned solve.
      iterations += it + 1;
      return false;
    }
    if (max_delta < options.vtol) {
      iterations += it + 1;
      if (fault != nullptr && fault->kind == FaultPlan::Kind::SlowConverge) {
        iterations += fault->extra_iterations;
      }
      return true;
    }
  }
  iterations += options.max_newton_iterations;
  return false;
}

OpResult operating_point_plan(const Circuit& circuit, StampPlan& plan,
                              const SimulatorOptions& options, SimulatorWorkspace& ws,
                              const OpResult* warm_start, FailureReport* failure, double time) {
  const std::size_t n_nodes = circuit.node_count();
  const std::size_t n_vsrc = circuit.vsources().size();
  OpResult result;
  std::vector<double> x(plan.padded_size(), 0.0);

  AssemblyInputs in;
  in.mode = AnalysisMode::Op;
  in.time = time;

  int iterations = 0;
  int recovery_attempts = 0;
  bool deadline_hit = false;
  bool ok = false;
  bool warm = false;
  if (warm_start != nullptr && warm_start->converged &&
      warm_start->node_voltages.size() == n_nodes &&
      warm_start->vsource_currents.size() == n_vsrc) {
    for (NodeId nd = 1; nd < n_nodes; ++nd) {
      if (plan.node_is_unknown(nd)) x[plan.x_slot(nd)] = warm_start->node_voltages[nd];
    }
    for (std::size_t si = 0; si < n_vsrc; ++si) {
      const std::size_t slot = plan.vsource_branch_slot(si);
      if (slot != StampPlan::kNoSlot) x[slot] = warm_start->vsource_currents[si];
    }
    // VCVS branch currents are not part of OpResult; they stay seeded at 0.
    warm = true;
    ok = newton_solve_plan(plan, options, ws, in, x, iterations);
    if (!ok) {
      // A bad seed must never cost correctness: restart cold.
      std::fill(x.begin(), x.end(), 0.0);
      warm = false;
    }
  }
  if (!ok) ok = newton_solve_plan(plan, options, ws, in, x, iterations);
  if (!ok && deadline_exceeded(options, static_cast<std::uint64_t>(iterations))) {
    deadline_hit = true;
  }
  if (!ok && !deadline_hit) {
    // Source stepping: ramp all independent sources from 0 to full value.
    std::fill(x.begin(), x.end(), 0.0);
    ok = true;
    for (int step = 1; step <= options.source_steps; ++step) {
      in.source_scale = static_cast<double>(step) / options.source_steps;
      if (!newton_solve_plan(plan, options, ws, in, x, iterations)) {
        ok = false;
        break;
      }
      if (deadline_exceeded(options, static_cast<std::uint64_t>(iterations))) {
        ok = false;
        deadline_hit = true;
        break;
      }
    }
    in.source_scale = 1.0;
  }
  if (!ok && deadline_exceeded(options, static_cast<std::uint64_t>(iterations))) {
    deadline_hit = true;
  }
  if (!ok && !deadline_hit && options.recovery.enabled) {
    // gmin-stepping ladder with anneal-back: solve with a large extra
    // conductance to ground on every unknown node (heavily damped,
    // nearly-linear system), then anneal it geometrically toward zero.  A
    // failed rung retreats one level, restarts the iterate cold, and
    // descends more gently from there.  The point only counts once a solve
    // at extra_gmin == 0 converges.
    const RecoveryPolicy& rp = options.recovery;
    std::fill(x.begin(), x.end(), 0.0);
    in.source_scale = 1.0;
    double anneal = rp.gmin_anneal;
    double extra = rp.gmin_start;
    for (int rung = 0; rung < rp.max_gmin_rungs && !ok; ++rung) {
      ++recovery_attempts;
      in.extra_gmin = extra;
      if (newton_solve_plan(plan, options, ws, in, x, iterations)) {
        if (extra == 0.0) {
          ok = true;
          note_recovered_dc();
          break;
        }
        const double next = extra * anneal;
        extra = next <= options.gmin ? 0.0 : next;
      } else {
        std::fill(x.begin(), x.end(), 0.0);
        extra = std::min(rp.gmin_start, (extra == 0.0 ? options.gmin : extra) / anneal);
        anneal = std::sqrt(anneal);
      }
      if (deadline_exceeded(options, static_cast<std::uint64_t>(iterations))) {
        deadline_hit = true;
        break;
      }
    }
    in.extra_gmin = 0.0;
  }

  result.converged = ok;
  result.iterations = iterations;
  result.warm_started = warm;
  if (ok) {
    result.node_voltages.assign(n_nodes, 0.0);
    for (NodeId nd = 1; nd < n_nodes; ++nd) result.node_voltages[nd] = x[plan.x_slot(nd)];
    result.vsource_currents.assign(n_vsrc, 0.0);
    plan.vsource_currents(x, {}, time, 1.0, result.vsource_currents);
  } else if (failure != nullptr) {
    failure->stage = deadline_hit ? FailureStage::Deadline : FailureStage::DcOperatingPoint;
    failure->time = time;
    failure->attempts = recovery_attempts;
    note_worst_residual(circuit, plan, x, *failure);
    if (deadline_hit) note_deadline_abort();
  }
  return result;
}

bool Simulator::newton_solve(const AssemblyInputs& in, std::vector<double>& x, int& iterations) {
  return newton_solve_plan(plan_, options_, *workspace_, in, x, iterations);
}

OpResult Simulator::operating_point(const OpResult* warm_start) {
  return operating_point_plan(circuit_, plan_, options_, *workspace_, warm_start);
}

TransientResult Simulator::transient(const TransientSpec& spec, const OpResult* dc_warm_start) {
  TransientResult result;
  if (spec.dt <= 0.0 || spec.t_stop <= 0.0) {
    result.failure.stage = FailureStage::Setup;
    result.failure.message = "transient: dt and t_stop must be positive";
    result.error = result.failure.to_string();
    return result;
  }

  // --- initial state (padded layout: pinned tail reloaded every solve) ---
  std::vector<double> x(plan_.padded_size(), 0.0);
  if (spec.use_ic) {
    for (const auto& [name, value] : spec.initial_conditions) {
      const NodeId node = circuit_.find_node(name);
      if (node != Circuit::ground() && plan_.node_is_unknown(node)) {
        x[plan_.x_slot(node)] = value;
      }
    }
    // Also honor capacitor initial voltages for caps to ground.
    for (const Capacitor& c : circuit_.capacitors()) {
      if (c.initial_voltage && c.b == Circuit::ground() && c.a != Circuit::ground() &&
          plan_.node_is_unknown(c.a)) {
        x[plan_.x_slot(c.a)] = *c.initial_voltage;
      }
    }
  } else {
    OpResult op = operating_point_plan(circuit_, plan_, options_, *workspace_, dc_warm_start,
                                       &result.failure);
    if (!op.converged) {
      result.error = result.failure.to_string();
      return result;
    }
    for (NodeId nd = 1; nd < n_nodes_; ++nd) x[plan_.x_slot(nd)] = op.node_voltages[nd];
    for (std::size_t si = 0; si < n_vsrc_; ++si) {
      const std::size_t slot = plan_.vsource_branch_slot(si);
      if (slot != StampPlan::kNoSlot) x[slot] = op.vsource_currents[si];
    }
    result.dc_iterations = op.iterations;
    result.dc_op = std::move(op);
    if (deadline_exceeded(options_, static_cast<std::uint64_t>(result.dc_iterations))) {
      result.failure.stage = FailureStage::Deadline;
      result.failure.time = 0.0;
      note_deadline_abort();
      result.error = result.failure.to_string();
      return result;
    }
  }

  // --- set up recording ---
  std::vector<NodeId> record_nodes;
  if (spec.record.empty()) {
    for (NodeId nd = 1; nd < n_nodes_; ++nd) record_nodes.push_back(nd);
  } else {
    for (const std::string& name : spec.record) record_nodes.push_back(circuit_.find_node(name));
  }
  result.traces.reserve(record_nodes.size() + n_vsrc_);
  for (const NodeId nd : record_nodes) result.traces.push_back(Trace{circuit_.node_name(nd), {}});
  for (const VoltageSource& v : circuit_.vsources()) {
    result.traces.push_back(Trace{"I(" + v.name + ")", {}});
  }

  const std::size_t n_caps = circuit_.capacitors().size();
  std::vector<double> cap_current(n_caps, 0.0);
  std::vector<double> vsrc_i(n_vsrc_, 0.0);

  const auto record_point = [&](double time, const std::vector<double>& solution,
                                bool recover_currents) {
    result.times.push_back(time);
    std::size_t ti = 0;
    for (const NodeId nd : record_nodes) result.traces[ti++].values.push_back(voltage_of(solution, nd));
    if (n_vsrc_ > 0) {
      if (recover_currents) {
        plan_.vsource_currents(solution, cap_current, time, 1.0, vsrc_i);
      } else {
        std::fill(vsrc_i.begin(), vsrc_i.end(), 0.0);
      }
      for (std::size_t si = 0; si < n_vsrc_; ++si) result.traces[ti++].values.push_back(vsrc_i[si]);
    }
  };

  // With UIC the t = 0 state is the caller's initial guess, not a solved
  // point: branch currents are zero by definition (the classic full-branch
  // formulation records exactly that), and the pinned tail of `x` is not
  // loaded yet, so KCL recovery must not run against it.
  record_point(0.0, x, /*recover_currents=*/!spec.use_ic);

  // --- time stepping ---
  std::vector<double> x_prev = x;

  // Update per-capacitor branch currents for the trapezoidal companion.
  // `cap` is the target state vector: the main loops pass cap_current, the
  // recovery substeps a scratch copy committed only on success.
  const std::vector<Capacitor>& caps = circuit_.capacitors();
  const auto update_caps_into = [&](std::vector<double>& cap, const std::vector<double>& x_now,
                                    const std::vector<double>& x_was, double dt,
                                    bool trapezoidal) {
    for (std::size_t ci = 0; ci < n_caps; ++ci) {
      const Capacitor& c = caps[ci];
      const double v_now = voltage_of(x_now, c.a) - voltage_of(x_now, c.b);
      const double v_was = voltage_of(x_was, c.a) - voltage_of(x_was, c.b);
      if (trapezoidal) {
        cap[ci] = 2.0 * c.farads / dt * (v_now - v_was) - cap[ci];
      } else {
        cap[ci] = c.farads / dt * (v_now - v_was);
      }
    }
  };
  const auto update_cap_currents = [&](const std::vector<double>& x_now,
                                       const std::vector<double>& x_was, double dt,
                                       bool trapezoidal) {
    update_caps_into(cap_current, x_now, x_was, dt, trapezoidal);
  };

  // Newton iterations spent so far this run (the cooperative deadline is on
  // DC + transient combined).
  const auto spent = [&]() {
    return static_cast<std::uint64_t>(result.dc_iterations) + result.newton_iterations;
  };

  // Recovery rung 2 (fixed grid): cut the failing [t_prev, t] step into 2^k
  // backward-Euler substeps from the last accepted point, deeper on repeated
  // failure; recording stays at the original grid point so the trace shape
  // is unchanged.  Rung 3: bounded restart from a pseudo-DC point with the
  // sources frozen at t (capacitors open, so their currents restart at 0).
  // On success `x` holds the solution at t and cap_current the matching
  // companion state.
  const auto rescue_transient_step = [&](double t_prev, double t, int& attempts,
                                         bool& deadline_hit) -> bool {
    const RecoveryPolicy& rp = options_.recovery;
    std::vector<double> x_sub(x.size());
    std::vector<double> x_sub_prev(x.size());
    std::vector<double> cap_sub(n_caps);
    for (int cut = 1; cut <= rp.max_step_cuts; ++cut) {
      ++attempts;
      const int k = 1 << cut;
      x_sub = x_prev;
      x_sub_prev = x_prev;
      cap_sub = cap_current;
      bool sub_ok = true;
      double t_a = t_prev;
      for (int j = 1; j <= k; ++j) {
        const double t_b = j == k ? t : t_prev + (t - t_prev) * j / k;
        AssemblyInputs sub;
        sub.mode = AnalysisMode::Transient;
        sub.time = t_b;
        sub.dt = t_b - t_a;
        sub.trapezoidal = false;
        sub.x_prev = x_sub_prev;
        sub.cap_current_prev = cap_sub;
        int sub_iterations = 0;
        const bool solved = newton_solve(sub, x_sub, sub_iterations);
        result.newton_iterations += static_cast<std::uint64_t>(sub_iterations);
        if (deadline_exceeded(options_, spent())) {
          deadline_hit = true;
          return false;
        }
        if (!solved) {
          sub_ok = false;
          break;
        }
        update_caps_into(cap_sub, x_sub, x_sub_prev, sub.dt, false);
        x_sub_prev = x_sub;
        t_a = t_b;
      }
      if (sub_ok) {
        x = x_sub;
        cap_current = cap_sub;
        return true;
      }
    }
    for (int restart = 0; restart < rp.dc_restart_attempts; ++restart) {
      ++attempts;
      OpResult op =
          operating_point_plan(circuit_, plan_, options_, *workspace_, nullptr, nullptr, t);
      result.newton_iterations += static_cast<std::uint64_t>(op.iterations);
      if (deadline_exceeded(options_, spent())) {
        deadline_hit = true;
        return false;
      }
      if (!op.converged) continue;
      std::fill(x.begin(), x.end(), 0.0);
      for (NodeId nd = 1; nd < n_nodes_; ++nd) x[plan_.x_slot(nd)] = op.node_voltages[nd];
      for (std::size_t si = 0; si < n_vsrc_; ++si) {
        const std::size_t slot = plan_.vsource_branch_slot(si);
        if (slot != StampPlan::kNoSlot) x[slot] = op.vsource_currents[si];
      }
      std::fill(cap_current.begin(), cap_current.end(), 0.0);
      return true;
    }
    return false;
  };

  if (!options_.adaptive_timestep) {
    const auto n_steps = static_cast<std::size_t>(std::ceil(spec.t_stop / spec.dt));

    for (std::size_t step = 1; step <= n_steps; ++step) {
      // Uniform grid, with the final (possibly partial) step landing exactly
      // on t_stop.  dt is measured against the previously recorded time, so
      // it is positive by construction of n_steps; the guard only fires if
      // rounding made the second-to-last grid point collide with t_stop.
      const double t_prev = result.times.back();
      double t = static_cast<double>(step) * spec.dt;
      if (step == n_steps || t > spec.t_stop) t = spec.t_stop;
      const double dt = t - t_prev;
      if (dt <= 0.0) break;

      AssemblyInputs in;
      in.mode = AnalysisMode::Transient;
      in.time = t;
      in.dt = dt;
      // Backward-Euler startup damps the artificial transient from imperfect
      // initial conditions; trapezoidal afterwards for accuracy.
      in.trapezoidal = step > 2;
      in.x_prev = x_prev;
      in.cap_current_prev = cap_current;

      int step_iterations = 0;
      bool solved = newton_solve(in, x, step_iterations);
      result.newton_iterations += static_cast<std::uint64_t>(step_iterations);
      bool deadline_hit = deadline_exceeded(options_, spent());
      bool rescued = false;
      FailureReport report;
      if (!solved) {
        // Capture the worst-residual row of the failed iterate now, while
        // the plan still holds this solve's assembly.
        note_worst_residual(circuit_, plan_, x, report);
        if (!deadline_hit && options_.recovery.enabled) {
          rescued = rescue_transient_step(t_prev, t, report.attempts, deadline_hit);
          if (rescued) note_recovered_transient();
        }
      }
      if (!solved && !rescued) {
        report.stage = deadline_hit ? FailureStage::Deadline : FailureStage::TransientNewton;
        report.time = t;
        if (deadline_hit) note_deadline_abort();
        result.failure = std::move(report);
        result.error = result.failure.to_string();
        return result;
      }
      if (solved && deadline_hit) {
        result.failure.stage = FailureStage::Deadline;
        result.failure.time = t;
        note_deadline_abort();
        result.error = result.failure.to_string();
        return result;
      }

      // A rescued step's companion state was advanced by its substeps (or
      // reset by the DC restart); only the plain path integrates over dt.
      if (!rescued) update_cap_currents(x, x_prev, dt, in.trapezoidal);

      record_point(t, x, /*recover_currents=*/true);
      ++result.steps_accepted;
      result.dt_trace.push_back(dt);
      x_prev = x;
    }

    result.ok = true;
    return result;
  }

  // --- LTE-adaptive time stepping ---
  //
  // spec.dt is the initial (and post-breakpoint) step.  Each step is solved
  // tentatively, its local truncation error estimated from divided
  // differences over the accepted history, and accepted/rejected against
  // reltol * |v| + abstol; dt then follows the classic error-controller
  // update safety * ratio^(-1/(order+1)) within grow/shrink clamps.  Steps
  // are forced to land exactly on waveform breakpoints, and both the step
  // size and the integration order reset there (the divided-difference
  // history straddling a slope discontinuity would poison the estimate).
  const double dt_min = spec.dt * options_.dt_min_factor;
  const double dt_max = spec.dt * options_.dt_max_factor;

  std::vector<double> breaks;
  for (const VoltageSource& v : circuit_.vsources()) {
    v.waveform.append_breakpoints(spec.t_stop, breaks);
  }
  for (const CurrentSource& i : circuit_.isources()) {
    i.waveform.append_breakpoints(spec.t_stop, breaks);
  }
  breaks.push_back(spec.t_stop);
  std::sort(breaks.begin(), breaks.end());
  // Merge breakpoints closer than dt_min; the run must still end exactly at
  // t_stop even if the final breakpoint got swallowed by the merge.
  {
    std::size_t kept = 0;
    for (const double t : breaks) {
      if (kept != 0 && t - breaks[kept - 1] < dt_min) continue;
      breaks[kept++] = t;
    }
    breaks.resize(kept);
    if (breaks.back() != spec.t_stop) breaks.back() = spec.t_stop;
  }

  // Accepted-solution history for the divided-difference LTE estimate:
  // newest last, node voltages only (branch currents are algebraic in MNA
  // and carry no integration error of their own).
  const std::size_t nu = plan_.unknown_node_count();
  std::array<std::vector<double>, 3> hist_x;
  std::array<double, 3> hist_t{};
  std::size_t hist_n = 0;
  const auto push_history = [&](double t, const std::vector<double>& sol) {
    if (hist_n == 3) {
      std::vector<double> recycled = std::move(hist_x[0]);
      hist_x[0] = std::move(hist_x[1]);
      hist_x[1] = std::move(hist_x[2]);
      hist_x[2] = std::move(recycled);
      hist_t[0] = hist_t[1];
      hist_t[1] = hist_t[2];
      --hist_n;
    }
    hist_x[hist_n].assign(sol.begin(), sol.begin() + static_cast<std::ptrdiff_t>(nu));
    hist_t[hist_n] = t;
    ++hist_n;
  };
  push_history(0.0, x);

  /// max_i lte_i / (reltol * |v_i| + abstol) for the tentative solution, or
  /// 0 when the history is too short to estimate (startup: accept).
  const auto lte_ratio = [&](double t_new, const std::vector<double>& x_new, bool trap) {
    const std::size_t need = trap ? 3 : 2;  // history points (+ the trial)
    if (hist_n < need) return 0.0;
    const std::size_t m = need;  // divided-difference order
    double ts[4];
    const std::vector<double>* hx[3];
    for (std::size_t k = 0; k < need; ++k) {
      ts[k] = hist_t[hist_n - need + k];
      hx[k] = &hist_x[hist_n - need + k];
    }
    ts[m] = t_new;
    const double dt_new = t_new - ts[m - 1];
    double worst = 0.0;
    for (std::size_t i = 0; i < nu; ++i) {
      double f[4];
      for (std::size_t k = 0; k < need; ++k) f[k] = (*hx[k])[i];
      f[m] = x_new[i];
      for (std::size_t order = 1; order <= m; ++order) {
        for (std::size_t k = m; k >= order; --k) {
          f[k] = (f[k] - f[k - 1]) / (ts[k] - ts[k - order]);
        }
      }
      // Trapezoidal LTE ~ dt^3/12 |x'''| with x''' ~ 6 DD3; backward Euler
      // LTE ~ dt^2/2 |x''| with x'' ~ 2 DD2.
      const double lte = trap ? 0.5 * dt_new * dt_new * dt_new * std::abs(f[m])
                              : dt_new * dt_new * std::abs(f[m]);
      const double tol = options_.lte_reltol * std::max(std::abs(x_new[i]), std::abs((*hx[m - 1])[i])) +
                         options_.lte_abstol;
      worst = std::max(worst, lte / tol);
    }
    return worst;
  };

  double t_cur = 0.0;
  double dt = std::clamp(spec.dt, dt_min, dt_max);
  std::size_t bp_i = 0;
  std::size_t since_reset = 0;  // accepted steps since t=0 / last breakpoint
  std::vector<double> x_trial = x_prev;

  while (t_cur < spec.t_stop) {
    while (bp_i < breaks.size() && breaks[bp_i] <= t_cur) ++bp_i;
    if (bp_i >= breaks.size()) break;  // unreachable: t_stop is a breakpoint
    const double bp = breaks[bp_i];

    dt = std::clamp(dt, dt_min, dt_max);
    double t_next = t_cur + dt;
    if (t_next > bp - dt_min) t_next = bp;  // land exactly, leave no sliver
    const double dt_eff = t_next - t_cur;
    // Backward-Euler startup after t=0 and after every breakpoint, matching
    // the fixed-grid path's two-step BE damping of companion transients.
    const bool trap = since_reset >= 2;

    AssemblyInputs in;
    in.mode = AnalysisMode::Transient;
    in.time = t_next;
    in.dt = dt_eff;
    in.trapezoidal = trap;
    in.x_prev = x_prev;
    in.cap_current_prev = cap_current;

    x_trial = x_prev;
    int step_iterations = 0;
    const bool solved = newton_solve(in, x_trial, step_iterations);
    result.newton_iterations += static_cast<std::uint64_t>(step_iterations);
    if (deadline_exceeded(options_, spent())) {
      note_lte_steps(result.steps_accepted, result.steps_rejected);
      result.failure.stage = FailureStage::Deadline;
      result.failure.time = t_next;
      if (!solved) note_worst_residual(circuit_, plan_, x_trial, result.failure);
      note_deadline_abort();
      result.error = result.failure.to_string();
      return result;
    }
    if (!solved) {
      if (dt_eff <= dt_min * (1.0 + 1e-9)) {
        FailureReport report;
        report.time = t_next;
        note_worst_residual(circuit_, plan_, x_trial, report);
        bool deadline_hit = false;
        bool rescued = false;
        if (options_.recovery.enabled) {
          // Last recovery rung at dt_min: bounded restart from a pseudo-DC
          // point with the sources frozen at t_next, then resume with a
          // fresh backward-Euler startup (capacitor currents restart at 0,
          // the divided-difference history is discarded).
          for (int restart = 0; restart < options_.recovery.dc_restart_attempts; ++restart) {
            ++report.attempts;
            OpResult op = operating_point_plan(circuit_, plan_, options_, *workspace_, nullptr,
                                               nullptr, t_next);
            result.newton_iterations += static_cast<std::uint64_t>(op.iterations);
            if (deadline_exceeded(options_, spent())) {
              deadline_hit = true;
              break;
            }
            if (!op.converged) continue;
            std::fill(x_trial.begin(), x_trial.end(), 0.0);
            for (NodeId nd = 1; nd < n_nodes_; ++nd) {
              x_trial[plan_.x_slot(nd)] = op.node_voltages[nd];
            }
            for (std::size_t si = 0; si < n_vsrc_; ++si) {
              const std::size_t slot = plan_.vsource_branch_slot(si);
              if (slot != StampPlan::kNoSlot) x_trial[slot] = op.vsource_currents[si];
            }
            std::fill(cap_current.begin(), cap_current.end(), 0.0);
            rescued = true;
            note_recovered_transient();
            break;
          }
        }
        if (!rescued) {
          note_lte_steps(result.steps_accepted, result.steps_rejected);
          report.stage = deadline_hit ? FailureStage::Deadline : FailureStage::Timestep;
          if (deadline_hit) note_deadline_abort();
          result.failure = std::move(report);
          result.error = result.failure.to_string();
          return result;
        }
        // Accept the restart state as the solution at t_next and reset the
        // controller exactly as a breakpoint does.
        record_point(t_next, x_trial, /*recover_currents=*/true);
        ++result.steps_accepted;
        result.dt_trace.push_back(dt_eff);
        std::swap(x_prev, x_trial);
        t_cur = t_next;
        since_reset = 0;
        hist_n = 0;
        push_history(t_next, x_prev);
        dt = std::clamp(spec.dt, dt_min, dt_max);
        continue;
      }
      ++result.steps_rejected;
      dt = std::max(dt_min, dt_eff * options_.dt_shrink_limit);
      continue;
    }

    const double ratio = lte_ratio(t_next, x_trial, trap);
    if (ratio > 1.0 && dt_eff > dt_min * (1.0 + 1e-9)) {
      ++result.steps_rejected;
      const double p = trap ? 3.0 : 2.0;
      const double shrink =
          std::clamp(options_.lte_safety * std::pow(ratio, -1.0 / p), options_.dt_shrink_limit, 0.9);
      dt = std::max(dt_min, dt_eff * shrink);
      continue;
    }

    update_cap_currents(x_trial, x_prev, dt_eff, trap);
    record_point(t_next, x_trial, /*recover_currents=*/true);
    ++result.steps_accepted;
    result.dt_trace.push_back(dt_eff);
    std::swap(x_prev, x_trial);
    t_cur = t_next;

    if (t_next == bp) {
      since_reset = 0;
      hist_n = 0;  // order reset: discard history across the discontinuity
      push_history(t_next, x_prev);
      dt = std::clamp(spec.dt, dt_min, dt_max);
    } else {
      ++since_reset;
      push_history(t_next, x_prev);
      const double p = trap ? 3.0 : 2.0;
      const double grow = ratio > 0.0
                              ? std::clamp(options_.lte_safety * std::pow(ratio, -1.0 / p),
                                           options_.dt_shrink_limit, options_.dt_grow_limit)
                              : options_.dt_grow_limit;
      dt = dt_eff * grow;
    }
  }

  note_lte_steps(result.steps_accepted, result.steps_rejected);
  result.ok = true;
  return result;
}

}  // namespace glova::spice
