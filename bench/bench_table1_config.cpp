// Table I reproduction: operational configuration of the framework per
// verification method.  Prints the paper's table from the live
// OperationalConfig::for_method values so any drift between code and paper
// is visible immediately.
#include <cstdio>

#include "core/config.hpp"

using namespace glova;

int main() {
  printf("Table I — Operational configuration of the framework\n");
  printf("%-10s | %-17s | %-21s | %-8s | %-12s\n", "Verif.", "Predefined corner",
         "Var. of mismatch h", "Optim.", "Verif.");
  printf("%-10s | %-5s %-5s %-5s | %-10s %-10s | %-8s | %-12s\n", "method", "P", "V", "T",
         "Global", "Local", "# N'", "# k x N");
  for (const auto method : core::all_verif_methods()) {
    const auto cfg = core::OperationalConfig::for_method(method);
    printf("%-10s | %-5s %-5s %-5s | %-10s %-10s | %-8zu | %zu x %zu = %zu\n",
           core::to_string(method), cfg.predefined_process ? "Y" : "N", "Y", "Y",
           cfg.global_mismatch ? "Sigma_G" : "0", cfg.local_mismatch ? "Sigma_L" : "0", cfg.n_opt,
           cfg.corner_count(), cfg.n_verif, cfg.full_verification_sims());
  }
  printf("\nPaper row check: C -> 30 sims, C-MC_L -> 3,000 sims, C-MC_G-L -> 6,000 sims.\n");
  return 0;
}
