// Hierarchical verification (paper Algorithm 2).
//
// Phase 1 walks the corners worst-first (last-worst-case buffer order),
// simulates N' mismatch pre-samples per corner, and gates on the mu-sigma
// evaluation; a gate failure aborts verification immediately.  Phase 2 sorts
// the surviving corners by t-SCORE, orders each corner's remaining N - N'
// mismatch conditions by h-SCORE, and simulates until everything passes or
// the first failing simulation aborts the run.
//
// For the corner-only regime (C), N = N' = 1 with no mismatch: phase 1 is
// the entire verification and phase 2 degenerates to nothing.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "circuits/testbench.hpp"
#include "common/rng.hpp"
#include "core/config.hpp"
#include "core/evaluation_engine.hpp"
#include "rl/replay_buffer.hpp"

namespace glova::core {

struct VerifierOptions {
  double beta2 = 4.0;        ///< reliability factor of Eq. (7)
  bool use_mu_sigma = true;  ///< ablation: skip the statistical gate
  bool use_reordering = true;///< ablation: natural corner/MC order
  std::size_t parallel_chunk = 32;  ///< sims launched together in phase 2
};

/// Pre-simulated worst-corner samples from the optimization phase, reusable
/// in phase 1 ("the H~N' for the worst corner has already been simulated").
struct CornerPresample {
  std::size_t corner_index = 0;
  std::vector<std::vector<double>> hs;
  std::vector<std::vector<double>> metrics;
};

struct VerificationOutcome {
  bool passed = false;
  std::uint64_t sims_used = 0;
  bool failed_in_phase1 = false;
  std::size_t corners_completed = 0;  ///< corners fully verified before stop
  /// Worst reward observed per touched corner (corner index, reward), for
  /// refreshing the last-worst-case buffer.
  std::vector<std::pair<std::size_t, double>> corner_worst_rewards;
};

class Verifier {
 public:
  Verifier(EvaluationEngine& service, OperationalConfig config, VerifierOptions options = {});

  /// Run Algorithm 2 on a physical design point.
  [[nodiscard]] VerificationOutcome verify(std::span<const double> x_phys,
                                           const rl::LastWorstBuffer& last_worst, Rng& rng,
                                           const CornerPresample* reuse = nullptr);

  [[nodiscard]] const OperationalConfig& config() const { return config_; }
  [[nodiscard]] const VerifierOptions& options() const { return options_; }

 private:
  EvaluationEngine& service_;
  OperationalConfig config_;
  VerifierOptions options_;
};

}  // namespace glova::core
