// Operational configuration (paper Table I): how the chosen verification
// method selects predefined corners, mismatch variances, and sample counts
// in the optimization and verification phases.
//
//   method   | predefined corner | global var | local var | N'_opt | N_verif/corner
//   C        | P,V,T             | 0          | 0         | 1      | 1      (30 sims)
//   C-MC_L   | P,V,T             | 0          | Sigma_L   | N'     | 100    (3,000 sims)
//   C-MC_G-L | V,T               | Sigma_G    | Sigma_L   | N'     | 1,000  (6,000 sims)
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "circuits/testbench.hpp"
#include "common/rng.hpp"
#include "pdk/corner.hpp"
#include "pdk/variation.hpp"

namespace glova::core {

enum class VerifMethod { C, C_MCL, C_MCGL };

[[nodiscard]] const char* to_string(VerifMethod method);

/// Inverse of to_string (case-insensitive); nullopt for unknown names.
[[nodiscard]] std::optional<VerifMethod> verif_method_from_string(std::string_view name);

/// All methods in Table I / Table II column order.
[[nodiscard]] std::vector<VerifMethod> all_verif_methods();

struct OperationalConfig {
  VerifMethod method = VerifMethod::C;
  bool predefined_process = true;  ///< Table I column "P"
  bool global_mismatch = false;    ///< Sigma_Global enabled
  bool local_mismatch = false;     ///< Sigma_Local enabled
  std::size_t n_opt = 1;           ///< N' mismatch samples per optimization step
  std::size_t n_verif = 1;         ///< N samples per corner in full verification
  std::vector<pdk::PvtCorner> corners;  ///< the predefined set T (k corners)

  [[nodiscard]] std::size_t corner_count() const { return corners.size(); }

  /// k * N: total simulations of one full verification pass.
  [[nodiscard]] std::size_t full_verification_sims() const {
    return corner_count() * n_verif;
  }

  /// Sampling mode for the *optimization* phase: Eq. (3) literal — one
  /// global draw centers each sampled set (one die per iteration); the
  /// ensemble critic absorbs the resulting worst-case uncertainty.
  [[nodiscard]] pdk::GlobalMode sampling_mode() const;

  /// Sampling mode for the *verification* phase: every MC sample draws a
  /// fresh global condition, so the 1K global-local sweep covers die-to-die
  /// spread the way a wafer would (see DESIGN.md, interpretation choices).
  [[nodiscard]] pdk::GlobalMode verification_sampling_mode() const;

  /// True when mismatch conditions exist at all (C has none).
  [[nodiscard]] bool has_mismatch() const { return local_mismatch || global_mismatch; }

  /// N' optimization-phase mismatch conditions for one design (Eq. 3 under
  /// sampling_mode(); n empty vectors — nominal — when the method has no
  /// mismatch).  Shared by every optimizer's step.
  [[nodiscard]] std::vector<std::vector<double>> sample_conditions(
      const circuits::Testbench& testbench, std::span<const double> x_phys, std::size_t n,
      Rng& rng) const;

  /// Standard configuration for a verification method.
  /// `n_opt_samples` is the paper's optimization-phase sample size (3).
  /// `corner_filter` (RunSpec `corner_filter`) restricts the method's
  /// predefined corner set: "all" keeps it, "cold_lv" keeps only the
  /// coldest low-voltage condition (minimum vdd, minimum temperature,
  /// slow process if the set has one) — the corner the Level-1 hard
  /// cutoff cannot evaluate and the EKV model exists for.
  static OperationalConfig for_method(VerifMethod method, std::size_t n_opt_samples = 3,
                                      std::string_view corner_filter = "all");
};

}  // namespace glova::core
