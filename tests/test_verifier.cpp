// Tests for the hierarchical verifier (Algorithm 2) using a synthetic
// testbench whose failure structure is fully controllable.
#include <gtest/gtest.h>

#include <memory>

#include "core/verifier.hpp"

namespace glova::core {
namespace {

/// Metric = base + corner_severity * (cold penalty) + weight . h.
/// Constraint: metric <= 1.  The single mismatch coordinate with a positive
/// weight makes "bad" mismatch directions identifiable by the reordering.
class SyntheticBench final : public circuits::Testbench {
 public:
  explicit SyntheticBench(double base, double mismatch_weight = 0.0, double cold_penalty = 0.0)
      : base_(base), weight_(mismatch_weight), cold_penalty_(cold_penalty) {
    sizing_.names = {"x0"};
    sizing_.lower = {0.0};
    sizing_.upper = {1.0};
    performance_.metrics = {circuits::MetricSpec{"m", "u", 1.0, 1.0,
                                                 circuits::Sense::MinimizeBelow}};
  }

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const circuits::SizingSpec& sizing() const override { return sizing_; }
  [[nodiscard]] const circuits::PerformanceSpec& performance() const override {
    return performance_;
  }

  [[nodiscard]] pdk::MismatchLayout mismatch_layout(std::span<const double>,
                                                    bool global_enabled) const override {
    pdk::MismatchLayout layout;
    layout.names = {"h0", "h1"};
    layout.local_sigma = {1.0, 1.0};
    layout.global_sigma = {global_enabled ? 0.5 : 0.0, 0.0};
    return layout;
  }

  [[nodiscard]] std::vector<double> evaluate(std::span<const double>,
                                             const pdk::PvtCorner& corner,
                                             std::span<const double> h) const override {
    double metric = base_;
    if (corner.temp_c < 0.0) metric += cold_penalty_;
    if (!h.empty()) metric += weight_ * h[0];  // h[1] is irrelevant by design
    return {metric};
  }

 private:
  std::string name_ = "synthetic";
  circuits::SizingSpec sizing_;
  circuits::PerformanceSpec performance_;
  double base_;
  double weight_;
  double cold_penalty_;
};

struct Fixture {
  explicit Fixture(std::shared_ptr<const circuits::Testbench> bench, VerifMethod method,
                   VerifierOptions options = {})
      : service(std::move(bench)),
        config(OperationalConfig::for_method(method)),
        verifier(service, config, options),
        last_worst(config.corner_count()) {}

  EvaluationEngine service;
  OperationalConfig config;
  Verifier verifier;
  rl::LastWorstBuffer last_worst;
};

TEST(Verifier, CornerOnlyPassUsesExactlyKSims) {
  Fixture f(std::make_shared<SyntheticBench>(0.5), VerifMethod::C);
  Rng rng(1);
  const auto outcome = f.verifier.verify(std::vector<double>{0.5}, f.last_worst, rng);
  EXPECT_TRUE(outcome.passed);
  EXPECT_EQ(outcome.sims_used, 30u);  // one per predefined corner
  EXPECT_EQ(outcome.corners_completed, 30u);
}

TEST(Verifier, CornerOnlyFailureAbortsEarly) {
  // Fails everywhere: the first corner's pre-sample already fails.
  Fixture f(std::make_shared<SyntheticBench>(1.5), VerifMethod::C);
  Rng rng(1);
  const auto outcome = f.verifier.verify(std::vector<double>{0.5}, f.last_worst, rng);
  EXPECT_FALSE(outcome.passed);
  EXPECT_TRUE(outcome.failed_in_phase1);
  EXPECT_EQ(outcome.sims_used, 1u);
}

TEST(Verifier, ColdOnlyFailureCheckedFirstWhenBufferKnows) {
  // Fails only at cold corners.  Prime the last-worst buffer so a cold
  // corner ranks first: reordering must find the failure with one sim.
  Fixture f(std::make_shared<SyntheticBench>(0.9, 0.0, 0.3), VerifMethod::C);
  for (std::size_t j = 0; j < f.config.corner_count(); ++j) {
    f.last_worst.update(j, f.config.corners[j].temp_c < 0.0 ? -0.2 : 0.2);
  }
  Rng rng(2);
  const auto outcome = f.verifier.verify(std::vector<double>{0.5}, f.last_worst, rng);
  EXPECT_FALSE(outcome.passed);
  EXPECT_EQ(outcome.sims_used, 1u);
}

TEST(Verifier, WithoutReorderingColdFailureCostsMore) {
  Fixture f(std::make_shared<SyntheticBench>(0.9, 0.0, 0.3), VerifMethod::C,
            VerifierOptions{4.0, true, /*use_reordering=*/false, 32});
  for (std::size_t j = 0; j < f.config.corner_count(); ++j) {
    f.last_worst.update(j, f.config.corners[j].temp_c < 0.0 ? -0.2 : 0.2);
  }
  Rng rng(2);
  const auto outcome = f.verifier.verify(std::vector<double>{0.5}, f.last_worst, rng);
  EXPECT_FALSE(outcome.passed);
  // Natural order reaches the first cold corner (index 0 is TT/0.8V/-40C)
  // quickly here, but across the suite of orders it can't do better than
  // reordering; at minimum it must not beat the primed reordering.
  EXPECT_GE(outcome.sims_used, 1u);
}

TEST(Verifier, MuSigmaGateRejectsHighVarianceDesigns) {
  // Mean passes (0.7 < 1) but mismatch spread is large: mu + 4 sigma fails.
  Fixture f(std::make_shared<SyntheticBench>(0.7, 0.5), VerifMethod::C_MCL);
  Rng rng(3);
  const auto outcome = f.verifier.verify(std::vector<double>{0.5}, f.last_worst, rng);
  EXPECT_FALSE(outcome.passed);
  EXPECT_TRUE(outcome.failed_in_phase1);
  // Phase 1 costs at most k * N' sims, far less than the 3,000 full sweep.
  EXPECT_LE(outcome.sims_used, f.config.corner_count() * f.config.n_opt);
}

TEST(Verifier, WithoutMuSigmaSpendsMoreThanGatedVerification) {
  // Tail-risk design: the pre-samples usually pass but the 100-draw sweep
  // per corner eventually hits the failing tail.  The mu-sigma gate detects
  // the spread from the pre-samples and aborts cheaply; the ablation pays
  // for phase-2 simulations before discovering the same failure.
  const auto bench = std::make_shared<SyntheticBench>(0.75, 0.08);
  std::uint64_t gated = 0;
  std::uint64_t ungated = 0;
  const int trials = 6;
  for (int t = 0; t < trials; ++t) {
    {
      Fixture f(bench, VerifMethod::C_MCL);
      Rng rng(400 + t);
      const auto outcome = f.verifier.verify(std::vector<double>{0.5}, f.last_worst, rng);
      EXPECT_FALSE(outcome.passed);
      gated += outcome.sims_used;
    }
    {
      VerifierOptions opts;
      opts.use_mu_sigma = false;
      Fixture f(bench, VerifMethod::C_MCL, opts);
      Rng rng(400 + t);
      const auto outcome = f.verifier.verify(std::vector<double>{0.5}, f.last_worst, rng);
      EXPECT_FALSE(outcome.passed);
      ungated += outcome.sims_used;
    }
  }
  // The reproduced Table III effect: removing mu-sigma costs simulations.
  EXPECT_LT(gated, ungated);
}

TEST(Verifier, RobustDesignPassesFullLocalMc) {
  // Tiny mismatch sensitivity: all 3,000 simulations pass.
  Fixture f(std::make_shared<SyntheticBench>(0.5, 0.01), VerifMethod::C_MCL);
  Rng rng(5);
  const auto outcome = f.verifier.verify(std::vector<double>{0.5}, f.last_worst, rng);
  EXPECT_TRUE(outcome.passed);
  EXPECT_EQ(outcome.sims_used, 3000u);
  EXPECT_EQ(outcome.corners_completed, 30u);
}

TEST(Verifier, PresampleReuseSavesWorstCornerSims) {
  const auto bench = std::make_shared<SyntheticBench>(0.5, 0.01);
  Fixture f(bench, VerifMethod::C_MCL);
  // Pretend the optimization phase already simulated corner 0's pre-samples.
  CornerPresample reuse;
  reuse.corner_index = 0;
  reuse.hs = {std::vector<double>{0.0, 0.0}, std::vector<double>{0.1, 0.0},
              std::vector<double>{-0.1, 0.0}};
  for (const auto& h : reuse.hs) {
    reuse.metrics.push_back(bench->evaluate(std::vector<double>{0.5}, f.config.corners[0], h));
  }
  Rng rng(6);
  const auto outcome = f.verifier.verify(std::vector<double>{0.5}, f.last_worst, rng, &reuse);
  EXPECT_TRUE(outcome.passed);
  EXPECT_EQ(outcome.sims_used, 3000u - f.config.n_opt);
}

TEST(Verifier, ReportsWorstRewardsPerTouchedCorner) {
  Fixture f(std::make_shared<SyntheticBench>(1.5), VerifMethod::C);
  Rng rng(7);
  const auto outcome = f.verifier.verify(std::vector<double>{0.5}, f.last_worst, rng);
  ASSERT_FALSE(outcome.corner_worst_rewards.empty());
  EXPECT_LT(outcome.corner_worst_rewards.front().second, 0.0);
}

TEST(Verifier, ReorderingFindsMismatchTailFasterThanNaturalOrder) {
  // Design that fails only for strongly positive h0 draws (upper tail).
  // With reordering, the Pearson vector learned in phase 1 puts those first.
  const double base = 0.55;
  const double weight = 0.16;  // fails for h0 > ~2.8 sigma
  std::uint64_t with = 0;
  std::uint64_t without = 0;
  const int trials = 8;
  // The mu-sigma gate is disabled in both arms so the comparison isolates
  // the ordering effect inside phase 2.
  for (int t = 0; t < trials; ++t) {
    {
      Fixture f(std::make_shared<SyntheticBench>(base, weight), VerifMethod::C_MCL,
                VerifierOptions{4.0, /*use_mu_sigma=*/false, /*use_reordering=*/true, 32});
      Rng rng(100 + t);
      with += f.verifier.verify(std::vector<double>{0.5}, f.last_worst, rng).sims_used;
    }
    {
      Fixture f(std::make_shared<SyntheticBench>(base, weight), VerifMethod::C_MCL,
                VerifierOptions{4.0, false, false, 32});
      Rng rng(100 + t);
      without += f.verifier.verify(std::vector<double>{0.5}, f.last_worst, rng).sims_used;
    }
  }
  // The reproduced Table III effect: reordering cuts verification cost.
  EXPECT_LT(with, without);
}

}  // namespace
}  // namespace glova::core
