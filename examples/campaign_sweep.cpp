// Campaign sweep: run a Table II-style cell (three algorithms x two seeds on
// the StrongARM latch) as one core::Campaign, checkpoint it mid-flight, and
// resume from the checkpoint.
//
//   $ ./campaign_sweep
//
// Demonstrates the multi-session control plane:
//   - SweepSpec expands a base RunSpec over algorithm/seed axes,
//   - Campaign round-robin step()s every session over the shared evaluation
//     stack with fair scheduling and a campaign-wide simulation budget,
//   - save()/load() checkpoint and resume the sweep — in-flight sessions are
//     deterministically replayed, so the resumed campaign finishes with the
//     exact results an uninterrupted run produces,
//   - CampaignObserver aggregates every session's progress in one place.
#include <cstdio>
#include <sstream>

#include "common/log.hpp"
#include "core/campaign.hpp"

namespace {

/// Prints one line per session lifecycle event, tagged with the session id.
class SweepReporter final : public glova::core::CampaignObserver {
 public:
  void on_session_start(std::size_t index, const glova::core::RunSpec& spec) override {
    std::printf("  [%zu] start  %s seed %llu\n", index, glova::core::to_string(spec.algorithm),
                static_cast<unsigned long long>(spec.seed));
  }
  void on_session_finish(std::size_t index, const glova::core::RunSpec& spec,
                         const glova::core::GlovaResult& result) override {
    std::printf("  [%zu] finish %s seed %llu: %s after %zu iterations, %llu sims\n", index,
                glova::core::to_string(spec.algorithm),
                static_cast<unsigned long long>(spec.seed), result.termination.c_str(),
                result.rl_iterations, static_cast<unsigned long long>(result.n_simulations));
  }
  void on_session_error(std::size_t index, const glova::core::RunSpec& spec,
                        const std::string& error) override {
    std::printf("  [%zu] ERROR  %s seed %llu: %s\n", index,
                glova::core::to_string(spec.algorithm),
                static_cast<unsigned long long>(spec.seed), error.c_str());
  }
};

void print_table(const glova::core::CampaignResult& table) {
  std::printf("\n%-14s %-6s %-10s %-8s %-10s %s\n", "algorithm", "seed", "state", "iters",
              "sims", "termination");
  for (const glova::core::CampaignEntry& entry : table.entries) {
    std::printf("%-14s %-6llu %-10s %-8zu %-10llu %s\n",
                glova::core::to_string(entry.spec.algorithm),
                static_cast<unsigned long long>(entry.spec.seed),
                glova::core::to_string(entry.state), entry.result.rl_iterations,
                static_cast<unsigned long long>(entry.result.n_simulations),
                entry.result.termination.c_str());
  }
  std::printf("total simulations: %llu (finished %zu, failed %zu)\n",
              static_cast<unsigned long long>(table.total_simulations), table.finished,
              table.failed);
}

}  // namespace

int main() {
  using namespace glova;
  set_log_level(LogLevel::Warn);

  // 1. A sweep: every algorithm x two seeds on the SAL behavioral testbench,
  //    corner verification, with a per-session iteration cushion.
  core::SweepSpec sweep;
  sweep.base.testcase = circuits::Testcase::Sal;
  sweep.base.method = core::VerifMethod::C;
  sweep.base.max_iterations = 200;
  sweep.algorithms = core::all_algorithms();
  sweep.seeds = {1, 2};

  // 2. Drive the campaign a few fair-scheduling turns, then checkpoint.
  core::CampaignConfig config;
  config.steps_per_turn = 2;
  core::Campaign campaign(sweep, config);
  campaign.add_observer(std::make_shared<SweepReporter>());
  std::printf("campaign: %zu sessions\n", campaign.session_count());

  for (int turn = 0; turn < 30 && campaign.step(); ++turn) {
  }
  std::printf("\ncheckpointing with %zu sessions still live (%llu sims so far)\n",
              campaign.sessions_remaining(),
              static_cast<unsigned long long>(campaign.total_simulations()));
  std::stringstream checkpoint;
  campaign.save(checkpoint);
  // (a real deployment writes a file: campaign.save_file("sweep.ckpt");)

  // 3. Resume elsewhere/later: load() rebuilds terminal sessions from their
  //    stored results and deterministically replays in-flight ones, then the
  //    sweep continues exactly where it stopped.
  core::Campaign resumed = core::Campaign::load(checkpoint);
  resumed.add_observer(std::make_shared<SweepReporter>());
  std::printf("resumed: %zu of %zu sessions still live\n\n", resumed.sessions_remaining(),
              resumed.session_count());
  const core::CampaignResult& table = resumed.run();

  // 4. The result table, keyed by spec.
  print_table(table);

  // The resumed campaign must finish every session the straight-through run
  // would have (fixed seeds, generous caps): fail the smoke test otherwise.
  return table.finished == table.entries.size() ? 0 : 1;
}
