// Linearized small-signal AC / noise analysis on a converged DC operating
// point.
//
// The circuit is re-assembled as a complex MNA system A(w) = G + jwC around
// the operating point: every MOSFET contributes its analytic small-signal
// conductances (gm, gds) from the same mos_model.hpp linearization the
// Newton loop stamps, capacitors become jwC admittances, independent voltage
// sources become AC shorts (the designated input source gets a unit
// excitation), and independent current sources are AC-open.
//
// Noise is computed with the adjoint method: one transpose solve
// A(w)^T y = e_out per frequency yields the transfer from *every* device
// noise-current injection to the output simultaneously.  Device models:
//   - resistor: thermal, S_i = 4kT / R,
//   - MOSFET channel: thermal S_i = 4kT (gamma |gm| + |gds|)  (the gds term
//     covers triode-region pass-gates, where the channel is a resistor),
//     plus flicker S_i = kf |Id|^af / f  (pdk::MosParams).
// Output noise PSD is summed over sources and integrated over the
// logarithmic frequency grid by the trapezoid rule; by linearity the
// thermal/flicker split obeys thermal^2 + flicker^2 == total^2 exactly.
//
// See docs/architecture.md#ac-noise.
#pragma once

#include <string>
#include <vector>

#include "spice/circuit.hpp"
#include "spice/simulator.hpp"

namespace glova::spice {

/// What to analyze: which source drives the AC input, which node (pair) is
/// the output, and the frequency band the noise integral covers.
struct AcNoiseSpec {
  std::string input;       ///< name of the AC-excited voltage source
  std::string output_pos;  ///< output node name
  std::string output_neg;  ///< differential partner node; empty = vs ground
  double f_start = 1e3;    ///< [Hz] first grid point (reference for gain_ref)
  double f_stop = 10e9;    ///< [Hz] last grid point
  int points_per_decade = 8;
  double temp_k = 300.0;   ///< [K] resistor noise temperature
};

/// Integrated small-signal noise at the output, plus the AC transfer that
/// input-refers it.  `freq`, `gain_mag` and `output_psd` share indexing.
struct NoiseResult {
  bool ok = false;
  std::string message;
  double gain_ref = 0.0;           ///< |input -> output| at f_start
  double output_noise_vrms = 0.0;  ///< sqrt(integral of output_psd) [V]
  double input_noise_vrms = 0.0;   ///< output_noise_vrms / gain_ref [V]
  double thermal_vrms = 0.0;       ///< thermal-only part of output noise [V]
  double flicker_vrms = 0.0;       ///< flicker-only part of output noise [V]
  std::vector<double> freq;        ///< [Hz] logarithmic grid
  std::vector<double> gain_mag;    ///< |input -> output| per grid point
  std::vector<double> output_psd;  ///< [V^2/Hz] per grid point
};

/// Run the AC/noise pass around the operating point `op` (as returned by
/// Simulator::operating_point or TransientResult::dc_op; node_voltages must
/// cover every circuit node).  `options` supplies the channel model and
/// gmin; the result does not depend on Newton settings.
[[nodiscard]] NoiseResult noise_analysis(const Circuit& circuit, const OpResult& op,
                                         const AcNoiseSpec& spec,
                                         const SimulatorOptions& options);

}  // namespace glova::spice
