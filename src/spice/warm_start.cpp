#include "spice/warm_start.hpp"

#include <atomic>

#include "common/key_hash.hpp"

namespace glova::spice {

namespace {

std::atomic<std::uint64_t> g_hits{0};
std::atomic<std::uint64_t> g_misses{0};
std::atomic<std::uint64_t> g_stores{0};
std::atomic<bool> g_enabled{true};

}  // namespace

WarmStartStats warm_start_stats() {
  WarmStartStats s;
  s.hits = g_hits.load();
  s.misses = g_misses.load();
  s.stores = g_stores.load();
  return s;
}

void reset_warm_start_stats() {
  g_hits.store(0);
  g_misses.store(0);
  g_stores.store(0);
}

void note_warm_start_hits(std::uint64_t count) {
  if (count != 0) g_hits.fetch_add(count, std::memory_order_relaxed);
}

bool dc_warm_start_enabled() { return g_enabled.load(); }

void set_dc_warm_start_enabled(bool enabled) { g_enabled.store(enabled); }

std::size_t DcWarmStartCache::KeyHash::operator()(const Key& key) const noexcept {
  return key_fnv1a(key);
}

DcWarmStartCache::DcWarmStartCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

const OpResult* DcWarmStartCache::lookup(const Key& key) {
  const auto it = index_.find(key);
  if (it == index_.end()) {
    g_misses.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  g_hits.fetch_add(1, std::memory_order_relaxed);
  return &it->second->second;
}

void DcWarmStartCache::store(const Key& key, const OpResult& op) {
  if (!op.converged) return;
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = op;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, op);
  index_.emplace(lru_.front().first, lru_.begin());
  g_stores.fetch_add(1, std::memory_order_relaxed);
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

void DcWarmStartCache::clear() {
  index_.clear();
  lru_.clear();
}

DcWarmStartCache& thread_local_dc_cache() {
  thread_local DcWarmStartCache cache;
  return cache;
}

void sync_warm_start_cache(const DcWarmStartCache::Key& key, const OpResult* seed,
                           std::span<const TransientResult> results) {
  if (!dc_warm_start_enabled()) return;
  DcWarmStartCache& cache = thread_local_dc_cache();
  std::uint64_t warmed = 0;
  for (const TransientResult& r : results) {
    if (!r.ok) continue;
    if (r.dc_op.warm_started) {
      ++warmed;
    } else {
      // The sequential path stores on a miss and refreshes after a failed
      // warm attempt; both present as a successful cold solve.
      cache.store(key, r.dc_op);
    }
  }
  // The group's single lookup already counted one hit when it returned a
  // seed that lane 0 then used; every other successful warm start replaced
  // a per-draw lookup the sequential path would have counted as a hit.
  const bool lookup_hit_used = seed != nullptr && !results.empty() && results.front().ok &&
                               results.front().dc_op.warm_started;
  const std::uint64_t counted = lookup_hit_used ? 1 : 0;
  if (warmed > counted) note_warm_start_hits(warmed - counted);
}

DcWarmStartCache::Key make_dc_key(std::uint64_t testbench_tag, std::span<const double> x_phys,
                                  const pdk::PvtCorner& corner, double quantum) {
  DcWarmStartCache::Key key;
  key.reserve(5 + x_phys.size());
  key.push_back(static_cast<std::int64_t>(testbench_tag));
  key.push_back(static_cast<std::int64_t>(corner.process) * 2 +
                (corner.process_predefined ? 1 : 0));
  key.push_back(quantize_for_key(corner.vdd, quantum));
  key.push_back(quantize_for_key(corner.temp_c, quantum));
  key.push_back(static_cast<std::int64_t>(x_phys.size()));
  for (const double v : x_phys) key.push_back(quantize_for_key(v, quantum));
  return key;
}

}  // namespace glova::spice
