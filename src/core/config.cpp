#include "core/config.hpp"

#include <algorithm>

#include "common/text.hpp"

namespace glova::core {

const char* to_string(VerifMethod method) {
  switch (method) {
    case VerifMethod::C: return "C";
    case VerifMethod::C_MCL: return "C-MC_L";
    case VerifMethod::C_MCGL: return "C-MC_G-L";
  }
  return "?";
}

std::optional<VerifMethod> verif_method_from_string(std::string_view name) {
  const std::string n = to_lower(name);
  for (const VerifMethod m : all_verif_methods()) {
    if (n == to_lower(to_string(m))) return m;
  }
  return std::nullopt;
}

std::vector<VerifMethod> all_verif_methods() {
  return {VerifMethod::C, VerifMethod::C_MCL, VerifMethod::C_MCGL};
}

pdk::GlobalMode OperationalConfig::sampling_mode() const {
  if (!has_mismatch()) return pdk::GlobalMode::Zero;
  // Deviation from the literal Eq. (3) (one global draw shared by the whole
  // set): each optimization sample draws its own global condition.  A shared
  // draw starves the mu-sigma gate of die-to-die spread — the N' samples
  // then systematically under-estimate the variance the 1K-sample
  // verification will see, and the gate passes designs that cannot verify.
  // See DESIGN.md, interpretation choices.
  return global_mismatch ? pdk::GlobalMode::PerSample : pdk::GlobalMode::Zero;
}

std::vector<std::vector<double>> OperationalConfig::sample_conditions(
    const circuits::Testbench& testbench, std::span<const double> x_phys, std::size_t n,
    Rng& rng) const {
  if (!has_mismatch()) return std::vector<std::vector<double>>(n);
  const pdk::MismatchLayout layout = testbench.mismatch_layout(x_phys, global_mismatch);
  return pdk::sample_mismatch_set(layout, n, rng, sampling_mode());
}

pdk::GlobalMode OperationalConfig::verification_sampling_mode() const {
  if (!has_mismatch()) return pdk::GlobalMode::Zero;
  return global_mismatch ? pdk::GlobalMode::PerSample : pdk::GlobalMode::Zero;
}

namespace {

/// The coldest low-voltage member of a corner set: minimum vdd, then
/// minimum temperature, with a slow-process member preferred when the set
/// spans process corners.  Deterministic in the set's contents, so the
/// same method always verifies against the same single condition.
std::vector<pdk::PvtCorner> coldest_low_voltage_subset(std::vector<pdk::PvtCorner> corners) {
  if (corners.empty()) return corners;
  double vdd = corners.front().vdd;
  for (const auto& c : corners) vdd = std::min(vdd, c.vdd);
  std::erase_if(corners, [&](const pdk::PvtCorner& c) { return c.vdd != vdd; });
  double temp = corners.front().temp_c;
  for (const auto& c : corners) temp = std::min(temp, c.temp_c);
  std::erase_if(corners, [&](const pdk::PvtCorner& c) { return c.temp_c != temp; });
  for (const auto& c : corners) {
    if (c.process == pdk::ProcessCorner::SS) return {c};
  }
  return {corners.front()};
}

}  // namespace

OperationalConfig OperationalConfig::for_method(VerifMethod method, std::size_t n_opt_samples,
                                                std::string_view corner_filter) {
  OperationalConfig cfg;
  cfg.method = method;
  switch (method) {
    case VerifMethod::C:
      cfg.predefined_process = true;
      cfg.global_mismatch = false;
      cfg.local_mismatch = false;
      cfg.n_opt = 1;   // no mismatch to sample
      cfg.n_verif = 1; // one simulation per corner
      cfg.corners = pdk::full_corner_set();  // 30 corners -> 30 sims
      break;
    case VerifMethod::C_MCL:
      cfg.predefined_process = true;
      cfg.global_mismatch = false;
      cfg.local_mismatch = true;
      cfg.n_opt = n_opt_samples;
      cfg.n_verif = 100;  // 0.1K local MC x 30 corners -> 3,000 sims
      cfg.corners = pdk::full_corner_set();
      break;
    case VerifMethod::C_MCGL:
      cfg.predefined_process = false;
      cfg.global_mismatch = true;
      cfg.local_mismatch = true;
      cfg.n_opt = n_opt_samples;
      cfg.n_verif = 1000;  // 1K global-local MC x 6 VT corners -> 6,000 sims
      cfg.corners = pdk::vt_corner_set();
      break;
  }
  if (corner_filter == "cold_lv") {
    cfg.corners = coldest_low_voltage_subset(std::move(cfg.corners));
  }
  return cfg;
}

}  // namespace glova::core
