// Tests for the common substrate: deterministic RNG, stream splitting,
// thread pool, units.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "common/units.hpp"

namespace glova {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, SplitStreamsAreIndependentOfDrawOrder) {
  Rng root(7);
  Rng child_a = root.split(3);
  // Drawing from the root must not perturb an already-split child.
  (void)root.uniform();
  Rng child_b = Rng(7).split(3);
  for (int i = 0; i < 20; ++i) EXPECT_DOUBLE_EQ(child_a.uniform(), child_b.uniform());
}

TEST(Rng, SplitChildrenDiffer) {
  Rng root(7);
  Rng a = root.split(1);
  Rng b = root.split(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.0, 5.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
  Rng rng(11);
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(1.5, 2.0);
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 1.5, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, NormalZeroSigmaIsMean) {
  Rng rng(1);
  EXPECT_DOUBLE_EQ(rng.normal(3.25, 0.0), 3.25);
}

TEST(Rng, NormalNegativeSigmaThrows) {
  Rng rng(1);
  EXPECT_THROW((void)rng.normal(0.0, -1.0), std::invalid_argument);
}

TEST(Rng, IndexBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.index(7), 7u);
  EXPECT_THROW((void)rng.index(0), std::invalid_argument);
}

TEST(Rng, SampleWithoutReplacementIsDistinct) {
  Rng rng(9);
  const auto sample = rng.sample_without_replacement(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  const std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (const auto i : sample) EXPECT_LT(i, 50u);
  EXPECT_THROW((void)rng.sample_without_replacement(3, 4), std::invalid_argument);
}

TEST(Splitmix, KnownNonTrivial) {
  // Distinct inputs map to distinct outputs; zero does not map to zero.
  EXPECT_NE(splitmix64(0), 0u);
  EXPECT_NE(splitmix64(1), splitmix64(2));
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 5) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ZeroAndOneTasks) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
  int calls = 0;
  pool.parallel_for(1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(Units, Conversions) {
  using namespace units::literals;
  EXPECT_DOUBLE_EQ(1.0_um, 1e-6);
  EXPECT_DOUBLE_EQ(2.5_pF, 2.5e-12);
  EXPECT_DOUBLE_EQ(4.0_ns, 4e-9);
  EXPECT_DOUBLE_EQ(units::celsius_to_kelvin(27.0), 300.15);
  EXPECT_NEAR(units::thermal_voltage(300.0), 0.02585, 1e-4);
}

}  // namespace
}  // namespace glova
