// The worst-case replay buffer (Fig. 2): each entry pairs a design with the
// *worst* reward observed across the sampled PVT/mismatch conditions, and
// the last-worst-case buffer tracks the most recent worst reward per corner
// so step 2 of the workflow can pick the worst corner without re-simulating.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <optional>
#include <vector>

#include "common/rng.hpp"

namespace glova::rl {

struct Experience {
  std::vector<double> x01;  ///< normalized design
  double reward = 0.0;      ///< worst-case reward r_worst
};

/// Bounded FIFO of worst-case experiences.
class WorstCaseReplayBuffer {
 public:
  explicit WorstCaseReplayBuffer(std::size_t capacity = 4096);

  void add(std::vector<double> x01, double reward);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] const Experience& at(std::size_t i) const { return entries_[i]; }

  /// Sample `n` experiences uniformly with replacement (distinct batches per
  /// critic base model come from distinct calls / rng streams).
  [[nodiscard]] std::vector<Experience> sample(std::size_t n, Rng& rng) const;

  /// Best experience seen so far (highest reward), if any.
  [[nodiscard]] std::optional<Experience> best() const;

  /// Text-serialize the full buffer (entries, FIFO cursor, best).  `load`
  /// replaces this buffer's contents; the stored capacity must match.
  void save(std::ostream& os) const;
  void load(std::istream& is);

 private:
  std::size_t capacity_;
  std::size_t next_ = 0;  ///< FIFO cursor once full
  std::vector<Experience> entries_;
  std::optional<Experience> best_;
};

/// Last worst reward per PVT corner ("last worst-case buffer", Sec. III-C).
class LastWorstBuffer {
 public:
  explicit LastWorstBuffer(std::size_t corner_count);

  void update(std::size_t corner, double worst_reward);

  [[nodiscard]] std::size_t corner_count() const { return rewards_.size(); }
  [[nodiscard]] double reward(std::size_t corner) const { return rewards_[corner]; }

  /// Corner with the lowest (worst) last reward.
  [[nodiscard]] std::size_t worst_corner() const;

  /// Corner indices sorted worst-first (used by Algorithm 2's first phase).
  [[nodiscard]] std::vector<std::size_t> corners_worst_first() const;

  /// Text-serialize the per-corner rewards.  `load` requires the stored
  /// corner count to match this buffer's.
  void save(std::ostream& os) const;
  void load(std::istream& is);

 private:
  std::vector<double> rewards_;
};

}  // namespace glova::rl
