// Tests for descriptive statistics, Welford accumulation, and the Pearson
// correlation used by the MC reordering method (Eq. 9).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "stats/descriptive.hpp"
#include "stats/pearson.hpp"

namespace glova::stats {
namespace {

TEST(Descriptive, MeanAndVariance) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(variance_population(xs), 1.25);
  EXPECT_NEAR(variance_sample(xs), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(stddev_population(xs), std::sqrt(1.25));
}

TEST(Descriptive, EmptyAndDegenerate) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(variance_population({}), 0.0);
  const std::vector<double> one = {3.0};
  EXPECT_DOUBLE_EQ(variance_sample(one), 0.0);
  EXPECT_THROW((void)min_value({}), std::invalid_argument);
  EXPECT_THROW((void)quantile({}, 0.5), std::invalid_argument);
}

TEST(Descriptive, MinMaxQuantileMedian) {
  const std::vector<double> xs = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(min_value(xs), 1.0);
  EXPECT_DOUBLE_EQ(max_value(xs), 5.0);
  EXPECT_DOUBLE_EQ(median(xs), 3.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.0);
  EXPECT_THROW((void)quantile(xs, 1.5), std::invalid_argument);
}

/// Property sweep: Welford matches batch statistics on random data.
class WelfordProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WelfordProperty, MatchesBatchFormulas) {
  Rng rng(GetParam());
  const std::size_t n = 3 + rng.index(200);
  const std::vector<double> xs = rng.uniform_vector(n, -10.0, 10.0);
  Welford w;
  for (const double x : xs) w.add(x);
  EXPECT_EQ(w.count(), n);
  EXPECT_NEAR(w.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(w.variance_population(), variance_population(xs), 1e-9);
  EXPECT_NEAR(w.variance_sample(), variance_sample(xs), 1e-9);
}

TEST_P(WelfordProperty, MergeEqualsConcatenation) {
  Rng rng(GetParam() + 1000);
  const std::vector<double> a = rng.uniform_vector(5 + rng.index(50), -5.0, 5.0);
  const std::vector<double> b = rng.uniform_vector(5 + rng.index(50), -5.0, 5.0);
  Welford wa;
  for (const double x : a) wa.add(x);
  Welford wb;
  for (const double x : b) wb.add(x);
  wa.merge(wb);
  std::vector<double> all = a;
  all.insert(all.end(), b.begin(), b.end());
  EXPECT_NEAR(wa.mean(), mean(all), 1e-9);
  EXPECT_NEAR(wa.variance_population(), variance_population(all), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WelfordProperty, ::testing::Range<std::uint64_t>(1, 13));

TEST(Pearson, PerfectCorrelation) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys = {2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
}

TEST(Pearson, PerfectAntiCorrelation) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  const std::vector<double> ys = {3.0, 2.0, 1.0};
  EXPECT_NEAR(pearson(xs, ys), -1.0, 1e-12);
}

TEST(Pearson, ConstantSeriesGivesZero) {
  const std::vector<double> xs = {1.0, 1.0, 1.0};
  const std::vector<double> ys = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
}

TEST(Pearson, SizeMismatchThrows) {
  EXPECT_THROW((void)pearson(std::vector<double>{1.0}, std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
}

TEST(Pearson, InvariantToAffineTransform) {
  Rng rng(5);
  const std::vector<double> xs = rng.normal_vector(50);
  std::vector<double> ys(50);
  for (std::size_t i = 0; i < 50; ++i) ys[i] = xs[i] + 0.2 * rng.normal();
  const double base = pearson(xs, ys);
  std::vector<double> xs2(50);
  for (std::size_t i = 0; i < 50; ++i) xs2[i] = 3.0 * xs[i] - 7.0;
  EXPECT_NEAR(pearson(xs2, ys), base, 1e-12);
}

TEST(PearsonColumns, RecoversPerColumnCorrelation) {
  Rng rng(6);
  const std::size_t n = 200;
  std::vector<std::vector<double>> rows(n, std::vector<double>(3));
  std::vector<double> g(n);
  for (std::size_t i = 0; i < n; ++i) {
    rows[i][0] = rng.normal();
    rows[i][1] = rng.normal();
    rows[i][2] = rng.normal();
    // g depends strongly on column 0, weakly negative on column 2.
    g[i] = 2.0 * rows[i][0] - 0.5 * rows[i][2] + 0.1 * rng.normal();
  }
  const auto rho = pearson_columns(rows, g);
  ASSERT_EQ(rho.size(), 3u);
  EXPECT_GT(rho[0], 0.9);
  EXPECT_NEAR(rho[1], 0.0, 0.15);
  EXPECT_LT(rho[2], -0.1);
}

TEST(PearsonColumns, RaggedRowsThrow) {
  std::vector<std::vector<double>> rows = {{1.0, 2.0}, {1.0}};
  const std::vector<double> g = {1.0, 2.0};
  EXPECT_THROW((void)pearson_columns(rows, g), std::invalid_argument);
}

}  // namespace
}  // namespace glova::stats
