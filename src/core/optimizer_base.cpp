#include "core/optimizer_base.hpp"

#include <stdexcept>
#include <utility>

#include "common/log.hpp"

namespace glova::core {

const char* RunBudget::exceeded_by(std::uint64_t simulations, std::size_t iterations,
                                   double wall_seconds) const {
  if (max_simulations != 0 && simulations >= max_simulations) return "simulation-budget";
  if (max_iterations != 0 && iterations >= max_iterations) return "iteration-budget";
  if (max_wall_seconds > 0.0 && wall_seconds >= max_wall_seconds) return "wall-clock-budget";
  return nullptr;
}

double Optimizer::elapsed_seconds() const {
  if (!started_) return 0.0;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_).count();
}

bool Optimizer::step() {
  if (finished_) return false;
  if (cancel_requested_) {  // cancelled between steps, before this call
    result_.termination = cancel_reason_;
    finish();
    return false;
  }
  // RAII so an exception escaping do_start()/do_step() (e.g. a failing
  // testbench evaluation) still clears the flag: a subsequent cancel() can
  // then finalize the session instead of deferring forever.
  struct StepScope {
    bool& flag;
    explicit StepScope(bool& f) : flag(f) { flag = true; }
    ~StepScope() { flag = false; }
  } scope(in_step_);
  if (!started_) {
    t0_ = std::chrono::steady_clock::now();
    do_start();
    // Marked only after do_start() succeeds: if initialization throws, a
    // retrying step() must run it again from scratch (do_start builds a
    // fresh Session) instead of stepping a half-built one.
    started_ = true;
    for (const auto& obs : observers_) obs->on_start(*this);
  }
  const bool more = do_step();
  if (!observers_.empty() && !result_.trace.empty()) {
    const EvaluationEngine* eng = engine_ptr();
    const EngineStats stats = eng ? eng->stats() : EngineStats{};
    for (const auto& obs : observers_) obs->on_iteration(*this, result_.trace.back(), stats);
  }
  if (more && !cancel_requested_) {
    const EvaluationEngine* eng = engine_ptr();
    const std::uint64_t sims = eng ? eng->simulation_count() : 0;
    if (const char* reason =
            budget_.exceeded_by(sims, result_.rl_iterations, elapsed_seconds())) {
      cancel(reason);
    }
  }
  if (!more) {
    finish();  // natural termination: the algorithm set its own reason
  } else if (cancel_requested_) {
    result_.termination = cancel_reason_;
    finish();
  }
  return true;
}

void Optimizer::cancel(std::string reason) {
  if (finished_) return;
  cancel_requested_ = true;
  cancel_reason_ = reason.empty() ? "cancelled" : std::move(reason);
  if (!in_step_) {
    result_.termination = cancel_reason_;
    finish();
  }
}

void Optimizer::finish() {
  if (finished_) return;
  finished_ = true;
  if (const EvaluationEngine* eng = engine_ptr()) {
    const EngineStats stats = eng->stats();
    result_.engine_stats = stats;
    result_.n_simulations = stats.requested;
    result_.n_simulations_executed = stats.executed;
    result_.n_cache_hits = stats.cache_hits;
  }
  result_.wall_seconds = elapsed_seconds();
  result_.modeled_runtime =
      static_cast<double>(result_.n_simulations) * cost().per_simulation +
      static_cast<double>(result_.rl_iterations) * cost().per_rl_iteration;
  do_finalize(result_);
  for (const auto& obs : observers_) obs->on_finish(*this, result_);
}

const GlovaResult& Optimizer::result() const {
  if (!finished_) {
    throw std::logic_error(
        "Optimizer::result(): session still running; drive step() until done() or cancel()");
  }
  return result_;
}

GlovaResult Optimizer::run() {
  while (!finished_) step();
  return result_;
}

void Optimizer::add_observer(std::shared_ptr<RunObserver> observer) {
  if (observer) observers_.push_back(std::move(observer));
}

// ---------------------------------------------------------------------------

ProgressLogObserver::ProgressLogObserver(std::size_t every)
    : every_(every == 0 ? 1 : every) {}

void ProgressLogObserver::on_start(Optimizer& session) {
  log_info(session.algorithm_name(), ": session started");
}

void ProgressLogObserver::on_iteration(Optimizer& session, const IterationTrace& trace,
                                       const EngineStats& stats) {
  if (trace.iteration % every_ != 0) return;
  log_info(session.algorithm_name(), ": iter ", trace.iteration, " reward_worst ",
           trace.reward_worst, " sims ", stats.requested, " (", stats.cache_hits,
           " cache hits)");
}

void ProgressLogObserver::on_finish(Optimizer& session, const GlovaResult& result) {
  log_info(session.algorithm_name(), ": finished (", result.termination, ") after ",
           result.rl_iterations, " iterations, ", result.n_simulations, " simulations");
}

void BudgetObserver::on_iteration(Optimizer& session, const IterationTrace& trace,
                                  const EngineStats& stats) {
  (void)trace;
  if (const char* reason = budget_.exceeded_by(stats.requested, session.iterations_completed(),
                                               session.elapsed_seconds())) {
    session.cancel(reason);
  }
}

EarlyStopObserver::EarlyStopObserver(std::size_t patience, double min_improvement)
    : patience_(patience == 0 ? 1 : patience), min_improvement_(min_improvement) {}

void EarlyStopObserver::on_iteration(Optimizer& session, const IterationTrace& trace,
                                     const EngineStats& stats) {
  (void)stats;
  if (!has_best_ || trace.reward_worst > best_ + min_improvement_) {
    has_best_ = true;
    best_ = trace.reward_worst;
    stalled_ = 0;
    return;
  }
  if (++stalled_ >= patience_) session.cancel("early-stop");
}

}  // namespace glova::core
