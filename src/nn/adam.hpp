// Adam optimizer (Kingma & Ba, 2015) over a flat parameter vector.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <vector>

namespace glova::nn {

struct AdamConfig {
  double learning_rate = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
};

class Adam {
 public:
  Adam(std::size_t parameter_count, AdamConfig config = {});

  /// Apply one update: params -= lr * m_hat / (sqrt(v_hat) + eps).
  void step(std::span<double> params, std::span<const double> grad);

  [[nodiscard]] std::size_t step_count() const { return t_; }
  [[nodiscard]] const AdamConfig& config() const { return config_; }

  /// Text-serialize the moment estimates and step counter (config comes from
  /// the constructor).  `load` throws when the stored moment length does not
  /// match this optimizer's parameter count.
  void save(std::ostream& os) const;
  void load(std::istream& is);

 private:
  AdamConfig config_;
  std::vector<double> m_;
  std::vector<double> v_;
  std::size_t t_ = 0;
};

}  // namespace glova::nn
