// MNA-based circuit simulation: Newton-Raphson operating point and
// fixed-step transient analysis (backward-Euler startup, trapezoidal after).
//
// Unknown ordering: node voltages for nodes 1..N-1 (ground eliminated),
// followed by one branch current per independent voltage source, then one
// per VCVS.  Nonlinear devices (MOSFETs) are linearized each Newton
// iteration via their companion model; a global gmin keeps matrices
// non-singular when devices cut off.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "spice/circuit.hpp"
#include "spice/lu.hpp"

namespace glova::spice {

struct OpResult {
  bool converged = false;
  int iterations = 0;
  std::vector<double> node_voltages;  ///< indexed by NodeId (ground included, = 0)
  std::vector<double> vsource_currents;
};

/// Transient configuration.
struct TransientSpec {
  double t_stop = 1e-9;
  double dt = 1e-12;
  /// If true, start from `initial_conditions` instead of a DC operating
  /// point (HSPICE "UIC").  Nodes absent from the map start at 0 V.
  bool use_ic = false;
  std::map<std::string, double> initial_conditions;
  /// Node names to record (empty = record every node).  Voltage-source
  /// currents are always recorded as "I(<name>)".
  std::vector<std::string> record;
};

/// Sampled waveform of one quantity over the transient run.
struct Trace {
  std::string name;
  std::vector<double> values;
};

struct TransientResult {
  bool ok = false;
  std::string error;
  std::vector<double> times;
  std::vector<Trace> traces;

  /// Access a trace by name ("out", "I(VDD)"); throws std::out_of_range.
  [[nodiscard]] const std::vector<double>& trace(const std::string& name) const;
  [[nodiscard]] bool has_trace(const std::string& name) const;
};

struct SimulatorOptions {
  double gmin = 1e-12;          ///< [S] from every node to ground
  double abstol = 1e-12;        ///< [A]
  double vtol = 1e-9;           ///< [V] Newton convergence on voltage update
  double max_step_voltage = 0.5;///< [V] Newton damping clamp
  int max_newton_iterations = 200;
  int source_steps = 10;        ///< source-stepping ramp points for hard OPs
};

/// Reusable scratch buffers for the Newton loop: the MNA matrix, the RHS,
/// the solver (with its factorization and permutation storage), and the
/// iterate produced by each solve.  Every buffer is fully overwritten before
/// use, so sharing a workspace across solves, timesteps, and even different
/// circuits never changes results — it only removes the per-solve heap
/// traffic.  A workspace is single-threaded state: use one per thread.
struct SimulatorWorkspace {
  DenseMatrix g;
  std::vector<double> rhs;
  std::vector<double> x_new;
  LuSolver solver;

  /// Size every buffer for an n-unknown system, reusing capacity.
  void prepare(std::size_t n);
};

/// The calling thread's shared workspace.  Simulators constructed without an
/// explicit workspace use this one, so repeated evaluations on a worker
/// thread (the common testbench pattern) reuse the same buffers.
[[nodiscard]] SimulatorWorkspace& thread_local_workspace();

class Simulator {
 public:
  /// `workspace` may outlive-the-call scratch storage; nullptr selects the
  /// calling thread's shared workspace.  The workspace must not be used by
  /// two simulators concurrently.
  explicit Simulator(const Circuit& circuit, SimulatorOptions options = {},
                     SimulatorWorkspace* workspace = nullptr);

  /// DC operating point (capacitors open).
  [[nodiscard]] OpResult operating_point();

  /// Transient analysis.
  [[nodiscard]] TransientResult transient(const TransientSpec& spec);

 private:
  enum class Mode { Op, Transient };

  struct AssemblyInputs {
    Mode mode = Mode::Op;
    double time = 0.0;
    double dt = 0.0;
    double source_scale = 1.0;
    bool trapezoidal = false;
    const std::vector<double>* x_guess = nullptr;
    const std::vector<double>* x_prev = nullptr;         ///< previous timepoint
    const std::vector<double>* cap_current_prev = nullptr;  ///< i_n per capacitor (trap)
  };

  void assemble(const AssemblyInputs& in, DenseMatrix& g, std::vector<double>& rhs) const;
  [[nodiscard]] bool newton_solve(const AssemblyInputs& in, std::vector<double>& x,
                                  int* iterations_out) const;
  [[nodiscard]] std::size_t unknown_count() const;
  [[nodiscard]] std::size_t node_unknown(NodeId node) const;  ///< valid for node != ground
  [[nodiscard]] double voltage_of(const std::vector<double>& x, NodeId node) const;

  const Circuit& circuit_;
  SimulatorOptions options_;
  SimulatorWorkspace* workspace_;
  std::size_t n_nodes_;    ///< including ground
  std::size_t n_vsrc_;
  std::size_t n_vcvs_;
};

}  // namespace glova::spice
