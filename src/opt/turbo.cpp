#include "opt/turbo.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace glova::opt {

Turbo::Turbo(std::size_t dim, TurboConfig config, Rng rng)
    : dim_(dim), config_(config), rng_(rng), tr_(config.tr_initial) {
  if (dim_ == 0) throw std::invalid_argument("Turbo: zero-dimensional space");
}

std::vector<std::vector<double>> Turbo::latin_hypercube(std::size_t n) {
  // One stratified permutation per axis.
  std::vector<std::vector<double>> pts(n, std::vector<double>(dim_));
  for (std::size_t d = 0; d < dim_; ++d) {
    std::vector<std::size_t> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    for (std::size_t i = n; i-- > 1;) std::swap(perm[i], perm[rng_.index(i + 1)]);
    for (std::size_t i = 0; i < n; ++i) {
      pts[i][d] = (static_cast<double>(perm[i]) + rng_.uniform()) / static_cast<double>(n);
    }
  }
  return pts;
}

std::vector<std::vector<double>> Turbo::ask(std::size_t n) {
  if (n == 0) return {};
  // Warmup: serve Latin-hypercube points until n_init observations exist.
  if (xs_.size() + 0 < config_.n_init) {
    const std::size_t remaining = config_.n_init - xs_.size();
    return latin_hypercube(std::min(n, std::max<std::size_t>(remaining, n)));
  }

  // Fit the surrogate on points inside (an inflated copy of) the trust region
  // to keep the GP local, falling back to all points when too few are inside.
  std::vector<std::vector<double>> x_fit;
  std::vector<double> y_fit;
  const double half = 0.75 * tr_;
  for (std::size_t i = 0; i < xs_.size(); ++i) {
    bool inside = true;
    for (std::size_t d = 0; d < dim_; ++d) {
      if (std::abs(xs_[i][d] - best_x_[d]) > half) {
        inside = false;
        break;
      }
    }
    if (inside) {
      x_fit.push_back(xs_[i]);
      y_fit.push_back(ys_[i]);
    }
  }
  if (x_fit.size() < std::max<std::size_t>(dim_ + 2, 6)) {
    x_fit = xs_;
    y_fit = ys_;
  }
  // Cap the GP fit size for O(n^3) sanity: keep the most recent points.
  constexpr std::size_t kMaxFit = 300;
  if (x_fit.size() > kMaxFit) {
    x_fit.erase(x_fit.begin(), x_fit.end() - static_cast<std::ptrdiff_t>(kMaxFit));
    y_fit.erase(y_fit.begin(), y_fit.end() - static_cast<std::ptrdiff_t>(kMaxFit));
  }
  GaussianProcess gp;
  gp.fit(x_fit, y_fit);

  // Candidate pool: perturb the incumbent inside the trust region, changing a
  // random subset of coordinates (TuRBO's sparse perturbation heuristic).
  std::vector<std::vector<double>> cands;
  cands.reserve(config_.candidates);
  const double p_perturb = std::min(1.0, 20.0 / static_cast<double>(dim_));
  for (std::size_t c = 0; c < config_.candidates; ++c) {
    std::vector<double> cand = best_x_;
    bool any = false;
    for (std::size_t d = 0; d < dim_; ++d) {
      if (rng_.uniform() < p_perturb) {
        cand[d] = std::clamp(best_x_[d] + (rng_.uniform() - 0.5) * tr_, 0.0, 1.0);
        any = true;
      }
    }
    if (!any) {
      const std::size_t d = rng_.index(dim_);
      cand[d] = std::clamp(best_x_[d] + (rng_.uniform() - 0.5) * tr_, 0.0, 1.0);
    }
    cands.push_back(std::move(cand));
  }

  // UCB acquisition over the pool; return the n best distinct candidates.
  std::vector<std::pair<double, std::size_t>> scored(cands.size());
  for (std::size_t c = 0; c < cands.size(); ++c) {
    const GpPrediction pred = gp.predict(cands[c]);
    scored[c] = {pred.mean + config_.ucb_beta * std::sqrt(pred.variance), c};
  }
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<std::vector<double>> out;
  out.reserve(n);
  for (std::size_t i = 0; i < std::min(n, scored.size()); ++i) {
    out.push_back(cands[scored[i].second]);
  }
  return out;
}

void Turbo::tell(const std::vector<std::vector<double>>& points,
                 const std::vector<double>& values) {
  if (points.size() != values.size()) throw std::invalid_argument("Turbo::tell: size mismatch");
  bool improved = false;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (points[i].size() != dim_) throw std::invalid_argument("Turbo::tell: bad point dim");
    xs_.push_back(points[i]);
    ys_.push_back(values[i]);
    if (values[i] > best_y_ + 1e-4 * std::abs(best_y_)) {
      best_y_ = values[i];
      best_x_ = points[i];
      improved = true;
    }
    if (best_x_.empty()) {
      best_y_ = values[i];
      best_x_ = points[i];
    }
  }
  if (xs_.size() <= config_.n_init) return;  // no TR adaptation during warmup
  if (improved) {
    ++success_streak_;
    failure_streak_ = 0;
    if (success_streak_ >= config_.success_tolerance) {
      tr_ = std::min(config_.tr_max, 2.0 * tr_);
      success_streak_ = 0;
    }
  } else {
    ++failure_streak_;
    success_streak_ = 0;
    if (failure_streak_ >= config_.failure_tolerance) {
      tr_ *= 0.5;
      failure_streak_ = 0;
    }
  }
}

std::vector<std::vector<double>> Turbo::top_points(std::size_t k) const {
  std::vector<std::size_t> idx(xs_.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) { return ys_[a] > ys_[b]; });
  std::vector<std::vector<double>> out;
  for (std::size_t i = 0; i < std::min(k, idx.size()); ++i) out.push_back(xs_[idx[i]]);
  return out;
}

}  // namespace glova::opt
