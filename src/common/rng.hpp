// Deterministic, splittable random number generation.
//
// Every stochastic component in the library (mismatch sampling, exploration
// noise, network initialization, TuRBO candidates, ...) draws from its own
// `Rng` stream so that results are reproducible and independent of evaluation
// order.  Streams are derived from a root seed with `split()`, which hashes
// (seed, child-index) so sibling streams do not overlap.
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace glova {

/// Seeded pseudo-random stream.  Thin wrapper over std::mt19937_64 plus the
/// handful of distributions the library needs.  Copyable; copies continue the
/// same sequence independently.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) : engine_(seed), seed_(seed) {}

  /// Derive an independent child stream.  Children with different indices
  /// (or parents with different seeds) produce unrelated sequences.
  [[nodiscard]] Rng split(std::uint64_t index) const;

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal draw.
  double normal();

  /// Normal draw with the given mean and standard deviation (sigma >= 0).
  double normal(double mean, double sigma);

  /// Uniform integer in [0, n-1].  n must be >= 1.
  std::size_t index(std::size_t n);

  /// Vector of iid standard normal draws.
  std::vector<double> normal_vector(std::size_t n);

  /// Vector of iid uniform draws in [lo, hi).
  std::vector<double> uniform_vector(std::size_t n, double lo, double hi);

  /// Sample k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

  /// The seed this stream was constructed with.
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Serialize the stream (seed + full engine state) as one text line without
  /// a trailing newline.  `restore` accepts exactly that text and resumes the
  /// sequence bit-identically; mt19937_64's textual state round-trips exactly
  /// per the standard.  Distributions hold no state here (each draw constructs
  /// its own), so seed + engine is the whole stream.
  [[nodiscard]] std::string save() const;
  void restore(const std::string& text);

  /// Access to the raw engine for use with std:: distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

/// SplitMix64 hash step; used for seed derivation and in tests.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t x);

}  // namespace glova
