// Shared line-oriented state serialization helpers.
//
// Every persistent text format in the repo (campaign checkpoints, replay-free
// optimizer session state, glova-serve job records) is built from the same
// primitives: one record per line, a leading keyword tag, doubles round-
// tripped losslessly via format_double_roundtrip, and counts validated
// against a sanity cap so a corrupt field fails as a malformed-input error
// instead of a multi-petabyte allocation.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace glova::state {

/// Sanity cap on serialized element counts (sessions, vector lengths, cache
/// entries).  Real state is orders of magnitude below this.
inline constexpr std::size_t kMaxCount = 1'000'000;

/// Throws std::runtime_error("glova-state: " + what).
[[noreturn]] void bad(const std::string& what);

/// Read one line and split off its leading keyword; throws when the stream
/// ends or the keyword differs from `expect`.  Returns the remainder of the
/// line (without the keyword and its trailing space).
std::string expect_line(std::istream& is, std::string_view expect);

/// Strict full-token integer parses; throw via bad() with `what` context.
[[nodiscard]] std::uint64_t parse_u64(const std::string& text, std::string_view what);
[[nodiscard]] double parse_double(const std::string& text, std::string_view what);

/// "tag N v0 v1 ... vN-1" on one line, doubles via max_digits10.
void write_doubles(std::ostream& os, std::string_view tag, std::span<const double> v);
[[nodiscard]] std::vector<double> read_doubles(std::istream& is, std::string_view tag);

/// Same for unsigned integers.
void write_u64s(std::ostream& os, std::string_view tag, std::span<const std::uint64_t> v);
[[nodiscard]] std::vector<std::uint64_t> read_u64s(std::istream& is, std::string_view tag);

/// Newlines would break the line-oriented formats; free-form strings
/// (exception texts, termination reasons) are stored with them flattened to
/// spaces.
[[nodiscard]] std::string one_line(std::string_view text);

}  // namespace glova::state
