#include "core/campaign.hpp"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/fsio.hpp"
#include "common/log.hpp"
#include "common/state_io.hpp"
#include "common/text.hpp"
#include "core/persistent_cache.hpp"

namespace glova::core {

// ---------------------------------------------------------------------------
// SweepSpec

std::vector<RunSpec> SweepSpec::expand() const {
  const auto tcs = testcases.empty() ? std::vector<circuits::Testcase>{base.testcase} : testcases;
  const auto algos = algorithms.empty() ? std::vector<Algorithm>{base.algorithm} : algorithms;
  const auto verifs = methods.empty() ? std::vector<VerifMethod>{base.method} : methods;
  const auto sds = seeds.empty() ? std::vector<std::uint64_t>{base.seed} : seeds;

  std::vector<RunSpec> out;
  out.reserve(tcs.size() * algos.size() * verifs.size() * sds.size());
  for (const auto tc : tcs) {
    for (const auto algo : algos) {
      for (const auto verif : verifs) {
        for (const auto seed : sds) {
          RunSpec spec = base;
          spec.testcase = tc;
          spec.algorithm = algo;
          spec.method = verif;
          spec.seed = seed;
          out.push_back(std::move(spec));
        }
      }
    }
  }
  return out;
}

namespace {

/// "a,b,c" for a sweep axis vector; `name(v)` renders one element.
template <typename T, typename NameFn>
std::string join_axis(const std::vector<T>& values, NameFn name) {
  std::string out;
  for (const T& v : values) {
    if (!out.empty()) out += ',';
    out += name(v);
  }
  return out;
}

/// Split "a,b,c" and parse each element via `parse` (returns std::optional).
template <typename T, typename ParseFn>
std::vector<T> split_axis(std::string_view text, std::string_view axis, ParseFn parse) {
  std::vector<T> out;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = text.find(',', pos);
    const std::string_view item =
        text.substr(pos, comma == std::string_view::npos ? std::string_view::npos : comma - pos);
    const auto v = parse(item);
    if (!v) {
      throw std::invalid_argument("SweepSpec: bad " + std::string(axis) + " element '" +
                                  std::string(item) + "'");
    }
    out.push_back(*v);
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace

std::string SweepSpec::to_string() const {
  std::string out = base.to_string();
  const auto axis = [&out](std::string_view key, const std::string& joined) {
    if (joined.empty()) return;
    out += ' ';
    out += key;
    out += '=';
    out += joined;
  };
  axis("sweep.testcases",
       join_axis(testcases, [](circuits::Testcase t) { return circuits::to_string(t); }));
  axis("sweep.algorithms", join_axis(algorithms, [](Algorithm a) { return core::to_string(a); }));
  axis("sweep.methods", join_axis(methods, [](VerifMethod m) { return core::to_string(m); }));
  axis("sweep.seeds",
       join_axis(seeds, [](std::uint64_t s) { return std::to_string(s); }));
  return out;
}

SweepSpec SweepSpec::from_string(std::string_view text) {
  // Partition "sweep.*" tokens from RunSpec tokens, then delegate the rest.
  SweepSpec sweep;
  std::string base_text;
  std::size_t pos = 0;
  while (pos < text.size()) {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) ++pos;
    if (pos >= text.size()) break;
    std::size_t end = pos;
    while (end < text.size() && !std::isspace(static_cast<unsigned char>(text[end]))) ++end;
    const std::string_view token = text.substr(pos, end - pos);
    pos = end;

    if (token.substr(0, 6) != "sweep.") {
      if (!base_text.empty()) base_text += ' ';
      base_text += token;
      continue;
    }
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos) {
      throw std::invalid_argument("SweepSpec: expected key=value, got '" + std::string(token) +
                                  "'");
    }
    const std::string_view key = token.substr(0, eq);
    const std::string_view value = token.substr(eq + 1);
    if (key == "sweep.testcases") {
      sweep.testcases =
          split_axis<circuits::Testcase>(value, key, circuits::testcase_from_string);
    } else if (key == "sweep.algorithms") {
      sweep.algorithms = split_axis<Algorithm>(value, key, algorithm_from_string);
    } else if (key == "sweep.methods") {
      sweep.methods = split_axis<VerifMethod>(value, key, verif_method_from_string);
    } else if (key == "sweep.seeds") {
      sweep.seeds = split_axis<std::uint64_t>(value, key,
                                              [](std::string_view item) -> std::optional<std::uint64_t> {
                                                try {
                                                  std::size_t parsed = 0;
                                                  const std::string s(item);
                                                  const std::uint64_t v = std::stoull(s, &parsed);
                                                  if (parsed != s.size()) return std::nullopt;
                                                  return v;
                                                } catch (const std::exception&) {
                                                  return std::nullopt;
                                                }
                                              });
    } else {
      throw std::invalid_argument("SweepSpec: unknown key '" + std::string(key) + "'");
    }
  }
  sweep.base = RunSpec::from_string(base_text);
  return sweep;
}

// ---------------------------------------------------------------------------
// Result table

const char* to_string(SessionState state) {
  switch (state) {
    case SessionState::Pending: return "pending";
    case SessionState::Running: return "running";
    case SessionState::Finished: return "finished";
    case SessionState::Failed: return "failed";
  }
  return "?";
}

namespace {

std::optional<SessionState> session_state_from_string(std::string_view name) {
  for (const SessionState s : {SessionState::Pending, SessionState::Running,
                               SessionState::Finished, SessionState::Failed}) {
    if (name == to_string(s)) return s;
  }
  return std::nullopt;
}

}  // namespace

const CampaignEntry* CampaignResult::find(const RunSpec& spec) const {
  for (const CampaignEntry& entry : entries) {
    if (entry.spec == spec) return &entry;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Campaign internals

/// One scheduled session: the spec, the live optimizer (null once terminal),
/// and the bookkeeping that becomes a CampaignEntry.
struct Campaign::Session {
  RunSpec spec;
  std::unique_ptr<Optimizer> optimizer;
  SessionState state = SessionState::Pending;
  std::size_t steps = 0;
  std::size_t retries = 0;  ///< throw-and-replay recoveries so far
  GlovaResult result;  ///< copied from the optimizer when it terminates
  std::string error;

  [[nodiscard]] bool terminal() const {
    return state == SessionState::Finished || state == SessionState::Failed;
  }
};

/// Observer fan-out shared between the campaign and its per-session
/// forwarders.  shared_ptr-owned so forwarders survive Campaign moves.
struct Campaign::Hub {
  std::vector<std::shared_ptr<CampaignObserver>> observers;
};

/// RunObserver attached to each session that relays per-iteration events to
/// every campaign observer, tagged with the session's index and spec.
class Campaign::IterationForwarder final : public RunObserver {
 public:
  IterationForwarder(std::shared_ptr<Hub> hub, std::size_t index, RunSpec spec)
      : hub_(std::move(hub)), index_(index), spec_(std::move(spec)) {}

  void on_iteration(Optimizer&, const IterationTrace& trace, const EngineStats& stats) override {
    for (const auto& obs : hub_->observers) obs->on_iteration(index_, spec_, trace, stats);
  }

 private:
  std::shared_ptr<Hub> hub_;
  std::size_t index_;
  RunSpec spec_;
};

Campaign::Campaign() : hub_(std::make_shared<Hub>()) {}

Campaign::Campaign(std::vector<RunSpec> specs, CampaignConfig config) : Campaign() {
  config_ = std::move(config);
  sessions_.reserve(specs.size());
  for (RunSpec& spec : specs) {
    Session session;
    session.spec = std::move(spec);
    session.optimizer = build_optimizer(session.spec);
    sessions_.push_back(std::move(session));
  }
  for (std::size_t i = 0; i < sessions_.size(); ++i) attach_forwarder(i);
}

Campaign::Campaign(const SweepSpec& sweep, CampaignConfig config)
    : Campaign(sweep.expand(), std::move(config)) {}

Campaign::Campaign(Campaign&&) noexcept = default;
Campaign& Campaign::operator=(Campaign&&) noexcept = default;
Campaign::~Campaign() = default;

circuits::TestbenchPtr Campaign::testbench_for(const RunSpec& spec) {
  if (config_.make_testbench) return config_.make_testbench(spec);
  // Registry default: validate the full spec (including availability), then
  // share one testbench per (testcase, backend) — testbenches are
  // stateless-const, so sharing cannot change any session's results.
  spec.validate();
  const std::pair<int, int> key{static_cast<int>(spec.testcase), static_cast<int>(spec.backend)};
  for (const auto& [k, tb] : shared_benches_) {
    if (k == key) return tb;
  }
  auto tb = circuits::make_testbench(spec.testcase, spec.backend);
  shared_benches_.emplace_back(key, tb);
  return tb;
}

std::unique_ptr<Optimizer> Campaign::build_optimizer(const RunSpec& spec) {
  circuits::TestbenchPtr tb = testbench_for(spec);
  if (!config_.cache_dir.empty() && spec.engine.cache_path.empty()) {
    // Shard the directory per (testcase, backend, numerics-config) tag so
    // sessions with different engine settings never collide on a file — a
    // foreign-tag cache is a hard load error by design.  The stored session
    // spec stays untouched: the injected path is a campaign-level concern and
    // must not leak into result serialization or checkpoint specs.
    RunSpec cached = spec;
    cached.engine.cache_path =
        config_.cache_dir + "/" + memo_cache_file_name(tb->name(), spec.engine);
    return make_optimizer(cached, std::move(tb));
  }
  return make_optimizer(spec, std::move(tb));
}

void Campaign::attach_forwarder(std::size_t index) {
  sessions_[index].optimizer->add_observer(
      std::make_shared<IterationForwarder>(hub_, index, sessions_[index].spec));
}

bool Campaign::retry_session(std::size_t index) {
  Session& s = sessions_[index];
  ++s.retries;
  // Replay is observer-silent, exactly like load(): already-reported
  // iterations must not log or forward twice, so the fresh session runs with
  // progress_log off and no forwarder until the replay succeeded.
  RunSpec quiet = s.spec;
  quiet.progress_log = false;
  std::unique_ptr<Optimizer> fresh;
  try {
    fresh = build_optimizer(quiet);
    for (std::size_t k = 0; k < s.steps; ++k) {
      if (!fresh->step()) return false;
    }
  } catch (const std::exception&) {
    return false;  // deterministic failure: the replay hit the same throw
  }
  if (fresh->done()) return false;  // drift: was live at the recorded count
  // Only now replace the broken optimizer — retire_failed still needs the
  // original (cancel() finalizes a partial result) when the retry fails.
  s.optimizer = std::move(fresh);
  if (s.spec.progress_log) s.optimizer->add_observer(std::make_shared<ProgressLogObserver>());
  attach_forwarder(index);
  return true;
}

void Campaign::retire_finished(std::size_t index) {
  Session& s = sessions_[index];
  s.state = SessionState::Finished;
  s.result = s.optimizer->result();
  s.optimizer.reset();
  result_valid_ = false;
  for (const auto& obs : hub_->observers) obs->on_session_finish(index, s.spec, s.result);
}

void Campaign::retire_failed(std::size_t index, std::string error) {
  Session& s = sessions_[index];
  s.state = SessionState::Failed;
  s.error = std::move(error);
  // cancel() between steps finalizes immediately with a well-formed partial
  // result (the session base guarantees this even after a throwing step).
  s.optimizer->cancel("campaign-session-error");
  s.result = s.optimizer->result();
  s.optimizer.reset();
  result_valid_ = false;
  for (const auto& obs : hub_->observers) obs->on_session_error(index, s.spec, s.error);
}

std::size_t Campaign::next_live(std::size_t from) const {
  const std::size_t n = sessions_.size();
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = (from + k) % n;
    if (!sessions_[i].terminal()) return i;
  }
  return n;
}

bool Campaign::step() {
  if (sessions_.empty()) return false;
  const std::size_t index = next_live(cursor_);
  if (index == sessions_.size()) return false;
  cursor_ = (index + 1) % sessions_.size();

  Session& s = sessions_[index];
  if (s.state == SessionState::Pending) {
    for (const auto& obs : hub_->observers) obs->on_session_start(index, s.spec);
    s.state = SessionState::Running;
    result_valid_ = false;
  }

  const std::size_t turn = config_.steps_per_turn == 0 ? 1 : config_.steps_per_turn;
  for (std::size_t t = 0; t < turn; ++t) {
    try {
      if (!s.optimizer->step()) break;
      ++s.steps;
      result_valid_ = false;
    } catch (const std::exception& e) {
      // Transient-error recovery: rebuild-and-replay the session (the load()
      // mechanism), draining the retry budget before retiring it — a
      // deterministic failure re-throws during every replay.  On success the
      // failed step is re-attempted on the session's next scheduling turn.
      bool recovered = false;
      while (s.retries < config_.max_session_retries) {
        if (retry_session(index)) {
          recovered = true;
          break;
        }
      }
      if (recovered) break;
      retire_failed(index, e.what());
      break;
    }
    if (s.optimizer->done()) break;
  }
  if (s.state == SessionState::Running && s.optimizer->done()) retire_finished(index);

  enforce_campaign_budget();
  return true;
}

void Campaign::enforce_campaign_budget() {
  if (config_.max_total_simulations == 0) return;
  if (total_simulations() < config_.max_total_simulations) return;
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    Session& s = sessions_[i];
    if (s.terminal()) continue;
    const bool was_pending = s.state == SessionState::Pending;
    s.optimizer->cancel("campaign-simulation-budget");
    if (was_pending) {
      for (const auto& obs : hub_->observers) obs->on_session_start(i, s.spec);
    }
    s.state = SessionState::Running;  // retire_finished asserts a live state
    retire_finished(i);
  }
}

const CampaignResult& Campaign::run() {
  while (step()) {
  }
  return result();
}

bool Campaign::done() const {
  for (const Session& s : sessions_) {
    if (!s.terminal()) return false;
  }
  return true;
}

std::size_t Campaign::session_count() const { return sessions_.size(); }

std::size_t Campaign::sessions_remaining() const {
  std::size_t live = 0;
  for (const Session& s : sessions_) live += s.terminal() ? 0 : 1;
  return live;
}

std::uint64_t Campaign::total_simulations() const {
  std::uint64_t total = 0;
  for (const Session& s : sessions_) {
    if (s.terminal()) {
      total += s.result.n_simulations;
    } else if (const EvaluationEngine* engine = s.optimizer->engine()) {
      total += engine->simulation_count();
    }
  }
  return total;
}

const CampaignResult& Campaign::result() const {
  if (!done()) {
    throw std::logic_error(
        "Campaign::result(): sessions still live; drive step() until done()");
  }
  if (!result_valid_) {
    result_.entries.clear();
    result_.entries.reserve(sessions_.size());
    result_.total_simulations = 0;
    result_.finished = 0;
    result_.failed = 0;
    result_.session_retries = 0;
    for (const Session& s : sessions_) {
      CampaignEntry entry;
      entry.spec = s.spec;
      entry.state = s.state;
      entry.steps = s.steps;
      entry.retries = s.retries;
      entry.result = s.result;
      entry.error = s.error;
      result_.entries.push_back(std::move(entry));
      result_.total_simulations += s.result.n_simulations;
      result_.session_retries += s.retries;
      result_.finished += s.state == SessionState::Finished ? 1 : 0;
      result_.failed += s.state == SessionState::Failed ? 1 : 0;
    }
    result_valid_ = true;
  }
  return result_;
}

void Campaign::add_observer(std::shared_ptr<CampaignObserver> observer) {
  if (observer) hub_->observers.push_back(std::move(observer));
}

// ---------------------------------------------------------------------------
// Checkpoint format (versioned, line-oriented text; doubles round-trip via
// max_digits10 like RunSpec).  See docs/architecture.md#checkpoint-format.

namespace {

constexpr const char* kMagic = "glova-campaign";
/// v1: in-flight sessions resume by deterministic replay.  v2 additionally
/// records per-session retry counts and embeds each in-flight session's full
/// serialized optimizer state (Optimizer::save_state), so load() restores
/// them O(1) with zero step() replays.  v3 adds the persistent memo-cache
/// directory (CampaignConfig::cache_dir), so a restarted daemon keeps
/// re-serving previously simulated points.  All three versions load.
constexpr int kFormatVersion = 3;

/// Sanity cap on serialized element counts (sessions, vector lengths, trace
/// rows).  Real campaigns are orders of magnitude below this; a corrupt
/// count field must fail as a malformed-checkpoint error, not as a
/// multi-petabyte allocation.
constexpr std::size_t kMaxCheckpointCount = 1'000'000;

[[noreturn]] void bad_checkpoint(const std::string& what) {
  throw std::runtime_error("Campaign checkpoint: " + what);
}

/// Read one line and split off its leading keyword; throws when the stream
/// ends or the keyword differs from `expect`.
std::string expect_line(std::istream& is, std::string_view expect) {
  std::string line;
  if (!std::getline(is, line)) bad_checkpoint("unexpected end of input, expected '" +
                                              std::string(expect) + "'");
  const std::size_t space = line.find(' ');
  const std::string_view keyword =
      space == std::string::npos ? std::string_view(line)
                                 : std::string_view(line).substr(0, space);
  if (keyword != expect) {
    bad_checkpoint("expected '" + std::string(expect) + "', got '" + line + "'");
  }
  return space == std::string::npos ? std::string() : line.substr(space + 1);
}

std::uint64_t parse_u64_field(const std::string& text, std::string_view what) {
  try {
    std::size_t pos = 0;
    const std::uint64_t v = std::stoull(text, &pos);
    if (pos != text.size()) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    bad_checkpoint("invalid integer for " + std::string(what) + ": '" + text + "'");
  }
}

/// Newlines would break the line-oriented format; exception texts and
/// termination reasons are stored with them flattened to spaces.
std::string one_line(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return out;
}

}  // namespace

void Campaign::save(std::ostream& os) const {
  os << kMagic << " v" << kFormatVersion << '\n';
  os << "max_total_simulations " << config_.max_total_simulations << '\n';
  os << "steps_per_turn " << config_.steps_per_turn << '\n';
  os << "cache_dir " << one_line(config_.cache_dir) << '\n';
  os << "cursor " << cursor_ << '\n';
  os << "sessions " << sessions_.size() << '\n';
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    const Session& s = sessions_[i];
    os << "session " << i << '\n';
    os << "spec " << s.spec.to_string() << '\n';
    os << "state " << to_string(s.state) << '\n';
    os << "steps " << s.steps << '\n';
    os << "retries " << s.retries << '\n';
    if (s.state == SessionState::Failed) os << "error " << one_line(s.error) << '\n';
    if (s.terminal()) write_glova_result(os, s.result);
    if (s.state == SessionState::Running) {
      // A Running session with steps > 0 has a started optimizer; serialize
      // its full state so load() resumes it without replay.  Otherwise (or
      // when the algorithm has no state serialization) fall back to the v1
      // replay mechanism, which handles steps == 0 as a fresh build.
      if (s.steps > 0 && s.optimizer->supports_state_serialization()) {
        os << "resume state\n";
        s.optimizer->save_state(os);
      } else {
        os << "resume replay\n";
      }
    }
  }
  os << "end\n";
  if (!os) bad_checkpoint("write failed");
}

void Campaign::save_file(const std::string& path) const {
  // Crash-safe: serialized in memory first, then written via the fsync +
  // temp-sibling + rename pattern, so neither an interrupted save nor a
  // power loss right after the rename can leave a truncated checkpoint
  // where a good one stood.
  std::ostringstream os;
  save(os);
  atomic_write_file(path, os.str());
}

Campaign Campaign::load(std::istream& is,
                        std::function<circuits::TestbenchPtr(const RunSpec&)> make_testbench) {
  int version = 0;
  {
    std::string magic;
    std::string version_text;
    std::string header;
    if (!std::getline(is, header)) bad_checkpoint("empty input");
    std::istringstream line(header);
    line >> magic >> version_text;
    if (magic != kMagic) bad_checkpoint("not a campaign checkpoint (bad magic '" + magic + "')");
    if (version_text == "v1") {
      version = 1;
    } else if (version_text == "v2") {
      version = 2;
    } else if (version_text == "v3") {
      version = 3;
    } else {
      bad_checkpoint("unsupported format version '" + version_text +
                     "' (this build reads v1, v2 and v3)");
    }
  }

  Campaign campaign;
  campaign.config_.make_testbench = std::move(make_testbench);
  campaign.config_.max_total_simulations =
      parse_u64_field(expect_line(is, "max_total_simulations"), "max_total_simulations");
  campaign.config_.steps_per_turn = static_cast<std::size_t>(
      parse_u64_field(expect_line(is, "steps_per_turn"), "steps_per_turn"));
  if (version >= 3) campaign.config_.cache_dir = expect_line(is, "cache_dir");
  campaign.cursor_ = static_cast<std::size_t>(parse_u64_field(expect_line(is, "cursor"), "cursor"));
  const std::size_t count =
      static_cast<std::size_t>(parse_u64_field(expect_line(is, "sessions"), "sessions"));
  if (count > kMaxCheckpointCount) {
    bad_checkpoint("implausible session count " + std::to_string(count));
  }

  campaign.sessions_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (parse_u64_field(expect_line(is, "session"), "session index") != i) {
      bad_checkpoint("session records out of order");
    }
    Session s;
    s.spec = RunSpec::from_string(expect_line(is, "spec"));
    const std::string state_name = expect_line(is, "state");
    const auto state = session_state_from_string(state_name);
    if (!state) bad_checkpoint("unknown session state '" + state_name + "'");
    s.state = *state;
    s.steps = static_cast<std::size_t>(parse_u64_field(expect_line(is, "steps"), "steps"));
    if (version >= 2) {
      s.retries =
          static_cast<std::size_t>(parse_u64_field(expect_line(is, "retries"), "retries"));
    }
    if (s.state == SessionState::Failed) s.error = expect_line(is, "error");
    if (s.terminal()) s.result = read_glova_result(is);
    if (version >= 2 && s.state == SessionState::Running) {
      const std::string mode = expect_line(is, "resume");
      if (mode == "state") {
        // Replay-free resume: build a fresh session and restore its full
        // serialized state in place — O(1), zero optimizer step() replays.
        // Built observer-quiet like the replay path; the ProgressLogObserver
        // and forwarder attach below, seeing only new iterations.
        RunSpec quiet = s.spec;
        quiet.progress_log = false;
        s.optimizer = campaign.build_optimizer(quiet);
        s.optimizer->load_state(is);
      } else if (mode != "replay") {
        bad_checkpoint("unknown resume mode '" + mode + "'");
      }
    }
    campaign.sessions_.push_back(std::move(s));
  }
  (void)expect_line(is, "end");
  if (campaign.cursor_ >= count && count > 0) bad_checkpoint("cursor out of range");

  // Rebuild the remaining in-flight sessions by deterministic replay: a
  // fresh session re-stepped to its recorded count reaches the same state as
  // the one that was checkpointed (fixed-seed determinism, pinned by the
  // parity tests).  Replay is observer-silent: forwarders attach afterwards
  // (observers added post-load see only new iterations), and the spec's
  // ProgressLogObserver is attached after replay too so already-reported
  // iterations do not log twice.
  for (std::size_t i = 0; i < campaign.sessions_.size(); ++i) {
    Session& s = campaign.sessions_[i];
    if (s.terminal()) continue;
    if (!s.optimizer) {
      RunSpec quiet = s.spec;
      quiet.progress_log = false;
      s.optimizer = campaign.build_optimizer(quiet);
      const std::size_t replay = s.steps;
      s.steps = 0;
      for (std::size_t k = 0; k < replay; ++k) {
        try {
          if (!s.optimizer->step()) break;
          ++s.steps;
        } catch (const std::exception& e) {
          campaign.retire_failed(i, e.what());
          break;
        }
      }
      if (s.steps != replay && s.state != SessionState::Failed) {
        bad_checkpoint("replay of session " + std::to_string(i) + " stopped after " +
                       std::to_string(s.steps) + " of " + std::to_string(replay) + " steps");
      }
      if (!s.terminal() && s.optimizer->done()) {
        // A replayed session should stop strictly before termination (it was
        // live at save time); tolerate drift by retiring it cleanly.
        s.state = SessionState::Running;
        campaign.retire_finished(i);
      }
    }
    if (!s.terminal()) {
      if (s.spec.progress_log) s.optimizer->add_observer(std::make_shared<ProgressLogObserver>());
      campaign.attach_forwarder(i);
    }
  }
  return campaign;
}

Campaign Campaign::load_file(
    const std::string& path,
    std::function<circuits::TestbenchPtr(const RunSpec&)> make_testbench) {
  std::ifstream is(path);
  if (!is) bad_checkpoint("cannot open '" + path + "' for reading");
  return load(is, std::move(make_testbench));
}

}  // namespace glova::core
