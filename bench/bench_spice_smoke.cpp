// SPICE-backend smoke: one campaign cell (GLOVA, corners-only verification,
// one seed) per Table II testcase, every simulation running netlist -> DC
// operating point -> transient -> measurements on the MNA engine.  CI runs
// this with GLOVA_BENCH_BACKEND=spice so a netlist regression on any block
// (a latch that stops deciding, a sense amp that stops resolving, a
// non-convergent reservoir) fails the pipeline within a few seconds.
//
//   GLOVA_BENCH_BACKEND=spice GLOVA_BENCH_SEEDS=1 GLOVA_BENCH_MAXIT=120 \
//     ./bench_spice_smoke
#include <cstdio>
#include <cstdlib>

#include "bench_common.hpp"

int main() {
  using namespace glova;
  bench::BenchOptions opt = bench::options_from_env();
  // Smoke defaults: the backend is the point of this binary; keep the cell
  // small unless the caller asked for more.
  if (std::getenv("GLOVA_BENCH_BACKEND") == nullptr) opt.backend = circuits::Backend::Spice;
  if (std::getenv("GLOVA_BENCH_SEEDS") == nullptr) opt.seeds = 1;
  if (std::getenv("GLOVA_BENCH_MAXIT") == nullptr) opt.max_iterations = 120;

  std::printf("SPICE smoke — one %s-backend campaign cell per testcase "
              "(GLOVA, C, %zu seed(s), iteration cap %zu)\n",
              circuits::to_string(opt.backend), opt.seeds, opt.max_iterations);
  bool all_ran = true;
  for (const auto tc : circuits::all_testcases()) {
    const bench::CellStats stats =
        bench::run_cell(bench::Method::Glova, tc, core::VerifMethod::C, opt);
    std::printf("  %-8s iterations %-7.4g simulations %-8.5g success %.2f wall %.2fs\n",
                circuits::to_string(tc), stats.mean_iterations, stats.mean_simulations,
                stats.success_rate, stats.mean_wall_seconds);
    if (stats.runs == 0) all_ran = false;
  }
  if (!all_ran) {
    std::fprintf(stderr, "bench_spice_smoke: a cell ran zero sessions\n");
    return 1;
  }
  return 0;
}
