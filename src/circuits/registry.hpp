// Factory tying testcases to evaluator backends.
//
// Benches use Backend::Behavioral (microsecond evaluations; hundreds of
// thousands of MC samples are routine).  Backend::Spice builds and runs a
// transistor-level netlist through the in-repo MNA engine — slower, used by
// tests and examples to validate the behavioral models' trends.
#pragma once

#include <string>
#include <vector>

#include "circuits/testbench.hpp"

namespace glova::circuits {

enum class Testcase { Sal, Fia, DramOcsa };
enum class Backend { Behavioral, Spice };

[[nodiscard]] const char* to_string(Testcase testcase);

/// All testcases in paper order (Table II columns).
[[nodiscard]] std::vector<Testcase> all_testcases();

/// Construct a testbench.  Throws std::invalid_argument for combinations
/// that are not available.
[[nodiscard]] TestbenchPtr make_testbench(Testcase testcase, Backend backend = Backend::Behavioral);

}  // namespace glova::circuits
