#include "rl/ensemble_critic.hpp"

#include <array>
#include <cmath>
#include <ostream>
#include <stdexcept>

#include "common/state_io.hpp"
#include "nn/loss.hpp"

namespace glova::rl {

EnsembleCritic::EnsembleCritic(std::size_t input_dim, const CriticConfig& config, Rng& rng)
    : config_(config) {
  if (config_.ensemble_size == 0) throw std::invalid_argument("EnsembleCritic: empty ensemble");
  models_.reserve(config_.ensemble_size);
  optimizers_.reserve(config_.ensemble_size);
  for (std::size_t i = 0; i < config_.ensemble_size; ++i) {
    Rng stream = rng.split(i + 1);
    // 4-layer network (paper Sec. IV-A): input -> h -> h -> h -> 1.
    models_.emplace_back(
        std::vector<std::size_t>{input_dim, config_.hidden, config_.hidden, config_.hidden, 1},
        nn::Activation::Tanh, nn::Activation::Identity, stream);
    optimizers_.emplace_back(models_.back().parameter_count(),
                             nn::AdamConfig{config_.learning_rate, 0.9, 0.999, 1e-8});
  }
}

EnsembleCritic::Bound EnsembleCritic::bound(std::span<const double> x) const {
  Bound b;
  std::vector<double> outs(models_.size());
  for (std::size_t i = 0; i < models_.size(); ++i) outs[i] = models_[i].forward(x)[0];
  double mean = 0.0;
  for (const double o : outs) mean += o;
  mean /= static_cast<double>(outs.size());
  double var = 0.0;
  for (const double o : outs) var += (o - mean) * (o - mean);
  var = outs.size() > 1 ? var / static_cast<double>(outs.size() - 1) : 0.0;
  b.mean = mean;
  b.std = std::sqrt(var);
  b.risk_adjusted = mean + config_.beta1 * b.std;
  return b;
}

double EnsembleCritic::predict(std::span<const double> x) const { return bound(x).risk_adjusted; }

double EnsembleCritic::train_base(std::size_t i, const std::vector<std::vector<double>>& xs,
                                  std::span<const double> rewards) {
  if (i >= models_.size()) throw std::out_of_range("EnsembleCritic::train_base");
  if (xs.size() != rewards.size() || xs.empty()) {
    throw std::invalid_argument("EnsembleCritic::train_base: bad batch");
  }
  nn::Mlp& model = models_[i];
  std::vector<double> grad(model.parameter_count(), 0.0);
  double loss = 0.0;
  nn::Mlp::Workspace ws;
  const double scale = 1.0 / static_cast<double>(xs.size());
  for (std::size_t n = 0; n < xs.size(); ++n) {
    const std::vector<double> out = model.forward(xs[n], ws);
    const double pred = out[0] + config_.bias;
    loss += nn::mse(pred, rewards[n]) * scale;
    const double dLdy = nn::mse_grad_scalar(pred, rewards[n]) * scale;
    const std::array<double, 1> dl{dLdy};
    (void)model.backward(ws, std::span<const double>(dl.data(), 1), grad);
  }
  optimizers_[i].step(model.parameters(), grad);
  return loss;
}

std::vector<double> EnsembleCritic::input_gradient(std::span<const double> x, double dLdq) const {
  // Q = mean_i Q_i + beta1 * sigma.  dQ/dQ_i = 1/E + beta1 * (Q_i - mean) /
  // ((E-1) * sigma); for sigma -> 0 only the mean term survives.
  const std::size_t e = models_.size();
  std::vector<double> outs(e);
  std::vector<nn::Mlp::Workspace> wss(e);
  for (std::size_t i = 0; i < e; ++i) outs[i] = models_[i].forward(x, wss[i])[0];
  double mean = 0.0;
  for (const double o : outs) mean += o;
  mean /= static_cast<double>(e);
  double var = 0.0;
  for (const double o : outs) var += (o - mean) * (o - mean);
  var = e > 1 ? var / static_cast<double>(e - 1) : 0.0;
  const double sigma = std::sqrt(var);

  std::vector<double> dx(x.size(), 0.0);
  for (std::size_t i = 0; i < e; ++i) {
    double weight = 1.0 / static_cast<double>(e);
    if (e > 1 && sigma > 1e-12) {
      weight += config_.beta1 * (outs[i] - mean) / (static_cast<double>(e - 1) * sigma);
    }
    const std::array<double, 1> dl{dLdq * weight};
    const std::vector<double> gi =
        models_[i].input_gradient(wss[i], std::span<const double>(dl.data(), 1));
    for (std::size_t d = 0; d < dx.size(); ++d) dx[d] += gi[d];
  }
  return dx;
}

void EnsembleCritic::save(std::ostream& os) const {
  os << "critic " << models_.size() << '\n';
  for (std::size_t i = 0; i < models_.size(); ++i) {
    models_[i].save(os);
    optimizers_[i].save(os);
  }
}

void EnsembleCritic::load(std::istream& is) {
  const std::size_t n = state::parse_u64(state::expect_line(is, "critic"), "critic ensemble size");
  if (n != models_.size()) {
    state::bad("critic ensemble size mismatch: expected " + std::to_string(models_.size()) +
               ", got " + std::to_string(n));
  }
  for (std::size_t i = 0; i < models_.size(); ++i) {
    models_[i].load(is);
    optimizers_[i].load(is);
  }
}

}  // namespace glova::rl
