// Level-1 MOSFET linearization shared by the scalar Newton loop
// (simulator.cpp) and the batched lockstep evaluator (batch.cpp).
//
// Both translation units are compiled with GLOVA_SPICE_KERNEL_FLAGS, and the
// functions are inline, so the scalar and batched paths evaluate the exact
// same floating-point expressions — a requirement for the batched path's
// bit-identical parity with sequential evaluation.
#pragma once

#include "pdk/mos_params.hpp"

namespace glova::spice {

/// Linearized MOSFET: drain-to-source current and its partial derivatives
/// with respect to the gate, drain and source node voltages.
struct MosLinearization {
  double i_ds = 0.0;
  double d_vg = 0.0;
  double d_vd = 0.0;
  double d_vs = 0.0;
};

/// Square-law evaluation for an NMOS-oriented channel (vds >= 0 assumed by
/// the caller): returns current and (gm, gds).
struct NmosEval {
  double id = 0.0;
  double gm = 0.0;
  double gds = 0.0;
};

inline NmosEval nmos_square_law(const pdk::MosParams& p, double w_over_l, double vgs, double vds) {
  NmosEval e;
  const double vov = vgs - p.vth;
  if (vov <= 0.0 || vds <= 0.0) return e;  // cutoff
  const double k = p.kp * w_over_l;
  if (vds < vov) {
    // Triode region.
    const double clm = 1.0 + p.lambda * vds;
    e.id = k * (vov - 0.5 * vds) * vds * clm;
    e.gm = k * vds * clm;
    e.gds = k * ((vov - vds) * clm + (vov - 0.5 * vds) * vds * p.lambda);
  } else {
    // Saturation.
    const double clm = 1.0 + p.lambda * vds;
    e.id = 0.5 * k * vov * vov * clm;
    e.gm = k * vov * clm;
    e.gds = 0.5 * k * vov * vov * p.lambda;
  }
  return e;
}

/// NMOS including source/drain swap for vds < 0 (the channel is symmetric).
inline MosLinearization nmos_linearize(const pdk::MosParams& p, double w_over_l, double vg,
                                       double vd, double vs) {
  MosLinearization lin;
  if (vd >= vs) {
    const NmosEval e = nmos_square_law(p, w_over_l, vg - vs, vd - vs);
    lin.i_ds = e.id;
    lin.d_vg = e.gm;
    lin.d_vd = e.gds;
    lin.d_vs = -(e.gm + e.gds);
  } else {
    // Swapped: physical source terminal acts as the channel drain.
    const NmosEval e = nmos_square_law(p, w_over_l, vg - vd, vs - vd);
    lin.i_ds = -e.id;
    lin.d_vg = -e.gm;
    lin.d_vs = -e.gds;
    lin.d_vd = e.gm + e.gds;
  }
  return lin;
}

/// Full linearization covering both polarities.  PMOS devices are evaluated
/// as NMOS on mirrored voltages; the mirror flips the current sign while the
/// chain rule cancels the sign on the derivatives.  w_over_l is passed in so
/// the plan can hoist the division out of the Newton loop.
inline MosLinearization mos_linearize(const pdk::MosParams& params, double w_over_l, double vg,
                                      double vd, double vs) {
  if (!params.is_pmos) {
    return nmos_linearize(params, w_over_l, vg, vd, vs);
  }
  const MosLinearization mirrored = nmos_linearize(params, w_over_l, -vg, -vd, -vs);
  MosLinearization lin;
  lin.i_ds = -mirrored.i_ds;
  lin.d_vg = mirrored.d_vg;
  lin.d_vd = mirrored.d_vd;
  lin.d_vs = mirrored.d_vs;
  return lin;
}

/// Drain-to-source current only (branch-current recovery at pinned nodes,
/// residual-only evaluation in the Newton LU-bypass path).
inline double mos_current(const pdk::MosParams& params, double w_over_l, double vg, double vd,
                          double vs) {
  return mos_linearize(params, w_over_l, vg, vd, vs).i_ds;
}

}  // namespace glova::spice
