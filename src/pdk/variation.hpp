// Process-variation model and the hierarchical mismatch sampler of Eq. (3):
//
//   h(1)      ~ N(0, Sigma_Global(x))            (one draw per die)
//   h(2)_n    ~ N(h(1), Sigma_Local(x))           (per-instance draws)
//   H~_N      = { h(2)_1 ... h(2)_N }
//
// Both covariance matrices are diagonal (the paper's formulation).  Local
// sigmas follow the Pelgrom law sigma = A / sqrt(W*L), so Sigma_Local really
// is a function of the sizing vector x — shrinking a device makes it noisier.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace glova::pdk {

/// Pelgrom matching constants (units: V*m for A_VT, m for A_beta so that
/// sigma = A / sqrt(W*L) with W, L in meters gives V / relative units).
/// Defaults are representative of 28 nm bulk CMOS (A_VT ~ 2.8 mV*um).
struct PelgromConstants {
  double avt_n = 2.8e-9;   ///< NMOS Vth matching [V*m]
  double avt_p = 3.2e-9;   ///< PMOS Vth matching [V*m]
  double abeta = 0.015e-6; ///< current-factor matching [relative*m]
};

/// sigma(delta Vth) for a device of geometry w x l [m].
[[nodiscard]] double pelgrom_sigma_vth(double avt, double w, double l);

/// sigma(delta beta / beta) for a device of geometry w x l [m].
[[nodiscard]] double pelgrom_sigma_beta(double abeta, double w, double l);

/// Die-to-die (global) sigma defaults; these parameterize Sigma_Global.
struct GlobalSigmas {
  double vth = 0.020;  ///< [V] shared threshold shift per die
  double beta = 0.04;  ///< relative shared current-factor shift per die
};

/// One transistor's geometry, used to build Sigma_Local(x).
struct DeviceGeometry {
  std::string name;
  bool is_pmos = false;
  double w = 1e-6;  ///< [m]
  double l = 100e-9;  ///< [m]
};

/// Description of the r-dimensional mismatch space of a testbench.
/// Layout: coordinates 2*d and 2*d+1 are (delta_vth, delta_beta) of device d;
/// testbenches may append extra coordinates (e.g. DRAM cell/bitline spread)
/// via `extra_names` / `extra_local_sigma` / `extra_global_sigma`.
struct MismatchLayout {
  std::vector<std::string> names;
  std::vector<double> local_sigma;   ///< diag(Sigma_Local(x))^(1/2)
  std::vector<double> global_sigma;  ///< diag(Sigma_Global)^(1/2)

  [[nodiscard]] std::size_t dimension() const { return names.size(); }
};

/// Build the layout for a list of devices under the given constants.
/// `global_enabled` = false zeroes Sigma_Global (rows C / C-MC_L of Table I).
[[nodiscard]] MismatchLayout build_layout(const std::vector<DeviceGeometry>& devices,
                                          const PelgromConstants& pelgrom,
                                          const GlobalSigmas& global_sigmas, bool global_enabled);

/// How the global draw h(1) is shared across the sampled set.
enum class GlobalMode {
  Zero,       ///< h(1) = 0: corner-only or local-MC regimes
  SharedDie,  ///< Eq. (3) literal: one h(1) for the whole set (one die)
  PerSample,  ///< a fresh h(1) per sample (each sample = a different die)
};

/// Sample a mismatch-condition set H~_N per Eq. (3).
/// Each returned vector has `layout.dimension()` entries.
[[nodiscard]] std::vector<std::vector<double>> sample_mismatch_set(const MismatchLayout& layout,
                                                                   std::size_t n, Rng& rng,
                                                                   GlobalMode mode);

}  // namespace glova::pdk
