// StrongARM latch under the full industrial verification ladder.
//
// Runs the same circuit through all three regimes of Table I — corner only,
// corner + local MC, corner + global-local MC — and shows how the cost of
// robustness grows while the verified design drifts toward larger devices
// and a more conservative capacitor budget.  One RunSpec, three methods:
// the spec is the only thing that changes between regimes.
#include <cstdio>

#include "circuits/registry.hpp"
#include "core/run_spec.hpp"

int main() {
  using namespace glova;

  printf("%-10s %-8s %-12s %-12s %-10s\n", "verif", "success", "iterations", "simulations",
         "W_in (um)");
  for (const auto method : core::all_verif_methods()) {
    core::RunSpec spec;
    spec.testcase = circuits::Testcase::Sal;
    spec.method = method;
    spec.seed = 11;
    const auto result = core::make_optimizer(spec)->run();
    printf("%-10s %-8s %-12zu %-12llu %-10.3f\n", core::to_string(method),
           result.success ? "yes" : "no", result.rl_iterations,
           static_cast<unsigned long long>(result.n_simulations),
           result.success ? result.x_phys_final[1] * 1e6 : 0.0);
  }
  printf("\nExpected: simulations grow ~30 -> ~3k -> ~6k+ as the regime hardens,\n"
         "and the mismatch-aware runs prefer larger input devices (lower offset).\n");
  return 0;
}
