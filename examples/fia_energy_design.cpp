// Floating inverter amplifier: energy/noise tradeoff exploration.
//
// First sizes the FIA with GLOVA under corner + local MC — driving the
// session step by step from the outside, the way a scheduler or service
// would — then sweeps the reservoir capacitor around the verified value to
// show the energy/noise tradeoff the optimizer navigated (bigger reservoir =
// longer integration = more gain and lower input-referred error, but
// linearly more energy).
#include <cstdio>

#include "circuits/fia.hpp"
#include "circuits/registry.hpp"
#include "core/run_spec.hpp"

int main() {
  using namespace glova;

  core::RunSpec spec;
  spec.testcase = circuits::Testcase::Fia;
  spec.method = core::VerifMethod::C_MCL;
  spec.seed = 8;
  const std::unique_ptr<core::Optimizer> optimizer = core::make_optimizer(spec);

  // External control loop: one step() = one RL iteration.  The session can
  // be paused, observed, or cancelled between any two steps; run() is just
  // this loop without the progress printout.
  std::size_t steps = 0;
  while (!optimizer->done()) {
    optimizer->step();
    if (++steps % 10 == 0) {
      printf("  ... %zu iterations, %llu simulations so far\n", steps,
             static_cast<unsigned long long>(optimizer->engine()->simulation_count()));
    }
  }
  const core::GlovaResult& result = optimizer->result();
  printf("optimization: success=%s iterations=%zu simulations=%llu\n",
         result.success ? "yes" : "no", result.rl_iterations,
         static_cast<unsigned long long>(result.n_simulations));
  if (!result.success) return 1;

  const auto bench = circuits::make_testbench(circuits::Testcase::Fia);
  auto x = result.x_phys_final;
  printf("\nverified design: W_n=%.3gu W_p=%.3gu L_n=%.3gu L_p=%.3gu C_res=%.3gf C_load=%.3gf\n",
         x[circuits::FiaSizing::kWn] * 1e6, x[circuits::FiaSizing::kWp] * 1e6,
         x[circuits::FiaSizing::kLn] * 1e6, x[circuits::FiaSizing::kLp] * 1e6,
         x[circuits::FiaSizing::kCRes] * 1e15, x[circuits::FiaSizing::kCLoad] * 1e15);

  printf("\nreservoir sweep at the typical corner (energy vs noise):\n");
  printf("%-12s %-14s %-12s\n", "C_res (fF)", "energy (pJ)", "noise (mV)");
  const double c_verified = x[circuits::FiaSizing::kCRes];
  for (const double scale : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    x[circuits::FiaSizing::kCRes] = c_verified * scale;
    const auto m = bench->evaluate(x, pdk::typical_corner(), {});
    printf("%-12.2f %-14.4f %-12.4f%s\n", x[circuits::FiaSizing::kCRes] * 1e15, m[0] * 1e12,
           m[1] * 1e3, scale == 1.0 ? "   <- verified" : "");
  }
  printf("\n(energy target <= 0.1 pJ, noise target <= 130 mV)\n");
  return 0;
}
