// LTE-adaptive timestep tests: controller bookkeeping (accepted/rejected
// counters, dt trace) on a stiff clocked circuit, agreement with the fixed
// reference grid, and the process-wide step counters the evaluation engine
// surfaces.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "pdk/corner.hpp"
#include "pdk/mos_params.hpp"
#include "spice/circuit.hpp"
#include "spice/counters.hpp"
#include "spice/simulator.hpp"

namespace glova::spice {
namespace {

constexpr double kVdd = 0.9;
constexpr double kTStop = 3e-9;
constexpr double kDt = 2e-12;

/// A stiff testbench for the step controller: a two-stage CMOS inverter
/// chain driven by a sharp pulse.  The input edges force tiny steps (and
/// rejections while the controller re-learns the scale), the flat phases
/// between them let dt grow by an order of magnitude.
Circuit stiff_chain() {
  Circuit ckt;
  const auto vdd = ckt.node("vdd");
  const auto in = ckt.node("in");
  const auto mid = ckt.node("mid");
  const auto out = ckt.node("out");
  ckt.add_vsource("VDD", vdd, Circuit::ground(), Waveform::dc(kVdd));
  ckt.add_vsource("VIN", in, Circuit::ground(),
                  Waveform::pulse(0.0, kVdd, 0.2e-9, 20e-12, 20e-12, 2e-9, 5e-9));
  const pdk::PvtCorner corner = pdk::typical_corner();
  const pdk::MosParams n = pdk::mos_params(false, corner, 100e-9);
  const pdk::MosParams p = pdk::mos_params(true, corner, 100e-9);
  ckt.add_mosfet("MN1", mid, in, Circuit::ground(), n, 2e-6, 100e-9);
  ckt.add_mosfet("MP1", mid, in, vdd, p, 4e-6, 100e-9);
  ckt.add_mosfet("MN2", out, mid, Circuit::ground(), n, 2e-6, 100e-9);
  ckt.add_mosfet("MP2", out, mid, vdd, p, 4e-6, 100e-9);
  ckt.add_resistor("RL", mid, out, 10e3);
  ckt.add_capacitor("CM", mid, Circuit::ground(), 2e-15);
  ckt.add_capacitor("CL", out, Circuit::ground(), 5e-15);
  return ckt;
}

TransientSpec chain_spec() {
  TransientSpec spec;
  spec.t_stop = kTStop;
  spec.dt = kDt;
  spec.record = {"out", "mid"};
  return spec;
}

TEST(AdaptiveTimestep, FixedGridStepBookkeeping) {
  const Circuit ckt = stiff_chain();
  Simulator sim(ckt);
  const TransientResult res = sim.transient(chain_spec());
  ASSERT_TRUE(res.ok) << res.error;

  // Uniform grid: every step accepted at exactly spec.dt, none rejected,
  // and the trace sums back to t_stop.
  EXPECT_EQ(res.steps_rejected, 0u);
  EXPECT_EQ(res.steps_accepted, res.times.size() - 1);
  ASSERT_EQ(res.dt_trace.size(), res.steps_accepted);
  for (const double dt : res.dt_trace) EXPECT_NEAR(dt, kDt, 1e-18);
  const double total = std::accumulate(res.dt_trace.begin(), res.dt_trace.end(), 0.0);
  EXPECT_NEAR(total, kTStop, 1e-15);
  EXPECT_DOUBLE_EQ(res.times.back(), kTStop);
}

TEST(AdaptiveTimestep, StiffRampControllerAdaptsAndMatchesFixedGrid) {
  const Circuit ckt = stiff_chain();
  Simulator fixed_sim(ckt);
  const TransientResult fixed = fixed_sim.transient(chain_spec());
  ASSERT_TRUE(fixed.ok) << fixed.error;

  SimulatorOptions opt;
  opt.adaptive_timestep = true;
  Simulator sim(ckt, opt);
  const TransientResult res = sim.transient(chain_spec());
  ASSERT_TRUE(res.ok) << res.error;

  // Bookkeeping invariants: one recorded time per accepted step (plus t=0),
  // the dt trace tiles [0, t_stop] exactly, and the run ends on t_stop.
  EXPECT_EQ(res.times.size(), res.steps_accepted + 1);
  ASSERT_EQ(res.dt_trace.size(), res.steps_accepted);
  const double total = std::accumulate(res.dt_trace.begin(), res.dt_trace.end(), 0.0);
  EXPECT_NEAR(total, kTStop, kTStop * 1e-12);
  EXPECT_DOUBLE_EQ(res.times.back(), kTStop);

  // The controller genuinely adapts: far fewer steps than the fixed grid,
  // with at least one rejection at the sharp input edges and a dt range
  // spanning well beyond the initial step.
  EXPECT_LT(res.steps_accepted, fixed.steps_accepted / 2);
  EXPECT_GT(res.steps_rejected, 0u);
  const auto [lo, hi] = std::minmax_element(res.dt_trace.begin(), res.dt_trace.end());
  EXPECT_GE(*hi / *lo, 4.0);

  // Same endpoint physics as the fixed reference.
  for (const char* name : {"out", "mid"}) {
    EXPECT_NEAR(res.trace(name).back(), fixed.trace(name).back(), 0.02 * kVdd) << name;
  }
}

TEST(AdaptiveTimestep, ProcessCountersMirrorResultCounters) {
  const Circuit ckt = stiff_chain();
  SimulatorOptions opt;
  opt.adaptive_timestep = true;
  reset_spice_counters();
  Simulator sim(ckt, opt);
  const TransientResult res = sim.transient(chain_spec());
  ASSERT_TRUE(res.ok) << res.error;
  const SpiceCounters c = spice_counters();
  EXPECT_EQ(c.steps_accepted, res.steps_accepted);
  EXPECT_EQ(c.steps_rejected, res.steps_rejected);
  reset_spice_counters();
}

}  // namespace
}  // namespace glova::spice
