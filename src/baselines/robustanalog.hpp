// RobustAnalog baseline (He et al., MLCAD 2022 [8]): fast variation-aware
// sizing via multi-task RL, reimplemented from its published description for
// Table II.
//
// Characteristics the paper's comparison isolates:
//   - random initial sampling (no TuRBO) — the limitation PVTSizing fixed,
//   - every PVT corner is a task; k-means clustering of the corners'
//     performance signatures prunes the task set to the dominant corner of
//     each cluster, which is what gets simulated each iteration,
//   - periodic re-clustering (full corner sweeps on the incumbent design),
//   - risk-neutral critic; verification without mu-sigma or reordering.
//
// Like every optimizer here, it is a step-driven core::Optimizer session:
// one step() = one RL iteration, observable/cancelable from outside.
#pragma once

#include <memory>
#include <span>

#include "circuits/testbench.hpp"
#include "core/optimizer.hpp"

namespace glova::baselines {

struct RobustAnalogConfig {
  core::VerifMethod method = core::VerifMethod::C;
  std::string corner_filter = "all";  ///< RunSpec `corner_filter` (docs/run_spec.md)
  std::size_t n_opt_samples = 3;
  std::size_t batch_size = 10;
  std::size_t hidden = 64;
  std::size_t max_iterations = 3000;
  std::size_t random_init_samples = 20;
  std::size_t clusters = 4;             ///< dominant-corner count
  std::size_t recluster_interval = 25;  ///< iterations between corner sweeps
  std::uint64_t seed = 1;
  core::SimulationCost cost;
  core::EngineConfig engine;
};

class RobustAnalogOptimizer final : public core::Optimizer {
 public:
  RobustAnalogOptimizer(circuits::TestbenchPtr testbench, RobustAnalogConfig config);
  ~RobustAnalogOptimizer() override;

  [[nodiscard]] const char* algorithm_name() const override { return "RobustAnalog"; }
  [[nodiscard]] bool supports_state_serialization() const override { return true; }

 protected:
  void do_start() override;
  bool do_step() override;
  void do_save_state(std::ostream& os) const override;
  void do_load_state(std::istream& is) override;
  [[nodiscard]] const core::EvaluationEngine* engine_ptr() const override;
  [[nodiscard]] const core::SimulationCost& cost() const override { return config_.cost; }

 private:
  struct Session;

  /// Corner sweep of the incumbent -> k-means -> dominant corner per cluster.
  void recluster(std::span<const double> x01);

  /// Shared by do_start and do_load_state so a restored agent/verifier is
  /// configured exactly like the saved one.
  [[nodiscard]] rl::AgentConfig agent_config() const;
  [[nodiscard]] core::VerifierOptions verifier_options() const;

  circuits::TestbenchPtr testbench_;
  RobustAnalogConfig config_;
  core::OperationalConfig op_config_;
  std::unique_ptr<Session> s_;
};

}  // namespace glova::baselines
