// Table II reproduction, floating inverter amplifier block.
// Paper values from Kim et al., DAC 2025, Table II (FIA columns); cells
// marked * in the paper average only successful runs, as does our harness.
#include "bench_common.hpp"

using namespace glova;
using bench::PaperCell;

int main() {
  bench::BenchOptions options = bench::options_from_env();
  const std::vector<std::vector<PaperCell>> paper = {
      {{18, 248, 1.00, 1.00}, {26, 3203, 1.00, 1.00}, {48, 6461, 1.00, 1.00}},          // Ours
      {{48, 322, 1.71, 1.00}, {71, 87773, 26.28, 1.00}, {138, 293076, 43.53, 1.00}},    // PVTSizing
      {{533, 2151, 14.94, 1.00}, {840, 146889, 45.26, 0.95}, {1733, 361066, 55.02, 0.90}},  // RobustAnalog
  };
  bench::print_table2_block(circuits::Testcase::Fia, paper, options);
  return 0;
}
