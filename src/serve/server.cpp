#include "serve/server.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/log.hpp"
#include "common/state_io.hpp"
#include "common/text.hpp"
#include "serve/protocol.hpp"

namespace glova::serve {

namespace {

JobState job_state_from_string(const std::string& name) {
  if (name == "Running") return JobState::Running;
  if (name == "Done") return JobState::Done;
  if (name == "Failed") return JobState::Failed;
  if (name == "Cancelled") return JobState::Cancelled;
  return JobState::Queued;
}

[[nodiscard]] bool terminal(JobState state) {
  return state == JobState::Done || state == JobState::Failed || state == JobState::Cancelled;
}

}  // namespace

const char* to_string(JobState state) {
  switch (state) {
    case JobState::Queued: return "Queued";
    case JobState::Running: return "Running";
    case JobState::Done: return "Done";
    case JobState::Failed: return "Failed";
    case JobState::Cancelled: return "Cancelled";
  }
  return "?";
}

struct Server::Job {
  JobRecord record;
  JobState state = JobState::Queued;
  /// Campaign steps driven so far; atomic so STATUS reads race-free against
  /// the driving worker.
  std::atomic<std::size_t> steps{0};
  std::size_t steps_since_checkpoint = 0;  ///< worker-only
  std::atomic<bool> cancel_requested{false};
  std::unique_ptr<core::Campaign> campaign;  ///< built lazily by the worker
  std::string result_text;                   ///< terminal jobs
  std::vector<int> watchers;                 ///< WATCH subscriber sockets
};

/// CampaignObserver forwarding per-iteration events to WATCH subscribers.
/// Callbacks run on the worker thread driving the campaign (never while it
/// holds the server mutex), so locking here is deadlock-free.
class Server::WatchForwarder final : public core::CampaignObserver {
 public:
  WatchForwarder(Server* server, std::string id) : server_(server), id_(std::move(id)) {}

  void on_session_start(std::size_t index, const core::RunSpec& spec) override {
    send("EVENT " + id_ + " session-start " + std::to_string(index) + ' ' + spec.to_string());
  }
  void on_iteration(std::size_t index, const core::RunSpec&, const core::IterationTrace& trace,
                    const core::EngineStats&) override {
    send("EVENT " + id_ + " iteration " + std::to_string(index) + ' ' +
         std::to_string(trace.iteration) + " reward " +
         format_double_roundtrip(trace.reward_worst) + " sims " +
         std::to_string(trace.sims_total));
  }
  void on_session_finish(std::size_t index, const core::RunSpec&,
                         const core::GlovaResult& result) override {
    send("EVENT " + id_ + " session-finish " + std::to_string(index) + ' ' +
         state::one_line(result.termination));
  }
  void on_session_error(std::size_t index, const core::RunSpec&,
                        const std::string& error) override {
    send("EVENT " + id_ + " session-error " + std::to_string(index) + ' ' +
         state::one_line(error));
  }

 private:
  void send(const std::string& line) {
    std::lock_guard<std::mutex> lock(server_->mutex_);
    const auto it = server_->jobs_.find(id_);
    if (it != server_->jobs_.end()) server_->send_event_locked(*it->second, line);
  }

  Server* server_;
  std::string id_;
};

Server::Server(ServerConfig config)
    : config_(std::move(config)), store_(config_.spool_dir), scheduler_(config_.max_jobs) {
  if (config_.workers == 0) config_.workers = 1;
  if (config_.steps_per_quantum == 0) config_.steps_per_quantum = 1;
  if (config_.checkpoint_every_steps == 0) config_.checkpoint_every_steps = 1;
}

Server::~Server() { stop(true); }

void Server::recover_spool() {
  for (JobRecord& record : store_.load_jobs()) {
    if (jobs_.count(record.id) != 0) continue;  // stop()+start() on one Server
    auto job = std::make_unique<Job>();
    if (const auto result = store_.load_result(record.id)) {
      job->state = job_state_from_string(result->state);
      job->result_text = result->text;
    } else {
      job->state = JobState::Queued;
      scheduler_.adopt(record.tenant, record.id);
    }
    job->record = std::move(record);
    jobs_[job->record.id] = std::move(job);
  }
  next_job_number_ = store_.max_job_number() + 1;
}

void Server::start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (started_) throw std::logic_error("glova-serve: start() called twice");

  if (!config_.cache_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(config_.cache_dir, ec);
    if (ec) {
      throw std::runtime_error("glova-serve: cannot create cache dir '" + config_.cache_dir +
                               "': " + ec.message());
    }
  }

  recover_spool();

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("glova-serve: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("glova-serve: cannot bind 127.0.0.1:" +
                             std::to_string(config_.port) + ": " + std::strerror(errno));
  }
  if (::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("glova-serve: listen() failed");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);

  started_ = true;
  stopping_ = false;
  accept_thread_ = std::thread([this] { accept_loop(); });
  for (std::size_t i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  const std::size_t queued = scheduler_.queued();
  if (queued > 0) {
    log_info("glova-serve: recovered ", queued, " in-flight job(s) from ", config_.spool_dir);
    cv_work_.notify_all();
  }
  log_info("glova-serve: listening on 127.0.0.1:", port_);
}

void Server::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_shutdown_.wait(lock, [this] { return shutdown_requested_ || stopping_; });
}

bool Server::shutdown_requested() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shutdown_requested_;
}

void Server::stop(bool checkpoint) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!started_) return;
    stopping_ = true;
    shutdown_requested_ = true;
    // Unblock every blocked accept()/recv(); the threads then exit on their
    // own and are joined below.
    if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
    for (const int fd : connection_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  cv_work_.notify_all();
  cv_shutdown_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  for (std::thread& connection : connections_) {
    if (connection.joinable()) connection.join();
  }
  workers_.clear();
  connections_.clear();

  std::lock_guard<std::mutex> lock(mutex_);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (checkpoint) {
    // Graceful shutdown: persist every in-flight campaign so the next start
    // resumes without losing a single completed step.  stop(false) leaves
    // only the periodic checkpoints — the exact on-disk state of a crash.
    for (auto& [id, job] : jobs_) {
      if (terminal(job->state) || !job->campaign) continue;
      try {
        job->campaign->save_file(store_.checkpoint_path(id));
      } catch (const std::exception& e) {
        log_warn("glova-serve: final checkpoint of ", id, " failed: ", e.what());
      }
    }
  }
  started_ = false;
}

// ---------------------------------------------------------------- sockets --

void Server::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      if (fd >= 0) ::close(fd);
      return;
    }
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener gone
    }
    connection_fds_.push_back(fd);
    connections_.emplace_back([this, fd] { connection_loop(fd); });
  }
}

void Server::connection_loop(int fd) {
  LineIo io(fd);
  std::string line;
  bool watching = false;
  while (io.read_line(line)) {
    if (line.empty()) continue;
    const Request request = parse_request(line);
    if (watching) {
      io.write_line(err_line("connection is in watch mode"));
      continue;
    }
    if (request.verb == "SUBMIT") {
      handle_submit(fd, request.rest);
    } else if (request.verb == "STATUS" && request.args.size() == 1) {
      handle_status(fd, request.args[0]);
    } else if (request.verb == "RESULT" && request.args.size() == 1) {
      handle_result(fd, request.args[0]);
    } else if (request.verb == "WATCH" && request.args.size() == 1) {
      handle_watch(fd, request.args[0], watching);
    } else if (request.verb == "CANCEL" && request.args.size() == 1) {
      handle_cancel(fd, request.args[0]);
    } else if (request.verb == "LIST" && request.args.empty()) {
      handle_list(fd);
    } else if (request.verb == "SHUTDOWN" && request.args.empty()) {
      io.write_line(ok_line("shutting-down"));
      std::lock_guard<std::mutex> lock(mutex_);
      shutdown_requested_ = true;
      cv_shutdown_.notify_all();
    } else {
      io.write_line(err_line("bad request: " + line +
                             " (expected SUBMIT/STATUS/RESULT/WATCH/CANCEL/LIST/SHUTDOWN)"));
    }
  }
  // Connection gone: drop any watch registration, then close.
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [id, job] : jobs_) {
    auto& watchers = job->watchers;
    watchers.erase(std::remove(watchers.begin(), watchers.end(), fd), watchers.end());
  }
  connection_fds_.erase(std::remove(connection_fds_.begin(), connection_fds_.end(), fd),
                        connection_fds_.end());
  ::close(fd);
}

// --------------------------------------------------------------- handlers --

void Server::handle_submit(int fd, const std::string& rest) {
  const std::vector<std::string> tokens = split_tokens(rest);
  if (tokens.empty()) {
    LineIo::write_line(fd, err_line("SUBMIT needs: SUBMIT <tenant> <sweep-spec>"));
    return;
  }
  const std::string& tenant = tokens[0];
  const std::size_t spec_at = rest.find(tenant) + tenant.size();
  const std::string spec_text = rest.substr(std::min(spec_at, rest.size()));

  core::SweepSpec sweep;
  try {
    sweep = core::SweepSpec::from_string(spec_text);
    for (const core::RunSpec& spec : sweep.expand()) spec.validate();
  } catch (const std::exception& e) {
    LineIo::write_line(fd, err_line(std::string("bad spec: ") + e.what()));
    return;
  }

  std::lock_guard<std::mutex> lock(mutex_);
  char id_buf[32];
  std::snprintf(id_buf, sizeof(id_buf), "job-%06llu",
                static_cast<unsigned long long>(next_job_number_));
  const std::string id = id_buf;
  if (const auto rejection = scheduler_.admit(tenant, id)) {
    LineIo::write_line(fd, err_line(*rejection));
    return;
  }
  ++next_job_number_;
  auto job = std::make_unique<Job>();
  job->record = JobRecord{id, tenant, sweep.to_string()};
  try {
    store_.save_job(job->record);
  } catch (const std::exception& e) {
    scheduler_.release();
    LineIo::write_line(fd, err_line(std::string("spool write failed: ") + e.what()));
    return;
  }
  jobs_[id] = std::move(job);
  cv_work_.notify_one();
  LineIo::write_line(fd, ok_line(id));
}

void Server::handle_status(int fd, const std::string& id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    LineIo::write_line(fd, err_line("unknown job " + id));
    return;
  }
  const Job& job = *it->second;
  LineIo::write_line(fd, ok_line(id + ' ' + to_string(job.state) +
                                 " steps=" + std::to_string(job.steps.load()) +
                                 " tenant=" + job.record.tenant));
}

void Server::handle_result(int fd, const std::string& id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    LineIo::write_line(fd, err_line("unknown job " + id));
    return;
  }
  const Job& job = *it->second;
  if (!terminal(job.state)) {
    LineIo::write_line(fd, err_line("job " + id + " not finished (state " +
                                    to_string(job.state) + ")"));
    return;
  }
  LineIo::write_line(fd, ok_line(id + ' ' + to_string(job.state)));
  std::string text = job.result_text;
  while (!text.empty() && text.back() == '\n') text.pop_back();
  if (!text.empty()) LineIo::write_line(fd, text);
  LineIo::write_line(fd, kEndLine);
}

void Server::handle_cancel(int fd, const std::string& id) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    LineIo::write_line(fd, err_line("unknown job " + id));
    return;
  }
  Job& job = *it->second;
  if (terminal(job.state)) {
    LineIo::write_line(fd, err_line("job " + id + " already terminal (state " +
                                    to_string(job.state) + ")"));
    return;
  }
  job.cancel_requested = true;
  if (job.state == JobState::Queued && scheduler_.remove(id)) {
    retire_job(lock, job, JobState::Cancelled, "");
    LineIo::write_line(fd, ok_line(id + " Cancelled"));
    return;
  }
  // Mid-quantum: the worker observes the flag at the next quantum boundary.
  LineIo::write_line(fd, ok_line(id + " cancelling"));
}

void Server::handle_list(int fd) {
  std::lock_guard<std::mutex> lock(mutex_);
  LineIo::write_line(fd, ok_line(std::to_string(jobs_.size())));
  for (const auto& [id, job] : jobs_) {
    LineIo::write_line(fd, "JOB " + id + ' ' + job->record.tenant + ' ' +
                               to_string(job->state) +
                               " steps=" + std::to_string(job->steps.load()));
  }
  LineIo::write_line(fd, kEndLine);
}

void Server::handle_watch(int fd, const std::string& id, bool& watching) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    LineIo::write_line(fd, err_line("unknown job " + id));
    return;
  }
  Job& job = *it->second;
  LineIo::write_line(fd, ok_line("watching " + id));
  if (terminal(job.state)) {
    LineIo::write_line(fd, "EVENT " + id + " done " + to_string(job.state));
    LineIo::write_line(fd, kEndLine);
    return;
  }
  job.watchers.push_back(fd);
  watching = true;
}

// ---------------------------------------------------------------- workers --

void Server::worker_loop() {
  for (;;) {
    std::string id;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_work_.wait(lock, [this] { return stopping_ || scheduler_.queued() > 0; });
      if (stopping_) return;
      const auto next = scheduler_.next();
      if (!next) continue;
      id = *next;
    }
    run_quantum(id);
  }
}

void Server::run_quantum(const std::string& id) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return;
  Job& job = *it->second;
  if (terminal(job.state)) return;
  if (job.cancel_requested) {
    retire_job(lock, job, JobState::Cancelled, "");
    return;
  }
  job.state = JobState::Running;
  lock.unlock();

  // Campaign construction and stepping run without the lock: this is the
  // expensive part, and observer callbacks re-enter the server to reach
  // WATCH subscribers.
  std::string error;
  if (!job.campaign) {
    try {
      const std::string checkpoint = store_.checkpoint_path(id);
      if (std::filesystem::exists(checkpoint)) {
        job.campaign = std::make_unique<core::Campaign>(
            core::Campaign::load_file(checkpoint, config_.make_testbench));
        log_info("glova-serve: ", id, " resumed from checkpoint");
      } else {
        core::CampaignConfig campaign_config;
        campaign_config.make_testbench = config_.make_testbench;
        campaign_config.cache_dir = config_.cache_dir;
        job.campaign = std::make_unique<core::Campaign>(
            core::SweepSpec::from_string(job.record.spec_text), campaign_config);
      }
      job.campaign->add_observer(std::make_shared<WatchForwarder>(this, id));
    } catch (const std::exception& e) {
      error = e.what();
    }
  }

  bool done = false;
  if (error.empty()) {
    try {
      for (std::size_t i = 0; i < config_.steps_per_quantum; ++i) {
        if (!job.campaign->step()) {
          done = true;
          break;
        }
        ++job.steps;
        if (++job.steps_since_checkpoint >= config_.checkpoint_every_steps) {
          job.campaign->save_file(store_.checkpoint_path(id));
          job.steps_since_checkpoint = 0;
        }
        if (job.cancel_requested) break;
      }
    } catch (const std::exception& e) {
      // Campaign-level failures (session errors are isolated inside the
      // campaign; reaching here means the campaign itself is broken).
      error = e.what();
    }
  }

  lock.lock();
  if (!error.empty()) {
    retire_job(lock, job, JobState::Failed, "error " + state::one_line(error) + '\n');
  } else if (done) {
    retire_job(lock, job, JobState::Done, format_campaign_result(job.campaign->result()));
  } else if (job.cancel_requested) {
    retire_job(lock, job, JobState::Cancelled, "");
  } else if (stopping_) {
    job.state = JobState::Queued;  // stop(true) checkpoints it below
  } else {
    job.state = JobState::Queued;
    scheduler_.requeue(job.record.tenant, id);
    cv_work_.notify_one();
  }
}

void Server::retire_job(std::unique_lock<std::mutex>& /*lock*/, Job& job, JobState state,
                        std::string result_text) {
  job.state = state;
  job.result_text = std::move(result_text);
  try {
    store_.save_result(job.record.id, to_string(state), job.result_text);
    store_.remove_checkpoint(job.record.id);
  } catch (const std::exception& e) {
    log_warn("glova-serve: persisting result of ", job.record.id, " failed: ", e.what());
  }
  scheduler_.release();
  send_event_locked(job, "EVENT " + job.record.id + " done " + to_string(state));
  for (const int fd : job.watchers) LineIo::write_line(fd, kEndLine);
  job.watchers.clear();
  job.campaign.reset();
}

void Server::send_event_locked(Job& job, const std::string& line) {
  for (const int fd : job.watchers) LineIo::write_line(fd, line);
}

}  // namespace glova::serve
