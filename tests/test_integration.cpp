// End-to-end integration tests: full GLOVA runs and baseline runs on the
// real testbenches, determinism, and ablation wiring.
#include <gtest/gtest.h>

#include "baselines/pvtsizing.hpp"
#include "baselines/robustanalog.hpp"
#include "circuits/registry.hpp"
#include "core/optimizer.hpp"
#include "core/reward.hpp"
#include "pdk/variation.hpp"

namespace glova {
namespace {

TEST(GlovaIntegration, SalCornerOnlySucceeds) {
  core::GlovaConfig cfg;
  cfg.method = core::VerifMethod::C;
  cfg.seed = 1;
  core::GlovaOptimizer opt(circuits::make_testbench(circuits::Testcase::Sal), cfg);
  const auto res = opt.run();
  ASSERT_TRUE(res.success) << res.termination;
  EXPECT_EQ(res.termination, "verified");
  EXPECT_GT(res.rl_iterations, 0u);
  EXPECT_GT(res.n_simulations, 30u);  // at least init + one full verification
  EXPECT_FALSE(res.x01_final.empty());
  EXPECT_FALSE(res.trace.empty());

  // The returned design really does satisfy every corner.
  const auto tb = circuits::make_testbench(circuits::Testcase::Sal);
  for (const auto& corner : pdk::full_corner_set()) {
    const auto m = tb->evaluate(res.x_phys_final, corner, {});
    EXPECT_TRUE(core::all_constraints_met(tb->performance(), m)) << corner.name();
  }
}

TEST(GlovaIntegration, DeterministicForFixedSeed) {
  core::GlovaConfig cfg;
  cfg.method = core::VerifMethod::C;
  cfg.seed = 5;
  const auto tb = circuits::make_testbench(circuits::Testcase::Fia);
  const auto a = core::GlovaOptimizer(tb, cfg).run();
  const auto b = core::GlovaOptimizer(tb, cfg).run();
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.rl_iterations, b.rl_iterations);
  EXPECT_EQ(a.n_simulations, b.n_simulations);
  EXPECT_EQ(a.x01_final, b.x01_final);
}

TEST(GlovaIntegration, FiaLocalMcSucceedsAndCountsVerificationSims) {
  core::GlovaConfig cfg;
  cfg.method = core::VerifMethod::C_MCL;
  cfg.seed = 2;
  core::GlovaOptimizer opt(circuits::make_testbench(circuits::Testcase::Fia), cfg);
  const auto res = opt.run();
  ASSERT_TRUE(res.success);
  // A successful run must include one full verification (~3,000 sims).
  EXPECT_GE(res.n_simulations, 3000u);
  // Trace bookkeeping: cumulative sims are non-decreasing.
  for (std::size_t i = 1; i < res.trace.size(); ++i) {
    EXPECT_GE(res.trace[i].sims_total, res.trace[i - 1].sims_total);
  }
}

TEST(GlovaIntegration, TraceExposesCriticBound) {
  core::GlovaConfig cfg;
  cfg.method = core::VerifMethod::C_MCL;
  cfg.seed = 3;
  core::GlovaOptimizer opt(circuits::make_testbench(circuits::Testcase::Sal), cfg);
  const auto res = opt.run();
  ASSERT_FALSE(res.trace.empty());
  for (const auto& t : res.trace) {
    // Risk-adjusted bound never exceeds the ensemble mean (beta1 < 0).
    EXPECT_LE(t.critic_bound, t.critic_mean + 1e-12);
  }
}

TEST(GlovaIntegration, AblationFlagsRun) {
  for (const bool ec : {true, false}) {
    core::GlovaConfig cfg;
    cfg.method = core::VerifMethod::C;
    cfg.seed = 4;
    cfg.use_ensemble_critic = ec;
    cfg.use_mu_sigma = ec;
    cfg.use_reordering = !ec;
    core::GlovaOptimizer opt(circuits::make_testbench(circuits::Testcase::Sal), cfg);
    const auto res = opt.run();
    EXPECT_TRUE(res.success) << "ec=" << ec;
  }
}

TEST(Baselines, PvtSizingSalCornerOnlySucceedsWithMoreSims) {
  baselines::PvtSizingConfig cfg;
  cfg.method = core::VerifMethod::C;
  cfg.seed = 1;
  const auto res =
      baselines::PvtSizingOptimizer(circuits::make_testbench(circuits::Testcase::Sal), cfg).run();
  ASSERT_TRUE(res.success);
  // Batch sampling simulates all 30 corners each iteration, so its per-
  // iteration simulation bill is ~30x GLOVA's single-worst-corner bill.
  EXPECT_GE(res.n_simulations, 30u * res.rl_iterations);
}

TEST(Baselines, RobustAnalogSalCornerOnlySucceeds) {
  baselines::RobustAnalogConfig cfg;
  cfg.method = core::VerifMethod::C;
  cfg.seed = 1;
  const auto res =
      baselines::RobustAnalogOptimizer(circuits::make_testbench(circuits::Testcase::Sal), cfg)
          .run();
  ASSERT_TRUE(res.success);
  EXPECT_EQ(res.termination, "verified");
}

TEST(Baselines, ResultsAreDeterministic) {
  baselines::RobustAnalogConfig cfg;
  cfg.method = core::VerifMethod::C;
  cfg.seed = 9;
  const auto tb = circuits::make_testbench(circuits::Testcase::Sal);
  const auto a = baselines::RobustAnalogOptimizer(tb, cfg).run();
  const auto b = baselines::RobustAnalogOptimizer(tb, cfg).run();
  EXPECT_EQ(a.rl_iterations, b.rl_iterations);
  EXPECT_EQ(a.n_simulations, b.n_simulations);
}

TEST(ModeledRuntime, ScalesWithSimulationsAndIterations) {
  core::GlovaConfig cfg;
  cfg.method = core::VerifMethod::C;
  cfg.seed = 1;
  core::GlovaOptimizer opt(circuits::make_testbench(circuits::Testcase::Sal), cfg);
  const auto res = opt.run();
  EXPECT_NEAR(res.modeled_runtime,
              static_cast<double>(res.n_simulations) * cfg.cost.per_simulation +
                  static_cast<double>(res.rl_iterations) * cfg.cost.per_rl_iteration,
              1e-9);
}

}  // namespace
}  // namespace glova
