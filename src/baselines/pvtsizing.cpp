#include "baselines/pvtsizing.hpp"

#include <algorithm>
#include <chrono>
#include <limits>

#include "core/reward.hpp"
#include "core/verifier.hpp"
#include "opt/turbo.hpp"
#include "pdk/variation.hpp"
#include "rl/agent.hpp"

namespace glova::baselines {

using core::kSuccessReward;

PvtSizingOptimizer::PvtSizingOptimizer(circuits::TestbenchPtr testbench, PvtSizingConfig config)
    : testbench_(std::move(testbench)),
      config_(config),
      op_config_(core::OperationalConfig::for_method(config.method, config.n_opt_samples)) {}

core::GlovaResult PvtSizingOptimizer::run() {
  const auto t0 = std::chrono::steady_clock::now();
  core::GlovaResult result;
  core::EvaluationEngine service(testbench_, config_.engine);
  const circuits::SizingSpec& sizing = testbench_->sizing();
  const circuits::PerformanceSpec& spec = testbench_->performance();
  const std::size_t p = sizing.dimension();
  Rng rng(config_.seed);

  // --- TuRBO initial sampling at the typical condition (shared with GLOVA).
  opt::TurboConfig turbo_cfg;
  turbo_cfg.n_init = std::max<std::size_t>(8, p);
  opt::Turbo turbo(p, turbo_cfg, rng.split(0x7B0));
  const pdk::PvtCorner typical = pdk::typical_corner();
  const std::size_t turbo_min = std::min<std::size_t>(turbo_cfg.n_init + 4, config_.turbo_budget);
  while (service.simulation_count() < config_.turbo_budget) {
    const auto points = turbo.ask(1);
    std::vector<double> values;
    for (const auto& x01 : points) {
      const auto x = sizing.denormalize(x01);
      values.push_back(core::reward_from_metrics(spec, service.evaluate_one(x, typical, {})));
    }
    turbo.tell(points, values);
    if (turbo.best_value() >= kSuccessReward && service.simulation_count() >= turbo_min) break;
  }
  result.turbo_evaluations = service.simulation_count();

  // --- risk-neutral agent: single critic, beta1 = 0.
  rl::AgentConfig agent_cfg;
  agent_cfg.critic.ensemble_size = 1;
  agent_cfg.critic.beta1 = 0.0;
  agent_cfg.critic.hidden = config_.hidden;
  agent_cfg.hidden = config_.hidden;
  agent_cfg.batch_size = config_.batch_size;
  rl::RiskSensitiveAgent agent(p, agent_cfg, rng.split(0xA6E7));

  rl::WorstCaseReplayBuffer buffer;
  rl::LastWorstBuffer last_worst(op_config_.corner_count());

  const auto sample_conditions = [&](std::span<const double> x_phys, std::size_t n,
                                     Rng& stream) -> std::vector<std::vector<double>> {
    if (!op_config_.has_mismatch()) return std::vector<std::vector<double>>(n);
    const auto layout = testbench_->mismatch_layout(x_phys, op_config_.global_mismatch);
    return pdk::sample_mismatch_set(layout, n, stream, op_config_.sampling_mode());
  };
  const auto worst_reward_of = [&](const std::vector<std::vector<double>>& metrics) {
    double worst = std::numeric_limits<double>::max();
    for (const auto& m : metrics) worst = std::min(worst, core::reward_from_metrics(spec, m));
    return worst;
  };

  // Verification without the mu-sigma gate or reordering.
  core::VerifierOptions vopts;
  vopts.use_mu_sigma = false;
  vopts.use_reordering = false;
  core::Verifier verifier(service, op_config_, vopts);

  std::vector<double> x_last = turbo.best_point();
  if (x_last.empty()) x_last = rng.uniform_vector(p, 0.0, 1.0);
  buffer.add(x_last, 0.0);
  Rng mc_rng = rng.split(0x3C3C);
  result.termination = "iteration-cap";

  for (std::size_t iter = 1; iter <= config_.max_iterations; ++iter) {
    std::vector<double> x_new = agent.propose(x_last);
    const auto x_phys = sizing.denormalize(x_new);

    // Batch sampling: every corner, every iteration.
    double r_worst = std::numeric_limits<double>::max();
    for (std::size_t j = 0; j < op_config_.corner_count(); ++j) {
      const auto hs = sample_conditions(x_phys, op_config_.n_opt, mc_rng);
      const auto metrics = service.evaluate_batch(x_phys, op_config_.corners[j], hs);
      const double w = worst_reward_of(metrics);
      last_worst.update(j, w);
      r_worst = std::min(r_worst, w);
    }

    if (r_worst == kSuccessReward) {
      const core::VerificationOutcome outcome = verifier.verify(x_phys, last_worst, mc_rng);
      for (const auto& [j, w] : outcome.corner_worst_rewards) {
        last_worst.update(j, w);
        r_worst = std::min(r_worst, w);
      }
      if (outcome.passed) {
        result.success = true;
        result.rl_iterations = iter;
        result.x01_final = x_new;
        result.x_phys_final = x_phys;
        result.termination = "verified";
        break;
      }
    }

    buffer.add(x_new, r_worst);
    (void)agent.update(buffer);  // standard DDPG: one update per environment step
    x_last = std::move(x_new);
    if (const auto best = buffer.best(); best && r_worst < best->reward - 0.05) {
      x_last = best->x01;
    }
    result.rl_iterations = iter;
  }

  const core::EngineStats eval_stats = service.stats();
  result.n_simulations = eval_stats.requested;
  result.n_simulations_executed = eval_stats.executed;
  result.n_cache_hits = eval_stats.cache_hits;
  result.wall_seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  result.modeled_runtime =
      static_cast<double>(result.n_simulations) * config_.cost.per_simulation +
      static_cast<double>(result.rl_iterations) * config_.cost.per_rl_iteration;
  return result;
}

}  // namespace glova::baselines
