// k-means with k-means++ seeding.  RobustAnalog [8] clusters PVT corners by
// their performance signatures and only simulates the dominant corner of
// each cluster — the multi-task pruning GLOVA is compared against.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"

namespace glova::opt {

struct KMeansResult {
  std::vector<std::size_t> assignment;          ///< point -> cluster
  std::vector<std::vector<double>> centroids;   ///< k centroids
  double inertia = 0.0;                          ///< sum of squared distances
  std::size_t iterations = 0;
};

/// Cluster `points` into k groups (k <= points.size()).
[[nodiscard]] KMeansResult kmeans(const std::vector<std::vector<double>>& points, std::size_t k,
                                  Rng& rng, std::size_t max_iterations = 100);

/// Squared Euclidean distance (exposed for tests).
[[nodiscard]] double squared_distance(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace glova::opt
