// Table III reproduction: ablation study on the OCSA+SH DRAM core.
//
// Rows: full GLOVA, w/o ensemble critic (single risk-neutral base model),
// w/o mu-sigma evaluation (always fully verify once the pre-samples pass),
// w/o simulation reordering (natural corner/MC order).  The paper's "-"
// cells (w/o mu-sigma and w/o SR under C) are printed as n/a: under
// corner-only verification there is nothing for those components to save.
// Paper values from Kim et al., DAC 2025, Table III.
#include <cmath>
#include <cstdint>
#include <cstdio>

#include "bench_common.hpp"

using namespace glova;

namespace {

struct AblationRow {
  const char* label;
  bool ec;        // ensemble critic
  bool mu_sigma;  // mu-sigma evaluation
  bool sr;        // simulation reordering
  // paper {iterations, sims} per verification method (C, C-MC_L, C-MC_G-L);
  // negative = the paper's "-" cell.
  double paper_it[3];
  double paper_sims[3];
};

}  // namespace

int main() {
  bench::BenchOptions options = bench::options_from_env();
  const AblationRow rows[] = {
      {"Proposed", true, true, true, {21, 84, 129}, {390, 6916, 72853}},
      {"w/o EC", false, true, true, {26, 92, 199}, {1218, 18232, 212153}},
      {"w/o mu-sigma", true, false, true, {-1, 101, 239}, {-1, 136217, 476721}},
      {"w/o SR", true, true, false, {-1, -1, -1}, {2448, 253738, 765375}},
  };
  const auto verifs = core::all_verif_methods();

  printf("Table III — ablation study on the OCSA+SH DRAM core (%zu seeds, cap %zu)\n",
         options.seeds, options.max_iterations);
  printf("%-14s | %-26s | %-26s | %-26s\n", "", "C", "C-MC_L", "C-MC_G-L");
  printf("%-14s | %-8s %-8s %-8s | %-8s %-8s %-8s | %-8s %-8s %-8s\n", "variant", "it(p)",
         "it", "succ", "it(p)", "it", "succ", "it(p)", "it", "succ");

  std::vector<std::vector<bench::CellStats>> all;
  for (const AblationRow& row : rows) {
    bench::BenchOptions opt = options;
    opt.use_ensemble_critic = row.ec;
    opt.use_mu_sigma = row.mu_sigma;
    opt.use_reordering = row.sr;
    std::vector<bench::CellStats> cells;
    for (const auto v : verifs) {
      cells.push_back(bench::run_cell(bench::Method::Glova, circuits::Testcase::DramOcsa, v, opt));
    }
    all.push_back(cells);
    printf("%-14s |", row.label);
    for (std::size_t vi = 0; vi < verifs.size(); ++vi) {
      if (row.paper_it[vi] < 0) {
        printf(" %-8s %-8.4g %-8.2f |", "-", cells[vi].mean_iterations, cells[vi].success_rate);
      } else {
        printf(" %-8.4g %-8.4g %-8.2f |", row.paper_it[vi], cells[vi].mean_iterations,
               cells[vi].success_rate);
      }
    }
    printf("\n");
  }

  printf("\n# Simulation (paper vs ours)\n");
  for (std::size_t ri = 0; ri < 4; ++ri) {
    printf("%-14s |", rows[ri].label);
    for (std::size_t vi = 0; vi < verifs.size(); ++vi) {
      if (rows[ri].paper_sims[vi] < 0) {
        printf(" %-10s %-10.6g |", "-", all[ri][vi].mean_simulations);
      } else {
        printf(" %-10.6g %-10.6g |", rows[ri].paper_sims[vi], all[ri][vi].mean_simulations);
      }
    }
    printf("\n");
  }
  printf("\nExpected shape: every ablation raises simulations; w/o EC raises iterations most;\n"
         "w/o mu-sigma and w/o SR blow up the verification-phase simulation count.\n");

  // Speculative-evaluation axis (docs/architecture.md#speculative-evaluation):
  // the surrogate is not a paper ablation, so it gets its own section — same
  // cell run with engine.surrogate off and on, reporting the executed-
  // simulation savings the funnel bought and the result drift it cost.
  // Behavioral SAL keeps the cell fast enough to run per seed.
  printf("\nSpeculative evaluation — surrogate pre-ranking (SAL behavioral, C-MC_L)\n");
  printf("%-5s | %-10s %-10s %-8s | %-10s %-10s %-8s | %s\n", "seed", "exec(off)", "exec(on)",
         "saved%", "worst(off)", "worst(on)", "drift%", "band");
  const double kDriftBandPct = 5.0;  // documented tolerance band
  double worst_drift = 0.0;
  for (std::uint64_t seed = 1; seed <= options.seeds; ++seed) {
    core::RunSpec spec;
    spec.testcase = circuits::Testcase::Sal;
    spec.backend = circuits::Backend::Behavioral;
    spec.method = core::VerifMethod::C_MCL;
    spec.seed = seed;
    spec.max_iterations = options.max_iterations;

    core::RunSpec on = spec;
    on.engine.surrogate = true;

    const core::GlovaResult off_result = core::make_optimizer(spec)->run();
    const core::GlovaResult on_result = core::make_optimizer(on)->run();

    const double exec_off = static_cast<double>(off_result.engine_stats.executed);
    const double exec_on = static_cast<double>(on_result.engine_stats.executed);
    const double saved_pct = exec_off > 0.0 ? 100.0 * (exec_off - exec_on) / exec_off : 0.0;
    const double worst_off =
        off_result.trace.empty() ? 0.0 : off_result.trace.back().reward_worst;
    const double worst_on = on_result.trace.empty() ? 0.0 : on_result.trace.back().reward_worst;
    const double denom = std::abs(worst_off) > 1e-12 ? std::abs(worst_off) : 1e-12;
    const double drift_pct = 100.0 * std::abs(worst_on - worst_off) / denom;
    if (drift_pct > worst_drift) worst_drift = drift_pct;
    printf("%-5llu | %-10.6g %-10.6g %-8.3g | %-10.6g %-10.6g %-8.3g | %s\n",
           static_cast<unsigned long long>(seed), exec_off, exec_on, saved_pct, worst_off,
           worst_on, drift_pct, drift_pct <= kDriftBandPct ? "PASS" : "WARN");
  }
  printf("Drift band: worst final-design reward within %.3g%% of the surrogate-off run\n"
         "(worst observed %.3g%%; WARN = speculation cost exceeded the documented band).\n",
         kDriftBandPct, worst_drift);
  return 0;
}
