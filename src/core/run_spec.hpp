// Declarative run description: everything needed to launch one optimization
// session, in one validatable, serializable value.
//
//   core::RunSpec spec;
//   spec.testcase = circuits::Testcase::Sal;
//   spec.algorithm = core::Algorithm::Glova;
//   spec.method = core::VerifMethod::C_MCL;
//   spec.budget.max_simulations = 10'000;
//   auto opt = core::make_optimizer(spec);      // validated + budgeted
//   while (!opt->done()) opt->step();
//
// RunSpec is the control-plane contract: frontends enumerate runnable
// scenarios via circuits::available_backends, validate() rejects impossible
// combinations with a message listing the supported ones, and the
// to_string()/from_string() round-trip gives queue/CLI/log representations
// one canonical "key=value ..." form.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "circuits/registry.hpp"
#include "core/config.hpp"
#include "core/evaluation_engine.hpp"
#include "core/optimizer_base.hpp"

namespace glova::core {

enum class Algorithm { Glova, PvtSizing, RobustAnalog };

[[nodiscard]] const char* to_string(Algorithm algorithm);
[[nodiscard]] std::optional<Algorithm> algorithm_from_string(std::string_view name);

/// All algorithms in Table II row order.
[[nodiscard]] std::vector<Algorithm> all_algorithms();

/// One declarative run description.  Full key=value grammar, defaults, and
/// validation rules: docs/run_spec.md.
struct RunSpec {
  circuits::Testcase testcase = circuits::Testcase::Sal;      ///< circuit under design
  circuits::Backend backend = circuits::Backend::Behavioral;  ///< evaluator backend
  Algorithm algorithm = Algorithm::Glova;                     ///< Table II row
  VerifMethod method = VerifMethod::C;                        ///< Table I column
  /// Restriction on the method's predefined corner set: "all" (the method's
  /// own set) or "cold_lv" (only the coldest low-voltage condition — the
  /// corner the EKV model exists for; see docs/run_spec.md).
  std::string corner_filter = "all";
  std::uint64_t seed = 1;  ///< root seed; fixed seeds give bit-identical runs
  std::size_t max_iterations = 3000;  ///< the algorithm's own success-rate cap
  std::size_t n_opt_samples = 3;      ///< N' (paper: parallel sample size 3)
  /// GLOVA ablation switches (Table III); ignored by the baselines, which
  /// are inherently "without" all three.
  bool use_ensemble_critic = true;
  bool use_mu_sigma = true;
  bool use_reordering = true;
  RunBudget budget;      ///< cross-algorithm simulation/iteration/wall limits
  SimulationCost cost;   ///< modeled-runtime accounting
  EngineConfig engine;   ///< evaluation-stack knobs (parallelism, cache, ...)
  bool progress_log = false;  ///< attach a ProgressLogObserver

  /// Throws std::invalid_argument (with the reason and, for backend
  /// mismatches, the list of supported combinations) when the spec cannot
  /// be run.
  void validate() const;

  /// Canonical one-line "key=value key=value ..." form; from_string() parses
  /// it back losslessly (doubles round-trip via max_digits10).  The grammar,
  /// every key, defaults, and validation errors are documented in
  /// docs/run_spec.md.
  [[nodiscard]] std::string to_string() const;
  static RunSpec from_string(std::string_view text);  ///< throws on bad input

  friend bool operator==(const RunSpec&, const RunSpec&) = default;
};

/// Every key emitted by RunSpec::to_string() and accepted by from_string(),
/// in canonical emission order.  This is the machine-readable index of the
/// grammar: docs/run_spec.md documents each key, and tests/test_docs.cpp
/// asserts the doc and this list stay in sync.
[[nodiscard]] const std::vector<std::string_view>& run_spec_keys();

/// Build a ready-to-step session for the spec: validates, constructs the
/// testbench through the registry, wires the algorithm's config, applies the
/// budget, and attaches the requested built-in observers.
[[nodiscard]] std::unique_ptr<Optimizer> make_optimizer(const RunSpec& spec);

/// Same, but on a caller-supplied testbench (custom circuits); the spec's
/// testcase/backend fields are ignored (the registry is not consulted), all
/// remaining fields are validated as usual.
[[nodiscard]] std::unique_ptr<Optimizer> make_optimizer(const RunSpec& spec,
                                                        circuits::TestbenchPtr testbench);

}  // namespace glova::core
