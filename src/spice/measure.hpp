// Waveform post-processing: the .measure equivalents the testbenches use to
// turn transient traces into performance metrics (delays, swings, energy).
#pragma once

#include <optional>
#include <span>

namespace glova::spice {

enum class CrossDirection { Rising, Falling, Either };

/// First time `values` crosses `threshold` after `t_start` (linear
/// interpolation between samples).  Returns nullopt if it never does.
[[nodiscard]] std::optional<double> first_crossing(std::span<const double> times,
                                                   std::span<const double> values, double threshold,
                                                   CrossDirection direction, double t_start = 0.0);

/// Trapezoidal integral of `values` over `times` within [t0, t1].
[[nodiscard]] double integrate(std::span<const double> times, std::span<const double> values,
                               double t0, double t1);

/// Value at (or linearly interpolated around) time `t`.
[[nodiscard]] double value_at(std::span<const double> times, std::span<const double> values,
                              double t);

/// Extremes within [t0, t1].
[[nodiscard]] double min_in_window(std::span<const double> times, std::span<const double> values,
                                   double t0, double t1);
[[nodiscard]] double max_in_window(std::span<const double> times, std::span<const double> values,
                                   double t0, double t1);

/// Energy delivered by a supply: -integral(v * i) dt over [t0, t1]
/// (the source current convention makes delivered energy positive).
[[nodiscard]] double supply_energy(std::span<const double> times, std::span<const double> currents,
                                   double vdd, double t0, double t1);

}  // namespace glova::spice
