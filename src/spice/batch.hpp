// Batched mismatch-draw evaluator: march N structurally congruent circuits
// (same topology, element order, and node order — only parameter values,
// capacitances, and source waveforms differing, i.e. mismatch draws of one
// (design, corner) cell) through a single transient in lockstep.
//
// Per Newton iteration the batch runs one structure-of-arrays pass:
//   1. per-lane linear load (memcpy of each lane's cached static matrix),
//   2. a device-major MOSFET companion pass — every lane of device 0, then
//      every lane of device 1, ... — so the model evaluation streams through
//      lane-strided solution buffers instead of jumping matrix to matrix,
//   3. per-lane fused LU factor+solve and the damped update.
// Within a lane the arithmetic (order included) is exactly the scalar
// Simulator's Newton iteration, so with adaptive stepping and bypass off a
// batched run is bit-identical to N sequential runs.  Converged lanes freeze
// (their iterate is no longer touched) while the rest keep iterating; a lane
// whose solve fails is isolated — its TransientResult reports the error and
// the remaining lanes finish normally.
//
// Newton LU-bypass (SimulatorOptions::newton_bypass): each lane retains its
// last LU factorization across iterations and timesteps and iterates chord
// Newton on the true nonlinear residual (StampPlan::residual) — an O(n^2)
// matvec + back-substitution instead of the O(n^3) refactor.  Every chord
// iteration checks the residual; if it fails to halve, or the update stalls
// with the residual still large, the lane falls back to a full stamp +
// refactor for that iteration and the chord resumes from the fresh factors.
//
// With SimulatorOptions::adaptive_timestep the controller of the scalar
// Simulator runs once for the whole batch on a union grid: every lane is
// solved at the same tentative step, the worst per-lane LTE ratio decides
// accept/reject, and all live lanes advance (or redo) together, so traces
// share one time axis across the batch.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "spice/circuit.hpp"
#include "spice/lu.hpp"
#include "spice/simulator.hpp"

namespace glova::spice {

/// Lane-strided structure-of-arrays state for the batched Newton loop: the
/// padded solution buffers hold lane l at [l * x_stride, l * x_stride +
/// padded), rounded up so lanes start on cache-line boundaries.  Every
/// buffer is fully overwritten by BatchSimulator::transient, so one
/// workspace can be reused across groups of any shape; like
/// SimulatorWorkspace it is single-threaded state — use one per thread.
struct BatchWorkspace {
  std::size_t lanes = 0;
  std::size_t x_stride = 0;    ///< padded_size rounded up to 8 doubles
  std::size_t rhs_stride = 0;  ///< unknown_count + 1 rounded up to 8 doubles
  std::size_t cap_stride = 0;  ///< capacitor count
  std::vector<double> x;       ///< Newton iterate / trial step, lanes * x_stride
  std::vector<double> x_prev;  ///< last accepted timepoint, lanes * x_stride
  std::vector<double> rhs;     ///< companion RHS / residual, lanes * rhs_stride
  std::vector<double> cap_current;  ///< trapezoidal cap currents, lanes * cap_stride
  std::vector<LuSolver> solvers;    ///< per-lane matrix + factorization state
  std::vector<double> x_new;        ///< shared solve-output scratch (one lane)

  void prepare(std::size_t lane_count, std::size_t padded, std::size_t unknowns,
               std::size_t cap_count);

  [[nodiscard]] std::span<double> lane_x(std::size_t l) {
    return {x.data() + l * x_stride, x_stride};
  }
  [[nodiscard]] std::span<double> lane_x_prev(std::size_t l) {
    return {x_prev.data() + l * x_stride, x_stride};
  }
  [[nodiscard]] std::span<double> lane_rhs(std::size_t l) {
    return {rhs.data() + l * rhs_stride, rhs_stride};
  }
  [[nodiscard]] std::span<double> lane_cap(std::size_t l) {
    return {cap_current.data() + l * cap_stride, cap_stride};
  }
};

/// The calling thread's shared batch workspace (the batched analogue of
/// thread_local_workspace()).
[[nodiscard]] BatchWorkspace& thread_local_batch_workspace();

class BatchSimulator {
 public:
  /// `lanes` are the per-draw circuits; they must outlive the simulator
  /// (compiled plans point into them).  Throws std::invalid_argument unless
  /// every lane is structurally congruent with lane 0: same node table and
  /// per-type element counts, with every element's terminal nodes matching
  /// elementwise (values — R/C/W-L/waveforms/model parameters — are free to
  /// differ; that is the mismatch).  `workspace` as in Simulator: nullptr
  /// selects the calling thread's shared BatchWorkspace.
  explicit BatchSimulator(std::span<const Circuit> lanes, SimulatorOptions options = {},
                          BatchWorkspace* workspace = nullptr);

  [[nodiscard]] std::size_t lane_count() const { return circuits_.size(); }

  /// Lockstep transient over every lane; results are per lane, in input
  /// order.  `dc_warm_start` seeds lane 0's DC solve; inside the batch the
  /// seed rolls forward exactly as the sequential per-thread DC cache would:
  /// whenever a lane cold-solves (its warm start was absent or failed), its
  /// operating point becomes the seed for the lanes after it.  Per-lane
  /// dc_op / warm_started are reported as the sequential path would, so
  /// callers can keep their warm-start cache and statistics in sync.
  [[nodiscard]] std::vector<TransientResult> transient(const TransientSpec& spec,
                                                       const OpResult* dc_warm_start = nullptr);

 private:
  /// One lockstep Newton solve at (time, dt) for every lane with alive_[l]:
  /// iterate is ws_->x (entered as the initial guess), previous timepoint
  /// ws_->x_prev.  Per-lane success lands in ok_[l], iterations spent in
  /// iter_spent_[l].
  void solve_step(double time, double dt, bool trapezoidal);
  void update_caps_lane(std::size_t l, double dt, bool trapezoidal);
  /// Per-lane convergence recovery for a failed fixed-grid step over
  /// [t_prev, t]: scalar backward-Euler substep cutting, then a bounded
  /// restart-from-DC rung — only lane l's state is touched, the other lanes
  /// stay frozen at their solved step.  On success the lane's iterate and
  /// capacitor currents hold the state at t.
  [[nodiscard]] bool rescue_lane_step(std::size_t l, double t_prev, double t,
                                      TransientResult& result, int& attempts,
                                      bool& deadline_hit);
  /// Cooperative per-lane deadline (DC + transient iterations combined).
  [[nodiscard]] bool lane_deadline(const TransientResult& result) const {
    return deadline_exceeded(options_, static_cast<std::uint64_t>(result.dc_iterations) +
                                           result.newton_iterations);
  }

  std::vector<const Circuit*> circuits_;
  SimulatorOptions options_;
  BatchWorkspace* ws_;
  std::vector<StampPlan> plans_;
  std::size_t n_ = 0;       ///< solved unknowns (congruent across lanes)
  std::size_t nu_ = 0;      ///< unknown node voltages
  std::size_t padded_ = 0;  ///< padded solution length
  std::size_t n_nodes_ = 0;
  std::size_t n_vsrc_ = 0;
  std::size_t n_caps_ = 0;

  // Per-run / per-solve lane state (members so the hot loop never allocates).
  std::vector<char> alive_;      ///< lane still marching (no DC/Newton failure)
  std::vector<char> ok_;         ///< per-solve success
  std::vector<char> done_;       ///< per-solve converged (frozen)
  std::vector<char> fail_;       ///< per-solve failure
  std::vector<int> iter_spent_;  ///< per-solve Newton iterations
  std::vector<std::size_t> act_; ///< compacted active-lane list
  std::vector<double*> act_g_;   ///< cached matrix pointers for act_
  std::vector<double*> act_rhs_;
  std::vector<double*> act_x_;
  std::vector<char> has_factors_;   ///< bypass: lane holds a valid LU
  std::vector<double> res_prev_;    ///< bypass: last chord residual norm
  std::vector<const FaultPlan::Site*> fault_site_;  ///< per-solve injected fault
  std::vector<char> rescued_;       ///< per-step: lane recovered via rescue
  std::uint64_t bypass_solves_ = 0;
  std::uint64_t bypass_refactors_ = 0;
};

}  // namespace glova::spice
