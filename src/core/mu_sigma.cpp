#include "core/mu_sigma.hpp"

#include <stdexcept>

#include "stats/descriptive.hpp"

namespace glova::core {

MuSigmaResult mu_sigma_evaluate(const circuits::PerformanceSpec& spec,
                                const std::vector<std::vector<double>>& metric_samples,
                                double beta2) {
  if (metric_samples.empty()) throw std::invalid_argument("mu_sigma_evaluate: no samples");
  MuSigmaResult out;
  out.e.resize(spec.count());
  std::vector<double> g(metric_samples.size());
  out.pass = true;
  for (std::size_t i = 0; i < spec.count(); ++i) {
    for (std::size_t n = 0; n < metric_samples.size(); ++n) {
      if (metric_samples[n].size() != spec.count()) {
        throw std::invalid_argument("mu_sigma_evaluate: ragged metric samples");
      }
      g[n] = circuits::degradation(spec.metrics[i], metric_samples[n][i]);
    }
    const double mu = stats::mean(g);
    const double sigma = stats::stddev_sample(g);
    out.e[i] = mu + beta2 * sigma;
    out.t_score += out.e[i];
    if (out.e[i] > 0.0) out.pass = false;
  }
  return out;
}

}  // namespace glova::core
