// Small shared string utilities.
#pragma once

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <limits>
#include <string>
#include <string_view>

namespace glova {

/// ASCII lowercase copy (used for case-insensitive name matching in the
/// registry, config/run-spec parsing, and the SPICE netlist parser).
[[nodiscard]] inline std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

/// Shortest text form that parses back to exactly the same double
/// (max_digits10).  The one formatter behind every lossless text round-trip
/// (RunSpec::to_string, campaign checkpoints) — the formats stay mutually
/// consistent because they share it.
[[nodiscard]] inline std::string format_double_roundtrip(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", std::numeric_limits<double>::max_digits10, v);
  return buf;
}

}  // namespace glova
