// DRAM OCSA + subhole SPICE testbench: open-bitline sensing of one cell
// through the MNA engine, one transient per stored data polarity.
//
// Netlist (per read):
//   * cell cap written to its stored level through a boosted write switch
//     (on at DC, off before the wordline rises), then shared onto the
//     bitline through a boosted access NMOS;
//   * bl/blb precharged to vdd/2 through the OC switches (their sized
//     geometry sets the precharge drive and injection charge);
//   * cross-coupled NMOS/PMOS sense amplifier with per-SA-share subhole
//     drivers: the shared NSA/PSA devices are scaled by 1/n_shared_sa and
//     drive per-SA SAN/SAP rail capacitance, which keeps the single-SA
//     netlist equivalent to one slice of the 512-SA subhole;
//   * a column-select device reads the settled bitline onto a local IO cap.
//
// Offset cancellation is modeled at netlist-construction time: the OC phase
// stores the cross-pair offset on the bitlines, so the pair's Vth mismatch
// is scaled by (1 - k_oc) and the switch injection pedestal is applied as a
// differential split of the precharge levels opposing the read signal —
// the same residual-offset accounting as the behavioral model, but the
// charge sharing and regeneration themselves are solved by the simulator.
//
// Measurement extraction (Table II metrics):
//   * dVD0 / dVD1 — differential bitline voltage t_overlap after sense
//     enable, clamped to the behavioral regeneration cap (1 + gain_cap)
//     times the pre-sense signal, floored near zero when the SA resolves
//     the wrong way;
//   * energy per bit — measured VDD supply energy plus recharge accounting
//     for the bitline/cell restore (spice::capacitor_recharge_energy) and
//     the amortized shared-driver overhead, averaged over both polarities.
#include "circuits/spice_backend.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "circuits/parasitics.hpp"
#include "common/units.hpp"
#include "pdk/mos_params.hpp"
#include "spice/batch.hpp"
#include "spice/measure.hpp"
#include "spice/warm_start.hpp"

namespace glova::circuits {

namespace {
// Testbench timing: write switch opens, precharge releases, wordline rises,
// sense amplifier enables, column select reads out.
constexpr double kTWrOff = 0.15e-9;
constexpr double kTPeqOff = 0.25e-9;
constexpr double kTWl = 0.5e-9;
constexpr double kTSense = 2.0e-9;
constexpr double kTCsl = 2.8e-9;
constexpr double kTStop = 3.5e-9;
constexpr double kDt = 2.0e-12;
constexpr double kEdge = 50e-12;
// Wordline / switch-gate boost above vdd (passes full levels).
constexpr double kBoost = 0.45;
// Fixed (non-sized) cell-access and write-switch geometry.
constexpr double kAccessW = 0.28e-6;
constexpr double kAccessL = 50e-9;
constexpr double kWriteW = 1e-6;
constexpr double kWriteL = 30e-9;
// Warm-start cache tags, one per data polarity (the stored level changes
// the DC operating point, so the polarities must not share seeds).
constexpr std::uint64_t kDramWarmStartTag[2] = {0xd0c5a, 0xd1c5a};
}  // namespace

DramOcsaSubholeSpice::DramOcsaSubholeSpice() = default;

spice::Circuit DramOcsaSubholeSpice::build_netlist(std::span<const double> x,
                                                   const pdk::PvtCorner& corner,
                                                   std::span<const double> h,
                                                   bool data_one) const {
  if (x.size() != DramSizing::kCount) throw std::invalid_argument("DRAM spice: bad sizing vector");
  if (!h.empty() && h.size() != kDramDeviceCount * 2 + kDramArrayCoords) {
    throw std::invalid_argument("DRAM spice: bad mismatch vector");
  }
  const Parasitics& par = parasitics_28nm();
  const DramConditions& cond = behavioral_.conditions();
  const double vdd = corner.vdd;
  const double vpp = vdd + kBoost;
  const auto dvth = [&](std::size_t d) { return h.empty() ? 0.0 : h[2 * d]; };
  const auto dbeta = [&](std::size_t d) { return h.empty() ? 0.0 : h[2 * d + 1]; };
  const double dvcell = h.empty() ? 0.0 : h[kDramIdxVcell];

  // Array capacitances and the stored level (same spreads as behavioral).
  const auto [cs, cbl] = dram_array_caps(cond, x, h);
  const double vpre = 0.5 * vdd;
  const double vcell = (data_one ? cond.v1_frac : cond.v0_frac) * vdd + dvcell;

  // Offset cancellation: the cross-pair Vth mismatch survives only by
  // (1 - k_oc); the OC switches' injection pedestal splits the precharge
  // levels against the read signal (bl carries the signal for '1', blb
  // effectively for '0').
  const double k_oc = x[DramSizing::kWOcs] / (x[DramSizing::kWOcs] + cond.oc_half_width);
  const double inj_mismatch = h.empty() ? 0.0 : 0.1 * std::abs(h[2 * 4] - h[2 * 5]);
  const double v_inj =
      0.2 * par.cox * x[DramSizing::kWOcs] * x[DramSizing::kLOcs] * vdd / cbl + inj_mismatch;
  const double pedestal = (data_one ? -0.5 : 0.5) * v_inj;

  spice::Circuit ckt;
  const auto vdd_n = ckt.node("vdd");
  const auto bl = ckt.node("bl");
  const auto blb = ckt.node("blb");
  const auto cell = ckt.node("cell");
  const auto san = ckt.node("san");
  const auto sap = ckt.node("sap");
  const auto lio = ckt.node("lio");
  const auto wl = ckt.node("wl");
  const auto peq = ckt.node("peq");
  const auto wr = ckt.node("wr");
  const auto sen = ckt.node("sen");
  const auto senb = ckt.node("senb");
  const auto csl = ckt.node("csl");
  const auto blp_a = ckt.node("blp_a");
  const auto blp_b = ckt.node("blp_b");
  const auto vcell_n = ckt.node("vcell");
  const auto gnd = spice::Circuit::ground();

  ckt.add_vsource("VDD", vdd_n, gnd, spice::Waveform::dc(vdd));
  ckt.add_vsource("VBLPA", blp_a, gnd, spice::Waveform::dc(vpre + pedestal));
  ckt.add_vsource("VBLPB", blp_b, gnd, spice::Waveform::dc(vpre - pedestal));
  ckt.add_vsource("VCELL", vcell_n, gnd, spice::Waveform::dc(vcell));
  ckt.add_vsource("VWR", wr, gnd,
                  spice::Waveform::pulse(vpp, 0.0, kTWrOff, kEdge, kEdge, 1.0, 0.0));
  ckt.add_vsource("VPEQ", peq, gnd,
                  spice::Waveform::pulse(vpp, 0.0, kTPeqOff, kEdge, kEdge, 1.0, 0.0));
  ckt.add_vsource("VWL", wl, gnd,
                  spice::Waveform::pulse(0.0, vpp, kTWl, kEdge, kEdge, 1.0, 0.0));
  // The subhole enable ramps over cond.t_ramp (the kickback-relevant edge).
  ckt.add_vsource("VSEN", sen, gnd,
                  spice::Waveform::pulse(0.0, vdd, kTSense, cond.t_ramp, cond.t_ramp, 1.0, 0.0));
  ckt.add_vsource("VSENB", senb, gnd,
                  spice::Waveform::pulse(vdd, 0.0, kTSense, cond.t_ramp, cond.t_ramp, 1.0, 0.0));
  ckt.add_vsource("VCSL", csl, gnd,
                  spice::Waveform::pulse(0.0, vdd, kTCsl, kEdge, kEdge, 1.0, 0.0));

  // Device instance order matches DramOcsaSubhole::devices():
  //   0-1 cross NMOS, 2-3 cross PMOS, 4-5 OC switches, 6 csel, 7 nsa, 8 psa.
  // Terminal assignment preserves the behavioral sign convention (positive
  // residual cross-pair offset favors reading '0'): instance "a" of the
  // NMOS discharges BLB (a slower a-device keeps BLB high, helping '0'),
  // while instance "a" of the PMOS restores BL (a slower a-device lets BL
  // fall, also helping '0').
  const double oc_residual = 1.0 - k_oc;
  const auto mos = [&](std::size_t d, bool pmos, std::size_t li, double vth_scale) {
    return pdk::mos_params(pmos, corner, x[li], vth_scale * dvth(d), dbeta(d));
  };
  ckt.add_mosfet("Mxn_a", blb, bl, san, mos(0, false, DramSizing::kLXn, oc_residual),
                 x[DramSizing::kWXn], x[DramSizing::kLXn]);
  ckt.add_mosfet("Mxn_b", bl, blb, san, mos(1, false, DramSizing::kLXn, oc_residual),
                 x[DramSizing::kWXn], x[DramSizing::kLXn]);
  ckt.add_mosfet("Mxp_a", bl, blb, sap, mos(2, true, DramSizing::kLXp, oc_residual),
                 x[DramSizing::kWXp], x[DramSizing::kLXp]);
  ckt.add_mosfet("Mxp_b", blb, bl, sap, mos(3, true, DramSizing::kLXp, oc_residual),
                 x[DramSizing::kWXp], x[DramSizing::kLXp]);
  ckt.add_mosfet("Mocs_a", bl, peq, blp_a, mos(4, false, DramSizing::kLOcs, 1.0),
                 x[DramSizing::kWOcs], x[DramSizing::kLOcs]);
  ckt.add_mosfet("Mocs_b", blb, peq, blp_b, mos(5, false, DramSizing::kLOcs, 1.0),
                 x[DramSizing::kWOcs], x[DramSizing::kLOcs]);
  ckt.add_mosfet("Mcsel", lio, csl, bl, mos(6, false, DramSizing::kLCsel, 1.0),
                 x[DramSizing::kWCsel], x[DramSizing::kLCsel]);
  // Subhole drivers: per-SA share of the 512-way shared devices.
  const double sa_share = 1.0 / cond.n_shared_sa;
  ckt.add_mosfet("Mnsa", san, sen, gnd, mos(7, false, DramSizing::kLNsa, 1.0),
                 x[DramSizing::kWNsa] * sa_share, x[DramSizing::kLNsa]);
  ckt.add_mosfet("Mpsa", sap, senb, vdd_n, mos(8, true, DramSizing::kLPsa, 1.0),
                 x[DramSizing::kWPsa] * sa_share, x[DramSizing::kLPsa]);
  // Cell access and write infrastructure (fixed geometry, nominal params —
  // the cell-array statistics enter through dvcell/dcs/dcbl instead).
  const auto acc_n = pdk::mos_params(false, corner, kAccessL);
  const auto wr_n = pdk::mos_params(false, corner, kWriteL);
  ckt.add_mosfet("Macc", bl, wl, cell, acc_n, kAccessW, kAccessL);
  ckt.add_mosfet("Mwr", cell, wr, vcell_n, wr_n, kWriteW, kWriteL);

  ckt.add_capacitor("Cs", cell, gnd, cs);
  ckt.add_capacitor("Cbl", bl, gnd, cbl);
  ckt.add_capacitor("Cblb", blb, gnd, cbl);
  // Per-SA share of the SAN/SAP rail load (matches the behavioral c_san).
  const double c_rail = cond.c_san_fixed +
                        0.5 * par.c_junction * (x[DramSizing::kWXn] + x[DramSizing::kWXp]);
  ckt.add_capacitor("Csan", san, gnd, c_rail);
  ckt.add_capacitor("Csap", sap, gnd, c_rail);
  ckt.add_capacitor("Clio", lio, gnd, 1e-15 + par.c_junction * x[DramSizing::kWCsel]);
  return ckt;
}

namespace {
spice::TransientSpec dram_transient_spec() {
  spice::TransientSpec spec;
  spec.t_stop = kTStop;
  spec.dt = kDt;
  spec.record = {"bl", "blb", "cell"};
  return spec;
}
}  // namespace

std::pair<double, double> DramOcsaSubholeSpice::polarity_margin_energy(
    const spice::TransientResult& res, std::span<const double> x, const pdk::PvtCorner& corner,
    std::span<const double> h, bool data_one) const {
  const DramConditions& cond = behavioral_.conditions();
  const double vdd = corner.vdd;
  const double vpre = 0.5 * vdd;
  const auto [cs, cbl] = dram_array_caps(cond, x, h);
  const auto& t = res.times;

  // Sensing margin: differential bitline voltage t_overlap after sense
  // enable, signed so the correct read direction is positive, clamped to
  // the behavioral regeneration cap and floored when the SA resolves the
  // wrong way.
  const std::vector<double> diff = spice::difference(res.trace("bl"), res.trace("blb"));
  const double sign = data_one ? 1.0 : -1.0;
  const double signal = sign * spice::value_at(t, diff, kTSense);
  const double developed = sign * spice::value_at(t, diff, kTSense + cond.t_overlap);
  double margin = developed;
  if (signal > 0.0) margin = std::min(margin, (1.0 + cond.gain_cap) * signal);

  // Energy: measured VDD delivery (PSA rail charge + regeneration +
  // restore-high) plus recharge accounting for the precharge phase this
  // testbench does not simulate — the vdd/2 rail pulling each split
  // bitline and the restored cell back to the precharge level.
  double e_read = std::max(0.0, spice::supply_energy(t, res.trace("I(VDD)"), vdd, 0.0, kTStop));
  e_read += spice::capacitor_recharge_energy(cbl, vpre, res.trace("bl").back(), vpre);
  e_read += spice::capacitor_recharge_energy(cbl, vpre, res.trace("blb").back(), vpre);
  e_read += spice::capacitor_recharge_energy(cs, vpre, res.trace("cell").back(), vpre);
  return {std::max(1e-6, margin), e_read};
}

double DramOcsaSubholeSpice::driver_overhead_energy(std::span<const double> x,
                                                    const pdk::PvtCorner& corner,
                                                    std::span<const double> h) const {
  // The shared-driver overhead is an amortized analytic term (gate charge +
  // enable-ramp crowbar of the 512-way subhole devices, 64 activated bits
  // per driver pair — the per-SA netlist only carries its 1/512 share).
  const DramConditions& cond = behavioral_.conditions();
  const Parasitics& par = parasitics_28nm();
  const double vdd = corner.vdd;
  const double temp_k = corner.temp_k();
  const auto p_nsa = pdk::mos_params(false, corner, x[DramSizing::kLNsa],
                                     h.empty() ? 0.0 : h[2 * 7], h.empty() ? 0.0 : h[2 * 7 + 1]);
  const auto p_psa = pdk::mos_params(true, corner, x[DramSizing::kLPsa],
                                     h.empty() ? 0.0 : h[2 * 8], h.empty() ? 0.0 : h[2 * 8 + 1]);
  const double i_nsa = pdk::ekv_id(p_nsa, x[DramSizing::kWNsa] / x[DramSizing::kLNsa], vdd,
                                   0.3 * vdd, temp_k);
  const double i_psa = pdk::ekv_id(p_psa, x[DramSizing::kWPsa] / x[DramSizing::kLPsa], vdd,
                                   0.3 * vdd, temp_k);
  return (par.cox * (x[DramSizing::kWNsa] * x[DramSizing::kLNsa] +
                     x[DramSizing::kWPsa] * x[DramSizing::kLPsa]) *
              vdd * vdd +
          0.01 * (i_nsa + i_psa) * cond.t_ramp * vdd) /
         cond.n_shared_sa * 64.0;  // 64 activated bits share one driver pair
}

std::vector<double> DramOcsaSubholeSpice::evaluate(std::span<const double> x,
                                                   const pdk::PvtCorner& corner,
                                                   std::span<const double> h) const {
  if (x.size() != DramSizing::kCount) throw std::invalid_argument("DRAM spice: bad sizing vector");
  if (!h.empty() && h.size() != kDramDeviceCount * 2 + kDramArrayCoords) {
    throw std::invalid_argument("DRAM spice: bad mismatch vector");
  }

  double dvd[2] = {1e-6, 1e-6};  // [data0, data1]
  double energy_sum = 0.0;
  for (const bool data_one : {false, true}) {
    const spice::Circuit ckt = build_netlist(x, corner, h, data_one);
    spice::Simulator sim(ckt, spice::default_simulator_options());
    const spice::TransientSpec spec = dram_transient_spec();

    const bool warm = spice::dc_warm_start_enabled();
    const spice::OpResult* seed = nullptr;
    spice::DcWarmStartCache::Key key;
    if (warm) {
      key = spice::make_dc_key(kDramWarmStartTag[data_one ? 1 : 0], x, corner);
      seed = spice::thread_local_dc_cache().lookup(key);
    }
    const spice::TransientResult res = sim.transient(spec, seed);
    if (warm && res.ok && (seed == nullptr || !res.dc_op.warm_started)) {
      spice::thread_local_dc_cache().store(key, res.dc_op);
    }
    if (!res.ok) {
      // A non-convergent design fails every constraint: vanishing sensing
      // margins and an enormous energy; the structured report lets the
      // engine retry or degrade instead of accepting the penalty.
      throw EvaluationError(evaluation_failure_from(res.failure), {1e-6, 1e-6, 1.0});
    }
    const auto [margin, e_read] = polarity_margin_energy(res, x, corner, h, data_one);
    dvd[data_one ? 1 : 0] = margin;
    energy_sum += e_read;
  }

  const double energy = 0.5 * energy_sum + driver_overhead_energy(x, corner, h);
  return {dvd[0], dvd[1], energy};
}

std::vector<std::vector<double>> DramOcsaSubholeSpice::evaluate_draws(
    std::span<const double> x, const pdk::PvtCorner& corner,
    std::span<const std::vector<double>> hs, std::vector<EvaluationFailure>& failures) const {
  const std::size_t n = hs.size();
  failures.assign(n, {});
  std::vector<char> failed(n, 0);
  std::vector<std::array<double, 2>> dvd(n, {1e-6, 1e-6});
  std::vector<double> energy_sum(n, 0.0);

  // One lockstep batch per data polarity; each polarity keeps its own
  // warm-start key (the stored level changes the DC operating point).
  for (const bool data_one : {false, true}) {
    std::vector<spice::Circuit> lanes;
    lanes.reserve(n);
    for (const std::vector<double>& h : hs) lanes.push_back(build_netlist(x, corner, h, data_one));
    const spice::TransientSpec spec = dram_transient_spec();

    const bool warm = spice::dc_warm_start_enabled();
    const spice::OpResult* seed = nullptr;
    spice::DcWarmStartCache::Key key;
    if (warm) {
      key = spice::make_dc_key(kDramWarmStartTag[data_one ? 1 : 0], x, corner);
      seed = spice::thread_local_dc_cache().lookup(key);
    }
    spice::BatchSimulator batch(lanes, spice::default_simulator_options());
    const std::vector<spice::TransientResult> results = batch.transient(spec, seed);
    if (warm) spice::sync_warm_start_cache(key, seed, results);

    for (std::size_t l = 0; l < n; ++l) {
      if (!results[l].ok) {
        // First failing polarity's report wins (matches the sequential
        // path, which stops at the first non-convergent polarity).
        if (!failed[l]) failures[l] = evaluation_failure_from(results[l].failure);
        failed[l] = 1;
        continue;
      }
      const auto [margin, e_read] = polarity_margin_energy(results[l], x, corner, hs[l], data_one);
      dvd[l][data_one ? 1 : 0] = margin;
      energy_sum[l] += e_read;
    }
  }

  std::vector<std::vector<double>> out;
  out.reserve(n);
  for (std::size_t l = 0; l < n; ++l) {
    if (failed[l]) {
      out.push_back({1e-6, 1e-6, 1.0});
      continue;
    }
    const double energy = 0.5 * energy_sum[l] + driver_overhead_energy(x, corner, hs[l]);
    out.push_back({dvd[l][0], dvd[l][1], energy});
  }
  return out;
}

}  // namespace glova::circuits
