// Tests for the testcase circuits: spec fidelity to the paper, physical
// trend sanity of the behavioral models, mismatch sensitivity, and the
// existence of robust designs (which pins every Table II cell as solvable).
#include <gtest/gtest.h>

#include <algorithm>

#include "circuits/dram_ocsa.hpp"
#include "circuits/fia.hpp"
#include "circuits/registry.hpp"
#include "circuits/spice_backend.hpp"
#include "circuits/strongarm.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "pdk/variation.hpp"

namespace glova::circuits {
namespace {

using namespace units::literals;

std::vector<double> mid_design(const Testbench& tb) {
  std::vector<double> x01(tb.sizing().dimension(), 0.5);
  return tb.sizing().denormalize(x01);
}

TEST(Specs, SalMatchesPaper) {
  StrongArmLatch sal;
  const auto& sz = sal.sizing();
  ASSERT_EQ(sz.dimension(), 14u);  // 6 widths + 6 lengths + 2 caps
  EXPECT_DOUBLE_EQ(sz.lower[0], 0.28e-6);
  EXPECT_DOUBLE_EQ(sz.upper[0], 32.8e-6);
  EXPECT_DOUBLE_EQ(sz.lower[6], 0.03e-6);
  EXPECT_DOUBLE_EQ(sz.upper[6], 0.33e-6);
  EXPECT_DOUBLE_EQ(sz.lower[SalSizing::kCOut], 0.005e-12);
  EXPECT_DOUBLE_EQ(sz.upper[SalSizing::kCOut], 5.5e-12);
  // ~10^28 design space at 100 steps per axis.
  EXPECT_NEAR(sz.log10_space_size(), 28.0, 1e-9);
  const auto& perf = sal.performance();
  ASSERT_EQ(perf.count(), 4u);
  EXPECT_DOUBLE_EQ(perf.metrics[0].bound, 40e-6);   // power <= 40 uW
  EXPECT_DOUBLE_EQ(perf.metrics[1].bound, 4e-9);    // set delay <= 4 ns
  EXPECT_DOUBLE_EQ(perf.metrics[3].bound, 120e-6);  // noise <= 120 uV
}

TEST(Specs, FiaMatchesPaper) {
  FloatingInverterAmplifier fia;
  EXPECT_EQ(fia.sizing().dimension(), 6u);
  EXPECT_NEAR(fia.sizing().log10_space_size(), 12.0, 1e-9);
  ASSERT_EQ(fia.performance().count(), 2u);
  EXPECT_DOUBLE_EQ(fia.performance().metrics[0].bound, 0.1e-12);  // 0.1 pJ
  EXPECT_DOUBLE_EQ(fia.performance().metrics[1].bound, 130e-3);   // 130 mV
}

TEST(Specs, DramMatchesPaper) {
  DramOcsaSubhole dram;
  const auto& sz = dram.sizing();
  ASSERT_EQ(sz.dimension(), 12u);
  EXPECT_NEAR(sz.log10_space_size(), 24.0, 1e-9);
  // OCSA widths pitch-limited; SH widths 5-15 um; all lengths 30-60 nm.
  EXPECT_DOUBLE_EQ(sz.upper[DramSizing::kWXn], 1.028e-6);
  EXPECT_DOUBLE_EQ(sz.lower[DramSizing::kWNsa], 5e-6);
  EXPECT_DOUBLE_EQ(sz.upper[DramSizing::kWPsa], 15e-6);
  EXPECT_DOUBLE_EQ(sz.upper[DramSizing::kLXn], 0.06e-6);
  const auto& perf = dram.performance();
  ASSERT_EQ(perf.count(), 3u);
  EXPECT_EQ(perf.metrics[0].sense, Sense::MaximizeAbove);  // dVD0 >= 85 mV
  EXPECT_EQ(perf.metrics[1].sense, Sense::MaximizeAbove);
  EXPECT_DOUBLE_EQ(perf.metrics[2].bound, 30e-15);  // 30 fJ
}

TEST(Margins, SignConventions) {
  MetricSpec minimize{"m", "u", 1.0, 10.0, Sense::MinimizeBelow};
  EXPECT_GT(normalized_margin(minimize, 5.0), 0.0);
  EXPECT_LT(normalized_margin(minimize, 15.0), 0.0);
  EXPECT_DOUBLE_EQ(normalized_margin(minimize, 10.0), 0.0);
  MetricSpec maximize{"m", "u", 1.0, 10.0, Sense::MaximizeAbove};
  EXPECT_GT(normalized_margin(maximize, 15.0), 0.0);
  EXPECT_LT(normalized_margin(maximize, 5.0), 0.0);
  EXPECT_DOUBLE_EQ(degradation(maximize, 15.0), -normalized_margin(maximize, 15.0));
}

class RoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(RoundTrip, NormalizeDenormalizeIsIdentity) {
  const auto tb = make_testbench(all_testcases()[GetParam() % 3]);
  const auto& sz = tb->sizing();
  Rng rng(GetParam() + 40);
  const auto x01 = rng.uniform_vector(sz.dimension(), 0.0, 1.0);
  const auto phys = sz.denormalize(x01);
  const auto back = sz.normalize(phys);
  for (std::size_t i = 0; i < sz.dimension(); ++i) {
    EXPECT_NEAR(back[i], x01[i], 1e-12);
    EXPECT_GE(phys[i], sz.lower[i]);
    EXPECT_LE(phys[i], sz.upper[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(AllCircuits, RoundTrip, ::testing::Range(0, 9));

TEST(SalTrends, BiggerLoadCapRaisesPowerLowersNoise) {
  StrongArmLatch sal;
  auto x = mid_design(sal);
  const auto base = sal.evaluate(x, pdk::typical_corner(), {});
  x[SalSizing::kCOut] *= 1.5;
  const auto bigger = sal.evaluate(x, pdk::typical_corner(), {});
  EXPECT_GT(bigger[0], base[0]);  // power up
  EXPECT_LT(bigger[3], base[3]);  // noise down
}

TEST(SalTrends, StrongerPrechargeSpeedsReset) {
  StrongArmLatch sal;
  auto x = mid_design(sal);
  const auto base = sal.evaluate(x, pdk::typical_corner(), {});
  x[SalSizing::kWPre] *= 2.0;
  const auto stronger = sal.evaluate(x, pdk::typical_corner(), {});
  EXPECT_LT(stronger[2], base[2]);  // reset delay down
}

TEST(SalTrends, LowVddSlowerThanHighVdd) {
  StrongArmLatch sal;
  const auto x = mid_design(sal);
  const pdk::PvtCorner hi{pdk::ProcessCorner::TT, 0.9, 27.0, true};
  const pdk::PvtCorner lo{pdk::ProcessCorner::TT, 0.8, 27.0, true};
  EXPECT_GT(sal.evaluate(x, lo, {})[1], sal.evaluate(x, hi, {})[1]);
}

TEST(SalTrends, InputPairMismatchSlowsDecision) {
  StrongArmLatch sal;
  const auto x = mid_design(sal);
  std::vector<double> h(22, 0.0);
  h[2 * 1] = 0.02;   // in_a dvth +20 mV
  h[2 * 2] = -0.02;  // in_b dvth -20 mV -> 40 mV offset
  const auto base = sal.evaluate(x, pdk::typical_corner(), {});
  const auto off = sal.evaluate(x, pdk::typical_corner(), h);
  EXPECT_GT(off[1], base[1]);  // set delay degrades
}

TEST(FiaTrends, EnergyGrowsWithCaps) {
  FloatingInverterAmplifier fia;
  auto x = mid_design(fia);
  const auto base = fia.evaluate(x, pdk::typical_corner(), {});
  x[FiaSizing::kCRes] *= 2.0;
  EXPECT_GT(fia.evaluate(x, pdk::typical_corner(), {})[0], base[0]);
}

TEST(FiaTrends, InverterMismatchRaisesNoise) {
  FloatingInverterAmplifier fia;
  const auto x = mid_design(fia);
  std::vector<double> h(8, 0.0);
  h[0] = 0.03;
  h[2] = -0.03;  // 60 mV inverter offset
  EXPECT_GT(fia.evaluate(x, pdk::typical_corner(), h)[1],
            fia.evaluate(x, pdk::typical_corner(), {})[1]);
}

TEST(DramTrends, OffsetSignConflictsBetweenData0And1) {
  DramOcsaSubhole dram;
  const auto x = mid_design(dram);
  std::vector<double> h(21, 0.0);
  h[0] = 0.03;  // xn_a slower: positive offset favors one polarity
  const auto pos = dram.evaluate(x, pdk::typical_corner(), h);
  h[0] = -0.03;
  const auto neg = dram.evaluate(x, pdk::typical_corner(), h);
  // The sign of the SA offset must trade dVD0 against dVD1.
  EXPECT_GT(pos[0], neg[0]);
  EXPECT_LT(pos[1], neg[1]);
}

TEST(DramTrends, CellLevelLossHurtsHighData) {
  DramOcsaSubhole dram;
  const auto x = mid_design(dram);
  std::vector<double> h(21, 0.0);
  h[18] = -0.05;  // dvcell -50 mV (weak stored '1')
  const auto weak = dram.evaluate(x, pdk::typical_corner(), h);
  const auto base = dram.evaluate(x, pdk::typical_corner(), {});
  EXPECT_LT(weak[1], base[1]);  // dVD1 down
  EXPECT_GT(weak[0], base[0]);  // dVD0 up (lower '0' level is easier to read)
}

TEST(DramTrends, BiggerDriversCostEnergy) {
  DramOcsaSubhole dram;
  auto x = mid_design(dram);
  const auto base = dram.evaluate(x, pdk::typical_corner(), {});
  x[DramSizing::kWNsa] = 15e-6;
  x[DramSizing::kWPsa] = 15e-6;
  EXPECT_GT(dram.evaluate(x, pdk::typical_corner(), {})[2], base[2]);
}

TEST(MismatchLayout, DimensionsAndXDependence) {
  StrongArmLatch sal;
  auto x = mid_design(sal);
  const auto layout = sal.mismatch_layout(x, true);
  EXPECT_EQ(layout.dimension(), 22u);  // 11 devices x (dvth, dbeta)
  // Shrinking the input pair raises its local sigma (Pelgrom).
  auto x_small = x;
  x_small[SalSizing::kWIn] = 0.28e-6;
  const auto layout_small = sal.mismatch_layout(x_small, true);
  EXPECT_GT(layout_small.local_sigma[2], layout.local_sigma[2]);

  DramOcsaSubhole dram;
  EXPECT_EQ(dram.mismatch_layout(mid_design(dram), true).dimension(), 21u);
  FloatingInverterAmplifier fia;
  EXPECT_EQ(fia.mismatch_layout(mid_design(fia), true).dimension(), 8u);
}

TEST(Registry, FactoriesAndNames) {
  EXPECT_EQ(all_testcases().size(), 3u);
  for (const auto tc : all_testcases()) {
    for (const Backend b : {Backend::Behavioral, Backend::Spice}) {
      const auto tb = make_testbench(tc, b);
      ASSERT_NE(tb, nullptr);
      EXPECT_FALSE(tb->name().empty());
    }
  }
}

TEST(Registry, CapabilityQueries) {
  // Every Table II block runs on both backends (ISSUE 5 closed the SPICE
  // gap for the FIA and the DRAM OCSA).
  for (const auto tc : all_testcases()) {
    EXPECT_TRUE(is_available(tc, Backend::Behavioral));
    EXPECT_TRUE(is_available(tc, Backend::Spice));
    const auto backends = available_backends(tc);
    ASSERT_EQ(backends.size(), 2u);
    EXPECT_EQ(backends.front(), Backend::Behavioral);
    EXPECT_EQ(backends.back(), Backend::Spice);
  }

  // The capability list and the factory agree: whatever is_available
  // promises, make_testbench delivers.
  for (const auto tc : all_testcases()) {
    for (const Backend b : available_backends(tc)) {
      EXPECT_NE(make_testbench(tc, b), nullptr);
    }
  }
}

TEST(Registry, SupportedCombinationsListsFullMatrix) {
  const std::string combos = supported_combinations();
  for (const auto tc : all_testcases()) {
    for (const Backend b : available_backends(tc)) {
      const std::string entry = std::string(to_string(tc)) + "/" + to_string(b);
      EXPECT_NE(combos.find(entry), std::string::npos) << combos;
    }
  }
}

TEST(Registry, NameRoundTrips) {
  for (const auto tc : all_testcases()) {
    EXPECT_EQ(testcase_from_string(to_string(tc)), tc);
  }
  EXPECT_EQ(testcase_from_string("sal"), Testcase::Sal);
  EXPECT_EQ(testcase_from_string("dram"), Testcase::DramOcsa);
  EXPECT_EQ(testcase_from_string("bogus"), std::nullopt);
  EXPECT_EQ(backend_from_string("SPICE"), Backend::Spice);
  EXPECT_EQ(backend_from_string("behavioral"), Backend::Behavioral);
  EXPECT_EQ(backend_from_string("verilog"), std::nullopt);
}

/// The load-bearing calibration property: a known-good design per circuit
/// passes heavy verification under every regime, so every Table II cell has
/// a solution.  (Found by offline search; see DESIGN.md.)
struct RobustCase {
  Testcase tc;
  std::vector<double> x01;
};

class RobustDesignExists : public ::testing::TestWithParam<int> {};

TEST_P(RobustDesignExists, PassesHeavySampling) {
  static const RobustCase cases[] = {
      {Testcase::Sal,
       {0.056, 0.504, 0.455, 0.121, 0.174, 0.035, 1.0, 0.0, 0.16, 0.0, 0.061, 0.118, 0.027, 0.0}},
      {Testcase::Fia, {0.05, 0.25, 0.5, 0.3, 0.003, 0.001}},
      {Testcase::DramOcsa, {1, 1, 1, 0, 0.0, 0.3, 1, 1, 1, 0, 1.0, 1.0}},
  };
  const RobustCase& c = cases[GetParam()];
  const auto tb = make_testbench(c.tc);
  const auto x = tb->sizing().denormalize(c.x01);
  const auto& perf = tb->performance();

  // All 30 predefined corners, nominal mismatch.
  for (const auto& corner : pdk::full_corner_set()) {
    const auto m = tb->evaluate(x, corner, {});
    for (std::size_t i = 0; i < perf.count(); ++i) {
      EXPECT_GE(normalized_margin(perf.metrics[i], m[i]), 0.0)
          << corner.name() << " metric " << perf.metrics[i].name;
    }
  }
  // Global-local MC across the 6 VT corners (reduced sample count for test
  // runtime; the bench exercises the full 1K).
  Rng rng(99);
  int failures = 0;
  for (const auto& corner : pdk::vt_corner_set()) {
    const auto layout = tb->mismatch_layout(x, true);
    const auto hs = pdk::sample_mismatch_set(layout, 200, rng, pdk::GlobalMode::PerSample);
    for (const auto& h : hs) {
      const auto m = tb->evaluate(x, corner, h);
      for (std::size_t i = 0; i < perf.count(); ++i) {
        if (normalized_margin(perf.metrics[i], m[i]) < 0.0) ++failures;
      }
    }
  }
  EXPECT_EQ(failures, 0);
}

INSTANTIATE_TEST_SUITE_P(AllCircuits, RobustDesignExists, ::testing::Range(0, 3));

TEST(SpiceBackend, SalDecisionAndTrendsMatchBehavioral) {
  StrongArmLatchSpice spice_tb;
  StrongArmLatch behavioral;
  std::vector<double> x01 = {0.2, 0.3, 0.2, 0.2, 0.2, 0.1, 0.2, 0.0, 0.0, 0.0, 0.0, 0.0, 0.05,
                             0.01};
  const auto x = spice_tb.sizing().denormalize(x01);
  const auto m = spice_tb.evaluate(x, pdk::typical_corner(), {});
  ASSERT_EQ(m.size(), 4u);
  // The latch must actually decide (finite delay) and reset.
  EXPECT_GT(m[1], 0.0);
  EXPECT_LT(m[1], 5e-9);
  EXPECT_LT(m[2], 5e-9);
  EXPECT_GT(m[0], 0.0);  // positive average power
  // Trend agreement with the behavioral model: more load cap -> slower reset.
  auto x_big = x;
  x_big[SalSizing::kCOut] *= 2.0;
  const auto m_big = spice_tb.evaluate(x_big, pdk::typical_corner(), {});
  EXPECT_GT(m_big[2], m[2]);
  EXPECT_GT(m_big[0], m[0]);
}

TEST(SpiceBackend, FiaAmplifiesAndTrendsMatchBehavioral) {
  FloatingInverterAmplifierSpice fia;
  const std::vector<double> x01 = {0.15, 0.4, 0.3, 0.2, 0.02, 0.01};
  const auto x = fia.sizing().denormalize(x01);
  const auto m = fia.evaluate(x, pdk::typical_corner(), {});
  ASSERT_EQ(m.size(), 2u);
  EXPECT_GT(m[0], 0.0);
  EXPECT_LT(m[0], 1e-12);  // sane per-conversion energy (< 1 pJ)
  EXPECT_GT(m[1], 0.0);
  EXPECT_LT(m[1], 0.1);  // the amplifier actually amplifies
  // A bigger reservoir stores — and therefore recharges — more charge.
  auto x_big = x;
  x_big[FiaSizing::kCRes] *= 2.0;
  EXPECT_GT(fia.evaluate(x_big, pdk::typical_corner(), {})[0], m[0]);
  // Inverter offset raises the input-referred error, as behaviorally.
  std::vector<double> h(8, 0.0);
  h[0] = 0.03;
  h[4] = -0.03;
  EXPECT_GT(fia.evaluate(x, pdk::typical_corner(), h)[1], m[1]);
}

TEST(SpiceBackend, DramOcsaResolvesBothPolaritiesAndOffsetTrades) {
  DramOcsaSubholeSpice dram;
  const std::vector<double> x01 = {0.7, 0.6, 0.8, 0.3, 0.4, 0.6, 0.8, 0.7, 0.9, 0.2, 0.8, 0.9};
  const auto x = dram.sizing().denormalize(x01);
  const auto m = dram.evaluate(x, pdk::typical_corner(), {});
  ASSERT_EQ(m.size(), 3u);
  // Both data polarities actually resolve with real margins.
  EXPECT_GT(m[0], 0.02);
  EXPECT_GT(m[1], 0.02);
  EXPECT_GT(m[2], 1e-15);
  EXPECT_LT(m[2], 1e-13);
  // The SA offset sign trades dVD0 against dVD1 with the behavioral
  // convention: a slower xn_a favors reading '0'.
  std::vector<double> h(21, 0.0);
  h[0] = 0.03;
  const auto pos = dram.evaluate(x, pdk::typical_corner(), h);
  h[0] = -0.03;
  const auto neg = dram.evaluate(x, pdk::typical_corner(), h);
  EXPECT_GT(pos[0], neg[0]);
  EXPECT_LT(pos[1], neg[1]);
}

}  // namespace
}  // namespace glova::circuits
