// Fig. 1 reproduction: global (die-to-die) vs local (within-die) variation.
//
// The figure shows that the median difference between two dies is set by
// sigma_Global while the spread within each die is set by sigma_Local.  We
// draw many dies from the Eq. (3) sampler (SharedDie mode: one global draw
// per die, many local draws within it), decompose the observed variance
// into between-die and within-die components, and check both against the
// configured sigmas.
#include <cmath>
#include <cstdio>
#include <vector>

#include "circuits/registry.hpp"
#include "common/rng.hpp"
#include "pdk/variation.hpp"
#include "stats/descriptive.hpp"

using namespace glova;

int main() {
  const auto tb = circuits::make_testbench(circuits::Testcase::Sal);
  const auto& sizing = tb->sizing();
  std::vector<double> x01(sizing.dimension(), 0.5);
  const auto x = sizing.denormalize(x01);
  const pdk::MismatchLayout layout = tb->mismatch_layout(x, /*global_enabled=*/true);

  constexpr std::size_t kDies = 200;
  constexpr std::size_t kDevicesPerDie = 200;
  Rng rng(2025);

  printf("Fig. 1 — global vs local variation decomposition (%zu dies x %zu devices)\n", kDies,
         kDevicesPerDie);
  printf("%-22s %-12s %-12s %-12s %-12s\n", "parameter", "sigma_G cfg", "between-die",
         "sigma_L cfg", "within-die");

  // Analyze the first few representative coordinates.
  for (const std::size_t d : {std::size_t{0}, std::size_t{1}, std::size_t{2}, std::size_t{6}}) {
    std::vector<double> die_means;
    stats::Welford within;
    for (std::size_t die = 0; die < kDies; ++die) {
      Rng die_rng = rng.split(die * 7919 + d);
      const auto set = pdk::sample_mismatch_set(layout, kDevicesPerDie, die_rng,
                                                pdk::GlobalMode::SharedDie);
      std::vector<double> values(set.size());
      for (std::size_t n = 0; n < set.size(); ++n) values[n] = set[n][d];
      die_means.push_back(stats::mean(values));
      stats::Welford w;
      for (const double v : values) w.add(v);
      within.merge(w.count() > 0 ? [&] {
        stats::Welford centered;
        for (const double v : values) centered.add(v - die_means.back());
        return centered;
      }() : w);
    }
    const double between = stats::stddev_sample(die_means);
    const double within_sigma = within.stddev_sample();
    printf("%-22s %-12.4g %-12.4g %-12.4g %-12.4g\n", layout.names[d].c_str(),
           layout.global_sigma[d], between, layout.local_sigma[d], within_sigma);
  }
  printf("\nExpected shape: between-die spread tracks sigma_Global (plus a small\n"
         "sigma_Local/sqrt(n) term); within-die spread tracks sigma_Local.\n");
  return 0;
}
