// Factory tying testcases to evaluator backends.
//
// Benches use Backend::Behavioral (microsecond evaluations; hundreds of
// thousands of MC samples are routine).  Backend::Spice builds and runs a
// transistor-level netlist through the in-repo MNA engine — slower, used by
// tests and examples to validate the behavioral models' trends.
//
// The capability queries (available_backends / is_available) are the
// control-plane side of the factory: core::RunSpec validation and service
// frontends enumerate runnable (testcase, backend) combinations through them
// instead of probing make_testbench for exceptions.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "circuits/testbench.hpp"

namespace glova::circuits {

enum class Testcase { Sal, Fia, DramOcsa };
enum class Backend { Behavioral, Spice };

[[nodiscard]] const char* to_string(Testcase testcase);
[[nodiscard]] const char* to_string(Backend backend);

/// Inverse of to_string (case-insensitive; Testcase also accepts the
/// common aliases "dram" and "ocsa").  nullopt for unknown names.
[[nodiscard]] std::optional<Testcase> testcase_from_string(std::string_view name);
[[nodiscard]] std::optional<Backend> backend_from_string(std::string_view name);

/// All testcases in paper order (Table II columns).
[[nodiscard]] std::vector<Testcase> all_testcases();

/// Backends make_testbench can actually construct for this testcase.
[[nodiscard]] std::vector<Backend> available_backends(Testcase testcase);

/// True when make_testbench(testcase, backend) will succeed.
[[nodiscard]] bool is_available(Testcase testcase, Backend backend);

/// Human-readable list of every runnable combination, e.g.
/// "SAL/behavioral, SAL/spice, FIA/behavioral, FIA/spice, ...".
[[nodiscard]] std::string supported_combinations();

/// Construct a testbench.  Throws std::invalid_argument (listing the
/// supported combinations) for combinations that are not available.
[[nodiscard]] TestbenchPtr make_testbench(Testcase testcase, Backend backend = Backend::Behavioral);

}  // namespace glova::circuits
