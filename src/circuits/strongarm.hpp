// StrongARM latch (SAL) testcase [24] — paper Sec. VI-A.
//
// Sizing vector (14 parameters, design space ~10^28):
//   W_tail, W_in, W_xn, W_xp, W_pre, W_sr   in [0.28, 32.8] um
//   L_tail, L_in, L_xn, L_xp, L_pre, L_sr   in [0.03, 0.33] um
//   C_out, C_sr                              in [0.005, 5.5] pF
// Metrics / constraints:
//   power <= 40 uW, set delay <= 4 ns, reset delay <= 4 ns, noise <= 120 uV.
//
// The behavioral model follows the standard SAL analysis (Razavi, SSC
// Magazine 2015): a tail-current integration phase until the cross-coupled
// pair takes over, exponential regeneration with time constant C/gm, a
// PMOS precharge reset, and kT/C-limited input-referred noise with a
// mismatch-induced offset contribution.  All device parameters flow through
// the pdk so PVT corners and (global/local) mismatch shift the metrics the
// same way they would in SPICE.
#pragma once

#include "circuits/testbench.hpp"

namespace glova::circuits {

/// Indices into the SAL sizing vector.
struct SalSizing {
  enum : std::size_t {
    kWTail = 0, kWIn, kWXn, kWXp, kWPre, kWSr,
    kLTail, kLIn, kLXn, kLXp, kLPre, kLSr,
    kCOut, kCSr,
    kCount
  };
};

/// Fixed testbench conditions for the SAL.
struct SalConditions {
  double clock_hz = 40e6;       ///< evaluation clock
  double v_input_diff = 50e-3;  ///< differential input drive [V]
  double leakage_per_um = 5e-9; ///< off-state leakage [A per um of width]
  /// Input common mode as a fraction of vdd (SPICE testbench only — the
  /// behavioral model is CM-agnostic).  Mid-rail, matching the paper's
  /// testbench.  (An earlier revision biased this to 0.7 so the input pair
  /// stayed out of the Level-1 model's hard sub-Vth cutoff at cold
  /// low-voltage corners; the `mos_model=ekv` option conducts continuously
  /// through weak inversion, so the crutch default is gone.  The knob stays
  /// for CM-sensitivity studies.)
  double input_cm_frac = 0.5;
};

class StrongArmLatch final : public Testbench {
 public:
  StrongArmLatch();

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const SizingSpec& sizing() const override { return sizing_; }
  [[nodiscard]] const PerformanceSpec& performance() const override { return performance_; }

  [[nodiscard]] pdk::MismatchLayout mismatch_layout(std::span<const double> x,
                                                    bool global_enabled) const override;

  /// Returns {power [W], set delay [s], reset delay [s], noise [V]}.
  [[nodiscard]] std::vector<double> evaluate(std::span<const double> x,
                                             const pdk::PvtCorner& corner,
                                             std::span<const double> h) const override;

  /// Device instances (11 transistors) for geometry-dependent mismatch.
  [[nodiscard]] std::vector<pdk::DeviceGeometry> devices(std::span<const double> x) const;

  [[nodiscard]] const SalConditions& conditions() const { return conditions_; }

 private:
  std::string name_ = "StrongARM latch";
  SizingSpec sizing_;
  PerformanceSpec performance_;
  SalConditions conditions_;
};

}  // namespace glova::circuits
