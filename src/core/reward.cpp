#include "core/reward.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace glova::core {

std::vector<double> margins(const circuits::PerformanceSpec& spec,
                            std::span<const double> metrics) {
  if (metrics.size() != spec.count()) throw std::invalid_argument("margins: metric count mismatch");
  std::vector<double> f(spec.count());
  for (std::size_t i = 0; i < spec.count(); ++i) {
    f[i] = circuits::normalized_margin(spec.metrics[i], metrics[i]);
  }
  return f;
}

double reward_from_margins(std::span<const double> f) {
  double r_prime = 0.0;
  for (const double fi : f) r_prime += std::min(fi, 0.0);
  return r_prime < 0.0 ? r_prime : kSuccessReward;
}

double reward_from_metrics(const circuits::PerformanceSpec& spec,
                           std::span<const double> metrics) {
  return reward_from_margins(margins(spec, metrics));
}

bool all_constraints_met(const circuits::PerformanceSpec& spec, std::span<const double> metrics) {
  return reward_from_metrics(spec, metrics) == kSuccessReward;
}

double worst_reward_of(const circuits::PerformanceSpec& spec,
                       const std::vector<std::vector<double>>& metrics) {
  double worst = std::numeric_limits<double>::max();
  for (const auto& m : metrics) worst = std::min(worst, reward_from_metrics(spec, m));
  return worst;
}

}  // namespace glova::core
