#include "common/rng.hpp"

#include <sstream>
#include <stdexcept>

namespace glova {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

Rng Rng::split(std::uint64_t index) const {
  // Mix the parent seed with the child index through two SplitMix64 rounds so
  // that (seed, 0) and (seed + 1, 0) style collisions cannot occur.
  const std::uint64_t child = splitmix64(splitmix64(seed_) ^ splitmix64(index * 0xD1342543DE82EF95ull + 1));
  return Rng(child);
}

double Rng::uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

double Rng::normal() {
  return std::normal_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::normal(double mean, double sigma) {
  if (sigma < 0.0) throw std::invalid_argument("Rng::normal: negative sigma");
  if (sigma == 0.0) return mean;
  return std::normal_distribution<double>(mean, sigma)(engine_);
}

std::size_t Rng::index(std::size_t n) {
  if (n == 0) throw std::invalid_argument("Rng::index: n must be >= 1");
  return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
}

std::vector<double> Rng::normal_vector(std::size_t n) {
  std::vector<double> v(n);
  for (double& x : v) x = normal();
  return v;
}

std::vector<double> Rng::uniform_vector(std::size_t n, double lo, double hi) {
  std::vector<double> v(n);
  for (double& x : v) x = uniform(lo, hi);
  return v;
}

std::string Rng::save() const {
  std::ostringstream os;
  os << seed_ << ' ' << engine_;
  return os.str();
}

void Rng::restore(const std::string& text) {
  std::istringstream is(text);
  std::uint64_t seed = 0;
  std::mt19937_64 engine;
  if (!(is >> seed >> engine)) throw std::runtime_error("Rng::restore: malformed stream state");
  seed_ = seed;
  engine_ = engine;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
  if (k > n) throw std::invalid_argument("sample_without_replacement: k > n");
  // Partial Fisher-Yates over an index vector.
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + index(n - i);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace glova
