// Per-tenant fair scheduling with bounded admission for glova-serve.
//
// Jobs are queued per tenant and dispatched round-robin across tenants, so
// one tenant submitting a hundred sweeps cannot starve another submitting
// one.  Admission is bounded: the scheduler tracks every *live* job
// (queued or dispatched-and-unfinished) and rejects new submissions with a
// human-readable reason once the bound is hit — backpressure belongs at the
// door, not in an unbounded queue.
//
// The class is intentionally not thread-safe: glova-serve already serializes
// job-table access under one mutex, and a second lock here would only hide
// ordering bugs.  (tests/test_serve.cpp exercises it standalone.)
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace glova::serve {

class FairScheduler {
 public:
  /// `max_live` bounds queued + dispatched-but-unfinished jobs; 0 = unlimited.
  explicit FairScheduler(std::size_t max_live = 0) : max_live_(max_live) {}

  /// Admit a new job for `tenant`.  Returns std::nullopt on success or the
  /// rejection reason when the live-job bound is reached.
  [[nodiscard]] std::optional<std::string> admit(const std::string& tenant,
                                                 const std::string& id);

  /// Admit a job recovered from the spool on restart: counts against the
  /// live total like admit() but never rejects — a full queue must not
  /// orphan work that was already accepted before the crash.
  void adopt(const std::string& tenant, const std::string& id);

  /// Re-enqueue an already-live job after an unfinished scheduling quantum.
  /// Never rejects, never re-counts.
  void requeue(const std::string& tenant, const std::string& id);

  /// Pop the next job id, round-robin across tenants with queued work.
  [[nodiscard]] std::optional<std::string> next();

  /// Remove a queued job (cancellation).  Returns false if it was not queued
  /// (already dispatched or unknown); the live count is NOT released — call
  /// release() when the job reaches a terminal state, queued or not.
  bool remove(const std::string& id);

  /// A live job reached a terminal state; frees one admission slot.
  void release();

  [[nodiscard]] std::size_t queued() const;
  [[nodiscard]] std::size_t live() const { return live_; }
  [[nodiscard]] std::size_t max_live() const { return max_live_; }

 private:
  std::size_t max_live_;
  std::size_t live_ = 0;
  /// Tenant queues in first-seen order; the cursor walks them round-robin.
  std::vector<std::pair<std::string, std::deque<std::string>>> tenants_;
  std::size_t cursor_ = 0;

  std::deque<std::string>& queue_for(const std::string& tenant);
};

}  // namespace glova::serve
