// SPICE-netlist testbench for the StrongARM latch.
//
// Builds the transistor-level SAL netlist (tail, input pair, cross-coupled
// inverters, precharge devices, SR-latch load caps), runs a two-phase
// transient through the MNA engine, and extracts the same four metrics the
// behavioral model reports.  Noise remains an analytic kT/C estimate — the
// engine has no small-signal noise analysis — which mirrors how dynamic
// comparator noise is usually budgeted by hand.
#pragma once

#include "circuits/strongarm.hpp"
#include "spice/circuit.hpp"
#include "spice/simulator.hpp"

namespace glova::circuits {

class StrongArmLatchSpice final : public Testbench {
 public:
  StrongArmLatchSpice();

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const SizingSpec& sizing() const override { return behavioral_.sizing(); }
  [[nodiscard]] const PerformanceSpec& performance() const override {
    return behavioral_.performance();
  }

  [[nodiscard]] pdk::MismatchLayout mismatch_layout(std::span<const double> x,
                                                    bool global_enabled) const override {
    return behavioral_.mismatch_layout(x, global_enabled);
  }

  [[nodiscard]] std::vector<double> evaluate(std::span<const double> x,
                                             const pdk::PvtCorner& corner,
                                             std::span<const double> h) const override;

  /// Build the SAL netlist for inspection (Fig. 4 reproduction).
  [[nodiscard]] spice::Circuit build_netlist(std::span<const double> x,
                                             const pdk::PvtCorner& corner,
                                             std::span<const double> h) const;

 private:
  std::string name_ = "StrongARM latch (SPICE)";
  StrongArmLatch behavioral_;  // reuses specs, layout, and noise budget
};

}  // namespace glova::circuits
