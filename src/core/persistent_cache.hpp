// Persistent cross-session memo cache for core::EvaluationEngine.
//
// One file holds the memoized (quantized design, corner, mismatch) -> metrics
// entries of one evaluation configuration, identified by a *tag* — the
// testbench name plus every numerics-affecting EngineConfig knob — so a cache
// written under one simulation truth can never be replayed under another.
// The format is versioned, line-oriented text built from the same
// common/state_io.hpp primitives as campaign checkpoints, written through the
// crash-safe atomic-rename path, and append-friendly: flushing merges the
// engine's live LRU with whatever is already on disk instead of truncating
// it, so the file accumulates observations across sessions, campaigns, and
// glova-serve restarts.
//
//   glova-memo v1
//   tag <testbench|numerics-config>
//   entries N
//   key K k0 ... kK-1          (N times: quantized engine cache key)
//   val M v0 ... vM-1          (metrics, doubles via max_digits10)
//   surrogate-lines L          (serialized core::SurrogateModel; 0 = none)
//   <L raw lines>
//   end
//
// Malformed input — wrong magic, unsupported version, a tag belonging to a
// different configuration, truncation, garbage fields — fails loudly with an
// actionable std::runtime_error; tests/test_persistent_cache.cpp pins both
// the byte format (save -> load -> save fixed point) and the rejections.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "core/evaluation_engine.hpp"

namespace glova::core {

/// One memoized evaluation: the engine's flat quantized cache key and the
/// metric vector it resolved to.
struct MemoCacheEntry {
  std::vector<std::int64_t> key;
  std::vector<double> metrics;

  friend bool operator==(const MemoCacheEntry&, const MemoCacheEntry&) = default;
};

/// In-memory image of one on-disk memo-cache file.
struct MemoCacheFile {
  std::string tag;                      ///< memo_cache_tag() of the writer
  std::vector<MemoCacheEntry> entries;  ///< most recently used first
  /// Serialized core::SurrogateModel state riding along with the
  /// observations it was trained on; empty = no model persisted.
  std::string surrogate_state;

  friend bool operator==(const MemoCacheFile&, const MemoCacheFile&) = default;
};

inline constexpr int kMemoCacheFormatVersion = 1;
/// Bound on entries per file: flushes keep the most recent entries first and
/// drop the tail beyond this, so a long-lived shared cache file cannot grow
/// without limit (entries are a few hundred bytes each).
inline constexpr std::size_t kMaxMemoCacheEntries = 262'144;

/// The (testcase, backend, numerics-config) identity of a cache file: the
/// testbench name plus every EngineConfig knob that changes either the key
/// geometry (cache_quantum) or the metric values a simulation produces.
/// Engines refuse to load a file whose tag differs from their own.
[[nodiscard]] std::string memo_cache_tag(const std::string& testbench_name,
                                         const EngineConfig& engine);

/// Stable per-tag file name ("<sanitized-testbench>-<tag-hash>.memo") used by
/// CampaignConfig::cache_dir to shard one directory by configuration, so
/// sessions with different numerics knobs never collide on one file.
[[nodiscard]] std::string memo_cache_file_name(const std::string& testbench_name,
                                               const EngineConfig& engine);

void save_memo_cache(std::ostream& os, const MemoCacheFile& file);

/// Parse one cache file.  When `expected_tag` is non-empty, a file carrying
/// any other tag is rejected.  Throws std::runtime_error with an actionable
/// message on malformed input.
[[nodiscard]] MemoCacheFile load_memo_cache(std::istream& is,
                                            const std::string& expected_tag = {});

/// load_memo_cache from a file; nullopt when `path` does not exist (a fresh
/// cache), throws when it exists but cannot be read or parsed.
[[nodiscard]] std::optional<MemoCacheFile> load_memo_cache_file(
    const std::string& path, const std::string& expected_tag = {});

/// Read-merge-write: `fresh` entries (most recent first) take precedence,
/// disk entries not present in `fresh` are appended, and the merged file is
/// written through atomic_write_file.  The read-modify-write sequence is
/// serialized under one process-wide mutex so concurrently retiring sessions
/// cannot lose each other's observations.  Returns the merged entry count.
std::size_t flush_memo_cache_file(const std::string& path, const MemoCacheFile& fresh);

}  // namespace glova::core
